/// \file scan_fault_coverage.cpp
/// Why the TAM exists (paper §1: "the high fault coverage required before
/// signing off a design"): generate compact ATPG patterns for a core,
/// deliver them through the CAS-BUS cycle-accurately, and confirm that a
/// sample of injected stuck-at faults is caught at the chip pins.
///
/// The parallel scan path observes flip-flop next-states; faults visible
/// only on functional outputs would additionally need a boundary-register
/// EXTEST capture, so the injected sample is drawn from the
/// scan-observable set.

#include <iostream>

#include "netlist/gatesim.hpp"
#include "soc/soc.hpp"
#include "soc/tester.hpp"
#include "tpg/atpg.hpp"
#include "util/rng.hpp"

namespace {

using namespace casbus;

/// True when \p fault flips at least one flip-flop next-state under some
/// pattern (functional inputs low, scan disabled) — i.e. the fault is
/// observable through the parallel scan unload.
bool scan_observable(const tpg::SyntheticCore& core,
                     const tpg::PatternSet& patterns,
                     const tpg::Fault& fault) {
  const auto& nl = core.netlist;
  netlist::GateSim good(nl);
  netlist::GateSim bad(nl);
  bad.set_force(fault.net, to_logic(fault.stuck_one));

  for (std::size_t p = 0; p < patterns.size(); ++p) {
    const BitVector& pat = patterns.at(p);
    for (netlist::GateSim* sim : {&good, &bad}) {
      sim->set_input("scan_en", false);
      for (std::size_t i = 0; i < core.spec.n_inputs; ++i)
        sim->set_input("pi" + std::to_string(i), false);
      for (std::size_t c = 0; c < core.spec.n_chains; ++c)
        sim->set_input("si" + std::to_string(c), false);
      for (std::size_t b = 0; b < pat.size(); ++b)
        sim->set_dff_state(b, to_logic(pat.get(b)));
      sim->eval();
    }
    for (netlist::CellId id = 0; id < nl.cell_count(); ++id) {
      if (!netlist::is_sequential(nl.cell(id).kind)) continue;
      const Logic4 g = good.net_value(nl.cell(id).in[0]);
      const Logic4 b = bad.net_value(nl.cell(id).in[0]);
      if (is01(g) && is01(b) && g != b) return true;
    }
  }
  return false;
}

}  // namespace

int main() {
  using namespace casbus::soc;

  tpg::SyntheticCoreSpec spec;
  spec.n_inputs = 6;
  spec.n_outputs = 6;
  spec.n_flipflops = 16;
  spec.n_gates = 90;
  spec.n_chains = 2;
  spec.seed = 77;

  // 1. ATPG with the wrapper-intest boundary conditions: functional
  //    inputs held at the update-cell values (zeros) during scan.
  tpg::AtpgOptions atpg;
  atpg.seed = 5;
  atpg.target_coverage = 0.98;
  atpg.max_patterns = 64;
  atpg.pinned_inputs.emplace_back("scan_en", false);
  for (std::size_t i = 0; i < spec.n_inputs; ++i)
    atpg.pinned_inputs.emplace_back("pi" + std::to_string(i), false);
  for (std::size_t c = 0; c < spec.n_chains; ++c)
    atpg.pinned_inputs.emplace_back("si" + std::to_string(c), false);

  const tpg::SyntheticCore reference = tpg::make_synthetic_core(spec);
  const tpg::AtpgResult patterns =
      tpg::generate_patterns(reference.netlist, atpg);
  std::cout << "ATPG: " << patterns.patterns.size() << " patterns cover "
            << 100.0 * patterns.coverage() << "% of "
            << patterns.total_faults << " stuck-at faults ("
            << patterns.candidates_tried << " candidates tried)\n\n";

  // 2. Fault-free delivery over the bus.
  auto soc = SocBuilder(3).add_scan_core("dut", spec).build();
  SocTester tester(*soc);
  ScanSession session;
  session.targets.push_back(
      ScanTarget{CoreRef{0, std::nullopt}, {0, 2}, patterns.patterns});
  const auto clean = tester.run_scan_session(session);
  std::cout << "fault-free run: "
            << (clean.all_pass() ? "PASS" : "FAIL (unexpected)") << " in "
            << clean.total_cycles() << " cycles\n\n";

  // 3. Inject scan-observable faults into the live core; each must now
  //    fail at the pins.
  const auto faults = tpg::enumerate_faults(reference.netlist);
  Rng rng(123);
  int injected = 0, caught = 0;
  for (int trial = 0; trial < 400 && injected < 12; ++trial) {
    const std::size_t f = rng.below(faults.size());
    if (!scan_observable(reference, patterns.patterns, faults[f]))
      continue;
    ++injected;
    NetlistCore& core = soc->cores()[0].as_scan();
    core.gatesim().clear_forces();
    core.gatesim().set_force(faults[f].net,
                             to_logic(faults[f].stuck_one));
    const auto r = tester.run_scan_session(session);
    const bool detected = !r.all_pass();
    if (detected) ++caught;
    std::cout << "  fault net " << faults[f].net << " stuck-at-"
              << (faults[f].stuck_one ? 1 : 0) << ": "
              << (detected ? "caught at pins" : "MISSED") << "\n";
  }
  soc->cores()[0].as_scan().gatesim().clear_forces();

  std::cout << "\n" << caught << "/" << injected
            << " injected scan-observable faults detected through the "
               "TAM\n";
  return caught == injected && clean.all_pass() ? 0 : 1;
}
