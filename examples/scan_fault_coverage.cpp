/// \file scan_fault_coverage.cpp
/// Why the TAM exists (paper §1: "the high fault coverage required before
/// signing off a design"): generate compact ATPG patterns for a core,
/// deliver them through the CAS-BUS cycle-accurately, and confirm that a
/// sample of injected stuck-at faults is caught at the chip pins.
///
/// The parallel scan path observes flip-flop next-states; faults visible
/// only on functional outputs would additionally need a boundary-register
/// EXTEST capture, so the injected sample is drawn from the
/// scan-observable set.

#include <iostream>

#include "netlist/faultsim.hpp"
#include "soc/soc.hpp"
#include "soc/tester.hpp"
#include "tpg/atpg.hpp"
#include "util/rng.hpp"

namespace {

using namespace casbus;

/// Flags the faults that flip at least one flip-flop next-state under some
/// pattern (functional inputs low, scan disabled) — i.e. the faults
/// observable through the parallel scan unload. One bit-parallel campaign
/// over the whole universe (64 faulty machines per pass, fault dropping)
/// replaces the per-fault good/bad re-simulation this example used before.
std::vector<bool> scan_observable_set(const tpg::SyntheticCore& core,
                                      const tpg::PatternSet& patterns,
                                      const std::vector<tpg::Fault>& faults) {
  netlist::FaultSim fsim(core.netlist);
  fsim.set_observation(/*outputs=*/false, /*dff_next_states=*/true);
  for (std::size_t i = 0; i < core.netlist.inputs().size(); ++i)
    fsim.set_input_index(i, Logic4::Zero);

  std::vector<bool> observable(faults.size(), false);
  for (std::size_t p = 0; p < patterns.size(); ++p) {
    const BitVector& pat = patterns.at(p);
    for (std::size_t b = 0; b < pat.size(); ++b)
      fsim.set_dff_state(b, to_logic(pat.get(b)));
    fsim.detect_all(faults, observable);
  }
  return observable;
}

}  // namespace

int main() {
  using namespace casbus::soc;

  tpg::SyntheticCoreSpec spec;
  spec.n_inputs = 6;
  spec.n_outputs = 6;
  spec.n_flipflops = 16;
  spec.n_gates = 90;
  spec.n_chains = 2;
  spec.seed = 77;

  // 1. ATPG with the wrapper-intest boundary conditions: functional
  //    inputs held at the update-cell values (zeros) during scan.
  tpg::AtpgOptions atpg;
  atpg.seed = 5;
  atpg.target_coverage = 0.98;
  atpg.max_patterns = 64;
  atpg.pinned_inputs.emplace_back("scan_en", false);
  for (std::size_t i = 0; i < spec.n_inputs; ++i)
    atpg.pinned_inputs.emplace_back("pi" + std::to_string(i), false);
  for (std::size_t c = 0; c < spec.n_chains; ++c)
    atpg.pinned_inputs.emplace_back("si" + std::to_string(c), false);

  const tpg::SyntheticCore reference = tpg::make_synthetic_core(spec);
  const tpg::AtpgResult patterns =
      tpg::generate_patterns(reference.netlist, atpg);
  std::cout << "ATPG: " << patterns.patterns.size() << " patterns cover "
            << 100.0 * patterns.coverage() << "% of "
            << patterns.total_faults << " stuck-at faults ("
            << patterns.candidates_tried << " candidates tried)\n\n";

  // 2. Fault-free delivery over the bus.
  auto soc = SocBuilder(3).add_scan_core("dut", spec).build();
  SocTester tester(*soc);
  ScanSession session;
  session.targets.push_back(
      ScanTarget{CoreRef{0, std::nullopt}, {0, 2}, patterns.patterns});
  const auto clean = tester.run_scan_session(session);
  std::cout << "fault-free run: "
            << (clean.all_pass() ? "PASS" : "FAIL (unexpected)") << " in "
            << clean.total_cycles() << " cycles\n\n";

  // 3. Inject scan-observable faults into the live core; each must now
  //    fail at the pins. The observable set is graded once, bit-parallel.
  const auto faults = tpg::enumerate_faults(reference.netlist);
  const std::vector<bool> observable =
      scan_observable_set(reference, patterns.patterns, faults);
  Rng rng(123);
  int injected = 0, caught = 0;
  for (int trial = 0; trial < 400 && injected < 12; ++trial) {
    const std::size_t f = rng.below(faults.size());
    if (!observable[f]) continue;
    ++injected;
    NetlistCore& core = soc->cores()[0].as_scan();
    core.gatesim().clear_forces();
    core.gatesim().set_force(faults[f].net,
                             to_logic(faults[f].stuck_one));
    const auto r = tester.run_scan_session(session);
    const bool detected = !r.all_pass();
    if (detected) ++caught;
    std::cout << "  fault net " << faults[f].net << " stuck-at-"
              << (faults[f].stuck_one ? 1 : 0) << ": "
              << (detected ? "caught at pins" : "MISSED") << "\n";
  }
  soc->cores()[0].as_scan().gatesim().clear_forces();

  std::cout << "\n" << caught << "/" << injected
            << " injected scan-observable faults detected through the "
               "TAM\n";
  return caught == injected && clean.all_pass() ? 0 : 1;
}
