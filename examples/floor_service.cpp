/// \file floor_service.cpp
/// The SoC test floor as a service: generate a scenario-diverse batch of
/// test jobs, stream them through a worker pool of cycle-accurate testers,
/// and report verdicts, cycle deviation, and throughput.
///
///   floor_service [--workers N] [--jobs M] [--seed S]
///                 [--scenario-mix scan:4,bist:2,hier:1,maint:1]
///                 [--strategy single|per_core|greedy|phased|exact|branch_bound]
///                 [--patterns-per-ff K] [--summary]
///
/// --workers 0 (the default) uses one worker per hardware thread.
/// --strategy forces one scheduling strategy onto every job (the factory
/// otherwise mixes them). --summary additionally prints the deterministic
/// aggregate summary — the text that is guaranteed byte-identical for any
/// worker count at a fixed seed.

#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <optional>
#include <string>

#include "floor/job_factory.hpp"
#include "floor/test_floor.hpp"

namespace {

[[noreturn]] void usage(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " [--workers N] [--jobs M] [--seed S]"
               " [--scenario-mix scan:4,bist:2,hier:1,maint:1]"
               " [--strategy single|per_core|greedy|phased|exact|branch_bound]"
               " [--patterns-per-ff K] [--summary]\n";
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace casbus::floor;

  std::size_t workers = 0;
  std::size_t jobs = 12;
  std::uint64_t seed = 1;
  std::size_t patterns_per_ff = 1;
  ScenarioMix mix;
  std::optional<casbus::sched::Strategy> strategy;
  bool summary = false;

  try {
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      const auto value = [&]() -> std::string {
        if (i + 1 >= argc) usage(argv[0]);
        return argv[++i];
      };
      if (arg == "--workers") workers = std::stoul(value());
      else if (arg == "--jobs") jobs = std::stoul(value());
      else if (arg == "--seed") seed = std::stoull(value());
      else if (arg == "--scenario-mix") mix = parse_scenario_mix(value());
      else if (arg == "--strategy")
        strategy = casbus::sched::strategy_from_name(value());
      else if (arg == "--patterns-per-ff")
        patterns_per_ff = std::stoul(value());
      else if (arg == "--summary") summary = true;
      else usage(argv[0]);
    }
  } catch (const std::exception& e) {
    std::cerr << "bad arguments: " << e.what() << "\n";
    usage(argv[0]);
  }

  const JobFactory factory(seed, mix);
  auto specs = factory.make_jobs(jobs);
  for (JobSpec& spec : specs) {
    spec.patterns_per_ff = patterns_per_ff;
    if (strategy) spec.strategy = *strategy;
  }

  const TestFloor floor(FloorConfig{workers});
  std::cout << "test floor: " << jobs << " jobs, " << floor.workers()
            << " worker(s), seed " << seed << "\n\n";

  const FloorReport report = floor.run(specs);
  report.print(std::cout);
  if (summary) {
    std::cout << "\ndeterministic summary (worker-count invariant):\n"
              << report.deterministic_summary();
  }
  return report.all_pass() ? 0 : 1;
}
