/// \file floor_service.cpp
/// The SoC test floor as a service: generate a scenario-diverse batch of
/// test jobs, stream them through a worker pool of cycle-accurate testers,
/// and report verdicts, cycle deviation, and throughput.
///
///   floor_service [--workers N] [--jobs M] [--seed S]
///                 [--scenario-mix scan:4,bist:2,hier:1,maint:1]
///                 [--strategy single|per_core|greedy|phased|exact|branch_bound]
///                 [--patterns-per-ff K] [--queue-capacity Q] [--cache C]
///                 [--stream] [--summary]
///                 [--stats-json FILE] [--trace FILE]
///                 [--stats-interval-ms N]
///
/// --workers 0 (the default) uses one worker per hardware thread.
/// --strategy forces one scheduling strategy onto every job (the factory
/// otherwise mixes them). --stream drives the live FloorSession API
/// instead of the batch adapter: jobs are submitted while the workers run
/// (throttled by --queue-capacity) and results are printed as they
/// complete, in arrival order. --cache sets the per-worker program-cache
/// capacity (0 disables). --sim-threads / --sched-threads set each job's
/// golden-response precompute and branch-and-bound scheduling thread
/// pools (pure engine knobs; 0 = one per hardware thread). --summary
/// additionally prints the deterministic aggregate summary — the text
/// that is guaranteed byte-identical for any worker count, batch or
/// streaming, cache on or off, any engine-thread counts, at a fixed seed.
///
/// Telemetry (docs/OBSERVABILITY.md):
///   --stats-json FILE       write the final FloorStats snapshot as
///                           one-line JSON (tools/floorstat.py reads it)
///   --trace FILE            record per-job pipeline spans and write a
///                           Chrome trace-event file (load in Perfetto)
///   --stats-interval-ms N   additionally print a live snapshot line to
///                           stderr every N ms while the floor runs
///
/// Health engine (docs/OBSERVABILITY.md, "Health rules"):
///   --health                run the SLO rule catalogue + sampler loop;
///                           print the final report
///   --health-interval-ms N  background sample/evaluate period (default
///                           250 ms)
///   --watchdog-ms N         HL006 worker-watchdog deadline (0 = off)
///   --incident-dir DIR      flight recorder: write an incident bundle
///                           on every critical transition
///   --health-json FILE      write the final HealthReport as one-line
///                           JSON (tools/floorhealth.py reads it)
///   --prom FILE             write the final metrics snapshot in
///                           Prometheus text exposition format
/// --watchdog-ms / --incident-dir / --health-json imply --health; any
/// telemetry or health flag implies the live-session path (as if
/// --stream). Telemetry and health observe only: the deterministic
/// summary is byte-identical with these flags on or off.

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <mutex>
#include <optional>
#include <string>
#include <thread>

#include "floor/job_factory.hpp"
#include "floor/session.hpp"
#include "floor/test_floor.hpp"
#include "obs/prometheus.hpp"
#include "util/cli.hpp"

namespace {

constexpr const char* kOptionsHelp =
    "[--workers N] [--jobs M] [--seed S]"
    " [--scenario-mix scan:4,bist:2,hier:1,maint:1]"
    " [--strategy single|per_core|greedy|phased|exact|branch_bound]"
    " [--patterns-per-ff K] [--queue-capacity Q] [--cache C]"
    " [--sim-threads T] [--sched-threads T] [--sweep-sim] [--stream]"
    " [--summary]"
    " [--stats-json FILE] [--trace FILE] [--stats-interval-ms N]"
    " [--health] [--health-interval-ms N] [--watchdog-ms N]"
    " [--incident-dir DIR] [--health-json FILE] [--prom FILE]";

/// Periodic stats tail: a helper thread that prints
/// session.stats_snapshot().to_json() to stderr every interval until
/// stopped. Interruptible sleep so shutdown is immediate.
class StatsTailer {
 public:
  StatsTailer(const casbus::floor::FloorSession& session,
              std::size_t interval_ms)
      : session_(session), interval_ms_(interval_ms) {
    if (interval_ms_ > 0)
      thread_ = std::thread([this] { run(); });
  }

  ~StatsTailer() {
    {
      const std::lock_guard<std::mutex> lock(mu_);
      stop_ = true;
    }
    cv_.notify_all();
    if (thread_.joinable()) thread_.join();
  }

 private:
  void run() {
    std::unique_lock<std::mutex> lock(mu_);
    while (!stop_) {
      cv_.wait_for(lock, std::chrono::milliseconds(interval_ms_),
                   [this] { return stop_; });
      if (stop_) break;
      lock.unlock();
      std::cerr << session_.stats_snapshot().to_json() << "\n";
      lock.lock();
    }
  }

  const casbus::floor::FloorSession& session_;
  std::size_t interval_ms_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
  std::thread thread_;
};

struct TelemetryOptions {
  std::string stats_json;       ///< final snapshot file; empty = off
  std::string trace_file;       ///< Chrome trace file; empty = off
  std::size_t interval_ms = 0;  ///< live stderr tail period; 0 = off
  bool health = false;          ///< run + print the health engine
  std::string health_json;      ///< final HealthReport file; empty = off
  std::string prom_file;        ///< Prometheus exposition file; empty = off

  [[nodiscard]] bool any() const {
    return !stats_json.empty() || !trace_file.empty() || interval_ms > 0 ||
           health || !prom_file.empty();
  }
};

/// Post-drain health settle: with the floor idle every rule's raw verdict
/// is calm, so forced health_report() ticks (each one a hysteresis
/// sample) walk tripped rules back down — critical -> warn -> ok needs
/// clear_k consecutive calm samples per step. Returns the final report.
casbus::floor::HealthReport settle_health(
    casbus::floor::FloorSession& session,
    const casbus::floor::HysteresisConfig& hc) {
  const std::size_t bound = hc.window_n + 2 * hc.clear_k + 4;
  casbus::floor::HealthReport report = session.health_report();
  for (std::size_t i = 0;
       i < bound && report.overall != casbus::floor::HealthLevel::kOk; ++i)
    report = session.health_report();
  return report;
}

/// Streaming mode: submit jobs one by one into the live session (the
/// bounded queue throttles the producer) and print each result as the
/// slot-ordered delivery hands it out.
casbus::floor::FloorReport run_streaming(
    casbus::floor::FloorConfig config,
    const std::vector<casbus::floor::JobSpec>& specs,
    const TelemetryOptions& telemetry, bool print_jobs) {
  using namespace casbus::floor;
  const auto print_result = [](const JobResult& r) {
    std::cout << "  job " << r.id << " [" << scenario_name(r.scenario)
              << "] "
              << (!r.error.empty() ? "ERROR" : (r.pass ? "pass" : "FAIL"))
              << (r.cache_hit() ? " (cached)" : "") << "\n";
  };

  FloorSession session(config);
  StatsTailer tailer(session, telemetry.interval_ms);
  std::size_t printed = 0;
  for (const JobSpec& spec : specs) {
    const bool accepted = session.submit(spec);
    CASBUS_ASSERT(accepted, "session closed while submitting");
    if (!print_jobs) continue;
    for (const JobResult& r : session.poll_results()) {
      print_result(r);
      ++printed;
    }
  }
  FloorReport report = session.drain();
  if (print_jobs) {
    for (std::size_t i = printed; i < report.results.size(); ++i)
      print_result(report.results[i]);
    std::cout << "\n";
  }

  if (!telemetry.stats_json.empty()) {
    std::ofstream out(telemetry.stats_json);
    if (out) {
      out << session.stats_snapshot().to_json() << "\n";
      std::cout << "stats snapshot written to " << telemetry.stats_json
                << "\n";
    } else {
      std::cerr << "cannot write stats to " << telemetry.stats_json
                << "\n";
    }
  }
  if (!telemetry.trace_file.empty()) {
    if (session.write_trace(telemetry.trace_file))
      std::cout << "pipeline trace written to " << telemetry.trace_file
                << " (load at https://ui.perfetto.dev)\n";
    else
      std::cerr << "cannot write trace to " << telemetry.trace_file
                << "\n";
  }
  if (telemetry.health) {
    const HealthReport health =
        settle_health(session, config.health.hysteresis);
    std::cout << health.to_string() << "\n";
    if (!telemetry.health_json.empty()) {
      std::ofstream out(telemetry.health_json);
      if (out) {
        out << health.to_json() << "\n";
        std::cout << "health report written to " << telemetry.health_json
                  << "\n";
      } else {
        std::cerr << "cannot write health report to "
                  << telemetry.health_json << "\n";
      }
    }
  }
  if (!telemetry.prom_file.empty()) {
    std::ofstream out(telemetry.prom_file);
    if (out && session.registry() != nullptr) {
      out << casbus::obs::to_prometheus(session.registry()->snapshot());
      std::cout << "prometheus exposition written to "
                << telemetry.prom_file << "\n";
    } else {
      std::cerr << "cannot write prometheus exposition to "
                << telemetry.prom_file << "\n";
    }
  }
  return report;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace casbus::floor;

  std::size_t jobs = 12;
  std::uint64_t seed = 1;
  std::size_t patterns_per_ff = 1;
  FloorConfig config;
  ScenarioMix mix;
  std::optional<casbus::sched::Strategy> strategy;
  bool stream = false;
  bool summary = false;
  TelemetryOptions telemetry;

  casbus::cli::FlagParser cli(argc, argv, kOptionsHelp);
  try {
    while (cli.next()) {
      if (cli.is("--workers")) config.workers = std::stoul(cli.value());
      else if (cli.is("--jobs")) jobs = std::stoul(cli.value());
      else if (cli.is("--seed")) seed = std::stoull(cli.value());
      else if (cli.is("--scenario-mix"))
        mix = parse_scenario_mix(cli.value());
      else if (cli.is("--strategy"))
        strategy = casbus::sched::strategy_from_name(cli.value());
      else if (cli.is("--patterns-per-ff"))
        patterns_per_ff = std::stoul(cli.value());
      else if (cli.is("--queue-capacity"))
        config.queue_capacity = std::stoul(cli.value());
      else if (cli.is("--cache"))
        config.cache_capacity = std::stoul(cli.value());
      else if (cli.is("--sim-threads"))
        config.sim_threads = std::stoul(cli.value());
      else if (cli.is("--sched-threads"))
        config.sched_threads = std::stoul(cli.value());
      else if (cli.is("--sweep-sim")) config.event_sim = !cli.boolean();
      else if (cli.is("--stream")) stream = cli.boolean();
      else if (cli.is("--summary")) summary = cli.boolean();
      else if (cli.is("--stats-json")) telemetry.stats_json = cli.value();
      else if (cli.is("--trace")) telemetry.trace_file = cli.value();
      else if (cli.is("--stats-interval-ms"))
        telemetry.interval_ms = std::stoul(cli.value());
      else if (cli.is("--health")) telemetry.health = cli.boolean();
      else if (cli.is("--health-interval-ms"))
        config.health.interval_ms = std::stoul(cli.value());
      else if (cli.is("--watchdog-ms"))
        config.health.watchdog_ms = std::stoul(cli.value());
      else if (cli.is("--incident-dir"))
        config.health.incident_dir = cli.value();
      else if (cli.is("--health-json")) telemetry.health_json = cli.value();
      else if (cli.is("--prom")) telemetry.prom_file = cli.value();
      else cli.fail();
    }
  } catch (const std::exception& e) {
    std::cerr << "bad arguments: " << e.what() << "\n";
    cli.fail();
  }

  // A watchdog deadline, an incident dir, or a health-json target only
  // make sense with the health engine running.
  telemetry.health = telemetry.health || config.health.watchdog_ms > 0 ||
                     !config.health.incident_dir.empty() ||
                     !telemetry.health_json.empty();
  if (telemetry.any()) {
    // The stats/trace surfaces live on FloorSession, so telemetry runs
    // the live-session path even without --stream (job-by-job printing
    // stays opt-in via --stream).
    config.metrics = !telemetry.stats_json.empty() ||
                     telemetry.interval_ms > 0 ||
                     !telemetry.prom_file.empty();
    config.health.enabled = telemetry.health;
    if (!telemetry.trace_file.empty()) {
      // One job-level span plus at most one span per pipeline stage per
      // job; cached jobs record fewer. Sized exactly so a full run never
      // drops (the acceptance bar for --trace).
      config.trace_capacity = jobs * (kStageCount + 1);
    }
  }

  const JobFactory factory(seed, mix);
  auto specs = factory.make_jobs(jobs);
  for (JobSpec& spec : specs) {
    spec.patterns_per_ff = patterns_per_ff;
    if (strategy) spec.strategy = *strategy;
  }

  std::cout << "test floor: " << jobs << " jobs, "
            << effective_workers(config.workers)
            << " worker(s), seed " << seed
            << (stream || telemetry.any() ? ", streaming" : ", batch");
  if (config.queue_capacity)
    std::cout << ", queue capacity " << config.queue_capacity;
  std::cout << "\n\n";

  const FloorReport report =
      stream || telemetry.any()
          ? run_streaming(config, specs, telemetry, stream)
          : TestFloor(config).run(specs);
  report.print(std::cout);
  if (summary) {
    std::cout << "\ndeterministic summary (worker-count invariant):\n"
              << report.deterministic_summary();
  }
  return report.all_pass() ? 0 : 1;
}
