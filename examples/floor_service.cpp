/// \file floor_service.cpp
/// The SoC test floor as a service: generate a scenario-diverse batch of
/// test jobs, stream them through a worker pool of cycle-accurate testers,
/// and report verdicts, cycle deviation, and throughput.
///
///   floor_service [--workers N] [--jobs M] [--seed S]
///                 [--scenario-mix scan:4,bist:2,hier:1,maint:1]
///                 [--strategy single|per_core|greedy|phased|exact|branch_bound]
///                 [--patterns-per-ff K] [--queue-capacity Q] [--cache C]
///                 [--stream] [--summary]
///
/// --workers 0 (the default) uses one worker per hardware thread.
/// --strategy forces one scheduling strategy onto every job (the factory
/// otherwise mixes them). --stream drives the live FloorSession API
/// instead of the batch adapter: jobs are submitted while the workers run
/// (throttled by --queue-capacity) and results are printed as they
/// complete, in arrival order. --cache sets the per-worker program-cache
/// capacity (0 disables). --summary additionally prints the deterministic
/// aggregate summary — the text that is guaranteed byte-identical for any
/// worker count, batch or streaming, cache on or off, at a fixed seed.

#include <cstdint>
#include <iostream>
#include <optional>
#include <string>

#include "floor/job_factory.hpp"
#include "floor/session.hpp"
#include "floor/test_floor.hpp"
#include "util/cli.hpp"

namespace {

constexpr const char* kOptionsHelp =
    "[--workers N] [--jobs M] [--seed S]"
    " [--scenario-mix scan:4,bist:2,hier:1,maint:1]"
    " [--strategy single|per_core|greedy|phased|exact|branch_bound]"
    " [--patterns-per-ff K] [--queue-capacity Q] [--cache C]"
    " [--sim-threads T] [--sweep-sim] [--stream] [--summary]";

/// Streaming mode: submit jobs one by one into the live session (the
/// bounded queue throttles the producer) and print each result as the
/// slot-ordered delivery hands it out.
casbus::floor::FloorReport run_streaming(
    casbus::floor::FloorConfig config,
    const std::vector<casbus::floor::JobSpec>& specs) {
  using namespace casbus::floor;
  const auto print_result = [](const JobResult& r) {
    std::cout << "  job " << r.id << " [" << scenario_name(r.scenario)
              << "] "
              << (!r.error.empty() ? "ERROR" : (r.pass ? "pass" : "FAIL"))
              << (r.cache_hit ? " (cached)" : "") << "\n";
  };

  FloorSession session(config);
  std::size_t printed = 0;
  for (const JobSpec& spec : specs) {
    const bool accepted = session.submit(spec);
    CASBUS_ASSERT(accepted, "session closed while submitting");
    for (const JobResult& r : session.poll_results()) {
      print_result(r);
      ++printed;
    }
  }
  FloorReport report = session.drain();
  for (std::size_t i = printed; i < report.results.size(); ++i)
    print_result(report.results[i]);
  std::cout << "\n";
  return report;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace casbus::floor;

  std::size_t jobs = 12;
  std::uint64_t seed = 1;
  std::size_t patterns_per_ff = 1;
  FloorConfig config;
  ScenarioMix mix;
  std::optional<casbus::sched::Strategy> strategy;
  bool stream = false;
  bool summary = false;

  casbus::cli::FlagParser cli(argc, argv, kOptionsHelp);
  try {
    while (cli.next()) {
      if (cli.is("--workers")) config.workers = std::stoul(cli.value());
      else if (cli.is("--jobs")) jobs = std::stoul(cli.value());
      else if (cli.is("--seed")) seed = std::stoull(cli.value());
      else if (cli.is("--scenario-mix"))
        mix = parse_scenario_mix(cli.value());
      else if (cli.is("--strategy"))
        strategy = casbus::sched::strategy_from_name(cli.value());
      else if (cli.is("--patterns-per-ff"))
        patterns_per_ff = std::stoul(cli.value());
      else if (cli.is("--queue-capacity"))
        config.queue_capacity = std::stoul(cli.value());
      else if (cli.is("--cache"))
        config.cache_capacity = std::stoul(cli.value());
      else if (cli.is("--sim-threads"))
        config.sim_threads = std::stoul(cli.value());
      else if (cli.is("--sweep-sim")) config.event_sim = !cli.boolean();
      else if (cli.is("--stream")) stream = cli.boolean();
      else if (cli.is("--summary")) summary = cli.boolean();
      else cli.fail();
    }
  } catch (const std::exception& e) {
    std::cerr << "bad arguments: " << e.what() << "\n";
    cli.fail();
  }

  const JobFactory factory(seed, mix);
  auto specs = factory.make_jobs(jobs);
  for (JobSpec& spec : specs) {
    spec.patterns_per_ff = patterns_per_ff;
    if (strategy) spec.strategy = *strategy;
  }

  std::cout << "test floor: " << jobs << " jobs, "
            << effective_workers(config.workers)
            << " worker(s), seed " << seed
            << (stream ? ", streaming" : ", batch");
  if (config.queue_capacity)
    std::cout << ", queue capacity " << config.queue_capacity;
  std::cout << "\n\n";

  const FloorReport report = stream
                                 ? run_streaming(config, specs)
                                 : TestFloor(config).run(specs);
  report.print(std::cout);
  if (summary) {
    std::cout << "\ndeterministic summary (worker-count invariant):\n"
              << report.deterministic_summary();
  }
  return report.all_pass() ? 0 : 1;
}
