/// \file hierarchical_soc.cpp
/// Hierarchical test access (paper Fig. 2d): a subsystem core embeds its
/// own CAS-BUS; the parent CAS tunnels top-level bus wires into the child
/// bus, and the child CASes are configured *through* the parent.
///
/// This example walks the two-level configuration explicitly so the
/// mechanism is visible, then runs both children in parallel.

#include <iostream>

#include "core/config_protocol.hpp"
#include "soc/soc.hpp"
#include "soc/tester.hpp"
#include "tpg/patterns.hpp"
#include "util/rng.hpp"

int main() {
  using namespace casbus;
  using namespace casbus::soc;

  // Subsystem with two sub-cores on an internal 2-wire bus.
  tpg::SyntheticCoreSpec sub_a;
  sub_a.n_flipflops = 10;
  sub_a.n_chains = 1;
  sub_a.seed = 11;
  tpg::SyntheticCoreSpec sub_b = sub_a;
  sub_b.n_flipflops = 8;
  sub_b.seed = 12;

  tpg::SyntheticCoreSpec top_core;
  top_core.n_flipflops = 12;
  top_core.n_chains = 2;
  top_core.seed = 13;

  auto soc = SocBuilder(5)
                 .add_scan_core("modem", top_core)
                 .add_hierarchical_core("subsys", 2,
                                        {{"sub_a", sub_a}, {"sub_b", sub_b}})
                 .build();
  SocTester tester(*soc);

  const CoreInstance& subsys = soc->cores()[1];
  std::cout << "parent CAS geometry: N=" << soc->bus().width()
            << ", P=" << soc->bus().cas(1).p()
            << " (= child bus width)\n"
            << "child bus: " << subsys.hier->bus->size()
            << " CASes, config chain " << subsys.hier->bus->total_ir_bits()
            << " bits\n\n";

  // --- Manual two-level configuration (what run_scan_session automates) ---
  // Level 0: parent CAS routes top wires {3,4} onto child wires {0,1};
  // the modem CAS stays in BYPASS.
  const auto parent_code = soc->bus().cas(1).isa().encode(
      tam::SwitchScheme({3, 4}, 5));
  std::cout << "level-0 configuration: modem=BYPASS, subsys=TEST code "
            << parent_code << "\n";
  tester.configure_bus({tam::InstructionSet::kBypassCode, parent_code});

  // Level 1: with the tunnel up, the child chain is reachable through top
  // wire 3 (child wire 0): route child wire 0 to sub_a, child wire 1 to
  // sub_b.
  const auto code_a =
      subsys.hier->bus->cas(0).isa().encode(tam::SwitchScheme({0}, 2));
  const auto code_b =
      subsys.hier->bus->cas(1).isa().encode(tam::SwitchScheme({1}, 2));
  std::cout << "level-1 configuration (tunneled through wire 3): sub_a="
            << code_a << ", sub_b=" << code_b << "\n";
  tester.configure_child_bus(1, 3, {code_a, code_b});

  std::cout << "child CAS instructions now: "
            << subsys.hier->bus->cas(0).instruction() << ", "
            << subsys.hier->bus->cas(1).instruction() << "\n\n";

  // --- Full session through the public API --------------------------------
  Rng rng(3);
  ScanSession session;
  session.routes.push_back(HierarchyRoute{1, {3, 4}});
  session.targets.push_back(ScanTarget{
      CoreRef{1, 0}, {3}, tpg::PatternSet::random(10, 12, rng)});
  session.targets.push_back(ScanTarget{
      CoreRef{1, 1}, {4}, tpg::PatternSet::random(8, 12, rng)});
  // The top-level modem tests concurrently on the remaining wires.
  session.targets.push_back(ScanTarget{
      CoreRef{0, std::nullopt}, {0, 1},
      tpg::PatternSet::random(12, 12, rng)});

  const ScanSessionResult r = tester.run_scan_session(session);
  std::cout << "session: " << r.test_cycles << " test cycles, targets:\n";
  const char* names[] = {"subsys.sub_a", "subsys.sub_b", "modem"};
  for (std::size_t i = 0; i < r.targets.size(); ++i)
    std::cout << "  " << names[i] << ": "
              << (r.targets[i].mismatches == 0 ? "PASS" : "FAIL") << " ("
              << r.targets[i].patterns_applied << " patterns)\n";

  std::cout << "\nhierarchy tested without degrading reconfigurability — "
               "the paper's Fig. 2d scenario.\n";
  return r.all_pass() ? 0 : 1;
}
