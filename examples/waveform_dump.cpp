/// \file waveform_dump.cpp
/// Dumps a VCD trace of a complete CAS-BUS test session — configuration
/// shifting on wire 0, wrapper instruction loading, scan streaming — for
/// inspection in any waveform viewer (GTKWave etc.).
///
/// Usage: waveform_dump [output.vcd]   (default: casbus_session.vcd)

#include <fstream>
#include <iostream>

#include "sim/vcd.hpp"
#include "soc/soc.hpp"
#include "soc/tester.hpp"
#include "tpg/patterns.hpp"
#include "util/rng.hpp"

int main(int argc, char** argv) {
  using namespace casbus;
  using namespace casbus::soc;

  const std::string path = argc > 1 ? argv[1] : "casbus_session.vcd";

  tpg::SyntheticCoreSpec spec;
  spec.n_flipflops = 8;
  spec.n_chains = 2;
  spec.seed = 21;

  auto soc = SocBuilder(3).add_scan_core("dut", spec).build();

  std::ofstream file(path);
  if (!file) {
    std::cerr << "cannot open " << path << "\n";
    return 1;
  }
  sim::VcdWriter vcd(file);

  // Watch the chip-level test interface plus the CAS's core-side pins.
  vcd.watch(soc->bus().head(), "bus_in");
  vcd.watch(soc->bus().tail(), "bus_out");
  vcd.watch(soc->bus().config_wire(), "config");
  vcd.watch(soc->bus().update_wire(), "update");
  vcd.watch(*soc->wsc().select_wir, "wsc_select_wir");
  vcd.watch(*soc->wsc().shift_wr, "wsc_shift");
  vcd.watch(*soc->wsc().capture_wr, "wsc_capture");
  vcd.watch(*soc->wsc().update_wr, "wsc_update");
  vcd.watch(soc->wsi_pin(), "wsi");
  vcd.watch(soc->wso_pin(), "wso");
  vcd.watch(soc->bus().cas_o(0), "cas_o");
  vcd.watch(soc->bus().cas_i(0), "cas_i");
  const CoreTerminals& t = soc->cores()[0].as_scan().terminals();
  vcd.watch(*t.scan_en, "core_scan_en");
  vcd.watch(*t.core_clk_en, "core_clk_en");
  soc->simulation().attach_vcd(&vcd);

  // One full session: configure, load WIRs, stream 4 patterns.
  SocTester tester(*soc);
  Rng rng(5);
  ScanSession session;
  session.targets.push_back(ScanTarget{
      CoreRef{0, std::nullopt}, {0, 2},
      tpg::PatternSet::random(spec.n_flipflops, 4, rng)});
  const ScanSessionResult r = tester.run_scan_session(session);

  soc->simulation().attach_vcd(nullptr);
  std::cout << "session " << (r.all_pass() ? "PASS" : "FAIL") << ", "
            << r.total_cycles() << " cycles traced ("
            << vcd.watched() << " signals) -> " << path << "\n"
            << "view with: gtkwave " << path << "\n";
  return r.all_pass() ? 0 : 1;
}
