/// \file maintenance_test.cpp
/// In-system (maintenance) testing, paper §4: an embedded memory is
/// periodically MARCH-tested over the CAS-BUS while the rest of the system
/// keeps running. A field failure injected between two periodic sessions
/// is caught by the second one; live traffic never sees an error.

#include <iostream>

#include "soc/soc.hpp"
#include "soc/tester.hpp"
#include "soc/traffic.hpp"

int main() {
  using namespace casbus;
  using namespace casbus::soc;

  tpg::SyntheticCoreSpec logic;
  logic.n_flipflops = 12;
  logic.n_chains = 2;
  logic.seed = 9;

  auto soc = SocBuilder(4)
                 .add_memory_core("dram_ctrl_ram", 64, 8)
                 .add_memory_core("packet_buffer", 64, 8)
                 .add_scan_core("mac", logic)
                 .build();

  // Live traffic exercises packet_buffer's functional port continuously.
  MemoryTraffic traffic(*soc, 1, /*seed=*/555);
  SocTester tester(*soc);
  MemoryCore& ram = soc->cores()[0].as_memory();

  traffic.set_enabled(true);
  tester.step(500);
  std::cout << "mission mode: " << traffic.operations() << " memory ops, "
            << traffic.reads_checked() << " read-backs verified, "
            << traffic.mismatches() << " errors\n";

  // Periodic maintenance window #1.
  const BistRunResult s1 = tester.run_bist(0, 3, ram.mbist_cycles());
  std::cout << "maintenance session 1: "
            << (s1.pass ? "PASS" : "FAIL") << " ("
            << s1.configure_cycles + s1.test_cycles
            << " cycles; traffic kept running)\n";

  // The system keeps operating; a storage cell fails in the field.
  tester.step(800);
  ram.inject_stuck_bit(/*addr=*/42, /*bit=*/6, /*stuck_one=*/true);
  std::cout << "field failure injected at word 42, bit 6\n";

  // Periodic maintenance window #2 catches it.
  const BistRunResult s2 = tester.run_bist(0, 3, ram.mbist_cycles());
  std::cout << "maintenance session 2: "
            << (s2.pass ? "PASS (should have failed!)"
                        : "FAIL -> fault detected in-system")
            << "\n";

  tester.step(200);
  std::cout << "\nfinal traffic tally: " << traffic.reads_checked()
            << " verified read-backs, " << traffic.mismatches()
            << " errors during the whole scenario\n";

  const bool ok = s1.pass && !s2.pass && traffic.mismatches() == 0;
  std::cout << (ok ? "maintenance-test claim reproduced."
                   : "unexpected outcome!")
            << "\n";
  return ok ? 0 : 1;
}
