/// \file cas_generator_cli.cpp
/// Command-line CAS generator — the library's equivalent of the paper's
/// §3.3 C program: "It takes as parameters the N and P values, and
/// provides a VHDL description of the CAS, which can be synthesized with a
/// commercial synthesis tool."
///
/// Usage:
///   cas_generator_cli N P [--impl generic|optimized] [--opt]
///                         [--lang vhdl|verilog] [--stats]
///
/// Prints the HDL on stdout; --stats adds a synthesis-style report on
/// stderr.

#include <cstdlib>
#include <cstring>
#include <iostream>

#include "core/cas_generator.hpp"
#include "netlist/area.hpp"
#include "netlist/emit.hpp"
#include "netlist/gatesim.hpp"

int main(int argc, char** argv) {
  using namespace casbus;

  if (argc < 3) {
    std::cerr << "usage: " << argv[0]
              << " N P [--impl generic|optimized] [--opt]"
                 " [--lang vhdl|verilog] [--stats]\n";
    return 2;
  }
  const unsigned n = static_cast<unsigned>(std::atoi(argv[1]));
  const unsigned p = static_cast<unsigned>(std::atoi(argv[2]));

  tam::CasGenOptions options;
  bool verilog = false;
  bool stats = false;
  for (int i = 3; i < argc; ++i) {
    if (std::strcmp(argv[i], "--impl") == 0 && i + 1 < argc) {
      ++i;
      if (std::strcmp(argv[i], "optimized") == 0)
        options.impl = tam::CasImplementation::OptimizedGateLevel;
      else if (std::strcmp(argv[i], "generic") == 0)
        options.impl = tam::CasImplementation::Generic;
      else {
        std::cerr << "unknown implementation: " << argv[i] << "\n";
        return 2;
      }
    } else if (std::strcmp(argv[i], "--opt") == 0) {
      options.run_optimizer = true;
    } else if (std::strcmp(argv[i], "--lang") == 0 && i + 1 < argc) {
      verilog = std::strcmp(argv[++i], "verilog") == 0;
    } else if (std::strcmp(argv[i], "--stats") == 0) {
      stats = true;
    } else {
      std::cerr << "unknown option: " << argv[i] << "\n";
      return 2;
    }
  }

  try {
    const tam::GeneratedCas cas = tam::generate_cas(n, p, options);
    std::cout << (verilog ? netlist::emit_verilog(cas.netlist)
                          : netlist::emit_vhdl(cas.netlist));

    if (stats) {
      const netlist::NetlistStats s = netlist::stats_of(cas.netlist);
      netlist::GateSim sim(cas.netlist);
      std::cerr << "-- CAS N=" << n << " P=" << p
                << ": m=" << cas.isa.m() << " instructions, k="
                << cas.isa.k() << "-bit instruction register\n"
                << "-- cells=" << s.cells << " (dff=" << s.dffs
                << ", tri=" << s.tristate << "), nets=" << s.nets
                << ", depth=" << sim.depth() << " levels\n"
                << "-- area=" << s.gate_equivalents << " GE, ~"
                << s.transistor_estimate << " transistors\n";
    }
    return 0;
  } catch (const Error& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
