/// \file tam_netlist_export.cpp
/// Exports the complete CAS-BUS — all switches plus the stitched bus — as
/// one flat synthesizable netlist: the plug-and-play TAM macro a system
/// integrator instantiates at the SoC top level (paper §4: "the CAS-BUS
/// eases the SoC test architecture design by using plug-and-play CAS
/// modules").
///
/// Usage: tam_netlist_export N P1,P2,...,Pk [--lang vhdl|verilog]
///                                          [--wrappers]
/// Example: tam_netlist_export 8 2,4,1,1,1,2 --lang verilog
///
/// With --wrappers, the export is the *complete* test architecture of the
/// paper's §5: every CAS plus a generated P1500 wrapper per core (the Pi
/// become the wrappers' scan-chain counts), wired and flattened.

#include <cstdlib>
#include <cstring>
#include <iostream>
#include <sstream>

#include "core/casbus_netlist.hpp"
#include "core/complete_tam.hpp"
#include "netlist/area.hpp"
#include "netlist/emit.hpp"

int main(int argc, char** argv) {
  using namespace casbus;

  if (argc < 3) {
    std::cerr << "usage: " << argv[0]
              << " N P1,P2,...,Pk [--lang vhdl|verilog] [--wrappers]\n";
    return 2;
  }

  const auto width = static_cast<unsigned>(std::atoi(argv[1]));
  std::vector<unsigned> ports;
  {
    std::stringstream ss(argv[2]);
    std::string tok;
    while (std::getline(ss, tok, ','))
      ports.push_back(static_cast<unsigned>(std::atoi(tok.c_str())));
  }
  bool verilog = false;
  bool wrappers = false;
  for (int i = 3; i < argc; ++i) {
    if (std::strcmp(argv[i], "--lang") == 0 && i + 1 < argc)
      verilog = std::strcmp(argv[++i], "verilog") == 0;
    else if (std::strcmp(argv[i], "--wrappers") == 0)
      wrappers = true;
  }

  try {
    if (wrappers) {
      tam::CompleteTamSpec spec;
      spec.width = width;
      for (const unsigned p : ports) {
        p1500::WrapperSpec w;
        w.n_func_in = 2;
        w.n_func_out = 2;
        w.n_chains = p;
        spec.wrappers.push_back(w);
      }
      const tam::GeneratedCompleteTam tam = generate_complete_tam(spec);
      std::cout << (verilog ? netlist::emit_verilog(tam.netlist)
                            : netlist::emit_vhdl(tam.netlist));
      const auto stats = netlist::stats_of(tam.netlist);
      std::cerr << "-- complete TAM: N=" << tam.width << ", "
                << spec.wrappers.size() << " wrapped cores, CAS chain "
                << tam.total_ir_bits << " bits, WIR ring "
                << tam.wrapper_ring_bits << " bits\n"
                << "-- " << stats.cells << " cells, "
                << stats.gate_equivalents << " GE\n";
      return 0;
    }

    tam::CasBusNetlistSpec spec;
    spec.width = width;
    spec.ports_per_cas = ports;
    spec.run_optimizer = true;
    const tam::GeneratedCasBus bus = tam::generate_casbus_netlist(spec);
    std::cout << (verilog ? netlist::emit_verilog(bus.netlist)
                          : netlist::emit_vhdl(bus.netlist));

    const auto stats = netlist::stats_of(bus.netlist);
    std::cerr << "-- CAS-BUS: N=" << bus.width << ", "
              << spec.ports_per_cas.size() << " CASes, configuration chain "
              << bus.total_ir_bits << " bits\n"
              << "-- " << stats.cells << " cells, "
              << stats.gate_equivalents << " GE, ~"
              << stats.transistor_estimate << " transistors\n";
    return 0;
  } catch (const Error& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
