/// \file explore.cpp
/// Design-space exploration CLI: generate a synthetic SoC population and
/// sweep TAM width x scheduling strategy, reporting test time, bus area,
/// and the proven optimality gap of every point — the paper's §3.2 width
/// trade-off, finally runnable at 100–1000-core scale.
///
///   explore [--cores N] [--profile mixed|scan_heavy|bist_heavy|hierarchical]
///           [--seed S] [--instance I] [--widths 8,16,32]
///           [--strategies greedy,phased,branch_bound] [--node-budget K]
///           [--sched-threads T]
///
/// --sched-threads drives the branch-and-bound search's worker pool
/// (1 = serial, 0 = one per hardware thread); the search is deterministic,
/// so every reported number is identical at any thread count.
/// Pareto-optimal (time, area) points are marked '*' in the table.

#include <cstdint>
#include <iostream>
#include <string>

#include "explore/explorer.hpp"
#include "util/cli.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

namespace {

constexpr const char* kOptionsHelp =
    "[--cores N] [--profile mixed|scan_heavy|bist_heavy|hierarchical]"
    " [--seed S] [--instance I] [--widths 8,16,32]"
    " [--strategies greedy,phased,branch_bound] [--node-budget K]"
    " [--sched-threads T]";

}  // namespace

int main(int argc, char** argv) {
  using namespace casbus;
  using namespace casbus::explore;

  std::size_t cores = 100;
  SocProfile profile = SocProfile::Mixed;
  std::uint64_t seed = 1;
  std::size_t instance = 0;
  ExploreConfig config;

  cli::FlagParser cli(argc, argv, kOptionsHelp);
  try {
    while (cli.next()) {
      if (cli.is("--cores")) cores = std::stoul(cli.value());
      else if (cli.is("--profile")) profile = profile_from_name(cli.value());
      else if (cli.is("--seed")) seed = std::stoull(cli.value());
      else if (cli.is("--instance")) instance = std::stoul(cli.value());
      else if (cli.is("--node-budget"))
        config.branch_bound.node_budget = std::stoul(cli.value());
      else if (cli.is("--sched-threads"))
        config.branch_bound.threads = std::stoul(cli.value());
      else if (cli.is("--widths")) {
        config.widths.clear();
        for (const std::string& w : split(cli.value(), ','))
          config.widths.push_back(
              static_cast<unsigned>(std::stoul(w)));
      } else if (cli.is("--strategies")) {
        config.strategies.clear();
        for (const std::string& s : split(cli.value(), ','))
          config.strategies.push_back(sched::strategy_from_name(s));
      } else {
        cli.fail();
      }
    }
  } catch (const std::exception& e) {
    std::cerr << "bad arguments: " << e.what() << "\n";
    cli.fail();
  }

  const SocGenerator generator(seed);
  const GeneratedSoc soc = generator.generate(cores, profile, instance);
  std::cout << "SoC " << soc.name << ": " << soc.cores.size()
            << " top-level cores (" << soc.scan_core_count() << " scan, "
            << soc.bist_core_count() << " BIST), "
            << soc.total_scan_bits() << " scan bits, suggested width "
            << soc.suggested_width << "\n\n";

  const DesignSpaceExplorer explorer(soc);
  const ExploreReport report = explorer.sweep(config);

  Table table({"width", "strategy", "test cycles", "gap", "optimal",
               "bus area (GE)", "pass-T (GE)", "sched s", "pareto"},
              {Align::Right, Align::Left, Align::Right, Align::Right,
               Align::Right, Align::Right, Align::Right, Align::Right,
               Align::Right});
  for (const ExplorePoint& p : report.points) {
    table.add_row({std::to_string(p.width),
                   sched::strategy_name(p.strategy),
                   std::to_string(p.test_cycles),
                   format_double(100.0 * p.gap, 2) + "%",
                   p.proven_optimal ? "yes" : "-",
                   format_double(p.bus_area_ge, 0),
                   format_double(p.pass_transistor_ge, 0),
                   format_double(p.schedule_seconds, 3),
                   p.pareto ? "*" : ""});
  }
  table.print(std::cout);

  if (const ExplorePoint* best = report.best_time()) {
    std::cout << "\nfastest point: width " << best->width << ", "
              << sched::strategy_name(best->strategy) << " ("
              << best->test_cycles << " cycles, gap "
              << format_double(100.0 * best->gap, 2) << "%)\n";
  }
  return 0;
}
