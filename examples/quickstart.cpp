/// \file quickstart.cpp
/// Five-minute tour of the casbus library:
///   1. describe an SoC (cores + bus width),
///   2. build it — every core gets a P1500 wrapper and a CAS,
///   3. run a scan test session through the chip's test pins,
///   4. run an embedded BIST over a single bus wire,
///   5. read the report.

#include <iostream>

#include "soc/soc.hpp"
#include "soc/tester.hpp"
#include "tpg/patterns.hpp"
#include "util/rng.hpp"

int main() {
  using namespace casbus;
  using namespace casbus::soc;

  // 1. Describe the cores. Synthetic cores are seeded, reproducible
  //    netlists with real scan chains; any core the TAM can talk to only
  //    needs wrapper-visible terminals.
  tpg::SyntheticCoreSpec cpu;
  cpu.n_inputs = 8;
  cpu.n_outputs = 8;
  cpu.n_flipflops = 24;  // 2 scan chains of 12
  cpu.n_gates = 120;
  cpu.n_chains = 2;
  cpu.seed = 42;

  tpg::SyntheticCoreSpec dsp = cpu;
  dsp.n_flipflops = 18;  // 3 chains of 6
  dsp.n_chains = 3;
  dsp.seed = 43;

  // 2. Build the SoC on a 6-wire CAS-BUS.
  auto soc = SocBuilder(6)
                 .add_scan_core("cpu", cpu)
                 .add_scan_core("dsp", dsp)
                 .add_bist_core("mac", dsp, /*cycles=*/128)
                 .build();
  SocTester tester(*soc);

  std::cout << "SoC built: " << soc->core_count() << " cores, bus width "
            << soc->bus().width() << ", total CAS instruction bits "
            << soc->bus().total_ir_bits() << "\n";

  // 3. One scan session: cpu's chains ride wires {0,1}, dsp's {2,3,4} —
  //    all five chains shift concurrently. The tester programs the CAS
  //    switch schemes serially over wire 0, loads wrapper instructions
  //    over the serial ring, then streams patterns.
  Rng rng(7);
  ScanSession session;
  session.targets.push_back(ScanTarget{
      CoreRef{0, std::nullopt}, {0, 1},
      tpg::PatternSet::random(cpu.n_flipflops, 20, rng)});
  session.targets.push_back(ScanTarget{
      CoreRef{1, std::nullopt}, {2, 3, 4},
      tpg::PatternSet::random(dsp.n_flipflops, 20, rng)});
  const ScanSessionResult scan = tester.run_scan_session(session);

  std::cout << "\nscan session: " << scan.configure_cycles
            << " configuration cycles + " << scan.test_cycles
            << " test cycles\n";
  for (const auto& t : scan.targets) {
    std::cout << "  core " << t.core.top << ": " << t.patterns_applied
              << " patterns, " << t.response_bits << " response bits, "
              << t.mismatches << " mismatches -> "
              << (t.mismatches == 0 ? "PASS" : "FAIL") << "\n";
  }

  // 4. BIST of the 'mac' core: the bus delivers the start level on wire 5
  //    and returns the done-and-pass verdict on the same wire (P = 1).
  const BistRunResult bist = tester.run_bist(2, 5, 128);
  std::cout << "\nmac BIST: " << (bist.pass ? "PASS" : "FAIL") << " in "
            << bist.test_cycles << " cycles\n";

  // 5. Done.
  std::cout << "\ntotal tester time: " << tester.cycles() << " cycles\n"
            << (scan.all_pass() && bist.pass ? "CHIP PASSES" : "CHIP FAILS")
            << "\n";
  return scan.all_pass() && bist.pass ? 0 : 1;
}
