#!/usr/bin/env python3
"""Documentation lint: internal links + benchmark-artifact coverage.

Usage:
    check_docs.py [--repo DIR]

Two checks, both source-only (no build needed), run by the CI docs job:

1. Internal links. Every relative markdown link or image in README.md and
   docs/*.md must resolve to an existing file or directory (anchors are
   stripped; http/https/mailto links are skipped). A doc that names a
   moved or deleted file fails the job — stale architecture docs are
   worse than none.

2. Benchmark coverage. Every bench binary constructs a
   bench::JsonReporter("<name>") and leaves a BENCH_<name>.json artifact;
   docs/BENCHMARKS.md is contracted to document every artifact. This
   check greps the JsonReporter constructions out of bench/ and
   examples/ and requires each "BENCH_<name>.json" to appear verbatim in
   docs/BENCHMARKS.md — adding a bench without documenting its artifact
   fails the job.

Exits non-zero with one line per problem.
"""

import argparse
import pathlib
import re
import sys

# [text](target) and ![alt](target); target up to the first ')' without
# nesting. Reference-style links are rare here and not checked.
LINK_RE = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)\)")
REPORTER_RE = re.compile(r'JsonReporter\s+\w+\s*\(\s*"([a-z0-9_]+)"\s*\)')


def doc_files(repo):
    docs = [repo / "README.md"]
    docs += sorted((repo / "docs").glob("*.md"))
    return [d for d in docs if d.exists()]


def check_links(repo, problems):
    for doc in doc_files(repo):
        for match in LINK_RE.finditer(doc.read_text()):
            target = match.group(1)
            if target.startswith(("http://", "https://", "mailto:", "#")):
                continue
            path = target.split("#", 1)[0]
            if not path:
                continue
            resolved = (doc.parent / path).resolve()
            if not resolved.exists():
                problems.append(
                    f"{doc.relative_to(repo)}: broken link -> {target}")
        print(f"links ok: {doc.relative_to(repo)}")


def check_bench_coverage(repo, problems):
    names = set()
    for source_dir in ("bench", "examples"):
        for source in sorted((repo / source_dir).glob("*.cpp")):
            names |= set(REPORTER_RE.findall(source.read_text()))
    if not names:
        problems.append("found no JsonReporter constructions under bench/")
        return
    benchmarks_md = repo / "docs" / "BENCHMARKS.md"
    if not benchmarks_md.exists():
        problems.append("docs/BENCHMARKS.md is missing")
        return
    text = benchmarks_md.read_text()
    for name in sorted(names):
        artifact = f"BENCH_{name}.json"
        if artifact in text:
            print(f"documented: {artifact}")
        else:
            problems.append(
                f"docs/BENCHMARKS.md does not document {artifact}")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--repo", default=".", help="repository root")
    args = parser.parse_args()
    repo = pathlib.Path(args.repo).resolve()

    problems = []
    check_links(repo, problems)
    check_bench_coverage(repo, problems)
    for problem in problems:
        print(f"DOCS CHECK FAILED: {problem}", file=sys.stderr)
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main())
