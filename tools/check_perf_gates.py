#!/usr/bin/env python3
"""Enforce the simulation-engine performance gates over BENCH_perf.json.

Usage:
    check_perf_gates.py BENCH_perf.json [--floors tools/bench_floors.json]
    check_perf_gates.py --obs BENCH_obs.json --floors tools/bench_floors.json
    check_perf_gates.py --explore BENCH_explore.json

Five families of checks (docs/PERFORMANCE.md and docs/OBSERVABILITY.md
record the models they guard):

1. Absolute floors (--floors): each entry of the floors file names a
   (benchmark, metric) pair and a 'min' (throughput counter) or 'max'
   (ns/iteration) bound. Floors are set ~5x off the recorded numbers, so
   tripping one means an algorithmic regression, not jitter.

2. Event-driven speedup: for every gate count measured by both
   BM_PackedGateSimSweepShift and BM_PackedGateSimEventShift, the
   event-driven patterns/sec must be >= 3x the full-sweep value, and the
   recorded activity factor must be < 0.5. This is the acceptance target
   for the event-driven mode on its design workload (scan shift with
   repeat fill).

3. Thread scaling: BM_FaultSimThreaded/4 vs BM_FaultSimThreaded/1 real
   time. Scaling depends on the host, so the gate keys off the
   hw_threads counter the bench records: >= 2.5x required on hosts with
   >= 8 hardware threads, >= 1.8x with 4-7 (hosted CI runners are
   typically 4 hyperthreaded vCPUs), skipped below 4 where no real-time
   speedup is physically possible. Correctness at any thread count is
   covered separately by tests/test_parallel_faultsim.cpp.

4. Telemetry overhead (--obs, over BENCH_obs.json from bench_obs): the
   whole-floor overhead fraction with metrics+tracing fully on must stay
   under the 'obs.max_overhead' cap of the floors file (the <= 5%
   acceptance bar of the observability layer), and the disabled
   instrument site must stay under 'obs.max_disabled_ns' — it compiles
   to a single null-pointer test and must keep doing so. The health
   engine rides the same artifact: one sampler tick over the full floor
   catalogue is capped at 'obs.max_sampler_tick_us' and one
   HealthMonitor evaluation at 'obs.max_health_eval_us', so the
   background health loop can never grow into a tax on the floor.

5. Parallel branch and bound (--explore, over BENCH_explore.json from
   bench_explore): (a) the gap ladder's highest-thread-count row must
   certify a 1000-core bound gap strictly below both the single-thread
   population row in the same artifact and the 1.71 absolute ceiling the
   serial engine recorded before the parallel search landed — the gap is
   only ever allowed to move down; (b) deterministic mode must have held
   (every fixed-work throughput row byte-identical to the 1-thread run);
   (c) nodes/sec scaling on the fixed-work search, hw-aware like the
   fault-sim gate: >= 2.5x at 8 threads on hosts with >= 8 hardware
   threads, >= 1.8x at 4 threads with 4-7, skipped below 4.

Exits non-zero with one line per violated gate.
"""

import argparse
import json
import pathlib
import sys

EVENT_SPEEDUP_MIN = 3.0
EVENT_ACTIVITY_MAX = 0.5
THREAD_SPEEDUP_MIN_8HW = 2.5
THREAD_SPEEDUP_MIN_4HW = 1.8


def load_values(path):
    """Returns {(name, metric): value}; the last record of a pair wins."""
    doc = json.loads(pathlib.Path(path).read_text())
    values = {}
    for rec in doc["records"]:
        if rec["value"] is not None:
            values[(rec["name"], rec["metric"])] = rec["value"]
    return values


def check_floors(values, floors_path, problems):
    spec = json.loads(pathlib.Path(floors_path).read_text())
    for floor in spec["floors"]:
        key = (floor["name"], floor["metric"])
        value = values.get(key)
        if value is None:
            problems.append(f"floor target missing from artifact: {key}")
            continue
        if "min" in floor and value < floor["min"]:
            problems.append(
                f"{floor['name']} {floor['metric']} = {value:.0f} "
                f"below floor {floor['min']:.0f}")
        elif "max" in floor and value > floor["max"]:
            problems.append(
                f"{floor['name']} {floor['metric']} = {value:.0f} "
                f"above ceiling {floor['max']:.0f}")
        else:
            bound = floor.get("min", floor.get("max"))
            print(f"floor ok: {floor['name']} {floor['metric']} "
                  f"= {value:.0f} (bound {bound:.0f})")


def check_event_speedup(values, problems):
    args = sorted({name.split("/", 1)[1]
                   for (name, metric) in values
                   if name.startswith("BM_PackedGateSimEventShift/")
                   and metric == "counter_patterns_per_sec"})
    if not args:
        problems.append("no BM_PackedGateSimEventShift records in artifact")
        return
    for arg in args:
        sweep = values.get((f"BM_PackedGateSimSweepShift/{arg}",
                            "counter_patterns_per_sec"))
        event = values.get((f"BM_PackedGateSimEventShift/{arg}",
                            "counter_patterns_per_sec"))
        activity = values.get((f"BM_PackedGateSimEventShift/{arg}",
                               "counter_activity"))
        if not sweep or not event:
            problems.append(f"shift pair incomplete at {arg} gates")
            continue
        speedup = event / sweep
        print(f"event-driven speedup at {arg} gates: {speedup:.2f}x "
              f"(gate: >= {EVENT_SPEEDUP_MIN}x), activity {activity:.3f}")
        if speedup < EVENT_SPEEDUP_MIN:
            problems.append(
                f"event-driven speedup at {arg} gates is {speedup:.2f}x "
                f"(< {EVENT_SPEEDUP_MIN}x)")
        if activity is None or activity >= EVENT_ACTIVITY_MAX:
            problems.append(
                f"event-driven activity at {arg} gates is {activity} "
                f"(>= {EVENT_ACTIVITY_MAX}: the dirty-set tracking "
                f"stopped skipping quiescent cones)")


def check_thread_scaling(values, problems):
    t1 = values.get(("BM_FaultSimThreaded/1", "real_time_ns_per_iter"))
    t4 = values.get(("BM_FaultSimThreaded/4", "real_time_ns_per_iter"))
    hw = values.get(("BM_FaultSimThreaded/4", "counter_hw_threads"))
    if not t1 or not t4:
        problems.append("BM_FaultSimThreaded 1/4-thread pair missing")
        return
    speedup = t1 / t4
    if hw is None or hw < 4:
        print(f"thread scaling: {speedup:.2f}x at 4 threads — gate skipped "
              f"(host has {hw} hardware threads, need >= 4)")
        return
    required = THREAD_SPEEDUP_MIN_8HW if hw >= 8 else THREAD_SPEEDUP_MIN_4HW
    print(f"thread scaling: {speedup:.2f}x at 4 threads "
          f"(gate: >= {required}x on {hw:.0f} hardware threads)")
    if speedup < required:
        problems.append(
            f"threaded fault campaign scaling is {speedup:.2f}x at 4 "
            f"threads (< {required}x on {hw:.0f}-thread host)")


# The serial engine's certified 1000-core gap before the parallel search
# landed (BENCH_explore.json population row, node budget 600): 171.70%.
# The ladder must stay strictly under it, forever.
EXPLORE_GAP_CEILING = 1.71


def load_records(path):
    """Returns the raw records list of a JsonReporter artifact."""
    doc = json.loads(pathlib.Path(path).read_text())
    return [r for r in doc["records"] if r.get("value") is not None]


def check_explore_gates(path, problems):
    """Parallel branch-and-bound gates over BENCH_explore.json."""
    records = load_records(path)

    # (a) Certified-gap ladder: highest-thread-count row vs the
    # single-thread population row and the absolute ceiling.
    ladder = {int(r["params"]["sched_threads"]): r["value"]
              for r in records
              if r["name"] == "parallel_bb" and r["metric"] == "bound_gap"}
    if not ladder:
        problems.append("no parallel_bb bound_gap records in artifact")
    else:
        top_threads = max(ladder)
        top_gap = ladder[top_threads]
        serial = [r["value"] for r in records
                  if r["name"] == "population"
                  and r["metric"] == "bound_gap"
                  and r["params"].get("strategy") == "branch_bound"
                  and r["params"].get("cores") == "1000"]
        print(f"1000-core certified gap at {top_threads} threads: "
              f"{100 * top_gap:.2f}% "
              f"(ceiling: < {100 * EXPLORE_GAP_CEILING:.0f}%)")
        if top_gap >= EXPLORE_GAP_CEILING:
            problems.append(
                f"parallel B&B certified gap is {100 * top_gap:.2f}% at "
                f"{top_threads} threads "
                f"(>= {100 * EXPLORE_GAP_CEILING:.0f}% ceiling)")
        if serial and top_gap >= serial[0]:
            problems.append(
                f"parallel B&B certified gap {100 * top_gap:.2f}% did not "
                f"beat the single-thread population row "
                f"({100 * serial[0]:.2f}%)")

    # (b) Determinism: every fixed-work row must match the 1-thread run.
    matches = [(int(r["params"]["sched_threads"]), r["value"])
               for r in records
               if r["name"] == "parallel_bb_throughput"
               and r["metric"] == "deterministic_match"]
    if not matches:
        problems.append(
            "no parallel_bb_throughput deterministic_match records")
    for threads, match in sorted(matches):
        if match != 1:
            problems.append(
                f"deterministic mode diverged at {threads} threads "
                f"(fixed-work search not byte-identical to 1 thread)")

    # (c) hw-aware nodes/sec scaling on the fixed-work search.
    speedups = {int(r["params"]["sched_threads"]): r["value"]
                for r in records
                if r["name"] == "parallel_bb_throughput"
                and r["metric"] == "speedup_vs_1_thread"}
    hw_vals = [r["value"] for r in records
               if r["name"] == "parallel_bb_throughput"
               and r["metric"] == "hw_threads"]
    hw = hw_vals[0] if hw_vals else None
    if not speedups:
        problems.append("no parallel_bb_throughput speedup records")
        return
    if hw is None or hw < 4:
        best = max(speedups.values())
        print(f"B&B thread scaling: {best:.2f}x best — gate skipped "
              f"(host has {hw} hardware threads, need >= 4)")
        return
    if hw >= 8:
        threads, required = 8, THREAD_SPEEDUP_MIN_8HW
    else:
        threads, required = 4, THREAD_SPEEDUP_MIN_4HW
    speedup = speedups.get(threads)
    if speedup is None:
        problems.append(f"no parallel_bb_throughput speedup row at "
                        f"{threads} threads")
        return
    print(f"B&B thread scaling: {speedup:.2f}x nodes/sec at {threads} "
          f"threads (gate: >= {required}x on {hw:.0f} hardware threads)")
    if speedup < required:
        problems.append(
            f"parallel B&B nodes/sec scaling is {speedup:.2f}x at "
            f"{threads} threads (< {required}x on {hw:.0f}-thread host)")


DEFAULT_OBS_MAX_OVERHEAD = 0.05
DEFAULT_OBS_MAX_DISABLED_NS = 5.0
DEFAULT_OBS_MAX_SAMPLER_TICK_US = 50.0
DEFAULT_OBS_MAX_HEALTH_EVAL_US = 50.0


def check_obs_overhead(path, floors_path, problems):
    """Telemetry-overhead gates over BENCH_obs.json (see module doc)."""
    caps = {}
    if floors_path:
        caps = json.loads(pathlib.Path(floors_path).read_text()).get(
            "obs", {})
    max_overhead = caps.get("max_overhead", DEFAULT_OBS_MAX_OVERHEAD)
    max_disabled = caps.get("max_disabled_ns", DEFAULT_OBS_MAX_DISABLED_NS)
    max_tick = caps.get("max_sampler_tick_us", DEFAULT_OBS_MAX_SAMPLER_TICK_US)
    max_eval = caps.get("max_health_eval_us", DEFAULT_OBS_MAX_HEALTH_EVAL_US)

    doc = json.loads(pathlib.Path(path).read_text())
    overhead = None
    disabled_ns = None
    tick_us = None
    eval_us = None
    for rec in doc["records"]:
        if rec["name"] == "floor_overhead" and rec["metric"] == "overhead_frac":
            overhead = rec["value"]
        if (rec["name"] == "registry" and rec["metric"] == "ns_per_op"
                and rec["params"].get("op") == "disabled"):
            disabled_ns = rec["value"]
        if rec["name"] == "sampler" and rec["metric"] == "us_per_tick":
            tick_us = rec["value"]
        if rec["name"] == "health" and rec["metric"] == "us_per_eval":
            eval_us = rec["value"]

    if overhead is None:
        problems.append("no floor_overhead/overhead_frac record in artifact")
    else:
        print(f"telemetry overhead: {overhead * 100:.2f}% "
              f"(gate: <= {max_overhead * 100:.0f}%)")
        if overhead > max_overhead:
            problems.append(
                f"telemetry-on floor overhead is {overhead * 100:.2f}% "
                f"(> {max_overhead * 100:.0f}%)")
    if disabled_ns is None:
        problems.append("no registry/disabled ns_per_op record in artifact")
    else:
        print(f"disabled instrument site: {disabled_ns:.2f} ns "
              f"(gate: <= {max_disabled:.1f} ns)")
        if disabled_ns > max_disabled:
            problems.append(
                f"disabled instrument site costs {disabled_ns:.2f} ns "
                f"(> {max_disabled:.1f} ns: no longer just a null check)")
    if tick_us is None:
        problems.append("no sampler/us_per_tick record in artifact")
    else:
        print(f"sampler tick: {tick_us:.2f} us "
              f"(gate: <= {max_tick:.0f} us)")
        if tick_us > max_tick:
            problems.append(
                f"time-series sampler tick costs {tick_us:.2f} us "
                f"(> {max_tick:.0f} us)")
    if eval_us is None:
        problems.append("no health/us_per_eval record in artifact")
    else:
        print(f"health rule evaluation: {eval_us:.2f} us "
              f"(gate: <= {max_eval:.0f} us)")
        if eval_us > max_eval:
            problems.append(
                f"health rule evaluation costs {eval_us:.2f} us "
                f"(> {max_eval:.0f} us)")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("artifact", nargs="?", help="BENCH_perf.json path")
    parser.add_argument("--floors", help="bench_floors.json path")
    parser.add_argument("--obs", metavar="FILE",
                        help="check telemetry-overhead gates over "
                             "BENCH_obs.json instead of the perf gates")
    parser.add_argument("--explore", metavar="FILE",
                        help="check parallel branch-and-bound gates over "
                             "BENCH_explore.json instead of the perf gates")
    args = parser.parse_args()

    problems = []
    if args.obs:
        check_obs_overhead(args.obs, args.floors, problems)
    if args.explore:
        check_explore_gates(args.explore, problems)
    if args.artifact:
        values = load_values(args.artifact)
        if args.floors:
            check_floors(values, args.floors, problems)
        check_event_speedup(values, problems)
        check_thread_scaling(values, problems)
    elif not args.obs and not args.explore:
        parser.error("need BENCH_perf.json, --obs BENCH_obs.json, "
                     "and/or --explore BENCH_explore.json")

    for problem in problems:
        print(f"GATE FAILED: {problem}", file=sys.stderr)
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main())
