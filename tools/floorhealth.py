#!/usr/bin/env python3
"""Pretty-print HealthReport JSON and validate health-engine artifacts.

Usage:
    floorhealth.py REPORT.json           # pretty-print one health report
    floorhealth.py -                     # read the report from stdin
    floorhealth.py --bundle DIR          # validate an incident bundle
    floorhealth.py --prom FILE           # lint a Prometheus exposition
                                         #   (delegates to check_prom.py)

A report is the one-line JSON object HealthReport::to_json() emits
(written by `floor_service --health-json FILE`); docs/OBSERVABILITY.md
documents the schema and the HL001… rule catalogue. A bundle is the
directory the flight recorder writes on a critical transition
(`--incident-dir`): MANIFEST.json + stats.json + health.json and
optionally timeseries.json + trace.json. Like floorstat.py, this tool
only reads keys — unknown keys are ignored — so old copies keep working
against newer reports.

Exit status: 0 clean, 1 validation failure, 2 usage error. Pretty-print
mode exits 0 even for a critical report (reporting is not judging); use
--fail-on-warn / --fail-on-critical to gate scripts on the overall level.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

LEVELS = {"ok": 0, "warn": 1, "critical": 2}

BUNDLE_REQUIRED = ("MANIFEST.json", "stats.json", "health.json")


def load(path):
    text = sys.stdin.read() if str(path) == "-" else pathlib.Path(path).read_text()
    return json.loads(text)


def print_report(r):
    overall = r.get("overall", "ok")
    print(f"health: {overall.upper()} "
          f"(sample {r.get('samples', 0)}, t={r.get('t_seconds', 0.0):.3f}s, "
          f"incidents {r.get('incidents_written', 0)})")
    for rule in r.get("rules", []):
        state = "-" if not rule.get("enabled", True) else rule.get("level", "ok")
        marker = {"ok": " ", "warn": "!", "critical": "X", "-": " "}.get(state, "?")
        line = (f"  {marker} {rule.get('id', '?????'):<6}"
                f"{rule.get('name', '?'):<17} {state:<9}")
        if rule.get("message"):
            line += f" {rule['message']}"
        elif rule.get("enabled", True):
            line += (f" value={rule.get('value', 0.0):.4g}"
                     f" threshold={rule.get('threshold', 0.0):.4g}")
        else:
            line += " (disabled by config)"
        print(line)
    events = r.get("events", [])
    if events:
        print(f"  transitions ({len(events)}):")
        for ev in events:
            print(f"    sample {ev.get('sample', 0):>4}  "
                  f"t={ev.get('t_seconds', 0.0):8.3f}s  "
                  f"{ev.get('rule', '?????')}  "
                  f"{ev.get('from', '?')} -> {ev.get('to', '?')}"
                  + (f"  {ev['message']}" if ev.get("message") else ""))


def validate_bundle(bundle_dir):
    """Checks an incident bundle is complete and parseable. Returns a list
    of error strings (empty = valid)."""
    errors = []
    bundle = pathlib.Path(bundle_dir)
    if not bundle.is_dir():
        return [f"{bundle}: not a directory"]
    for name in BUNDLE_REQUIRED:
        if not (bundle / name).is_file():
            errors.append(f"missing {name}")
    if errors:
        return errors
    try:
        manifest = json.loads((bundle / "MANIFEST.json").read_text())
    except (json.JSONDecodeError, OSError) as exc:
        return [f"MANIFEST.json unreadable: {exc}"]
    for key in ("seq", "rule", "t_seconds", "files"):
        if key not in manifest:
            errors.append(f"MANIFEST.json missing key {key!r}")
    for name in manifest.get("files", []):
        path = bundle / name
        if not path.is_file():
            errors.append(f"MANIFEST lists {name} but it is absent")
            continue
        if name.endswith(".json"):
            try:
                json.loads(path.read_text())
            except json.JSONDecodeError as exc:
                errors.append(f"{name}: invalid JSON: {exc}")
    rule = manifest.get("rule", "")
    if rule and f"_{rule}" not in bundle.name:
        errors.append(f"bundle dir {bundle.name!r} does not carry rule {rule!r}")
    # The firing rule must actually appear in the frozen health report.
    try:
        health = json.loads((bundle / "health.json").read_text())
        ids = {r.get("id") for r in health.get("rules", [])}
        if rule and rule not in ids:
            errors.append(f"health.json has no rule {rule!r}")
    except (json.JSONDecodeError, OSError):
        pass  # already reported above
    return errors


def main():
    parser = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("report", nargs="?",
                        help="health report file, or '-' for stdin")
    parser.add_argument("--bundle", metavar="DIR",
                        help="validate an incident bundle directory")
    parser.add_argument("--prom", metavar="FILE",
                        help="lint a Prometheus exposition file")
    parser.add_argument("--fail-on-warn", action="store_true",
                        help="exit 1 when the overall level is warn or worse")
    parser.add_argument("--fail-on-critical", action="store_true",
                        help="exit 1 when the overall level is critical")
    args = parser.parse_args()

    if args.prom:
        sys.path.insert(0, str(pathlib.Path(__file__).parent))
        from check_prom import validate_text
        errors = validate_text(pathlib.Path(args.prom).read_text())
        for err in errors:
            print(f"{args.prom}: {err}")
        if not errors:
            print(f"{args.prom}: OK")
        return 1 if errors else 0

    if args.bundle:
        errors = validate_bundle(args.bundle)
        for err in errors:
            print(f"{args.bundle}: {err}")
        if not errors:
            print(f"{args.bundle}: OK")
        return 1 if errors else 0

    if args.report is None:
        parser.error("need a report file, '-', --bundle DIR, or --prom FILE")
    report = load(args.report)
    print_report(report)
    level = LEVELS.get(report.get("overall", "ok"), 0)
    if args.fail_on_critical and level >= LEVELS["critical"]:
        return 1
    if args.fail_on_warn and level >= LEVELS["warn"]:
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
