#!/usr/bin/env python3
"""Pretty-print (and diff) FloorStats snapshots from the telemetry layer.

Usage:
    floorstat.py SNAPSHOT.json            # pretty-print one snapshot
    floorstat.py --diff OLD.json NEW.json # counter deltas between two
    floor_service --stats-interval-ms 500 ... 2>&1 >/dev/null | floorstat.py -
                                          # tail a live stderr stats stream

A snapshot is the one-line JSON object FloorSession::stats_snapshot()
emits (written by `floor_service --stats-json FILE`, streamed by
`--stats-interval-ms N`). The stable key schema is documented in
docs/OBSERVABILITY.md; this tool is the human-facing reader for it, so it
only ever *reads* keys — unknown keys are ignored, missing ones print as
zero — keeping old floorstat binaries compatible with newer snapshots.

With `-` the tool reads line-delimited snapshots from stdin and reprints a
compact one-line digest per snapshot (for tailing a live floor).
"""

import argparse
import json
import pathlib
import sys


def fmt_rate(num, den):
    return f"{num / den:.1%}" if den else "n/a"


def fmt_secs(s):
    if s >= 1.0:
        return f"{s:.2f}s"
    if s >= 1e-3:
        return f"{s * 1e3:.1f}ms"
    return f"{s * 1e6:.0f}us"


def load(path):
    text = sys.stdin.read() if str(path) == "-" else pathlib.Path(path).read_text()
    return json.loads(text)


def print_snapshot(s):
    queue = s.get("queue", {})
    cache = s.get("cache", {})
    sim = s.get("sim", {})
    sched = s.get("sched", {})
    trace = s.get("trace", {})

    completed = s.get("completed", 0)
    # elapsed_seconds is the rate denominator the schema guarantees;
    # uptime_seconds is the pre-health-engine name of the same value.
    elapsed = s.get("elapsed_seconds", s.get("uptime_seconds", 0.0))
    jobs_per_sec = completed / elapsed if elapsed > 0 else 0.0
    print(f"floor: {completed}/{s.get('submitted', 0)} jobs over "
          f"{s.get('workers', 0)} worker(s) in {fmt_secs(elapsed)}"
          f" ({jobs_per_sec:.1f} jobs/s,"
          f" {s.get('in_flight', 0)} in flight, {s.get('errored', 0)} errored,"
          f" utilization {s.get('utilization', 0.0):.1%})")
    if not s.get("metrics_enabled", False):
        print("  metrics: disabled (run with --stats-json or FloorConfig::metrics)")
    capacity = queue.get("capacity", 0)
    print(f"  queue: depth={queue.get('depth', 0)}"
          + (f"/{capacity}" if capacity else "")
          + f" high_water={queue.get('high_water', 0)}"
          f" pushed={queue.get('pushed', 0)} popped={queue.get('popped', 0)}"
          f" steals={queue.get('steals', 0)}"
          f" backpressure={queue.get('backpressure_engages', 0)}")
    lookups = cache.get("lookups", 0)
    hits = cache.get("program_hits", 0) + cache.get("verdict_hits", 0)
    print(f"  cache: {hits}/{lookups} hits ({fmt_rate(hits, lookups)})"
          f" — program={cache.get('program_hits', 0)}"
          f" verdict={cache.get('verdict_hits', 0)}"
          f" insertions={cache.get('insertions', 0)}"
          f" evictions={cache.get('evictions', 0)}")
    memo_lookups = sim.get("memo_lookups", 0)
    memo_hits = sim.get("memo_hits", 0)
    print(f"  sim: memo {memo_hits}/{memo_lookups}"
          f" ({fmt_rate(memo_hits, memo_lookups)}),"
          f" precompute {fmt_secs(sim.get('precompute_seconds', 0.0))},"
          f" eval_passes={sim.get('eval_passes', 0)}"
          f" cell_evals={sim.get('cell_evals', 0)}"
          f" sweep_cell_evals={sim.get('sweep_cell_evals', 0)}")
    print(f"  sched: nodes={sched.get('nodes_expanded', 0)}"
          f" prunes={sched.get('prunes', 0)}"
          f" improvements={sched.get('improvements', 0)}"
          f" leaves_priced={sched.get('leaves_priced', 0)}")
    stages = s.get("stages", {})
    if any(d.get("count", 0) for d in stages.values()):
        print("  stages:")
        for name, d in stages.items():
            if not d.get("count", 0):
                continue
            print(f"    {name:<9} count={d['count']:<6}"
                  f" total={fmt_secs(d.get('total_seconds', 0.0)):<8}"
                  f" p50={d.get('p50_us', 0.0):.0f}us"
                  f" p90={d.get('p90_us', 0.0):.0f}us"
                  f" p99={d.get('p99_us', 0.0):.0f}us")
    busy = s.get("worker_busy_seconds", [])
    if busy:
        line = " ".join(f"w{i}={fmt_secs(b)}" for i, b in enumerate(busy))
        print(f"  workers: {line}")
    if trace.get("recorded", 0) or trace.get("dropped", 0):
        print(f"  trace: {trace.get('recorded', 0)} spans recorded,"
              f" {trace.get('dropped', 0)} dropped")


def flatten(obj, prefix=""):
    """Flattens nested dicts to dotted-key scalars (lists are skipped)."""
    out = {}
    for key, value in obj.items():
        dotted = f"{prefix}{key}"
        if isinstance(value, dict):
            out.update(flatten(value, dotted + "."))
        elif isinstance(value, (int, float)) and not isinstance(value, bool):
            out[dotted] = value
    return out


def print_diff(old, new):
    flat_old, flat_new = flatten(old), flatten(new)
    keys = sorted(set(flat_old) | set(flat_new))
    width = max((len(k) for k in keys), default=0)
    any_change = False
    for key in keys:
        a, b = flat_old.get(key, 0), flat_new.get(key, 0)
        if a == b:
            continue
        any_change = True
        delta = b - a
        sign = "+" if delta >= 0 else ""
        if isinstance(a, float) or isinstance(b, float):
            print(f"  {key:<{width}}  {a:.6g} -> {b:.6g}  ({sign}{delta:.6g})")
        else:
            print(f"  {key:<{width}}  {a} -> {b}  ({sign}{delta})")
    if not any_change:
        print("  (no change)")


def _hits(s):
    cache = s.get("cache", {})
    return cache.get("program_hits", 0) + cache.get("verdict_hits", 0)


def digest_line(s, prev=None):
    """One-line live digest of a snapshot. With a previous snapshot the
    counters become per-interval *rates* (jobs/s, hits/s over the elapsed
    delta) — a tail shows whether the floor is moving now, not how far it
    has come. Flushed per line so piping into another tool works."""
    queue = s.get("queue", {})
    t = s.get("elapsed_seconds", s.get("uptime_seconds", 0.0))
    rates = ""
    if prev is not None:
        dt = t - prev.get("elapsed_seconds", prev.get("uptime_seconds", 0.0))
        if dt > 0:
            jobs_rate = (s.get("completed", 0) - prev.get("completed", 0)) / dt
            hits_rate = (_hits(s) - _hits(prev)) / dt
            rates = f"jobs/s={jobs_rate:.1f} hits/s={hits_rate:.1f} "
    print(f"[{t:7.2f}s] "
          f"done={s.get('completed', 0)}/{s.get('submitted', 0)} "
          f"{rates}"
          f"inflight={s.get('in_flight', 0)} "
          f"depth={queue.get('depth', 0)} "
          f"util={s.get('utilization', 0.0):.0%}",
          flush=True)


def tail_stdin():
    """Digests line-delimited snapshots from stdin; a lone snapshot gets
    the full pretty-print instead."""
    snapshots = []
    for line in sys.stdin:
        line = line.strip()
        if not line:
            continue
        try:
            s = json.loads(line)
        except json.JSONDecodeError:
            continue  # interleaved non-JSON stderr noise
        snapshots.append(s)
        if len(snapshots) > 1:
            if len(snapshots) == 2:
                digest_line(snapshots[0])
            digest_line(s, snapshots[-2])
    if len(snapshots) == 1:
        print_snapshot(snapshots[0])
    return 0 if snapshots else 1


def main():
    parser = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("snapshot", nargs="?",
                        help="snapshot file, or '-' to tail stdin")
    parser.add_argument("--diff", nargs=2, metavar=("OLD", "NEW"),
                        help="print counter deltas between two snapshots")
    args = parser.parse_args()

    if args.diff:
        print_diff(load(args.diff[0]), load(args.diff[1]))
        return 0
    if args.snapshot is None:
        parser.error("need a snapshot file, '-', or --diff OLD NEW")
    if args.snapshot == "-":
        return tail_stdin()
    print_snapshot(load(args.snapshot))
    return 0


if __name__ == "__main__":
    sys.exit(main())
