#!/usr/bin/env python3
"""Lint a Prometheus text-exposition file (obs::to_prometheus output).

Validates the subset of the exposition format (version 0.0.4) the floor
emits, so CI catches a malformed --prom file without needing promtool:

  - metric and label names match the Prometheus grammar
  - every sample is preceded by # HELP and # TYPE lines for its family
  - counter sample names end in _total
  - histogram families carry the full triplet: cumulative, non-decreasing
    _bucket{le=...} series ending in le="+Inf", plus _sum and _count,
    with bucket(+Inf) == _count
  - sample values parse as floats; no duplicate sample lines

Usage:
  check_prom.py FILE [FILE...]      exit 1 and print errors if any fail
Importable: validate_text(text) -> list of error strings (empty = clean).
"""

from __future__ import annotations

import re
import sys

METRIC_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r"\s+(?P<value>\S+)\s*$"
)
LABEL_RE = re.compile(r'^([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"$')


def _family_of(name: str) -> str:
    """Base family name of a sample (strips histogram/counter suffixes)."""
    for suffix in ("_bucket", "_sum", "_count", "_total"):
        if name.endswith(suffix):
            return name[: -len(suffix)]
    return name


def validate_text(text: str) -> list:
    errors = []
    helped = set()  # families with # HELP seen
    typed = {}  # family -> declared type
    seen_samples = set()  # (name, labels) for duplicate detection
    # family -> list of (le, value) for histogram bucket checks
    buckets = {}
    sums = {}
    counts = {}
    sample_families = set()

    for lineno, line in enumerate(text.splitlines(), 1):
        if not line.strip():
            continue
        if line.startswith("# HELP "):
            parts = line.split(None, 3)
            if len(parts) < 4:
                errors.append(f"line {lineno}: HELP without text: {line!r}")
                continue
            helped.add(parts[2])
            continue
        if line.startswith("# TYPE "):
            parts = line.split()
            if len(parts) != 4 or parts[3] not in (
                "counter",
                "gauge",
                "histogram",
                "summary",
                "untyped",
            ):
                errors.append(f"line {lineno}: malformed TYPE: {line!r}")
                continue
            typed[parts[2]] = parts[3]
            continue
        if line.startswith("#"):
            continue  # other comments are legal

        m = SAMPLE_RE.match(line)
        if not m:
            errors.append(f"line {lineno}: unparseable sample: {line!r}")
            continue
        name, labels, value = m.group("name"), m.group("labels"), m.group("value")
        if not METRIC_NAME_RE.match(name):
            errors.append(f"line {lineno}: bad metric name: {name!r}")
            continue
        try:
            fvalue = float(value)
        except ValueError:
            errors.append(f"line {lineno}: bad sample value: {value!r}")
            continue

        label_pairs = []
        if labels:
            for part in labels.split(","):
                lm = LABEL_RE.match(part.strip())
                if not lm:
                    errors.append(f"line {lineno}: bad label: {part!r}")
                    break
                label_pairs.append((lm.group(1), lm.group(2)))

        key = (name, labels or "")
        if key in seen_samples:
            errors.append(f"line {lineno}: duplicate sample: {line!r}")
        seen_samples.add(key)

        family = _family_of(name)
        sample_families.add(family)
        declared = typed.get(family) or typed.get(name)
        if declared is None:
            errors.append(f"line {lineno}: sample {name!r} has no # TYPE")
            continue
        if family not in helped and name not in helped:
            errors.append(f"line {lineno}: sample {name!r} has no # HELP")

        if declared == "counter" and not name.endswith("_total"):
            errors.append(
                f"line {lineno}: counter sample {name!r} must end in _total"
            )
        if declared == "histogram":
            if name.endswith("_bucket"):
                le = dict(label_pairs).get("le")
                if le is None:
                    errors.append(f"line {lineno}: _bucket without le label")
                else:
                    buckets.setdefault(family, []).append((le, fvalue))
            elif name.endswith("_sum"):
                sums[family] = fvalue
            elif name.endswith("_count"):
                counts[family] = fvalue
            else:
                errors.append(
                    f"line {lineno}: histogram sample {name!r} has no "
                    "_bucket/_sum/_count suffix"
                )

    # Histogram family invariants.
    for family, declared in typed.items():
        if declared != "histogram" or family not in sample_families:
            continue
        fam_buckets = buckets.get(family, [])
        if not fam_buckets:
            errors.append(f"histogram {family}: no _bucket samples")
            continue
        if fam_buckets[-1][0] != "+Inf":
            errors.append(f"histogram {family}: last bucket is not +Inf")
        prev = -1.0
        for le, v in fam_buckets:
            if v < prev:
                errors.append(
                    f"histogram {family}: bucket le={le} not cumulative "
                    f"({v} < {prev})"
                )
            prev = v
        if family not in sums:
            errors.append(f"histogram {family}: missing _sum")
        if family not in counts:
            errors.append(f"histogram {family}: missing _count")
        elif fam_buckets[-1][0] == "+Inf" and fam_buckets[-1][1] != counts[family]:
            errors.append(
                f"histogram {family}: bucket(+Inf)={fam_buckets[-1][1]} "
                f"!= _count={counts[family]}"
            )

    if not sample_families:
        errors.append("no samples found")
    return errors


def main(argv: list) -> int:
    if len(argv) < 2:
        print(__doc__)
        return 2
    status = 0
    for path in argv[1:]:
        try:
            with open(path, "r", encoding="utf-8") as fh:
                text = fh.read()
        except OSError as exc:
            print(f"{path}: cannot read: {exc}")
            status = 1
            continue
        errors = validate_text(text)
        if errors:
            status = 1
            for err in errors:
                print(f"{path}: {err}")
        else:
            families = len(
                {
                    line.split()[2]
                    for line in text.splitlines()
                    if line.startswith("# TYPE ")
                }
            )
            print(f"{path}: OK ({families} metric families)")
    return status


if __name__ == "__main__":
    sys.exit(main(sys.argv))
