#!/usr/bin/env python3
"""Validate BENCH_<name>.json artifacts written by bench::JsonReporter.

Usage:
    check_bench_json.py FILE [FILE ...]
    check_bench_json.py --glob DIR      # validate every BENCH_*.json in DIR
    check_bench_json.py --floor FILE    # + require the floor streaming/cache
                                        #   record schema in FILE
    check_bench_json.py --obs FILE      # + require the telemetry-overhead
                                        #   record schema in FILE
    check_bench_json.py --explore FILE  # + require the parallel-B&B
                                        #   record schema in FILE

Each file must parse as JSON and carry a non-empty "records" array whose
entries have the flat JsonReporter shape: name, params (str->str map),
metric, and a numeric (or null, for non-finite) value. --floor additionally
checks that the named file carries the streaming-session and
repeated-spec-cache records bench_floor is contracted to emit (the CI floor
gates read them, so their absence must fail loudly rather than skip the
gate). Exits non-zero and prints one line per problem on failure.

Used by both the per-compiler "Bench artifact smoke" CI step and the
bench-trajectory job, so the two can never drift apart.
"""

import argparse
import json
import pathlib
import sys

REQUIRED_TOP_KEYS = ("bench", "schema_version", "records")
REQUIRED_RECORD_KEYS = ("name", "params", "metric", "value")


def check_file(path: pathlib.Path) -> list[str]:
    problems = []
    try:
        with path.open() as fh:
            doc = json.load(fh)
    except (OSError, json.JSONDecodeError) as exc:
        return [f"{path}: cannot parse: {exc}"]

    for key in REQUIRED_TOP_KEYS:
        if key not in doc:
            problems.append(f"{path}: missing top-level key '{key}'")
    records = doc.get("records")
    if not isinstance(records, list) or not records:
        problems.append(f"{path}: no records")
        return problems

    for i, rec in enumerate(records):
        if not isinstance(rec, dict):
            problems.append(f"{path}: record {i} is not an object")
            continue
        for key in REQUIRED_RECORD_KEYS:
            if key not in rec:
                problems.append(f"{path}: record {i} missing '{key}'")
        if "value" in rec and not isinstance(rec["value"], (int, float, type(None))):
            problems.append(f"{path}: record {i} value is not numeric/null")
        if "params" in rec and not isinstance(rec["params"], dict):
            problems.append(f"{path}: record {i} params is not an object")
    return problems


# (name, metric) pairs bench_floor must emit for the streaming session and
# the repeated-spec cache mix; the CI floor gates consume these.
FLOOR_REQUIRED_RECORDS = (
    ("streaming", "programs_per_sec"),
    ("streaming", "matches_batch"),
    ("cache", "programs_per_sec"),
    ("cache", "speedup_vs_cold"),
    ("cache", "cache_hit_rate"),
    ("stages", "seconds"),
)

FLOOR_REQUIRED_CACHE_CONFIGS = ("cold", "program_tier", "warm")


def check_floor_schema(path: pathlib.Path) -> list[str]:
    """Checks the floor-specific streaming/cache/stage record contract."""
    try:
        with path.open() as fh:
            doc = json.load(fh)
    except (OSError, json.JSONDecodeError):
        return []  # unparseable: check_file already reported it
    records = doc.get("records")
    if not isinstance(records, list):
        return []

    problems = []
    have = {(r.get("name"), r.get("metric")) for r in records
            if isinstance(r, dict)}
    for name, metric in FLOOR_REQUIRED_RECORDS:
        if (name, metric) not in have:
            problems.append(
                f"{path}: missing floor record name={name} metric={metric}")
    cache_configs = {r["params"].get("config") for r in records
                     if isinstance(r, dict) and r.get("name") == "cache"
                     and isinstance(r.get("params"), dict)}
    for config in FLOOR_REQUIRED_CACHE_CONFIGS:
        if config not in cache_configs:
            problems.append(
                f"{path}: missing cache sweep point config={config}")
    return problems


# (name, metric) pairs bench_obs must emit; the telemetry-overhead CI gate
# (check_perf_gates.py --obs) consumes overhead_frac, so its absence must
# fail loudly rather than skip the gate.
OBS_REQUIRED_RECORDS = (
    ("registry", "ns_per_op"),
    ("floor_overhead", "off_seconds"),
    ("floor_overhead", "on_seconds"),
    ("floor_overhead", "overhead_frac"),
    ("sampler", "us_per_tick"),
    ("health", "us_per_eval"),
)

OBS_REQUIRED_REGISTRY_OPS = ("add", "observe", "disabled", "record")


def check_obs_schema(path: pathlib.Path) -> list[str]:
    """Checks the telemetry micro-cost/overhead record contract."""
    try:
        with path.open() as fh:
            doc = json.load(fh)
    except (OSError, json.JSONDecodeError):
        return []  # unparseable: check_file already reported it
    records = doc.get("records")
    if not isinstance(records, list):
        return []

    problems = []
    have = {(r.get("name"), r.get("metric")) for r in records
            if isinstance(r, dict)}
    for name, metric in OBS_REQUIRED_RECORDS:
        if (name, metric) not in have:
            problems.append(
                f"{path}: missing obs record name={name} metric={metric}")
    ops = {r["params"].get("op") for r in records
           if isinstance(r, dict) and r.get("name") == "registry"
           and isinstance(r.get("params"), dict)}
    for op in OBS_REQUIRED_REGISTRY_OPS:
        if op not in ops:
            problems.append(f"{path}: missing registry micro-cost op={op}")
    return problems


# (name, metric) pairs bench_explore must emit for the parallel
# branch-and-bound section; the CI exploration gates
# (check_perf_gates.py --explore) consume bound_gap, speedup_vs_1_thread,
# deterministic_match and hw_threads, so their absence must fail loudly
# rather than skip the gate.
EXPLORE_REQUIRED_RECORDS = (
    ("parallel_bb", "bound_gap"),
    ("parallel_bb", "nodes_per_sec"),
    ("parallel_bb", "schedule_seconds"),
    ("parallel_bb_throughput", "nodes_per_sec"),
    ("parallel_bb_throughput", "speedup_vs_1_thread"),
    ("parallel_bb_throughput", "deterministic_match"),
    ("parallel_bb_throughput", "hw_threads"),
)

EXPLORE_REQUIRED_THREADS = ("1", "2", "4", "8")


def check_explore_schema(path: pathlib.Path) -> list[str]:
    """Checks the parallel branch-and-bound record contract."""
    try:
        with path.open() as fh:
            doc = json.load(fh)
    except (OSError, json.JSONDecodeError):
        return []  # unparseable: check_file already reported it
    records = doc.get("records")
    if not isinstance(records, list):
        return []

    problems = []
    have = {(r.get("name"), r.get("metric")) for r in records
            if isinstance(r, dict)}
    for name, metric in EXPLORE_REQUIRED_RECORDS:
        if (name, metric) not in have:
            problems.append(
                f"{path}: missing explore record name={name} metric={metric}")
    for name in ("parallel_bb", "parallel_bb_throughput"):
        threads = {r["params"].get("sched_threads") for r in records
                   if isinstance(r, dict) and r.get("name") == name
                   and isinstance(r.get("params"), dict)}
        for t in EXPLORE_REQUIRED_THREADS:
            if t not in threads:
                problems.append(
                    f"{path}: missing {name} row sched_threads={t}")
    return problems


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("files", nargs="*", type=pathlib.Path)
    parser.add_argument(
        "--glob",
        type=pathlib.Path,
        metavar="DIR",
        help="validate every BENCH_*.json found in DIR",
    )
    parser.add_argument(
        "--floor",
        type=pathlib.Path,
        metavar="FILE",
        help="also require the floor streaming/cache record schema in FILE",
    )
    parser.add_argument(
        "--obs",
        type=pathlib.Path,
        metavar="FILE",
        help="also require the telemetry-overhead record schema in FILE",
    )
    parser.add_argument(
        "--explore",
        type=pathlib.Path,
        metavar="FILE",
        help="also require the parallel-B&B record schema in FILE",
    )
    args = parser.parse_args()

    files = list(args.files)
    if args.glob is not None:
        files.extend(sorted(args.glob.glob("BENCH_*.json")))
    if args.floor is not None and args.floor not in files:
        files.append(args.floor)
    if args.obs is not None and args.obs not in files:
        files.append(args.obs)
    if args.explore is not None and args.explore not in files:
        files.append(args.explore)
    if not files:
        print("check_bench_json: no files to check", file=sys.stderr)
        return 2

    problems = []
    for path in files:
        problems.extend(check_file(path))
    if args.floor is not None:
        problems.extend(check_floor_schema(args.floor))
    if args.obs is not None:
        problems.extend(check_obs_schema(args.obs))
    if args.explore is not None:
        problems.extend(check_explore_schema(args.explore))
    for problem in problems:
        print(problem, file=sys.stderr)
    if not problems:
        names = ", ".join(p.name for p in files)
        print(f"check_bench_json: {len(files)} artifact(s) OK: {names}")
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main())
