/// \file lint.cpp
/// Command-line front end of the static verification layer (src/verify/):
/// generates a design with the tree's own generators and runs the
/// structural linter over it — the sign-off step a system integrator runs
/// on an emitted TAM before committing tester time (and the tool the CI
/// static-analysis leg runs over every emitted design shape).
///
/// Usage:
///   lint --cas N P1,...,Pk [--wrappers]      lint a composed CAS-BUS
///                                            netlist (--wrappers: the
///                                            complete TAM with P1500
///                                            wrappers)
///   lint --core FFS CHAINS [--seed S]        lint a synthetic scan core,
///                                            including its scan chains
///   lint --soc CORES PROFILE WIDTH STRATEGY  lint a generated SoC's
///        [--seed S] [--instance I]           schedule (branch_bound also
///                                            checks the optimality
///                                            certificate)
/// Common flags: --verbose (every diagnostic), --fanout CEIL (NL006
/// ceiling, 0 disables), --no-opt (lint the raw generator output: the
/// unoptimized CAS decoder carries dead comparator terms, which the linter
/// reports as NL004 warnings — the same cells netlist::optimize() sweeps).
///
/// Exit codes: 0 clean or warnings only, 1 error-grade findings, 2 usage.

#include <cstdlib>
#include <cstring>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "core/casbus_netlist.hpp"
#include "core/complete_tam.hpp"
#include "explore/branch_bound.hpp"
#include "explore/soc_generator.hpp"
#include "tpg/synthcore.hpp"
#include "verify/netlist_lint.hpp"
#include "verify/schedule_lint.hpp"

namespace {

int usage(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " (--cas N P1,...,Pk [--wrappers] |\n"
               "        --core FFS CHAINS [--seed S] |\n"
               "        --soc CORES PROFILE WIDTH STRATEGY [--seed S] "
               "[--instance I])\n"
               "       [--verbose] [--fanout CEIL]\n";
  return 2;
}

/// Prints the report and maps it onto the exit code contract.
int finish(const casbus::verify::LintReport& report, bool verbose) {
  using casbus::verify::Severity;
  if (verbose || !report.admissible())
    std::cerr << report.to_string();
  std::cout << report.summary() << " (" << report.error_count()
            << " errors, " << report.warning_count() << " warnings)\n";
  return report.admissible() ? 0 : 1;
}

std::vector<unsigned> parse_ports(const char* arg) {
  std::vector<unsigned> ports;
  std::stringstream ss(arg);
  std::string tok;
  while (std::getline(ss, tok, ','))
    ports.push_back(static_cast<unsigned>(std::atoi(tok.c_str())));
  return ports;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace casbus;

  enum class Mode { None, Cas, Core, Soc } mode = Mode::None;
  bool wrappers = false;
  bool verbose = false;
  bool optimize = true;
  std::uint64_t seed = 1;
  std::size_t instance = 0;
  verify::NetlistLintConfig netlist_config;
  std::vector<const char*> positional;

  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    if (std::strcmp(a, "--cas") == 0) mode = Mode::Cas;
    else if (std::strcmp(a, "--core") == 0) mode = Mode::Core;
    else if (std::strcmp(a, "--soc") == 0) mode = Mode::Soc;
    else if (std::strcmp(a, "--wrappers") == 0) wrappers = true;
    else if (std::strcmp(a, "--verbose") == 0) verbose = true;
    else if (std::strcmp(a, "--no-opt") == 0) optimize = false;
    else if (std::strcmp(a, "--seed") == 0 && i + 1 < argc)
      seed = static_cast<std::uint64_t>(std::atoll(argv[++i]));
    else if (std::strcmp(a, "--instance") == 0 && i + 1 < argc)
      instance = static_cast<std::size_t>(std::atoll(argv[++i]));
    else if (std::strcmp(a, "--fanout") == 0 && i + 1 < argc)
      netlist_config.fanout_ceiling =
          static_cast<std::size_t>(std::atoll(argv[++i]));
    else if (a[0] == '-')
      return usage(argv[0]);
    else
      positional.push_back(a);
  }

  try {
    switch (mode) {
      case Mode::Cas: {
        if (positional.size() != 2) return usage(argv[0]);
        const auto width = static_cast<unsigned>(std::atoi(positional[0]));
        const std::vector<unsigned> ports = parse_ports(positional[1]);
        if (wrappers) {
          tam::CompleteTamSpec spec;
          spec.width = width;
          spec.run_optimizer = optimize;
          for (const unsigned p : ports) {
            p1500::WrapperSpec w;
            w.n_func_in = 2;
            w.n_func_out = 2;
            w.n_chains = p;
            spec.wrappers.push_back(w);
          }
          const tam::GeneratedCompleteTam tam = generate_complete_tam(spec);
          std::cout << "lint: complete TAM N=" << tam.width << ", "
                    << ports.size() << " wrapped cores, "
                    << tam.netlist.cell_count() << " cells\n";
          return finish(verify::lint_netlist(tam.netlist, netlist_config),
                        verbose);
        }
        tam::CasBusNetlistSpec spec;
        spec.width = width;
        spec.ports_per_cas = ports;
        spec.run_optimizer = optimize;
        const tam::GeneratedCasBus bus = tam::generate_casbus_netlist(spec);
        std::cout << "lint: CAS-BUS N=" << bus.width << ", " << ports.size()
                  << " CASes, " << bus.netlist.cell_count() << " cells\n";
        return finish(verify::lint_netlist(bus.netlist, netlist_config),
                      verbose);
      }

      case Mode::Core: {
        if (positional.size() != 2) return usage(argv[0]);
        tpg::SyntheticCoreSpec spec;
        spec.n_flipflops =
            static_cast<std::size_t>(std::atoll(positional[0]));
        spec.n_chains = static_cast<std::size_t>(std::atoll(positional[1]));
        spec.n_gates = 4 * spec.n_flipflops;
        spec.seed = seed;
        const tpg::SyntheticCore core = tpg::make_synthetic_core(spec);
        for (std::size_t c = 0; c < core.chains.size(); ++c)
          netlist_config.scan_chains.push_back(verify::ScanChainSpec{
              "si" + std::to_string(c), "so" + std::to_string(c),
              core.chains[c].size()});
        std::cout << "lint: synthetic core, " << core.netlist.cell_count()
                  << " cells, " << core.chains.size() << " chains\n";
        return finish(verify::lint_netlist(core.netlist, netlist_config),
                      verbose);
      }

      case Mode::Soc: {
        if (positional.size() != 4) return usage(argv[0]);
        const auto cores =
            static_cast<std::size_t>(std::atoll(positional[0]));
        const explore::SocProfile profile =
            explore::profile_from_name(positional[1]);
        const auto width = static_cast<unsigned>(std::atoi(positional[2]));
        const sched::Strategy strategy =
            sched::strategy_from_name(positional[3]);
        const explore::GeneratedSoc soc =
            explore::SocGenerator(seed).generate(cores, profile, instance);
        std::cout << "lint: " << soc.name << ", "
                  << soc.cores.size() << " top-level cores, width " << width
                  << ", strategy " << positional[3] << "\n";
        if (strategy == sched::Strategy::BranchBound) {
          const sched::SessionScheduler scheduler(soc.cores, width);
          const explore::BranchBoundResult result =
              explore::BranchBoundScheduler(scheduler).run();
          return finish(
              verify::lint_branch_bound(result, soc.cores, width), verbose);
        }
        const sched::Schedule schedule =
            sched::schedule_with(soc.cores, width, strategy);
        return finish(verify::lint_schedule(schedule, soc.cores, width),
                      verbose);
      }

      case Mode::None:
        return usage(argv[0]);
    }
  } catch (const Error& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return usage(argv[0]);
}
