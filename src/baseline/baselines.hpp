/// \file baselines.hpp
/// Baseline TAM architectures the paper positions CAS-BUS against (§4):
///
///  - [4] Marinissen et al., "A structured and scalable mechanism for test
///    access to embedded reusable cores" (TestRail/TestShell): the N TAM
///    wires are partitioned into rails at *design time*; cores on one rail
///    daisy-chain through their TestShells and are tested sequentially;
///    rails operate in parallel. No run-time reconfiguration ("the TAM and
///    the wrapper are closely merged, leaving few freedom of decision to
///    the system integrator").
///
///  - [5] Varma & Bhatia, "A structured test re-use methodology" (direct
///    multiplexed test bus): each core's test terminals are multiplexed to
///    chip pins; one core is tested at a time at full pin parallelism.
///
/// Both are modeled analytically with the same validated time formulas the
/// CAS-BUS scheduler uses, so the comparison isolates the architectural
/// difference (reconfigurability and wire sharing) rather than modeling
/// artifacts.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sched/balance.hpp"
#include "sched/time_model.hpp"

namespace casbus::baseline {

/// Result of evaluating one TAM on one SoC.
struct TamEvaluation {
  std::string tam_name;
  std::uint64_t test_cycles = 0;
  double area_ge = 0.0;        ///< TAM logic area (switches/shells/muxes)
  std::size_t sessions = 0;    ///< configuration episodes
};

/// Direct multiplexed access [5]: cores tested one at a time; each core's
/// chains are balanced over min(width, chains) pins; a mux tree per pin
/// selects among cores.
TamEvaluation evaluate_direct_mux(
    const std::vector<sched::CoreTestSpec>& cores, unsigned width);

/// TestRail [4]: wires split into \p rails fixed rails (widths as equal as
/// possible); cores assigned to rails by LPT on their total test load at
/// design time; within a rail cores run sequentially through their shells
/// (1 bypass bit per idle core on the rail); rails run in parallel.
TamEvaluation evaluate_testrail(
    const std::vector<sched::CoreTestSpec>& cores, unsigned width,
    unsigned rails);

/// CAS-BUS with the greedy reconfiguring scheduler plus generated-CAS area
/// (optimized gate-level implementation).
TamEvaluation evaluate_casbus(
    const std::vector<sched::CoreTestSpec>& cores, unsigned width);

}  // namespace casbus::baseline
