#include "baseline/baselines.hpp"

#include <algorithm>
#include <map>
#include <numeric>

#include "core/cas_generator.hpp"
#include "netlist/area.hpp"
#include "sched/scheduler.hpp"

namespace casbus::baseline {

using sched::ChainItem;
using sched::CoreTestSpec;

namespace {

/// Gate-equivalent cost constants shared by the analytic area models
/// (values from netlist::AreaModel::typical()).
constexpr double kMux2Ge = 2.25;
constexpr double kDffGe = 5.5;

/// Balanced per-core scan time on \p wires dedicated wires.
std::uint64_t solo_scan_cycles(const CoreTestSpec& core, unsigned wires) {
  std::vector<ChainItem> items;
  items.reserve(core.chains.size());
  for (std::size_t c = 0; c < core.chains.size(); ++c)
    items.push_back(ChainItem{0, c, core.chains[c]});
  const sched::Balance b = sched::assign_lpt_refined(items, wires);
  return sched::scan_cycles(b.max_load(), core.patterns);
}

}  // namespace

TamEvaluation evaluate_direct_mux(const std::vector<CoreTestSpec>& cores,
                                  unsigned width) {
  CASBUS_REQUIRE(width >= 1, "direct mux: width >= 1");
  TamEvaluation eval;
  eval.tam_name = "direct-mux";
  eval.sessions = cores.size();

  for (const CoreTestSpec& core : cores) {
    if (core.is_scan()) {
      const auto pins = static_cast<unsigned>(
          std::min<std::size_t>(core.chains.size(), width));
      eval.test_cycles += solo_scan_cycles(core, pins);
    }
    eval.test_cycles += core.bist_cycles;
  }

  // One selection mux tree per pin direction: each of `width` pins selects
  // among all cores (cores-1 mux2 cells), for stimulus and response sides.
  if (cores.size() > 1)
    eval.area_ge = 2.0 * width *
                   static_cast<double>(cores.size() - 1) * kMux2Ge;
  return eval;
}

TamEvaluation evaluate_testrail(const std::vector<CoreTestSpec>& cores,
                                unsigned width, unsigned rails) {
  CASBUS_REQUIRE(rails >= 1 && rails <= width,
                 "testrail: need 1 <= rails <= width");
  TamEvaluation eval;
  eval.tam_name = "testrail";
  eval.sessions = 1;  // fixed at design time

  // Rail widths as equal as possible.
  std::vector<unsigned> rail_width(rails, width / rails);
  for (unsigned r = 0; r < width % rails; ++r) ++rail_width[r];

  // Design-time assignment: LPT on each core's standalone test load.
  std::vector<std::size_t> order(cores.size());
  std::iota(order.begin(), order.end(), 0);
  const auto load_of = [&](std::size_t i) {
    const CoreTestSpec& c = cores[i];
    if (c.is_scan())
      return static_cast<std::uint64_t>(c.patterns) * c.total_scan_bits();
    return c.bist_cycles;
  };
  std::stable_sort(order.begin(), order.end(), [&](auto a, auto b) {
    return load_of(a) > load_of(b);
  });

  std::vector<std::uint64_t> rail_time(rails, 0);
  std::vector<std::size_t> rail_cores(rails, 0);
  std::vector<std::vector<std::size_t>> rail_members(rails);
  for (const std::size_t i : order) {
    const auto r = static_cast<unsigned>(
        std::min_element(rail_time.begin(), rail_time.end()) -
        rail_time.begin());
    const CoreTestSpec& c = cores[i];
    std::uint64_t t = 0;
    if (c.is_scan()) t += solo_scan_cycles(c, rail_width[r]);
    t += c.bist_cycles;
    rail_time[r] += t;
    rail_members[r].push_back(i);
    ++rail_cores[r];
  }

  // Shell bypass overhead: while a core is tested, every idle core on its
  // rail adds one bypass flip-flop to the shift path -> +patterns*(m-1)
  // cycles per scan core on a rail with m cores.
  for (unsigned r = 0; r < rails; ++r) {
    if (rail_members[r].size() < 2) continue;
    for (const std::size_t i : rail_members[r]) {
      if (cores[i].is_scan())
        rail_time[r] += cores[i].patterns * (rail_members[r].size() - 1);
    }
  }

  eval.test_cycles = *std::max_element(rail_time.begin(), rail_time.end());

  // TestShell per core: per rail wire a bypass DFF and a routing mux, both
  // directions.
  for (unsigned r = 0; r < rails; ++r)
    eval.area_ge += static_cast<double>(rail_cores[r]) * rail_width[r] *
                    (kDffGe + 2.0 * kMux2Ge);
  return eval;
}

TamEvaluation evaluate_casbus(const std::vector<CoreTestSpec>& cores,
                              unsigned width) {
  TamEvaluation eval;
  eval.tam_name = "cas-bus";

  sched::SessionScheduler scheduler(cores, width);
  const sched::Schedule schedule = scheduler.best();
  eval.test_cycles = schedule.total_cycles;
  eval.sessions = schedule.sessions.size();

  const netlist::AreaModel area = netlist::AreaModel::typical();
  std::map<unsigned, double> cache;
  for (const CoreTestSpec& core : cores) {
    const auto p = static_cast<unsigned>(
        core.is_scan() ? std::min<std::size_t>(core.chains.size(), width)
                       : 1);
    auto it = cache.find(p);
    if (it == cache.end()) {
      const tam::GeneratedCas cas = tam::generate_cas(
          width, p, {tam::CasImplementation::OptimizedGateLevel, true});
      it = cache.emplace(p, area.total(cas.netlist)).first;
    }
    eval.area_ge += it->second;
  }
  return eval;
}

}  // namespace casbus::baseline
