/// \file soc_generator.hpp
/// Seeded synthetic SoC populations for design-space exploration.
///
/// The paper's experiments stop at paper-sized SoCs (~10 cores); the
/// generator produces the 100–1000-core instances the scalability claim
/// actually needs, with chain-length / pattern / BIST distributions in the
/// range of industrial cores (log-uniform sizes, a few very large cores, a
/// long tail of small ones — the shape SOC test-integration practice
/// reports). Output is a plain CoreTestSpec list, directly consumable by
/// sched::SessionScheduler / exact_schedule / BranchBoundScheduler, plus a
/// mapping onto floor::JobSpec so populations can also be streamed through
/// the cycle-accurate test floor.
///
/// ## Determinism contract
/// generate() is a pure function of (root seed, profile, core count,
/// instance): equal inputs yield byte-identical specs, independent of call
/// order — the same derive_stream() discipline the test floor uses.

#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "floor/job.hpp"
#include "sched/time_model.hpp"

namespace casbus::explore {

/// Named population shapes.
enum class SocProfile {
  Mixed,         ///< industrial mix: ~2/3 scan cores, 1/3 BIST engines
  ScanHeavy,     ///< almost everything scanned, bigger chains & budgets
  BistHeavy,     ///< BIST-dominated (hybrid-BIST style SoCs), long engines
  Hierarchical,  ///< leaf cores clustered into tunneled parent subsystems
};

inline constexpr std::size_t kProfileCount = 4;

/// Stable lowercase name ("mixed", "scan_heavy", "bist_heavy",
/// "hierarchical") — the CLI / bench vocabulary.
[[nodiscard]] const char* profile_name(SocProfile p) noexcept;

/// Inverse of profile_name(); throws PreconditionError on unknown names.
[[nodiscard]] SocProfile profile_from_name(std::string_view name);

/// One synthetic SoC instance.
struct GeneratedSoc {
  std::string name;        ///< "mixed-100#0" style identifier
  SocProfile profile = SocProfile::Mixed;
  std::size_t requested_cores = 0;  ///< leaf cores asked for
  std::vector<sched::CoreTestSpec> cores;  ///< top-level schedulable cores
  unsigned suggested_width = 8;    ///< starting TAM width for sweeps

  [[nodiscard]] std::size_t scan_core_count() const;
  [[nodiscard]] std::size_t bist_core_count() const;
  [[nodiscard]] std::uint64_t total_scan_bits() const;
};

/// Generates reproducible synthetic SoC populations from one root seed.
class SocGenerator {
 public:
  explicit SocGenerator(std::uint64_t root_seed) : seed_(root_seed) {}

  /// Instance \p instance of the (\p cores, \p profile) population. For
  /// SocProfile::Hierarchical, \p cores counts *leaf* cores; the returned
  /// top-level core list is shorter (clusters are tested through a parent
  /// CAS tunnel and scheduled as one aggregate core).
  [[nodiscard]] GeneratedSoc generate(std::size_t cores, SocProfile profile,
                                      std::size_t instance = 0) const;

  /// Maps population (\p profile, instance ids 0..count-1) onto
  /// floor-executable jobs: scenario chosen by profile, strategies cycling
  /// through the executable set including the new BranchBound / Exact, and
  /// core counts clamped to what the cycle-accurate tester synthesizes in
  /// milliseconds. This is the bridge that lets a generated population be
  /// replayed end-to-end through the floor — batch (floor::TestFloor) or
  /// live (floor::FloorSession, where these specs are the submit stream;
  /// bench_floor's streaming experiment drives exactly that).
  [[nodiscard]] std::vector<floor::JobSpec> floor_jobs(
      std::size_t count, SocProfile profile) const;

  [[nodiscard]] std::uint64_t seed() const noexcept { return seed_; }

 private:
  std::uint64_t seed_;
};

}  // namespace casbus::explore
