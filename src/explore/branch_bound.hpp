/// \file branch_bound.hpp
/// Best-first branch-and-bound session scheduling — the scalable optimal /
/// proven-gap counterpart of sched::exact_schedule, multi-threaded since
/// PR 10.
///
/// The search walks the same space (set partitions of the scan cores into
/// sessions; BIST engines slotted greedily at the leaves by
/// sched::price_scan_partition) but best-first over the shared balance +
/// BIST-slot lower bounds (sched/lower_bound.hpp), with a node budget and
/// an anytime incumbent: on paper-sized SoCs it exhausts the space and
/// *proves* optimality; on 100–1000-core synthetic SoCs it stops at the
/// budget and reports the incumbent together with a certified lower bound
/// (the smallest f of any open node), i.e. a proven optimality gap — the
/// branch-and-bound-with-balance-bound engine the ROADMAP scheduling item
/// calls for.
///
/// ## Parallel search (BranchBoundConfig::threads)
/// The frontier is sharded into per-thread local min-heaps over an
/// arena of shared prefix nodes. The search runs in synchronous rounds:
/// a serial selection phase pops the cheapest still-viable nodes from
/// every shard, workers expand / price them in parallel against a
/// round-start incumbent snapshot, and a serial merge applies children,
/// incumbent offers, and counters in selection order. Empty shards steal
/// work from the fullest frontier at each round boundary.
///
/// ## Termination proof
/// Every open node's f is an admissible lower bound on every completion
/// of its prefix, and every generated child either enters some shard heap
/// or is pruned with f >= incumbent. The search therefore ends only when
/// each shard heap's cheapest node (and hence every open node anywhere)
/// cannot beat the incumbent — at which point the incumbent is optimal —
/// or when the node budget is exhausted, where the minimum f across all
/// shard tops certifies the reported lower bound.
///
/// ## Determinism
/// In deterministic mode (the default) the shard count and the whole
/// round structure are independent of the thread count, workers compute
/// pure functions of round-start snapshots, and the merge is serial — so
/// the incumbent schedule, optimality verdict, certified lower bound and
/// all counters are byte-identical at any `threads` value. That is what
/// makes `threads` safe to exclude from floor cache keys (see
/// floor::JobSimOptions). Non-deterministic mode trades this for eager
/// lock-free incumbent publication (atomic min) and live pruning.

#pragma once

#include <cstdint>

#include "sched/scheduler.hpp"

namespace casbus::explore {

/// Search knobs.
struct BranchBoundConfig {
  /// Node expansions before the search stops and reports the incumbent
  /// with its proven gap. ~50k exhausts every <= 9-core instance and keeps
  /// 1000-core runs in tens of milliseconds of bound arithmetic.
  std::size_t node_budget = 50000;
  /// Every this many expansions the most promising open node is greedily
  /// completed and priced, so the incumbent keeps improving on instances
  /// far too large to reach leaves by expansion alone. Clamped internally
  /// to node_budget / (max_dives + 1) so dives still fire under small
  /// budgets; 0 disables diving.
  std::size_t dive_interval = 1024;
  /// Cap on greedy dives (full-partition pricing is the expensive step on
  /// huge instances).
  std::size_t max_dives = 16;
  /// Worker threads for the search; 1 = serial, 0 = one per hardware
  /// thread. Expansion, leaf pricing and greedy dives all parallelize.
  std::size_t threads = 1;
  /// Fixed round structure (16 frontier shards, synchronous rounds,
  /// serial merge): incumbent, optimality verdict, certified lower bound
  /// and every counter are byte-identical at any thread count. When
  /// false, workers publish incumbent improvements immediately (lock-free
  /// atomic min) and prune against the live value — often faster, but
  /// results may vary run to run on tie-broken instances.
  bool deterministic = true;
};

/// Search outcome.
struct BranchBoundResult {
  sched::Schedule schedule;        ///< incumbent (always chip-synchronous)
  std::uint64_t best_cost = 0;     ///< schedule.total_cycles
  /// Certified lower bound on every session-partition schedule of the
  /// instance. Equal to best_cost when optimal.
  std::uint64_t lower_bound = 0;
  std::uint64_t nodes_expanded = 0;
  std::uint64_t leaves_priced = 0;
  std::uint64_t dives = 0;
  /// Children discarded because their bound met the incumbent — the
  /// search-effort the balance bound saved (telemetry; see ScheduleStats).
  std::uint64_t prunes = 0;
  /// Times a priced partition replaced the incumbent (seeding included).
  std::uint64_t incumbent_improvements = 0;
  /// Round boundaries at which an empty frontier shard stole open nodes
  /// from the fullest one (parallel search telemetry).
  std::uint64_t rebalances = 0;
  bool optimal = false;  ///< search space exhausted within the budget

  /// Proven optimality gap: incumbent / lower_bound − 1 (0 when optimal).
  [[nodiscard]] double gap() const {
    if (optimal || lower_bound == 0 || best_cost <= lower_bound) return 0.0;
    return static_cast<double>(best_cost) /
               static_cast<double>(lower_bound) -
           1.0;
  }
};

/// Branch-and-bound search over one SessionScheduler instance. The
/// scheduler reference must outlive the object.
class BranchBoundScheduler {
 public:
  explicit BranchBoundScheduler(const sched::SessionScheduler& scheduler,
                                BranchBoundConfig config = {});

  /// Runs the search (const — every call is independent, and in
  /// deterministic mode identical).
  [[nodiscard]] BranchBoundResult run() const;

 private:
  const sched::SessionScheduler& scheduler_;
  BranchBoundConfig config_;
};

}  // namespace casbus::explore
