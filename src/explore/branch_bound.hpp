/// \file branch_bound.hpp
/// Best-first branch-and-bound session scheduling — the scalable optimal /
/// proven-gap counterpart of sched::exact_schedule.
///
/// The search walks the same space (set partitions of the scan cores into
/// sessions; BIST engines slotted greedily at the leaves by
/// sched::price_scan_partition) but best-first over the shared balance
/// lower bound (sched/lower_bound.hpp), with a node budget and an anytime
/// incumbent: on paper-sized SoCs it exhausts the space and *proves*
/// optimality; on 100–1000-core synthetic SoCs it stops at the budget and
/// reports the incumbent together with a certified lower bound (the
/// smallest f of any open node), i.e. a proven optimality gap — the
/// branch-and-bound-with-balance-bound engine the ROADMAP scheduling item
/// calls for.

#pragma once

#include <cstdint>

#include "sched/scheduler.hpp"

namespace casbus::explore {

/// Search knobs.
struct BranchBoundConfig {
  /// Node expansions before the search stops and reports the incumbent
  /// with its proven gap. ~50k exhausts every <= 9-core instance and keeps
  /// 1000-core runs in tens of milliseconds of bound arithmetic.
  std::size_t node_budget = 50000;
  /// Every this many expansions the most promising open node is greedily
  /// completed and priced, so the incumbent keeps improving on instances
  /// far too large to reach leaves by expansion alone. Clamped internally
  /// to node_budget / (max_dives + 1) so dives still fire under small
  /// budgets; 0 disables diving.
  std::size_t dive_interval = 1024;
  /// Cap on greedy dives (full-partition pricing is the expensive step on
  /// huge instances).
  std::size_t max_dives = 16;
};

/// Search outcome.
struct BranchBoundResult {
  sched::Schedule schedule;        ///< incumbent (always chip-synchronous)
  std::uint64_t best_cost = 0;     ///< schedule.total_cycles
  /// Certified lower bound on every session-partition schedule of the
  /// instance. Equal to best_cost when optimal.
  std::uint64_t lower_bound = 0;
  std::uint64_t nodes_expanded = 0;
  std::uint64_t leaves_priced = 0;
  std::uint64_t dives = 0;
  /// Children discarded because their bound met the incumbent — the
  /// search-effort the balance bound saved (telemetry; see ScheduleStats).
  std::uint64_t prunes = 0;
  /// Times a priced partition replaced the incumbent (seeding included).
  std::uint64_t incumbent_improvements = 0;
  bool optimal = false;  ///< search space exhausted within the budget

  /// Proven optimality gap: incumbent / lower_bound − 1 (0 when optimal).
  [[nodiscard]] double gap() const {
    if (optimal || lower_bound == 0 || best_cost <= lower_bound) return 0.0;
    return static_cast<double>(best_cost) /
               static_cast<double>(lower_bound) -
           1.0;
  }
};

/// Branch-and-bound search over one SessionScheduler instance. The
/// scheduler reference must outlive the object.
class BranchBoundScheduler {
 public:
  explicit BranchBoundScheduler(const sched::SessionScheduler& scheduler,
                                BranchBoundConfig config = {});

  /// Runs the search (const — every call is independent and identical).
  [[nodiscard]] BranchBoundResult run() const;

 private:
  const sched::SessionScheduler& scheduler_;
  BranchBoundConfig config_;
};

}  // namespace casbus::explore
