/// \file explorer.hpp
/// Design-space exploration: the paper's §3.2 trade-off ("a good trade-off
/// between test time, test requirements and CAS-BUS overhead allows to
/// choose an optimal width for the test bus") evaluated at industrial
/// scale — a Pareto sweep over TAM width × scheduling strategy reporting
/// test time, bus area, and the proven optimality gap for every point.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "explore/branch_bound.hpp"
#include "explore/soc_generator.hpp"

namespace casbus::explore {

/// Sweep axes.
struct ExploreConfig {
  /// Bus widths to evaluate; empty = {suggested/2, suggested,
  /// suggested*2} clamped to [2, 64].
  std::vector<unsigned> widths;
  std::vector<sched::Strategy> strategies = {
      sched::Strategy::Greedy, sched::Strategy::Phased,
      sched::Strategy::BranchBound};
  BranchBoundConfig branch_bound;
};

/// One evaluated (width, strategy) point.
struct ExplorePoint {
  unsigned width = 0;
  sched::Strategy strategy = sched::Strategy::Greedy;
  std::uint64_t test_cycles = 0;
  double bus_area_ge = 0.0;          ///< sum of per-core CAS areas (GE)
  double pass_transistor_ge = 0.0;   ///< §3.3 alternative, same switches
  /// Proven lower bound the gap is measured against: the B&B certificate
  /// for Strategy::BranchBound, the instance-wide schedule_lower_bound for
  /// everything else.
  std::uint64_t lower_bound = 0;
  double gap = 0.0;                  ///< test_cycles / lower_bound − 1
  bool proven_optimal = false;       ///< B&B exhausted the search space
  bool pareto = false;               ///< on the (cycles, area) frontier
  double schedule_seconds = 0.0;     ///< wall time spent scheduling
};

/// Full sweep result.
struct ExploreReport {
  std::string soc_name;
  std::size_t core_count = 0;
  std::vector<ExplorePoint> points;

  /// Fastest point overall (nullptr when empty).
  [[nodiscard]] const ExplorePoint* best_time() const;
};

/// Sweeps one synthetic (or hand-built) SoC across the configured design
/// space.
class DesignSpaceExplorer {
 public:
  explicit DesignSpaceExplorer(GeneratedSoc soc) : soc_(std::move(soc)) {}

  [[nodiscard]] ExploreReport sweep(const ExploreConfig& config = {}) const;

  [[nodiscard]] const GeneratedSoc& soc() const noexcept { return soc_; }

  /// Total CAS-BUS area for \p cores on a \p width-wire bus, in gate
  /// equivalents. Small geometries are generated gate-level and measured
  /// with netlist::area (bit-exact with the Table 1 pipeline, memoized per
  /// port count); geometries whose instruction space is too large to
  /// synthesize use the documented Table 1 trend extrapolation — which is
  /// the honest answer anyway: nobody tapes out a 2^64-instruction
  /// decoder, and the exploding estimate is exactly the §3.2 overhead
  /// signal the sweep exists to expose.
  static double bus_area_ge(const std::vector<sched::CoreTestSpec>& cores,
                            unsigned width);

  /// §3.3 pass-transistor crossbar area for the same switches (analytic,
  /// safe at any geometry).
  static double bus_pass_transistor_ge(
      const std::vector<sched::CoreTestSpec>& cores, unsigned width);

 private:
  GeneratedSoc soc_;
};

}  // namespace casbus::explore
