#include "explore/branch_bound.hpp"

#include <algorithm>
#include <atomic>
#include <barrier>
#include <queue>
#include <thread>
#include <utility>
#include <vector>

#include "sched/exact.hpp"
#include "sched/lower_bound.hpp"

namespace casbus::explore {

namespace {

using sched::CoreTestSpec;
using sched::GroupBound;

/// One search node: the assignment of scan core `depth-1` (in search
/// order) to `group`, linked to the parent prefix. Nodes live in an arena
/// and share prefixes, so memory stays O(nodes), not O(nodes * depth).
struct Node {
  std::uint32_t parent = 0;
  std::uint16_t depth = 0;
  std::uint16_t group = 0;
  std::uint16_t groups_used = 0;
  std::uint64_t f = 0;
};

/// Min-heap entry: (bound, arena index). The index tie-break makes each
/// shard's expansion order — and with it the whole deterministic-mode
/// search — reproducible.
using OpenEntry = std::pair<std::uint64_t, std::uint32_t>;
using OpenHeap = std::priority_queue<OpenEntry, std::vector<OpenEntry>,
                                     std::greater<OpenEntry>>;

/// Frontier shards in deterministic mode: fixed, so the round structure
/// (and therefore every published result) is independent of the thread
/// count. Non-deterministic mode shards one heap per thread instead.
constexpr std::size_t kDetShards = 16;
/// Nodes popped from each shard per round. Large enough to amortize the
/// round barrier, small enough that incumbent snapshots stay fresh.
constexpr std::size_t kQuantum = 64;

enum class ItemKind : std::uint8_t { kExpand, kLeaf };

/// One unit of round work: an arena node to expand or price, plus an
/// optional greedy dive scheduled (deterministically) at selection time.
struct RoundItem {
  std::uint32_t id = 0;
  ItemKind kind = ItemKind::kExpand;
  bool dive = false;
};

/// A priced complete partition proposed as the new incumbent.
struct Offer {
  std::uint64_t total = UINT64_MAX;
  std::vector<std::vector<std::size_t>> groups;
};

/// What one worker computed for one RoundItem; applied serially at merge.
struct ItemResult {
  std::vector<Node> children;  ///< survivors of the snapshot-bound prune
  std::uint64_t prunes = 0;
  Offer leaf;  ///< set for kLeaf items
  Offer dive;  ///< set when RoundItem::dive
};

class Search {
 public:
  Search(const sched::SessionScheduler& scheduler,
         const BranchBoundConfig& config)
      : scheduler_(scheduler),
        config_(config),
        width_(scheduler.width()),
        reconfig_(scheduler.reconfig_cost()) {
    for (std::size_t i = 0; i < scheduler.cores().size(); ++i) {
      if (scheduler.cores()[i].is_scan())
        scan_.push_back(i);
      else
        bist_.push_back(i);
    }
    CASBUS_REQUIRE(scan_.size() < 65535,
                   "BranchBoundScheduler: too many scan cores");
    // Demanding cores first: their bounds dominate early, so pruning and
    // greedy completions both make their hard decisions at the top of the
    // tree. The tie-break clusters equal-geometry cores adjacently, which
    // is what lets the dominance rule below recognize them.
    std::stable_sort(scan_.begin(), scan_.end(),
                     [&](std::size_t a, std::size_t b) {
                       const std::uint64_t la =
                           core_session_lower_bound(core(a), width_);
                       const std::uint64_t lb =
                           core_session_lower_bound(core(b), width_);
                       if (la != lb) return la > lb;
                       if (core(a).patterns != core(b).patterns)
                         return core(a).patterns > core(b).patterns;
                       return core(a).chains > core(b).chains;
                     });
    // Dominance between interchangeable cores: a scan core with the same
    // chain geometry and pattern budget as its predecessor prices
    // identically in every session, so only assignments where it lands in
    // the predecessor's group or later need expanding — together with the
    // canonical first-fit group labels this expands each symmetric
    // partition exactly once.
    same_as_prev_.assign(scan_.size(), 0);
    for (std::size_t i = 1; i < scan_.size(); ++i)
      same_as_prev_[i] = static_cast<char>(
          core(scan_[i]).chains == core(scan_[i - 1]).chains &&
          core(scan_[i]).patterns == core(scan_[i - 1]).patterns);

    max_single_ = 0;
    for (const CoreTestSpec& c : scheduler.cores())
      max_single_ =
          std::max(max_single_, core_session_lower_bound(c, width_));
    // Two floors on the summed session maxima share the reconfiguration
    // term: wire-time conservation and the BIST chunking pigeonhole.
    work_bound_ =
        std::max((sched::total_wire_work(scheduler.cores()) + width_ - 1) /
                     width_,
                 sched::bist_chunk_bound(scheduler.cores(), width_));
  }

  BranchBoundResult run();

 private:
  const CoreTestSpec& core(std::size_t i) const {
    return scheduler_.cores()[i];
  }

  /// Node bound over a prefix with `groups` fixed sessions whose summed
  /// per-group bounds are `structural` (config included). All terms are
  /// admissible for any completion of the prefix (see
  /// sched/lower_bound.hpp, including the partition-model session floors
  /// that charge for the sessions the BIST engines still force).
  std::uint64_t bound(std::uint64_t structural, std::size_t groups) const {
    return std::max(
        {structural + reconfig_ * sched::partition_overflow_floor(
                                      groups, bist_.size(), width_),
         work_bound_ + reconfig_ * sched::partition_session_floor(
                                       groups, bist_.size(), width_),
         max_single_ + reconfig_});
  }

  /// Rebuilds the group assignment of the first node->depth cores.
  std::vector<std::uint16_t> assignment_of(std::uint32_t id) const {
    const Node* n = &arena_[id];
    std::vector<std::uint16_t> group_of(n->depth);
    while (n->depth > 0) {
      group_of[n->depth - 1] = n->group;
      n = &arena_[n->parent];
    }
    return group_of;
  }

  /// Completes a prefix greedily by bound deltas: each remaining core
  /// joins the group whose lower bound grows least, or opens a new one
  /// when that is cheaper. O(cores * groups) — the anytime workhorse on
  /// instances too large to reach leaves by expansion.
  std::vector<std::vector<std::size_t>> complete_greedily(
      const std::vector<std::uint16_t>& group_of,
      std::size_t groups_used) const {
    std::vector<std::vector<std::size_t>> groups(groups_used);
    std::vector<GroupBound> bounds(groups_used);
    for (std::size_t i = 0; i < group_of.size(); ++i) {
      groups[group_of[i]].push_back(scan_[i]);
      bounds[group_of[i]].add(core(scan_[i]));
    }
    for (std::size_t i = group_of.size(); i < scan_.size(); ++i) {
      const CoreTestSpec& c = core(scan_[i]);
      GroupBound alone;
      alone.add(c);
      std::uint64_t best_delta =
          alone.scan_lower_bound(width_) + reconfig_;
      std::size_t best_group = groups.size();
      for (std::size_t g = 0; g < groups.size(); ++g) {
        GroupBound joined = bounds[g];
        joined.add(c);
        const std::uint64_t delta = joined.scan_lower_bound(width_) -
                                    bounds[g].scan_lower_bound(width_);
        if (delta < best_delta) {
          best_delta = delta;
          best_group = g;
        }
      }
      if (best_group == groups.size()) {
        groups.push_back({scan_[i]});
        bounds.push_back(alone);
      } else {
        groups[best_group].push_back(scan_[i]);
        bounds[best_group].add(c);
      }
    }
    return groups;
  }

  /// Adopts a priced partition when it beats the incumbent (serial: seeds
  /// and the merge phase only).
  void apply_offer(Offer&& o) {
    if (o.total < best_total_) {
      best_total_ = o.total;
      best_groups_ = std::move(o.groups);
      ++improvements_;
      live_best_.store(best_total_, std::memory_order_relaxed);
    }
  }

  /// Prices + offers a complete partition (serial seeding path).
  void seed(std::vector<std::vector<std::size_t>> groups) {
    Offer o;
    o.total = price_scan_partition(scheduler_, groups, bist_);
    o.groups = std::move(groups);
    apply_offer(std::move(o));
  }

  /// Lock-free incumbent-cost publication (non-deterministic mode): an
  /// atomic min so sibling workers prune against improvements from this
  /// round immediately instead of at the next snapshot.
  void publish(std::uint64_t total) {
    std::uint64_t cur = live_best_.load(std::memory_order_relaxed);
    while (total < cur && !live_best_.compare_exchange_weak(
                              cur, total, std::memory_order_relaxed)) {
    }
  }

  /// The incumbent value workers prune against: the round-start snapshot
  /// in deterministic mode, the live atomic otherwise.
  std::uint64_t cutoff() const {
    return config_.deterministic
               ? snapshot_best_
               : live_best_.load(std::memory_order_relaxed);
  }

  // --- round work (parallel phase; pure w.r.t. round-start state) --------

  void price_leaf(const RoundItem& item, ItemResult& r);
  void expand(const RoundItem& item, ItemResult& r) const;
  void run_dive(const RoundItem& item, ItemResult& r);

  /// Claims and processes batch items until the round is drained. Run by
  /// every pool thread and the caller; items are claimed via an atomic
  /// cursor, results land at the item's own index, so work distribution
  /// cannot affect the merged outcome.
  void drain_batch() {
    for (;;) {
      const std::size_t i = claim_.fetch_add(1, std::memory_order_relaxed);
      if (i >= batch_.size()) return;
      const RoundItem& item = batch_[i];
      ItemResult& r = results_[i];
      if (item.kind == ItemKind::kLeaf)
        price_leaf(item, r);
      else
        expand(item, r);
      if (item.dive) run_dive(item, r);
    }
  }

  // --- serial round phases ----------------------------------------------

  void select_round(std::size_t dive_interval);
  void merge_round(BranchBoundResult& result);
  void rebalance(BranchBoundResult& result);

  const sched::SessionScheduler& scheduler_;
  BranchBoundConfig config_;
  unsigned width_;
  std::uint64_t reconfig_;
  std::vector<std::size_t> scan_, bist_;
  std::vector<char> same_as_prev_;
  std::uint64_t work_bound_ = 0;
  std::uint64_t max_single_ = 0;

  std::vector<Node> arena_;
  std::size_t shards_ = 1;
  std::vector<OpenHeap> heaps_;
  std::size_t next_shard_ = 0;  ///< round-robin cursor for new entries

  std::uint64_t best_total_ = UINT64_MAX;
  std::vector<std::vector<std::size_t>> best_groups_;
  std::atomic<std::uint64_t> live_best_{UINT64_MAX};
  std::uint64_t snapshot_best_ = UINT64_MAX;

  std::vector<RoundItem> batch_;
  std::vector<ItemResult> results_;
  std::atomic<std::size_t> claim_{0};

  std::uint64_t nodes_expanded_ = 0;
  std::uint64_t prunes_ = 0;
  std::uint64_t improvements_ = 0;
  std::uint64_t dives_ = 0;
};

void Search::price_leaf(const RoundItem& item, ItemResult& r) {
  const std::vector<std::uint16_t> leaf_groups = assignment_of(item.id);
  std::vector<std::vector<std::size_t>> groups(arena_[item.id].groups_used);
  for (std::size_t i = 0; i < leaf_groups.size(); ++i)
    groups[leaf_groups[i]].push_back(scan_[i]);
  r.leaf.total = price_scan_partition(scheduler_, groups, bist_);
  r.leaf.groups = std::move(groups);
  if (!config_.deterministic) publish(r.leaf.total);
}

void Search::expand(const RoundItem& item, ItemResult& r) const {
  const std::uint64_t cut = cutoff();
  const Node node = arena_[item.id];

  // Rebuild the prefix state (group membership + incremental bounds).
  const std::vector<std::uint16_t> group_of = assignment_of(item.id);
  const std::size_t depth = group_of.size();
  const std::size_t groups_used = node.groups_used;
  std::vector<GroupBound> bounds(groups_used);
  std::vector<std::uint64_t> bound_of(groups_used, 0);
  std::uint64_t structural = 0;
  for (std::size_t i = 0; i < depth; ++i)
    bounds[group_of[i]].add(core(scan_[i]));
  for (std::size_t g = 0; g < groups_used; ++g) {
    bound_of[g] = bounds[g].scan_lower_bound(width_) + reconfig_;
    structural += bound_of[g];
  }

  const CoreTestSpec& next = core(scan_[depth]);
  // Dominance: a core interchangeable with its predecessor never goes to
  // an earlier group than the predecessor did.
  const std::size_t g_min =
      (depth > 0 && same_as_prev_[depth] != 0) ? node.group : 0;
  for (std::size_t g = g_min; g <= groups_used; ++g) {
    const bool fresh = g == groups_used;
    GroupBound joined = fresh ? GroupBound{} : bounds[g];
    joined.add(next);
    const std::uint64_t joined_bound =
        joined.scan_lower_bound(width_) + reconfig_;
    const std::uint64_t child_structural =
        structural - (fresh ? 0 : bound_of[g]) + joined_bound;
    const std::size_t child_groups = groups_used + (fresh ? 1 : 0);
    const std::uint64_t child_f = bound(child_structural, child_groups);
    if (child_f >= cut) {
      ++r.prunes;
      continue;
    }
    r.children.push_back(Node{item.id,
                              static_cast<std::uint16_t>(depth + 1),
                              static_cast<std::uint16_t>(g),
                              static_cast<std::uint16_t>(child_groups),
                              child_f});
  }
}

void Search::run_dive(const RoundItem& item, ItemResult& r) {
  std::vector<std::vector<std::size_t>> groups =
      complete_greedily(assignment_of(item.id), arena_[item.id].groups_used);
  r.dive.total = price_scan_partition(scheduler_, groups, bist_);
  r.dive.groups = std::move(groups);
  if (!config_.deterministic) publish(r.dive.total);
}

void Search::select_round(std::size_t dive_interval) {
  batch_.clear();
  snapshot_best_ = best_total_;
  std::size_t remaining =
      config_.node_budget > nodes_expanded_
          ? config_.node_budget - nodes_expanded_
          : 0;
  for (std::size_t s = 0; s < shards_ && remaining > 0; ++s) {
    std::size_t taken = 0;
    while (taken < kQuantum && remaining > 0 && !heaps_[s].empty()) {
      const auto [f, id] = heaps_[s].top();
      if (f >= best_total_) {
        // Min-heap: nothing in this shard can beat the incumbent — drop
        // the whole shard (its entries can never certify a lower bound
        // below best either).
        heaps_[s] = OpenHeap{};
        break;
      }
      heaps_[s].pop();
      ++nodes_expanded_;
      --remaining;
      ++taken;
      RoundItem item;
      item.id = id;
      item.kind = arena_[id].depth == scan_.size() ? ItemKind::kLeaf
                                                  : ItemKind::kExpand;
      // Dive cadence, decided here (serially) so it is a pure function of
      // the expansion count — identical at every thread count.
      if (item.kind == ItemKind::kExpand && dive_interval > 0 &&
          dives_ < config_.max_dives &&
          nodes_expanded_ % dive_interval == 0) {
        item.dive = true;
        ++dives_;
      }
      batch_.push_back(item);
    }
  }
}

void Search::merge_round(BranchBoundResult& result) {
  for (std::size_t i = 0; i < batch_.size(); ++i) {
    const RoundItem& item = batch_[i];
    ItemResult& r = results_[i];
    if (item.kind == ItemKind::kLeaf) {
      ++result.leaves_priced;
      apply_offer(std::move(r.leaf));
      continue;
    }
    prunes_ += r.prunes;
    for (const Node& child : r.children) {
      // Re-check against the incumbent as merged so far: offers applied
      // earlier in this round prune children their worker could not see.
      if (child.f >= best_total_) {
        ++prunes_;
        continue;
      }
      arena_.push_back(child);
      heaps_[next_shard_].push(
          {child.f, static_cast<std::uint32_t>(arena_.size() - 1)});
      next_shard_ = (next_shard_ + 1) % shards_;
    }
    if (item.dive) apply_offer(std::move(r.dive));
  }
}

void Search::rebalance(BranchBoundResult& result) {
  // Deterministic work rebalancing at the round boundary: every shard
  // that ran dry steals the cheapest half of the fullest frontier, so no
  // worker idles while another drowns.
  for (std::size_t s = 0; s < shards_; ++s) {
    if (!heaps_[s].empty()) continue;
    std::size_t fullest = s;
    std::size_t fullest_size = 0;
    for (std::size_t t = 0; t < shards_; ++t) {
      if (heaps_[t].size() > fullest_size) {
        fullest_size = heaps_[t].size();
        fullest = t;
      }
    }
    if (fullest_size < 2) continue;
    const std::size_t moves = std::min(fullest_size / 2, kQuantum);
    for (std::size_t m = 0; m < moves; ++m) {
      heaps_[s].push(heaps_[fullest].top());
      heaps_[fullest].pop();
    }
    ++result.rebalances;
  }
}

BranchBoundResult Search::run() {
  BranchBoundResult result;

  const std::size_t threads =
      config_.threads != 0
          ? config_.threads
          : std::max(1u, std::thread::hardware_concurrency());
  shards_ = config_.deterministic ? kDetShards
                                  : std::max<std::size_t>(threads, 1);
  heaps_.assign(shards_, OpenHeap{});

  // Incumbent seeding: a bound-greedy completion from the empty prefix
  // always; the classical heuristics' partitions too when the instance is
  // small enough that their quadratic session pricing is negligible.
  seed(complete_greedily({}, 0));
  dives_ = 1;
  if (scan_.size() <= 24) {
    seed(sched::greedy_scan_groups(scheduler_));
    seed({scan_});  // single session
    std::vector<std::vector<std::size_t>> per_core;
    for (const std::size_t c : scan_) per_core.push_back({c});
    seed(std::move(per_core));
  }

  // The dive cadence is clamped to the budget so the anytime machinery
  // still fires when the caller picks a budget smaller than the
  // configured interval (the 1000-core bench rows).
  const std::size_t dive_interval =
      config_.dive_interval == 0
          ? 0
          : std::min(config_.dive_interval,
                     std::max<std::size_t>(
                         1, config_.node_budget / (config_.max_dives + 1)));

  arena_.push_back(Node{0, 0, 0, 0, bound(0, 0)});
  heaps_[0].push({arena_[0].f, 0});
  next_shard_ = 1 % shards_;

  // Worker pool: persistent threads, two-phase barrier per round. The
  // caller is participant 0, so `threads == 1` never spawns.
  std::atomic<bool> quit{false};
  std::barrier<> start_gate(static_cast<std::ptrdiff_t>(threads));
  std::barrier<> finish_gate(static_cast<std::ptrdiff_t>(threads));
  std::vector<std::thread> pool;
  for (std::size_t t = 1; t < threads; ++t) {
    pool.emplace_back([&] {
      for (;;) {
        start_gate.arrive_and_wait();
        if (quit.load(std::memory_order_acquire)) return;
        drain_batch();
        finish_gate.arrive_and_wait();
      }
    });
  }

  bool budget_hit = false;
  std::uint64_t frontier_bound = best_total_;
  for (;;) {
    select_round(dive_interval);
    if (batch_.empty()) {
      // No shard holds a node that can beat the incumbent, or the budget
      // is spent. The frontier minimum (if any survives) certifies the
      // lower bound; an empty/beaten frontier proves optimality.
      std::uint64_t frontier = UINT64_MAX;
      for (const OpenHeap& h : heaps_)
        if (!h.empty()) frontier = std::min(frontier, h.top().first);
      if (frontier < best_total_) {
        budget_hit = true;
        frontier_bound = frontier;
      }
      break;
    }
    results_.assign(batch_.size(), ItemResult{});
    claim_.store(0, std::memory_order_relaxed);
    if (!pool.empty()) {
      start_gate.arrive_and_wait();
      drain_batch();
      finish_gate.arrive_and_wait();
    } else {
      drain_batch();
    }
    merge_round(result);
    rebalance(result);
  }

  if (!pool.empty()) {
    quit.store(true, std::memory_order_release);
    start_gate.arrive_and_wait();
    for (std::thread& t : pool) t.join();
  }

  result.optimal = !budget_hit;
  result.nodes_expanded = nodes_expanded_;
  result.dives = dives_;
  result.prunes = prunes_;
  result.incumbent_improvements = improvements_;
  result.best_cost = best_total_;
  result.lower_bound =
      result.optimal ? best_total_ : std::min(best_total_, frontier_bound);

  std::vector<sched::ScheduledSession> sessions;
  result.schedule.total_cycles =
      price_scan_partition(scheduler_, best_groups_, bist_, &sessions);
  result.schedule.sessions = std::move(sessions);
  return result;
}

}  // namespace

BranchBoundScheduler::BranchBoundScheduler(
    const sched::SessionScheduler& scheduler, BranchBoundConfig config)
    : scheduler_(scheduler), config_(config) {}

BranchBoundResult BranchBoundScheduler::run() const {
  // Pure-BIST SoCs have no partition dimension to search: length-sorted
  // chunking is provably optimal (session i's cost equals its lower
  // bound, the i*width-th longest engine, with the minimum session
  // count), so the certificate is exact without any expansion.
  bool any_scan = false;
  for (const auto& c : scheduler_.cores()) any_scan |= c.is_scan();
  if (!any_scan) {
    BranchBoundResult result;
    result.schedule = sched::optimal_pure_bist_schedule(scheduler_);
    result.best_cost = result.schedule.total_cycles;
    result.lower_bound = result.best_cost;
    result.optimal = true;
    return result;
  }
  Search search(scheduler_, config_);
  return search.run();
}

}  // namespace casbus::explore
