#include "explore/branch_bound.hpp"

#include <algorithm>
#include <queue>
#include <utility>
#include <vector>

#include "sched/exact.hpp"
#include "sched/lower_bound.hpp"

namespace casbus::explore {

namespace {

using sched::CoreTestSpec;
using sched::GroupBound;

/// One search node: the assignment of scan core `depth-1` (in search
/// order) to `group`, linked to the parent prefix. Nodes live in an arena
/// and share prefixes, so memory stays O(nodes), not O(nodes * depth).
struct Node {
  std::uint32_t parent = 0;
  std::uint16_t depth = 0;
  std::uint16_t group = 0;
  std::uint16_t groups_used = 0;
  std::uint64_t f = 0;
};

/// Min-heap entry: (bound, arena index). The index tie-break makes the
/// expansion order — and therefore the whole search — deterministic.
using OpenEntry = std::pair<std::uint64_t, std::uint32_t>;

class Search {
 public:
  Search(const sched::SessionScheduler& scheduler,
         const BranchBoundConfig& config)
      : scheduler_(scheduler),
        config_(config),
        width_(scheduler.width()),
        reconfig_(scheduler.reconfig_cost()) {
    for (std::size_t i = 0; i < scheduler.cores().size(); ++i) {
      if (scheduler.cores()[i].is_scan())
        scan_.push_back(i);
      else
        bist_.push_back(i);
    }
    CASBUS_REQUIRE(scan_.size() < 65535,
                   "BranchBoundScheduler: too many scan cores");
    // Demanding cores first: their bounds dominate early, so pruning and
    // greedy completions both make their hard decisions at the top of the
    // tree.
    std::stable_sort(scan_.begin(), scan_.end(),
                     [&](std::size_t a, std::size_t b) {
                       return core_session_lower_bound(core(a), width_) >
                              core_session_lower_bound(core(b), width_);
                     });

    max_single_ = 0;
    for (const CoreTestSpec& c : scheduler.cores())
      max_single_ =
          std::max(max_single_, core_session_lower_bound(c, width_));
    work_bound_ = (sched::total_wire_work(scheduler.cores()) + width_ - 1) /
                  width_;
  }

  BranchBoundResult run();

 private:
  const CoreTestSpec& core(std::size_t i) const {
    return scheduler_.cores()[i];
  }

  /// Node bound over a prefix with `groups` fixed sessions whose summed
  /// per-group bounds are `structural` (config included). All three terms
  /// are admissible for any completion of the prefix (see
  /// sched/lower_bound.hpp).
  std::uint64_t bound(std::uint64_t structural, std::size_t groups) const {
    const std::uint64_t sessions = std::max<std::uint64_t>(1, groups);
    return std::max({structural, work_bound_ + reconfig_ * sessions,
                     max_single_ + reconfig_});
  }

  /// Rebuilds the group assignment of the first node->depth cores.
  std::vector<std::uint16_t> assignment_of(std::uint32_t id) const {
    const Node* n = &arena_[id];
    std::vector<std::uint16_t> group_of(n->depth);
    while (n->depth > 0) {
      group_of[n->depth - 1] = n->group;
      n = &arena_[n->parent];
    }
    return group_of;
  }

  /// Completes a prefix greedily by bound deltas: each remaining core
  /// joins the group whose lower bound grows least, or opens a new one
  /// when that is cheaper. O(cores * groups) — the anytime workhorse on
  /// instances too large to reach leaves by expansion.
  std::vector<std::vector<std::size_t>> complete_greedily(
      const std::vector<std::uint16_t>& group_of,
      std::size_t groups_used) const {
    std::vector<std::vector<std::size_t>> groups(groups_used);
    std::vector<GroupBound> bounds(groups_used);
    for (std::size_t i = 0; i < group_of.size(); ++i) {
      groups[group_of[i]].push_back(scan_[i]);
      bounds[group_of[i]].add(core(scan_[i]));
    }
    for (std::size_t i = group_of.size(); i < scan_.size(); ++i) {
      const CoreTestSpec& c = core(scan_[i]);
      GroupBound alone;
      alone.add(c);
      std::uint64_t best_delta =
          alone.scan_lower_bound(width_) + reconfig_;
      std::size_t best_group = groups.size();
      for (std::size_t g = 0; g < groups.size(); ++g) {
        GroupBound joined = bounds[g];
        joined.add(c);
        const std::uint64_t delta = joined.scan_lower_bound(width_) -
                                    bounds[g].scan_lower_bound(width_);
        if (delta < best_delta) {
          best_delta = delta;
          best_group = g;
        }
      }
      if (best_group == groups.size()) {
        groups.push_back({scan_[i]});
        bounds.push_back(alone);
      } else {
        groups[best_group].push_back(scan_[i]);
        bounds[best_group].add(c);
      }
    }
    return groups;
  }

  /// Prices a complete partition; adopts it when it beats the incumbent.
  void offer(std::vector<std::vector<std::size_t>> groups) {
    const std::uint64_t total =
        price_scan_partition(scheduler_, groups, bist_);
    if (total < best_total_) {
      best_total_ = total;
      best_groups_ = std::move(groups);
      ++improvements_;
    }
  }

  const sched::SessionScheduler& scheduler_;
  BranchBoundConfig config_;
  unsigned width_;
  std::uint64_t reconfig_;
  std::vector<std::size_t> scan_, bist_;
  std::uint64_t work_bound_ = 0;
  std::uint64_t max_single_ = 0;

  std::vector<Node> arena_;
  std::uint64_t best_total_ = UINT64_MAX;
  std::vector<std::vector<std::size_t>> best_groups_;
  std::uint64_t prunes_ = 0;
  std::uint64_t improvements_ = 0;
};

BranchBoundResult Search::run() {
  BranchBoundResult result;

  // Incumbent seeding: a bound-greedy completion from the empty prefix
  // always; the classical heuristics' partitions too when the instance is
  // small enough that their quadratic session pricing is negligible.
  offer(complete_greedily({}, 0));
  result.dives = 1;
  if (scan_.size() <= 24) {
    offer(sched::greedy_scan_groups(scheduler_));
    offer({scan_});  // single session
    std::vector<std::vector<std::size_t>> per_core;
    for (const std::size_t c : scan_) per_core.push_back({c});
    offer(std::move(per_core));
  }

  // Best-first expansion. The dive cadence is clamped to the budget so
  // the anytime machinery still fires when the caller picks a budget
  // smaller than the configured interval (the 1000-core bench rows).
  const std::size_t dive_interval =
      config_.dive_interval == 0
          ? 0
          : std::min(config_.dive_interval,
                     std::max<std::size_t>(
                         1, config_.node_budget / (config_.max_dives + 1)));
  std::priority_queue<OpenEntry, std::vector<OpenEntry>,
                      std::greater<OpenEntry>>
      open;
  arena_.push_back(Node{0, 0, 0, 0, bound(0, 0)});
  open.push({arena_[0].f, 0});

  bool budget_hit = false;
  std::uint64_t frontier_bound = best_total_;
  while (!open.empty()) {
    if (result.nodes_expanded >= config_.node_budget) {
      budget_hit = true;
      frontier_bound = open.top().first;
      break;
    }
    const auto [f, id] = open.top();
    open.pop();
    // Min-heap: once the cheapest open node cannot beat the incumbent,
    // nothing can — the incumbent is proven optimal.
    if (f >= best_total_) break;
    ++result.nodes_expanded;

    // Leaves are evaluated lazily, in bound order: full partition pricing
    // is the expensive step, so it only happens for leaves that still
    // look competitive when they reach the heap top — and it counts
    // against the node budget like any other expansion.
    if (arena_[id].depth == scan_.size()) {
      const std::vector<std::uint16_t> leaf_groups = assignment_of(id);
      std::vector<std::vector<std::size_t>> groups(arena_[id].groups_used);
      for (std::size_t i = 0; i < leaf_groups.size(); ++i)
        groups[leaf_groups[i]].push_back(scan_[i]);
      ++result.leaves_priced;
      offer(std::move(groups));
      continue;
    }

    if (dive_interval > 0 && result.dives < config_.max_dives &&
        result.nodes_expanded % dive_interval == 0) {
      const Node& n = arena_[id];
      offer(complete_greedily(assignment_of(id), n.groups_used));
      ++result.dives;
    }

    // Rebuild the prefix state (group membership + incremental bounds).
    const std::vector<std::uint16_t> group_of = assignment_of(id);
    const std::size_t depth = group_of.size();
    const std::size_t groups_used = arena_[id].groups_used;
    std::vector<GroupBound> bounds(groups_used);
    std::vector<std::uint64_t> bound_of(groups_used, 0);
    std::uint64_t structural = 0;
    for (std::size_t i = 0; i < depth; ++i)
      bounds[group_of[i]].add(core(scan_[i]));
    for (std::size_t g = 0; g < groups_used; ++g) {
      bound_of[g] = bounds[g].scan_lower_bound(width_) + reconfig_;
      structural += bound_of[g];
    }

    const CoreTestSpec& next = core(scan_[depth]);
    for (std::size_t g = 0; g <= groups_used; ++g) {
      const bool fresh = g == groups_used;
      GroupBound joined = fresh ? GroupBound{} : bounds[g];
      joined.add(next);
      const std::uint64_t joined_bound =
          joined.scan_lower_bound(width_) + reconfig_;
      const std::uint64_t child_structural =
          structural - (fresh ? 0 : bound_of[g]) + joined_bound;
      const std::size_t child_groups = groups_used + (fresh ? 1 : 0);
      const std::uint64_t child_f = bound(child_structural, child_groups);
      if (child_f >= best_total_) {
        ++prunes_;
        continue;
      }

      arena_.push_back(Node{id, static_cast<std::uint16_t>(depth + 1),
                            static_cast<std::uint16_t>(g),
                            static_cast<std::uint16_t>(child_groups),
                            child_f});
      open.push({child_f, static_cast<std::uint32_t>(arena_.size() - 1)});
    }
  }

  result.optimal = !budget_hit;
  result.prunes = prunes_;
  result.incumbent_improvements = improvements_;
  result.best_cost = best_total_;
  result.lower_bound =
      result.optimal ? best_total_ : std::min(best_total_, frontier_bound);

  std::vector<sched::ScheduledSession> sessions;
  result.schedule.total_cycles =
      price_scan_partition(scheduler_, best_groups_, bist_, &sessions);
  result.schedule.sessions = std::move(sessions);
  return result;
}

}  // namespace

BranchBoundScheduler::BranchBoundScheduler(
    const sched::SessionScheduler& scheduler, BranchBoundConfig config)
    : scheduler_(scheduler), config_(config) {}

BranchBoundResult BranchBoundScheduler::run() const {
  // Pure-BIST SoCs have no partition dimension to search: length-sorted
  // chunking is provably optimal (session i's cost equals its lower
  // bound, the i*width-th longest engine, with the minimum session
  // count), so the certificate is exact without any expansion.
  bool any_scan = false;
  for (const auto& c : scheduler_.cores()) any_scan |= c.is_scan();
  if (!any_scan) {
    BranchBoundResult result;
    result.schedule = sched::optimal_pure_bist_schedule(scheduler_);
    result.best_cost = result.schedule.total_cycles;
    result.lower_bound = result.best_cost;
    result.optimal = true;
    return result;
  }
  Search search(scheduler_, config_);
  return search.run();
}

}  // namespace casbus::explore
