#include "explore/soc_generator.hpp"

#include <algorithm>
#include <cmath>
#include <iterator>

#include "util/rng.hpp"

namespace casbus::explore {

namespace {

/// Uniform double in [0, 1).
double unit(Rng& rng) {
  return static_cast<double>(rng.next() >> 11) * 0x1.0p-53;
}

/// Log-uniform draw in [lo, hi] — the size distribution of real cores:
/// every decade equally likely, so a population mixes a few very large
/// cores with a long tail of small ones.
double log_range(Rng& rng, double lo, double hi) {
  return lo * std::exp2(unit(rng) * std::log2(hi / lo));
}

std::size_t log_range_sz(Rng& rng, double lo, double hi) {
  return static_cast<std::size_t>(std::llround(log_range(rng, lo, hi)));
}

/// Per-profile shape parameters.
struct ProfileShape {
  double scan_fraction;       ///< probability a leaf core is scan-tested
  double wide_core_fraction;  ///< chance of a many-chain (wrapped) core
  double chain_lo, chain_hi;  ///< log-uniform per-core chain-length scale
  double patt_lo, patt_hi;    ///< log-uniform pattern budget
  double bist_lo, bist_hi;    ///< log-uniform BIST session length
};

ProfileShape shape_of(SocProfile profile) {
  switch (profile) {
    case SocProfile::Mixed:
      return {0.62, 0.25, 40, 1500, 32, 4000, 2000, 400000};
    case SocProfile::ScanHeavy:
      return {0.92, 0.35, 60, 2500, 64, 8000, 2000, 200000};
    case SocProfile::BistHeavy:
      return {0.30, 0.20, 30, 900, 32, 2000, 10000, 2000000};
    case SocProfile::Hierarchical:
      return {0.80, 0.15, 30, 800, 32, 2500, 4000, 500000};
  }
  CASBUS_REQUIRE(false, "shape_of: invalid profile");
  return {};  // unreachable
}

sched::CoreTestSpec make_scan_core(Rng& rng, const ProfileShape& s,
                                   std::string name) {
  sched::CoreTestSpec core;
  core.name = std::move(name);
  std::size_t chains = 1 + rng.below(4);
  if (rng.coin(s.wide_core_fraction)) chains += rng.below(12);  // up to 16
  const double scale = log_range(rng, s.chain_lo, s.chain_hi);
  for (std::size_t c = 0; c < chains; ++c) {
    const double jitter = 0.75 + 0.5 * unit(rng);
    core.chains.push_back(std::max<std::size_t>(
        8, static_cast<std::size_t>(std::llround(scale * jitter))));
  }
  core.patterns = std::max<std::size_t>(
      8, log_range_sz(rng, s.patt_lo, s.patt_hi));
  return core;
}

sched::CoreTestSpec make_bist_core(Rng& rng, const ProfileShape& s,
                                   std::string name) {
  sched::CoreTestSpec core;
  core.name = std::move(name);
  core.bist_cycles =
      std::max<std::uint64_t>(64, log_range_sz(rng, s.bist_lo, s.bist_hi));
  return core;
}

}  // namespace

const char* profile_name(SocProfile p) noexcept {
  switch (p) {
    case SocProfile::Mixed: return "mixed";
    case SocProfile::ScanHeavy: return "scan_heavy";
    case SocProfile::BistHeavy: return "bist_heavy";
    case SocProfile::Hierarchical: return "hierarchical";
  }
  return "unknown";
}

SocProfile profile_from_name(std::string_view name) {
  if (name == "mixed") return SocProfile::Mixed;
  if (name == "scan_heavy") return SocProfile::ScanHeavy;
  if (name == "bist_heavy") return SocProfile::BistHeavy;
  if (name == "hierarchical") return SocProfile::Hierarchical;
  CASBUS_REQUIRE(false, "unknown SoC profile: " + std::string(name));
  return SocProfile::Mixed;  // unreachable
}

std::size_t GeneratedSoc::scan_core_count() const {
  std::size_t n = 0;
  for (const auto& c : cores) n += c.is_scan() ? 1 : 0;
  return n;
}

std::size_t GeneratedSoc::bist_core_count() const {
  return cores.size() - scan_core_count();
}

std::uint64_t GeneratedSoc::total_scan_bits() const {
  std::uint64_t n = 0;
  for (const auto& c : cores) n += c.total_scan_bits();
  return n;
}

GeneratedSoc SocGenerator::generate(std::size_t cores, SocProfile profile,
                                    std::size_t instance) const {
  CASBUS_REQUIRE(cores >= 1, "SocGenerator: need at least one core");
  // Stream derivation: population identity first, instance second, so
  // every (seed, cores, profile, instance) tuple is an independent,
  // reproducible stream.
  const std::uint64_t population = Rng::derive_stream(
      seed_, static_cast<std::uint64_t>(profile) * 0x10000003ULL + cores);
  Rng rng(Rng::derive_stream(population, instance));

  const ProfileShape s = shape_of(profile);
  GeneratedSoc soc;
  soc.profile = profile;
  soc.requested_cores = cores;
  soc.name = std::string(profile_name(profile)) + "-" +
             std::to_string(cores) + "#" + std::to_string(instance);

  if (profile == SocProfile::Hierarchical) {
    // Leaf cores are clustered under parent CAS tunnels; a cluster is
    // scheduled as one aggregate core (child chains concatenated into the
    // parent's port view, pattern budget = the slowest child's).
    std::size_t consumed = 0;
    std::size_t id = 0;
    while (consumed < cores) {
      if (rng.coin(0.25) || cores - consumed == 1) {
        if (rng.coin(s.scan_fraction))
          soc.cores.push_back(
              make_scan_core(rng, s, "leaf" + std::to_string(id)));
        else
          soc.cores.push_back(
              make_bist_core(rng, s, "engine" + std::to_string(id)));
        consumed += 1;
      } else {
        const std::size_t size =
            std::min<std::size_t>(2 + rng.below(7), cores - consumed);
        sched::CoreTestSpec cluster;
        cluster.name = "cluster" + std::to_string(id) + "x" +
                       std::to_string(size);
        for (std::size_t child = 0; child < size; ++child) {
          const sched::CoreTestSpec leaf =
              make_scan_core(rng, s, "child");
          // One tunnel wire per child: the child's chains arrive
          // concatenated on its wire, so the cluster contributes one
          // chain of the child's total length.
          cluster.chains.push_back(leaf.total_scan_bits());
          cluster.patterns = std::max(cluster.patterns, leaf.patterns);
        }
        soc.cores.push_back(std::move(cluster));
        consumed += size;
      }
      ++id;
    }
  } else {
    for (std::size_t i = 0; i < cores; ++i) {
      if (rng.coin(s.scan_fraction))
        soc.cores.push_back(
            make_scan_core(rng, s, "core" + std::to_string(i)));
      else
        soc.cores.push_back(
            make_bist_core(rng, s, "engine" + std::to_string(i)));
    }
  }

  // At least one BIST wire must leave a scan wire free on the narrowest
  // sweeps; sqrt(cores) tracks how much session concurrency is worth
  // paying for in bus area (§3.2 trade-off).
  const auto root = static_cast<unsigned>(
      std::llround(std::sqrt(static_cast<double>(cores))));
  soc.suggested_width = std::clamp(root, 8u, 64u);
  return soc;
}

std::vector<floor::JobSpec> SocGenerator::floor_jobs(
    std::size_t count, SocProfile profile) const {
  // Scenario by profile; strategies cycle through the executable set so a
  // replayed population exercises the new search strategies end-to-end.
  constexpr sched::Strategy kStrategies[] = {
      sched::Strategy::Greedy,      sched::Strategy::BranchBound,
      sched::Strategy::Phased,      sched::Strategy::Exact,
      sched::Strategy::BranchBound, sched::Strategy::Single,
      sched::Strategy::PerCore,     sched::Strategy::BranchBound,
  };
  const std::uint64_t population = Rng::derive_stream(
      seed_, 0xF100DULL + static_cast<std::uint64_t>(profile));

  std::vector<floor::JobSpec> jobs;
  jobs.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    Rng rng(Rng::derive_stream(population, i));
    floor::JobSpec spec;
    spec.id = i;
    spec.seed = rng.next();
    switch (profile) {
      case SocProfile::Mixed:
        spec.scenario = static_cast<floor::ScenarioKind>(
            rng.below(floor::kScenarioCount));
        break;
      case SocProfile::ScanHeavy:
        spec.scenario = floor::ScenarioKind::ScanOnly;
        break;
      case SocProfile::BistHeavy:
        spec.scenario = rng.coin(0.75) ? floor::ScenarioKind::BistJoin
                                       : floor::ScenarioKind::Maintenance;
        break;
      case SocProfile::Hierarchical:
        spec.scenario = floor::ScenarioKind::Hierarchical;
        break;
    }
    spec.strategy = kStrategies[rng.below(std::size(kStrategies))];
    spec.cores = 2 + rng.below(3);                             // 2..4
    spec.bus_width = 4 + static_cast<unsigned>(rng.below(3));  // 4..6
    spec.patterns_per_ff = 1;
    jobs.push_back(spec);
  }
  return jobs;
}

}  // namespace casbus::explore
