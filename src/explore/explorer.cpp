#include "explore/explorer.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <map>

#include "core/arrangement.hpp"
#include "core/cas_generator.hpp"
#include "netlist/area.hpp"
#include "sched/exact.hpp"
#include "sched/lower_bound.hpp"

namespace casbus::explore {

namespace {

/// Largest instruction space we synthesize gate-level (Table 1 tops out at
/// m = 1684; beyond a few thousand the decoder dominates build time).
constexpr double kGateLevelArrangementCap = 4096.0;

/// A(n,p) in double precision (exact for small products, the right order
/// of magnitude for the huge ones the extrapolation needs).
double arrangements(unsigned n, unsigned p) {
  return std::exp2(tam::log2_arrangement_count(n, p));
}

/// Gate-level area of one (n, p) CAS in GE. Generated + measured when the
/// instruction space is small enough; otherwise the Table 1 trend
/// extrapolation (optimized synthesis lands at ~2.5 GE per instruction
/// plus the instruction register and per-wire muxing).
double cas_area_ge(unsigned n, unsigned p) {
  const double a = arrangements(n, p);
  const unsigned k = sched::cas_ir_bits(n, p);
  if (a <= kGateLevelArrangementCap) {
    const tam::GeneratedCas cas = tam::generate_cas(
        n, p, {tam::CasImplementation::OptimizedGateLevel, true});
    return netlist::AreaModel::typical().total(cas.netlist);
  }
  return 2.5 * a + 7.0 * k + 3.0 * n;
}

/// §3.3 pass-transistor CAS in GE, analytic at any geometry (mirrors
/// tam::pass_transistor_area, which cannot count a 2^64 instruction
/// space): full N x P crosspoint matrix (10T per crosspoint), per-wire
/// bypass (4T), shift+update IR (2k DFFs at 22T + 12T gating), 4T per GE.
double cas_pass_transistor_ge(unsigned n, unsigned p) {
  const unsigned k = sched::cas_ir_bits(n, p);
  const double transistors = static_cast<double>(n) * p * 10.0 + n * 4.0 +
                             2.0 * k * 22.0 + 12.0;
  return transistors / 4.0;
}

unsigned ports_of(const sched::CoreTestSpec& core, unsigned width) {
  return static_cast<unsigned>(
      core.is_scan() ? std::min<std::size_t>(core.chains.size(), width)
                     : 1);
}

}  // namespace

const ExplorePoint* ExploreReport::best_time() const {
  const ExplorePoint* best = nullptr;
  for (const ExplorePoint& p : points) {
    if (best == nullptr || p.test_cycles < best->test_cycles ||
        (p.test_cycles == best->test_cycles &&
         p.bus_area_ge < best->bus_area_ge))
      best = &p;
  }
  return best;
}

double DesignSpaceExplorer::bus_area_ge(
    const std::vector<sched::CoreTestSpec>& cores, unsigned width) {
  std::map<unsigned, double> memo;  // cores share port counts
  double total = 0.0;
  for (const sched::CoreTestSpec& core : cores) {
    const unsigned p = ports_of(core, width);
    auto it = memo.find(p);
    if (it == memo.end()) it = memo.emplace(p, cas_area_ge(width, p)).first;
    total += it->second;
  }
  return total;
}

double DesignSpaceExplorer::bus_pass_transistor_ge(
    const std::vector<sched::CoreTestSpec>& cores, unsigned width) {
  std::map<unsigned, double> memo;
  double total = 0.0;
  for (const sched::CoreTestSpec& core : cores) {
    const unsigned p = ports_of(core, width);
    auto it = memo.find(p);
    if (it == memo.end())
      it = memo.emplace(p, cas_pass_transistor_ge(width, p)).first;
    total += it->second;
  }
  return total;
}

ExploreReport DesignSpaceExplorer::sweep(const ExploreConfig& config) const {
  ExploreReport report;
  report.soc_name = soc_.name;
  report.core_count = soc_.cores.size();

  std::vector<unsigned> widths = config.widths;
  if (widths.empty()) {
    const unsigned s = soc_.suggested_width;
    widths = {std::max(2u, s / 2), s, std::min(64u, s * 2)};
  }
  std::sort(widths.begin(), widths.end());
  widths.erase(std::unique(widths.begin(), widths.end()), widths.end());

  std::size_t scan_cores = 0;
  for (const auto& c : soc_.cores) scan_cores += c.is_scan() ? 1 : 0;

  for (const unsigned width : widths) {
    const sched::SessionScheduler scheduler(soc_.cores, width);
    const std::uint64_t global_lb = sched::schedule_lower_bound(
        soc_.cores, width, scheduler.reconfig_cost());
    const double area = bus_area_ge(soc_.cores, width);
    const double pass_area = bus_pass_transistor_ge(soc_.cores, width);

    for (const sched::Strategy strategy : config.strategies) {
      // Exact is exponential; skip the combos it cannot finish.
      if (strategy == sched::Strategy::Exact && scan_cores > 12) continue;

      ExplorePoint pt;
      pt.width = width;
      pt.strategy = strategy;
      pt.bus_area_ge = area;
      pt.pass_transistor_ge = pass_area;
      pt.lower_bound = global_lb;

      const auto start = std::chrono::steady_clock::now();
      if (strategy == sched::Strategy::BranchBound) {
        const BranchBoundResult bb =
            BranchBoundScheduler(scheduler, config.branch_bound).run();
        pt.test_cycles = bb.best_cost;
        pt.lower_bound = std::max(global_lb, bb.lower_bound);
        pt.proven_optimal = bb.optimal;
      } else {
        pt.test_cycles = scheduler.schedule_with(strategy).total_cycles;
      }
      pt.schedule_seconds =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        start)
              .count();
      if (pt.lower_bound > 0 && pt.test_cycles > pt.lower_bound)
        pt.gap = static_cast<double>(pt.test_cycles) /
                     static_cast<double>(pt.lower_bound) -
                 1.0;
      report.points.push_back(pt);
    }
  }

  // Pareto frontier over (test time, bus area).
  for (ExplorePoint& p : report.points) {
    bool dominated = false;
    for (const ExplorePoint& q : report.points) {
      if (&q == &p) continue;
      if (q.test_cycles <= p.test_cycles && q.bus_area_ge <= p.bus_area_ge &&
          (q.test_cycles < p.test_cycles || q.bus_area_ge < p.bus_area_ge)) {
        dominated = true;
        break;
      }
    }
    p.pareto = !dominated;
  }
  return report;
}

}  // namespace casbus::explore
