/// \file health.hpp
/// The floor's health engine: a declarative SLO rule catalogue evaluated
/// against periodic FloorStats samples, debounced by per-rule hysteresis,
/// plus the flight recorder that captures evidence on critical
/// transitions.
///
/// ## The loop
/// PR 8 made the floor inspectable; this layer makes it *judged*. An
/// obs::TimeSeriesSampler tick drives FloorSession::health_tick():
///
///     sample (stats_snapshot) ──▶ HealthMonitor::evaluate
///        ──▶ per-rule hysteresis (ok → warn → critical)
///        ──▶ HealthReport (+ transition events)
///        ──▶ on any critical transition: write_incident_bundle()
///
/// ## Rule catalogue (stable ids, verify-style — see src/verify/report.hpp)
/// | id    | name             | watches                                   |
/// |-------|------------------|-------------------------------------------|
/// | HL001 | queue-saturation | queue depth / capacity fill ratio          |
/// | HL002 | backpressure     | producer blocking rate (engages/s)         |
/// | HL003 | stage-latency    | per-stage p99 vs configured ceilings       |
/// | HL004 | error-rate       | windowed errored/completed ratio           |
/// | HL005 | cache-hit-rate   | windowed cache hit-rate vs floor           |
/// | HL006 | worker-watchdog  | max in-flight job age vs deadline          |
/// | HL007 | trace-drops      | trace spans dropped in the window          |
///
/// Ids are part of the observable API (CI smoke and dashboards key on
/// them): never renumber — add HL008… and retire in docs/OBSERVABILITY.md.
///
/// ## Hysteresis semantics
/// Raw per-sample verdicts flap (one slow job, one depth spike). Each rule
/// owns a Hysteresis state machine: the debounced level *escalates* to L
/// only when at least `trip_m` of the last `window_n` raw samples were at
/// or above L, and *steps down one level* only after `clear_k`
/// consecutive raw samples strictly below the current level (then the
/// sample window resets, so an old burst cannot immediately re-trip).
/// Alarms are therefore M-of-N to trip and K-consecutive to clear —
/// deliberately asymmetric: slow to panic, slower to all-clear.
///
/// ## Determinism & threading
/// The monitor only reads FloorStats — nothing feeds back into job
/// execution, so deterministic_summary() is byte-identical with health on
/// or off (tests/test_health.cpp pins this, TSan leg included). evaluate()
/// is internally serialized; every accessor is safe from any thread.

#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <vector>

#include "floor/telemetry.hpp"
#include "obs/trace.hpp"

namespace casbus::floor {

enum class HealthLevel : std::uint8_t { kOk = 0, kWarn = 1, kCritical = 2 };

[[nodiscard]] const char* health_level_name(HealthLevel level);

enum class HealthRule : std::uint8_t {
  kQueueSaturation = 0,  ///< HL001
  kBackpressure = 1,     ///< HL002
  kStageLatency = 2,     ///< HL003
  kErrorRate = 3,        ///< HL004
  kCacheHitRate = 4,     ///< HL005
  kWorkerWatchdog = 5,   ///< HL006
  kTraceDrops = 6,       ///< HL007
};

inline constexpr std::size_t kHealthRuleCount = 7;

/// Stable diagnostic id ("HL001") — the key CI and dashboards match on.
[[nodiscard]] const char* health_rule_id(HealthRule rule);
/// Human-stable short name ("queue-saturation").
[[nodiscard]] const char* health_rule_name(HealthRule rule);

/// Debounce parameters shared by every rule (see file comment).
struct HysteresisConfig {
  std::size_t trip_m = 3;    ///< raw samples at >= L within window_n to trip
  std::size_t window_n = 5;  ///< raw-sample window considered for tripping
  std::size_t clear_k = 5;   ///< consecutive calmer samples to step down
};

/// One rule's debounced state machine. update() feeds one raw verdict and
/// returns the (possibly unchanged) debounced level. Not thread-safe —
/// HealthMonitor serializes access.
class Hysteresis {
 public:
  explicit Hysteresis(HysteresisConfig config = {});

  HealthLevel update(HealthLevel raw);
  [[nodiscard]] HealthLevel state() const noexcept { return state_; }
  void reset();

 private:
  HysteresisConfig config_;
  std::deque<HealthLevel> recent_;  ///< last window_n raw verdicts
  std::size_t calm_ = 0;            ///< consecutive raws below state_
  HealthLevel state_ = HealthLevel::kOk;
};

/// Thresholds and switches for the whole catalogue. Defaults are
/// conservative (a floor with default config and no injected trouble stays
/// `ok`); 0-valued thresholds disable their rule where noted.
struct HealthConfig {
  /// Master switch — FloorConfig::health.enabled turns the session's
  /// sampler + monitor loop on (and implies the metrics registry).
  bool enabled = false;

  /// Sampler tick period / retained window (obs::SamplerConfig).
  std::size_t interval_ms = 250;
  std::size_t window = 240;

  HysteresisConfig hysteresis{};

  /// Samples of history the monitor keeps for windowed rates (HL002/4/5/7).
  std::size_t rate_window = 8;

  // HL001 queue-saturation (disabled when the queue is unbounded).
  double queue_warn_fill = 0.80;
  double queue_critical_fill = 0.95;

  // HL002 backpressure (warn-only).
  double backpressure_warn_per_sec = 1.0;

  // HL003 stage-latency: per-stage p99 ceilings in µs, indexed by Stage;
  // 0 disables that stage's check (all-zero disables the rule). Warn at
  // the ceiling, critical at 2x.
  std::array<double, kStageCount> stage_p99_ceiling_us{};

  // HL004 error-rate over the rate window; idle below min_jobs delta.
  double error_warn_rate = 0.05;
  double error_critical_rate = 0.50;
  std::uint64_t error_min_jobs = 4;

  // HL005 cache-hit-rate floor over the rate window (0 disables); warn
  // below the floor, critical below half of it; idle below min lookups.
  double cache_hit_floor = 0.0;
  std::uint64_t cache_min_lookups = 16;

  // HL006 worker-watchdog: max in-flight job age. 0 disables. Warn at
  // half the deadline, critical past it.
  std::size_t watchdog_ms = 0;

  /// Flight recorder target; empty disables incident bundles.
  std::string incident_dir;
  /// Bundles written per session at most (evidence, not a log stream).
  std::size_t max_incidents = 8;
};

/// One rule's slice of a HealthReport.
struct RuleStatus {
  HealthRule rule{};
  bool enabled = true;        ///< false: rule cannot fire with this config
  HealthLevel raw = HealthLevel::kOk;    ///< this sample's verdict
  HealthLevel level = HealthLevel::kOk;  ///< debounced state
  double value = 0.0;         ///< the measured quantity (rule-specific)
  double threshold = 0.0;     ///< the warn threshold it is judged against
  std::string message;        ///< non-empty when raw != ok
};

/// One debounced level transition (the alarm stream).
struct HealthEvent {
  std::uint64_t sample = 0;  ///< evaluation number of the transition
  double t_seconds = 0.0;
  HealthRule rule{};
  HealthLevel from = HealthLevel::kOk;
  HealthLevel to = HealthLevel::kOk;
  double value = 0.0;
  std::string message;
};

/// The structured product of one evaluation: every rule's status, the
/// overall (max) level, and the bounded transition log so far.
struct HealthReport {
  double t_seconds = 0.0;
  std::uint64_t samples = 0;  ///< evaluations so far
  HealthLevel overall = HealthLevel::kOk;
  std::array<RuleStatus, kHealthRuleCount> rules{};
  std::vector<HealthEvent> events;  ///< bounded (drop-oldest) transitions
  std::uint64_t incidents_written = 0;

  [[nodiscard]] const RuleStatus& rule(HealthRule r) const {
    return rules[static_cast<std::size_t>(r)];
  }

  /// One JSON object with stable keys; the `--health-json` wire format
  /// tools/floorhealth.py consumes.
  [[nodiscard]] std::string to_json() const;
  /// Human summary: one header line plus one line per non-ok rule.
  [[nodiscard]] std::string to_string() const;
};

/// Evaluates the catalogue against successive FloorStats samples. Owns the
/// per-rule hysteresis and the rate-window history, so it is usable
/// standalone (feed synthetic FloorStats in tests) — FloorSession wires it
/// to the sampler thread. Thread-safe.
class HealthMonitor {
 public:
  explicit HealthMonitor(HealthConfig config = {});

  /// Feeds one sample taken at \p t_seconds (monotonic, seconds since the
  /// session epoch) and returns the resulting report.
  HealthReport evaluate(const FloorStats& stats, double t_seconds);

  /// Copy of the report from the most recent evaluate() (default-valued
  /// before the first).
  [[nodiscard]] HealthReport last_report() const;

  [[nodiscard]] std::uint64_t evaluations() const;

  /// The flight recorder (driven by the session) reports bundles written
  /// here so they appear in subsequent reports.
  void record_incidents(std::uint64_t n);

  [[nodiscard]] const HealthConfig& config() const noexcept {
    return config_;
  }

 private:
  /// Minimal per-sample history point for windowed rates.
  struct Point {
    double t = 0.0;
    std::uint64_t completed = 0;
    std::uint64_t errored = 0;
    std::uint64_t bp_engages = 0;
    std::uint64_t cache_lookups = 0;
    std::uint64_t cache_hits = 0;
    std::uint64_t trace_dropped = 0;
  };

  RuleStatus eval_rule_locked(HealthRule rule, const FloorStats& stats,
                              const Point& oldest, const Point& newest,
                              bool have_window) const;

  const HealthConfig config_;

  mutable std::mutex mu_;
  std::array<Hysteresis, kHealthRuleCount> hysteresis_;
  std::deque<Point> history_;  ///< bounded by config_.rate_window
  std::uint64_t evaluations_ = 0;
  std::uint64_t incidents_ = 0;
  HealthReport last_;
};

/// Everything one incident bundle freezes. Strings are pre-serialized by
/// the caller (the session holds the locks needed to produce them).
struct IncidentInputs {
  std::string rule_id;          ///< firing rule, e.g. "HL006"
  double t_seconds = 0.0;
  std::string stats_json;       ///< FloorStats::to_json()
  std::string health_json;      ///< HealthReport::to_json()
  std::string timeseries_json;  ///< sampler window_json(); may be empty
  const obs::TraceRecorder* trace = nullptr;  ///< optional Chrome trace
};

/// Atomically materializes `<dir>/incident_<seq>_<rule_id>/` containing
/// MANIFEST.json, stats.json, health.json, and (when provided)
/// timeseries.json + trace.json. Writes into a hidden temp directory and
/// renames into place, so a bundle either exists completely or not at all.
/// Returns false (and cleans up the temp) on any filesystem error. If
/// \p out_path is non-null it receives the final bundle path on success.
[[nodiscard]] bool write_incident_bundle(const std::string& dir,
                                         std::uint64_t seq,
                                         const IncidentInputs& inputs,
                                         std::string* out_path = nullptr);

}  // namespace casbus::floor
