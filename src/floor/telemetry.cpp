#include "floor/telemetry.hpp"

#include <cmath>
#include <numeric>
#include <sstream>

namespace casbus::floor {

FloorMetricIds register_floor_metrics(obs::Registry& registry) {
  FloorMetricIds ids;
  ids.jobs_executed = registry.counter("floor.jobs.executed");
  ids.jobs_errored = registry.counter("floor.jobs.errored");
  ids.cache_lookups = registry.counter("floor.cache.lookups");
  ids.cache_program_hits = registry.counter("floor.cache.hits.program");
  ids.cache_verdict_hits = registry.counter("floor.cache.hits.verdict");
  ids.cache_insertions = registry.counter("floor.cache.insertions");
  ids.cache_evictions = registry.counter("floor.cache.evictions");
  ids.sim_memo_lookups = registry.counter("floor.sim.memo.lookups");
  ids.sim_memo_hits = registry.counter("floor.sim.memo.hits");
  ids.sim_precompute_us = registry.counter("floor.sim.precompute.us");
  ids.sim_eval_passes = registry.counter("floor.sim.eval_passes");
  ids.sim_cell_evals = registry.counter("floor.sim.cell_evals");
  ids.sim_sweep_cell_evals = registry.counter("floor.sim.sweep_cell_evals");
  ids.sched_nodes = registry.counter("floor.sched.nodes_expanded");
  ids.sched_prunes = registry.counter("floor.sched.prunes");
  ids.sched_improvements = registry.counter("floor.sched.improvements");
  ids.sched_leaves = registry.counter("floor.sched.leaves_priced");
  const std::vector<double> buckets = obs::Registry::latency_buckets_us();
  for (std::size_t s = 0; s < kStageCount; ++s) {
    ids.stage_us[s] = registry.histogram(
        std::string("floor.stage.") +
            stage_name(static_cast<Stage>(s)) + ".us",
        buckets);
  }
  return ids;
}

double FloorStats::utilization() const {
  if (workers == 0 || uptime_seconds <= 0.0) return 0.0;
  const double busy = std::accumulate(worker_busy_seconds.begin(),
                                      worker_busy_seconds.end(), 0.0);
  const double frac =
      busy / (uptime_seconds * static_cast<double>(workers));
  return frac < 0.0 ? 0.0 : (frac > 1.0 ? 1.0 : frac);
}

namespace {

std::string num(double v) {
  if (!std::isfinite(v)) return "0";
  std::ostringstream os;
  os.precision(9);
  os << v;
  return os.str();
}

}  // namespace

std::string FloorStats::to_json() const {
  std::ostringstream os;
  // elapsed_seconds duplicates uptime_seconds under the name rate
  // consumers expect (jobs / elapsed_seconds) — single-snapshot tools
  // (floorstat.py) compute rates without pairing snapshots.
  os << "{\"uptime_seconds\":" << num(uptime_seconds)
     << ",\"elapsed_seconds\":" << num(uptime_seconds)
     << ",\"workers\":" << workers
     << ",\"metrics_enabled\":" << (metrics_enabled ? "true" : "false")
     << ",\"submitted\":" << submitted << ",\"completed\":" << completed
     << ",\"in_flight\":" << in_flight << ",\"errored\":" << errored
     << ",\"queue\":{\"depth\":" << queue.depth
     << ",\"capacity\":" << queue.capacity
     << ",\"high_water\":" << queue.high_water
     << ",\"pushed\":" << queue.pushed << ",\"popped\":" << queue.popped
     << ",\"steals\":" << queue.steals
     << ",\"backpressure_engages\":" << queue.backpressure_engages
     << ",\"backpressure_releases\":" << queue.backpressure_releases
     << "},\"cache\":{\"lookups\":" << cache_lookups
     << ",\"program_hits\":" << cache_program_hits
     << ",\"verdict_hits\":" << cache_verdict_hits
     << ",\"insertions\":" << cache_insertions
     << ",\"evictions\":" << cache_evictions
     << ",\"hit_rate\":" << num(cache_hit_rate())
     << "},\"sim\":{\"memo_lookups\":" << sim_memo_lookups
     << ",\"memo_hits\":" << sim_memo_hits
     << ",\"precompute_seconds\":" << num(sim_precompute_seconds)
     << ",\"eval_passes\":" << sim_eval_passes
     << ",\"cell_evals\":" << sim_cell_evals
     << ",\"sweep_cell_evals\":" << sim_sweep_cell_evals
     << "},\"sched\":{\"nodes_expanded\":" << sched_nodes_expanded
     << ",\"prunes\":" << sched_prunes
     << ",\"improvements\":" << sched_improvements
     << ",\"leaves_priced\":" << sched_leaves_priced << "},\"stages\":{";
  for (std::size_t s = 0; s < kStageCount; ++s) {
    if (s != 0) os << ',';
    const StageDigest& d = stages[s];
    os << '"' << stage_name(static_cast<Stage>(s))
       << "\":{\"count\":" << d.count
       << ",\"total_seconds\":" << num(d.total_seconds)
       << ",\"p50_us\":" << num(d.p50_us) << ",\"p90_us\":" << num(d.p90_us)
       << ",\"p99_us\":" << num(d.p99_us) << '}';
  }
  os << "},\"worker_busy_seconds\":[";
  for (std::size_t w = 0; w < worker_busy_seconds.size(); ++w) {
    if (w != 0) os << ',';
    os << num(worker_busy_seconds[w]);
  }
  os << "],\"worker_inflight_age_seconds\":[";
  for (std::size_t w = 0; w < worker_inflight_age_seconds.size(); ++w) {
    if (w != 0) os << ',';
    os << num(worker_inflight_age_seconds[w]);
  }
  os << "],\"worker_heartbeats\":[";
  for (std::size_t w = 0; w < worker_heartbeats.size(); ++w) {
    if (w != 0) os << ',';
    os << worker_heartbeats[w];
  }
  os << "],\"utilization\":" << num(utilization())
     << ",\"trace\":{\"recorded\":" << trace_recorded
     << ",\"dropped\":" << trace_dropped << "}}";
  return os.str();
}

}  // namespace casbus::floor
