/// \file job.hpp
/// One unit of test-floor work: a self-contained recipe for synthesizing an
/// SoC, compiling its test program, and running it through a private
/// cycle-accurate tester — executed as an explicit staged pipeline
/// (Build -> Schedule -> Compile -> Simulate -> Verdict) with per-stage
/// accounting.
///
/// ## Determinism & thread-safety contract
/// A job is *pure*: run_job() constructs every object it touches (Soc,
/// SocTester, Rng, compiled schedules) from the JobSpec alone and shares no
/// mutable state with other jobs. Two calls with equal specs produce equal
/// results in every deterministic field, regardless of which thread runs
/// them or what runs concurrently. All of a job's randomness flows from its
/// private seed — the floor derives it as Rng::derive_stream(floor_seed,
/// job id) (see util/rng.hpp), which is what makes a whole floor run's
/// aggregates byte-identical for 1 and N workers. An optional per-worker
/// ProgramCache may serve the Schedule+Compile stages for repeated specs;
/// because compilation is itself pure, a cache hit reproduces the cold
/// path's program bit-for-bit and the contract is unchanged.

#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <string_view>

#include "sched/scheduler.hpp"

namespace casbus::obs {
class Registry;
class TraceRecorder;
}  // namespace casbus::obs

namespace casbus::floor {

struct FloorMetricIds;

/// The test-program shapes a floor job can exercise — one per access type
/// the CAS-BUS serves (paper Fig. 2 plus the §4 maintenance scenario).
enum class ScenarioKind {
  ScanOnly,      ///< scan cores only, scheduled + executed (Fig. 2a)
  BistJoin,      ///< scan cores with BIST/memory engines joining (Fig. 2b)
  Hierarchical,  ///< child cores tunneled through a parent CAS (Fig. 2d)
  Maintenance,   ///< MBIST under live functional memory traffic (§4)
};

inline constexpr std::size_t kScenarioCount = 4;

/// Stable short name ("scan", "bist", "hier", "maint") — used by the
/// --scenario-mix CLI syntax and the report breakdowns.
[[nodiscard]] const char* scenario_name(ScenarioKind kind) noexcept;

/// Inverse of scenario_name(); throws PreconditionError on unknown names.
[[nodiscard]] ScenarioKind scenario_from_name(std::string_view name);

/// The named stages of the run_job pipeline, in execution order. Every job
/// flows Build -> (Schedule -> Compile, skipped on a program-cache hit) ->
/// Verify -> Simulate -> Verdict; scenarios the analytic scheduler cannot
/// express (Hierarchical/Maintenance) charge their hand-assembled session
/// setup to Compile and leave Schedule at zero. Verify is the static
/// admission gate (src/verify/): it lints every generated netlist and the
/// compiled schedule in microseconds, so a malformed design fails fast
/// instead of burning the Simulate stage; FloorConfig::verify (or the
/// run_job parameter) skips it.
enum class Stage {
  Build,     ///< synthesize the SoC (cores, wrappers, CAS-BUS)
  Schedule,  ///< analytic scheduling (sched::schedule_with)
  Compile,   ///< bundle the executable program / assemble sessions
  Verify,    ///< static lint of netlists + schedule (verify/)
  Simulate,  ///< cycle-accurate execution through the tester
  Verdict,   ///< harvest pass/fail and cycle accounting
};

inline constexpr std::size_t kStageCount = 6;

/// Stable short name ("build", "schedule", "compile", "verify",
/// "simulate", "verdict") — the report/bench vocabulary for stage
/// breakdowns.
[[nodiscard]] const char* stage_name(Stage stage) noexcept;

/// Everything a worker needs to run one job. Plain value object; copying
/// it into a queue is the only hand-off between producer and workers.
struct JobSpec {
  std::size_t id = 0;             ///< slot in the floor run (and RNG stream)
  ScenarioKind scenario = ScenarioKind::ScanOnly;
  std::uint64_t seed = 1;         ///< private stream seed for *all* job RNG
  sched::Strategy strategy = sched::Strategy::Greedy;
  std::size_t cores = 3;          ///< top-level core count (clamped >= 2)
  unsigned bus_width = 4;         ///< CAS-BUS wires (must be >= 2)
  std::size_t patterns_per_ff = 1;///< scan-pattern budget scale

  /// Canonical signature of every field that determines the job's SoC,
  /// schedule, and compiled program — everything except id (two jobs that
  /// differ only in id are reruns of the same recipe). Stable across
  /// platforms and runs (util/hash.hpp). Equal keys mean byte-identical
  /// deterministic results, which is what makes the per-worker program
  /// caches and the JobQueue's affinity sharding sound.
  [[nodiscard]] std::uint64_t cache_key() const noexcept;

  /// True when \p other is the same recipe: every field except id equal.
  /// The cache compares recipes on every key match, so a hash collision
  /// degrades to a miss instead of serving the wrong program.
  [[nodiscard]] bool same_recipe(const JobSpec& other) const noexcept;
};

/// Which cache tier served a job, if any (see program_cache.hpp). Not
/// deterministic: it depends on job interleaving and worker count, so it
/// is excluded from digests like all timing.
enum class CacheTier : std::uint8_t {
  None,     ///< executed cold (or cache disabled)
  Program,  ///< Schedule+Compile skipped (compiled program reused)
  Verdict,  ///< whole pipeline skipped (qualified result reused)
};

/// Stable short name ("none", "program", "verdict") — the vocabulary of
/// report breakdowns, trace args, and metric names.
[[nodiscard]] const char* cache_tier_name(CacheTier tier) noexcept;

/// Work counters harvested from the engines a job ran — scheduler search
/// effort, golden-model memoisation, packed-simulation evaluation. All
/// observability payload: they never feed back into any computation, are
/// excluded from digests (a verdict-tier hit legitimately reports zeros),
/// and cost nothing to carry when telemetry is off.
struct JobEngineCounters {
  std::uint64_t sim_memo_lookups = 0;   ///< tester golden-response probes
  std::uint64_t sim_memo_hits = 0;      ///< ... served from the memo
  double precompute_seconds = 0.0;      ///< golden-response precompute time
  std::uint64_t sim_eval_passes = 0;    ///< netlist::SimStats::eval_passes
  std::uint64_t sim_cell_evals = 0;     ///< netlist::SimStats::cell_evals
  std::uint64_t sim_sweep_cell_evals = 0;  ///< full-sweep-equivalent work
  std::uint64_t sched_nodes_expanded = 0;  ///< B&B expansions (0 otherwise)
  std::uint64_t sched_prunes = 0;          ///< B&B children cut by bound
  std::uint64_t sched_improvements = 0;    ///< B&B incumbent adoptions
  std::uint64_t sched_leaves_priced = 0;   ///< B&B full partitions priced
};

/// Outcome of one job. Every field except wall_seconds, stage_seconds,
/// cache_tier, and engine is a deterministic function of the JobSpec
/// (FloorReport::deterministic_summary() relies on that); those four are
/// execution records filled in by the executing worker.
struct JobResult {
  std::size_t id = 0;
  ScenarioKind scenario = ScenarioKind::ScanOnly;
  bool pass = false;
  std::string error;              ///< non-empty when the job threw
  std::size_t cores = 0;          ///< cores actually built
  std::size_t sessions = 0;       ///< test sessions executed
  std::size_t patterns = 0;       ///< scan patterns applied
  std::uint64_t predicted_cycles = 0;  ///< analytic time-model prediction
  std::uint64_t measured_cycles = 0;   ///< simulator cycles for the same span
  std::uint64_t sim_cycles = 0;   ///< total tester cycles, incl. config
  double wall_seconds = 0.0;      ///< NOT deterministic; excluded from digests
  /// Per-stage wall time, indexed by Stage. NOT deterministic (timing),
  /// excluded from digests like wall_seconds.
  std::array<double, kStageCount> stage_seconds{};
  /// The cache tier that served this job (None = executed cold). NOT
  /// deterministic (depends on job interleaving and worker count),
  /// excluded from digests.
  CacheTier cache_tier = CacheTier::None;
  /// Engine work counters (see JobEngineCounters). NOT deterministic in
  /// aggregate — a cache-served job reports zeros — excluded from digests.
  JobEngineCounters engine;

  /// True when any cache tier served this job.
  [[nodiscard]] bool cache_hit() const noexcept {
    return cache_tier != CacheTier::None;
  }

  /// |measured − predicted| / predicted (0 when nothing was predicted).
  [[nodiscard]] double deviation() const {
    if (predicted_cycles == 0) return 0.0;
    const auto diff = measured_cycles > predicted_cycles
                          ? measured_cycles - predicted_cycles
                          : predicted_cycles - measured_cycles;
    return static_cast<double>(diff) /
           static_cast<double>(predicted_cycles);
  }
};

class ProgramCache;

/// Simulation-engine options forwarded to a job's private SocTester
/// (soc::TesterOptions carries the full contract). Both knobs are pure
/// optimisations: every deterministic JobResult field is byte-identical
/// for any combination, so they are excluded from JobSpec::cache_key —
/// a cached program/verdict is valid under any engine configuration.
struct JobSimOptions {
  /// Event-driven golden-model evaluation (netlist::EvalMode::EventDriven)
  /// instead of full sweeps. Exact by construction (packed_gatesim.hpp).
  bool event_sim = true;
  /// Threads for precomputing a session's golden responses (1 = inline,
  /// 0 = one per hardware thread). Responses depend only on (core,
  /// pattern), so the thread count cannot change any result.
  std::size_t sim_threads = 1;
  /// Threads for the Schedule stage's branch-and-bound search when the
  /// spec selects Strategy::BranchBound (1 = serial, 0 = one per hardware
  /// thread; other strategies ignore it). The search runs in
  /// deterministic mode, so the schedule is byte-identical at any thread
  /// count — which is what keeps this knob out of JobSpec::cache_key.
  std::size_t sched_threads = 1;
};

/// Observability hooks handed to run_job by the floor (all optional —
/// value-default means "telemetry off", and every instrument site guards
/// on the null pointers, so the disabled cost is a pointer test).
/// Everything here is strictly *write-only* from the job's perspective:
/// counters and spans flow out, nothing flows back in, which is how the
/// telemetry-on == telemetry-off determinism guarantee holds by
/// construction.
struct JobTelemetry {
  obs::Registry* registry = nullptr;      ///< floor metric sink
  const FloorMetricIds* ids = nullptr;    ///< ids registered in *registry
  obs::TraceRecorder* trace = nullptr;    ///< per-stage span sink
  std::uint32_t worker = 0;               ///< executing worker (trace row)
  std::uint64_t slot = 0;                 ///< arrival slot (trace args)
};

/// Executes \p spec end to end through the staged pipeline (Build ->
/// Schedule -> Compile -> Verify -> Simulate -> Verdict) and reports, with
/// per-stage wall time in JobResult::stage_seconds. Never throws: scenario
/// failures and precondition violations come back as JobResult::error.
///
/// When \p verify is true (the default), the Verify stage lints every
/// generated core netlist and the compiled schedule (src/verify/); an
/// error-grade finding fails the job with the lint summary in
/// JobResult::error and Simulate never runs. The lint functions are pure,
/// so verify-on and verify-off runs of an admissible spec produce equal
/// deterministic result fields.
///
/// When \p cache is non-null, repeated recipes are served from it at two
/// tiers (see program_cache.hpp): the Schedule+Compile stages of scheduled
/// scenarios reuse the cached CompiledProgram, and — when the cache has
/// verdict reuse enabled — a recipe that already ran cleanly skips the
/// whole pipeline and returns its qualified result re-stamped with this
/// job's id. Neither tier can change any deterministic result field,
/// because run_job is pure: a cached program/verdict is byte-identical to
/// what a cold run would recompute, so cache-on and cache-off runs produce
/// equal deterministic_summary() text. The cache must be private to the
/// calling thread (the floor gives each worker its own).
///
/// \p obs carries the floor's telemetry sinks (JobTelemetry); the default
/// runs with telemetry off. Spans and counters are emitted per executed
/// stage — a verdict-tier hit emits none (no stage ran).
[[nodiscard]] JobResult run_job(const JobSpec& spec, ProgramCache* cache,
                                bool verify = true, JobSimOptions sim = {},
                                const JobTelemetry& obs = {}) noexcept;

/// Cache-less convenience overload.
[[nodiscard]] JobResult run_job(const JobSpec& spec) noexcept;

}  // namespace casbus::floor
