/// \file job_factory.hpp
/// Scenario-diverse job generation for the test floor.
///
/// The factory is the floor's determinism anchor: job i of a floor run
/// with root seed S is generated from Rng(Rng::derive_stream(S, i)) and
/// nothing else, so the job list is independent of batch size, request
/// order, and worker count — make_job(i) can be called lazily, eagerly,
/// or from multiple threads and always describes the same job.

#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "floor/job.hpp"

namespace casbus::floor {

/// Relative scenario weights (indexed by ScenarioKind). The default mix
/// leans on the cheap high-volume scan programs like a production floor
/// would, with BIST/hierarchical/maintenance programs riding along.
struct ScenarioMix {
  std::array<unsigned, kScenarioCount> weight{4, 2, 1, 1};

  [[nodiscard]] unsigned total() const {
    unsigned t = 0;
    for (const unsigned w : weight) t += w;
    return t;
  }
};

/// Parses the CLI mix syntax "scan:4,bist:2,hier:1,maint:1". Omitted
/// scenarios get weight 0; at least one weight must be positive. Throws
/// PreconditionError on malformed input or unknown scenario names.
[[nodiscard]] ScenarioMix parse_scenario_mix(std::string_view text);

/// Generates JobSpecs from (root seed, scenario mix).
class JobFactory {
 public:
  explicit JobFactory(std::uint64_t floor_seed, ScenarioMix mix = {});

  /// Describes job \p id deterministically (see file comment).
  [[nodiscard]] JobSpec make_job(std::size_t id) const;

  /// The first \p count jobs: make_job(0) .. make_job(count-1).
  [[nodiscard]] std::vector<JobSpec> make_jobs(std::size_t count) const;

  [[nodiscard]] std::uint64_t seed() const noexcept { return seed_; }
  [[nodiscard]] const ScenarioMix& mix() const noexcept { return mix_; }

 private:
  std::uint64_t seed_;
  ScenarioMix mix_;
};

}  // namespace casbus::floor
