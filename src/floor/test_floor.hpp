/// \file test_floor.hpp
/// The SoC test-floor service: a pool of worker threads streaming test
/// programs through independent cycle-accurate testers.
///
/// Architecture (one TestFloor::run):
///
///     JobSpecs ──▶ JobQueue ──▶ worker 0 ─┐
///                         ├──▶ worker 1 ─┼──▶ results[slot] ──▶ aggregate
///                         └──▶ worker N ─┘        (job-slot order)
///
/// Each worker owns everything it touches: it pops a JobSpec, synthesizes
/// a private Soc + SocTester + Rng from the spec (run_job), and writes the
/// JobResult into its pre-assigned slot of the results vector. Workers
/// share only the queue (mutex-guarded) and disjoint result slots, so no
/// simulation state ever crosses a thread boundary.
///
/// ## Determinism guarantee
/// For a fixed job list (fixed floor seed), FloorReport's deterministic
/// aggregates — everything in deterministic_summary() — are byte-identical
/// for 1 worker and N workers: job randomness is keyed by
/// Rng::derive_stream(seed, job id), results land in job-slot order, and
/// aggregation folds that vector sequentially after the pool has joined.
/// Only wall-clock throughput varies with the worker count.

#pragma once

#include <cstddef>
#include <vector>

#include "floor/job.hpp"
#include "floor/report.hpp"

namespace casbus::floor {

struct FloorConfig {
  /// Worker threads; 0 means one per hardware thread
  /// (std::thread::hardware_concurrency, itself clamped to >= 1).
  std::size_t workers = 0;
};

/// Runs batches of jobs through a worker pool. A TestFloor object is cheap
/// (configuration only); each run() builds and joins a fresh pool.
class TestFloor {
 public:
  explicit TestFloor(FloorConfig config = {});

  /// Effective worker-thread count a run() will use.
  [[nodiscard]] std::size_t workers() const noexcept { return workers_; }

  /// Executes every job and returns the aggregated report (results in
  /// input order). Spawns min(workers(), jobs.size()) threads; an empty
  /// job list returns an empty report without spawning any.
  [[nodiscard]] FloorReport run(const std::vector<JobSpec>& jobs) const;

 private:
  std::size_t workers_;
};

}  // namespace casbus::floor
