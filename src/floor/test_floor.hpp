/// \file test_floor.hpp
/// Batch front-end of the SoC test-floor service: run a closed job list
/// through a worker pool and report.
///
/// Since the streaming refactor this is a thin adapter over FloorSession
/// (src/floor/session.hpp): run() opens a session, submits the whole
/// batch, and drains — one-shot callers keep the old API, and both paths
/// share the queue, the staged run_job pipeline, the per-worker program
/// caches, and the determinism rule.
///
/// ## Determinism guarantee
/// For a fixed job list (fixed floor seed), FloorReport's deterministic
/// aggregates — everything in deterministic_summary() — are byte-identical
/// for 1 worker and N workers, and to a hand-driven FloorSession over the
/// same list: job randomness is keyed by Rng::derive_stream(seed, job id),
/// results land in job-slot order, and aggregation folds that vector
/// sequentially after the pool has joined. Only wall-clock throughput
/// varies with the worker count.

#pragma once

#include <cstddef>
#include <vector>

#include "floor/job.hpp"
#include "floor/report.hpp"
#include "floor/session.hpp"

namespace casbus::floor {

/// Runs batches of jobs through a worker pool. A TestFloor object is cheap
/// (configuration only); each run() opens and drains a fresh FloorSession.
class TestFloor {
 public:
  explicit TestFloor(FloorConfig config = {});

  /// Effective worker-thread count a run() will use.
  [[nodiscard]] std::size_t workers() const noexcept { return workers_; }

  /// Executes every job and returns the aggregated report (results in
  /// input order). The session pool is capped at min(workers(),
  /// jobs.size()) threads; an empty job list returns an empty report
  /// without spawning any.
  [[nodiscard]] FloorReport run(const std::vector<JobSpec>& jobs) const;

 private:
  FloorConfig config_;
  std::size_t workers_;
};

}  // namespace casbus::floor
