/// \file session.hpp
/// The streaming test-floor service: a long-running worker pool that
/// accepts jobs *while it runs*, with bounded backpressure, per-worker
/// program caches, and work stealing.
///
/// Architecture (one FloorSession):
///
///     submit()/submit_batch() ──▶ JobQueue ──▶ worker 0 (+cache) ─┐
///        (blocks at capacity)   (affinity ├──▶ worker 1 (+cache) ─┼─▶
///                                 shards,  └──▶ worker N (+cache) ─┘
///                                 stealing)        results[slot]
///                                                       │
///     poll_results() ◀── slot-ordered delivery ◀────────┤
///     drain()        ◀── close + join + aggregate ◀─────┘
///
/// Lifecycle: open (construction spawns the pool) -> submit / submit_batch
/// / poll_results in any interleaving from any threads -> drain() (or
/// close() + drain()) exactly once -> destruction. Jobs submitted after
/// the workers have started are executed like any other; that is the
/// point.
///
/// ## Determinism guarantee (unchanged from the batch floor)
/// drain()'s FloorReport folds results in arrival-slot order after the
/// pool has joined, so every deterministic aggregate — everything in
/// deterministic_summary() — is a function of the submitted job list
/// alone: byte-identical for 1 worker and N workers, with caches on or
/// off, and to an equivalent batch TestFloor::run over the same list.
/// Caches cannot break this because compilation is pure (see job.hpp);
/// stealing cannot because results land by slot, never by completion.
/// The engine knobs (event_sim, sim_threads, sched_threads) cannot
/// either: all are pure optimisations of the Simulate / Schedule stages
/// (see JobSimOptions in job.hpp and the measured cost model in
/// docs/PERFORMANCE.md).

#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "floor/health.hpp"
#include "floor/job.hpp"
#include "floor/job_queue.hpp"
#include "floor/report.hpp"
#include "floor/telemetry.hpp"
#include "obs/metrics.hpp"
#include "obs/timeseries.hpp"
#include "obs/trace.hpp"

namespace casbus::floor {

/// Resolves a requested worker count: 0 means one per hardware thread
/// (std::thread::hardware_concurrency, itself clamped to >= 1). The one
/// place the 0-means-auto policy lives.
[[nodiscard]] inline std::size_t effective_workers(
    std::size_t requested) noexcept {
  if (requested != 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

struct FloorConfig {
  /// Worker threads; 0 means one per hardware thread (effective_workers).
  std::size_t workers = 0;
  /// Jobs allowed to wait in the queue before submit() blocks (and
  /// try_submit() refuses); 0 means unbounded — batch semantics.
  std::size_t queue_capacity = 0;
  /// Per-worker program-cache entries (LRU); 0 disables caching.
  std::size_t cache_capacity = 16;
  /// Gates the cache's verdict tier (full-result reuse of recipes that
  /// already ran cleanly — see program_cache.hpp). The program tier
  /// (Schedule+Compile skip) is controlled by cache_capacity alone.
  bool reuse_verdicts = true;
  /// Runs the static Verify stage (netlist + schedule lint, src/verify/)
  /// on every job before Simulate; error-grade findings fail the job
  /// without simulating. Cheap (µs per job) — disable only to measure its
  /// cost or to force a known-bad design through the tester.
  bool verify = true;
  /// Event-driven golden-model evaluation in each job's tester
  /// (JobSimOptions::event_sim). Pure optimisation: deterministic results
  /// are byte-identical either way.
  bool event_sim = true;
  /// Golden-response precompute threads inside each job's Simulate stage
  /// (JobSimOptions::sim_threads; 1 = inline, 0 = one per hardware
  /// thread). Multiplies with `workers` — prefer sim_threads > 1 when a
  /// floor runs few, simulation-heavy jobs, and workers > 1 when it runs
  /// many. Cannot change any deterministic result or the
  /// deterministic_summary() text.
  std::size_t sim_threads = 1;
  /// Branch-and-bound search threads inside each job's Schedule stage
  /// (JobSimOptions::sched_threads; 1 = serial, 0 = one per hardware
  /// thread; only Strategy::BranchBound jobs use it). Same multiplication
  /// trade-off as sim_threads. The search runs deterministically, so this
  /// cannot change any deterministic result or the
  /// deterministic_summary() text either.
  std::size_t sched_threads = 1;
  /// Enables the metrics registry (src/obs/): per-thread-sharded counters
  /// and stage-latency histograms, surfaced by stats_snapshot(). Pure
  /// observation — cannot change any deterministic result or the
  /// deterministic_summary() text (tests/test_obs.cpp pins this); when
  /// off, the cost at every instrument site is a null-pointer test.
  bool metrics = false;
  /// Span capacity of the pipeline trace (obs::TraceRecorder); 0 disables
  /// tracing. Spans past capacity are counted and dropped — tracing never
  /// blocks a worker. Same determinism guarantee as `metrics`.
  std::size_t trace_capacity = 0;
  /// The health engine (health.hpp): when health.enabled, the session runs
  /// an obs::TimeSeriesSampler whose tick drives a HealthMonitor over
  /// stats_snapshot(), exposed via health_report(), and implies `metrics`
  /// (the rules read registry-backed counters). Same determinism guarantee
  /// as `metrics` — the monitor only observes (tests/test_health.cpp pins
  /// deterministic_summary() on/off equality, TSan-checked).
  HealthConfig health{};
};

/// A live streaming session. Not copyable or movable: workers hold `this`.
class FloorSession {
 public:
  explicit FloorSession(FloorConfig config = {});

  /// Closes and joins if the caller never called drain(); results are
  /// discarded in that case.
  ~FloorSession();

  FloorSession(const FloorSession&) = delete;
  FloorSession& operator=(const FloorSession&) = delete;

  /// Worker threads serving this session.
  [[nodiscard]] std::size_t workers() const noexcept { return workers_; }

  /// Submits one job, blocking while the queue is at capacity. Returns
  /// false (job rejected) once the session is closed — graceful, so
  /// producers may race close()/drain().
  [[nodiscard]] bool submit(JobSpec spec) { return queue_.push(spec); }

  /// Non-blocking submit: false when the session is closed or the queue
  /// is at its capacity bound.
  [[nodiscard]] bool try_submit(JobSpec spec) {
    return queue_.try_push(spec);
  }

  /// Submits jobs in order (each a blocking submit); returns how many
  /// were accepted — short only if the session was closed mid-batch.
  std::size_t submit_batch(const std::vector<JobSpec>& specs);

  /// Jobs accepted so far.
  [[nodiscard]] std::size_t submitted() const { return queue_.pushed(); }

  /// Jobs fully executed so far.
  [[nodiscard]] std::size_t completed() const;

  /// Returns finished results in arrival-slot order, each delivered
  /// exactly once across all poll_results() calls; stops at the first
  /// still-running slot. Non-blocking. Results handed out here are still
  /// included in drain()'s aggregate report.
  [[nodiscard]] std::vector<JobResult> poll_results();

  /// Stops accepting input (submit/try_submit return false). Workers
  /// finish the backlog. Idempotent; does not join.
  void close() { queue_.close(); }

  /// Closes, joins the pool, and returns the aggregate report over every
  /// job the session accepted, in slot order. Call at most once.
  [[nodiscard]] FloorReport drain();

  // --- observability surfaces ----------------------------------------------

  /// A consistent-enough live snapshot of the whole session (telemetry.hpp
  /// documents every field). Safe to call at any time from any thread,
  /// concurrently with running workers; with FloorConfig::metrics off the
  /// registry-backed counters read zero (metrics_enabled says so) while
  /// the queue/flow numbers stay live.
  [[nodiscard]] FloorStats stats_snapshot() const;

  /// The session's metrics registry, or null when FloorConfig::metrics is
  /// off. Useful for registering caller-side gauges next to the floor's.
  [[nodiscard]] obs::Registry* registry() noexcept {
    return registry_.get();
  }

  /// The session's trace recorder, or null when trace_capacity is 0.
  [[nodiscard]] obs::TraceRecorder* trace() noexcept { return trace_.get(); }

  /// The health sampler, or null when FloorConfig::health is off.
  [[nodiscard]] obs::TimeSeriesSampler* sampler() noexcept {
    return sampler_.get();
  }

  /// Forces one sample + health evaluation *now* and returns the
  /// resulting report — deterministic-by-construction for tests and CLI
  /// consumers (no sleeping for the background tick; forced ticks count
  /// as hysteresis samples, so repeated calls walk rules through their
  /// trip/clear transitions). Default-valued report when health is off.
  /// Safe from any thread, concurrently with the background tick.
  [[nodiscard]] HealthReport health_report();

  /// Writes the pipeline trace as Chrome trace-event JSON. False when
  /// tracing is off or the file cannot be written. Intended after
  /// drain(), but safe (published spans only) at any time.
  [[nodiscard]] bool write_trace(const std::string& path) const {
    return trace_ != nullptr && trace_->write_chrome_trace(path);
  }

 private:
  void worker_main(std::size_t worker);

  /// One sample -> evaluate -> alarm pass (the sampler tick callback and
  /// the forced half of health_report()). Serialized internally.
  void health_tick();

  FloorConfig config_;
  std::size_t workers_;
  // Telemetry sinks are constructed before the queue/pool and must
  // outlive the workers that write to them.
  std::unique_ptr<obs::Registry> registry_;  ///< null when metrics off
  FloorMetricIds ids_;                       ///< valid when registry_ set
  std::unique_ptr<obs::TraceRecorder> trace_;  ///< null when tracing off
  JobQueue queue_;
  std::chrono::steady_clock::time_point start_;
  /// Per-worker busy time in µs; atomic because stats_snapshot() reads
  /// while workers accumulate. unique_ptr array: atomics can't live in a
  /// resizable vector.
  std::unique_ptr<std::atomic<std::uint64_t>[]> busy_us_;
  /// Watchdog inputs: when worker w has a job in flight,
  /// job_start_us_[w] is its start time (µs since start_); kWorkerIdle
  /// otherwise. heartbeats_[w] counts jobs popped by worker w.
  std::unique_ptr<std::atomic<std::uint64_t>[]> job_start_us_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> heartbeats_;
  std::atomic<std::uint64_t> in_flight_{0};
  std::vector<std::thread> pool_;
  bool drained_ = false;

  mutable std::mutex results_mu_;
  std::vector<JobResult> results_;  ///< indexed by slot
  std::vector<char> done_;          ///< parallel to results_
  std::size_t completed_ = 0;
  std::size_t errored_ = 0;    ///< completed jobs with non-empty error
  std::size_t next_poll_ = 0;  ///< first slot not yet handed to poll
  bool harvested_ = false;     ///< drain() took the results vector

  // Health engine (after registry_: the sampler references the registry
  // and must be destroyed first; the destructor also stops it explicitly
  // before joining the pool).
  std::unique_ptr<HealthMonitor> health_;  ///< null when health off
  std::unique_ptr<obs::TimeSeriesSampler> sampler_;  ///< null when off
  std::mutex health_tick_mu_;  ///< serializes forced + background ticks
  std::uint64_t handled_sample_ = 0;    ///< events up to here processed
  std::uint64_t incidents_written_ = 0;  ///< bundle seq (guarded above)
};

}  // namespace casbus::floor
