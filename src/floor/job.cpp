#include "floor/job.hpp"

#include <algorithm>
#include <chrono>
#include <memory>
#include <string>

#include "floor/program_cache.hpp"
#include "floor/telemetry.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sched/time_model.hpp"
#include "soc/schedule_runner.hpp"
#include "soc/soc.hpp"
#include "soc/tester.hpp"
#include "soc/traffic.hpp"
#include "tpg/patterns.hpp"
#include "util/hash.hpp"
#include "util/rng.hpp"
#include "verify/netlist_lint.hpp"
#include "verify/schedule_lint.hpp"

namespace casbus::floor {
namespace {

/// Charges wall time to the pipeline stages: each finish(stage) call
/// attributes the time since the previous boundary to that stage — and,
/// when the job carries telemetry sinks, feeds the stage's latency
/// histogram and emits its trace span. Both sinks are write-only and
/// null-guarded, so the telemetry-off cost is one pointer test per stage.
class StageTimer {
 public:
  StageTimer(JobResult& result, const JobTelemetry& obs)
      : result_(result), obs_(obs),
        last_(std::chrono::steady_clock::now()) {}

  void finish(Stage stage) {
    const auto now = std::chrono::steady_clock::now();
    const double seconds =
        std::chrono::duration<double>(now - last_).count();
    result_.stage_seconds[static_cast<std::size_t>(stage)] += seconds;
    last_ = now;

    const double us = seconds * 1e6;
    if (obs_.registry != nullptr && obs_.ids != nullptr)
      obs_.registry->observe(
          obs_.ids->stage_us[static_cast<std::size_t>(stage)], us);
    if (obs_.trace != nullptr) {
      obs::TraceSpan span;
      span.name = stage_name(stage);
      span.scenario = scenario_name(result_.scenario);
      span.tid = obs_.worker;
      span.slot = obs_.slot;
      span.dur_us = static_cast<std::uint64_t>(us);
      const std::uint64_t end = obs_.trace->now_us();
      span.ts_us = end > span.dur_us ? end - span.dur_us : 0;
      obs_.trace->record(span);
    }
  }

 private:
  JobResult& result_;
  const JobTelemetry& obs_;
  std::chrono::steady_clock::time_point last_;
};

/// Copies a tester's engine counters into the result (see
/// JobEngineCounters). Called after the Simulate stage of every scenario.
void harvest_tester(const soc::SocTester& tester, JobResult& result) {
  result.engine.sim_memo_lookups = tester.memo_lookups();
  result.engine.sim_memo_hits = tester.memo_hits();
  result.engine.precompute_seconds = tester.precompute_seconds();
  const netlist::SimStats stats = tester.sim_stats();
  result.engine.sim_eval_passes = stats.eval_passes;
  result.engine.sim_cell_evals = stats.cell_evals;
  result.engine.sim_sweep_cell_evals = stats.sweep_cell_evals;
}

/// Maps the floor-level engine knobs onto soc::TesterOptions.
soc::TesterOptions tester_options(const JobSimOptions& sim) {
  soc::TesterOptions opts;
  opts.sim_mode = sim.event_sim ? netlist::EvalMode::EventDriven
                                : netlist::EvalMode::FullSweep;
  opts.sim_threads = sim.sim_threads;
  return opts;
}

/// Lints one generated core netlist, including its scan-chain topology
/// (verify rule NL007 walks the mux-D path the chain spec promises).
verify::LintReport lint_core_netlist(const tpg::SyntheticCore& core) {
  verify::NetlistLintConfig config;
  config.scan_chains.reserve(core.chains.size());
  for (std::size_t c = 0; c < core.chains.size(); ++c)
    config.scan_chains.push_back(verify::ScanChainSpec{
        "si" + std::to_string(c), "so" + std::to_string(c),
        core.chains[c].size()});
  return verify::lint_netlist(core.netlist, config);
}

/// Lints every gate-level netlist inside \p soc (scan, external, BIST,
/// hierarchical children; memory cores are behavioral and have none).
verify::LintReport lint_soc(const soc::Soc& soc) {
  verify::LintReport report;
  for (const soc::CoreInstance& core : soc.cores()) {
    switch (core.kind) {
      case soc::CoreKind::Scan:
      case soc::CoreKind::External:
        report.merge(lint_core_netlist(core.as_scan().synth()));
        break;
      case soc::CoreKind::Bist:
        report.merge(lint_core_netlist(core.as_bist().synth()));
        break;
      case soc::CoreKind::Memory:
        break;
      case soc::CoreKind::Hierarchical:
        for (const soc::CoreInstance& child : core.hier->children)
          report.merge(lint_core_netlist(child.as_scan().synth()));
        break;
    }
  }
  return report;
}

/// Runs the Verify stage: on an error-grade finding, fails the job with
/// the lint summary and returns false (the caller skips Simulate).
bool verify_stage(const verify::LintReport& lint, StageTimer& timer,
                  JobResult& result) {
  timer.finish(Stage::Verify);
  if (lint.admissible()) return true;
  result.pass = false;
  result.error = lint.summary();
  return false;
}

/// Synthetic-core spec sized for floor jobs: big enough that execution is
/// dominated by simulation (not queue traffic), small enough that one job
/// stays in the tens of milliseconds.
tpg::SyntheticCoreSpec job_core_spec(Rng& rng, std::size_t chains) {
  tpg::SyntheticCoreSpec spec;
  spec.n_inputs = 4;
  spec.n_outputs = 4;
  spec.n_flipflops = 8 + rng.below(9);  // 8..16
  spec.n_gates = 3 * spec.n_flipflops + rng.below(spec.n_flipflops);
  spec.n_chains = std::min(chains, spec.n_flipflops);
  spec.seed = rng.next();
  return spec;
}

/// Scheduled scenarios (ScanOnly / BistJoin): synthesize the SoC, compile
/// via the analytic scheduler — or pull the compiled program straight from
/// the worker's cache — then execute cycle-accurately.
void run_scheduled(const JobSpec& spec, bool with_engines, Rng& rng,
                   ProgramCache* cache, bool verify,
                   const JobSimOptions& sim, const JobTelemetry& obs,
                   JobResult& result) {
  StageTimer timer(result, obs);

  // ---- Stage: Build -------------------------------------------------------
  soc::SocBuilder builder(spec.bus_width);
  const std::size_t total = std::max<std::size_t>(2, spec.cores);
  std::size_t scan_cores = total;
  std::size_t engines = 0;

  if (with_engines) {
    // Reserve one slot for a logic-BIST engine, and one for an embedded
    // memory when the bus is wide enough to give both a dedicated wire
    // while keeping at least one scan wire free.
    const bool with_memory = spec.bus_width >= 4;
    engines = with_memory ? 2 : 1;
    scan_cores = std::max<std::size_t>(1, total - engines);
    builder.add_bist_core("lbist", job_core_spec(rng, 1),
                          64 + static_cast<std::uint32_t>(rng.below(129)));
    if (with_memory)
      builder.add_memory_core("ram", 16 + 16 * rng.below(2), 8);
  }
  // Executable-schedule constraint: a CAS routes each selected wire to
  // exactly one port, so a core's chains must land on *distinct* wires.
  // In the tightest session every engine holds a wire concurrently with
  // the scan part; capping chains at the scan wires left then keeps the
  // grouped balance from concatenating two chains of one core onto one
  // wire — a plan the analytic model allows but the switch cannot route.
  const std::size_t max_chains = std::max<std::size_t>(
      1, std::min<std::size_t>(3, spec.bus_width - engines));
  for (std::size_t i = 0; i < scan_cores; ++i)
    builder.add_scan_core("scan" + std::to_string(i),
                          job_core_spec(rng, 1 + rng.below(max_chains)));

  auto soc = builder.build();
  timer.finish(Stage::Build);

  // The pattern seed is drawn whether or not the cache hits, so cached and
  // cold runs consume the job RNG identically — a precondition of the
  // cache-on == cache-off determinism guarantee.
  const std::uint64_t pattern_seed = rng.next();

  // ---- Stages: Schedule + Compile (the program-cache window) --------------
  std::shared_ptr<const soc::CompiledProgram> program =
      cache ? cache->find_program(spec) : nullptr;
  if (program) {
    result.cache_tier = CacheTier::Program;
    // The cache verified recipe equality, and equal recipes reproduce the
    // pattern seed — so a served program is exactly the cold compile.
    CASBUS_ASSERT(program->pattern_seed == pattern_seed,
                  "ProgramCache served a mismatched program");
  } else {
    auto fresh = std::make_shared<soc::CompiledProgram>();
    fresh->specs = soc::specs_of(*soc, spec.patterns_per_ff);
    sched::ScheduleStats sched_stats;
    fresh->schedule =
        sched::schedule_with(fresh->specs, soc->bus().width(), spec.strategy,
                             &sched_stats, sim.sched_threads);
    result.engine.sched_nodes_expanded = sched_stats.nodes_expanded;
    result.engine.sched_prunes = sched_stats.prunes;
    result.engine.sched_improvements = sched_stats.incumbent_improvements;
    result.engine.sched_leaves_priced = sched_stats.leaves_priced;
    timer.finish(Stage::Schedule);
    fresh->pattern_seed = pattern_seed;
    if (cache) cache->put_program(spec, fresh);
    program = std::move(fresh);
    timer.finish(Stage::Compile);
  }

  // ---- Stage: Verify ------------------------------------------------------
  if (verify) {
    verify::LintReport lint = lint_soc(*soc);
    lint.merge(verify::lint_schedule(program->schedule, program->specs,
                                     soc->bus().width()));
    if (!verify_stage(lint, timer, result)) return;
  }

  // ---- Stage: Simulate ----------------------------------------------------
  soc::SocTester tester(*soc, tester_options(sim));
  const soc::ScheduleRunReport report =
      soc::run_program(*soc, tester, *program);
  harvest_tester(tester, result);
  timer.finish(Stage::Simulate);

  // ---- Stage: Verdict -----------------------------------------------------
  result.cores = soc->core_count();
  result.sessions = report.sessions;
  result.patterns = program->total_patterns();
  result.predicted_cycles = report.predicted_cycles;
  result.measured_cycles = report.measured_cycles;
  result.sim_cycles = tester.cycles();
  result.pass = report.all_pass;
  timer.finish(Stage::Verdict);
}

/// Hierarchical scenario (paper Fig. 2d): children tested through a parent
/// CAS tunnel, concurrently with a top-level scan core. The analytic
/// scheduler cannot express hierarchy, so the session is assembled by hand
/// (charged to the Compile stage) and predicted directly with the time
/// model.
void run_hierarchical(const JobSpec& spec, Rng& rng, bool verify,
                      const JobSimOptions& sim, const JobTelemetry& obs,
                      JobResult& result) {
  StageTimer timer(result, obs);

  // ---- Stage: Build -------------------------------------------------------
  const std::size_t children = 2 + rng.below(2);  // 2..3
  // Top core rides 2 wires, each child needs its own tunnel wire.
  const unsigned width =
      std::max<unsigned>(spec.bus_width, static_cast<unsigned>(2 + children));

  soc::SocBuilder builder(width);
  builder.add_scan_core("top", job_core_spec(rng, 2));
  std::vector<soc::SocBuilder::ChildSpec> child_specs;
  for (std::size_t j = 0; j < children; ++j)
    child_specs.push_back({"sub" + std::to_string(j), job_core_spec(rng, 1)});
  builder.add_hierarchical_core("subsys",
                                static_cast<unsigned>(children),
                                std::move(child_specs));
  auto soc = builder.build();
  soc::SocTester tester(*soc, tester_options(sim));
  timer.finish(Stage::Build);

  // ---- Stage: Compile (hand-assembled session) ----------------------------
  const std::size_t patterns = 6 + rng.below(7);  // 6..12, same per target
  soc::ScanSession session;
  std::vector<unsigned> tunnel;
  for (std::size_t j = 0; j < children; ++j)
    tunnel.push_back(static_cast<unsigned>(2 + j));
  session.routes.push_back(soc::HierarchyRoute{1, tunnel});

  // Wire loads drive the analytic prediction: each chain sits alone on its
  // wire, so the session length follows scan_cycles(max chain, V) exactly.
  std::size_t max_load = 0;
  const tpg::SyntheticCore& top = soc->cores()[0].as_scan().synth();
  std::vector<unsigned> top_wires;
  for (std::size_t c = 0; c < top.chains.size(); ++c) {
    top_wires.push_back(static_cast<unsigned>(c));
    max_load = std::max(max_load, top.chains[c].size());
  }
  session.targets.push_back(soc::ScanTarget{
      soc::CoreRef{0, std::nullopt}, top_wires,
      tpg::PatternSet::random(top.spec.n_flipflops, patterns, rng)});
  const soc::HierarchicalBody& body = *soc->cores()[1].hier;
  for (std::size_t j = 0; j < children; ++j) {
    const tpg::SyntheticCore& child = body.children[j].as_scan().synth();
    max_load = std::max(max_load, child.spec.n_flipflops);
    session.targets.push_back(soc::ScanTarget{
        soc::CoreRef{1, j}, {tunnel[j]},
        tpg::PatternSet::random(child.spec.n_flipflops, patterns, rng)});
  }
  timer.finish(Stage::Compile);

  // ---- Stage: Verify ------------------------------------------------------
  if (verify && !verify_stage(lint_soc(*soc), timer, result)) return;

  // ---- Stage: Simulate ----------------------------------------------------
  const soc::ScanSessionResult r = tester.run_scan_session(session);
  harvest_tester(tester, result);
  timer.finish(Stage::Simulate);

  // ---- Stage: Verdict -----------------------------------------------------
  result.cores = 1 + children;  // leaves under test
  result.sessions = 1;
  result.patterns = patterns * (1 + children);
  result.predicted_cycles = sched::scan_cycles(max_load, patterns);
  result.measured_cycles = r.test_cycles;
  result.sim_cycles = tester.cycles();
  result.pass = r.all_pass();
  timer.finish(Stage::Verdict);
}

/// Maintenance scenario (paper §4): MARCH-test an embedded memory over the
/// bus while live functional traffic keeps hammering a second memory, and
/// scan-test a logic core in the same window. Passing requires the MBIST
/// verdict, clean scan responses, and zero traffic read-back errors. The
/// interleaved mission/test windows are all charged to Simulate.
void run_maintenance(const JobSpec& spec, Rng& rng, bool verify,
                     const JobSimOptions& sim, const JobTelemetry& obs,
                     JobResult& result) {
  StageTimer timer(result, obs);

  // ---- Stage: Build -------------------------------------------------------
  soc::SocBuilder builder(spec.bus_width);
  builder.add_memory_core("ram", 16 + 16 * rng.below(2), 8);
  builder.add_memory_core("buf", 16, 8);
  const std::size_t chains =
      std::max<std::size_t>(1, std::min<std::size_t>(2, spec.bus_width - 1));
  builder.add_scan_core("logic", job_core_spec(rng, chains));
  auto soc = builder.build();

  soc::MemoryTraffic traffic(*soc, 1, rng.next());
  soc::SocTester tester(*soc, tester_options(sim));
  soc::MemoryCore& ram = soc->cores()[0].as_memory();
  timer.finish(Stage::Build);

  // ---- Stage: Compile (scan session assembly) -----------------------------
  const tpg::SyntheticCore& logic = soc->cores()[2].as_scan().synth();
  const std::size_t patterns = 4 + rng.below(5);  // 4..8
  soc::ScanSession session;
  std::vector<unsigned> wires;
  for (std::size_t c = 0; c < logic.chains.size(); ++c)
    wires.push_back(static_cast<unsigned>(c));
  session.targets.push_back(soc::ScanTarget{
      soc::CoreRef{2, std::nullopt}, wires,
      tpg::PatternSet::random(logic.spec.n_flipflops, patterns, rng)});
  timer.finish(Stage::Compile);

  // ---- Stage: Verify ------------------------------------------------------
  if (verify && !verify_stage(lint_soc(*soc), timer, result)) return;

  // ---- Stage: Simulate ----------------------------------------------------
  traffic.set_enabled(true);
  tester.step(64 + rng.below(65));  // mission mode before the window

  // Scan the logic core while traffic keeps flowing through "buf".
  const soc::ScanSessionResult scan = tester.run_scan_session(session);

  // Maintenance window proper: MBIST over the top bus wire.
  const soc::BistRunResult mbist =
      tester.run_bist(0, spec.bus_width - 1, ram.mbist_cycles());
  tester.step(32);  // back to mission mode
  harvest_tester(tester, result);
  timer.finish(Stage::Simulate);

  // ---- Stage: Verdict -----------------------------------------------------
  result.cores = soc->core_count();
  result.sessions = 2;
  result.patterns = patterns;
  result.predicted_cycles = ram.mbist_cycles();
  result.measured_cycles = mbist.test_cycles;
  result.sim_cycles = tester.cycles();
  result.pass = scan.all_pass() && mbist.pass &&
                traffic.mismatches() == 0 && traffic.reads_checked() > 0;
  timer.finish(Stage::Verdict);
}

}  // namespace

const char* scenario_name(ScenarioKind kind) noexcept {
  switch (kind) {
    case ScenarioKind::ScanOnly: return "scan";
    case ScenarioKind::BistJoin: return "bist";
    case ScenarioKind::Hierarchical: return "hier";
    case ScenarioKind::Maintenance: return "maint";
  }
  return "unknown";
}

ScenarioKind scenario_from_name(std::string_view name) {
  if (name == "scan") return ScenarioKind::ScanOnly;
  if (name == "bist") return ScenarioKind::BistJoin;
  if (name == "hier") return ScenarioKind::Hierarchical;
  if (name == "maint") return ScenarioKind::Maintenance;
  CASBUS_REQUIRE(false, "unknown scenario: " + std::string(name));
  return ScenarioKind::ScanOnly;  // unreachable
}

const char* cache_tier_name(CacheTier tier) noexcept {
  switch (tier) {
    case CacheTier::None: return "none";
    case CacheTier::Program: return "program";
    case CacheTier::Verdict: return "verdict";
  }
  return "unknown";
}

const char* stage_name(Stage stage) noexcept {
  switch (stage) {
    case Stage::Build: return "build";
    case Stage::Schedule: return "schedule";
    case Stage::Compile: return "compile";
    case Stage::Verify: return "verify";
    case Stage::Simulate: return "simulate";
    case Stage::Verdict: return "verdict";
  }
  return "unknown";
}

std::uint64_t JobSpec::cache_key() const noexcept {
  return StableHash{}
      .mix(static_cast<std::uint64_t>(scenario))
      .mix(seed)
      .mix(static_cast<std::uint64_t>(strategy))
      .mix(static_cast<std::uint64_t>(cores))
      .mix(static_cast<std::uint64_t>(bus_width))
      .mix(static_cast<std::uint64_t>(patterns_per_ff))
      .value();
}

bool JobSpec::same_recipe(const JobSpec& other) const noexcept {
  return scenario == other.scenario && seed == other.seed &&
         strategy == other.strategy && cores == other.cores &&
         bus_width == other.bus_width &&
         patterns_per_ff == other.patterns_per_ff;
}

namespace {

/// Terminal telemetry of one run_job call: the engine-counter metrics and
/// the job-level span (category "job", tagged with the serving cache
/// tier). Stage spans/histograms were already emitted by the StageTimer —
/// or not at all, for a verdict-tier serve, which is exactly the "one
/// span per stage per *executed* job" contract.
void emit_job_telemetry(const JobTelemetry& obs, const JobResult& result,
                        std::uint64_t job_start_us) {
  if (obs.registry != nullptr && obs.ids != nullptr) {
    obs::Registry& reg = *obs.registry;
    const FloorMetricIds& ids = *obs.ids;
    reg.add(ids.jobs_executed);
    if (!result.error.empty()) reg.add(ids.jobs_errored);
    const JobEngineCounters& e = result.engine;
    reg.add(ids.sim_memo_lookups, e.sim_memo_lookups);
    reg.add(ids.sim_memo_hits, e.sim_memo_hits);
    reg.add(ids.sim_precompute_us,
            static_cast<std::uint64_t>(e.precompute_seconds * 1e6));
    reg.add(ids.sim_eval_passes, e.sim_eval_passes);
    reg.add(ids.sim_cell_evals, e.sim_cell_evals);
    reg.add(ids.sim_sweep_cell_evals, e.sim_sweep_cell_evals);
    reg.add(ids.sched_nodes, e.sched_nodes_expanded);
    reg.add(ids.sched_prunes, e.sched_prunes);
    reg.add(ids.sched_improvements, e.sched_improvements);
    reg.add(ids.sched_leaves, e.sched_leaves_priced);
  }
  if (obs.trace != nullptr) {
    obs::TraceSpan span;
    span.name = scenario_name(result.scenario);
    span.category = "job";
    span.scenario = scenario_name(result.scenario);
    span.cache_tier = cache_tier_name(result.cache_tier);
    span.tid = obs.worker;
    span.slot = obs.slot;
    span.ts_us = job_start_us;
    const std::uint64_t end = obs.trace->now_us();
    span.dur_us = end > job_start_us ? end - job_start_us : 0;
    obs.trace->record(span);
  }
}

}  // namespace

JobResult run_job(const JobSpec& spec, ProgramCache* cache, bool verify,
                  JobSimOptions sim, const JobTelemetry& obs) noexcept {
  const std::uint64_t job_start_us =
      obs.trace != nullptr ? obs.trace->now_us() : 0;

  // Verdict tier: a recipe this worker already ran cleanly skips the
  // whole pipeline — run_job is pure, so the qualified result *is* what a
  // re-run would compute (only id and timing are job-specific).
  if (cache) {
    if (std::optional<JobResult> memo = cache->reuse(spec)) {
      memo->id = spec.id;
      emit_job_telemetry(obs, *memo, job_start_us);
      return *memo;
    }
  }

  JobResult result;
  result.id = spec.id;
  result.scenario = spec.scenario;
  try {
    CASBUS_REQUIRE(spec.bus_width >= 2 && spec.bus_width <= 32,
                   "floor job bus width must be in [2, 32]");
    Rng rng(spec.seed);
    switch (spec.scenario) {
      case ScenarioKind::ScanOnly:
        run_scheduled(spec, /*with_engines=*/false, rng, cache, verify,
                      sim, obs, result);
        break;
      case ScenarioKind::BistJoin:
        run_scheduled(spec, /*with_engines=*/true, rng, cache, verify,
                      sim, obs, result);
        break;
      case ScenarioKind::Hierarchical:
        run_hierarchical(spec, rng, verify, sim, obs, result);
        break;
      case ScenarioKind::Maintenance:
        run_maintenance(spec, rng, verify, sim, obs, result);
        break;
    }
    // Clean runs qualify the recipe for verdict reuse; errors never do
    // (an error may be environmental, not a function of the spec).
    if (cache && result.error.empty()) cache->qualify(spec, result);
  } catch (const std::exception& e) {
    result.pass = false;
    result.error = e.what();
  } catch (...) {
    result.pass = false;
    result.error = "unknown error";
  }
  emit_job_telemetry(obs, result, job_start_us);
  return result;
}

JobResult run_job(const JobSpec& spec) noexcept {
  return run_job(spec, nullptr);
}

}  // namespace casbus::floor
