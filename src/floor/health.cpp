#include "floor/health.hpp"

#include <algorithm>
#include <cmath>
#include <filesystem>
#include <fstream>
#include <iomanip>
#include <sstream>

namespace casbus::floor {
namespace {

std::string num(double v) {
  if (!std::isfinite(v)) return "0";
  std::ostringstream os;
  os.precision(9);
  os << v;
  return os.str();
}

/// Messages are composed here from known-safe pieces, but escape anyway —
/// a stage or scenario name with a quote must not corrupt the report.
std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          std::ostringstream os;
          os << "\\u" << std::hex << std::setw(4) << std::setfill('0')
             << static_cast<int>(c);
          out += os.str();
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

constexpr std::size_t kMaxEvents = 256;  ///< transition-log bound

int level_rank(HealthLevel level) { return static_cast<int>(level); }

}  // namespace

const char* health_level_name(HealthLevel level) {
  switch (level) {
    case HealthLevel::kOk: return "ok";
    case HealthLevel::kWarn: return "warn";
    case HealthLevel::kCritical: return "critical";
  }
  return "ok";
}

const char* health_rule_id(HealthRule rule) {
  switch (rule) {
    case HealthRule::kQueueSaturation: return "HL001";
    case HealthRule::kBackpressure: return "HL002";
    case HealthRule::kStageLatency: return "HL003";
    case HealthRule::kErrorRate: return "HL004";
    case HealthRule::kCacheHitRate: return "HL005";
    case HealthRule::kWorkerWatchdog: return "HL006";
    case HealthRule::kTraceDrops: return "HL007";
  }
  return "HL000";
}

const char* health_rule_name(HealthRule rule) {
  switch (rule) {
    case HealthRule::kQueueSaturation: return "queue-saturation";
    case HealthRule::kBackpressure: return "backpressure";
    case HealthRule::kStageLatency: return "stage-latency";
    case HealthRule::kErrorRate: return "error-rate";
    case HealthRule::kCacheHitRate: return "cache-hit-rate";
    case HealthRule::kWorkerWatchdog: return "worker-watchdog";
    case HealthRule::kTraceDrops: return "trace-drops";
  }
  return "unknown";
}

Hysteresis::Hysteresis(HysteresisConfig config) : config_(config) {
  if (config_.trip_m == 0) config_.trip_m = 1;
  if (config_.window_n < config_.trip_m) config_.window_n = config_.trip_m;
  if (config_.clear_k == 0) config_.clear_k = 1;
}

void Hysteresis::reset() {
  recent_.clear();
  calm_ = 0;
  state_ = HealthLevel::kOk;
}

HealthLevel Hysteresis::update(HealthLevel raw) {
  recent_.push_back(raw);
  while (recent_.size() > config_.window_n) recent_.pop_front();

  // Escalate to the highest level above the current state that at least
  // trip_m of the retained raw samples reach.
  for (int lvl = level_rank(HealthLevel::kCritical);
       lvl > level_rank(state_); --lvl) {
    std::size_t at_or_above = 0;
    for (const HealthLevel r : recent_)
      if (level_rank(r) >= lvl) ++at_or_above;
    if (at_or_above >= config_.trip_m) {
      state_ = static_cast<HealthLevel>(lvl);
      calm_ = 0;
      return state_;
    }
  }

  // Step down one level after clear_k consecutive samples strictly below
  // the current state; the raw window resets so a pre-clear burst cannot
  // immediately re-trip.
  if (state_ != HealthLevel::kOk) {
    if (level_rank(raw) < level_rank(state_)) {
      ++calm_;
    } else {
      calm_ = 0;
    }
    if (calm_ >= config_.clear_k) {
      state_ = static_cast<HealthLevel>(level_rank(state_) - 1);
      calm_ = 0;
      recent_.clear();
    }
  }
  return state_;
}

HealthMonitor::HealthMonitor(HealthConfig config)
    : config_(std::move(config)) {
  for (Hysteresis& h : hysteresis_) h = Hysteresis(config_.hysteresis);
}

RuleStatus HealthMonitor::eval_rule_locked(HealthRule rule,
                                           const FloorStats& stats,
                                           const Point& oldest,
                                           const Point& newest,
                                           bool have_window) const {
  RuleStatus st;
  st.rule = rule;
  const double dt = newest.t - oldest.t;
  const bool rated = have_window && dt > 1e-9;
  std::ostringstream msg;
  msg.precision(4);

  switch (rule) {
    case HealthRule::kQueueSaturation: {
      st.enabled = stats.queue.capacity > 0;
      st.threshold = config_.queue_warn_fill;
      if (!st.enabled) break;
      st.value = static_cast<double>(stats.queue.depth) /
                 static_cast<double>(stats.queue.capacity);
      if (st.value >= config_.queue_critical_fill) {
        st.raw = HealthLevel::kCritical;
      } else if (st.value >= config_.queue_warn_fill) {
        st.raw = HealthLevel::kWarn;
      }
      if (st.raw != HealthLevel::kOk) {
        msg << "queue " << stats.queue.depth << '/' << stats.queue.capacity
            << " (" << st.value * 100.0 << "% full)";
      }
      break;
    }
    case HealthRule::kBackpressure: {
      st.threshold = config_.backpressure_warn_per_sec;
      if (!rated || st.threshold <= 0.0) break;
      st.value = static_cast<double>(newest.bp_engages - oldest.bp_engages) /
                 dt;
      if (st.value >= st.threshold) {
        st.raw = HealthLevel::kWarn;
        msg << "producers blocked " << st.value << "/s over last " << dt
            << "s";
      }
      break;
    }
    case HealthRule::kStageLatency: {
      bool any_ceiling = false;
      for (const double c : config_.stage_p99_ceiling_us)
        any_ceiling = any_ceiling || c > 0.0;
      st.enabled = any_ceiling && stats.metrics_enabled;
      if (!st.enabled) break;
      double worst_ratio = 0.0;
      std::size_t worst_stage = kStageCount;
      for (std::size_t s = 0; s < kStageCount; ++s) {
        const double ceiling = config_.stage_p99_ceiling_us[s];
        if (ceiling <= 0.0 || stats.stages[s].count == 0) continue;
        const double ratio = stats.stages[s].p99_us / ceiling;
        if (ratio > worst_ratio) {
          worst_ratio = ratio;
          worst_stage = s;
        }
      }
      if (worst_stage == kStageCount) break;
      st.value = stats.stages[worst_stage].p99_us;
      st.threshold = config_.stage_p99_ceiling_us[worst_stage];
      if (worst_ratio >= 2.0) {
        st.raw = HealthLevel::kCritical;
      } else if (worst_ratio >= 1.0) {
        st.raw = HealthLevel::kWarn;
      }
      if (st.raw != HealthLevel::kOk) {
        msg << stage_name(static_cast<Stage>(worst_stage)) << " p99 "
            << st.value << "us over ceiling " << st.threshold << "us";
      }
      break;
    }
    case HealthRule::kErrorRate: {
      st.threshold = config_.error_warn_rate;
      const std::uint64_t d_jobs = newest.completed - oldest.completed;
      if (!have_window || d_jobs < config_.error_min_jobs) break;
      st.value = static_cast<double>(newest.errored - oldest.errored) /
                 static_cast<double>(d_jobs);
      if (st.value >= config_.error_critical_rate) {
        st.raw = HealthLevel::kCritical;
      } else if (st.value >= config_.error_warn_rate) {
        st.raw = HealthLevel::kWarn;
      }
      if (st.raw != HealthLevel::kOk) {
        msg << st.value * 100.0 << "% of last " << d_jobs
            << " jobs errored";
      }
      break;
    }
    case HealthRule::kCacheHitRate: {
      st.enabled = config_.cache_hit_floor > 0.0 && stats.metrics_enabled;
      st.threshold = config_.cache_hit_floor;
      const std::uint64_t d_lookups =
          newest.cache_lookups - oldest.cache_lookups;
      if (!st.enabled || !have_window ||
          d_lookups < config_.cache_min_lookups)
        break;
      st.value = static_cast<double>(newest.cache_hits - oldest.cache_hits) /
                 static_cast<double>(d_lookups);
      if (st.value < config_.cache_hit_floor * 0.5) {
        st.raw = HealthLevel::kCritical;
      } else if (st.value < config_.cache_hit_floor) {
        st.raw = HealthLevel::kWarn;
      }
      if (st.raw != HealthLevel::kOk) {
        msg << "hit-rate " << st.value * 100.0 << "% under floor "
            << config_.cache_hit_floor * 100.0 << "% over " << d_lookups
            << " lookups";
      }
      break;
    }
    case HealthRule::kWorkerWatchdog: {
      st.enabled = config_.watchdog_ms > 0;
      const double deadline =
          static_cast<double>(config_.watchdog_ms) * 1e-3;
      st.threshold = deadline;
      if (!st.enabled) break;
      std::size_t worst_worker = 0;
      for (std::size_t w = 0;
           w < stats.worker_inflight_age_seconds.size(); ++w) {
        if (stats.worker_inflight_age_seconds[w] > st.value) {
          st.value = stats.worker_inflight_age_seconds[w];
          worst_worker = w;
        }
      }
      if (st.value > deadline) {
        st.raw = HealthLevel::kCritical;
      } else if (st.value > deadline * 0.5) {
        st.raw = HealthLevel::kWarn;
      }
      if (st.raw != HealthLevel::kOk) {
        msg << "worker " << worst_worker << " in-flight for " << st.value
            << "s (deadline " << deadline << "s)";
      }
      break;
    }
    case HealthRule::kTraceDrops: {
      st.threshold = 0.0;
      if (!have_window) break;
      st.value =
          static_cast<double>(newest.trace_dropped - oldest.trace_dropped);
      if (st.value > 0.0) {
        st.raw = HealthLevel::kWarn;
        msg << st.value << " trace spans dropped in the window";
      }
      break;
    }
  }
  st.message = msg.str();
  return st;
}

HealthReport HealthMonitor::evaluate(const FloorStats& stats,
                                     double t_seconds) {
  const std::lock_guard<std::mutex> lock(mu_);
  Point p;
  p.t = t_seconds;
  p.completed = stats.completed;
  p.errored = stats.errored;
  p.bp_engages = stats.queue.backpressure_engages;
  p.cache_lookups = stats.cache_lookups;
  p.cache_hits = stats.cache_program_hits + stats.cache_verdict_hits;
  p.trace_dropped = stats.trace_dropped;
  history_.push_back(p);
  const std::size_t keep = std::max<std::size_t>(2, config_.rate_window);
  while (history_.size() > keep) history_.pop_front();

  ++evaluations_;
  HealthReport report;
  report.t_seconds = t_seconds;
  report.samples = evaluations_;
  report.incidents_written = incidents_;
  report.events = std::move(last_.events);  // the log carries forward

  const bool have_window = history_.size() >= 2;
  for (std::size_t i = 0; i < kHealthRuleCount; ++i) {
    const auto rule = static_cast<HealthRule>(i);
    RuleStatus st = eval_rule_locked(rule, stats, history_.front(),
                                     history_.back(), have_window);
    if (!st.enabled) st.raw = HealthLevel::kOk;
    const HealthLevel prev = hysteresis_[i].state();
    st.level = hysteresis_[i].update(st.raw);
    if (st.level != prev) {
      HealthEvent ev;
      ev.sample = evaluations_;
      ev.t_seconds = t_seconds;
      ev.rule = rule;
      ev.from = prev;
      ev.to = st.level;
      ev.value = st.value;
      ev.message = st.message.empty()
                       ? std::string("level ") + health_level_name(prev) +
                             " -> " + health_level_name(st.level)
                       : st.message;
      report.events.push_back(std::move(ev));
      while (report.events.size() > kMaxEvents)
        report.events.erase(report.events.begin());
    }
    if (level_rank(st.level) > level_rank(report.overall))
      report.overall = st.level;
    report.rules[i] = std::move(st);
  }

  last_ = report;
  return report;
}

HealthReport HealthMonitor::last_report() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return last_;
}

std::uint64_t HealthMonitor::evaluations() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return evaluations_;
}

void HealthMonitor::record_incidents(std::uint64_t n) {
  const std::lock_guard<std::mutex> lock(mu_);
  incidents_ += n;
  last_.incidents_written = incidents_;
}

std::string HealthReport::to_json() const {
  std::ostringstream os;
  os << "{\"t_seconds\":" << num(t_seconds) << ",\"samples\":" << samples
     << ",\"overall\":\"" << health_level_name(overall)
     << "\",\"incidents_written\":" << incidents_written << ",\"rules\":[";
  for (std::size_t i = 0; i < kHealthRuleCount; ++i) {
    const RuleStatus& st = rules[i];
    if (i != 0) os << ',';
    os << "{\"id\":\"" << health_rule_id(st.rule) << "\",\"name\":\""
       << health_rule_name(st.rule)
       << "\",\"enabled\":" << (st.enabled ? "true" : "false")
       << ",\"raw\":\"" << health_level_name(st.raw) << "\",\"level\":\""
       << health_level_name(st.level) << "\",\"value\":" << num(st.value)
       << ",\"threshold\":" << num(st.threshold) << ",\"message\":\""
       << json_escape(st.message) << "\"}";
  }
  os << "],\"events\":[";
  for (std::size_t i = 0; i < events.size(); ++i) {
    const HealthEvent& ev = events[i];
    if (i != 0) os << ',';
    os << "{\"sample\":" << ev.sample
       << ",\"t_seconds\":" << num(ev.t_seconds) << ",\"rule\":\""
       << health_rule_id(ev.rule) << "\",\"from\":\""
       << health_level_name(ev.from) << "\",\"to\":\""
       << health_level_name(ev.to) << "\",\"value\":" << num(ev.value)
       << ",\"message\":\"" << json_escape(ev.message) << "\"}";
  }
  os << "]}";
  return os.str();
}

std::string HealthReport::to_string() const {
  std::ostringstream os;
  os << "health: " << health_level_name(overall) << " (sample " << samples
     << ", t=" << num(t_seconds) << "s, incidents " << incidents_written
     << ")";
  for (const RuleStatus& st : rules) {
    if (st.level == HealthLevel::kOk && st.raw == HealthLevel::kOk)
      continue;
    os << '\n'
       << "  " << health_rule_id(st.rule) << ' '
       << health_rule_name(st.rule) << ": " << health_level_name(st.level)
       << (st.message.empty() ? "" : " — ") << st.message;
  }
  return os.str();
}

bool write_incident_bundle(const std::string& dir, std::uint64_t seq,
                           const IncidentInputs& inputs,
                           std::string* out_path) {
  namespace fs = std::filesystem;
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) return false;

  // Stage into a hidden temp directory, then rename into place: readers
  // (CI, a human, a fleet supervisor) never see a half-written bundle.
  const fs::path tmp = fs::path(dir) / (".tmp_" + std::to_string(seq));
  fs::remove_all(tmp, ec);  // a crashed earlier attempt, if any
  ec.clear();
  fs::create_directory(tmp, ec);
  if (ec) return false;

  std::vector<std::string> files;
  const auto write_file = [&](const char* name, const std::string& body) {
    std::ofstream os(tmp / name, std::ios::binary);
    os << body << '\n';
    if (!os) return false;
    files.emplace_back(name);
    return true;
  };

  bool ok = write_file("stats.json", inputs.stats_json) &&
            write_file("health.json", inputs.health_json);
  if (ok && !inputs.timeseries_json.empty())
    ok = write_file("timeseries.json", inputs.timeseries_json);
  if (ok && inputs.trace != nullptr) {
    ok = inputs.trace->write_chrome_trace((tmp / "trace.json").string());
    if (ok) files.emplace_back("trace.json");
  }
  if (ok) {
    std::ostringstream manifest;
    manifest << "{\"seq\":" << seq << ",\"rule\":\""
             << json_escape(inputs.rule_id)
             << "\",\"t_seconds\":" << num(inputs.t_seconds)
             << ",\"files\":[";
    for (std::size_t i = 0; i < files.size(); ++i) {
      if (i != 0) manifest << ',';
      manifest << '"' << files[i] << '"';
    }
    manifest << "]}";
    ok = write_file("MANIFEST.json", manifest.str());
  }
  if (!ok) {
    fs::remove_all(tmp, ec);
    return false;
  }

  std::ostringstream name;
  name << "incident_" << std::setw(4) << std::setfill('0') << seq << '_'
       << inputs.rule_id;
  const fs::path final_path = fs::path(dir) / name.str();
  fs::remove_all(final_path, ec);  // same-seq retry replaces, atomically
  ec.clear();
  fs::rename(tmp, final_path, ec);
  if (ec) {
    fs::remove_all(tmp, ec);
    return false;
  }
  if (out_path != nullptr) *out_path = final_path.string();
  return true;
}

}  // namespace casbus::floor
