/// \file report.hpp
/// Result collection for the test floor: per-scenario and whole-floor
/// aggregates over a set of JobResults, plus throughput.
///
/// ## Determinism rule (the floor's ordering guarantee)
/// Aggregation is performed *after* all workers have finished, by folding
/// the results vector in job-slot order — never in completion order. Every
/// aggregate field is therefore a deterministic function of (floor seed,
/// job list) alone: a fixed seed yields byte-identical
/// deterministic_summary() output for 1 worker and N workers. Wall-clock
/// fields (wall_seconds, programs_per_sec, ...) are the one exception and
/// are kept out of the summary.

#pragma once

#include <array>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "floor/job.hpp"

namespace casbus::floor {

/// Commutative integer aggregates for one scenario bucket (or the total).
struct ScenarioStats {
  std::size_t jobs = 0;
  std::size_t passed = 0;
  std::size_t failed = 0;   ///< ran but some verdict failed
  std::size_t errored = 0;  ///< job threw (JobResult::error non-empty)
  std::size_t cores = 0;
  std::size_t sessions = 0;
  std::size_t patterns = 0;
  std::uint64_t predicted_cycles = 0;
  std::uint64_t measured_cycles = 0;
  std::uint64_t sim_cycles = 0;
  double worst_deviation = 0.0;  ///< max per-job |meas−pred|/pred
};

/// Outcome of one TestFloor::run() or FloorSession::drain(): per-job
/// results (in job-slot order), scenario breakdowns, totals, per-stage
/// accounting, and throughput.
struct FloorReport {
  std::vector<JobResult> results;  ///< index == position in the job list
  std::array<ScenarioStats, kScenarioCount> scenario{};
  ScenarioStats total;
  std::size_t workers = 0;     ///< effective worker-thread count
  double wall_seconds = 0.0;   ///< whole-floor wall time
  /// Summed per-stage wall time across all jobs, indexed by Stage. Like
  /// wall_seconds this is timing, NOT deterministic, and excluded from
  /// deterministic_summary().
  std::array<double, kStageCount> stage_seconds{};
  /// Jobs served from any cache tier (== program_tier_hits +
  /// verdict_tier_hits). NOT deterministic (depends on interleaving);
  /// excluded from the summary.
  std::size_t cache_hits = 0;
  /// Jobs whose Schedule+Compile stages were skipped (CacheTier::Program).
  std::size_t program_tier_hits = 0;
  /// Jobs whose whole pipeline was skipped (CacheTier::Verdict).
  std::size_t verdict_tier_hits = 0;

  [[nodiscard]] bool all_pass() const {
    return total.jobs == total.passed;
  }
  [[nodiscard]] double programs_per_sec() const {
    return wall_seconds > 0.0
               ? static_cast<double>(total.jobs) / wall_seconds
               : 0.0;
  }
  [[nodiscard]] double sim_cycles_per_sec() const {
    return wall_seconds > 0.0
               ? static_cast<double>(total.sim_cycles) / wall_seconds
               : 0.0;
  }

  /// Serializes every deterministic field (per-job lines + per-scenario
  /// aggregates + totals) into a canonical text form. Byte-identical
  /// across worker counts for a fixed seed and job list — the floor's
  /// determinism guarantee, asserted by tests/test_floor.cpp and
  /// bench_floor.
  [[nodiscard]] std::string deterministic_summary() const;

  /// Human-readable report (includes the non-deterministic throughput).
  void print(std::ostream& os) const;
};

/// Folds \p results (already in job-slot order) into a FloorReport.
[[nodiscard]] FloorReport aggregate_results(std::vector<JobResult> results,
                                            std::size_t workers,
                                            double wall_seconds);

}  // namespace casbus::floor
