/// \file job_queue.hpp
/// The test floor's work queue: a minimal multi-producer / multi-consumer
/// FIFO of JobSpecs with close semantics.
///
/// Concurrency contract: every member is safe to call from any thread.
/// pop() blocks until a job is available or the queue is closed and
/// drained, in which case it returns std::nullopt — the worker shutdown
/// signal. Each pushed job is delivered to exactly one popper.

#pragma once

#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>

#include "floor/job.hpp"
#include "util/error.hpp"

namespace casbus::floor {

/// A job paired with its arrival slot (0-based push order). The slot is
/// what lets workers deposit results in input order — the first half of
/// the floor's order-independent aggregation rule.
struct SlottedJob {
  std::size_t slot = 0;
  JobSpec spec;
};

class JobQueue {
 public:
  /// Enqueues one job, assigning it the next arrival slot. Must not be
  /// called after close().
  void push(JobSpec job) {
    {
      const std::lock_guard<std::mutex> lock(mu_);
      CASBUS_REQUIRE(!closed_, "JobQueue: push after close");
      jobs_.push_back(SlottedJob{next_slot_++, std::move(job)});
    }
    cv_.notify_one();
  }

  /// Declares the end of input: blocked and future pop() calls return
  /// std::nullopt once the remaining jobs are drained. Idempotent.
  void close() {
    {
      const std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    cv_.notify_all();
  }

  /// Takes the oldest job, blocking while the queue is open but empty.
  /// Returns std::nullopt when the queue is closed and fully drained.
  [[nodiscard]] std::optional<SlottedJob> pop() {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [this] { return closed_ || !jobs_.empty(); });
    if (jobs_.empty()) return std::nullopt;
    SlottedJob job = std::move(jobs_.front());
    jobs_.pop_front();
    return job;
  }

  /// Jobs currently waiting (snapshot — racy by nature under concurrency).
  [[nodiscard]] std::size_t size() const {
    const std::lock_guard<std::mutex> lock(mu_);
    return jobs_.size();
  }

  [[nodiscard]] bool closed() const {
    const std::lock_guard<std::mutex> lock(mu_);
    return closed_;
  }

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<SlottedJob> jobs_;
  std::size_t next_slot_ = 0;
  bool closed_ = false;
};

}  // namespace casbus::floor
