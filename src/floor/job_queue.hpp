/// \file job_queue.hpp
/// The test floor's work queue: a multi-producer / multi-consumer queue of
/// JobSpecs with close semantics, bounded-capacity backpressure, and
/// per-worker steal-ready deques.
///
/// ## Structure
/// Jobs land in one of `shards` deques, picked by the job's cache-key
/// affinity (JobSpec::cache_key() % shards). Worker w pops the front of
/// shard w first — so repeated specs keep hitting the same worker's
/// program cache — and steals from the back of the fullest other shard
/// when its own is empty, so a long-tailed mix (one shard stuck behind a
/// 10x hierarchical/maintenance job) never idles the rest of the pool.
/// Each pushed job is still delivered to exactly one popper, tagged with
/// its global arrival slot (0-based push order), which is what lets
/// workers deposit results in input order regardless of steal order.
///
/// ## Backpressure
/// A capacity bound (0 = unbounded) limits jobs *waiting* in the queue:
/// push() blocks the producer while the queue is full, try_push() returns
/// false instead. This is the streaming floor's flow control — a producer
/// submitting faster than the workers simulate is throttled at the bound
/// instead of growing the queue without limit.
///
/// ## Close semantics
/// close() declares the end of input. Blocked and future pop() calls
/// return std::nullopt once the remaining jobs are drained; blocked and
/// future push()/try_push() calls return false — a graceful rejection, not
/// a crash, because a streaming session may race producers against
/// close(). Idempotent.
///
/// Concurrency contract: every member is safe to call from any thread.

#pragma once

#include <algorithm>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>
#include <vector>

#include "floor/job.hpp"
#include "util/error.hpp"

namespace casbus::floor {

/// A job paired with its arrival slot (0-based push order). The slot is
/// what lets workers deposit results in input order — the first half of
/// the floor's order-independent aggregation rule.
struct SlottedJob {
  std::size_t slot = 0;
  JobSpec spec;
};

/// Consistent snapshot of the queue's observability counters, taken under
/// the queue mutex (JobQueue::stats()) — the race-free way to observe
/// depth the registry and FloorStats rely on. Counters are monotonic
/// except depth.
struct QueueStats {
  std::size_t depth = 0;        ///< jobs waiting right now
  std::size_t capacity = 0;     ///< configured bound (0 = unbounded)
  std::size_t high_water = 0;   ///< max depth ever reached
  std::size_t pushed = 0;       ///< jobs accepted so far
  std::size_t popped = 0;       ///< jobs handed to workers so far
  std::size_t steals = 0;       ///< pops served from a foreign shard
  /// Producers that found the queue at capacity and had to block (one
  /// count per blocking push(), however long it waited).
  std::size_t backpressure_engages = 0;
  /// Blocked producers that were subsequently released by space (not by
  /// close()); engages - releases is the number currently blocked plus
  /// those that exited via close().
  std::size_t backpressure_releases = 0;
  /// Steals charged to the shard they were stolen *from*.
  std::vector<std::size_t> steals_per_shard;
};

class JobQueue {
 public:
  /// \p shards is the number of per-worker deques (clamped >= 1; pass the
  /// worker-pool size). \p capacity bounds the jobs waiting in the queue
  /// across all shards; 0 means unbounded.
  explicit JobQueue(std::size_t shards = 1, std::size_t capacity = 0)
      : shards_(shards == 0 ? 1 : shards),
        capacity_(capacity),
        queues_(shards_),
        steals_per_shard_(shards_, 0) {}

  /// Enqueues one job, assigning it the next arrival slot; blocks while
  /// the queue is at capacity. Returns false (dropping the job) when the
  /// queue is or becomes closed — never throws, so racing producers
  /// against close() is safe.
  [[nodiscard]] bool push(JobSpec job) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      const bool blocked = !closed_ && !has_space();
      if (blocked) ++bp_engages_;
      space_cv_.wait(lock, [this] { return closed_ || has_space(); });
      if (closed_) return false;
      if (blocked) ++bp_releases_;
      enqueue(std::move(job));
    }
    jobs_cv_.notify_one();
    return true;
  }

  /// Non-blocking push: false when the queue is closed or at capacity.
  [[nodiscard]] bool try_push(JobSpec job) {
    {
      const std::lock_guard<std::mutex> lock(mu_);
      if (closed_ || !has_space()) return false;
      enqueue(std::move(job));
    }
    jobs_cv_.notify_one();
    return true;
  }

  /// Declares the end of input: blocked and future pop() calls return
  /// std::nullopt once the remaining jobs are drained, blocked and future
  /// pushes return false. Idempotent.
  void close() {
    {
      const std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    jobs_cv_.notify_all();
    space_cv_.notify_all();
  }

  /// Takes the next job for \p worker — its own shard's front, else a
  /// steal from the back of the fullest other shard — blocking while the
  /// queue is open but empty. Returns std::nullopt when the queue is
  /// closed and fully drained.
  [[nodiscard]] std::optional<SlottedJob> pop(std::size_t worker = 0) {
    SlottedJob job;
    {
      std::unique_lock<std::mutex> lock(mu_);
      jobs_cv_.wait(lock, [this] { return closed_ || size_ > 0; });
      if (size_ == 0) return std::nullopt;
      job = dequeue(worker % shards_);
    }
    space_cv_.notify_one();
    return job;
  }

  /// Jobs currently waiting (snapshot — racy by nature under concurrency).
  [[nodiscard]] std::size_t size() const {
    const std::lock_guard<std::mutex> lock(mu_);
    return size_;
  }

  /// Jobs accepted so far (== the next arrival slot).
  [[nodiscard]] std::size_t pushed() const {
    const std::lock_guard<std::mutex> lock(mu_);
    return next_slot_;
  }

  [[nodiscard]] bool closed() const {
    const std::lock_guard<std::mutex> lock(mu_);
    return closed_;
  }

  [[nodiscard]] std::size_t shards() const noexcept { return shards_; }
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

  /// Every observability counter in one mutex-consistent snapshot — depth
  /// and high-water cohere with pushed/popped, unlike separate size()
  /// calls racing each other.
  [[nodiscard]] QueueStats stats() const {
    const std::lock_guard<std::mutex> lock(mu_);
    QueueStats s;
    s.depth = size_;
    s.capacity = capacity_;
    s.high_water = high_water_;
    s.pushed = next_slot_;
    s.popped = popped_;
    s.steals = steals_;
    s.backpressure_engages = bp_engages_;
    s.backpressure_releases = bp_releases_;
    s.steals_per_shard = steals_per_shard_;
    return s;
  }

 private:
  [[nodiscard]] bool has_space() const {
    return capacity_ == 0 || size_ < capacity_;
  }

  void enqueue(JobSpec job) {  // caller holds mu_
    const std::size_t shard =
        static_cast<std::size_t>(job.cache_key() % shards_);
    queues_[shard].push_back(SlottedJob{next_slot_++, std::move(job)});
    ++size_;
    high_water_ = std::max(high_water_, size_);
  }

  SlottedJob dequeue(std::size_t home) {  // caller holds mu_; size_ > 0
    --size_;
    ++popped_;
    std::deque<SlottedJob>& own = queues_[home];
    if (!own.empty()) {
      SlottedJob job = std::move(own.front());
      own.pop_front();
      return job;
    }
    std::size_t victim = home;
    for (std::size_t s = 0; s < shards_; ++s)
      if (queues_[s].size() > queues_[victim].size()) victim = s;
    CASBUS_ASSERT(!queues_[victim].empty(),
                  "JobQueue: size_ > 0 but every shard is empty");
    ++steals_;
    ++steals_per_shard_[victim];
    SlottedJob job = std::move(queues_[victim].back());
    queues_[victim].pop_back();
    return job;
  }

  mutable std::mutex mu_;
  std::condition_variable jobs_cv_;   ///< wakes poppers
  std::condition_variable space_cv_;  ///< wakes producers at the bound
  std::size_t shards_;
  std::size_t capacity_;
  std::vector<std::deque<SlottedJob>> queues_;
  std::size_t size_ = 0;
  std::size_t next_slot_ = 0;
  bool closed_ = false;
  // Observability counters (all guarded by mu_; see stats()).
  std::size_t high_water_ = 0;
  std::size_t popped_ = 0;
  std::size_t steals_ = 0;
  std::size_t bp_engages_ = 0;
  std::size_t bp_releases_ = 0;
  std::vector<std::size_t> steals_per_shard_;
};

}  // namespace casbus::floor
