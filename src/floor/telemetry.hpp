/// \file telemetry.hpp
/// The floor's metric catalogue and its live stats surface.
///
/// This is the binding layer between the generic obs subsystem and the
/// floor: register_floor_metrics() claims every floor metric under its
/// stable name (the catalogue below — docs/OBSERVABILITY.md documents
/// each), FloorMetricIds carries the resulting handles to the instrument
/// sites, and FloorStats is the structured snapshot FloorSession hands
/// out while running (stats_snapshot()) — the thing `floor_service
/// --stats-json` serializes and `tools/floorstat.py` pretty-prints.
///
/// ## Stable metric names
/// Names are part of the observable API: dashboards and the floorstat
/// tool key on them. Never rename one — add a new name and retire the old
/// one in docs/OBSERVABILITY.md instead.

#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "floor/job.hpp"
#include "floor/job_queue.hpp"
#include "obs/metrics.hpp"

namespace casbus::floor {

/// Handles of every registered floor metric, in catalogue order. One
/// instance per FloorSession, shared read-only by its workers.
struct FloorMetricIds {
  // Job outcomes.
  obs::MetricId jobs_executed{};   ///< floor.jobs.executed
  obs::MetricId jobs_errored{};    ///< floor.jobs.errored
  // Program-cache tiers (per run_job consultation; see program_cache.hpp).
  obs::MetricId cache_lookups{};        ///< floor.cache.lookups
  obs::MetricId cache_program_hits{};   ///< floor.cache.hits.program
  obs::MetricId cache_verdict_hits{};   ///< floor.cache.hits.verdict
  obs::MetricId cache_insertions{};     ///< floor.cache.insertions
  obs::MetricId cache_evictions{};      ///< floor.cache.evictions
  // Simulation engines (SocTester memo + packed-sim work).
  obs::MetricId sim_memo_lookups{};     ///< floor.sim.memo.lookups
  obs::MetricId sim_memo_hits{};        ///< floor.sim.memo.hits
  obs::MetricId sim_precompute_us{};    ///< floor.sim.precompute.us
  obs::MetricId sim_eval_passes{};      ///< floor.sim.eval_passes
  obs::MetricId sim_cell_evals{};       ///< floor.sim.cell_evals
  obs::MetricId sim_sweep_cell_evals{}; ///< floor.sim.sweep_cell_evals
  // Branch-and-bound scheduling effort. Per-thread-sharded like every
  // registry counter: B&B worker threads aggregate into the same stable
  // names regardless of JobSimOptions::sched_threads.
  obs::MetricId sched_nodes{};          ///< floor.sched.nodes_expanded
  obs::MetricId sched_prunes{};         ///< floor.sched.prunes
  obs::MetricId sched_improvements{};   ///< floor.sched.improvements
  obs::MetricId sched_leaves{};         ///< floor.sched.leaves_priced
  // Per-stage latency histograms (µs), indexed by Stage.
  std::array<obs::MetricId, kStageCount> stage_us{};  ///< floor.stage.*.us
};

/// Registers the whole floor catalogue in \p registry (idempotent — the
/// registry deduplicates by name) and returns the handles.
[[nodiscard]] FloorMetricIds register_floor_metrics(obs::Registry& registry);

/// Latency digest of one pipeline stage, pulled from its histogram.
struct StageDigest {
  std::uint64_t count = 0;      ///< stage executions observed
  double total_seconds = 0.0;   ///< summed stage time
  double p50_us = 0.0;
  double p90_us = 0.0;
  double p99_us = 0.0;
};

/// A consistent-enough live snapshot of one FloorSession — every number a
/// fleet scheduler, an admission controller, or a human tailing
/// `--stats-json` needs. Produced by FloorSession::stats_snapshot() at
/// any point in the session's life (including after drain()).
struct FloorStats {
  double uptime_seconds = 0.0;
  std::size_t workers = 0;
  bool metrics_enabled = false;   ///< counters below are live (vs all-zero)

  // Job flow.
  std::uint64_t submitted = 0;
  std::uint64_t completed = 0;
  std::uint64_t in_flight = 0;    ///< popped but not yet deposited
  std::uint64_t errored = 0;

  // Queue (always live — tracked by the queue itself, not the registry).
  QueueStats queue;

  // Program-cache tiers, summed over every worker's private cache.
  std::uint64_t cache_lookups = 0;
  std::uint64_t cache_program_hits = 0;
  std::uint64_t cache_verdict_hits = 0;
  std::uint64_t cache_insertions = 0;
  std::uint64_t cache_evictions = 0;

  // Simulation engines.
  std::uint64_t sim_memo_lookups = 0;
  std::uint64_t sim_memo_hits = 0;
  double sim_precompute_seconds = 0.0;
  std::uint64_t sim_eval_passes = 0;
  std::uint64_t sim_cell_evals = 0;
  std::uint64_t sim_sweep_cell_evals = 0;

  // Scheduling search effort.
  std::uint64_t sched_nodes_expanded = 0;
  std::uint64_t sched_prunes = 0;
  std::uint64_t sched_improvements = 0;
  std::uint64_t sched_leaves_priced = 0;

  // Per-stage latency digests, indexed by Stage.
  std::array<StageDigest, kStageCount> stages{};

  // Worker utilization: seconds each worker spent executing jobs.
  std::vector<double> worker_busy_seconds;

  // Watchdog inputs (always live, like the queue — tracked by the session
  // itself, not the registry). Age of each worker's current in-flight job
  // in seconds, 0.0 when idle; and each worker's loop heartbeat counter
  // (one tick per job popped — stagnant + in-flight means stuck).
  std::vector<double> worker_inflight_age_seconds;
  std::vector<std::uint64_t> worker_heartbeats;

  // Tracing.
  std::uint64_t trace_recorded = 0;
  std::uint64_t trace_dropped = 0;

  /// Jobs served from any cache tier / cache lookups (0 when no lookups).
  [[nodiscard]] double cache_hit_rate() const {
    return cache_lookups == 0
               ? 0.0
               : static_cast<double>(cache_program_hits +
                                     cache_verdict_hits) /
                     static_cast<double>(cache_lookups);
  }

  /// Mean worker utilization over the session's uptime, in [0, 1].
  [[nodiscard]] double utilization() const;

  /// One-line JSON object with stable keys — the `--stats-json` /
  /// `--stats-interval-ms` wire format tools/floorstat.py consumes.
  [[nodiscard]] std::string to_json() const;
};

}  // namespace casbus::floor
