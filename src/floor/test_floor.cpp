#include "floor/test_floor.hpp"

#include <algorithm>
#include <chrono>
#include <thread>

#include "floor/job_queue.hpp"

namespace casbus::floor {
namespace {

std::size_t effective_workers(std::size_t requested) {
  if (requested != 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

}  // namespace

TestFloor::TestFloor(FloorConfig config)
    : workers_(effective_workers(config.workers)) {}

FloorReport TestFloor::run(const std::vector<JobSpec>& jobs) const {
  const auto t0 = std::chrono::steady_clock::now();
  std::vector<JobResult> results(jobs.size());
  if (!jobs.empty()) {
    JobQueue queue;
    for (const JobSpec& job : jobs) queue.push(job);
    queue.close();

    // Workers share the queue and disjoint slots of `results` — nothing
    // else. run_job is noexcept, so a worker can only exit by draining.
    const auto worker = [&queue, &results] {
      while (std::optional<SlottedJob> job = queue.pop()) {
        const auto start = std::chrono::steady_clock::now();
        JobResult result = run_job(job->spec);
        result.wall_seconds =
            std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                          start)
                .count();
        results[job->slot] = std::move(result);
      }
    };

    const std::size_t pool_size = std::min(workers_, jobs.size());
    std::vector<std::thread> pool;
    pool.reserve(pool_size);
    for (std::size_t w = 0; w < pool_size; ++w) pool.emplace_back(worker);
    for (std::thread& t : pool) t.join();
  }

  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return aggregate_results(std::move(results), workers_, wall);
}

}  // namespace casbus::floor
