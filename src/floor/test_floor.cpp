#include "floor/test_floor.hpp"

#include <algorithm>

namespace casbus::floor {

TestFloor::TestFloor(FloorConfig config)
    : config_(config), workers_(effective_workers(config.workers)) {}

FloorReport TestFloor::run(const std::vector<JobSpec>& jobs) const {
  if (jobs.empty()) return aggregate_results({}, workers_, 0.0);

  FloorConfig session_config = config_;
  session_config.workers = std::min(workers_, jobs.size());
  FloorSession session(session_config);
  session.submit_batch(jobs);
  FloorReport report = session.drain();
  // The report advertises the configured pool size, not the job-count cap
  // (matching the historical batch behavior).
  report.workers = workers_;
  return report;
}

}  // namespace casbus::floor
