/// \file program_cache.hpp
/// Per-worker LRU cache over the expensive, *pure* parts of run_job.
///
/// A test floor re-running a spec it has already run is doing work whose
/// outcome it provably knows: run_job is a pure function of the JobSpec
/// (see job.hpp), so everything downstream of the spec can be memoized.
/// The cache exploits that at two tiers, both keyed by the canonical
/// recipe (JobSpec::cache_key(), verified field-by-field so a hash
/// collision degrades to a miss, never to a wrong answer):
///
/// 1. **Program tier** — the Schedule+Compile stages of scheduled
///    scenarios: the immutable soc::CompiledProgram is kept and re-run
///    against the job's freshly built SoC, skipping straight to
///    simulation. Sound because compilation is pure (sched::schedule_with
///    over specs_of) and a const CompiledProgram shares no mutable state
///    with any Soc or tester. For paper-sized SoCs scheduling is cheap, so
///    this tier is about architecture (and about strategies whose search
///    cost grows with core count), not the headline throughput.
///
/// 2. **Verdict tier** (optional, on by default) — the whole pipeline: a
///    recipe that has already executed cleanly is served its qualified
///    JobResult, re-stamped with the new job id, skipping Build and
///    Simulate too. This is the production-floor "program qualification"
///    pattern: the first run of a program is validated cycle-accurately,
///    repeats reuse the qualification record. It is what makes a
///    repeated-spec mix measurably faster, since simulation dominates job
///    cost. Results that errored are never qualified (an error may be
///    environmental, e.g. bad_alloc, and so is not provably pure).
///
/// Neither tier can change a deterministic result field — cache-on and
/// cache-off floors produce byte-identical deterministic_summary() text,
/// which tests/test_floor_session.cpp enforces.
///
/// ## Thread-safety
/// None, by design. Each floor worker owns one ProgramCache; entries never
/// cross threads (the shared_ptr is only for cheap handout within the
/// owning worker's job loop). The JobQueue's affinity sharding routes
/// equal-keyed jobs to the same worker precisely so these private caches
/// stay hot without any synchronization.

#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <optional>
#include <unordered_map>
#include <utility>

#include "obs/metrics.hpp"
#include "soc/schedule_runner.hpp"

namespace casbus::floor {

/// Registry binding for one worker's cache: when `registry` is non-null,
/// every tier event is mirrored into these counters (the add() lands on
/// the owning worker's shard, so the hot path stays contention-free).
/// The plain accessors below (lookups()/hits()/...) work either way.
struct CacheTelemetry {
  obs::Registry* registry = nullptr;
  obs::MetricId lookups{};
  obs::MetricId program_hits{};
  obs::MetricId verdict_hits{};
  obs::MetricId insertions{};
  obs::MetricId evictions{};
};

class ProgramCache {
 public:
  /// \p capacity is the recipe-entry bound; 0 disables the cache entirely
  /// (every lookup misses, every store is a no-op). \p reuse_verdicts
  /// gates the verdict tier; the program tier is always on when the cache
  /// is.
  explicit ProgramCache(std::size_t capacity, bool reuse_verdicts = true)
      : capacity_(capacity), reuse_verdicts_(reuse_verdicts) {}

  /// Binds the worker's metric registry (see CacheTelemetry). Call before
  /// the first lookup; events before binding only reach the plain
  /// counters.
  void set_telemetry(const CacheTelemetry& telemetry) {
    telemetry_ = telemetry;
  }

  /// Verdict tier: the qualified result of a recipe that already ran
  /// cleanly, re-stamped as a CacheTier::Verdict serve with this
  /// execution's timing and engine counters zeroed (nothing ran — the
  /// zeros are the explicit record of that, paired with the tier tag) —
  /// or nullopt. Counts one lookup (and, when served, one verdict hit).
  [[nodiscard]] std::optional<JobResult> reuse(const JobSpec& spec) {
    ++lookups_;
    count(telemetry_.lookups);
    if (!reuse_verdicts_) return std::nullopt;
    Entry* entry = touch(spec);
    if (entry == nullptr || !entry->verdict.has_value()) return std::nullopt;
    ++hits_;
    ++verdict_hits_;
    count(telemetry_.verdict_hits);
    JobResult result = *entry->verdict;
    result.cache_tier = CacheTier::Verdict;
    result.stage_seconds.fill(0.0);
    result.wall_seconds = 0.0;
    result.engine = JobEngineCounters{};
    return result;
  }

  /// Qualifies \p result as the recipe's known outcome. Callers must only
  /// pass clean (error-free) results.
  void qualify(const JobSpec& spec, const JobResult& result) {
    if (capacity_ == 0 || !reuse_verdicts_) return;
    obtain(spec).verdict = result;
  }

  /// Program tier: the compiled program of this recipe, or null. Counts a
  /// hit when served (the miss was already counted by the reuse() lookup
  /// preceding it in the pipeline).
  [[nodiscard]] std::shared_ptr<const soc::CompiledProgram> find_program(
      const JobSpec& spec) {
    Entry* entry = touch(spec);
    if (entry == nullptr || entry->program == nullptr) return nullptr;
    ++hits_;
    ++program_hits_;
    count(telemetry_.program_hits);
    return entry->program;
  }

  void put_program(const JobSpec& spec,
                   std::shared_ptr<const soc::CompiledProgram> program) {
    if (capacity_ == 0) return;
    obtain(spec).program = std::move(program);
  }

  [[nodiscard]] std::size_t size() const noexcept { return lru_.size(); }
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] bool reuse_verdicts() const noexcept {
    return reuse_verdicts_;
  }
  /// run_job consultations / consultations served (at either tier).
  [[nodiscard]] std::size_t lookups() const noexcept { return lookups_; }
  [[nodiscard]] std::size_t hits() const noexcept { return hits_; }
  /// Per-tier serve counts (hits() == program_hits() + verdict_hits()).
  [[nodiscard]] std::size_t program_hits() const noexcept {
    return program_hits_;
  }
  [[nodiscard]] std::size_t verdict_hits() const noexcept {
    return verdict_hits_;
  }
  /// Recipe entries created / entries displaced (LRU or key collision).
  [[nodiscard]] std::size_t insertions() const noexcept {
    return insertions_;
  }
  [[nodiscard]] std::size_t evictions() const noexcept { return evictions_; }

 private:
  struct Entry {
    JobSpec recipe;  ///< canonical fields; id is meaningless here
    std::shared_ptr<const soc::CompiledProgram> program;
    std::optional<JobResult> verdict;
  };

  /// Finds the recipe's entry (collision-checked) and refreshes its
  /// recency; null on miss.
  [[nodiscard]] Entry* touch(const JobSpec& spec) {
    if (capacity_ == 0) return nullptr;
    const auto it = index_.find(spec.cache_key());
    if (it == index_.end() || !it->second->recipe.same_recipe(spec))
      return nullptr;
    lru_.splice(lru_.begin(), lru_, it->second);  // most recent to front
    return &*it->second;
  }

  /// Finds or inserts the recipe's entry, evicting the least recently
  /// used one when over capacity. Caller fills in program/verdict.
  [[nodiscard]] Entry& obtain(const JobSpec& spec) {
    const std::uint64_t key = spec.cache_key();
    const auto it = index_.find(key);
    if (it != index_.end()) {
      // A colliding different recipe is evicted rather than shared.
      if (!it->second->recipe.same_recipe(spec)) {
        it->second->recipe = spec;
        it->second->program = nullptr;
        it->second->verdict.reset();
        ++evictions_;
        count(telemetry_.evictions);
        ++insertions_;
        count(telemetry_.insertions);
      }
      lru_.splice(lru_.begin(), lru_, it->second);
      return *it->second;
    }
    lru_.push_front(Entry{spec, nullptr, std::nullopt});
    index_[key] = lru_.begin();
    ++insertions_;
    count(telemetry_.insertions);
    if (lru_.size() > capacity_) {
      index_.erase(lru_.back().recipe.cache_key());
      lru_.pop_back();
      ++evictions_;
      count(telemetry_.evictions);
    }
    return lru_.front();
  }

  /// Mirrors one event into the bound registry, if any.
  void count(obs::MetricId id) {
    if (telemetry_.registry != nullptr) telemetry_.registry->add(id);
  }

  std::size_t capacity_;
  bool reuse_verdicts_;
  CacheTelemetry telemetry_;
  std::list<Entry> lru_;  ///< front = most recently used
  std::unordered_map<std::uint64_t, std::list<Entry>::iterator> index_;
  std::size_t lookups_ = 0;
  std::size_t hits_ = 0;
  std::size_t program_hits_ = 0;
  std::size_t verdict_hits_ = 0;
  std::size_t insertions_ = 0;
  std::size_t evictions_ = 0;
};

}  // namespace casbus::floor
