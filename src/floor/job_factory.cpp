#include "floor/job_factory.hpp"

#include <iterator>

#include "util/rng.hpp"
#include "util/strings.hpp"

namespace casbus::floor {

ScenarioMix parse_scenario_mix(std::string_view text) {
  ScenarioMix mix;
  mix.weight.fill(0);
  for (const std::string& entry : split(text, ',')) {
    const auto colon = entry.find(':');
    CASBUS_REQUIRE(colon != std::string::npos,
                   "scenario mix entry needs name:weight, got: " + entry);
    const ScenarioKind kind = scenario_from_name(entry.substr(0, colon));
    const std::string value = entry.substr(colon + 1);
    CASBUS_REQUIRE(!value.empty() &&
                       value.find_first_not_of("0123456789") ==
                           std::string::npos,
                   "scenario mix weight must be a non-negative integer: " +
                       entry);
    // Length cap keeps the stoul below both unsigned range (no silent
    // truncation) and std::out_of_range (contract says PreconditionError).
    CASBUS_REQUIRE(value.size() <= 6,
                   "scenario mix weight must be <= 999999: " + entry);
    mix.weight[static_cast<std::size_t>(kind)] =
        static_cast<unsigned>(std::stoul(value));
  }
  CASBUS_REQUIRE(mix.total() > 0,
                 "scenario mix needs at least one positive weight");
  return mix;
}

JobFactory::JobFactory(std::uint64_t floor_seed, ScenarioMix mix)
    : seed_(floor_seed), mix_(mix) {
  CASBUS_REQUIRE(mix_.total() > 0,
                 "JobFactory: scenario mix needs a positive weight");
}

JobSpec JobFactory::make_job(std::size_t id) const {
  Rng rng(Rng::derive_stream(seed_, id));

  JobSpec spec;
  spec.id = id;
  spec.seed = rng.next();

  // Weighted scenario pick.
  std::uint64_t ticket = rng.below(mix_.total());
  for (std::size_t k = 0; k < kScenarioCount; ++k) {
    if (ticket < mix_.weight[k]) {
      spec.scenario = static_cast<ScenarioKind>(k);
      break;
    }
    ticket -= mix_.weight[k];
  }

  // Executable strategies only (Best may pick rail emulation, which the
  // broadcast-WSC tester rejects) — greedy-heavy like a real test program.
  constexpr sched::Strategy kStrategies[] = {
      sched::Strategy::Greedy, sched::Strategy::Greedy,
      sched::Strategy::Greedy, sched::Strategy::Greedy,
      sched::Strategy::Phased, sched::Strategy::Phased,
      sched::Strategy::PerCore, sched::Strategy::Single,
  };
  spec.strategy = kStrategies[rng.below(std::size(kStrategies))];

  spec.cores = 2 + rng.below(3);                              // 2..4
  spec.bus_width = 4 + static_cast<unsigned>(rng.below(3));   // 4..6
  spec.patterns_per_ff = 1;
  return spec;
}

std::vector<JobSpec> JobFactory::make_jobs(std::size_t count) const {
  std::vector<JobSpec> jobs;
  jobs.reserve(count);
  for (std::size_t i = 0; i < count; ++i) jobs.push_back(make_job(i));
  return jobs;
}

}  // namespace casbus::floor
