#include "floor/report.hpp"

#include <algorithm>
#include <ostream>
#include <sstream>

#include "util/strings.hpp"

namespace casbus::floor {
namespace {

void fold(ScenarioStats& stats, const JobResult& r) {
  ++stats.jobs;
  if (!r.error.empty()) ++stats.errored;
  else if (r.pass) ++stats.passed;
  else ++stats.failed;
  stats.cores += r.cores;
  stats.sessions += r.sessions;
  stats.patterns += r.patterns;
  stats.predicted_cycles += r.predicted_cycles;
  stats.measured_cycles += r.measured_cycles;
  stats.sim_cycles += r.sim_cycles;
  stats.worst_deviation = std::max(stats.worst_deviation, r.deviation());
}

/// Fixed-precision decimal so the summary is byte-stable across platforms
/// (deviations are small exact-integer ratios; 6 digits is plenty).
std::string fixed6(double v) { return format_double(v, 6); }

void print_stats_line(std::ostream& os, const std::string& label,
                      const ScenarioStats& s) {
  os << label << ": jobs=" << s.jobs << " pass=" << s.passed
     << " fail=" << s.failed << " error=" << s.errored
     << " cores=" << s.cores << " sessions=" << s.sessions
     << " patterns=" << s.patterns
     << " predicted=" << s.predicted_cycles
     << " measured=" << s.measured_cycles
     << " sim_cycles=" << s.sim_cycles
     << " worst_dev=" << fixed6(s.worst_deviation) << "\n";
}

}  // namespace

FloorReport aggregate_results(std::vector<JobResult> results,
                              std::size_t workers, double wall_seconds) {
  FloorReport report;
  report.results = std::move(results);
  report.workers = workers;
  report.wall_seconds = wall_seconds;
  for (const JobResult& r : report.results) {
    fold(report.scenario[static_cast<std::size_t>(r.scenario)], r);
    fold(report.total, r);
    for (std::size_t s = 0; s < kStageCount; ++s)
      report.stage_seconds[s] += r.stage_seconds[s];
    switch (r.cache_tier) {
      case CacheTier::None:
        break;
      case CacheTier::Program:
        ++report.cache_hits;
        ++report.program_tier_hits;
        break;
      case CacheTier::Verdict:
        ++report.cache_hits;
        ++report.verdict_tier_hits;
        break;
    }
  }
  return report;
}

std::string FloorReport::deterministic_summary() const {
  std::ostringstream os;
  os << "floor-summary v1\n";
  for (const JobResult& r : results) {
    os << "job " << r.id << " " << scenario_name(r.scenario) << " "
       << (!r.error.empty() ? "ERROR" : (r.pass ? "PASS" : "FAIL"))
       << " cores=" << r.cores << " sessions=" << r.sessions
       << " patterns=" << r.patterns << " predicted=" << r.predicted_cycles
       << " measured=" << r.measured_cycles << " sim=" << r.sim_cycles
       << " dev=" << fixed6(r.deviation());
    if (!r.error.empty()) os << " error=" << r.error;
    os << "\n";
  }
  for (std::size_t k = 0; k < kScenarioCount; ++k) {
    if (scenario[k].jobs == 0) continue;
    print_stats_line(os, std::string("scenario ") +
                             scenario_name(static_cast<ScenarioKind>(k)),
                     scenario[k]);
  }
  print_stats_line(os, "total", total);
  return os.str();
}

void FloorReport::print(std::ostream& os) const {
  os << "test floor: " << total.jobs << " jobs over " << workers
     << " worker(s) in " << fixed6(wall_seconds) << " s\n"
     << "  throughput: " << fixed6(programs_per_sec())
     << " programs/sec, " << fixed6(sim_cycles_per_sec())
     << " sim-cycles/sec\n";
  os << "  stages:";
  for (std::size_t s = 0; s < kStageCount; ++s)
    os << ' ' << stage_name(static_cast<Stage>(s)) << '='
       << fixed6(stage_seconds[s]) << "s";
  os << "\n  program cache: " << cache_hits << "/" << total.jobs
     << " jobs served from cache (program tier " << program_tier_hits
     << ", verdict tier " << verdict_tier_hits << ")\n";
  for (std::size_t k = 0; k < kScenarioCount; ++k) {
    if (scenario[k].jobs == 0) continue;
    os << "  ";
    print_stats_line(os, std::string("scenario ") +
                             scenario_name(static_cast<ScenarioKind>(k)),
                     scenario[k]);
  }
  os << "  ";
  print_stats_line(os, "total", total);
  for (const JobResult& r : results)
    if (!r.error.empty())
      os << "  job " << r.id << " ERROR: " << r.error << "\n";
}

}  // namespace casbus::floor
