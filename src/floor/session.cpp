#include "floor/session.hpp"

#include <chrono>

#include "floor/program_cache.hpp"

namespace casbus::floor {

FloorSession::FloorSession(FloorConfig config)
    : config_(config),
      workers_(effective_workers(config.workers)),
      queue_(workers_, config.queue_capacity),
      start_(std::chrono::steady_clock::now()) {
  pool_.reserve(workers_);
  for (std::size_t w = 0; w < workers_; ++w)
    pool_.emplace_back([this, w] { worker_main(w); });
}

FloorSession::~FloorSession() {
  queue_.close();
  for (std::thread& t : pool_)
    if (t.joinable()) t.join();
}

std::size_t FloorSession::submit_batch(const std::vector<JobSpec>& specs) {
  std::size_t accepted = 0;
  for (const JobSpec& spec : specs) {
    if (!submit(spec)) break;
    ++accepted;
  }
  return accepted;
}

std::size_t FloorSession::completed() const {
  const std::lock_guard<std::mutex> lock(results_mu_);
  return completed_;
}

std::vector<JobResult> FloorSession::poll_results() {
  const std::lock_guard<std::mutex> lock(results_mu_);
  std::vector<JobResult> out;
  if (harvested_) return out;  // drain() owns the results now
  while (next_poll_ < done_.size() && done_[next_poll_])
    out.push_back(results_[next_poll_++]);
  return out;
}

FloorReport FloorSession::drain() {
  CASBUS_REQUIRE(!drained_, "FloorSession: drain() may be called once");
  drained_ = true;
  queue_.close();
  for (std::thread& t : pool_)
    if (t.joinable()) t.join();

  const double wall = std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - start_)
                          .count();
  const std::lock_guard<std::mutex> lock(results_mu_);
  // Every accepted slot has been executed (the queue delivers all jobs
  // before signalling shutdown), so the results vector is dense.
  CASBUS_ASSERT(completed_ == queue_.pushed(),
                "FloorSession: joined with unexecuted jobs");
  harvested_ = true;
  return aggregate_results(std::move(results_), workers_, wall);
}

void FloorSession::worker_main(std::size_t worker) {
  // The worker's private program cache: equal-keyed jobs are routed here
  // by the queue's affinity sharding, so repeated specs skip the
  // Schedule+Compile stages without any cross-thread sharing.
  ProgramCache cache(config_.cache_capacity, config_.reuse_verdicts);
  ProgramCache* cache_ptr = config_.cache_capacity ? &cache : nullptr;

  while (std::optional<SlottedJob> job = queue_.pop(worker)) {
    const auto start = std::chrono::steady_clock::now();
    JobResult result =
        run_job(job->spec, cache_ptr, config_.verify,
                JobSimOptions{config_.event_sim, config_.sim_threads});
    result.wall_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();

    const std::lock_guard<std::mutex> lock(results_mu_);
    if (job->slot >= results_.size()) {
      results_.resize(job->slot + 1);
      done_.resize(job->slot + 1, 0);
    }
    results_[job->slot] = std::move(result);
    done_[job->slot] = 1;
    ++completed_;
  }
}

}  // namespace casbus::floor
