#include "floor/session.hpp"

#include <chrono>
#include <utility>

#include "floor/program_cache.hpp"

namespace casbus::floor {

namespace {

/// Sentinel in job_start_us_: this worker has no job in flight.
constexpr std::uint64_t kWorkerIdle = ~std::uint64_t{0};

}  // namespace

FloorSession::FloorSession(FloorConfig config)
    : config_(std::move(config)),
      workers_(effective_workers(config_.workers)),
      queue_(workers_, config_.queue_capacity),
      start_(std::chrono::steady_clock::now()) {
  // Health implies metrics: the rule catalogue reads registry-backed
  // counters (cache tiers, stage p99s), so enabling the monitor without
  // the registry would judge zeros.
  if (config_.metrics || config_.health.enabled) {
    registry_ = std::make_unique<obs::Registry>();
    ids_ = register_floor_metrics(*registry_);
    // Pull-based gauges: sampled only at snapshot() time, so the hot
    // path pays nothing for them. Samplers read this session's own
    // thread-safe counters and are torn down with the registry, which
    // this session outlives.
    registry_->gauge("floor.queue.depth", [this] {
      return static_cast<double>(queue_.size());
    });
    registry_->gauge("floor.jobs.in_flight", [this] {
      return static_cast<double>(
          in_flight_.load(std::memory_order_relaxed));
    });
  }
  if (config_.trace_capacity > 0)
    trace_ = std::make_unique<obs::TraceRecorder>(config_.trace_capacity);
  busy_us_ = std::make_unique<std::atomic<std::uint64_t>[]>(workers_);
  job_start_us_ = std::make_unique<std::atomic<std::uint64_t>[]>(workers_);
  heartbeats_ = std::make_unique<std::atomic<std::uint64_t>[]>(workers_);
  for (std::size_t w = 0; w < workers_; ++w) {
    busy_us_[w].store(0);
    job_start_us_[w].store(kWorkerIdle);
    heartbeats_[w].store(0);
  }
  pool_.reserve(workers_);
  for (std::size_t w = 0; w < workers_; ++w)
    pool_.emplace_back([this, w] { worker_main(w); });
  if (config_.health.enabled) {
    health_ = std::make_unique<HealthMonitor>(config_.health);
    sampler_ = std::make_unique<obs::TimeSeriesSampler>(
        *registry_, obs::SamplerConfig{config_.health.interval_ms,
                                       config_.health.window});
    // One thread drives the whole sample -> evaluate -> alarm loop.
    sampler_->start([this] { health_tick(); });
  }
}

FloorSession::~FloorSession() {
  // Stop the health loop before tearing the floor down: a tick mid-join
  // is safe (stats_snapshot() is), but pointless.
  if (sampler_ != nullptr) sampler_->stop();
  queue_.close();
  for (std::thread& t : pool_)
    if (t.joinable()) t.join();
}

std::size_t FloorSession::submit_batch(const std::vector<JobSpec>& specs) {
  std::size_t accepted = 0;
  for (const JobSpec& spec : specs) {
    if (!submit(spec)) break;
    ++accepted;
  }
  return accepted;
}

std::size_t FloorSession::completed() const {
  const std::lock_guard<std::mutex> lock(results_mu_);
  return completed_;
}

std::vector<JobResult> FloorSession::poll_results() {
  const std::lock_guard<std::mutex> lock(results_mu_);
  std::vector<JobResult> out;
  if (harvested_) return out;  // drain() owns the results now
  while (next_poll_ < done_.size() && done_[next_poll_])
    out.push_back(results_[next_poll_++]);
  return out;
}

FloorReport FloorSession::drain() {
  CASBUS_REQUIRE(!drained_, "FloorSession: drain() may be called once");
  drained_ = true;
  queue_.close();
  for (std::thread& t : pool_)
    if (t.joinable()) t.join();

  const double wall = std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - start_)
                          .count();
  const std::lock_guard<std::mutex> lock(results_mu_);
  // Every accepted slot has been executed (the queue delivers all jobs
  // before signalling shutdown), so the results vector is dense.
  CASBUS_ASSERT(completed_ == queue_.pushed(),
                "FloorSession: joined with unexecuted jobs");
  harvested_ = true;
  return aggregate_results(std::move(results_), workers_, wall);
}

FloorStats FloorSession::stats_snapshot() const {
  FloorStats stats;
  stats.uptime_seconds = std::chrono::duration<double>(
                             std::chrono::steady_clock::now() - start_)
                             .count();
  stats.workers = workers_;
  stats.metrics_enabled = registry_ != nullptr;
  stats.queue = queue_.stats();
  stats.submitted = stats.queue.pushed;
  stats.in_flight = in_flight_.load(std::memory_order_relaxed);
  {
    const std::lock_guard<std::mutex> lock(results_mu_);
    stats.completed = completed_;
    stats.errored = errored_;
  }
  stats.worker_busy_seconds.resize(workers_, 0.0);
  stats.worker_inflight_age_seconds.resize(workers_, 0.0);
  stats.worker_heartbeats.resize(workers_, 0);
  const std::uint64_t now_us = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - start_)
          .count());
  for (std::size_t w = 0; w < workers_; ++w) {
    stats.worker_busy_seconds[w] =
        static_cast<double>(busy_us_[w].load(std::memory_order_relaxed)) *
        1e-6;
    stats.worker_heartbeats[w] =
        heartbeats_[w].load(std::memory_order_relaxed);
    const std::uint64_t started =
        job_start_us_[w].load(std::memory_order_relaxed);
    if (started != kWorkerIdle && now_us > started)
      stats.worker_inflight_age_seconds[w] =
          static_cast<double>(now_us - started) * 1e-6;
  }
  if (trace_ != nullptr) {
    stats.trace_recorded = trace_->recorded();
    stats.trace_dropped = trace_->dropped();
  }
  if (registry_ == nullptr) return stats;

  const obs::Snapshot snap = registry_->snapshot();
  stats.cache_lookups = snap.counter("floor.cache.lookups");
  stats.cache_program_hits = snap.counter("floor.cache.hits.program");
  stats.cache_verdict_hits = snap.counter("floor.cache.hits.verdict");
  stats.cache_insertions = snap.counter("floor.cache.insertions");
  stats.cache_evictions = snap.counter("floor.cache.evictions");
  stats.sim_memo_lookups = snap.counter("floor.sim.memo.lookups");
  stats.sim_memo_hits = snap.counter("floor.sim.memo.hits");
  stats.sim_precompute_seconds =
      static_cast<double>(snap.counter("floor.sim.precompute.us")) * 1e-6;
  stats.sim_eval_passes = snap.counter("floor.sim.eval_passes");
  stats.sim_cell_evals = snap.counter("floor.sim.cell_evals");
  stats.sim_sweep_cell_evals = snap.counter("floor.sim.sweep_cell_evals");
  stats.sched_nodes_expanded = snap.counter("floor.sched.nodes_expanded");
  stats.sched_prunes = snap.counter("floor.sched.prunes");
  stats.sched_improvements = snap.counter("floor.sched.improvements");
  stats.sched_leaves_priced = snap.counter("floor.sched.leaves_priced");
  for (std::size_t s = 0; s < kStageCount; ++s) {
    const obs::HistogramSnapshot* h = snap.histogram(
        std::string("floor.stage.") + stage_name(static_cast<Stage>(s)) +
        ".us");
    if (h == nullptr) continue;
    StageDigest& d = stats.stages[s];
    d.count = h->count;
    d.total_seconds = h->sum * 1e-6;  // histogram records µs
    d.p50_us = h->p50();
    d.p90_us = h->p90();
    d.p99_us = h->p99();
  }
  return stats;
}

void FloorSession::worker_main(std::size_t worker) {
  // The worker's private program cache: equal-keyed jobs are routed here
  // by the queue's affinity sharding, so repeated specs skip the
  // Schedule+Compile stages without any cross-thread sharing.
  ProgramCache cache(config_.cache_capacity, config_.reuse_verdicts);
  ProgramCache* cache_ptr = config_.cache_capacity ? &cache : nullptr;
  if (registry_ != nullptr) {
    cache.set_telemetry(CacheTelemetry{
        registry_.get(), ids_.cache_lookups, ids_.cache_program_hits,
        ids_.cache_verdict_hits, ids_.cache_insertions,
        ids_.cache_evictions});
  }

  JobTelemetry obs;
  obs.registry = registry_.get();
  obs.ids = registry_ != nullptr ? &ids_ : nullptr;
  obs.trace = trace_.get();
  obs.worker = static_cast<std::uint32_t>(worker);

  while (std::optional<SlottedJob> job = queue_.pop(worker)) {
    in_flight_.fetch_add(1, std::memory_order_relaxed);
    heartbeats_[worker].fetch_add(1, std::memory_order_relaxed);
    obs.slot = job->slot;
    const auto start = std::chrono::steady_clock::now();
    job_start_us_[worker].store(
        static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::microseconds>(start -
                                                                  start_)
                .count()),
        std::memory_order_relaxed);
    JobResult result =
        run_job(job->spec, cache_ptr, config_.verify,
                JobSimOptions{config_.event_sim, config_.sim_threads,
                              config_.sched_threads},
                obs);
    const auto end = std::chrono::steady_clock::now();
    job_start_us_[worker].store(kWorkerIdle, std::memory_order_relaxed);
    result.wall_seconds =
        std::chrono::duration<double>(end - start).count();
    busy_us_[worker].fetch_add(
        static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::microseconds>(end -
                                                                  start)
                .count()),
        std::memory_order_relaxed);

    const bool errored = !result.error.empty();
    const std::lock_guard<std::mutex> lock(results_mu_);
    if (job->slot >= results_.size()) {
      results_.resize(job->slot + 1);
      done_.resize(job->slot + 1, 0);
    }
    results_[job->slot] = std::move(result);
    done_[job->slot] = 1;
    ++completed_;
    if (errored) ++errored_;
    in_flight_.fetch_sub(1, std::memory_order_relaxed);
  }
}

void FloorSession::health_tick() {
  const std::lock_guard<std::mutex> lock(health_tick_mu_);
  if (health_ == nullptr) return;
  const FloorStats stats = stats_snapshot();
  const HealthReport report = health_->evaluate(stats, stats.uptime_seconds);

  // Flight recorder: one bundle per new critical transition, capped at
  // max_incidents (evidence, not a log stream).
  std::uint64_t written = 0;
  if (!config_.health.incident_dir.empty()) {
    for (const HealthEvent& ev : report.events) {
      if (ev.sample <= handled_sample_) continue;
      if (ev.to != HealthLevel::kCritical) continue;
      if (incidents_written_ >= config_.health.max_incidents) break;
      IncidentInputs inputs;
      inputs.rule_id = health_rule_id(ev.rule);
      inputs.t_seconds = ev.t_seconds;
      inputs.stats_json = stats.to_json();
      inputs.health_json = report.to_json();
      inputs.timeseries_json = sampler_->window_json();
      inputs.trace = trace_.get();
      if (write_incident_bundle(config_.health.incident_dir,
                                incidents_written_, inputs)) {
        ++incidents_written_;
        ++written;
      }
    }
  }
  handled_sample_ = report.samples;
  if (written > 0) health_->record_incidents(written);
}

HealthReport FloorSession::health_report() {
  if (health_ == nullptr) return HealthReport{};
  sampler_->sample_now();
  health_tick();
  return health_->last_report();
}

}  // namespace casbus::floor
