#include "floor/session.hpp"

#include <chrono>
#include <utility>

#include "floor/program_cache.hpp"

namespace casbus::floor {

FloorSession::FloorSession(FloorConfig config)
    : config_(config),
      workers_(effective_workers(config.workers)),
      queue_(workers_, config.queue_capacity),
      start_(std::chrono::steady_clock::now()) {
  if (config_.metrics) {
    registry_ = std::make_unique<obs::Registry>();
    ids_ = register_floor_metrics(*registry_);
    // Pull-based gauges: sampled only at snapshot() time, so the hot
    // path pays nothing for them. Samplers read this session's own
    // thread-safe counters and are torn down with the registry, which
    // this session outlives.
    registry_->gauge("floor.queue.depth", [this] {
      return static_cast<double>(queue_.size());
    });
    registry_->gauge("floor.jobs.in_flight", [this] {
      return static_cast<double>(
          in_flight_.load(std::memory_order_relaxed));
    });
  }
  if (config_.trace_capacity > 0)
    trace_ = std::make_unique<obs::TraceRecorder>(config_.trace_capacity);
  busy_us_ = std::make_unique<std::atomic<std::uint64_t>[]>(workers_);
  for (std::size_t w = 0; w < workers_; ++w) busy_us_[w].store(0);
  pool_.reserve(workers_);
  for (std::size_t w = 0; w < workers_; ++w)
    pool_.emplace_back([this, w] { worker_main(w); });
}

FloorSession::~FloorSession() {
  queue_.close();
  for (std::thread& t : pool_)
    if (t.joinable()) t.join();
}

std::size_t FloorSession::submit_batch(const std::vector<JobSpec>& specs) {
  std::size_t accepted = 0;
  for (const JobSpec& spec : specs) {
    if (!submit(spec)) break;
    ++accepted;
  }
  return accepted;
}

std::size_t FloorSession::completed() const {
  const std::lock_guard<std::mutex> lock(results_mu_);
  return completed_;
}

std::vector<JobResult> FloorSession::poll_results() {
  const std::lock_guard<std::mutex> lock(results_mu_);
  std::vector<JobResult> out;
  if (harvested_) return out;  // drain() owns the results now
  while (next_poll_ < done_.size() && done_[next_poll_])
    out.push_back(results_[next_poll_++]);
  return out;
}

FloorReport FloorSession::drain() {
  CASBUS_REQUIRE(!drained_, "FloorSession: drain() may be called once");
  drained_ = true;
  queue_.close();
  for (std::thread& t : pool_)
    if (t.joinable()) t.join();

  const double wall = std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - start_)
                          .count();
  const std::lock_guard<std::mutex> lock(results_mu_);
  // Every accepted slot has been executed (the queue delivers all jobs
  // before signalling shutdown), so the results vector is dense.
  CASBUS_ASSERT(completed_ == queue_.pushed(),
                "FloorSession: joined with unexecuted jobs");
  harvested_ = true;
  return aggregate_results(std::move(results_), workers_, wall);
}

FloorStats FloorSession::stats_snapshot() const {
  FloorStats stats;
  stats.uptime_seconds = std::chrono::duration<double>(
                             std::chrono::steady_clock::now() - start_)
                             .count();
  stats.workers = workers_;
  stats.metrics_enabled = registry_ != nullptr;
  stats.queue = queue_.stats();
  stats.submitted = stats.queue.pushed;
  stats.in_flight = in_flight_.load(std::memory_order_relaxed);
  {
    const std::lock_guard<std::mutex> lock(results_mu_);
    stats.completed = completed_;
    stats.errored = errored_;
  }
  stats.worker_busy_seconds.resize(workers_, 0.0);
  for (std::size_t w = 0; w < workers_; ++w)
    stats.worker_busy_seconds[w] =
        static_cast<double>(busy_us_[w].load(std::memory_order_relaxed)) *
        1e-6;
  if (trace_ != nullptr) {
    stats.trace_recorded = trace_->recorded();
    stats.trace_dropped = trace_->dropped();
  }
  if (registry_ == nullptr) return stats;

  const obs::Snapshot snap = registry_->snapshot();
  stats.cache_lookups = snap.counter("floor.cache.lookups");
  stats.cache_program_hits = snap.counter("floor.cache.hits.program");
  stats.cache_verdict_hits = snap.counter("floor.cache.hits.verdict");
  stats.cache_insertions = snap.counter("floor.cache.insertions");
  stats.cache_evictions = snap.counter("floor.cache.evictions");
  stats.sim_memo_lookups = snap.counter("floor.sim.memo.lookups");
  stats.sim_memo_hits = snap.counter("floor.sim.memo.hits");
  stats.sim_precompute_seconds =
      static_cast<double>(snap.counter("floor.sim.precompute.us")) * 1e-6;
  stats.sim_eval_passes = snap.counter("floor.sim.eval_passes");
  stats.sim_cell_evals = snap.counter("floor.sim.cell_evals");
  stats.sim_sweep_cell_evals = snap.counter("floor.sim.sweep_cell_evals");
  stats.sched_nodes_expanded = snap.counter("floor.sched.nodes_expanded");
  stats.sched_prunes = snap.counter("floor.sched.prunes");
  stats.sched_improvements = snap.counter("floor.sched.improvements");
  for (std::size_t s = 0; s < kStageCount; ++s) {
    const obs::HistogramSnapshot* h = snap.histogram(
        std::string("floor.stage.") + stage_name(static_cast<Stage>(s)) +
        ".us");
    if (h == nullptr) continue;
    StageDigest& d = stats.stages[s];
    d.count = h->count;
    d.total_seconds = h->sum * 1e-6;  // histogram records µs
    d.p50_us = h->p50();
    d.p90_us = h->p90();
    d.p99_us = h->p99();
  }
  return stats;
}

void FloorSession::worker_main(std::size_t worker) {
  // The worker's private program cache: equal-keyed jobs are routed here
  // by the queue's affinity sharding, so repeated specs skip the
  // Schedule+Compile stages without any cross-thread sharing.
  ProgramCache cache(config_.cache_capacity, config_.reuse_verdicts);
  ProgramCache* cache_ptr = config_.cache_capacity ? &cache : nullptr;
  if (registry_ != nullptr) {
    cache.set_telemetry(CacheTelemetry{
        registry_.get(), ids_.cache_lookups, ids_.cache_program_hits,
        ids_.cache_verdict_hits, ids_.cache_insertions,
        ids_.cache_evictions});
  }

  JobTelemetry obs;
  obs.registry = registry_.get();
  obs.ids = registry_ != nullptr ? &ids_ : nullptr;
  obs.trace = trace_.get();
  obs.worker = static_cast<std::uint32_t>(worker);

  while (std::optional<SlottedJob> job = queue_.pop(worker)) {
    in_flight_.fetch_add(1, std::memory_order_relaxed);
    obs.slot = job->slot;
    const auto start = std::chrono::steady_clock::now();
    JobResult result =
        run_job(job->spec, cache_ptr, config_.verify,
                JobSimOptions{config_.event_sim, config_.sim_threads},
                obs);
    const auto end = std::chrono::steady_clock::now();
    result.wall_seconds =
        std::chrono::duration<double>(end - start).count();
    busy_us_[worker].fetch_add(
        static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::microseconds>(end -
                                                                  start)
                .count()),
        std::memory_order_relaxed);

    const bool errored = !result.error.empty();
    const std::lock_guard<std::mutex> lock(results_mu_);
    if (job->slot >= results_.size()) {
      results_.resize(job->slot + 1);
      done_.resize(job->slot + 1, 0);
    }
    results_[job->slot] = std::move(result);
    done_[job->slot] = 1;
    ++completed_;
    if (errored) ++errored_;
    in_flight_.fetch_sub(1, std::memory_order_relaxed);
  }
}

}  // namespace casbus::floor
