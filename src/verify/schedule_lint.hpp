/// \file schedule_lint.hpp
/// Head 2 of the static verification layer: legality checking of `sched`
/// outputs against the analytic time model, without simulating.
///
/// Rules (see verify/report.hpp for ids and severities):
///   SC001 sess-wire-conflict   a CAS wire double-booked (scan item placed
///                              on a BIST-reserved wire, a core's chains
///                              colliding despite the N/P injectivity
///                              constraint, or a phase overlapping the
///                              program-wide resident-BIST wires)
///   SC002 sess-over-capacity   a session needs more wires than the bus has
///   SC003 sess-time-model      session cycle counts disagree with
///                              sched/time_model (scan_cycles formula, BIST
///                              maxima, chain-item lengths vs the specs)
///   SC004 sess-reconfig        reconfiguration accounting inconsistent
///                              (per-session config cost, program total)
///   SC005 core-not-covered     a core's pattern / BIST budget is never
///                              fulfilled by the program
///   SC006 bound-incoherent     a branch-and-bound certificate contradicts
///                              itself (lower bound above the incumbent,
///                              "optimal" with a residual gap, ...)
///
/// Diagnostic::object is the session index for SC001–SC004, the core index
/// for SC005, and kNoObject for SC006 / whole-program findings.
///
/// Structural cycle checks apply to chip-synchronous schedules only:
/// rail_emulation's coarse summary session (Schedule::chip_synchronous ==
/// false) intentionally folds per-rail sequencing into one session whose
/// counters the per-session formulas cannot reproduce. Membership coverage
/// (SC005) is checked for every schedule shape.

#pragma once

#include <vector>

#include "explore/branch_bound.hpp"
#include "sched/scheduler.hpp"
#include "verify/report.hpp"

namespace casbus::verify {

/// Lints \p schedule against the SoC it was built for. \p cores and
/// \p bus_width must be the exact SessionScheduler inputs — the linter
/// re-derives the reconfiguration cost and per-chain lengths from them.
/// Pure and non-throwing for well-formed specs; equal inputs produce equal
/// reports.
[[nodiscard]] LintReport lint_schedule(
    const sched::Schedule& schedule,
    const std::vector<sched::CoreTestSpec>& cores, unsigned bus_width);

/// Lints a branch-and-bound certificate: the incumbent schedule (full
/// lint_schedule pass) plus SC006 coherence of the certified gap.
[[nodiscard]] LintReport lint_branch_bound(
    const explore::BranchBoundResult& result,
    const std::vector<sched::CoreTestSpec>& cores, unsigned bus_width);

}  // namespace casbus::verify
