#include "verify/report.hpp"

#include <algorithm>
#include <array>
#include <sstream>

namespace casbus::verify {

const char* severity_name(Severity s) noexcept {
  return s == Severity::Error ? "error" : "warning";
}

const char* rule_id(RuleId rule) noexcept {
  switch (rule) {
    case RuleId::NetlistMalformed: return "NL000";
    case RuleId::NetMultiDriver: return "NL001";
    case RuleId::NetFloatingInput: return "NL002";
    case RuleId::CombCycle: return "NL003";
    case RuleId::GateUnreachable: return "NL004";
    case RuleId::PortDangling: return "NL005";
    case RuleId::NetFanout: return "NL006";
    case RuleId::ScanChainBroken: return "NL007";
    case RuleId::SessWireConflict: return "SC001";
    case RuleId::SessOverCapacity: return "SC002";
    case RuleId::SessTimeModel: return "SC003";
    case RuleId::SessReconfig: return "SC004";
    case RuleId::CoreNotCovered: return "SC005";
    case RuleId::BoundIncoherent: return "SC006";
  }
  return "??";
}

const char* rule_name(RuleId rule) noexcept {
  switch (rule) {
    case RuleId::NetlistMalformed: return "netlist-malformed";
    case RuleId::NetMultiDriver: return "net-multi-driver";
    case RuleId::NetFloatingInput: return "net-floating-input";
    case RuleId::CombCycle: return "comb-cycle";
    case RuleId::GateUnreachable: return "gate-unreachable";
    case RuleId::PortDangling: return "port-dangling";
    case RuleId::NetFanout: return "net-fanout";
    case RuleId::ScanChainBroken: return "scan-chain-broken";
    case RuleId::SessWireConflict: return "sess-wire-conflict";
    case RuleId::SessOverCapacity: return "sess-over-capacity";
    case RuleId::SessTimeModel: return "sess-time-model";
    case RuleId::SessReconfig: return "sess-reconfig";
    case RuleId::CoreNotCovered: return "core-not-covered";
    case RuleId::BoundIncoherent: return "bound-incoherent";
  }
  return "unknown";
}

Severity rule_severity(RuleId rule) noexcept {
  switch (rule) {
    case RuleId::GateUnreachable:
    case RuleId::NetFanout:
      return Severity::Warning;
    default:
      return Severity::Error;
  }
}

std::size_t LintReport::error_count() const noexcept {
  return static_cast<std::size_t>(
      std::count_if(diagnostics.begin(), diagnostics.end(),
                    [](const Diagnostic& d) {
                      return d.severity == Severity::Error;
                    }));
}

std::size_t LintReport::warning_count() const noexcept {
  return diagnostics.size() - error_count();
}

bool LintReport::has(RuleId rule) const noexcept {
  return count(rule) > 0;
}

std::size_t LintReport::count(RuleId rule) const noexcept {
  return static_cast<std::size_t>(std::count_if(
      diagnostics.begin(), diagnostics.end(),
      [rule](const Diagnostic& d) { return d.rule == rule; }));
}

void LintReport::add(RuleId rule, std::size_t object, std::string message) {
  diagnostics.push_back(
      Diagnostic{rule, rule_severity(rule), object, std::move(message)});
}

void LintReport::merge(const LintReport& other) {
  diagnostics.insert(diagnostics.end(), other.diagnostics.begin(),
                     other.diagnostics.end());
}

std::string LintReport::to_string() const {
  std::ostringstream os;
  for (const Diagnostic& d : diagnostics) {
    os << rule_id(d.rule) << ' ' << severity_name(d.severity);
    if (d.object != kNoObject) os << " @" << d.object;
    os << ": " << d.message << '\n';
  }
  return os.str();
}

std::string LintReport::summary() const {
  std::array<std::size_t, kRuleCount> counts{};
  for (const Diagnostic& d : diagnostics)
    ++counts[static_cast<std::size_t>(d.rule)];
  std::ostringstream os;
  os << "verify:";
  bool first = true;
  for (std::size_t r = 0; r < kRuleCount; ++r) {
    if (counts[r] == 0) continue;
    os << (first ? " " : ", ") << rule_id(static_cast<RuleId>(r)) << " x"
       << counts[r];
    first = false;
  }
  if (first) os << " clean";
  return os.str();
}

}  // namespace casbus::verify
