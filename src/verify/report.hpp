/// \file report.hpp
/// Shared vocabulary of the static verification layer (src/verify/): rule
/// identifiers, severities, and the LintReport both linter heads emit.
///
/// The verifier follows the "independent checker" pattern of reusable
/// verification environments: one rule catalogue validated against both
/// model levels — gate-level netlists (netlist_lint.hpp) and analytic
/// schedules (schedule_lint.hpp) — so a malformed generated design or an
/// illegal schedule is rejected in microseconds, before the expensive
/// cycle-accurate Simulate stage ever sees it.

#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace casbus::verify {

/// How bad a finding is. Errors make a design/schedule inadmissible (the
/// floor's Verify stage fails the job); warnings are reported but do not
/// gate execution.
enum class Severity : std::uint8_t {
  Warning,
  Error,
};

/// Stable lowercase name ("warning", "error").
[[nodiscard]] const char* severity_name(Severity s) noexcept;

/// Every rule either linter head can report. The short code (rule_id) is
/// the stable external vocabulary — tests assert on it, the CLI and CI
/// print it — and must never be renumbered.
enum class RuleId : std::uint8_t {
  // --- netlist structural DRC (NL...) --------------------------------------
  NetlistMalformed,  ///< NL000: out-of-range net reference / extra pins
  NetMultiDriver,    ///< NL001: net with conflicting non-tristate drivers
  NetFloatingInput,  ///< NL002: cell input pin reads an undriven net
  CombCycle,         ///< NL003: combinational cycle (reported net by net)
  GateUnreachable,   ///< NL004: gate with no path to any primary output
  PortDangling,      ///< NL005: output port reads an undriven net
  NetFanout,         ///< NL006: net fanout exceeds the configured ceiling
  ScanChainBroken,   ///< NL007: scan chain unreachable / wrong length
  // --- schedule legality (SC...) -------------------------------------------
  SessWireConflict,  ///< SC001: one CAS wire double-booked inside a session
  SessOverCapacity,  ///< SC002: session needs more wires than the bus has
  SessTimeModel,     ///< SC003: session cycles disagree with the time model
  SessReconfig,      ///< SC004: reconfiguration accounting inconsistent
  CoreNotCovered,    ///< SC005: a core's test budget is never fulfilled
  BoundIncoherent,   ///< SC006: certified lower bound above the incumbent
};

inline constexpr std::size_t kRuleCount =
    static_cast<std::size_t>(RuleId::BoundIncoherent) + 1;

/// Stable short code ("NL001", "SC004", ...).
[[nodiscard]] const char* rule_id(RuleId rule) noexcept;

/// Stable human slug ("net-multi-driver", "sess-reconfig", ...).
[[nodiscard]] const char* rule_name(RuleId rule) noexcept;

/// The fixed severity of \p rule. Only GateUnreachable and NetFanout are
/// warnings (dead logic and buffering pressure do not make a design
/// non-executable); every other rule is an admission-gating error.
[[nodiscard]] Severity rule_severity(RuleId rule) noexcept;

/// Sentinel for Diagnostic::object when a finding has no single locus.
inline constexpr std::size_t kNoObject = std::numeric_limits<std::size_t>::max();

/// One finding. `object` locates it in the checked artifact: a NetId or
/// CellId for netlist rules (as stated per rule in netlist_lint.hpp), a
/// session index for schedule rules, kNoObject for whole-artifact findings.
struct Diagnostic {
  RuleId rule = RuleId::NetlistMalformed;
  Severity severity = Severity::Error;
  std::size_t object = kNoObject;
  std::string message;
};

/// The outcome of one lint pass: every diagnostic, in deterministic rule /
/// object order (lint functions are pure — equal inputs yield equal
/// reports, which is what lets the floor's Verify stage run under the
/// determinism contract of run_job).
struct LintReport {
  std::vector<Diagnostic> diagnostics;

  [[nodiscard]] std::size_t error_count() const noexcept;
  [[nodiscard]] std::size_t warning_count() const noexcept;

  /// True when nothing at all was reported (the acceptance bar for every
  /// generated design in the tree).
  [[nodiscard]] bool clean() const noexcept { return diagnostics.empty(); }

  /// True when no *error* was reported (the floor admission bar).
  [[nodiscard]] bool admissible() const noexcept {
    return error_count() == 0;
  }

  [[nodiscard]] bool has(RuleId rule) const noexcept;

  /// Count of diagnostics carrying \p rule.
  [[nodiscard]] std::size_t count(RuleId rule) const noexcept;

  void add(RuleId rule, std::size_t object, std::string message);

  /// Appends every diagnostic of \p other (used to fold per-core netlist
  /// reports into one job-level report).
  void merge(const LintReport& other);

  /// One line per diagnostic: "NL001 error net 7: ...". Empty string when
  /// clean.
  [[nodiscard]] std::string to_string() const;

  /// Compact single-line form for JobResult::error ("verify: NL001 x2,
  /// SC003 x1"), stable across runs.
  [[nodiscard]] std::string summary() const;
};

}  // namespace casbus::verify
