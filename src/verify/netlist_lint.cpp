#include "verify/netlist_lint.hpp"

#include <algorithm>
#include <queue>
#include <sstream>
#include <unordered_map>

namespace casbus::verify {

using netlist::Cell;
using netlist::CellId;
using netlist::CellKind;
using netlist::fanin;
using netlist::is_sequential;
using netlist::kNoNet;
using netlist::NetId;
using netlist::Netlist;
using netlist::Port;
using netlist::RawNetlist;

namespace {

/// Per-design working set shared by the rule passes: driver/reader tables
/// over the well-formed subset of cells (malformed cells are reported by
/// NL000 and excluded so later passes never index out of range).
struct Tables {
  std::vector<bool> cell_ok;            ///< pins all in range
  std::vector<int> plain_drivers;       ///< per net, non-tristate
  std::vector<int> tri_drivers;         ///< per net, tristuf
  std::vector<std::size_t> reader_pins; ///< per net, cell pins + out ports
  std::vector<std::vector<CellId>> drivers;  ///< cells driving each net
};

std::string net_label(const RawNetlist& raw, NetId net) {
  for (const auto& [id, name] : raw.net_names)
    if (id == net) return name;
  std::ostringstream os;
  os << 'n' << net;
  return os.str();
}

Tables build_tables(const RawNetlist& raw, LintReport& report) {
  Tables t;
  const std::size_t n = raw.n_nets;
  t.cell_ok.assign(raw.cells.size(), true);
  t.plain_drivers.assign(n, 0);
  t.tri_drivers.assign(n, 0);
  t.reader_pins.assign(n, 0);
  t.drivers.assign(n, {});

  for (CellId id = 0; id < raw.cells.size(); ++id) {
    const Cell& c = raw.cells[id];
    const int n_in = fanin(c.kind);
    bool ok = c.out < n;
    for (int i = 0; i < n_in; ++i)
      ok = ok && c.in[static_cast<std::size_t>(i)] < n;
    for (int i = n_in; i < 3; ++i)
      ok = ok && c.in[static_cast<std::size_t>(i)] == kNoNet;
    if (!ok) {
      t.cell_ok[id] = false;
      std::ostringstream os;
      os << netlist::kind_name(c.kind) << " cell " << id
         << " has an out-of-range or spare-pin connection";
      report.add(RuleId::NetlistMalformed, id, os.str());
    }
    // Register every in-range reference even for malformed cells, so one
    // NL000 does not cascade into spurious floating-input / dangling-port
    // findings on the nets the cell legitimately touches.
    if (c.out < n) {
      if (c.kind == CellKind::Tribuf)
        ++t.tri_drivers[c.out];
      else
        ++t.plain_drivers[c.out];
      t.drivers[c.out].push_back(id);
    }
    for (int i = 0; i < n_in; ++i) {
      const NetId in = c.in[static_cast<std::size_t>(i)];
      if (in < n) ++t.reader_pins[in];
    }
  }
  for (std::size_t p = 0; p < raw.inputs.size(); ++p) {
    if (raw.inputs[p].net >= n) {
      report.add(RuleId::NetlistMalformed, kNoObject,
                 "input port '" + raw.inputs[p].name +
                     "' references an out-of-range net");
      continue;
    }
    ++t.plain_drivers[raw.inputs[p].net];
  }
  for (std::size_t p = 0; p < raw.outputs.size(); ++p) {
    if (raw.outputs[p].net >= n) {
      report.add(RuleId::NetlistMalformed, kNoObject,
                 "output port '" + raw.outputs[p].name +
                     "' references an out-of-range net");
      continue;
    }
    ++t.reader_pins[raw.outputs[p].net];
  }
  return t;
}

void lint_drivers(const RawNetlist& raw, const Tables& t,
                  LintReport& report) {
  for (NetId net = 0; net < raw.n_nets; ++net) {
    const int plain = t.plain_drivers[net];
    const int tri = t.tri_drivers[net];
    if (plain > 1 || (plain >= 1 && tri > 0)) {
      std::ostringstream os;
      os << "net " << net_label(raw, net) << " has " << plain
         << " plain and " << tri << " tri-state drivers";
      report.add(RuleId::NetMultiDriver, net, os.str());
    } else if (plain + tri == 0 && t.reader_pins[net] > 0) {
      // Undriven-but-read nets: cell pins are NL002; output ports NL005.
      bool read_by_cell = false;
      for (CellId id = 0; id < raw.cells.size(); ++id) {
        const Cell& c = raw.cells[id];
        const int n_in = fanin(c.kind);
        for (int i = 0; i < n_in; ++i)
          if (c.in[static_cast<std::size_t>(i)] == net) read_by_cell = true;
      }
      if (read_by_cell) {
        std::ostringstream os;
        os << "net " << net_label(raw, net)
           << " is read by cell inputs but has no driver";
        report.add(RuleId::NetFloatingInput, net, os.str());
      }
    }
  }
  for (std::size_t p = 0; p < raw.outputs.size(); ++p) {
    const Port& port = raw.outputs[p];
    if (port.net >= raw.n_nets) continue;  // reported as NL000
    if (t.plain_drivers[port.net] + t.tri_drivers[port.net] == 0) {
      std::ostringstream os;
      os << "output port '" << port.name << "' reads undriven net "
         << net_label(raw, port.net);
      report.add(RuleId::PortDangling, p, os.str());
    }
  }
}

void lint_fanout(const RawNetlist& raw, const Tables& t,
                 const NetlistLintConfig& config, LintReport& report) {
  if (config.fanout_ceiling == 0) return;
  for (NetId net = 0; net < raw.n_nets; ++net) {
    if (t.reader_pins[net] > config.fanout_ceiling) {
      std::ostringstream os;
      os << "net " << net_label(raw, net) << " fans out to "
         << t.reader_pins[net] << " pins (ceiling "
         << config.fanout_ceiling << ")";
      report.add(RuleId::NetFanout, net, os.str());
    }
  }
}

/// Kahn's algorithm over the well-formed combinational cells; returns the
/// set of cells left unplaced (non-empty exactly when a cycle exists).
std::vector<bool> unplaced_comb_cells(const RawNetlist& raw,
                                      const Tables& t) {
  std::vector<int> pending(raw.n_nets, 0);
  std::vector<std::vector<CellId>> readers(raw.n_nets);
  std::vector<int> missing(raw.cells.size(), 0);
  std::vector<bool> comb(raw.cells.size(), false);

  for (CellId id = 0; id < raw.cells.size(); ++id) {
    const Cell& c = raw.cells[id];
    if (!t.cell_ok[id] || is_sequential(c.kind)) continue;
    comb[id] = true;
    ++pending[c.out];
    const int n_in = fanin(c.kind);
    for (int i = 0; i < n_in; ++i)
      readers[c.in[static_cast<std::size_t>(i)]].push_back(id);
  }
  for (CellId id = 0; id < raw.cells.size(); ++id) {
    if (!comb[id]) continue;
    const Cell& c = raw.cells[id];
    const int n_in = fanin(c.kind);
    for (int i = 0; i < n_in; ++i)
      if (pending[c.in[static_cast<std::size_t>(i)]] > 0) ++missing[id];
  }

  std::queue<CellId> ready;
  for (CellId id = 0; id < raw.cells.size(); ++id)
    if (comb[id] && missing[id] == 0) ready.push(id);

  std::vector<bool> placed(raw.cells.size(), false);
  while (!ready.empty()) {
    const CellId id = ready.front();
    ready.pop();
    placed[id] = true;
    const Cell& c = raw.cells[id];
    if (--pending[c.out] == 0)
      for (const CellId r : readers[c.out])
        if (--missing[r] == 0) ready.push(r);
  }

  std::vector<bool> unplaced(raw.cells.size(), false);
  for (CellId id = 0; id < raw.cells.size(); ++id)
    unplaced[id] = comb[id] && !placed[id];
  return unplaced;
}

void lint_cycles(const RawNetlist& raw, const Tables& t,
                 LintReport& report) {
  const std::vector<CellId> cycle = find_comb_cycle(raw);
  if (cycle.empty()) return;
  std::ostringstream os;
  os << "combinational cycle of " << cycle.size() << " cells: ";
  for (std::size_t i = 0; i < cycle.size(); ++i) {
    const Cell& c = raw.cells[cycle[i]];
    os << net_label(raw, c.out) << '(' << netlist::kind_name(c.kind) << ')'
       << " -> ";
  }
  os << net_label(raw, raw.cells[cycle.front()].out);
  (void)t;
  report.add(RuleId::CombCycle, cycle.front(), os.str());
}

void lint_unreachable(const RawNetlist& raw, const Tables& t,
                      LintReport& report) {
  // Backward liveness from the primary outputs: a cell is reachable when
  // its output net transitively feeds an output port.
  std::vector<bool> net_live(raw.n_nets, false);
  std::vector<bool> cell_live(raw.cells.size(), false);
  std::queue<NetId> work;
  for (const Port& p : raw.outputs) {
    if (p.net < raw.n_nets && !net_live[p.net]) {
      net_live[p.net] = true;
      work.push(p.net);
    }
  }
  while (!work.empty()) {
    const NetId net = work.front();
    work.pop();
    for (const CellId id : t.drivers[net]) {
      if (cell_live[id]) continue;
      cell_live[id] = true;
      const Cell& c = raw.cells[id];
      const int n_in = fanin(c.kind);
      for (int i = 0; i < n_in; ++i) {
        const NetId in = c.in[static_cast<std::size_t>(i)];
        if (in >= raw.n_nets) continue;  // malformed cell, reported as NL000
        if (!net_live[in]) {
          net_live[in] = true;
          work.push(in);
        }
      }
    }
  }
  for (CellId id = 0; id < raw.cells.size(); ++id) {
    if (!t.cell_ok[id] || cell_live[id]) continue;
    const Cell& c = raw.cells[id];
    std::ostringstream os;
    os << netlist::kind_name(c.kind) << " cell " << id << " driving "
       << net_label(raw, c.out) << " reaches no primary output";
    report.add(RuleId::GateUnreachable, id, os.str());
  }
}

void lint_scan_chains(const RawNetlist& raw, const Tables& t,
                      const NetlistLintConfig& config, LintReport& report) {
  if (config.scan_chains.empty()) return;

  std::unordered_map<std::string, NetId> in_ports, out_ports;
  for (const Port& p : raw.inputs)
    if (p.net < raw.n_nets) in_ports.emplace(p.name, p.net);
  for (const Port& p : raw.outputs)
    if (p.net < raw.n_nets) out_ports.emplace(p.name, p.net);

  // Scan successor tables: a chain stage is a sequential cell whose D pin
  // reads the current net either directly or through the scan side (pin b)
  // of a mux-D scan mux.
  std::vector<std::vector<CellId>> seq_d_readers(raw.n_nets);
  std::vector<std::vector<CellId>> mux_b_readers(raw.n_nets);
  for (CellId id = 0; id < raw.cells.size(); ++id) {
    const Cell& c = raw.cells[id];
    if (is_sequential(c.kind) && c.in[0] < raw.n_nets && c.out < raw.n_nets)
      seq_d_readers[c.in[0]].push_back(id);
    if (c.kind == CellKind::Mux2 && c.in[1] < raw.n_nets &&
        c.out < raw.n_nets)
      mux_b_readers[c.in[1]].push_back(id);
  }

  std::vector<bool> visited(raw.cells.size(), false);
  for (std::size_t ci = 0; ci < config.scan_chains.size(); ++ci) {
    const ScanChainSpec& chain = config.scan_chains[ci];
    const auto si = in_ports.find(chain.scan_in);
    const auto so = out_ports.find(chain.scan_out);
    if (si == in_ports.end() || so == out_ports.end()) {
      report.add(RuleId::ScanChainBroken, ci,
                 "chain " + std::to_string(ci) + " ports '" + chain.scan_in +
                     "'/'" + chain.scan_out + "' missing from the design");
      continue;
    }
    NetId cur = si->second;
    bool broken = false;
    for (std::size_t step = 0; step < chain.length; ++step) {
      // Candidate next stages from the current net.
      std::vector<CellId> next = seq_d_readers[cur];
      for (const CellId m : mux_b_readers[cur])
        for (const CellId d : seq_d_readers[raw.cells[m].out])
          next.push_back(d);
      if (next.size() != 1) {
        std::ostringstream os;
        os << "chain " << ci << " ('" << chain.scan_in << "') "
           << (next.empty() ? "breaks" : "forks") << " after " << step
           << " of " << chain.length << " flip-flops at net "
           << net_label(raw, cur);
        report.add(RuleId::ScanChainBroken, ci, os.str());
        broken = true;
        break;
      }
      visited[next.front()] = true;
      cur = raw.cells[next.front()].out;
    }
    if (!broken && cur != so->second) {
      std::ostringstream os;
      os << "chain " << ci << " ends on net " << net_label(raw, cur)
         << " but port '" << chain.scan_out << "' reads "
         << net_label(raw, so->second)
         << " (length mismatch or mis-stitched tail)";
      report.add(RuleId::ScanChainBroken, ci, os.str());
    }
  }

  std::size_t orphans = 0;
  for (CellId id = 0; id < raw.cells.size(); ++id)
    if (t.cell_ok[id] && is_sequential(raw.cells[id].kind) && !visited[id])
      ++orphans;
  if (orphans > 0) {
    std::ostringstream os;
    os << orphans << " scan flip-flop(s) unreachable from any scan-in";
    report.add(RuleId::ScanChainBroken, kNoObject, os.str());
  }
}

}  // namespace

LintReport lint_netlist(const RawNetlist& raw,
                        const NetlistLintConfig& config) {
  LintReport report;
  const Tables t = build_tables(raw, report);
  lint_drivers(raw, t, report);
  lint_cycles(raw, t, report);
  if (config.check_unreachable) lint_unreachable(raw, t, report);
  lint_fanout(raw, t, config, report);
  lint_scan_chains(raw, t, config, report);
  return report;
}

LintReport lint_netlist(const Netlist& nl, const NetlistLintConfig& config) {
  return lint_netlist(nl.to_raw(), config);
}

std::vector<CellId> find_comb_cycle(const RawNetlist& raw) {
  LintReport scratch;
  const Tables t = build_tables(raw, scratch);
  const std::vector<bool> unplaced = unplaced_comb_cells(raw, t);

  // Every unplaced cell sits on or downstream of a cycle, and each of its
  // pending input nets is driven only by unplaced cells — so walking
  // cell -> (driver of a pending input) inside the unplaced set must
  // revisit a cell, and the walk between the two visits is a cycle.
  CellId start = static_cast<CellId>(raw.cells.size());
  for (CellId id = 0; id < raw.cells.size(); ++id)
    if (unplaced[id]) {
      start = id;
      break;
    }
  if (start == raw.cells.size()) return {};

  std::vector<CellId> path;
  std::vector<std::size_t> pos_in_path(raw.cells.size(),
                                       raw.cells.size());
  CellId cur = start;
  while (pos_in_path[cur] == raw.cells.size()) {
    pos_in_path[cur] = path.size();
    path.push_back(cur);
    const Cell& c = raw.cells[cur];
    const int n_in = fanin(c.kind);
    CellId next = static_cast<CellId>(raw.cells.size());
    for (int i = 0; i < n_in && next == raw.cells.size(); ++i)
      for (const CellId d : t.drivers[c.in[static_cast<std::size_t>(i)]])
        if (unplaced[d]) {
          next = d;
          break;
        }
    if (next == raw.cells.size()) return {};  // malformed leftover; give up
    cur = next;
  }
  // path[pos_in_path[cur]..] is the loop, discovered backwards (each step
  // walked to a *driver*); reverse so the reported order follows signal
  // flow.
  std::vector<CellId> cycle(path.begin() +
                                static_cast<std::ptrdiff_t>(pos_in_path[cur]),
                            path.end());
  std::reverse(cycle.begin(), cycle.end());
  return cycle;
}

std::string describe_comb_cycle(const Netlist& nl) {
  const std::vector<CellId> cycle = find_comb_cycle(nl.to_raw());
  if (cycle.empty()) return {};
  std::ostringstream os;
  for (const CellId id : cycle) {
    const Cell& c = nl.cell(id);
    os << nl.net_name(c.out) << '(' << netlist::kind_name(c.kind) << ')'
       << " -> ";
  }
  os << nl.net_name(nl.cell(cycle.front()).out);
  return os.str();
}

}  // namespace casbus::verify
