#include "verify/schedule_lint.hpp"

#include <algorithm>
#include <map>
#include <sstream>

namespace casbus::verify {

using sched::CoreTestSpec;
using sched::Schedule;
using sched::ScheduledSession;

namespace {

/// Re-derives SessionScheduler's reconfiguration cost from the raw inputs
/// (same geometry rule: every core sees an N = width CAS, P = its wire
/// demand).
std::uint64_t expected_reconfig_cost(const std::vector<CoreTestSpec>& cores,
                                     unsigned width) {
  std::vector<std::pair<unsigned, unsigned>> geometries;
  geometries.reserve(cores.size());
  for (const CoreTestSpec& c : cores) {
    const auto p = static_cast<unsigned>(
        c.is_scan() ? std::min<std::size_t>(c.chains.size(), width) : 1);
    geometries.emplace_back(width, p);
  }
  return sched::session_config_cycles(geometries, cores.size());
}

void lint_session_capacity(const ScheduledSession& s, std::size_t idx,
                           unsigned width, std::size_t resident_bist,
                           LintReport& report) {
  if (s.bist_cores.size() > width) {
    std::ostringstream os;
    os << "session " << idx << " hosts " << s.bist_cores.size()
       << " BIST handshakes on a " << width << "-wire bus";
    report.add(RuleId::SessOverCapacity, idx, os.str());
    return;
  }
  // Wires the scan balance may legally use: everything not reserved by
  // this session's own BIST handshakes, nor by program-wide resident BIST
  // engines (bist_spans_sessions).
  const std::size_t reserved = std::max(s.bist_cores.size(), resident_bist);
  const std::size_t scan_wires = width - reserved;
  if (!s.scan_cores.empty() && scan_wires == 0) {
    std::ostringstream os;
    os << "session " << idx << " schedules scan cores but BIST reserves all "
       << width << " wires";
    report.add(RuleId::SessOverCapacity, idx, os.str());
    return;
  }
  if (s.balance.wire_load.size() > scan_wires) {
    std::ostringstream os;
    os << "session " << idx << " balances over "
       << s.balance.wire_load.size() << " wires; only " << scan_wires
       << " are free of BIST reservations";
    report.add(RuleId::SessOverCapacity, idx, os.str());
  }
}

void lint_session_wires(const ScheduledSession& s, std::size_t idx,
                        unsigned width, std::size_t resident_bist,
                        LintReport& report) {
  if (s.balance.wire_of_item.size() != s.items.size()) {
    std::ostringstream os;
    os << "session " << idx << " places " << s.balance.wire_of_item.size()
       << " items but lists " << s.items.size();
    report.add(RuleId::SessWireConflict, idx, os.str());
    return;
  }
  const std::size_t reserved = std::max(s.bist_cores.size(), resident_bist);
  const std::size_t scan_wires =
      width > reserved ? width - reserved : 0;
  // Per-core wire sets: the N/P switch routes each selected wire to one
  // port, so chains of one core must land on distinct wires — unless the
  // core brings more chains than there are wires (the scheduler's
  // documented concatenation relaxation).
  std::map<std::size_t, std::vector<unsigned>> wires_of_core;
  for (std::size_t i = 0; i < s.items.size(); ++i) {
    const unsigned w = s.balance.wire_of_item[i];
    if (w >= scan_wires) {
      std::ostringstream os;
      os << "session " << idx << " item " << i << " (core "
         << s.items[i].core << " chain " << s.items[i].chain
         << ") sits on wire " << w << ", inside the BIST-reserved band";
      report.add(RuleId::SessWireConflict, idx, os.str());
      continue;
    }
    wires_of_core[s.items[i].core].push_back(w);
  }
  for (auto& [core, wires] : wires_of_core) {
    if (wires.size() > scan_wires) continue;  // relaxation applies
    std::sort(wires.begin(), wires.end());
    if (std::adjacent_find(wires.begin(), wires.end()) != wires.end()) {
      std::ostringstream os;
      os << "session " << idx << " double-books a wire across core " << core
         << "'s chains (injectivity violated with "
         << wires.size() << " chains on " << scan_wires << " wires)";
      report.add(RuleId::SessWireConflict, idx, os.str());
    }
  }
}

void lint_session_times(const ScheduledSession& s, std::size_t idx,
                        const std::vector<CoreTestSpec>& cores,
                        LintReport& report) {
  // Chain items must mirror the specs of the session's scan cores exactly.
  std::map<std::pair<std::size_t, std::size_t>, std::size_t> seen;
  for (const sched::ChainItem& it : s.items)
    ++seen[{it.core, it.chain}];
  bool items_ok = true;
  for (const std::size_t c : s.scan_cores) {
    if (c >= cores.size()) {
      std::ostringstream os;
      os << "session " << idx << " references core " << c << " of "
         << cores.size();
      report.add(RuleId::SessTimeModel, idx, os.str());
      return;
    }
    for (std::size_t ch = 0; ch < cores[c].chains.size(); ++ch)
      if (seen[{c, ch}] != 1) items_ok = false;
  }
  std::size_t expected_items = 0;
  for (const std::size_t c : s.scan_cores)
    expected_items += cores[c].chains.size();
  if (!items_ok || expected_items != s.items.size()) {
    std::ostringstream os;
    os << "session " << idx << " chain items do not match its scan cores' "
       << "specs (" << s.items.size() << " items, " << expected_items
       << " chains expected)";
    report.add(RuleId::SessTimeModel, idx, os.str());
  } else {
    for (const sched::ChainItem& it : s.items) {
      if (it.length != cores[it.core].chains[it.chain]) {
        std::ostringstream os;
        os << "session " << idx << " carries core " << it.core << " chain "
           << it.chain << " at " << it.length << " bits; spec says "
           << cores[it.core].chains[it.chain];
        report.add(RuleId::SessTimeModel, idx, os.str());
      }
    }
  }

  // Wire loads must be the sums of the items placed on them.
  if (s.balance.wire_of_item.size() == s.items.size()) {
    std::vector<std::size_t> load(s.balance.wire_load.size(), 0);
    bool in_range = true;
    for (std::size_t i = 0; i < s.items.size(); ++i) {
      const unsigned w = s.balance.wire_of_item[i];
      if (w >= load.size()) {
        in_range = false;
        break;
      }
      load[w] += s.items[i].length;
    }
    if (!in_range || load != s.balance.wire_load) {
      std::ostringstream os;
      os << "session " << idx
         << " wire loads disagree with the items placed on them";
      report.add(RuleId::SessTimeModel, idx, os.str());
    }
  }

  // The scan counter must be the time-model formula applied to this
  // balance, and the BIST counter the max of the hosted engines.
  const std::uint64_t want_scan =
      sched::scan_cycles(s.balance.max_load(), s.patterns_applied);
  if (s.scan_cycles != want_scan) {
    std::ostringstream os;
    os << "session " << idx << " claims " << s.scan_cycles
       << " scan cycles; scan_cycles(" << s.balance.max_load() << ", "
       << s.patterns_applied << ") = " << want_scan;
    report.add(RuleId::SessTimeModel, idx, os.str());
  }
  std::uint64_t want_bist = 0;
  bool bist_ok = true;
  for (const std::size_t b : s.bist_cores) {
    if (b >= cores.size()) {
      bist_ok = false;
      break;
    }
    want_bist = std::max(want_bist, cores[b].bist_cycles);
  }
  if (!bist_ok || s.bist_cycles != want_bist) {
    std::ostringstream os;
    os << "session " << idx << " claims " << s.bist_cycles
       << " BIST cycles; hosted engines need " << want_bist;
    report.add(RuleId::SessTimeModel, idx, os.str());
  }
}

void lint_reconfig(const Schedule& schedule,
                   const std::vector<CoreTestSpec>& cores, unsigned width,
                   LintReport& report) {
  const std::uint64_t cost = expected_reconfig_cost(cores, width);
  for (std::size_t i = 0; i < schedule.sessions.size(); ++i) {
    if (schedule.sessions[i].config_cycles != cost) {
      std::ostringstream os;
      os << "session " << i << " books "
         << schedule.sessions[i].config_cycles
         << " configuration cycles; this SoC costs " << cost
         << " per reconfiguration";
      report.add(RuleId::SessReconfig, i, os.str());
    }
  }

  std::uint64_t sum_totals = 0;
  std::uint64_t sum_scan_config = 0;
  for (const ScheduledSession& s : schedule.sessions) {
    sum_totals += s.total_cycles();
    sum_scan_config += s.scan_cycles + s.config_cycles;
  }
  if (!schedule.bist_spans_sessions) {
    if (schedule.total_cycles != sum_totals) {
      std::ostringstream os;
      os << "program total " << schedule.total_cycles
         << " != sum of session totals " << sum_totals;
      report.add(RuleId::SessReconfig, kNoObject, os.str());
    }
  } else if (schedule.total_cycles < sum_scan_config ||
             schedule.total_cycles > sum_totals) {
    // Resident BIST overlaps the scan phases, so the exact total depends
    // on the overlap; it is still bracketed by the serial scan+config sum
    // and the no-overlap sum.
    std::ostringstream os;
    os << "program total " << schedule.total_cycles << " outside ["
       << sum_scan_config << ", " << sum_totals
       << "] despite spanning BIST";
    report.add(RuleId::SessReconfig, kNoObject, os.str());
  }
}

void lint_coverage(const Schedule& schedule,
                   const std::vector<CoreTestSpec>& cores,
                   LintReport& report) {
  for (std::size_t c = 0; c < cores.size(); ++c) {
    const CoreTestSpec& spec = cores[c];
    if (spec.is_scan()) {
      std::uint64_t patterns = 0;
      bool member = false;
      for (const ScheduledSession& s : schedule.sessions) {
        if (std::find(s.scan_cores.begin(), s.scan_cores.end(), c) ==
            s.scan_cores.end())
          continue;
        member = true;
        patterns += s.patterns_applied;
      }
      const bool fulfilled =
          schedule.chip_synchronous ? patterns >= spec.patterns : member;
      if (!fulfilled) {
        std::ostringstream os;
        os << "scan core " << c << " ('" << spec.name << "') receives "
           << patterns << " of " << spec.patterns << " patterns";
        report.add(RuleId::CoreNotCovered, c, os.str());
      }
    } else {
      bool fulfilled = false;
      for (const ScheduledSession& s : schedule.sessions)
        for (const std::size_t b : s.bist_cores)
          if (b == c &&
              (!schedule.chip_synchronous ||
               s.bist_cycles >= spec.bist_cycles))
            fulfilled = true;
      if (!fulfilled) {
        std::ostringstream os;
        os << "BIST core " << c << " ('" << spec.name
           << "') never completes its " << spec.bist_cycles
           << "-cycle session";
        report.add(RuleId::CoreNotCovered, c, os.str());
      }
    }
  }
}

}  // namespace

LintReport lint_schedule(const Schedule& schedule,
                         const std::vector<CoreTestSpec>& cores,
                         unsigned bus_width) {
  LintReport report;
  if (bus_width == 0) {
    report.add(RuleId::SessOverCapacity, kNoObject,
               "schedule targets a zero-wire bus");
    return report;
  }
  const std::size_t resident_bist =
      schedule.bist_spans_sessions && !schedule.sessions.empty()
          ? schedule.sessions.front().bist_cores.size()
          : 0;
  if (schedule.chip_synchronous) {
    for (std::size_t i = 0; i < schedule.sessions.size(); ++i) {
      const ScheduledSession& s = schedule.sessions[i];
      // Overflow BIST chunks after a spanning scan program run with the
      // residents already retired; only scan-bearing sessions contend
      // with the reserved band.
      const std::size_t resident = s.scan_cores.empty() ? 0 : resident_bist;
      lint_session_capacity(s, i, bus_width, resident, report);
      lint_session_wires(s, i, bus_width, resident, report);
      lint_session_times(s, i, cores, report);
    }
    lint_reconfig(schedule, cores, bus_width, report);
  }
  lint_coverage(schedule, cores, report);
  return report;
}

LintReport lint_branch_bound(const explore::BranchBoundResult& result,
                             const std::vector<CoreTestSpec>& cores,
                             unsigned bus_width) {
  LintReport report = lint_schedule(result.schedule, cores, bus_width);
  if (result.best_cost != result.schedule.total_cycles) {
    std::ostringstream os;
    os << "certificate best_cost " << result.best_cost
       << " != incumbent total " << result.schedule.total_cycles;
    report.add(RuleId::BoundIncoherent, kNoObject, os.str());
  }
  if (result.lower_bound > result.best_cost) {
    std::ostringstream os;
    os << "certified lower bound " << result.lower_bound
       << " exceeds the incumbent " << result.best_cost;
    report.add(RuleId::BoundIncoherent, kNoObject, os.str());
  }
  if (result.optimal && result.lower_bound != result.best_cost) {
    std::ostringstream os;
    os << "result marked optimal with lower bound " << result.lower_bound
       << " below the incumbent " << result.best_cost;
    report.add(RuleId::BoundIncoherent, kNoObject, os.str());
  }
  if (!result.schedule.chip_synchronous)
    report.add(RuleId::BoundIncoherent, kNoObject,
               "branch-and-bound incumbent is not chip-synchronous");
  return report;
}

}  // namespace casbus::verify
