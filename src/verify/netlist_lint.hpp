/// \file netlist_lint.hpp
/// Head 1 of the static verification layer: rule-based structural DRC over
/// gate-level netlists.
///
/// The linter operates on the plain-data RawNetlist form so that *broken*
/// designs — exactly the ones worth diagnosing — can be linted without
/// tripping the exceptions Netlist::from_raw / validate() throw. A clean
/// pass over a RawNetlist implies from_raw() will accept it; the Netlist
/// overload is a convenience for already-validated designs (it can still
/// find cycles, dead gates, fanout pressure, and scan-chain breaks, which
/// validate() does not check).
///
/// Rules (see verify/report.hpp for ids and severities):
///   NL000 netlist-malformed    out-of-range net refs, connected spare pins
///   NL001 net-multi-driver     >1 plain driver, or plain + tri-state mix
///   NL002 net-floating-input   cell input pin reads a driverless net
///   NL003 comb-cycle           combinational cycle, reported net by net
///   NL004 gate-unreachable     no structural path to any primary output
///   NL005 port-dangling        output port reads a driverless net
///   NL006 net-fanout           reader-pin count above the config ceiling
///   NL007 scan-chain-broken    chain walk from scan-in fails or mismatches
///
/// Diagnostic::object is the offending NetId for NL001/NL002/NL006, the
/// CellId for NL000/NL004, the output-port index for NL005, the first cell
/// on the cycle for NL003, and the chain index for NL007.

#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "netlist/netlist.hpp"
#include "verify/report.hpp"

namespace casbus::verify {

/// Expected scan topology of one chain, for the NL007 integrity rule:
/// walking the mux-D scan path from input port \p scan_in must traverse
/// exactly \p length flip-flops and end on the net output port \p scan_out
/// reads.
struct ScanChainSpec {
  std::string scan_in;   ///< primary-input port name ("si0", ...)
  std::string scan_out;  ///< primary-output port name ("so0", ...)
  std::size_t length = 0;
};

/// Linter knobs. The defaults are what the floor's Verify stage and the CI
/// domain-lint leg run with; every generated design in the tree is clean
/// under them.
struct NetlistLintConfig {
  /// NL006 ceiling on a net's reader-pin count. Generated TAMs broadcast
  /// control strobes (config/update, the wrapper WSC wires, scan_en) to
  /// every cell they reach, so the default is sized for the largest
  /// geometry the tree generates; tighten it to audit buffering pressure.
  std::size_t fanout_ceiling = 4096;
  /// Gate of the NL004 dead-logic sweep.
  bool check_unreachable = true;
  /// Expected scan chains (NL007). Empty = rule not applied. When
  /// non-empty, every sequential cell must be visited by some chain walk
  /// ("every scan FF reachable from scan-in").
  std::vector<ScanChainSpec> scan_chains;
};

/// Lints \p raw against every rule. Pure: never throws on malformed input
/// and never mutates; equal inputs produce equal reports.
[[nodiscard]] LintReport lint_netlist(const netlist::RawNetlist& raw,
                                      const NetlistLintConfig& config = {});

/// Convenience overload for validated designs.
[[nodiscard]] LintReport lint_netlist(const netlist::Netlist& nl,
                                      const NetlistLintConfig& config = {});

/// Finds one combinational cycle in \p raw: cell ids in cycle order (the
/// output of each feeds an input of the next, and the last feeds the
/// first). Empty when the combinational part is acyclic.
[[nodiscard]] std::vector<netlist::CellId> find_comb_cycle(
    const netlist::RawNetlist& raw);

/// Human-readable walk of one combinational cycle in \p nl, naming the
/// nets on the loop ("n12(and2) -> cfg_q3(not) -> n12"); empty when
/// acyclic. netlist::LevelizedNetlist routes its cycle failure through
/// this reporter so PackedGateSim / FaultSim construction errors name the
/// offending nets instead of only counting unplaceable cells.
[[nodiscard]] std::string describe_comb_cycle(const netlist::Netlist& nl);

}  // namespace casbus::verify
