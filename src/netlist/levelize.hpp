/// \file levelize.hpp
/// Shared levelization of a netlist for one-pass combinational evaluation.
///
/// Both simulators (scalar GateSim and 64-wide PackedGateSim) need the same
/// preprocessing: a topological order of the combinational cells, the list
/// of sequential cells, the tri-state net set and the port index maps.
/// LevelizedNetlist computes it once; simulators share one instance via
/// shared_ptr, so a fault-simulation campaign levelizes its design a single
/// time no matter how many simulator instances it spins up.

#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "netlist/netlist.hpp"

namespace casbus::netlist {

/// A validated netlist plus the precomputed evaluation schedule.
///
/// Construction validates the design and levelizes its combinational cells
/// (Kahn's algorithm); it throws SimulationError on combinational cycles.
/// The object is immutable afterwards and safe to share between simulators.
class LevelizedNetlist {
 public:
  /// Takes its own copy of the design (move it in to avoid the copy).
  explicit LevelizedNetlist(Netlist nl);

  [[nodiscard]] const Netlist& netlist() const noexcept { return nl_; }

  /// Combinational cells in evaluation order (inputs before readers).
  [[nodiscard]] const std::vector<CellId>& comb_order() const noexcept {
    return comb_order_;
  }

  /// Sequential cells (Dff/Dffe) in netlist order.
  [[nodiscard]] const std::vector<CellId>& dff_cells() const noexcept {
    return dff_cells_;
  }

  /// True when \p net has at least one tri-state driver.
  [[nodiscard]] bool net_is_tri(NetId net) const {
    return net_is_tri_[net];
  }

  /// Combinational cells reading \p net (the fanout list). A cell reading
  /// the same net on two pins appears twice; event-driven evaluation
  /// dedups via its per-cell dirty flag.
  [[nodiscard]] const std::vector<CellId>& readers(NetId net) const {
    return net_readers_[net];
  }

  /// Combinational cells driving \p net, in comb_order() position. At most
  /// one entry unless the net is tri-state (wired: several Tribufs).
  [[nodiscard]] const std::vector<CellId>& comb_drivers(NetId net) const {
    return net_comb_drivers_[net];
  }

  /// Evaluation level of a combinational cell: 1 + max level of its input
  /// nets, so every reader sits strictly above all drivers of its inputs.
  /// Sequential cells report level 0 (their outputs are sources).
  [[nodiscard]] std::size_t cell_level(CellId id) const {
    return cell_level_[id];
  }

  /// Combinational depth (max cell level) — the critical path in gate
  /// stages, reported by the generator benches.
  [[nodiscard]] std::size_t depth() const noexcept { return depth_; }

  /// Position of primary input \p name; throws on unknown names.
  [[nodiscard]] std::size_t input_index(const std::string& name) const;

  /// Position of primary output \p name; throws on unknown names.
  [[nodiscard]] std::size_t output_index(const std::string& name) const;

 private:
  void levelize();

  Netlist nl_;
  std::vector<CellId> comb_order_;
  std::vector<CellId> dff_cells_;
  std::vector<bool> net_is_tri_;
  std::vector<std::vector<CellId>> net_readers_;
  std::vector<std::vector<CellId>> net_comb_drivers_;
  std::vector<std::size_t> cell_level_;
  std::unordered_map<std::string, std::size_t> input_index_;
  std::unordered_map<std::string, std::size_t> output_index_;
  std::size_t depth_ = 0;
};

/// Convenience: levelizes \p nl into a shareable immutable instance.
[[nodiscard]] std::shared_ptr<const LevelizedNetlist> levelize(Netlist nl);

}  // namespace casbus::netlist
