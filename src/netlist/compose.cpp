#include "netlist/compose.hpp"

#include <vector>

namespace casbus::netlist {

std::map<std::string, NetId> instantiate(NetlistBuilder& parent,
                                         const Netlist& child,
                                         const std::string& instance,
                                         const PortMap& connections) {
  // Child net -> parent net translation table, seeded with the port map.
  std::vector<NetId> xlat(child.net_count(), kNoNet);

  for (const Port& p : child.inputs()) {
    const auto it = connections.find(p.name);
    CASBUS_REQUIRE(it != connections.end(),
                   "instantiate: unconnected input port '" + p.name +
                       "' of " + child.name());
    xlat[p.net] = it->second;
  }
  // Output ports mapped to parent nets. When the child's output net is
  // already translated — it aliases an input port (feed-through, common
  // after optimization) or another mapped output — the parent net must
  // still be driven, so a buffer bridges the two.
  std::map<std::string, NetId> outputs;
  std::vector<std::pair<NetId, NetId>> bridges;  // src -> dst (parent nets)
  for (const Port& p : child.outputs()) {
    const auto it = connections.find(p.name);
    if (it == connections.end()) continue;
    if (xlat[p.net] == kNoNet) {
      xlat[p.net] = it->second;
      outputs.emplace(p.name, it->second);
    } else if (xlat[p.net] == it->second) {
      outputs.emplace(p.name, it->second);
    } else {
      bridges.emplace_back(xlat[p.net], it->second);
      outputs.emplace(p.name, it->second);
    }
  }
  for (const auto& [src, dst] : bridges)
    parent.copy_cell(CellKind::Buf, src, kNoNet, kNoNet, dst);

  // Remaining child nets become fresh, namespaced parent nets.
  for (NetId n = 0; n < child.net_count(); ++n) {
    if (xlat[n] != kNoNet) continue;
    xlat[n] = parent.net(instance + "." + child.net_name(n));
  }
  for (const Port& p : child.outputs())
    if (outputs.find(p.name) == outputs.end())
      outputs.emplace(p.name, xlat[p.net]);

  // Copy cells pin-for-pin through the translation table.
  for (const Cell& c : child.cells()) {
    const NetId in0 = c.in[0] == kNoNet ? kNoNet : xlat[c.in[0]];
    const NetId in1 = c.in[1] == kNoNet ? kNoNet : xlat[c.in[1]];
    const NetId in2 = c.in[2] == kNoNet ? kNoNet : xlat[c.in[2]];
    parent.copy_cell(c.kind, in0, in1, in2, xlat[c.out]);
  }
  return outputs;
}

}  // namespace casbus::netlist
