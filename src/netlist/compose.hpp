/// \file compose.hpp
/// Hierarchical netlist composition: instantiate one netlist inside a
/// builder, connecting its ports to existing nets.
///
/// This is what lets the library emit the *entire* CAS-BUS — every CAS
/// plus the inter-CAS bus segments — as a single flat synthesizable
/// netlist (see tam::generate_casbus_netlist), the deliverable a system
/// integrator would drop into their SoC top level.

#pragma once

#include <map>
#include <string>

#include "netlist/builder.hpp"
#include "netlist/netlist.hpp"

namespace casbus::netlist {

/// Net connections for one instantiation: port name -> net in the parent.
/// Every input port of the child must be mapped; output ports may be
/// omitted (left dangling) or mapped to fresh parent nets.
using PortMap = std::map<std::string, NetId>;

/// Copies all cells of \p child into \p parent, stitching child port nets
/// to the mapped parent nets. Internal child nets become fresh parent
/// nets named `<instance>.<childnet>`. Returns the map from child output
/// port names to the parent nets now carrying them (mapped or fresh).
///
/// Multi-driver (tri-state) structures survive: a child output driven by
/// tribufs keeps its drivers, so instances may share a parent bus net.
std::map<std::string, NetId> instantiate(NetlistBuilder& parent,
                                         const Netlist& child,
                                         const std::string& instance,
                                         const PortMap& connections);

}  // namespace casbus::netlist
