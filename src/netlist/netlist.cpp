#include "netlist/netlist.hpp"

#include <algorithm>
#include <sstream>

namespace casbus::netlist {

const char* kind_name(CellKind kind) noexcept {
  switch (kind) {
    case CellKind::Const0: return "const0";
    case CellKind::Const1: return "const1";
    case CellKind::Buf: return "buf";
    case CellKind::Not: return "not";
    case CellKind::And2: return "and2";
    case CellKind::Or2: return "or2";
    case CellKind::Nand2: return "nand2";
    case CellKind::Nor2: return "nor2";
    case CellKind::Xor2: return "xor2";
    case CellKind::Xnor2: return "xnor2";
    case CellKind::Mux2: return "mux2";
    case CellKind::Tribuf: return "tribuf";
    case CellKind::Dff: return "dff";
    case CellKind::Dffe: return "dffe";
  }
  return "?";
}

Netlist Netlist::from_raw(RawNetlist raw) {
  Netlist nl;
  nl.name_ = std::move(raw.name);
  nl.n_nets_ = raw.n_nets;
  nl.cells_ = std::move(raw.cells);
  nl.inputs_ = std::move(raw.inputs);
  nl.outputs_ = std::move(raw.outputs);
  nl.net_names_ = std::move(raw.net_names);
  nl.validate();
  return nl;
}

std::string Netlist::net_name(NetId id) const {
  for (const auto& [net, name] : net_names_)
    if (net == id) return name;
  std::ostringstream os;
  os << 'n' << id;
  return os.str();
}

std::vector<CellId> Netlist::drivers_of(NetId net) const {
  std::vector<CellId> out;
  for (CellId c = 0; c < cells_.size(); ++c)
    if (cells_[c].out == net) out.push_back(c);
  return out;
}

std::vector<std::size_t> Netlist::kind_histogram() const {
  std::vector<std::size_t> h(static_cast<std::size_t>(CellKind::Dffe) + 1, 0);
  for (const Cell& c : cells_) ++h[static_cast<std::size_t>(c.kind)];
  return h;
}

std::size_t Netlist::dff_count() const noexcept {
  return static_cast<std::size_t>(
      std::count_if(cells_.begin(), cells_.end(),
                    [](const Cell& c) { return is_sequential(c.kind); }));
}

RawNetlist Netlist::to_raw() const {
  RawNetlist raw;
  raw.name = name_;
  raw.n_nets = n_nets_;
  raw.cells = cells_;
  raw.inputs = inputs_;
  raw.outputs = outputs_;
  raw.net_names = net_names_;
  return raw;
}

void Netlist::validate() const {
  std::vector<int> plain_drivers(n_nets_, 0);
  std::vector<int> tri_drivers(n_nets_, 0);

  for (const Port& p : inputs_) {
    CASBUS_ASSERT(p.net < n_nets_, "input port references invalid net");
    ++plain_drivers[p.net];
  }
  for (const Cell& c : cells_) {
    CASBUS_ASSERT(c.out < n_nets_, "cell output references invalid net");
    const int n_in = fanin(c.kind);
    for (int i = 0; i < n_in; ++i)
      CASBUS_ASSERT(c.in[static_cast<std::size_t>(i)] < n_nets_,
                    "cell input pin dangling");
    for (int i = n_in; i < 3; ++i)
      CASBUS_ASSERT(c.in[static_cast<std::size_t>(i)] == kNoNet,
                    "cell has extra connected pins");
    if (c.kind == CellKind::Tribuf)
      ++tri_drivers[c.out];
    else
      ++plain_drivers[c.out];
  }
  for (NetId n = 0; n < n_nets_; ++n) {
    CASBUS_ASSERT(!(plain_drivers[n] > 1),
                  "net has multiple non-tristate drivers");
    CASBUS_ASSERT(!(plain_drivers[n] == 1 && tri_drivers[n] > 0),
                  "net mixes plain and tri-state drivers");
  }
  for (const Port& p : outputs_) {
    CASBUS_ASSERT(p.net < n_nets_, "output port references invalid net");
    CASBUS_ASSERT(plain_drivers[p.net] + tri_drivers[p.net] > 0,
                  "output port reads an undriven net");
  }
}

}  // namespace casbus::netlist
