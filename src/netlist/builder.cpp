#include "netlist/builder.hpp"

#include <sstream>

namespace casbus::netlist {

NetlistBuilder::NetlistBuilder(std::string design_name) {
  nl_.name_ = std::move(design_name);
}

NetId NetlistBuilder::net() {
  CASBUS_REQUIRE(!taken_, "NetlistBuilder used after take()");
  return static_cast<NetId>(nl_.n_nets_++);
}

NetId NetlistBuilder::net(const std::string& name) {
  const NetId id = net();
  nl_.net_names_.emplace_back(id, name);
  return id;
}

NetId NetlistBuilder::input(const std::string& name) {
  const NetId id = net(name);
  nl_.inputs_.push_back(Port{name, id});
  return id;
}

void NetlistBuilder::output(const std::string& name, NetId n) {
  CASBUS_REQUIRE(n < nl_.n_nets_, "output connected to unknown net");
  nl_.outputs_.push_back(Port{name, n});
}

NetId NetlistBuilder::add_cell(CellKind kind, NetId a, NetId b, NetId c,
                               NetId out) {
  CASBUS_REQUIRE(!taken_, "NetlistBuilder used after take()");
  Cell cell;
  cell.kind = kind;
  cell.in = {a, b, c};
  cell.out = (out == kNoNet) ? net() : out;
  nl_.cells_.push_back(cell);
  return cell.out;
}

NetId NetlistBuilder::const0() {
  if (const0_ == kNoNet) const0_ = add_cell(CellKind::Const0);
  return const0_;
}

NetId NetlistBuilder::const1() {
  if (const1_ == kNoNet) const1_ = add_cell(CellKind::Const1);
  return const1_;
}

NetId NetlistBuilder::buf(NetId a) { return add_cell(CellKind::Buf, a); }
NetId NetlistBuilder::not_(NetId a) { return add_cell(CellKind::Not, a); }
NetId NetlistBuilder::and2(NetId a, NetId b) {
  return add_cell(CellKind::And2, a, b);
}
NetId NetlistBuilder::or2(NetId a, NetId b) {
  return add_cell(CellKind::Or2, a, b);
}
NetId NetlistBuilder::nand2(NetId a, NetId b) {
  return add_cell(CellKind::Nand2, a, b);
}
NetId NetlistBuilder::nor2(NetId a, NetId b) {
  return add_cell(CellKind::Nor2, a, b);
}
NetId NetlistBuilder::xor2(NetId a, NetId b) {
  return add_cell(CellKind::Xor2, a, b);
}
NetId NetlistBuilder::xnor2(NetId a, NetId b) {
  return add_cell(CellKind::Xnor2, a, b);
}

NetId NetlistBuilder::mux2(NetId s, NetId a, NetId b) {
  return add_cell(CellKind::Mux2, a, b, s);
}

NetId NetlistBuilder::tribuf(NetId en, NetId d, NetId onto) {
  return add_cell(CellKind::Tribuf, d, en, kNoNet, onto);
}

NetId NetlistBuilder::dff(NetId d, const std::string& q_name) {
  const NetId q = q_name.empty() ? net() : net(q_name);
  add_cell(CellKind::Dff, d, kNoNet, kNoNet, q);
  return q;
}

NetId NetlistBuilder::dffe(NetId d, NetId en, const std::string& q_name) {
  const NetId q = q_name.empty() ? net() : net(q_name);
  add_cell(CellKind::Dffe, d, en, kNoNet, q);
  return q;
}

void NetlistBuilder::dff_into(NetId d, NetId q) {
  add_cell(CellKind::Dff, d, kNoNet, kNoNet, q);
}

void NetlistBuilder::dffe_into(NetId d, NetId en, NetId q) {
  add_cell(CellKind::Dffe, d, en, kNoNet, q);
}

NetId NetlistBuilder::and_n(const std::vector<NetId>& xs) {
  if (xs.empty()) return const1();
  // Balanced reduction keeps logic depth at ceil(log2 n).
  std::vector<NetId> level = xs;
  while (level.size() > 1) {
    std::vector<NetId> next;
    for (std::size_t i = 0; i + 1 < level.size(); i += 2)
      next.push_back(and2(level[i], level[i + 1]));
    if (level.size() % 2 != 0) next.push_back(level.back());
    level = std::move(next);
  }
  return level[0];
}

NetId NetlistBuilder::or_n(const std::vector<NetId>& xs) {
  if (xs.empty()) return const0();
  std::vector<NetId> level = xs;
  while (level.size() > 1) {
    std::vector<NetId> next;
    for (std::size_t i = 0; i + 1 < level.size(); i += 2)
      next.push_back(or2(level[i], level[i + 1]));
    if (level.size() % 2 != 0) next.push_back(level.back());
    level = std::move(next);
  }
  return level[0];
}

NetId NetlistBuilder::eq_const(const std::vector<NetId>& code,
                               std::uint64_t value) {
  CASBUS_REQUIRE(code.size() <= 64, "eq_const supports at most 64 bits");
  std::vector<NetId> literals;
  literals.reserve(code.size());
  for (std::size_t i = 0; i < code.size(); ++i) {
    const bool bit = (value >> i) & 1ULL;
    literals.push_back(bit ? code[i] : not_(code[i]));
  }
  return and_n(literals);
}

std::vector<NetId> NetlistBuilder::decoder(const std::vector<NetId>& code,
                                           std::size_t count) {
  // Complemented literals are shared across all product terms, as a PLA
  // row decoder would share its input inverters.
  std::vector<NetId> inv(code.size());
  for (std::size_t i = 0; i < code.size(); ++i) inv[i] = not_(code[i]);

  std::vector<NetId> out;
  out.reserve(count);
  for (std::size_t v = 0; v < count; ++v) {
    std::vector<NetId> literals;
    literals.reserve(code.size());
    for (std::size_t i = 0; i < code.size(); ++i)
      literals.push_back(((v >> i) & 1ULL) != 0 ? code[i] : inv[i]);
    out.push_back(and_n(literals));
  }
  return out;
}

NetId NetlistBuilder::mux_n(const std::vector<NetId>& sel,
                            const std::vector<NetId>& data) {
  CASBUS_REQUIRE(!data.empty(), "mux_n requires at least one data input");
  CASBUS_REQUIRE((1ULL << sel.size()) >= data.size(),
                 "mux_n select too narrow for data count");
  // Recursive Mux2 tree on the top select bit.
  std::vector<NetId> level = data;
  for (std::size_t bit = 0; bit < sel.size(); ++bit) {
    if (level.size() == 1) break;
    std::vector<NetId> next;
    for (std::size_t i = 0; i < level.size(); i += 2) {
      if (i + 1 < level.size())
        next.push_back(mux2(sel[bit], level[i], level[i + 1]));
      else
        next.push_back(level[i]);  // out-of-range selects fold to low half
    }
    level = std::move(next);
  }
  return level[0];
}

NetId NetlistBuilder::mux_onehot(const std::vector<NetId>& onehot,
                                 const std::vector<NetId>& data) {
  CASBUS_REQUIRE(onehot.size() == data.size(),
                 "mux_onehot: select/data size mismatch");
  CASBUS_REQUIRE(!data.empty(), "mux_onehot requires at least one input");
  std::vector<NetId> terms;
  terms.reserve(data.size());
  for (std::size_t i = 0; i < data.size(); ++i)
    terms.push_back(and2(onehot[i], data[i]));
  return or_n(terms);
}

std::vector<NetId> NetlistBuilder::shift_chain(NetId d, std::size_t n,
                                               const std::string& prefix) {
  std::vector<NetId> qs;
  qs.reserve(n);
  NetId prev = d;
  for (std::size_t i = 0; i < n; ++i) {
    std::string name;
    if (!prefix.empty()) {
      std::ostringstream os;
      os << prefix << '[' << i << ']';
      name = os.str();
    }
    prev = dff(prev, name);
    qs.push_back(prev);
  }
  return qs;
}

void NetlistBuilder::copy_cell(CellKind kind, NetId a, NetId b, NetId c,
                               NetId out) {
  CASBUS_REQUIRE(out != kNoNet && out < nl_.n_nets_,
                 "copy_cell: output must be an existing net");
  const int n_in = fanin(kind);
  const NetId pins[3] = {a, b, c};
  for (int i = 0; i < n_in; ++i)
    CASBUS_REQUIRE(pins[i] != kNoNet && pins[i] < nl_.n_nets_,
                   "copy_cell: input pin must be an existing net");
  add_cell(kind, a, b, c, out);
}

Netlist NetlistBuilder::take() {
  CASBUS_REQUIRE(!taken_, "NetlistBuilder::take called twice");
  taken_ = true;
  nl_.validate();
  return std::move(nl_);
}

}  // namespace casbus::netlist
