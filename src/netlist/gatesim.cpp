#include "netlist/gatesim.hpp"

#include <queue>
#include <sstream>
#include <utility>

namespace casbus::netlist {

GateSim::GateSim(Netlist nl) : nl_(std::move(nl)) {
  nl_.validate();
  net_val_.assign(nl_.net_count(), Logic4::X);
  cell_out_.assign(nl_.cell_count(), Logic4::X);
  net_is_tri_.assign(nl_.net_count(), false);
  input_val_.assign(nl_.inputs().size(), Logic4::X);

  for (std::size_t i = 0; i < nl_.inputs().size(); ++i)
    input_index_.emplace(nl_.inputs()[i].name, i);
  for (std::size_t i = 0; i < nl_.outputs().size(); ++i)
    output_index_.emplace(nl_.outputs()[i].name, i);

  for (const Cell& c : nl_.cells())
    if (c.kind == CellKind::Tribuf) net_is_tri_[c.out] = true;

  for (CellId id = 0; id < nl_.cell_count(); ++id)
    if (is_sequential(nl_.cell(id).kind)) dff_cells_.push_back(id);
  dff_state_.assign(dff_cells_.size(), Logic4::Zero);

  levelize();
}

void GateSim::levelize() {
  // Kahn's algorithm over combinational cells. A net is "ready" when all of
  // its drivers have been evaluated; source nets (primary inputs, DFF
  // outputs, undriven nets) are ready from the start.
  const std::size_t n_nets = nl_.net_count();
  std::vector<int> pending_drivers(n_nets, 0);
  std::vector<std::vector<CellId>> readers(n_nets);
  std::vector<int> cell_missing(nl_.cell_count(), 0);
  std::vector<std::size_t> cell_level(nl_.cell_count(), 0);
  std::vector<std::size_t> net_level(n_nets, 0);

  for (CellId id = 0; id < nl_.cell_count(); ++id) {
    const Cell& c = nl_.cell(id);
    if (is_sequential(c.kind)) continue;  // DFF outputs are sources
    ++pending_drivers[c.out];
    const int n_in = fanin(c.kind);
    for (int i = 0; i < n_in; ++i)
      readers[c.in[static_cast<std::size_t>(i)]].push_back(id);
  }
  for (CellId id = 0; id < nl_.cell_count(); ++id) {
    const Cell& c = nl_.cell(id);
    if (is_sequential(c.kind)) continue;
    int missing = 0;
    const int n_in = fanin(c.kind);
    for (int i = 0; i < n_in; ++i)
      if (pending_drivers[c.in[static_cast<std::size_t>(i)]] > 0) ++missing;
    cell_missing[id] = missing;
  }

  std::queue<CellId> ready;
  for (CellId id = 0; id < nl_.cell_count(); ++id) {
    const Cell& c = nl_.cell(id);
    if (!is_sequential(c.kind) && cell_missing[id] == 0) ready.push(id);
  }

  comb_order_.clear();
  while (!ready.empty()) {
    const CellId id = ready.front();
    ready.pop();
    comb_order_.push_back(id);
    const Cell& c = nl_.cell(id);
    std::size_t lvl = 0;
    const int n_in = fanin(c.kind);
    for (int i = 0; i < n_in; ++i)
      lvl = std::max(lvl, net_level[c.in[static_cast<std::size_t>(i)]]);
    cell_level[id] = lvl + 1;
    depth_ = std::max(depth_, cell_level[id]);

    if (--pending_drivers[c.out] == 0) {
      net_level[c.out] = std::max(net_level[c.out], cell_level[id]);
      for (CellId r : readers[c.out])
        if (--cell_missing[r] == 0) ready.push(r);
    } else {
      net_level[c.out] = std::max(net_level[c.out], cell_level[id]);
    }
  }

  std::size_t comb_cells = 0;
  for (const Cell& c : nl_.cells())
    if (!is_sequential(c.kind)) ++comb_cells;
  if (comb_order_.size() != comb_cells) {
    std::ostringstream os;
    os << "combinational cycle in netlist '" << nl_.name() << "': "
       << (comb_cells - comb_order_.size()) << " cells unplaceable";
    throw SimulationError(os.str());
  }
}

void GateSim::reset(Logic4 state) {
  dff_state_.assign(dff_cells_.size(), state);
  input_val_.assign(nl_.inputs().size(), Logic4::X);
  net_val_.assign(nl_.net_count(), Logic4::X);
  cell_out_.assign(nl_.cell_count(), Logic4::X);
}

void GateSim::set_input(const std::string& name, Logic4 v) {
  const auto it = input_index_.find(name);
  CASBUS_REQUIRE(it != input_index_.end(), "unknown primary input: " + name);
  input_val_[it->second] = v;
}

void GateSim::set_input_index(std::size_t index, Logic4 v) {
  CASBUS_REQUIRE(index < input_val_.size(), "input index out of range");
  input_val_[index] = v;
}

Logic4 GateSim::eval_cell(const Cell& c) const {
  const auto in = [&](int i) {
    return net_val_[c.in[static_cast<std::size_t>(i)]];
  };
  switch (c.kind) {
    case CellKind::Const0: return Logic4::Zero;
    case CellKind::Const1: return Logic4::One;
    case CellKind::Buf: return is01(in(0)) ? in(0) : Logic4::X;
    case CellKind::Not: return logic_not(in(0));
    case CellKind::And2: return logic_and(in(0), in(1));
    case CellKind::Or2: return logic_or(in(0), in(1));
    case CellKind::Nand2: return logic_not(logic_and(in(0), in(1)));
    case CellKind::Nor2: return logic_not(logic_or(in(0), in(1)));
    case CellKind::Xor2: return logic_xor(in(0), in(1));
    case CellKind::Xnor2: return logic_not(logic_xor(in(0), in(1)));
    case CellKind::Mux2: return logic_mux(in(2), in(0), in(1));
    case CellKind::Tribuf: return logic_tribuf(in(1), in(0));
    case CellKind::Dff:
    case CellKind::Dffe: break;  // handled in tick()
  }
  CASBUS_ASSERT(false, "eval_cell on sequential cell");
  return Logic4::X;
}

void GateSim::eval() {
  // Seed source nets: primary inputs and DFF outputs; tri-state nets start
  // at Z and accumulate driver resolution; everything else gets X until its
  // single driver is evaluated.
  for (NetId n = 0; n < net_val_.size(); ++n)
    net_val_[n] = net_is_tri_[n] ? Logic4::Z : Logic4::X;
  for (std::size_t i = 0; i < nl_.inputs().size(); ++i)
    net_val_[nl_.inputs()[i].net] = input_val_[i];
  for (std::size_t i = 0; i < dff_cells_.size(); ++i)
    net_val_[nl_.cell(dff_cells_[i]).out] = dff_state_[i];

  if (has_forces()) {
    for (NetId n = 0; n < net_val_.size(); ++n)
      if (force_on_[n]) net_val_[n] = force_[n];
  }

  for (const CellId id : comb_order_) {
    const Cell& c = nl_.cell(id);
    const Logic4 v = eval_cell(c);
    cell_out_[id] = v;
    if (has_forces() && force_on_[c.out]) continue;  // stuck net stays stuck
    if (net_is_tri_[c.out])
      net_val_[c.out] = resolve(net_val_[c.out], v);
    else
      net_val_[c.out] = v;
  }
}

void GateSim::set_force(NetId net, Logic4 v) {
  CASBUS_REQUIRE(net < nl_.net_count(), "set_force: invalid net");
  if (force_on_.empty()) {
    force_on_.assign(nl_.net_count(), false);
    force_.assign(nl_.net_count(), Logic4::X);
  }
  if (!force_on_[net]) ++n_forces_;
  force_on_[net] = true;
  force_[net] = v;
}

void GateSim::clear_forces() {
  if (n_forces_ == 0) return;
  force_on_.assign(nl_.net_count(), false);
  n_forces_ = 0;
}

void GateSim::tick() {
  // Capture all D inputs simultaneously from the settled combinational
  // values, then re-evaluate.
  std::vector<Logic4> next(dff_cells_.size());
  for (std::size_t i = 0; i < dff_cells_.size(); ++i) {
    const Cell& c = nl_.cell(dff_cells_[i]);
    const Logic4 d = net_val_[c.in[0]];
    if (c.kind == CellKind::Dff) {
      next[i] = is01(d) ? d : Logic4::X;
    } else {  // Dffe
      const Logic4 en = net_val_[c.in[1]];
      if (en == Logic4::One)
        next[i] = is01(d) ? d : Logic4::X;
      else if (en == Logic4::Zero)
        next[i] = dff_state_[i];
      else
        next[i] = Logic4::X;
    }
  }
  dff_state_ = std::move(next);
  eval();
}

Logic4 GateSim::output(const std::string& name) const {
  const auto it = output_index_.find(name);
  CASBUS_REQUIRE(it != output_index_.end(),
                 "unknown primary output: " + name);
  return net_val_[nl_.outputs()[it->second].net];
}

Logic4 GateSim::output_index(std::size_t index) const {
  CASBUS_REQUIRE(index < nl_.outputs().size(), "output index out of range");
  return net_val_[nl_.outputs()[index].net];
}

void GateSim::set_dff_state(std::size_t i, Logic4 v) {
  CASBUS_REQUIRE(i < dff_state_.size(), "dff index out of range");
  dff_state_[i] = v;
}

}  // namespace casbus::netlist
