#include "netlist/gatesim.hpp"

#include <utility>

namespace casbus::netlist {

GateSim::GateSim(Netlist nl)
    : GateSim(std::make_shared<const LevelizedNetlist>(std::move(nl))) {}

GateSim::GateSim(std::shared_ptr<const LevelizedNetlist> lev)
    : lev_(std::move(lev)) {
  CASBUS_REQUIRE(lev_ != nullptr, "GateSim: null levelized netlist");
  net_val_.assign(nl().net_count(), Logic4::X);
  cell_out_.assign(nl().cell_count(), Logic4::X);
  input_val_.assign(nl().inputs().size(), Logic4::X);
  dff_state_.assign(lev_->dff_cells().size(), Logic4::Zero);
}

void GateSim::reset(Logic4 state) {
  dff_state_.assign(lev_->dff_cells().size(), state);
  input_val_.assign(nl().inputs().size(), Logic4::X);
  net_val_.assign(nl().net_count(), Logic4::X);
  cell_out_.assign(nl().cell_count(), Logic4::X);
}

void GateSim::set_input(const std::string& name, Logic4 v) {
  input_val_[lev_->input_index(name)] = v;
}

void GateSim::set_input_index(std::size_t index, Logic4 v) {
  CASBUS_REQUIRE(index < input_val_.size(), "input index out of range");
  input_val_[index] = v;
}

Logic4 GateSim::eval_cell(const Cell& c) const {
  const auto in = [&](int i) {
    return net_val_[c.in[static_cast<std::size_t>(i)]];
  };
  switch (c.kind) {
    case CellKind::Const0: return Logic4::Zero;
    case CellKind::Const1: return Logic4::One;
    case CellKind::Buf: return is01(in(0)) ? in(0) : Logic4::X;
    case CellKind::Not: return logic_not(in(0));
    case CellKind::And2: return logic_and(in(0), in(1));
    case CellKind::Or2: return logic_or(in(0), in(1));
    case CellKind::Nand2: return logic_not(logic_and(in(0), in(1)));
    case CellKind::Nor2: return logic_not(logic_or(in(0), in(1)));
    case CellKind::Xor2: return logic_xor(in(0), in(1));
    case CellKind::Xnor2: return logic_not(logic_xor(in(0), in(1)));
    case CellKind::Mux2: return logic_mux(in(2), in(0), in(1));
    case CellKind::Tribuf: return logic_tribuf(in(1), in(0));
    case CellKind::Dff:
    case CellKind::Dffe: break;  // handled in tick()
  }
  CASBUS_ASSERT(false, "eval_cell on sequential cell");
  return Logic4::X;
}

void GateSim::eval() {
  // Seed source nets: primary inputs and DFF outputs; tri-state nets start
  // at Z and accumulate driver resolution; everything else gets X until its
  // single driver is evaluated.
  const auto& dffs = lev_->dff_cells();
  for (NetId n = 0; n < net_val_.size(); ++n)
    net_val_[n] = lev_->net_is_tri(n) ? Logic4::Z : Logic4::X;
  for (std::size_t i = 0; i < nl().inputs().size(); ++i)
    net_val_[nl().inputs()[i].net] = input_val_[i];
  for (std::size_t i = 0; i < dffs.size(); ++i)
    net_val_[nl().cell(dffs[i]).out] = dff_state_[i];

  if (has_forces()) {
    for (NetId n = 0; n < net_val_.size(); ++n)
      if (force_on_[n]) net_val_[n] = force_[n];
  }

  for (const CellId id : lev_->comb_order()) {
    const Cell& c = nl().cell(id);
    const Logic4 v = eval_cell(c);
    cell_out_[id] = v;
    if (has_forces() && force_on_[c.out]) continue;  // stuck net stays stuck
    if (lev_->net_is_tri(c.out))
      net_val_[c.out] = resolve(net_val_[c.out], v);
    else
      net_val_[c.out] = v;
  }
}

void GateSim::set_force(NetId net, Logic4 v) {
  CASBUS_REQUIRE(net < nl().net_count(), "set_force: invalid net");
  if (force_on_.empty()) {
    force_on_.assign(nl().net_count(), false);
    force_.assign(nl().net_count(), Logic4::X);
  }
  if (!force_on_[net]) ++n_forces_;
  force_on_[net] = true;
  force_[net] = v;
}

void GateSim::clear_forces() {
  if (n_forces_ == 0) return;
  force_on_.assign(nl().net_count(), false);
  n_forces_ = 0;
}

void GateSim::tick() {
  // Capture all D inputs simultaneously from the settled combinational
  // values, then re-evaluate.
  const auto& dffs = lev_->dff_cells();
  std::vector<Logic4> next(dffs.size());
  for (std::size_t i = 0; i < dffs.size(); ++i) {
    const Cell& c = nl().cell(dffs[i]);
    const Logic4 d = net_val_[c.in[0]];
    if (c.kind == CellKind::Dff) {
      next[i] = is01(d) ? d : Logic4::X;
    } else {  // Dffe
      const Logic4 en = net_val_[c.in[1]];
      if (en == Logic4::One)
        next[i] = is01(d) ? d : Logic4::X;
      else if (en == Logic4::Zero)
        next[i] = dff_state_[i];
      else
        next[i] = Logic4::X;
    }
  }
  dff_state_ = std::move(next);
  eval();
}

Logic4 GateSim::output(const std::string& name) const {
  return net_val_[nl().outputs()[lev_->output_index(name)].net];
}

Logic4 GateSim::output_index(std::size_t index) const {
  CASBUS_REQUIRE(index < nl().outputs().size(), "output index out of range");
  return net_val_[nl().outputs()[index].net];
}

void GateSim::set_dff_state(std::size_t i, Logic4 v) {
  CASBUS_REQUIRE(i < dff_state_.size(), "dff index out of range");
  dff_state_[i] = v;
}

}  // namespace casbus::netlist
