#include "netlist/opt.hpp"

#include <algorithm>
#include <map>
#include <optional>
#include <tuple>
#include <vector>

namespace casbus::netlist {

namespace {

struct WorkCell {
  CellKind kind;
  std::array<NetId, 3> in;
  NetId out;
  bool dead = false;
};

class Rewriter {
 public:
  explicit Rewriter(const Netlist& in) : src_(in) {
    n_nets_ = in.net_count();
    repl_.resize(n_nets_);
    for (NetId i = 0; i < n_nets_; ++i) repl_[i] = i;
    const_val_.assign(n_nets_, -1);
    for (const Cell& c : in.cells())
      cells_.push_back(WorkCell{c.kind, c.in, c.out, false});
    tri_net_.assign(n_nets_, false);
    for (const auto& c : cells_)
      if (c.kind == CellKind::Tribuf) tri_net_[c.out] = true;
  }

  /// Union-find style canonical net with path compression.
  NetId find(NetId n) {
    while (repl_[n] != n) {
      repl_[n] = repl_[repl_[n]];
      n = repl_[n];
    }
    return n;
  }

  void merge(NetId victim, NetId kept) { repl_[find(victim)] = find(kept); }

  int cval(NetId n) { return const_val_[find(n)]; }

  NetId const_net(bool v) {
    NetId& cache = v ? const1_net_ : const0_net_;
    if (cache == kNoNet) {
      cache = static_cast<NetId>(n_nets_++);
      repl_.push_back(cache);
      const_val_.push_back(v ? 1 : 0);
      tri_net_.push_back(false);
      cells_.push_back(WorkCell{v ? CellKind::Const1 : CellKind::Const0,
                                {kNoNet, kNoNet, kNoNet},
                                cache,
                                false});
    }
    return cache;
  }

  /// One constant-fold / algebraic-identity sweep. Returns true on change.
  bool fold_pass() {
    bool changed = false;
    // Single-driver map for double-negation style rewrites.
    std::vector<CellId> only_driver(n_nets_, kNoNet);
    std::vector<int> n_drivers(n_nets_, 0);
    for (CellId i = 0; i < cells_.size(); ++i) {
      if (cells_[i].dead) continue;
      const NetId o = find(cells_[i].out);
      if (o < n_drivers.size()) {
        ++n_drivers[o];
        only_driver[o] = i;
      }
    }

    for (auto& c : cells_) {
      if (c.dead) continue;
      const int n_in = fanin(c.kind);
      std::array<NetId, 3> in = c.in;
      for (int i = 0; i < n_in; ++i)
        in[static_cast<std::size_t>(i)] = find(in[static_cast<std::size_t>(i)]);
      c.in = in;

      const auto kill_to = [&](NetId target) {
        merge(c.out, target);
        c.dead = true;
        changed = true;
      };
      const auto kill_const = [&](bool v) { kill_to(const_net(v)); };
      const auto rewrite_not = [&](NetId a) {
        c.kind = CellKind::Not;
        c.in = {a, kNoNet, kNoNet};
        changed = true;
      };

      switch (c.kind) {
        case CellKind::Const0: const_val_[find(c.out)] = 0; break;
        case CellKind::Const1: const_val_[find(c.out)] = 1; break;
        case CellKind::Buf:
          kill_to(in[0]);
          break;
        case CellKind::Not: {
          const int a = cval(in[0]);
          if (a >= 0) {
            kill_const(a == 0);
          } else {
            // not(not(x)) -> x
            const NetId src = in[0];
            if (src < only_driver.size() && n_drivers[src] == 1 &&
                only_driver[src] != kNoNet) {
              const WorkCell& d = cells_[only_driver[src]];
              if (!d.dead && d.kind == CellKind::Not) kill_to(find(d.in[0]));
            }
          }
          break;
        }
        case CellKind::And2: {
          const int a = cval(in[0]), b = cval(in[1]);
          if (a == 0 || b == 0) kill_const(false);
          else if (a == 1 && b == 1) kill_const(true);
          else if (a == 1) kill_to(in[1]);
          else if (b == 1) kill_to(in[0]);
          else if (in[0] == in[1]) kill_to(in[0]);
          break;
        }
        case CellKind::Or2: {
          const int a = cval(in[0]), b = cval(in[1]);
          if (a == 1 || b == 1) kill_const(true);
          else if (a == 0 && b == 0) kill_const(false);
          else if (a == 0) kill_to(in[1]);
          else if (b == 0) kill_to(in[0]);
          else if (in[0] == in[1]) kill_to(in[0]);
          break;
        }
        case CellKind::Nand2: {
          const int a = cval(in[0]), b = cval(in[1]);
          if (a == 0 || b == 0) kill_const(true);
          else if (a == 1 && b == 1) kill_const(false);
          else if (a == 1) rewrite_not(in[1]);
          else if (b == 1) rewrite_not(in[0]);
          else if (in[0] == in[1]) rewrite_not(in[0]);
          break;
        }
        case CellKind::Nor2: {
          const int a = cval(in[0]), b = cval(in[1]);
          if (a == 1 || b == 1) kill_const(false);
          else if (a == 0 && b == 0) kill_const(true);
          else if (a == 0) rewrite_not(in[1]);
          else if (b == 0) rewrite_not(in[0]);
          else if (in[0] == in[1]) rewrite_not(in[0]);
          break;
        }
        case CellKind::Xor2: {
          const int a = cval(in[0]), b = cval(in[1]);
          if (a >= 0 && b >= 0) kill_const(a != b);
          else if (a == 0) kill_to(in[1]);
          else if (b == 0) kill_to(in[0]);
          else if (a == 1) rewrite_not(in[1]);
          else if (b == 1) rewrite_not(in[0]);
          else if (in[0] == in[1]) kill_const(false);
          break;
        }
        case CellKind::Xnor2: {
          const int a = cval(in[0]), b = cval(in[1]);
          if (a >= 0 && b >= 0) kill_const(a == b);
          else if (a == 1) kill_to(in[1]);
          else if (b == 1) kill_to(in[0]);
          else if (a == 0) rewrite_not(in[1]);
          else if (b == 0) rewrite_not(in[0]);
          else if (in[0] == in[1]) kill_const(true);
          break;
        }
        case CellKind::Mux2: {
          const int s = cval(in[2]);
          if (s == 0) kill_to(in[0]);
          else if (s == 1) kill_to(in[1]);
          else if (in[0] == in[1]) kill_to(in[0]);
          break;
        }
        case CellKind::Tribuf: {
          // Only safe to fold when this is the sole driver of its net.
          const NetId o = find(c.out);
          if (o < n_drivers.size() && n_drivers[o] == 1) {
            const int en = cval(in[1]);
            if (en == 1) {
              c.kind = CellKind::Buf;
              c.in = {in[0], kNoNet, kNoNet};
              tri_net_[o] = false;
              changed = true;
            }
          }
          break;
        }
        case CellKind::Dff:
        case CellKind::Dffe:
          break;  // sequential cells are never folded
      }
    }
    return changed;
  }

  /// Structural CSE; commutative cells match with sorted inputs.
  bool share_pass() {
    bool changed = false;
    std::map<std::tuple<CellKind, NetId, NetId, NetId>, NetId> seen;
    for (auto& c : cells_) {
      if (c.dead || is_sequential(c.kind) || c.kind == CellKind::Tribuf)
        continue;
      const int n_in = fanin(c.kind);
      std::array<NetId, 3> in = {kNoNet, kNoNet, kNoNet};
      for (int i = 0; i < n_in; ++i)
        in[static_cast<std::size_t>(i)] = find(c.in[static_cast<std::size_t>(i)]);
      const bool commutative =
          c.kind == CellKind::And2 || c.kind == CellKind::Or2 ||
          c.kind == CellKind::Nand2 || c.kind == CellKind::Nor2 ||
          c.kind == CellKind::Xor2 || c.kind == CellKind::Xnor2;
      if (commutative && in[0] > in[1]) std::swap(in[0], in[1]);
      const auto key = std::make_tuple(c.kind, in[0], in[1], in[2]);
      const auto [it, inserted] = seen.emplace(key, find(c.out));
      if (!inserted && it->second != find(c.out)) {
        merge(c.out, it->second);
        c.dead = true;
        changed = true;
      }
    }
    return changed;
  }

  /// Drops cells whose outputs transitively reach no primary output and no
  /// live flip-flop.
  bool dce_pass() {
    std::vector<bool> live_net(n_nets_, false);
    for (const Port& p : src_.outputs()) live_net[find(p.net)] = true;

    bool grew = true;
    std::vector<bool> live_cell(cells_.size(), false);
    while (grew) {
      grew = false;
      for (CellId i = 0; i < cells_.size(); ++i) {
        const auto& c = cells_[i];
        if (c.dead || live_cell[i]) continue;
        if (!live_net[find(c.out)]) continue;
        live_cell[i] = true;
        grew = true;
        const int n_in = fanin(c.kind);
        for (int j = 0; j < n_in; ++j) {
          const NetId n = find(c.in[static_cast<std::size_t>(j)]);
          if (!live_net[n]) {
            live_net[n] = true;
          }
        }
      }
    }

    bool changed = false;
    for (CellId i = 0; i < cells_.size(); ++i) {
      if (!cells_[i].dead && !live_cell[i]) {
        cells_[i].dead = true;
        changed = true;
      }
    }
    return changed;
  }

  /// Produces the compacted result netlist.
  Netlist build(const std::string& name) {
    RawNetlist out;
    out.name = name;

    std::vector<NetId> remap(n_nets_, kNoNet);
    const auto mapped = [&](NetId n) {
      const NetId canon = find(n);
      if (remap[canon] == kNoNet)
        remap[canon] = static_cast<NetId>(out.n_nets++);
      return remap[canon];
    };

    for (const Port& p : src_.inputs())
      out.inputs.push_back(Port{p.name, mapped(p.net)});
    for (const auto& c : cells_) {
      if (c.dead) continue;
      Cell nc;
      nc.kind = c.kind;
      const int n_in = fanin(c.kind);
      for (int i = 0; i < n_in; ++i)
        nc.in[static_cast<std::size_t>(i)] =
            mapped(c.in[static_cast<std::size_t>(i)]);
      nc.out = mapped(c.out);
      out.cells.push_back(nc);
    }
    for (const Port& p : src_.outputs())
      out.outputs.push_back(Port{p.name, mapped(p.net)});

    // Preserve user-facing net names where the net survived.
    for (const auto& [net, nm] : src_.net_names()) {
      const NetId canon = find(net);
      if (canon < remap.size() && remap[canon] != kNoNet)
        out.net_names.emplace_back(remap[canon], nm);
    }
    return Netlist::from_raw(std::move(out));
  }

 private:
  const Netlist& src_;
  std::vector<WorkCell> cells_;
  std::vector<NetId> repl_;
  std::vector<int> const_val_;  // -1 unknown, 0/1 known
  std::vector<bool> tri_net_;
  std::size_t n_nets_;
  NetId const0_net_ = kNoNet;
  NetId const1_net_ = kNoNet;
};

}  // namespace

Netlist optimize(const Netlist& in, const OptOptions& options) {
  Rewriter rw(in);
  for (int iter = 0; iter < options.max_iterations; ++iter) {
    bool changed = false;
    if (options.constant_fold || options.collapse_buffers)
      changed |= rw.fold_pass();
    if (options.share_duplicates) changed |= rw.share_pass();
    if (options.dead_cell_elim) changed |= rw.dce_pass();
    if (!changed) break;
  }
  return rw.build(in.name());
}

}  // namespace casbus::netlist
