/// \file faultsim.hpp
/// Bit-parallel single-stuck-at fault simulation core.
///
/// FaultSim grades stuck-at faults against a good-machine reference using
/// PackedGateSim: one eval pass simulates up to 64 faulty machines, each in
/// its own lane (single-bit lane-masked force on the faulty net), all
/// driven by the same pattern. A fault is detected when any observation
/// point is driven in both machines and differs — the same criterion as the
/// serial simulator in tpg/fault.cpp, which this replaces on the hot path.
///
/// The class is deliberately below the tpg layer: it knows nothing about
/// pattern sets, pinning or scan; callers (tpg::FaultSimulator, examples,
/// benches) assemble the per-pattern input/flip-flop assignment and hand
/// batches of faults down.

#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "netlist/levelize.hpp"
#include "netlist/netlist.hpp"
#include "netlist/packed_gatesim.hpp"
#include "util/logic.hpp"

namespace casbus::netlist {

/// One single stuck-at fault: \p net permanently at \p stuck_one.
struct StuckAtFault {
  NetId net = kNoNet;
  bool stuck_one = false;

  friend bool operator==(const StuckAtFault&, const StuckAtFault&) = default;
};

/// Parallel-pattern-single-fault engine: 64 faulty machines per pass.
class FaultSim {
 public:
  /// Faults simulated per packed eval pass.
  static constexpr std::size_t kBatch = PackedGateSim::kLanes;

  explicit FaultSim(Netlist nl);
  explicit FaultSim(std::shared_ptr<const LevelizedNetlist> lev);

  [[nodiscard]] const Netlist& design() const noexcept {
    return sim_.design();
  }
  [[nodiscard]] const std::shared_ptr<const LevelizedNetlist>& levelized()
      const noexcept {
    return sim_.levelized();
  }

  /// Selects the observation points used for detection. Defaults to both:
  /// primary outputs and flip-flop next-states (full-scan unload). A
  /// scan-only campaign (no boundary EXTEST capture) disables outputs.
  void set_observation(bool outputs, bool dff_next_states);

  /// \name Per-pattern assignment
  /// The assignment applies identically to all lanes; changing it
  /// invalidates the cached good-machine response.
  /// @{
  void set_input_index(std::size_t index, Logic4 v);
  void set_dff_state(std::size_t i, Logic4 v);
  [[nodiscard]] std::size_t input_count() const noexcept {
    return design().inputs().size();
  }
  [[nodiscard]] std::size_t dff_count() const noexcept {
    return sim_.dff_count();
  }
  /// @}

  /// Simulates up to kBatch faults (lane i carries faults[i]) under the
  /// current assignment and returns a lane mask of detected faults.
  /// The good machine is evaluated once per assignment and cached.
  [[nodiscard]] std::uint64_t detect_batch(const StuckAtFault* faults,
                                           std::size_t count);

  /// Convenience over detect_batch: grades \p faults under the current
  /// assignment, skipping (and never re-simulating) faults whose
  /// \p detected flag is already set; newly detected faults are flagged.
  /// Returns the number of new detections.
  std::size_t detect_all(const std::vector<StuckAtFault>& faults,
                         std::vector<bool>& detected);

  /// Good-machine response values at the observation points for the
  /// current assignment: 0, 1, or -1 for X/Z.
  [[nodiscard]] const std::vector<int>& good_response();

 private:
  void ensure_good();

  PackedGateSim sim_;
  std::vector<NetId> obs_nets_;     // observation points, in response order
  std::vector<int> good_;           // cached good response (-1 = undriven)
  bool good_valid_ = false;
  bool observe_outputs_ = true;
  bool observe_dffs_ = true;
};

/// Enumerates the stuck-at-0/1 fault universe of \p nl: two faults per
/// net, excluding nets driven by constant cells (untestable by
/// construction). Mirrors tpg::enumerate_faults, at the netlist layer.
[[nodiscard]] std::vector<StuckAtFault> enumerate_stuck_at_faults(
    const Netlist& nl);

}  // namespace casbus::netlist
