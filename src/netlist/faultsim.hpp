/// \file faultsim.hpp
/// Bit-parallel single-stuck-at fault simulation core.
///
/// FaultSim grades stuck-at faults against a good-machine reference using
/// PackedGateSim: one eval pass simulates up to 64 faulty machines, each in
/// its own lane (single-bit lane-masked force on the faulty net), all
/// driven by the same pattern. A fault is detected when any observation
/// point is driven in both machines and differs — the same criterion as the
/// serial simulator in tpg/fault.cpp, which this replaces on the hot path.
///
/// The class is deliberately below the tpg layer: it knows nothing about
/// pattern sets, pinning or scan; callers (tpg::FaultSimulator, examples,
/// benches) assemble the per-pattern input/flip-flop assignment and hand
/// batches of faults down.
///
/// ## Threading and determinism (docs/PERFORMANCE.md)
///
/// One FaultSim instance is single-threaded. Campaign-level parallelism
/// comes from run_fault_campaign(): each worker owns a private FaultSim
/// over the *shared immutable* LevelizedNetlist and grades a contiguous
/// shard of the fault list. Whether one pattern detects one fault depends
/// only on (netlist, pattern, fault) — never on other faults — so the
/// merged detection map is byte-identical for any thread count, including
/// the first-detecting-pattern index under fault dropping.

#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "netlist/levelize.hpp"
#include "netlist/netlist.hpp"
#include "netlist/packed_gatesim.hpp"
#include "util/logic.hpp"

namespace casbus::netlist {

/// One single stuck-at fault: \p net permanently at \p stuck_one.
struct StuckAtFault {
  NetId net = kNoNet;
  bool stuck_one = false;

  friend bool operator==(const StuckAtFault&, const StuckAtFault&) = default;
};

/// Parallel-pattern-single-fault engine: 64 faulty machines per pass.
class FaultSim {
 public:
  /// Faults simulated per packed eval pass.
  static constexpr std::size_t kBatch = PackedGateSim::kLanes;

  explicit FaultSim(Netlist nl, EvalMode mode = EvalMode::FullSweep);
  explicit FaultSim(std::shared_ptr<const LevelizedNetlist> lev,
                    EvalMode mode = EvalMode::FullSweep);

  /// Switches the embedded engine's evaluation strategy (same detection
  /// results either way; EventDriven only re-simulates the fault cones).
  void set_mode(EvalMode mode) { sim_.set_mode(mode); }
  [[nodiscard]] EvalMode mode() const noexcept { return sim_.mode(); }

  /// Gate-evaluation counters of the embedded engine (activity factor).
  [[nodiscard]] const SimStats& stats() const noexcept {
    return sim_.stats();
  }
  void reset_stats() noexcept { sim_.reset_stats(); }

  [[nodiscard]] const Netlist& design() const noexcept {
    return sim_.design();
  }
  [[nodiscard]] const std::shared_ptr<const LevelizedNetlist>& levelized()
      const noexcept {
    return sim_.levelized();
  }

  /// Selects the observation points used for detection. Defaults to both:
  /// primary outputs and flip-flop next-states (full-scan unload). A
  /// scan-only campaign (no boundary EXTEST capture) disables outputs.
  void set_observation(bool outputs, bool dff_next_states);

  /// \name Per-pattern assignment
  /// The assignment applies identically to all lanes; changing it
  /// invalidates the cached good-machine response.
  /// @{
  void set_input_index(std::size_t index, Logic4 v);
  void set_dff_state(std::size_t i, Logic4 v);
  [[nodiscard]] std::size_t input_count() const noexcept {
    return design().inputs().size();
  }
  [[nodiscard]] std::size_t dff_count() const noexcept {
    return sim_.dff_count();
  }
  /// @}

  /// Simulates up to kBatch faults (lane i carries faults[i]) under the
  /// current assignment and returns a lane mask of detected faults.
  /// The good machine is evaluated once per assignment and cached.
  [[nodiscard]] std::uint64_t detect_batch(const StuckAtFault* faults,
                                           std::size_t count);

  /// Convenience over detect_batch: grades \p faults under the current
  /// assignment, skipping (and never re-simulating) faults whose
  /// \p detected flag is already set; newly detected faults are flagged.
  /// Returns the number of new detections.
  std::size_t detect_all(const std::vector<StuckAtFault>& faults,
                         std::vector<bool>& detected);

  /// Good-machine response values at the observation points for the
  /// current assignment: 0, 1, or -1 for X/Z.
  [[nodiscard]] const std::vector<int>& good_response();

 private:
  void ensure_good();

  PackedGateSim sim_;
  std::vector<NetId> obs_nets_;     // observation points, in response order
  std::vector<int> good_;           // cached good response (-1 = undriven)
  bool good_valid_ = false;
  bool observe_outputs_ = true;
  bool observe_dffs_ = true;
};

/// Enumerates the stuck-at-0/1 fault universe of \p nl: two faults per
/// net, excluding nets driven by constant cells (untestable by
/// construction). Mirrors tpg::enumerate_faults, at the netlist layer.
[[nodiscard]] std::vector<StuckAtFault> enumerate_stuck_at_faults(
    const Netlist& nl);

// --- threaded fault campaigns ----------------------------------------------

/// Knobs of run_fault_campaign().
struct FaultCampaignOptions {
  /// Worker threads; 0 means one per hardware thread. The result is
  /// byte-identical for every value (see the file comment).
  std::size_t threads = 1;
  /// Evaluation strategy of each worker's private engine.
  EvalMode mode = EvalMode::FullSweep;
  /// Observation points, as in FaultSim::set_observation.
  bool observe_outputs = true;
  bool observe_dffs = true;
};

/// Per-fault outcome of a campaign, merged in fault-index order.
struct FaultCampaignReport {
  /// 1 where the fault was detected by some pattern (std::uint8_t, not
  /// vector<bool>: workers write disjoint index ranges concurrently).
  std::vector<std::uint8_t> detected;
  /// Index of the first detecting pattern per fault, -1 if undetected.
  /// Well-defined under fault dropping: patterns are graded in order.
  std::vector<std::int32_t> first_detect_pattern;
  std::size_t detected_count = 0;
  /// Summed engine counters across workers (activity measurement).
  SimStats stats;

  [[nodiscard]] double coverage() const noexcept {
    return detected.empty() ? 1.0
                            : static_cast<double>(detected_count) /
                                  static_cast<double>(detected.size());
  }
};

/// Loads pattern \p index into a worker's engine (inputs + DFF states).
/// Must be safe to call concurrently from several threads on distinct
/// FaultSim instances — i.e. read-only on captured state.
using FaultCampaignLoader =
    std::function<void(FaultSim& sim, std::size_t index)>;

/// Grades \p faults against \p pattern_count patterns with fault dropping,
/// sharding the fault list contiguously across opts.threads workers. Each
/// worker owns a private FaultSim over the shared \p lev (levelized once,
/// never mutated) and walks all patterns in order over its shard, so the
/// report — including first_detect_pattern — is independent of the thread
/// count. Throws whatever a worker threw, after joining all workers.
[[nodiscard]] FaultCampaignReport run_fault_campaign(
    std::shared_ptr<const LevelizedNetlist> lev,
    const std::vector<StuckAtFault>& faults, std::size_t pattern_count,
    const FaultCampaignLoader& load, const FaultCampaignOptions& opts = {});

}  // namespace casbus::netlist
