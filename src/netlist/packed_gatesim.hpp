/// \file packed_gatesim.hpp
/// 64-wide bit-parallel levelized gate-level simulator.
///
/// PackedGateSim is the word-level counterpart of GateSim: every net holds
/// a Logic64 — 64 independent four-state lanes packed into two bit planes
/// (util/logic_word.hpp) — so one levelized pass advances 64 patterns (or,
/// with lane-masked forces, 64 faulty machines). Semantics are lane-wise
/// identical to GateSim; tests/test_packed_sim.cpp cross-checks them over
/// random netlists, patterns and X/Z injections.
///
/// ## Evaluation modes (docs/PERFORMANCE.md)
///
/// Two interchangeable evaluation strategies produce byte-identical net
/// values after every eval()/tick():
///
///  - EvalMode::FullSweep re-evaluates every combinational cell in
///    levelized order — cost is O(cells), independent of activity.
///  - EvalMode::EventDriven keeps per-cell output caches and only
///    re-evaluates the fanout cones of sources that changed since the
///    last pass (inputs, flip-flop outputs, forces) — cost is
///    O(active cells). Scan shifting and lane-masked fault injection
///    touch a small fraction of the design per pass, which is where the
///    mode wins (see SimStats::activity()).
///
/// Equivalence holds because readers are scheduled strictly above every
/// driver of their input nets (LevelizedNetlist::cell_level) and wired-net
/// resolution is a commutative OR of the planes, so a net can be rebuilt
/// from cached driver outputs in any order. The randomized suite in
/// tests/test_packed_sim.cpp pins the two modes against each other over
/// forces, X/Z lanes, ticks and partial input updates.

#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "netlist/levelize.hpp"
#include "netlist/netlist.hpp"
#include "util/logic_word.hpp"

namespace casbus::netlist {

/// Evaluation strategy of PackedGateSim — see the file comment. The two
/// modes are observably identical; EventDriven trades memory (per-cell
/// output caches, dirty sets) for skipping quiescent fanout cones.
enum class EvalMode : std::uint8_t { FullSweep, EventDriven };

/// Work counters of one PackedGateSim, accumulated across eval()/tick()
/// passes until reset_stats(). The activity factor they expose is the
/// quantity the event-driven mode exploits: cell_evals / sweep_cell_evals
/// is the fraction of the design that actually switched.
struct SimStats {
  std::uint64_t eval_passes = 0;      ///< eval() calls (tick() counts one)
  std::uint64_t cell_evals = 0;       ///< combinational cells evaluated
  std::uint64_t sweep_cell_evals = 0; ///< cells a full sweep would evaluate

  /// Fraction of gate evaluations actually performed (1.0 in FullSweep
  /// mode; the activity factor in EventDriven mode).
  [[nodiscard]] double activity() const noexcept {
    return sweep_cell_evals == 0
               ? 1.0
               : static_cast<double>(cell_evals) /
                     static_cast<double>(sweep_cell_evals);
  }
};

/// Simulates 64 independent instances of one Netlist per pass.
class PackedGateSim {
 public:
  /// Number of independent lanes advanced per eval pass.
  static constexpr unsigned kLanes = 64;

  explicit PackedGateSim(Netlist nl,
                         EvalMode mode = EvalMode::FullSweep);

  /// Shares an already-levelized design (e.g. with a scalar GateSim).
  explicit PackedGateSim(std::shared_ptr<const LevelizedNetlist> lev,
                         EvalMode mode = EvalMode::FullSweep);

  [[nodiscard]] const Netlist& design() const noexcept {
    return lev_->netlist();
  }
  [[nodiscard]] const std::shared_ptr<const LevelizedNetlist>& levelized()
      const noexcept {
    return lev_;
  }

  /// Switches evaluation strategy. Safe at any point: the first eval()
  /// after enabling EventDriven runs one full sweep to prime the per-cell
  /// caches, then goes incremental.
  void set_mode(EvalMode mode);
  [[nodiscard]] EvalMode mode() const noexcept { return mode_; }

  /// Work counters since construction or reset_stats().
  [[nodiscard]] const SimStats& stats() const noexcept { return stats_; }
  void reset_stats() noexcept { stats_ = SimStats{}; }

  /// Sets every flip-flop lane to \p state and every input lane to X.
  void reset(Logic4 state = Logic4::Zero);

  /// Drives all 64 lanes of a primary input.
  void set_input(const std::string& name, Logic64 v);
  void set_input(const std::string& name, Logic4 v) {
    set_input(name, word_broadcast(v));
  }
  void set_input_index(std::size_t index, Logic64 v);

  /// Drives one lane of a primary input.
  void set_input_lane(std::size_t index, unsigned lane, Logic4 v);

  /// Propagates combinational logic; one levelized pass over all lanes.
  void eval();

  /// Rising clock edge in every lane: DFFs capture, then re-eval.
  void tick();

  [[nodiscard]] Logic64 output(const std::string& name) const;
  [[nodiscard]] Logic64 output_index(std::size_t index) const;

  /// Raw net inspection (post-eval).
  [[nodiscard]] Logic64 net_value(NetId net) const {
    return net_val_.at(net);
  }

  [[nodiscard]] std::size_t dff_count() const noexcept {
    return lev_->dff_cells().size();
  }
  [[nodiscard]] Logic64 dff_state(std::size_t i) const {
    return dff_state_.at(i);
  }
  void set_dff_state(std::size_t i, Logic64 v);
  void set_dff_state(std::size_t i, Logic4 v) {
    set_dff_state(i, word_broadcast(v));
  }
  void set_dff_lane(std::size_t i, unsigned lane, Logic4 v);

  [[nodiscard]] std::size_t depth() const noexcept { return lev_->depth(); }

  // --- lane-masked fault injection ------------------------------------------

  /// Forces \p net to \p v in the lanes of \p lane_mask during every
  /// subsequent eval(). Forces accumulate: lanes already forced on the
  /// same net are overwritten, other lanes keep their force, so a batch of
  /// 64 single stuck-at faults is 64 calls with one-bit masks (stuck-at-0
  /// and stuck-at-1 on the same net may share a batch).
  void set_force(NetId net, Logic4 v,
                 std::uint64_t lane_mask = ~std::uint64_t{0});

  /// Removes all active forces.
  void clear_forces();

 private:
  [[nodiscard]] bool has_forces() const noexcept { return !forced_.empty(); }
  [[nodiscard]] const Netlist& nl() const noexcept { return lev_->netlist(); }

  Logic64 eval_cell(const Cell& c) const;

  // Event-driven machinery. A "touched" net is a source whose value may
  // have changed since the last pass (input/DFF/force edits); eval()
  // re-derives it, then floods level-ordered dirty cells downstream.
  void prepare_event_state();
  void touch(NetId net);
  [[nodiscard]] Logic64 recompute_net(NetId net) const;
  void schedule_readers(NetId net);
  void eval_full_sweep();
  void eval_event();

  std::shared_ptr<const LevelizedNetlist> lev_;
  EvalMode mode_ = EvalMode::FullSweep;
  SimStats stats_;
  std::vector<Logic64> net_val_;
  std::vector<Logic64> input_val_;
  std::vector<Logic64> dff_state_;
  std::vector<NetId> forced_;               // nets with an active force
  std::vector<Logic64> force_val_;          // per-net forced value
  std::vector<std::uint64_t> force_mask_;   // per-net forced lanes
  std::vector<bool> force_on_;              // per-net force active flag

  // EventDriven state (allocated when the mode is first enabled).
  bool state_valid_ = false;                // cell_out_/net_val_ coherent
  std::vector<Logic64> cell_out_;           // cached comb cell outputs
  std::vector<char> cell_dirty_;            // cell scheduled this pass
  std::vector<std::vector<CellId>> level_bucket_;  // dirty cells per level
  std::vector<NetId> touched_;              // sources edited since eval
  std::vector<char> net_touched_;           // dedup flag for touched_
  // Per-net sweep-seed source, index + 1 (0 = none). DFF outputs override
  // inputs, matching the seeding order of the full sweep.
  std::vector<std::uint32_t> seed_input_;
  std::vector<std::uint32_t> seed_dff_;
};

}  // namespace casbus::netlist
