/// \file packed_gatesim.hpp
/// 64-wide bit-parallel levelized gate-level simulator.
///
/// PackedGateSim is the word-level counterpart of GateSim: every net holds
/// a Logic64 — 64 independent four-state lanes packed into two bit planes
/// (util/logic_word.hpp) — so one levelized pass advances 64 patterns (or,
/// with lane-masked forces, 64 faulty machines). Semantics are lane-wise
/// identical to GateSim; tests/test_packed_sim.cpp cross-checks them over
/// random netlists, patterns and X/Z injections.

#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "netlist/levelize.hpp"
#include "netlist/netlist.hpp"
#include "util/logic_word.hpp"

namespace casbus::netlist {

/// Simulates 64 independent instances of one Netlist per pass.
class PackedGateSim {
 public:
  /// Number of independent lanes advanced per eval pass.
  static constexpr unsigned kLanes = 64;

  explicit PackedGateSim(Netlist nl);

  /// Shares an already-levelized design (e.g. with a scalar GateSim).
  explicit PackedGateSim(std::shared_ptr<const LevelizedNetlist> lev);

  [[nodiscard]] const Netlist& design() const noexcept {
    return lev_->netlist();
  }
  [[nodiscard]] const std::shared_ptr<const LevelizedNetlist>& levelized()
      const noexcept {
    return lev_;
  }

  /// Sets every flip-flop lane to \p state and every input lane to X.
  void reset(Logic4 state = Logic4::Zero);

  /// Drives all 64 lanes of a primary input.
  void set_input(const std::string& name, Logic64 v);
  void set_input(const std::string& name, Logic4 v) {
    set_input(name, word_broadcast(v));
  }
  void set_input_index(std::size_t index, Logic64 v);

  /// Drives one lane of a primary input.
  void set_input_lane(std::size_t index, unsigned lane, Logic4 v);

  /// Propagates combinational logic; one levelized pass over all lanes.
  void eval();

  /// Rising clock edge in every lane: DFFs capture, then re-eval.
  void tick();

  [[nodiscard]] Logic64 output(const std::string& name) const;
  [[nodiscard]] Logic64 output_index(std::size_t index) const;

  /// Raw net inspection (post-eval).
  [[nodiscard]] Logic64 net_value(NetId net) const {
    return net_val_.at(net);
  }

  [[nodiscard]] std::size_t dff_count() const noexcept {
    return lev_->dff_cells().size();
  }
  [[nodiscard]] Logic64 dff_state(std::size_t i) const {
    return dff_state_.at(i);
  }
  void set_dff_state(std::size_t i, Logic64 v);
  void set_dff_state(std::size_t i, Logic4 v) {
    set_dff_state(i, word_broadcast(v));
  }
  void set_dff_lane(std::size_t i, unsigned lane, Logic4 v);

  [[nodiscard]] std::size_t depth() const noexcept { return lev_->depth(); }

  // --- lane-masked fault injection ------------------------------------------

  /// Forces \p net to \p v in the lanes of \p lane_mask during every
  /// subsequent eval(). Forces accumulate: lanes already forced on the
  /// same net are overwritten, other lanes keep their force, so a batch of
  /// 64 single stuck-at faults is 64 calls with one-bit masks (stuck-at-0
  /// and stuck-at-1 on the same net may share a batch).
  void set_force(NetId net, Logic4 v,
                 std::uint64_t lane_mask = ~std::uint64_t{0});

  /// Removes all active forces.
  void clear_forces();

 private:
  [[nodiscard]] bool has_forces() const noexcept { return !forced_.empty(); }
  [[nodiscard]] const Netlist& nl() const noexcept { return lev_->netlist(); }

  Logic64 eval_cell(const Cell& c) const;

  std::shared_ptr<const LevelizedNetlist> lev_;
  std::vector<Logic64> net_val_;
  std::vector<Logic64> input_val_;
  std::vector<Logic64> dff_state_;
  std::vector<NetId> forced_;               // nets with an active force
  std::vector<Logic64> force_val_;          // per-net forced value
  std::vector<std::uint64_t> force_mask_;   // per-net forced lanes
  std::vector<bool> force_on_;              // per-net force active flag
};

}  // namespace casbus::netlist
