#include "netlist/levelize.hpp"

#include <algorithm>
#include <queue>
#include <sstream>
#include <utility>

// Deliberate upward dependency (cpp-only, no header cycle), following the
// sched -> explore precedent in sched/scheduler.cpp: when levelization
// fails, the error should name the nets on the offending loop, and the
// cycle extractor lives in the verification layer. The casbus library is a
// single archive; if netlist ever needs to stand alone, this reporter call
// is the one seam to cut.
#include "verify/netlist_lint.hpp"

namespace casbus::netlist {

LevelizedNetlist::LevelizedNetlist(Netlist nl) : nl_(std::move(nl)) {
  nl_.validate();
  net_is_tri_.assign(nl_.net_count(), false);
  for (const Cell& c : nl_.cells())
    if (c.kind == CellKind::Tribuf) net_is_tri_[c.out] = true;

  for (CellId id = 0; id < nl_.cell_count(); ++id)
    if (is_sequential(nl_.cell(id).kind)) dff_cells_.push_back(id);

  for (std::size_t i = 0; i < nl_.inputs().size(); ++i)
    input_index_.emplace(nl_.inputs()[i].name, i);
  for (std::size_t i = 0; i < nl_.outputs().size(); ++i)
    output_index_.emplace(nl_.outputs()[i].name, i);

  levelize();
}

void LevelizedNetlist::levelize() {
  // Kahn's algorithm over combinational cells. A net is "ready" when all of
  // its drivers have been evaluated; source nets (primary inputs, DFF
  // outputs, undriven nets) are ready from the start.
  const std::size_t n_nets = nl_.net_count();
  std::vector<int> pending_drivers(n_nets, 0);
  std::vector<std::vector<CellId>>& readers = net_readers_;
  readers.assign(n_nets, {});
  net_comb_drivers_.assign(n_nets, {});
  std::vector<int> cell_missing(nl_.cell_count(), 0);
  std::vector<std::size_t>& cell_level = cell_level_;
  cell_level.assign(nl_.cell_count(), 0);
  std::vector<std::size_t> net_level(n_nets, 0);

  for (CellId id = 0; id < nl_.cell_count(); ++id) {
    const Cell& c = nl_.cell(id);
    if (is_sequential(c.kind)) continue;  // DFF outputs are sources
    ++pending_drivers[c.out];
    net_comb_drivers_[c.out].push_back(id);
    const int n_in = fanin(c.kind);
    for (int i = 0; i < n_in; ++i)
      readers[c.in[static_cast<std::size_t>(i)]].push_back(id);
  }
  for (CellId id = 0; id < nl_.cell_count(); ++id) {
    const Cell& c = nl_.cell(id);
    if (is_sequential(c.kind)) continue;
    int missing = 0;
    const int n_in = fanin(c.kind);
    for (int i = 0; i < n_in; ++i)
      if (pending_drivers[c.in[static_cast<std::size_t>(i)]] > 0) ++missing;
    cell_missing[id] = missing;
  }

  std::queue<CellId> ready;
  for (CellId id = 0; id < nl_.cell_count(); ++id) {
    const Cell& c = nl_.cell(id);
    if (!is_sequential(c.kind) && cell_missing[id] == 0) ready.push(id);
  }

  comb_order_.clear();
  while (!ready.empty()) {
    const CellId id = ready.front();
    ready.pop();
    comb_order_.push_back(id);
    const Cell& c = nl_.cell(id);
    std::size_t lvl = 0;
    const int n_in = fanin(c.kind);
    for (int i = 0; i < n_in; ++i)
      lvl = std::max(lvl, net_level[c.in[static_cast<std::size_t>(i)]]);
    cell_level[id] = lvl + 1;
    depth_ = std::max(depth_, cell_level[id]);

    net_level[c.out] = std::max(net_level[c.out], cell_level[id]);
    if (--pending_drivers[c.out] == 0) {
      for (CellId r : readers[c.out])
        if (--cell_missing[r] == 0) ready.push(r);
    }
  }

  std::size_t comb_cells = 0;
  for (const Cell& c : nl_.cells())
    if (!is_sequential(c.kind)) ++comb_cells;
  if (comb_order_.size() != comb_cells) {
    std::ostringstream os;
    os << "combinational cycle in netlist '" << nl_.name() << "': "
       << (comb_cells - comb_order_.size()) << " cells unplaceable";
    const std::string cycle = verify::describe_comb_cycle(nl_);
    if (!cycle.empty()) os << "; " << cycle;
    throw SimulationError(os.str());
  }
}

std::size_t LevelizedNetlist::input_index(const std::string& name) const {
  const auto it = input_index_.find(name);
  CASBUS_REQUIRE(it != input_index_.end(), "unknown primary input: " + name);
  return it->second;
}

std::size_t LevelizedNetlist::output_index(const std::string& name) const {
  const auto it = output_index_.find(name);
  CASBUS_REQUIRE(it != output_index_.end(),
                 "unknown primary output: " + name);
  return it->second;
}

std::shared_ptr<const LevelizedNetlist> levelize(Netlist nl) {
  return std::make_shared<const LevelizedNetlist>(std::move(nl));
}

}  // namespace casbus::netlist
