#include "netlist/packed_gatesim.hpp"

#include <utility>

namespace casbus::netlist {

PackedGateSim::PackedGateSim(Netlist nl, EvalMode mode)
    : PackedGateSim(std::make_shared<const LevelizedNetlist>(std::move(nl)),
                    mode) {}

PackedGateSim::PackedGateSim(std::shared_ptr<const LevelizedNetlist> lev,
                             EvalMode mode)
    : lev_(std::move(lev)), mode_(mode) {
  CASBUS_REQUIRE(lev_ != nullptr, "PackedGateSim: null levelized netlist");
  net_val_.assign(nl().net_count(), kWordAllX);
  input_val_.assign(nl().inputs().size(), kWordAllX);
  dff_state_.assign(lev_->dff_cells().size(), kWordAllZero);
  if (mode_ == EvalMode::EventDriven) prepare_event_state();
}

void PackedGateSim::set_mode(EvalMode mode) {
  if (mode == mode_) return;
  mode_ = mode;
  // The next eval() runs one priming sweep; incremental state built under
  // the old mode is stale either way.
  state_valid_ = false;
  if (mode_ == EvalMode::EventDriven) prepare_event_state();
}

void PackedGateSim::prepare_event_state() {
  if (!cell_out_.empty()) return;  // already allocated
  cell_out_.assign(nl().cell_count(), kWordAllX);
  cell_dirty_.assign(nl().cell_count(), 0);
  level_bucket_.assign(lev_->depth() + 1, {});
  net_touched_.assign(nl().net_count(), 0);
  // Seed-source maps mirror the sweep's seeding order: inputs overwrite
  // the tri/X default, DFF outputs overwrite inputs; within each group a
  // later index wins (same as the sweep's overwrite loop).
  seed_input_.assign(nl().net_count(), 0);
  seed_dff_.assign(nl().net_count(), 0);
  for (std::size_t i = 0; i < nl().inputs().size(); ++i)
    seed_input_[nl().inputs()[i].net] = static_cast<std::uint32_t>(i) + 1;
  const auto& dffs = lev_->dff_cells();
  for (std::size_t i = 0; i < dffs.size(); ++i)
    seed_dff_[nl().cell(dffs[i]).out] = static_cast<std::uint32_t>(i) + 1;
}

void PackedGateSim::touch(NetId net) {
  if (net_touched_.empty() || net_touched_[net]) return;
  net_touched_[net] = 1;
  touched_.push_back(net);
}

void PackedGateSim::reset(Logic4 state) {
  dff_state_.assign(lev_->dff_cells().size(), word_broadcast(state));
  input_val_.assign(nl().inputs().size(), kWordAllX);
  net_val_.assign(nl().net_count(), kWordAllX);
  state_valid_ = false;
}

void PackedGateSim::set_input(const std::string& name, Logic64 v) {
  set_input_index(lev_->input_index(name), v);
}

void PackedGateSim::set_input_index(std::size_t index, Logic64 v) {
  CASBUS_REQUIRE(index < input_val_.size(), "input index out of range");
  if (input_val_[index] == v) return;
  input_val_[index] = v;
  touch(nl().inputs()[index].net);
}

void PackedGateSim::set_input_lane(std::size_t index, unsigned lane,
                                   Logic4 v) {
  CASBUS_REQUIRE(index < input_val_.size(), "input index out of range");
  CASBUS_REQUIRE(lane < kLanes, "input lane out of range");
  set_input_index(index, word_set_lane(input_val_[index], lane, v));
}

Logic64 PackedGateSim::eval_cell(const Cell& c) const {
  const auto in = [&](int i) {
    return net_val_[c.in[static_cast<std::size_t>(i)]];
  };
  switch (c.kind) {
    case CellKind::Const0: return kWordAllZero;
    case CellKind::Const1: return kWordAllOne;
    case CellKind::Buf: return word_buf(in(0));
    case CellKind::Not: return word_not(in(0));
    case CellKind::And2: return word_and(in(0), in(1));
    case CellKind::Or2: return word_or(in(0), in(1));
    case CellKind::Nand2: return word_not(word_and(in(0), in(1)));
    case CellKind::Nor2: return word_not(word_or(in(0), in(1)));
    case CellKind::Xor2: return word_xor(in(0), in(1));
    case CellKind::Xnor2: return word_xnor(in(0), in(1));
    case CellKind::Mux2: return word_mux(in(2), in(0), in(1));
    case CellKind::Tribuf: return word_tribuf(in(1), in(0));
    case CellKind::Dff:
    case CellKind::Dffe: break;  // handled in tick()
  }
  CASBUS_ASSERT(false, "eval_cell on sequential cell");
  return kWordAllX;
}

void PackedGateSim::eval() {
  ++stats_.eval_passes;
  stats_.sweep_cell_evals += lev_->comb_order().size();
  if (mode_ == EvalMode::EventDriven && state_valid_) {
    eval_event();
    return;
  }
  eval_full_sweep();
}

void PackedGateSim::eval_full_sweep() {
  // Seed source nets exactly as the scalar simulator does, lane-wise:
  // tri-state nets start at Z, everything else at X, then primary inputs
  // and DFF outputs overwrite their nets and forces overwrite their lanes.
  const auto& dffs = lev_->dff_cells();
  for (NetId n = 0; n < net_val_.size(); ++n)
    net_val_[n] = lev_->net_is_tri(n) ? kWordAllZ : kWordAllX;
  for (std::size_t i = 0; i < nl().inputs().size(); ++i)
    net_val_[nl().inputs()[i].net] = input_val_[i];
  for (std::size_t i = 0; i < dffs.size(); ++i)
    net_val_[nl().cell(dffs[i]).out] = dff_state_[i];

  for (const NetId n : forced_)
    net_val_[n] = word_blend(net_val_[n], force_val_[n], force_mask_[n]);

  const bool caching = mode_ == EvalMode::EventDriven;
  for (const CellId id : lev_->comb_order()) {
    const Cell& c = nl().cell(id);
    Logic64 v = eval_cell(c);
    // The event path rebuilds nets from raw driver outputs, so the cache
    // holds the pre-resolve, pre-force value.
    if (caching) cell_out_[id] = v;
    if (lev_->net_is_tri(c.out)) v = word_resolve(net_val_[c.out], v);
    // Stuck lanes stay stuck: the forced value wins over the driver.
    if (has_forces() && force_on_[c.out])
      v = word_blend(v, force_val_[c.out], force_mask_[c.out]);
    net_val_[c.out] = v;
  }
  stats_.cell_evals += lev_->comb_order().size();

  // A sweep makes every cached value coherent; pending touches are moot.
  for (const NetId n : touched_) net_touched_[n] = 0;
  touched_.clear();
  state_valid_ = caching;
}

Logic64 PackedGateSim::recompute_net(NetId net) const {
  const auto& drivers = lev_->comb_drivers(net);
  Logic64 v;
  if (!lev_->net_is_tri(net) && !drivers.empty()) {
    // Single combinational driver (validate() forbids non-Tribuf sharing);
    // its output overwrites any seed, exactly as in the sweep.
    v = cell_out_[drivers.front()];
  } else {
    if (seed_dff_[net] != 0) {
      v = dff_state_[seed_dff_[net] - 1];
    } else if (seed_input_[net] != 0) {
      v = input_val_[seed_input_[net] - 1];
    } else {
      v = lev_->net_is_tri(net) ? kWordAllZ : kWordAllX;
    }
    // Wired resolution is a commutative OR of planes, so folding cached
    // driver outputs in any order matches the sweep byte-for-byte.
    for (const CellId d : drivers) v = word_resolve(v, cell_out_[d]);
  }
  if (!force_on_.empty() && force_on_[net])
    v = word_blend(v, force_val_[net], force_mask_[net]);
  return v;
}

void PackedGateSim::schedule_readers(NetId net) {
  for (const CellId r : lev_->readers(net)) {
    if (cell_dirty_[r]) continue;
    cell_dirty_[r] = 1;
    level_bucket_[lev_->cell_level(r)].push_back(r);
  }
}

void PackedGateSim::eval_event() {
  // Re-derive every touched source net; changed ones dirty their readers.
  for (const NetId n : touched_) {
    net_touched_[n] = 0;
    const Logic64 v = recompute_net(n);
    if (v != net_val_[n]) {
      net_val_[n] = v;
      schedule_readers(n);
    }
  }
  touched_.clear();

  // Flood levels in ascending order. A reader's level is strictly above
  // every driver of its input nets (LevelizedNetlist::cell_level), so a
  // cell is evaluated at most once per pass, after all its inputs settled.
  for (std::size_t lvl = 1; lvl < level_bucket_.size(); ++lvl) {
    std::vector<CellId>& bucket = level_bucket_[lvl];
    // schedule_readers only appends to strictly higher buckets, so plain
    // index iteration is safe even though the vector family is growing.
    for (std::size_t i = 0; i < bucket.size(); ++i) {
      const CellId id = bucket[i];
      cell_dirty_[id] = 0;
      const Logic64 out = eval_cell(nl().cell(id));
      ++stats_.cell_evals;
      if (out == cell_out_[id]) continue;
      cell_out_[id] = out;
      const NetId n = nl().cell(id).out;
      const Logic64 v = recompute_net(n);
      if (v != net_val_[n]) {
        net_val_[n] = v;
        schedule_readers(n);
      }
    }
    bucket.clear();
  }
}

void PackedGateSim::set_force(NetId net, Logic4 v, std::uint64_t lane_mask) {
  CASBUS_REQUIRE(net < nl().net_count(), "set_force: invalid net");
  if (force_on_.empty()) {
    force_on_.assign(nl().net_count(), false);
    force_val_.assign(nl().net_count(), kWordAllX);
    force_mask_.assign(nl().net_count(), 0);
  }
  if (!force_on_[net]) forced_.push_back(net);
  force_on_[net] = true;
  force_val_[net] = word_blend(force_val_[net], word_broadcast(v), lane_mask);
  force_mask_[net] |= lane_mask;
  touch(net);
}

void PackedGateSim::clear_forces() {
  for (const NetId n : forced_) {
    force_on_[n] = false;
    force_mask_[n] = 0;
    touch(n);
  }
  forced_.clear();
}

void PackedGateSim::tick() {
  const auto& dffs = lev_->dff_cells();
  std::vector<Logic64> next(dffs.size());
  for (std::size_t i = 0; i < dffs.size(); ++i) {
    const Cell& c = nl().cell(dffs[i]);
    const Logic64 d = net_val_[c.in[0]];
    if (c.kind == CellKind::Dff) {
      next[i] = word_dff_capture(d);
    } else {  // Dffe: capture where en=1, hold where en=0, X elsewhere
      const Logic64 en = net_val_[c.in[1]];
      const std::uint64_t e1 = word_is1(en);
      const std::uint64_t e0 = word_is0(en);
      const Logic64 cap = word_dff_capture(d);
      next[i] = {(e1 & cap.p0) | (e0 & dff_state_[i].p0) | ~(e0 | e1),
                 (e1 & cap.p1) | (e0 & dff_state_[i].p1) | ~(e0 | e1)};
    }
    if (!(next[i] == dff_state_[i])) touch(c.out);
  }
  dff_state_ = std::move(next);
  eval();
}

Logic64 PackedGateSim::output(const std::string& name) const {
  return net_val_[nl().outputs()[lev_->output_index(name)].net];
}

Logic64 PackedGateSim::output_index(std::size_t index) const {
  CASBUS_REQUIRE(index < nl().outputs().size(), "output index out of range");
  return net_val_[nl().outputs()[index].net];
}

void PackedGateSim::set_dff_state(std::size_t i, Logic64 v) {
  CASBUS_REQUIRE(i < dff_state_.size(), "dff index out of range");
  if (dff_state_[i] == v) return;
  dff_state_[i] = v;
  touch(nl().cell(lev_->dff_cells()[i]).out);
}

void PackedGateSim::set_dff_lane(std::size_t i, unsigned lane, Logic4 v) {
  CASBUS_REQUIRE(i < dff_state_.size(), "dff index out of range");
  CASBUS_REQUIRE(lane < kLanes, "dff lane out of range");
  set_dff_state(i, word_set_lane(dff_state_[i], lane, v));
}

}  // namespace casbus::netlist
