#include "netlist/packed_gatesim.hpp"

#include <utility>

namespace casbus::netlist {

PackedGateSim::PackedGateSim(Netlist nl)
    : PackedGateSim(std::make_shared<const LevelizedNetlist>(std::move(nl))) {
}

PackedGateSim::PackedGateSim(std::shared_ptr<const LevelizedNetlist> lev)
    : lev_(std::move(lev)) {
  CASBUS_REQUIRE(lev_ != nullptr, "PackedGateSim: null levelized netlist");
  net_val_.assign(nl().net_count(), kWordAllX);
  input_val_.assign(nl().inputs().size(), kWordAllX);
  dff_state_.assign(lev_->dff_cells().size(), kWordAllZero);
}

void PackedGateSim::reset(Logic4 state) {
  dff_state_.assign(lev_->dff_cells().size(), word_broadcast(state));
  input_val_.assign(nl().inputs().size(), kWordAllX);
  net_val_.assign(nl().net_count(), kWordAllX);
}

void PackedGateSim::set_input(const std::string& name, Logic64 v) {
  input_val_[lev_->input_index(name)] = v;
}

void PackedGateSim::set_input_index(std::size_t index, Logic64 v) {
  CASBUS_REQUIRE(index < input_val_.size(), "input index out of range");
  input_val_[index] = v;
}

void PackedGateSim::set_input_lane(std::size_t index, unsigned lane,
                                   Logic4 v) {
  CASBUS_REQUIRE(index < input_val_.size(), "input index out of range");
  CASBUS_REQUIRE(lane < kLanes, "input lane out of range");
  input_val_[index] = word_set_lane(input_val_[index], lane, v);
}

Logic64 PackedGateSim::eval_cell(const Cell& c) const {
  const auto in = [&](int i) {
    return net_val_[c.in[static_cast<std::size_t>(i)]];
  };
  switch (c.kind) {
    case CellKind::Const0: return kWordAllZero;
    case CellKind::Const1: return kWordAllOne;
    case CellKind::Buf: return word_buf(in(0));
    case CellKind::Not: return word_not(in(0));
    case CellKind::And2: return word_and(in(0), in(1));
    case CellKind::Or2: return word_or(in(0), in(1));
    case CellKind::Nand2: return word_not(word_and(in(0), in(1)));
    case CellKind::Nor2: return word_not(word_or(in(0), in(1)));
    case CellKind::Xor2: return word_xor(in(0), in(1));
    case CellKind::Xnor2: return word_xnor(in(0), in(1));
    case CellKind::Mux2: return word_mux(in(2), in(0), in(1));
    case CellKind::Tribuf: return word_tribuf(in(1), in(0));
    case CellKind::Dff:
    case CellKind::Dffe: break;  // handled in tick()
  }
  CASBUS_ASSERT(false, "eval_cell on sequential cell");
  return kWordAllX;
}

void PackedGateSim::eval() {
  // Seed source nets exactly as the scalar simulator does, lane-wise:
  // tri-state nets start at Z, everything else at X, then primary inputs
  // and DFF outputs overwrite their nets and forces overwrite their lanes.
  const auto& dffs = lev_->dff_cells();
  for (NetId n = 0; n < net_val_.size(); ++n)
    net_val_[n] = lev_->net_is_tri(n) ? kWordAllZ : kWordAllX;
  for (std::size_t i = 0; i < nl().inputs().size(); ++i)
    net_val_[nl().inputs()[i].net] = input_val_[i];
  for (std::size_t i = 0; i < dffs.size(); ++i)
    net_val_[nl().cell(dffs[i]).out] = dff_state_[i];

  for (const NetId n : forced_)
    net_val_[n] = word_blend(net_val_[n], force_val_[n], force_mask_[n]);

  for (const CellId id : lev_->comb_order()) {
    const Cell& c = nl().cell(id);
    Logic64 v = eval_cell(c);
    if (lev_->net_is_tri(c.out)) v = word_resolve(net_val_[c.out], v);
    // Stuck lanes stay stuck: the forced value wins over the driver.
    if (has_forces() && force_on_[c.out])
      v = word_blend(v, force_val_[c.out], force_mask_[c.out]);
    net_val_[c.out] = v;
  }
}

void PackedGateSim::set_force(NetId net, Logic4 v, std::uint64_t lane_mask) {
  CASBUS_REQUIRE(net < nl().net_count(), "set_force: invalid net");
  if (force_on_.empty()) {
    force_on_.assign(nl().net_count(), false);
    force_val_.assign(nl().net_count(), kWordAllX);
    force_mask_.assign(nl().net_count(), 0);
  }
  if (!force_on_[net]) forced_.push_back(net);
  force_on_[net] = true;
  force_val_[net] = word_blend(force_val_[net], word_broadcast(v), lane_mask);
  force_mask_[net] |= lane_mask;
}

void PackedGateSim::clear_forces() {
  for (const NetId n : forced_) {
    force_on_[n] = false;
    force_mask_[n] = 0;
  }
  forced_.clear();
}

void PackedGateSim::tick() {
  const auto& dffs = lev_->dff_cells();
  std::vector<Logic64> next(dffs.size());
  for (std::size_t i = 0; i < dffs.size(); ++i) {
    const Cell& c = nl().cell(dffs[i]);
    const Logic64 d = net_val_[c.in[0]];
    if (c.kind == CellKind::Dff) {
      next[i] = word_dff_capture(d);
    } else {  // Dffe: capture where en=1, hold where en=0, X elsewhere
      const Logic64 en = net_val_[c.in[1]];
      const std::uint64_t e1 = word_is1(en);
      const std::uint64_t e0 = word_is0(en);
      const Logic64 cap = word_dff_capture(d);
      next[i] = {(e1 & cap.p0) | (e0 & dff_state_[i].p0) | ~(e0 | e1),
                 (e1 & cap.p1) | (e0 & dff_state_[i].p1) | ~(e0 | e1)};
    }
  }
  dff_state_ = std::move(next);
  eval();
}

Logic64 PackedGateSim::output(const std::string& name) const {
  return net_val_[nl().outputs()[lev_->output_index(name)].net];
}

Logic64 PackedGateSim::output_index(std::size_t index) const {
  CASBUS_REQUIRE(index < nl().outputs().size(), "output index out of range");
  return net_val_[nl().outputs()[index].net];
}

void PackedGateSim::set_dff_state(std::size_t i, Logic64 v) {
  CASBUS_REQUIRE(i < dff_state_.size(), "dff index out of range");
  dff_state_[i] = v;
}

void PackedGateSim::set_dff_lane(std::size_t i, unsigned lane, Logic4 v) {
  CASBUS_REQUIRE(i < dff_state_.size(), "dff index out of range");
  CASBUS_REQUIRE(lane < kLanes, "dff lane out of range");
  dff_state_[i] = word_set_lane(dff_state_[i], lane, v);
}

}  // namespace casbus::netlist
