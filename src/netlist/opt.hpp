/// \file opt.hpp
/// Technology-independent logic optimization.
///
/// These passes model what the paper obtained from Synopsys compile: the
/// raw generator output (the "generic VHDL" flow of §3.3) shrinks under
/// constant folding, common-subexpression sharing, buffer collapsing and
/// dead-logic removal. The Table-1 bench reports both raw and optimized
/// cell counts.

#pragma once

#include "netlist/netlist.hpp"

namespace casbus::netlist {

/// Pass selection for optimize().
struct OptOptions {
  bool constant_fold = true;   ///< fold constants, algebraic identities
  bool share_duplicates = true;///< structural CSE with commutative matching
  bool collapse_buffers = true;///< forward Buf outputs to their inputs
  bool dead_cell_elim = true;  ///< drop logic not reaching an output/DFF
  int max_iterations = 32;     ///< fixpoint cap (each pass is monotone)
};

/// Returns an optimized copy of \p in; \p in is left untouched.
/// The result computes the same function on all primary outputs
/// (X/Z-pessimism of Buf clamping aside, which synthesis also discards).
Netlist optimize(const Netlist& in, const OptOptions& options = {});

}  // namespace casbus::netlist
