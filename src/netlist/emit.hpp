/// \file emit.hpp
/// Structural HDL emission.
///
/// The paper's CAS generator "provides a VHDL description of the CAS, which
/// can be synthesized with a commercial synthesis tool" (§3.3). These
/// emitters render any Netlist — in particular generated CASes — as
/// synthesizable structural VHDL-93 or Verilog-2001.

#pragma once

#include <string>

#include "netlist/netlist.hpp"

namespace casbus::netlist {

/// Renders \p nl as a self-contained VHDL-93 entity/architecture pair.
/// Sequential cells produce one clocked process; a `clk` input port is
/// added automatically when the design contains flip-flops. Tri-state
/// drivers map to conditional 'Z' assignments (std_logic resolution).
std::string emit_vhdl(const Netlist& nl);

/// Renders \p nl as a Verilog-2001 module (continuous assigns + one
/// always @(posedge clk) block).
std::string emit_verilog(const Netlist& nl);

/// Makes an arbitrary net/port name a legal HDL identifier
/// (brackets to underscores, leading digit prefixed).
std::string sanitize_identifier(const std::string& name);

}  // namespace casbus::netlist
