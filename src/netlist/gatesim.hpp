/// \file gatesim.hpp
/// Event-free levelized gate-level simulator with 4-state values.
///
/// The simulator is cycle-accurate: `eval()` settles all combinational
/// logic (cells are processed in levelized topological order, so one pass
/// suffices), `tick()` is the rising clock edge updating every flip-flop.
/// Tri-state nets (multiple Tribuf drivers) are resolved with the IEEE-1164
/// rules from util/logic.hpp.
///
/// GateSim advances one pattern per eval pass; PackedGateSim
/// (packed_gatesim.hpp) advances 64. Both share the levelization through
/// LevelizedNetlist, so several simulators of the same design levelize once.

#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "netlist/levelize.hpp"
#include "netlist/netlist.hpp"
#include "util/logic.hpp"

namespace casbus::netlist {

/// Simulates one Netlist instance.
///
/// The simulator owns (a share of) the levelized design, so there is no
/// lifetime coupling with the caller. Construction from a Netlist levelizes
/// the design and throws SimulationError on combinational cycles.
class GateSim {
 public:
  explicit GateSim(Netlist nl);

  /// Shares an already-levelized design with other simulator instances.
  explicit GateSim(std::shared_ptr<const LevelizedNetlist> lev);

  /// Returns the simulated design.
  [[nodiscard]] const Netlist& design() const noexcept {
    return lev_->netlist();
  }

  /// The shared evaluation schedule (reusable by further simulators).
  [[nodiscard]] const std::shared_ptr<const LevelizedNetlist>& levelized()
      const noexcept {
    return lev_;
  }

  /// Sets every flip-flop to \p state and every primary input to X.
  void reset(Logic4 state = Logic4::Zero);

  /// Drives primary input \p name. Throws if the name is unknown.
  void set_input(const std::string& name, Logic4 v);
  void set_input(const std::string& name, bool v) {
    set_input(name, to_logic(v));
  }

  /// Drives primary input by position (order of declaration).
  void set_input_index(std::size_t index, Logic4 v);

  /// Propagates combinational logic; one levelized pass.
  void eval();

  /// Rising clock edge: every DFF captures, then combinational re-eval.
  void tick();

  /// Convenience: eval() has already been called when reading outputs.
  [[nodiscard]] Logic4 output(const std::string& name) const;
  [[nodiscard]] Logic4 output_index(std::size_t index) const;

  /// Raw net inspection (post-eval).
  [[nodiscard]] Logic4 net_value(NetId net) const {
    return net_val_.at(net);
  }

  /// Number of flip-flops, in cell order.
  [[nodiscard]] std::size_t dff_count() const noexcept {
    return lev_->dff_cells().size();
  }
  [[nodiscard]] Logic4 dff_state(std::size_t i) const {
    return dff_state_.at(i);
  }
  void set_dff_state(std::size_t i, Logic4 v);

  /// Combinational depth (max cell level) — reported by the generator
  /// benches as the switch's critical path in gate stages.
  [[nodiscard]] std::size_t depth() const noexcept { return lev_->depth(); }

  // --- fault injection (used by tpg::FaultSimulator) ------------------------

  /// Forces \p net to \p v during every subsequent eval(), modeling a
  /// stuck-at fault at that net. Multiple forces may be active.
  void set_force(NetId net, Logic4 v);

  /// Removes all active forces.
  void clear_forces();

 private:
  [[nodiscard]] bool has_forces() const noexcept { return n_forces_ > 0; }
  [[nodiscard]] const Netlist& nl() const noexcept { return lev_->netlist(); }

  Logic4 eval_cell(const Cell& c) const;

  std::shared_ptr<const LevelizedNetlist> lev_;
  std::vector<Logic4> net_val_;
  std::vector<Logic4> input_val_;
  std::vector<Logic4> dff_state_;
  std::vector<Logic4> cell_out_;     // last computed output per cell
  std::vector<Logic4> force_;      // per-net forced value
  std::vector<bool> force_on_;     // per-net force active flag
  std::size_t n_forces_ = 0;
};

}  // namespace casbus::netlist
