#include "netlist/arith.hpp"

namespace casbus::netlist {

SumCarry add_const_with_carry(NetlistBuilder& b, const std::vector<NetId>& a,
                              std::uint64_t k, bool carry_in) {
  CASBUS_REQUIRE(!a.empty() && a.size() <= 64,
                 "add_const_with_carry: bus width must be in [1, 64]");
  SumCarry out;
  out.sum.reserve(a.size());
  // carry as a net; seeded from the constant carry_in.
  NetId carry = carry_in ? b.const1() : b.const0();
  bool carry_known = true;       // carry is still a compile-time constant
  bool carry_const = carry_in;   // its value while known

  for (std::size_t i = 0; i < a.size(); ++i) {
    const bool kb = ((k >> i) & 1ULL) != 0;
    if (carry_known) {
      // Specialize while the carry is a known constant.
      if (!kb && !carry_const) {
        out.sum.push_back(a[i]);  // s = a, c' = 0
      } else if (kb != carry_const) {
        out.sum.push_back(b.not_(a[i]));  // s = !a, c' = a
        carry = a[i];
        carry_known = false;
      } else {  // kb && carry_const
        out.sum.push_back(a[i]);  // s = a, c' = 1
        carry = b.const1();
        // carry stays known at 1
        carry_const = true;
      }
      continue;
    }
    if (kb) {
      // s = !(a ^ c), c' = a | c
      out.sum.push_back(b.xnor2(a[i], carry));
      carry = b.or2(a[i], carry);
    } else {
      // s = a ^ c, c' = a & c
      out.sum.push_back(b.xor2(a[i], carry));
      carry = b.and2(a[i], carry);
    }
  }
  if (carry_known) carry = carry_const ? b.const1() : b.const0();
  out.carry_out = carry;
  return out;
}

std::vector<NetId> sub_const(NetlistBuilder& b, const std::vector<NetId>& a,
                             std::uint64_t c) {
  // a - c = a + ~c + 1 over the bus width.
  const std::uint64_t mask =
      a.size() >= 64 ? ~0ULL : ((1ULL << a.size()) - 1);
  return add_const_with_carry(b, a, ~c & mask, true).sum;
}

NetId ge_const(NetlistBuilder& b, const std::vector<NetId>& a,
               std::uint64_t c) {
  const std::uint64_t mask =
      a.size() >= 64 ? ~0ULL : ((1ULL << a.size()) - 1);
  if ((c & ~mask) != 0) return b.const0();  // constant exceeds bus range
  if (c == 0) return b.const1();
  // Carry-out of a + ~c + 1 is 1 exactly when a >= c (no borrow).
  return add_const_with_carry(b, a, ~c & mask, true).carry_out;
}

std::vector<NetId> popcount_bus(NetlistBuilder& b,
                                const std::vector<NetId>& xs) {
  if (xs.empty()) return {b.const0()};
  // Column compression: columns[i] holds nets of weight 2^i.
  std::vector<std::vector<NetId>> columns;
  columns.push_back(xs);
  for (std::size_t i = 0; i < columns.size(); ++i) {
    while (columns[i].size() > 1) {
      if (i + 1 >= columns.size()) columns.emplace_back();
      if (columns[i].size() >= 3) {
        // Full adder on three nets of this weight.
        const NetId x = columns[i][columns[i].size() - 1];
        const NetId y = columns[i][columns[i].size() - 2];
        const NetId z = columns[i][columns[i].size() - 3];
        columns[i].resize(columns[i].size() - 3);
        const NetId xy = b.xor2(x, y);
        columns[i].push_back(b.xor2(xy, z));               // sum
        columns[i + 1].push_back(
            b.or2(b.and2(x, y), b.and2(xy, z)));           // carry
      } else {
        // Half adder on two nets.
        const NetId x = columns[i][1];
        const NetId y = columns[i][0];
        columns[i].clear();
        columns[i].push_back(b.xor2(x, y));
        columns[i + 1].push_back(b.and2(x, y));
      }
    }
  }
  std::vector<NetId> out;
  out.reserve(columns.size());
  for (auto& col : columns)
    out.push_back(col.empty() ? b.const0() : col[0]);
  return out;
}

std::vector<NetId> mux_onehot_bus(
    NetlistBuilder& b, const std::vector<NetId>& sel,
    const std::vector<std::vector<NetId>>& data) {
  CASBUS_REQUIRE(sel.size() == data.size(),
                 "mux_onehot_bus: select/data count mismatch");
  CASBUS_REQUIRE(!data.empty(), "mux_onehot_bus: no data inputs");
  const std::size_t width = data[0].size();
  std::vector<NetId> out;
  out.reserve(width);
  for (std::size_t bit = 0; bit < width; ++bit) {
    std::vector<NetId> terms;
    terms.reserve(data.size());
    for (std::size_t i = 0; i < data.size(); ++i) {
      CASBUS_REQUIRE(data[i].size() == width,
                     "mux_onehot_bus: ragged data widths");
      terms.push_back(b.and2(sel[i], data[i][bit]));
    }
    out.push_back(b.or_n(terms));
  }
  return out;
}

}  // namespace casbus::netlist
