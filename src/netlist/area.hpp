/// \file area.hpp
/// Technology-independent area estimation in gate equivalents.
///
/// The paper reports CAS sizes as "# of gates" from Synopsys synthesis onto
/// an unnamed library (Table 1). We substitute a classical gate-equivalent
/// (GE) model: 1 GE = one NAND2. The bench reports GE next to the paper's
/// numbers; absolute values differ by a library-dependent constant but the
/// growth across (N, P) — which drives the paper's trade-off argument — is
/// preserved.

#pragma once

#include "netlist/netlist.hpp"

namespace casbus::netlist {

/// Per-kind cost table.
class AreaModel {
 public:
  /// Classical standard-cell GE figures (NAND2 = 1.0).
  static AreaModel typical();

  /// CMOS transistor-count figures (NAND2 = 4T, DFF = 22T ...), used by the
  /// pass-transistor comparison in §3.3.
  static AreaModel transistors();

  /// Cost of one cell kind.
  [[nodiscard]] double cost(CellKind kind) const {
    return table_.at(static_cast<std::size_t>(kind));
  }
  void set_cost(CellKind kind, double v) {
    table_.at(static_cast<std::size_t>(kind)) = v;
  }

  /// Total cost of a netlist.
  [[nodiscard]] double total(const Netlist& nl) const;

 private:
  std::vector<double> table_ =
      std::vector<double>(static_cast<std::size_t>(CellKind::Dffe) + 1, 0.0);
};

/// Combinational depth and composition summary used in reports.
struct NetlistStats {
  std::size_t cells = 0;
  std::size_t nets = 0;
  std::size_t dffs = 0;
  std::size_t tristate = 0;
  double gate_equivalents = 0.0;
  double transistor_estimate = 0.0;
};

/// Collects summary statistics with the typical area model.
NetlistStats stats_of(const Netlist& nl);

}  // namespace casbus::netlist
