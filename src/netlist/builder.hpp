/// \file builder.hpp
/// Fluent construction of gate-level netlists.
///
/// The builder offers the primitive cells plus the wide operators a
/// synthesis tool would decompose (balanced AND/OR trees, one-hot decoders,
/// N-way multiplexers, equality comparators). The CAS generator builds the
/// entire Figure-3 architecture through this interface.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "netlist/netlist.hpp"

namespace casbus::netlist {

/// Incrementally builds a Netlist; call `take()` to finish.
class NetlistBuilder {
 public:
  explicit NetlistBuilder(std::string design_name);

  /// Creates an unnamed internal net.
  NetId net();

  /// Creates a named internal net (names survive into HDL output).
  NetId net(const std::string& name);

  /// Declares a primary input and returns its net.
  NetId input(const std::string& name);

  /// Declares a primary output fed by \p net.
  void output(const std::string& name, NetId net);

  // --- primitive cells (each returns the output net) -----------------------

  NetId const0();
  NetId const1();
  NetId buf(NetId a);
  NetId not_(NetId a);
  NetId and2(NetId a, NetId b);
  NetId or2(NetId a, NetId b);
  NetId nand2(NetId a, NetId b);
  NetId nor2(NetId a, NetId b);
  NetId xor2(NetId a, NetId b);
  NetId xnor2(NetId a, NetId b);
  /// y = s ? b : a.
  NetId mux2(NetId s, NetId a, NetId b);
  /// Tri-state buffer driving \p onto (created when kNoNet) and returning it;
  /// several tribufs may share one output net.
  NetId tribuf(NetId en, NetId d, NetId onto = kNoNet);
  /// D flip-flop, implicit global clock; returns Q.
  NetId dff(NetId d, const std::string& q_name = {});
  /// Enabled D flip-flop; returns Q.
  NetId dffe(NetId d, NetId en, const std::string& q_name = {});
  /// D flip-flop writing the pre-allocated net \p q. Allocating q before the
  /// logic that reads it is how sequential feedback loops are built.
  void dff_into(NetId d, NetId q);
  /// Enabled variant of dff_into.
  void dffe_into(NetId d, NetId en, NetId q);

  // --- wide operators -------------------------------------------------------

  /// Balanced AND tree; returns const1 for an empty list.
  NetId and_n(const std::vector<NetId>& xs);
  /// Balanced OR tree; returns const0 for an empty list.
  NetId or_n(const std::vector<NetId>& xs);

  /// y = 1 when the code nets equal \p value (LSB first): an AND of
  /// true/complemented literals — one product term of a decoder PLA.
  NetId eq_const(const std::vector<NetId>& code, std::uint64_t value);

  /// Full one-hot decoder: output[i] = (code == i), for i in [0, count).
  std::vector<NetId> decoder(const std::vector<NetId>& code,
                             std::size_t count);

  /// N-way multiplexer built as a Mux2 tree: returns data[sel].
  /// \p sel is LSB-first; data.size() need not be a power of two.
  NetId mux_n(const std::vector<NetId>& sel, const std::vector<NetId>& data);

  /// One-hot multiplexer: AND-OR of (onehot[i] & data[i]).
  NetId mux_onehot(const std::vector<NetId>& onehot,
                   const std::vector<NetId>& data);

  /// Shift-register stage count helper: chains \p n DFFs from \p d,
  /// returning all stage outputs (q[0] is the first stage).
  std::vector<NetId> shift_chain(NetId d, std::size_t n,
                                 const std::string& prefix = {});

  /// Low-level cell copy with explicit pins — the primitive behind netlist
  /// composition (netlist/compose.hpp). Inputs beyond the kind's fan-in
  /// must be kNoNet; \p out must be an already-created net.
  void copy_cell(CellKind kind, NetId a, NetId b, NetId c, NetId out);

  /// Finishes construction, validates, and returns the netlist.
  /// The builder must not be used afterwards.
  Netlist take();

  /// Cells added so far (diagnostic).
  [[nodiscard]] std::size_t cell_count() const noexcept {
    return nl_.cells_.size();
  }

 private:
  NetId add_cell(CellKind kind, NetId a = kNoNet, NetId b = kNoNet,
                 NetId c = kNoNet, NetId out = kNoNet);

  Netlist nl_;
  NetId const0_ = kNoNet;  // cached constant drivers
  NetId const1_ = kNoNet;
  bool taken_ = false;
};

}  // namespace casbus::netlist
