/// \file netlist.hpp
/// Technology-independent gate-level netlist representation.
///
/// This module is the substitute for the commercial synthesis flow the paper
/// used (Synopsys Design Analyzer): the CAS generator in `src/core` emits
/// structural netlists made of the primitive cells below, which can then be
/// simulated (`GateSim`), optimized (`optimize()`), costed (`AreaModel`) and
/// exported to VHDL/Verilog (`emit_vhdl` / `emit_verilog`).

#pragma once

#include <array>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "util/error.hpp"

namespace casbus::netlist {

/// Index of a net inside a Netlist.
using NetId = std::uint32_t;

/// Sentinel for "no net".
inline constexpr NetId kNoNet = std::numeric_limits<NetId>::max();

/// Index of a cell inside a Netlist.
using CellId = std::uint32_t;

/// Primitive cell library.
///
/// Fan-in is fixed per kind (see `fanin()`); wider functions are built by
/// the NetlistBuilder out of these primitives, mirroring what a synthesis
/// tool would map to a standard-cell library.
enum class CellKind : std::uint8_t {
  Const0,  ///< constant driver 0 (no inputs)
  Const1,  ///< constant driver 1 (no inputs)
  Buf,     ///< y = a
  Not,     ///< y = !a
  And2,    ///< y = a & b
  Or2,     ///< y = a | b
  Nand2,   ///< y = !(a & b)
  Nor2,    ///< y = !(a | b)
  Xor2,    ///< y = a ^ b
  Xnor2,   ///< y = !(a ^ b)
  Mux2,    ///< y = s ? b : a       (inputs: a, b, s)
  Tribuf,  ///< y = en ? d : Z      (inputs: d, en) — may share nets
  Dff,     ///< q <= d on clock     (inputs: d) — implicit global clock
  Dffe,    ///< q <= en ? d : q     (inputs: d, en)
};

/// Number of input pins of \p kind.
constexpr int fanin(CellKind kind) noexcept {
  switch (kind) {
    case CellKind::Const0:
    case CellKind::Const1: return 0;
    case CellKind::Buf:
    case CellKind::Not:
    case CellKind::Dff: return 1;
    case CellKind::And2:
    case CellKind::Or2:
    case CellKind::Nand2:
    case CellKind::Nor2:
    case CellKind::Xor2:
    case CellKind::Xnor2:
    case CellKind::Tribuf:
    case CellKind::Dffe: return 2;
    case CellKind::Mux2: return 3;
  }
  return 0;
}

/// True for the sequential cells (Dff, Dffe).
constexpr bool is_sequential(CellKind kind) noexcept {
  return kind == CellKind::Dff || kind == CellKind::Dffe;
}

/// Short lower-case mnemonic ("nand2", "dff", ...).
const char* kind_name(CellKind kind) noexcept;

/// One instantiated primitive.
struct Cell {
  CellKind kind = CellKind::Buf;
  std::array<NetId, 3> in = {kNoNet, kNoNet, kNoNet};
  NetId out = kNoNet;
};

/// A named top-level port.
struct Port {
  std::string name;
  NetId net = kNoNet;
};

/// Plain-data form of a design, used by transformation passes (optimize,
/// generators) to assemble results which are then validated by
/// Netlist::from_raw.
struct RawNetlist {
  std::string name;
  std::size_t n_nets = 0;
  std::vector<Cell> cells;
  std::vector<Port> inputs;
  std::vector<Port> outputs;
  std::vector<std::pair<NetId, std::string>> net_names;
};

/// Gate-level design: nets, cells and primary ports.
///
/// Construction goes through NetlistBuilder; Netlist itself only offers
/// queries and validation. Nets may have multiple drivers only when every
/// driver is a Tribuf (tri-state bus, as used on the CAS core-side pins).
class Netlist {
 public:
  /// Assembles a netlist from its plain-data form; validates structure.
  static Netlist from_raw(RawNetlist raw);

  /// Design name (used by the HDL emitters as the entity/module name).
  [[nodiscard]] const std::string& name() const noexcept { return name_; }

  [[nodiscard]] std::size_t net_count() const noexcept { return n_nets_; }
  [[nodiscard]] std::size_t cell_count() const noexcept {
    return cells_.size();
  }

  [[nodiscard]] const std::vector<Cell>& cells() const noexcept {
    return cells_;
  }
  [[nodiscard]] const Cell& cell(CellId id) const { return cells_.at(id); }

  [[nodiscard]] const std::vector<Port>& inputs() const noexcept {
    return inputs_;
  }
  [[nodiscard]] const std::vector<Port>& outputs() const noexcept {
    return outputs_;
  }

  /// All (net, name) naming pairs assigned during construction.
  [[nodiscard]] const std::vector<std::pair<NetId, std::string>>& net_names()
      const noexcept {
    return net_names_;
  }

  /// Net name if one was assigned, otherwise "n<id>".
  [[nodiscard]] std::string net_name(NetId id) const;

  /// All cells driving \p net (usually one; several for tri-state nets).
  [[nodiscard]] std::vector<CellId> drivers_of(NetId net) const;

  /// Counts cells of each kind, indexed by static_cast<size_t>(CellKind).
  [[nodiscard]] std::vector<std::size_t> kind_histogram() const;

  /// Number of sequential cells.
  [[nodiscard]] std::size_t dff_count() const noexcept;

  /// Throws InvariantError when the structure is ill-formed: dangling pins,
  /// non-tristate multi-drivers, outputs reading undriven nets.
  void validate() const;

  /// Copies the design back into its plain-data form — the inverse of
  /// from_raw. Transformation passes and the structural linter
  /// (verify/netlist_lint.hpp) take RawNetlist so they can also accept
  /// designs from_raw would reject; to_raw lets a validated design enter
  /// that pipeline (e.g. tests that break a known-good netlist one rule at
  /// a time and lint the wreckage).
  [[nodiscard]] RawNetlist to_raw() const;

 private:
  friend class NetlistBuilder;

  std::string name_ = "design";
  std::size_t n_nets_ = 0;
  std::vector<Cell> cells_;
  std::vector<Port> inputs_;
  std::vector<Port> outputs_;
  std::vector<std::pair<NetId, std::string>> net_names_;
};

}  // namespace casbus::netlist
