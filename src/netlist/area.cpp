#include "netlist/area.hpp"

namespace casbus::netlist {

AreaModel AreaModel::typical() {
  AreaModel m;
  m.set_cost(CellKind::Const0, 0.0);
  m.set_cost(CellKind::Const1, 0.0);
  m.set_cost(CellKind::Buf, 0.75);
  m.set_cost(CellKind::Not, 0.5);
  m.set_cost(CellKind::And2, 1.5);
  m.set_cost(CellKind::Or2, 1.5);
  m.set_cost(CellKind::Nand2, 1.0);
  m.set_cost(CellKind::Nor2, 1.0);
  m.set_cost(CellKind::Xor2, 2.5);
  m.set_cost(CellKind::Xnor2, 2.5);
  m.set_cost(CellKind::Mux2, 2.25);
  m.set_cost(CellKind::Tribuf, 1.5);
  m.set_cost(CellKind::Dff, 5.5);
  m.set_cost(CellKind::Dffe, 7.0);
  return m;
}

AreaModel AreaModel::transistors() {
  AreaModel m;
  m.set_cost(CellKind::Const0, 0.0);
  m.set_cost(CellKind::Const1, 0.0);
  m.set_cost(CellKind::Buf, 4.0);
  m.set_cost(CellKind::Not, 2.0);
  m.set_cost(CellKind::And2, 6.0);
  m.set_cost(CellKind::Or2, 6.0);
  m.set_cost(CellKind::Nand2, 4.0);
  m.set_cost(CellKind::Nor2, 4.0);
  m.set_cost(CellKind::Xor2, 10.0);
  m.set_cost(CellKind::Xnor2, 10.0);
  m.set_cost(CellKind::Mux2, 10.0);
  m.set_cost(CellKind::Tribuf, 6.0);
  m.set_cost(CellKind::Dff, 22.0);
  m.set_cost(CellKind::Dffe, 28.0);
  return m;
}

double AreaModel::total(const Netlist& nl) const {
  double sum = 0.0;
  for (const Cell& c : nl.cells()) sum += cost(c.kind);
  return sum;
}

NetlistStats stats_of(const Netlist& nl) {
  NetlistStats s;
  s.cells = nl.cell_count();
  s.nets = nl.net_count();
  s.dffs = nl.dff_count();
  for (const Cell& c : nl.cells())
    if (c.kind == CellKind::Tribuf) ++s.tristate;
  s.gate_equivalents = AreaModel::typical().total(nl);
  s.transistor_estimate = AreaModel::transistors().total(nl);
  return s;
}

}  // namespace casbus::netlist
