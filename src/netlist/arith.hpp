/// \file arith.hpp
/// Multi-bit arithmetic macro-cells built on NetlistBuilder.
///
/// Used by the optimized CAS generator (mixed-radix arrangement decoding
/// needs constant subtraction, magnitude comparison and population counts).
/// All buses are LSB-first vectors of nets.

#pragma once

#include <cstdint>
#include <vector>

#include "netlist/builder.hpp"

namespace casbus::netlist {

/// Result of add_const_with_carry.
struct SumCarry {
  std::vector<NetId> sum;  ///< same width as the input bus
  NetId carry_out;         ///< final carry
};

/// Computes a + k + carry_in over w = a.size() bits, where \p k is a
/// compile-time constant. Gates are specialized per constant bit, so a
/// constant adder costs ~2 cells per bit.
SumCarry add_const_with_carry(NetlistBuilder& b, const std::vector<NetId>& a,
                              std::uint64_t k, bool carry_in);

/// (a - c) mod 2^w — two's complement subtraction of a constant.
std::vector<NetId> sub_const(NetlistBuilder& b, const std::vector<NetId>& a,
                             std::uint64_t c);

/// 1 when the unsigned value of \p a is >= \p c.
NetId ge_const(NetlistBuilder& b, const std::vector<NetId>& a,
               std::uint64_t c);

/// Population count of \p xs as a ceil(log2(n+1))-bit bus (Wallace-style
/// column compression with full/half adders).
std::vector<NetId> popcount_bus(NetlistBuilder& b,
                                const std::vector<NetId>& xs);

/// Equality of bus \p a with constant \p c (alias of builder eq_const).
inline NetId eq_const_bus(NetlistBuilder& b, const std::vector<NetId>& a,
                          std::uint64_t c) {
  return b.eq_const(a, c);
}

/// One-hot bus multiplexer: out = data[i] where sel[i] = 1 (buses must all
/// share one width; sel must be one-hot or all-zero, giving zero output).
std::vector<NetId> mux_onehot_bus(NetlistBuilder& b,
                                  const std::vector<NetId>& sel,
                                  const std::vector<std::vector<NetId>>& data);

}  // namespace casbus::netlist
