#include "netlist/faultsim.hpp"

#include <utility>

namespace casbus::netlist {

FaultSim::FaultSim(Netlist nl)
    : FaultSim(std::make_shared<const LevelizedNetlist>(std::move(nl))) {}

FaultSim::FaultSim(std::shared_ptr<const LevelizedNetlist> lev)
    : sim_(std::move(lev)) {
  set_observation(true, true);
}

void FaultSim::set_observation(bool outputs, bool dff_next_states) {
  observe_outputs_ = outputs;
  observe_dffs_ = dff_next_states;
  obs_nets_.clear();
  if (observe_outputs_)
    for (const Port& p : design().outputs()) obs_nets_.push_back(p.net);
  if (observe_dffs_)
    for (const CellId id : sim_.levelized()->dff_cells())
      obs_nets_.push_back(design().cell(id).in[0]);  // D pin = next state
  good_valid_ = false;
}

void FaultSim::set_input_index(std::size_t index, Logic4 v) {
  sim_.set_input_index(index, word_broadcast(v));
  good_valid_ = false;
}

void FaultSim::set_dff_state(std::size_t i, Logic4 v) {
  sim_.set_dff_state(i, v);
  good_valid_ = false;
}

void FaultSim::ensure_good() {
  if (good_valid_) return;
  sim_.clear_forces();
  sim_.eval();
  good_.clear();
  good_.reserve(obs_nets_.size());
  for (const NetId n : obs_nets_) {
    const Logic4 v = word_lane(sim_.net_value(n), 0);
    good_.push_back(v == Logic4::Zero ? 0 : v == Logic4::One ? 1 : -1);
  }
  good_valid_ = true;
}

const std::vector<int>& FaultSim::good_response() {
  ensure_good();
  return good_;
}

std::uint64_t FaultSim::detect_batch(const StuckAtFault* faults,
                                     std::size_t count) {
  CASBUS_REQUIRE(count <= kBatch, "detect_batch: more than 64 faults");
  if (count == 0) return 0;
  ensure_good();

  sim_.clear_forces();
  for (std::size_t i = 0; i < count; ++i)
    sim_.set_force(faults[i].net, to_logic(faults[i].stuck_one),
                   std::uint64_t{1} << i);
  sim_.eval();

  const std::uint64_t live =
      count == kBatch ? ~std::uint64_t{0} : (std::uint64_t{1} << count) - 1;
  std::uint64_t detected = 0;
  for (std::size_t k = 0; k < obs_nets_.size(); ++k) {
    if (good_[k] < 0) continue;  // good machine undriven here
    const Logic64 bad = sim_.net_value(obs_nets_[k]);
    detected |= good_[k] == 0 ? word_is1(bad) : word_is0(bad);
    if ((detected & live) == live) break;  // whole batch already caught
  }
  sim_.clear_forces();
  return detected & live;
}

std::size_t FaultSim::detect_all(const std::vector<StuckAtFault>& faults,
                                 std::vector<bool>& detected) {
  CASBUS_REQUIRE(detected.size() == faults.size(),
                 "detect_all: detected mask size mismatch");
  std::size_t newly = 0;
  StuckAtFault batch[kBatch];
  std::size_t batch_idx[kBatch];
  std::size_t n = 0;

  const auto flush = [&] {
    if (n == 0) return;
    const std::uint64_t hit = detect_batch(batch, n);
    for (std::size_t i = 0; i < n; ++i) {
      if ((hit >> i) & 1ULL) {
        detected[batch_idx[i]] = true;
        ++newly;
      }
    }
    n = 0;
  };

  for (std::size_t f = 0; f < faults.size(); ++f) {
    if (detected[f]) continue;  // fault dropping
    batch[n] = faults[f];
    batch_idx[n] = f;
    if (++n == kBatch) flush();
  }
  flush();
  return newly;
}

std::vector<StuckAtFault> enumerate_stuck_at_faults(const Netlist& nl) {
  std::vector<bool> constant(nl.net_count(), false);
  for (const Cell& c : nl.cells())
    if (c.kind == CellKind::Const0 || c.kind == CellKind::Const1)
      constant[c.out] = true;

  std::vector<StuckAtFault> faults;
  faults.reserve(nl.net_count() * 2);
  for (NetId n = 0; n < nl.net_count(); ++n) {
    if (constant[n]) continue;
    faults.push_back(StuckAtFault{n, false});
    faults.push_back(StuckAtFault{n, true});
  }
  return faults;
}

}  // namespace casbus::netlist
