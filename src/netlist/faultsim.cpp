#include "netlist/faultsim.hpp"

#include <algorithm>
#include <exception>
#include <thread>
#include <utility>

namespace casbus::netlist {

FaultSim::FaultSim(Netlist nl, EvalMode mode)
    : FaultSim(std::make_shared<const LevelizedNetlist>(std::move(nl)),
               mode) {}

FaultSim::FaultSim(std::shared_ptr<const LevelizedNetlist> lev, EvalMode mode)
    : sim_(std::move(lev), mode) {
  set_observation(true, true);
}

void FaultSim::set_observation(bool outputs, bool dff_next_states) {
  observe_outputs_ = outputs;
  observe_dffs_ = dff_next_states;
  obs_nets_.clear();
  if (observe_outputs_)
    for (const Port& p : design().outputs()) obs_nets_.push_back(p.net);
  if (observe_dffs_)
    for (const CellId id : sim_.levelized()->dff_cells())
      obs_nets_.push_back(design().cell(id).in[0]);  // D pin = next state
  good_valid_ = false;
}

void FaultSim::set_input_index(std::size_t index, Logic4 v) {
  sim_.set_input_index(index, word_broadcast(v));
  good_valid_ = false;
}

void FaultSim::set_dff_state(std::size_t i, Logic4 v) {
  sim_.set_dff_state(i, v);
  good_valid_ = false;
}

void FaultSim::ensure_good() {
  if (good_valid_) return;
  sim_.clear_forces();
  sim_.eval();
  good_.clear();
  good_.reserve(obs_nets_.size());
  for (const NetId n : obs_nets_) {
    const Logic4 v = word_lane(sim_.net_value(n), 0);
    good_.push_back(v == Logic4::Zero ? 0 : v == Logic4::One ? 1 : -1);
  }
  good_valid_ = true;
}

const std::vector<int>& FaultSim::good_response() {
  ensure_good();
  return good_;
}

std::uint64_t FaultSim::detect_batch(const StuckAtFault* faults,
                                     std::size_t count) {
  CASBUS_REQUIRE(count <= kBatch, "detect_batch: more than 64 faults");
  if (count == 0) return 0;
  ensure_good();

  sim_.clear_forces();
  for (std::size_t i = 0; i < count; ++i)
    sim_.set_force(faults[i].net, to_logic(faults[i].stuck_one),
                   std::uint64_t{1} << i);
  sim_.eval();

  const std::uint64_t live =
      count == kBatch ? ~std::uint64_t{0} : (std::uint64_t{1} << count) - 1;
  std::uint64_t detected = 0;
  for (std::size_t k = 0; k < obs_nets_.size(); ++k) {
    if (good_[k] < 0) continue;  // good machine undriven here
    const Logic64 bad = sim_.net_value(obs_nets_[k]);
    detected |= good_[k] == 0 ? word_is1(bad) : word_is0(bad);
    if ((detected & live) == live) break;  // whole batch already caught
  }
  sim_.clear_forces();
  return detected & live;
}

std::size_t FaultSim::detect_all(const std::vector<StuckAtFault>& faults,
                                 std::vector<bool>& detected) {
  CASBUS_REQUIRE(detected.size() == faults.size(),
                 "detect_all: detected mask size mismatch");
  std::size_t newly = 0;
  StuckAtFault batch[kBatch];
  std::size_t batch_idx[kBatch];
  std::size_t n = 0;

  const auto flush = [&] {
    if (n == 0) return;
    const std::uint64_t hit = detect_batch(batch, n);
    for (std::size_t i = 0; i < n; ++i) {
      if ((hit >> i) & 1ULL) {
        detected[batch_idx[i]] = true;
        ++newly;
      }
    }
    n = 0;
  };

  for (std::size_t f = 0; f < faults.size(); ++f) {
    if (detected[f]) continue;  // fault dropping
    batch[n] = faults[f];
    batch_idx[n] = f;
    if (++n == kBatch) flush();
  }
  flush();
  return newly;
}

FaultCampaignReport run_fault_campaign(
    std::shared_ptr<const LevelizedNetlist> lev,
    const std::vector<StuckAtFault>& faults, std::size_t pattern_count,
    const FaultCampaignLoader& load, const FaultCampaignOptions& opts) {
  CASBUS_REQUIRE(lev != nullptr, "run_fault_campaign: null netlist");
  FaultCampaignReport report;
  report.detected.assign(faults.size(), 0);
  report.first_detect_pattern.assign(faults.size(), -1);
  if (faults.empty() || pattern_count == 0) return report;

  std::size_t threads = opts.threads;
  if (threads == 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    threads = hw == 0 ? 1 : hw;
  }
  threads = std::min(threads, faults.size());

  // One worker grades the contiguous shard [lo, hi): a private engine over
  // the shared immutable levelization, all patterns in order, fault
  // dropping within the shard. Workers write disjoint slices of the
  // report vectors, so no synchronisation is needed until the join.
  const auto grade_shard = [&](std::size_t lo, std::size_t hi,
                               SimStats* stats_out) {
    FaultSim fs(lev, opts.mode);
    fs.set_observation(opts.observe_outputs, opts.observe_dffs);
    StuckAtFault batch[FaultSim::kBatch];
    std::size_t batch_idx[FaultSim::kBatch];
    std::size_t remaining = hi - lo;
    for (std::size_t p = 0; p < pattern_count && remaining > 0; ++p) {
      load(fs, p);
      std::size_t n = 0;
      const auto flush = [&] {
        if (n == 0) return;
        const std::uint64_t hit = fs.detect_batch(batch, n);
        for (std::size_t i = 0; i < n; ++i) {
          if ((hit >> i) & 1ULL) {
            report.detected[batch_idx[i]] = 1;
            report.first_detect_pattern[batch_idx[i]] =
                static_cast<std::int32_t>(p);
            --remaining;
          }
        }
        n = 0;
      };
      for (std::size_t f = lo; f < hi; ++f) {
        if (report.detected[f] != 0) continue;  // fault dropping
        batch[n] = faults[f];
        batch_idx[n] = f;
        if (++n == FaultSim::kBatch) flush();
      }
      flush();
    }
    *stats_out = fs.stats();
  };

  std::vector<SimStats> shard_stats(threads);
  const std::size_t base = faults.size() / threads;
  const std::size_t extra = faults.size() % threads;
  if (threads == 1) {
    grade_shard(0, faults.size(), &shard_stats[0]);
  } else {
    std::vector<std::thread> pool;
    std::vector<std::exception_ptr> errors(threads);
    pool.reserve(threads);
    std::size_t lo = 0;
    for (std::size_t t = 0; t < threads; ++t) {
      const std::size_t hi = lo + base + (t < extra ? 1 : 0);
      pool.emplace_back([&, t, lo, hi] {
        try {
          grade_shard(lo, hi, &shard_stats[t]);
        } catch (...) {
          errors[t] = std::current_exception();
        }
      });
      lo = hi;
    }
    for (std::thread& t : pool) t.join();
    for (const std::exception_ptr& e : errors)
      if (e) std::rethrow_exception(e);
  }

  for (const std::uint8_t d : report.detected)
    report.detected_count += d;
  for (const SimStats& s : shard_stats) {
    report.stats.eval_passes += s.eval_passes;
    report.stats.cell_evals += s.cell_evals;
    report.stats.sweep_cell_evals += s.sweep_cell_evals;
  }
  return report;
}

std::vector<StuckAtFault> enumerate_stuck_at_faults(const Netlist& nl) {
  std::vector<bool> constant(nl.net_count(), false);
  for (const Cell& c : nl.cells())
    if (c.kind == CellKind::Const0 || c.kind == CellKind::Const1)
      constant[c.out] = true;

  std::vector<StuckAtFault> faults;
  faults.reserve(nl.net_count() * 2);
  for (NetId n = 0; n < nl.net_count(); ++n) {
    if (constant[n]) continue;
    faults.push_back(StuckAtFault{n, false});
    faults.push_back(StuckAtFault{n, true});
  }
  return faults;
}

}  // namespace casbus::netlist
