/// \file core_model.hpp
/// Behavioral models of embedded IP cores, as seen from their wrapper.

#pragma once

#include <memory>
#include <string>
#include <vector>

#include "netlist/gatesim.hpp"
#include "sim/module.hpp"
#include "sim/simulation.hpp"
#include "tpg/synthcore.hpp"

namespace casbus::soc {

/// Core-side terminal wires every core model exposes; the wrapper connects
/// to exactly these (see p1500::CoreTestPorts / FunctionalPorts).
struct CoreTerminals {
  std::vector<sim::Wire*> func_in;   ///< functional inputs (wrapper drives)
  std::vector<sim::Wire*> func_out;  ///< functional outputs (wrapper reads)
  sim::Wire* scan_en = nullptr;
  sim::Wire* core_clk_en = nullptr;
  std::vector<sim::Wire*> scan_in;
  std::vector<sim::Wire*> scan_out;
  std::vector<std::size_t> chain_lengths;
  sim::Wire* bist_start = nullptr;
  sim::Wire* bist_done = nullptr;
  sim::Wire* bist_pass = nullptr;
};

/// Base class of all core models.
class CoreModel : public sim::Module {
 public:
  using sim::Module::Module;
  [[nodiscard]] const CoreTerminals& terminals() const noexcept {
    return term_;
  }
  [[nodiscard]] CoreTerminals& terminals() noexcept { return term_; }

 protected:
  CoreTerminals term_;
};

/// Gate-level core: a tpg::SyntheticCore simulated cycle-accurately through
/// its own GateSim, with mux-D scan chains and a gated clock. This is the
/// model behind scannable cores (paper Fig. 2a) and externally-tested cores
/// (Fig. 2c — same core, different pattern source).
class NetlistCore : public CoreModel {
 public:
  /// Creates terminal wires inside \p sim_ctx (named `<name>.<port>`)
  /// and registers nothing — the caller adds the module to the simulation.
  NetlistCore(sim::Simulation& sim_ctx, std::string name,
              tpg::SyntheticCore core);

  void evaluate() override;
  void tick() override;
  void reset() override;

  /// The generated core description (chains, spec).
  [[nodiscard]] const tpg::SyntheticCore& synth() const noexcept {
    return core_;
  }

  /// Embedded simulator — exposed for fault injection in experiments
  /// (tpg faults map 1:1 onto this netlist's nets).
  [[nodiscard]] netlist::GateSim& gatesim() noexcept { return sim_; }

 private:
  tpg::SyntheticCore core_;
  netlist::GateSim sim_;
};

}  // namespace casbus::soc
