/// \file tester.hpp
/// The SoC test controller: executes test programs against an assembled
/// SoC, cycle-accurately, through the chip's test pins only (bus head/tail,
/// wrapper serial ring, configuration/update and WSC control wires).
///
/// The paper: "All test control signals, either for the CAS or for the
/// testable cores, are connected to a central SoC test controller which is
/// in charge of synchronizing test data and control."

#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "soc/soc.hpp"
#include "tpg/fault.hpp"
#include "tpg/patterns.hpp"

namespace casbus::soc {

/// Simulation-engine knobs of a SocTester (docs/PERFORMANCE.md). Both are
/// pure optimisations: every session result is byte-identical for any
/// combination — event-driven evaluation is exact (packed_gatesim.hpp)
/// and golden responses depend only on (core netlist, pattern).
struct TesterOptions {
  /// Evaluation strategy of the golden-model engines.
  netlist::EvalMode sim_mode = netlist::EvalMode::EventDriven;
  /// Worker threads for precomputing a scan session's golden responses
  /// (sharded per target core; 1 = inline, 0 = one per hardware thread).
  std::size_t sim_threads = 1;
};

/// Addresses a core: a top-level index, optionally a child inside a
/// hierarchical core (one nesting level, as in paper Fig. 2d).
struct CoreRef {
  std::size_t top = 0;
  std::optional<std::size_t> child;

  friend bool operator<(const CoreRef& a, const CoreRef& b) {
    return std::tie(a.top, a.child) < std::tie(b.top, b.child);
  }
  friend bool operator==(const CoreRef& a, const CoreRef& b) = default;
};

/// One core's role in a scan session.
struct ScanTarget {
  CoreRef core;
  /// Top-level bus wire carrying each scan chain (index = chain).
  /// For children this is still the *top-level* wire; the child-bus wire is
  /// derived from the hierarchy route.
  std::vector<unsigned> wire_of_chain;
  /// Scan patterns: one bit per flip-flop, in GateSim DFF order (use
  /// tpg ATPG with all functional inputs pinned to zero to generate).
  tpg::PatternSet patterns;
};

/// How a hierarchical core's child bus maps onto top-level wires in a
/// session: child wire j is carried by top_wire_of_child_wire[j].
struct HierarchyRoute {
  std::size_t top_core = 0;
  std::vector<unsigned> top_wire_of_child_wire;
};

/// A BIST core riding along a scan session on its own wire.
struct BistJoin {
  std::size_t core = 0;          ///< top-level core index (Bist/Memory)
  unsigned wire = 0;             ///< dedicated bus wire
  std::uint64_t cycles = 0;      ///< engine cycles still outstanding
  /// When false, the engine is (re)started / kept routed but the session
  /// neither waits for it nor reads its verdict — used when a long BIST
  /// spans several reconfigured scan sessions (phased schedules). The
  /// start level stays asserted on the wire between sessions.
  bool wait = true;
};

/// A complete scan session: targets tested in parallel, sharing bus wires
/// where their assignments overlap (cores on one wire daisy-chain in bus
/// order — the §4 "balance the length of the scan chains" mechanism).
/// BIST cores can join concurrently on wires the scan part does not use.
struct ScanSession {
  std::vector<ScanTarget> targets;
  std::vector<HierarchyRoute> routes;
  std::vector<BistJoin> bist;
};

/// One mismatching response bit, located for diagnosis.
struct ScanDiagnosis {
  std::size_t pattern = 0;   ///< pattern index at which it was observed
  std::size_t chain = 0;     ///< scan chain of the core
  std::size_t position = 0;  ///< cell position within the chain (si -> so)
  std::size_t flipflop = 0;  ///< the core's flip-flop index (GateSim order)
};

/// Per-target outcome of a scan session.
struct ScanTargetResult {
  CoreRef core;
  std::size_t patterns_applied = 0;
  std::size_t response_bits = 0;
  std::size_t mismatches = 0;  ///< bits differing from the golden model
  /// First few mismatches located to chain cells / flip-flops (bounded by
  /// kMaxDiagnoses to keep long failing runs cheap).
  std::vector<ScanDiagnosis> diagnoses;
  static constexpr std::size_t kMaxDiagnoses = 64;
};

/// Outcome of ScanSession execution.
struct ScanSessionResult {
  std::vector<ScanTargetResult> targets;
  /// Verdicts of joined BIST engines, same order as ScanSession::bist.
  std::vector<bool> bist_pass;
  std::uint64_t configure_cycles = 0;  ///< CAS + WIR programming
  std::uint64_t test_cycles = 0;       ///< shift/capture (+BIST wait)
  [[nodiscard]] std::uint64_t total_cycles() const {
    return configure_cycles + test_cycles;
  }
  [[nodiscard]] bool all_pass() const {
    for (const auto& t : targets)
      if (t.mismatches != 0) return false;
    for (const bool b : bist_pass)
      if (!b) return false;
    return true;
  }
};

/// Outcome of a BIST session run over the bus.
struct BistRunResult {
  bool completed = false;  ///< verdict wire observed after the session
  bool pass = false;
  std::uint64_t configure_cycles = 0;
  std::uint64_t test_cycles = 0;
};

/// Outcome of an interconnect EXTEST session.
struct ExtestResult {
  std::size_t connections = 0;
  std::size_t vectors = 0;
  /// Indices (into Interconnect::connections()) observed faulty.
  std::vector<std::size_t> failing;
  std::uint64_t cycles = 0;

  [[nodiscard]] bool all_pass() const { return failing.empty(); }
};

/// Drives a Soc through complete test programs.
class SocTester {
 public:
  explicit SocTester(Soc& soc, TesterOptions options = {});

  [[nodiscard]] const TesterOptions& options() const noexcept {
    return options_;
  }

  /// Full-chip reset (power-on state).
  void reset();

  /// Advances \p n functional clock cycles (all wrappers keep their
  /// current instructions — used by maintenance scenarios).
  void step(std::uint64_t n = 1);

  // --- control plane -------------------------------------------------------

  /// Programs every top-level CAS in one serial configuration session
  /// (paper Fig. 4a). `codes[i]` targets CAS i in bus order.
  /// Returns cycles spent (shift + update).
  std::uint64_t configure_bus(const std::vector<std::uint64_t>& codes);

  /// Programs the child bus of hierarchical core \p top_core. The parent
  /// CAS must already route top wire \p entry_wire to child wire 0 (TEST
  /// mode) so the stream can tunnel through (paper Fig. 2d).
  std::uint64_t configure_child_bus(std::size_t top_core,
                                    unsigned entry_wire,
                                    const std::vector<std::uint64_t>& codes);

  /// Loads a wrapper instruction into every wrapper through the serial
  /// ring (ring order = Soc::wrapper_ring()).
  std::uint64_t load_wrapper_instructions(
      const std::vector<p1500::WrapperInstr>& instrs);

  /// Convenience: every wrapper gets \p instr.
  std::uint64_t load_all_wrappers(p1500::WrapperInstr instr);

  // --- data plane -----------------------------------------------------------

  /// Executes a scan session end-to-end: configures CASes (top and child),
  /// sets wrapper instructions, streams every pattern through the bus with
  /// interleaved load/unload, captures, and checks responses against each
  /// core's golden model.
  ScanSessionResult run_scan_session(const ScanSession& session);

  /// Runs the embedded BIST (logic BIST or memory MARCH) of core
  /// \p core (top-level, kinds Bist/Memory) over bus wire \p wire:
  /// configures the CAS, sets the wrapper to Bist, holds the start level
  /// on the wire for \p cycles cycles, then samples the verdict coming
  /// back on the same wire.
  BistRunResult run_bist(std::size_t core, unsigned wire,
                         std::uint64_t cycles);

  /// Interconnect test (paper §4 / Fig. 1 system bus): every wrapper is
  /// put in EXTEST; \p vectors random stimulus vectors are shifted into
  /// the boundary registers over the wrapper serial ring, applied with an
  /// update pulse, captured at the destination wrappers, and shifted out
  /// for comparison. Requires the SoC to have an interconnect fabric.
  ExtestResult run_extest(std::size_t vectors = 4, std::uint64_t seed = 1);

  /// Total simulation cycles elapsed since construction/reset.
  [[nodiscard]] std::uint64_t cycles() const {
    return soc_.simulation().cycle();
  }

  // --- observability --------------------------------------------------------
  // Work counters of this tester's golden-model machinery, harvested by
  // the floor's telemetry layer after each job. Pure observation: nothing
  // here feeds back into any result.

  /// Golden-response memo probes / probes served without simulating.
  /// Atomic because the threaded precompute path calls expected_response
  /// concurrently (one thread per core shard).
  [[nodiscard]] std::uint64_t memo_lookups() const noexcept {
    return memo_lookups_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t memo_hits() const noexcept {
    return memo_hits_.load(std::memory_order_relaxed);
  }

  /// Wall time spent in run_scan_session's golden-response precompute
  /// blocks (threaded or inline), summed over the tester's lifetime.
  [[nodiscard]] double precompute_seconds() const noexcept {
    return precompute_seconds_;
  }

  /// Packed-simulation work summed over every golden-model engine this
  /// tester has created (netlist::SimStats semantics).
  [[nodiscard]] netlist::SimStats sim_stats() const;

 private:
  struct Segment {  // one (target, chain) occupancy of a wire
    std::size_t target_index;
    std::size_t chain;
    std::size_t length;
  };

  /// Sort key giving physical order along a wire (bus order, children
  /// after entering their parent in child-bus order).
  [[nodiscard]] std::uint64_t bus_order_key(const CoreRef& ref) const;

  [[nodiscard]] CoreInstance& core_at(const CoreRef& ref);
  [[nodiscard]] const tpg::SyntheticCore& synth_of(const CoreRef& ref);

  /// Pulses one shift cycle on the config chain with wire-0 data \p bit.
  void config_shift(tam::CasBusChain& chain, sim::Wire& data_in, bool bit);

  /// Golden-model simulator of \p ref, created (and pinned) on first use.
  [[nodiscard]] tpg::FaultSimulator& golden_for(const CoreRef& ref);

  /// Good-machine response of \p ref to \p pattern, memoised across the
  /// tester's lifetime — i.e. across every session of one job — because
  /// the good machine is read-only.
  [[nodiscard]] const BitVector& expected_response(const CoreRef& ref,
                                                   const BitVector& pattern);

  Soc& soc_;
  TesterOptions options_;
  /// Golden-model simulators per scan core, created lazily.
  std::map<CoreRef, std::unique_ptr<tpg::FaultSimulator>> golden_;
  /// Cached golden responses per core, keyed by pattern bits.
  std::map<CoreRef, std::unordered_map<std::string, BitVector>>
      golden_cache_;
  /// Memo traffic (see memo_lookups()); relaxed atomics, written from the
  /// precompute worker threads.
  std::atomic<std::uint64_t> memo_lookups_{0};
  std::atomic<std::uint64_t> memo_hits_{0};
  /// Precompute wall time; written only by the session-running thread.
  double precompute_seconds_ = 0.0;
};

}  // namespace casbus::soc
