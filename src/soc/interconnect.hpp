/// \file interconnect.hpp
/// SoC functional interconnect between wrapped cores, testable via the
/// wrappers' EXTEST mode.
///
/// The paper's Fig. 1 shows cores joined by a system bus whose interconnect
/// must itself be tested ("SoC interconnect test time can be optimized
/// when adopting a good configuration of the test chains", §4). We model
/// point-to-point connections from a core's system-side outputs to another
/// core's system-side inputs, with injectable stuck faults, and the tester
/// verifies them by driving the source wrapper's boundary cells (EXTEST)
/// and capturing at the destination wrapper.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/module.hpp"
#include "sim/simulation.hpp"

namespace casbus::soc {

/// One directed wire of the functional interconnect.
struct Connection {
  std::size_t from_core = 0;  ///< top-level core index
  std::size_t from_pin = 0;   ///< index into the source's sys_out
  std::size_t to_core = 0;
  std::size_t to_pin = 0;     ///< index into the destination's sys_in
};

/// Copies every connection's source wire onto its destination wire each
/// settle pass; faults force a connection's destination to a fixed level.
class Interconnect : public sim::Module {
 public:
  Interconnect(std::string name,
               std::vector<std::pair<sim::Wire*, sim::Wire*>> wires,
               std::vector<Connection> meta)
      : sim::Module(std::move(name)),
        wires_(std::move(wires)),
        meta_(std::move(meta)),
        stuck_(wires_.size(), -1) {}

  void evaluate() override {
    for (std::size_t i = 0; i < wires_.size(); ++i) {
      if (stuck_[i] >= 0)
        wires_[i].second->set(to_logic(stuck_[i] == 1));
      else
        wires_[i].second->set(wires_[i].first->get());
    }
  }

  /// Forces connection \p index stuck at \p one (open-defect model: the
  /// destination no longer follows the source).
  void inject_stuck(std::size_t index, bool one) {
    stuck_.at(index) = one ? 1 : 0;
  }
  void clear_faults() { std::fill(stuck_.begin(), stuck_.end(), -1); }

  [[nodiscard]] const std::vector<Connection>& connections() const {
    return meta_;
  }

 private:
  std::vector<std::pair<sim::Wire*, sim::Wire*>> wires_;  // src -> dst
  std::vector<Connection> meta_;
  std::vector<int> stuck_;
};

}  // namespace casbus::soc
