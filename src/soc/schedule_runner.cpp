#include "soc/schedule_runner.hpp"

#include <algorithm>

#include "tpg/patterns.hpp"
#include "util/rng.hpp"

namespace casbus::soc {

std::vector<sched::CoreTestSpec> specs_of(const Soc& soc,
                                          std::size_t patterns_per_ff) {
  std::vector<sched::CoreTestSpec> specs;
  for (std::size_t i = 0; i < soc.core_count(); ++i) {
    const CoreInstance& inst = soc.cores()[i];
    CASBUS_REQUIRE(inst.kind != CoreKind::Hierarchical,
                   "specs_of: hierarchical cores are not schedulable at "
                   "the top level (schedule their children directly)");
    sched::CoreTestSpec spec;
    spec.name = inst.name;
    switch (inst.kind) {
      case CoreKind::Scan:
      case CoreKind::External: {
        const tpg::SyntheticCore& sc = inst.as_scan().synth();
        for (const auto& chain : sc.chains)
          spec.chains.push_back(chain.size());
        spec.patterns =
            std::max<std::size_t>(1, sc.spec.n_flipflops * patterns_per_ff);
        break;
      }
      case CoreKind::Bist:
        spec.bist_cycles = inst.as_bist().cycles();
        break;
      case CoreKind::Memory:
        spec.bist_cycles = inst.as_memory().mbist_cycles();
        break;
      case CoreKind::Hierarchical:
        break;  // unreachable
    }
    specs.push_back(std::move(spec));
  }
  return specs;
}

ScheduleRunReport run_schedule(Soc& soc, SocTester& tester,
                               const std::vector<sched::CoreTestSpec>& specs,
                               const sched::Schedule& schedule,
                               std::uint64_t pattern_seed) {
  CASBUS_REQUIRE(schedule.chip_synchronous,
                 "run_schedule: rail-emulation schedules need per-group "
                 "sequencing the broadcast-WSC controller cannot execute");
  CASBUS_REQUIRE(specs.size() == soc.core_count(),
                 "run_schedule: one spec per top-level core");

  ScheduleRunReport report;
  report.predicted_cycles = schedule.total_cycles;
  report.sessions = schedule.sessions.size();

  const unsigned width = soc.bus().width();
  std::vector<std::size_t> applied(specs.size(), 0);
  const std::uint64_t start = tester.cycles();

  // Spanning-BIST bookkeeping (phased schedules): engines started in the
  // first session keep running across reconfigurations on their reserved
  // wires; the verdict is harvested in the session during which the
  // engine is expected to finish (late reads are safe — the verdict is a
  // level — so remaining-cycle estimates are conservative).
  struct Carried {
    std::size_t core;
    unsigned wire;
    std::uint64_t remaining;
    bool started = false;
  };
  std::vector<Carried> carried;
  if (schedule.bist_spans_sessions && !schedule.sessions.empty()) {
    unsigned wire = width - 1;
    for (const std::size_t b : schedule.sessions[0].bist_cores)
      carried.push_back(Carried{b, wire--, specs[b].bist_cycles + 8});
  }

  for (std::size_t idx = 0; idx < schedule.sessions.size(); ++idx) {
    const sched::ScheduledSession& session = schedule.sessions[idx];
    const bool last = idx + 1 == schedule.sessions.size();
    ScanSession exec;

    if (schedule.bist_spans_sessions) {
      std::size_t live_carried = 0;
      for (Carried& c : carried) {
        if (c.remaining == 0) continue;  // harvested already
        const bool harvest = last || c.remaining <= session.scan_cycles;
        exec.bist.push_back(
            BistJoin{c.core, c.wire, c.remaining, harvest});
        if (harvest) {
          c.remaining = 0;
        } else {
          c.started = true;
          c.remaining -= std::min<std::uint64_t>(c.remaining,
                                                 session.scan_cycles);
          ++live_carried;
        }
      }
      // Overflow BIST sessions (appended after the scan phases) are
      // self-contained; they use the low wires to avoid the reserved ones.
      if (idx > 0 && !session.bist_cores.empty()) {
        CASBUS_REQUIRE(session.bist_cores.size() + live_carried <= width,
                       "run_schedule: overflow BIST collides with "
                       "still-running spanned engines");
        unsigned bist_wire = 0;
        for (const std::size_t b : session.bist_cores)
          exec.bist.push_back(
              BistJoin{b, bist_wire++, specs[b].bist_cycles, true});
      }
    } else {
      // Self-contained sessions: each BIST waits within its own session.
      unsigned bist_wire = width - 1;
      for (const std::size_t b : session.bist_cores)
        exec.bist.push_back(
            BistJoin{b, bist_wire--, specs[b].bist_cycles, true});
    }

    // Scan targets: wire per chain from the session's balance.
    for (const std::size_t c : session.scan_cores) {
      const tpg::SyntheticCore& sc = soc.cores()[c].as_scan().synth();
      CASBUS_REQUIRE(sc.chains.size() == specs[c].chains.size(),
                     "run_schedule: spec chains mismatch core geometry");
      std::vector<unsigned> wire_of_chain(sc.chains.size(), 0);
      for (std::size_t k = 0; k < session.items.size(); ++k) {
        const sched::ChainItem& item = session.items[k];
        if (item.core == c)
          wire_of_chain[item.chain] = session.balance.wire_of_item[k];
      }
      const std::size_t remaining = specs[c].patterns - applied[c];
      const std::size_t count =
          std::min(session.patterns_applied, remaining);
      applied[c] += count;

      Rng rng(pattern_seed * 131 + c * 17 + applied[c]);
      exec.targets.push_back(ScanTarget{
          CoreRef{c, std::nullopt}, std::move(wire_of_chain),
          tpg::PatternSet::random(sc.spec.n_flipflops, count, rng)});
    }

    const ScanSessionResult r = tester.run_scan_session(exec);
    if (!r.all_pass()) report.all_pass = false;
  }

  report.measured_cycles = tester.cycles() - start;
  return report;
}

CompiledProgram compile_program(const Soc& soc, sched::Strategy strategy,
                                std::size_t patterns_per_ff,
                                std::uint64_t pattern_seed) {
  CompiledProgram program;
  program.specs = specs_of(soc, patterns_per_ff);
  program.pattern_seed = pattern_seed;
  program.schedule =
      sched::schedule_with(program.specs, soc.bus().width(), strategy);
  return program;
}

ScheduleRunReport run_program(Soc& soc, SocTester& tester,
                              const CompiledProgram& program) {
  return run_schedule(soc, tester, program.specs, program.schedule,
                      program.pattern_seed);
}

}  // namespace casbus::soc
