/// \file schedule_runner.hpp
/// Bridge from the analytic scheduler to the cycle-accurate simulator:
/// compiles a sched::Schedule into executable ScanSessions and runs them,
/// closing the loop between the time model and the hardware model.
///
/// Constraints: the schedule's core indices map 1:1 onto the Soc's
/// top-level cores (scan specs must match each core's real chain
/// geometry); rail-emulation schedules are rejected (they assume per-group
/// asynchronous sequencing which the broadcast-WSC simulator cannot
/// execute — see DESIGN.md §8).

#pragma once

#include <cstdint>
#include <vector>

#include "sched/scheduler.hpp"
#include "soc/tester.hpp"

namespace casbus::soc {

/// Result of executing one analytic schedule.
struct ScheduleRunReport {
  std::uint64_t predicted_cycles = 0;  ///< schedule.total_cycles
  std::uint64_t measured_cycles = 0;   ///< simulator cycles actually spent
  std::size_t sessions = 0;
  bool all_pass = true;

  /// |measured − predicted| / predicted.
  [[nodiscard]] double deviation() const {
    if (predicted_cycles == 0) return 0.0;
    const auto diff = measured_cycles > predicted_cycles
                          ? measured_cycles - predicted_cycles
                          : predicted_cycles - measured_cycles;
    return static_cast<double>(diff) /
           static_cast<double>(predicted_cycles);
  }
};

/// Derives the CoreTestSpec list of \p soc's top-level cores (chain
/// lengths from the real netlists; \p patterns_per_ff scales pattern
/// budgets: patterns = n_flipflops * patterns_per_ff, min 1). Read-only on
/// the SoC, so callers holding a const Soc (cache lookups, concurrent
/// inspection) can derive specs without pretending to mutate it.
std::vector<sched::CoreTestSpec> specs_of(const Soc& soc,
                                          std::size_t patterns_per_ff = 1);

/// Executes \p schedule (produced by a SessionScheduler over specs_of the
/// same SoC) session by session: scan cores get seeded random patterns of
/// the spec'd count, BIST cores join on the upper wires, all responses are
/// checked against golden models.
ScheduleRunReport run_schedule(Soc& soc, SocTester& tester,
                               const std::vector<sched::CoreTestSpec>& specs,
                               const sched::Schedule& schedule,
                               std::uint64_t pattern_seed = 1);

/// A compiled test program: everything needed to execute one SoC's test
/// schedule, bundled as an immutable value object. Compiling and executing
/// are split so concurrent drivers (the src/floor/ service) can hold one
/// CompiledProgram per job as self-contained per-worker state: a const
/// CompiledProgram shares no mutable state with any Soc, SocTester, or
/// other program, so distinct workers may compile and run programs for
/// *distinct* Soc instances with no synchronization.
struct CompiledProgram {
  std::vector<sched::CoreTestSpec> specs;
  sched::Schedule schedule;
  std::uint64_t pattern_seed = 1;

  /// Total scan-pattern budget across all cores.
  [[nodiscard]] std::size_t total_patterns() const {
    std::size_t n = 0;
    for (const auto& s : specs) n += s.patterns;
    return n;
  }
};

/// Compiles a complete program for \p soc: derives the core specs
/// (specs_of), schedules them on the SoC's own bus width with \p strategy
/// (via the pure sched::schedule_with entry point, so equal inputs compile
/// byte-identical programs — the property the floor's program caches rely
/// on). Strategies other than sched::Strategy::Best always yield an
/// executable (chip-synchronous) program; Best may not — run_program
/// rejects those. Read-only on the SoC: compilation never touches
/// simulation state, so one const Soc may serve compile_program while a
/// cached program for the same geometry is being re-run elsewhere.
CompiledProgram compile_program(const Soc& soc, sched::Strategy strategy,
                                std::size_t patterns_per_ff = 1,
                                std::uint64_t pattern_seed = 1);

/// Executes a compiled program against \p soc (the same SoC geometry it
/// was compiled for) — a thin wrapper over run_schedule.
ScheduleRunReport run_program(Soc& soc, SocTester& tester,
                              const CompiledProgram& program);

}  // namespace casbus::soc
