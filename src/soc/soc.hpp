/// \file soc.hpp
/// Assembly of a complete testable SoC: cores + P1500 wrappers + CAS-BUS +
/// wrapper serial control, as in the paper's Figure 1.

#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/test_bus.hpp"
#include "p1500/wrapper.hpp"
#include "soc/bist_core.hpp"
#include "soc/core_model.hpp"
#include "soc/interconnect.hpp"
#include "soc/memory_core.hpp"

namespace casbus::soc {

/// What kind of core sits behind a CAS (paper Fig. 2).
enum class CoreKind {
  Scan,          ///< scannable core, P = number of scan chains (Fig. 2a)
  Bist,          ///< embedded logic BIST, P = 1 (Fig. 2b)
  External,      ///< scan core fed by off-chip LFSR/MISR, P = 1 (Fig. 2c)
  Memory,        ///< SRAM with MBIST, P = 1 (maintenance test, §4)
  Hierarchical,  ///< embeds an internal CAS-BUS, P = child width (Fig. 2d)
};

/// Copies one set of wires onto another each evaluation — used to close
/// the loop from a child bus tail back into the parent CAS's i-ports.
class WireBridge : public sim::Module {
 public:
  WireBridge(std::string name, std::vector<sim::Wire*> src,
             std::vector<sim::Wire*> dst)
      : sim::Module(std::move(name)), src_(std::move(src)),
        dst_(std::move(dst)) {
    CASBUS_REQUIRE(src_.size() == dst_.size(), "WireBridge size mismatch");
  }
  void evaluate() override {
    for (std::size_t i = 0; i < src_.size(); ++i)
      dst_[i]->set(src_[i]->get());
  }

 private:
  std::vector<sim::Wire*> src_;
  std::vector<sim::Wire*> dst_;
};

struct HierarchicalBody;

/// One wrapped core hanging off a CAS.
struct CoreInstance {
  std::string name;
  CoreKind kind = CoreKind::Scan;
  std::size_t cas_index = 0;  ///< index into the owning bus chain
  std::unique_ptr<CoreModel> model;        ///< null for Hierarchical
  std::unique_ptr<p1500::Wrapper> wrapper; ///< null for Hierarchical
  std::vector<sim::Wire*> sys_in;   ///< system-side functional inputs
  std::vector<sim::Wire*> sys_out;  ///< system-side functional outputs
  std::unique_ptr<HierarchicalBody> hier;  ///< only for Hierarchical

  /// Scan model accessor (Scan/External kinds).
  [[nodiscard]] NetlistCore& as_scan() const;
  [[nodiscard]] BistCore& as_bist() const;
  [[nodiscard]] MemoryCore& as_memory() const;
};

/// Internal structure of a hierarchical core (paper Fig. 2d): a child
/// CAS-BUS whose head is the parent CAS's o-ports, carrying CASed child
/// cores, with the child tail bridged back into the parent's i-ports.
struct HierarchicalBody {
  std::unique_ptr<tam::CasBusChain> bus;
  std::vector<CoreInstance> children;  ///< scan cores only
  std::unique_ptr<WireBridge> bridge;
};

/// A fully assembled SoC. Build through SocBuilder.
class Soc {
 public:
  [[nodiscard]] sim::Simulation& simulation() noexcept { return sim_; }
  [[nodiscard]] tam::CasBusChain& bus() noexcept { return *bus_; }
  [[nodiscard]] const tam::CasBusChain& bus() const noexcept {
    return *bus_;
  }
  [[nodiscard]] const p1500::WscWires& wsc() const noexcept { return wsc_; }

  /// Wrapper-serial-ring pins (independent wrapper configuration: the
  /// paper's default "the system test engineer may configure the wrapper
  /// independently"; the WIRs of all wrappers daisy-chain WSI -> WSO).
  [[nodiscard]] sim::Wire& wsi_pin() noexcept { return *wsi_pin_; }
  [[nodiscard]] sim::Wire& wso_pin() noexcept { return *wso_pin_; }

  [[nodiscard]] std::vector<CoreInstance>& cores() noexcept {
    return cores_;
  }
  [[nodiscard]] const std::vector<CoreInstance>& cores() const noexcept {
    return cores_;
  }
  [[nodiscard]] std::size_t core_count() const noexcept {
    return cores_.size();
  }

  /// All wrappers in serial-ring order (top-level cores first, then the
  /// children of each hierarchical core, in declaration order).
  [[nodiscard]] const std::vector<p1500::Wrapper*>& wrapper_ring()
      const noexcept {
    return ring_;
  }

  /// The functional interconnect fabric (null when no connections were
  /// declared).
  [[nodiscard]] Interconnect* interconnect() noexcept {
    return interconnect_;
  }

  /// Resets every module and re-settles.
  void reset();

 private:
  friend class SocBuilder;
  Soc() = default;

  sim::Simulation sim_;
  std::unique_ptr<tam::CasBusChain> bus_;
  p1500::WscWires wsc_;
  sim::Wire* wsi_pin_ = nullptr;
  sim::Wire* wso_pin_ = nullptr;
  std::vector<CoreInstance> cores_;
  std::vector<p1500::Wrapper*> ring_;
  Interconnect* interconnect_ = nullptr;
  std::vector<std::unique_ptr<sim::Module>> glue_;
};

/// Declarative SoC construction.
///
/// ```
/// SocBuilder b(8);                      // N = 8 test-bus wires
/// b.add_scan_core("cpu", spec4chains);
/// b.add_bist_core("dsp", logic, 256);
/// b.add_memory_core("ram", 64, 8);
/// b.add_hierarchical_core("subsys", 2, {{"subA", specA}, {"subB", specB}});
/// auto soc = b.build();
/// ```
class SocBuilder {
 public:
  explicit SocBuilder(unsigned bus_width);

  /// Scannable core (Fig. 2a): CAS ports = scan chains.
  SocBuilder& add_scan_core(const std::string& name,
                            const tpg::SyntheticCoreSpec& spec);

  /// Core tested from an external source/sink (Fig. 2c): forced to one
  /// scan chain, P = 1.
  SocBuilder& add_external_core(const std::string& name,
                                tpg::SyntheticCoreSpec spec);

  /// BISTed core (Fig. 2b): P = 1.
  SocBuilder& add_bist_core(const std::string& name,
                            const tpg::SyntheticCoreSpec& logic,
                            std::uint32_t cycles);

  /// Embedded SRAM with MARCH C- MBIST.
  SocBuilder& add_memory_core(const std::string& name, std::size_t words,
                              unsigned data_bits);

  /// Hierarchical core (Fig. 2d): an internal CAS-BUS of width
  /// \p child_bus_width carrying one CASed scan core per child spec.
  struct ChildSpec {
    std::string name;
    tpg::SyntheticCoreSpec logic;
  };
  SocBuilder& add_hierarchical_core(const std::string& name,
                                    unsigned child_bus_width,
                                    std::vector<ChildSpec> children);

  /// Declares a functional interconnect wire from output pin \p from_pin
  /// of top-level core \p from (system side of its wrapper) to input pin
  /// \p to_pin of core \p to. Names are resolved at build(); pins are
  /// validated against the cores' terminal counts. Tested with
  /// SocTester::run_extest.
  SocBuilder& connect(const std::string& from, std::size_t from_pin,
                      const std::string& to, std::size_t to_pin);

  /// Assembles the SoC. The builder must not be reused afterwards.
  std::unique_ptr<Soc> build();

 private:
  struct PendingCore {
    std::string name;
    CoreKind kind;
    tpg::SyntheticCoreSpec spec;
    std::uint32_t bist_cycles = 0;
    std::size_t mem_words = 0;
    unsigned mem_bits = 0;
    unsigned child_width = 0;
    std::vector<ChildSpec> children;
  };

  struct PendingConnection {
    std::string from, to;
    std::size_t from_pin, to_pin;
  };

  unsigned width_;
  std::vector<PendingCore> pending_;
  std::vector<PendingConnection> connections_;
  bool built_ = false;
};

}  // namespace casbus::soc
