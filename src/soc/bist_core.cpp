#include "soc/bist_core.hpp"

#include <algorithm>

namespace casbus::soc {

namespace {

unsigned clamp_width(std::size_t n, unsigned lo, unsigned hi) {
  return static_cast<unsigned>(std::min<std::size_t>(
      std::max<std::size_t>(n, lo), hi));
}

}  // namespace

BistCore::BistCore(sim::Simulation& sim_ctx, std::string name,
                   const tpg::SyntheticCoreSpec& logic_spec,
                   std::uint32_t cycles)
    : CoreModel(std::move(name)),
      core_(tpg::make_synthetic_core(logic_spec)),
      sim_(core_.netlist),
      cycles_(cycles),
      lfsr_width_(clamp_width(logic_spec.n_inputs, 2, 32)),
      misr_width_(clamp_width(logic_spec.n_outputs, 1, 32)) {
  CASBUS_REQUIRE(cycles_ >= 1, "BistCore: session must be >= 1 cycle");
  term_.bist_start = &sim_ctx.wire(this->name() + ".bist_start",
                                   Logic4::Zero);
  term_.bist_done = &sim_ctx.wire(this->name() + ".bist_done", Logic4::Zero);
  term_.bist_pass = &sim_ctx.wire(this->name() + ".bist_pass", Logic4::Zero);
  term_.core_clk_en = &sim_ctx.wire(this->name() + ".clk_en", Logic4::One);
  golden_ = run_reference();
}

std::uint32_t BistCore::run_reference() {
  sim_.clear_forces();
  sim_.reset();
  tpg::Lfsr lfsr = tpg::Lfsr::standard(lfsr_width_, 1);
  tpg::Misr misr(misr_width_);
  for (std::uint32_t c = 0; c < cycles_; ++c) {
    const std::uint32_t word = lfsr.state();
    for (std::size_t i = 0; i < core_.spec.n_inputs; ++i)
      sim_.set_input("pi" + std::to_string(i),
                     to_logic(((word >> (i % lfsr_width_)) & 1u) != 0));
    sim_.set_input("scan_en", false);
    for (std::size_t ch = 0; ch < core_.spec.n_chains; ++ch)
      sim_.set_input("si" + std::to_string(ch), false);
    sim_.eval();
    std::uint32_t resp = 0;
    for (std::size_t o = 0; o < core_.spec.n_outputs; ++o)
      if (sim_.output("po" + std::to_string(o)) == Logic4::One)
        resp ^= 1u << (o % misr_width_);
    misr.feed_word(resp);
    sim_.tick();
    lfsr.step();
  }
  return misr.signature();
}

void BistCore::evaluate() {
  term_.bist_done->set(done_);
  term_.bist_pass->set(done_ && pass_);
}

void BistCore::tick() {
  if (term_.core_clk_en->get() != Logic4::One) return;

  const bool start = term_.bist_start->get() == Logic4::One;
  if (start && !start_seen_ && !running_) {
    // Rising edge launches a session.
    running_ = true;
    done_ = false;
    pass_ = false;
    elapsed_ = 0;
    sim_.reset();
    lfsr_.emplace(tpg::Lfsr::standard(lfsr_width_, 1));
    misr_.emplace(misr_width_);
  }
  start_seen_ = start;
  if (!running_) return;

  // One BIST cycle: apply LFSR word, compact the response, advance.
  const std::uint32_t word = lfsr_->state();
  for (std::size_t i = 0; i < core_.spec.n_inputs; ++i)
    sim_.set_input("pi" + std::to_string(i),
                   to_logic(((word >> (i % lfsr_width_)) & 1u) != 0));
  sim_.set_input("scan_en", false);
  for (std::size_t ch = 0; ch < core_.spec.n_chains; ++ch)
    sim_.set_input("si" + std::to_string(ch), false);
  sim_.eval();
  std::uint32_t resp = 0;
  for (std::size_t o = 0; o < core_.spec.n_outputs; ++o)
    if (sim_.output("po" + std::to_string(o)) == Logic4::One)
      resp ^= 1u << (o % misr_width_);
  misr_->feed_word(resp);
  sim_.tick();
  lfsr_->step();

  if (++elapsed_ >= cycles_) {
    running_ = false;
    done_ = true;
    pass_ = misr_->signature() == golden_;
  }
}

void BistCore::reset() {
  running_ = false;
  done_ = false;
  pass_ = false;
  start_seen_ = false;
  elapsed_ = 0;
  sim_.reset();
}

void BistCore::inject_fault(netlist::NetId net, bool stuck_one) {
  sim_.set_force(net, to_logic(stuck_one));
}

void BistCore::clear_faults() { sim_.clear_forces(); }

}  // namespace casbus::soc
