/// \file traffic.hpp
/// Functional traffic for the maintenance-test experiments (paper §4):
/// a generator/checker that exercises a memory core's functional port
/// through its wrapper while other cores are under test.

#pragma once

#include <cstdint>
#include <unordered_map>

#include "sim/module.hpp"
#include "sim/simulation.hpp"
#include "soc/soc.hpp"
#include "util/rng.hpp"

namespace casbus::soc {

/// Drives pseudo-random writes and read-back checks into the *system side*
/// of a wrapped MemoryCore. While the wrapper is functional (Bypass), every
/// read must return the mirrored value; during a maintenance session the
/// generator is paused by the test program, mirroring how an SoC would
/// fence traffic off a memory under MBIST.
class MemoryTraffic : public sim::Module {
 public:
  /// \p core must be a CoreKind::Memory instance of \p soc.
  MemoryTraffic(Soc& soc, std::size_t core_index, std::uint64_t seed);

  void evaluate() override;
  void tick() override;
  void reset() override;

  /// Pauses/resumes the generator (paused drives no operations).
  void set_enabled(bool on) noexcept { enabled_ = on; }
  [[nodiscard]] bool enabled() const noexcept { return enabled_; }

  /// Invalidate the mirror (call after MBIST destroyed the contents).
  void forget_mirror() { mirror_.clear(); }

  [[nodiscard]] std::uint64_t operations() const noexcept { return ops_; }
  [[nodiscard]] std::uint64_t reads_checked() const noexcept {
    return checked_;
  }
  [[nodiscard]] std::uint64_t mismatches() const noexcept {
    return mismatches_;
  }

 private:
  CoreInstance& inst_;
  unsigned addr_bits_;
  unsigned data_bits_;
  std::size_t words_;
  Rng rng_;
  bool enabled_ = false;

  // Current operation, driven onto wires by evaluate().
  bool op_we_ = false;
  std::size_t op_addr_ = 0;
  std::uint64_t op_wdata_ = 0;
  bool op_valid_ = false;

  // Pending read pipeline: 2 = just issued, 1 = data valid next tick.
  int pending_stage_ = 0;
  std::size_t pending_addr_ = 0;

  std::unordered_map<std::size_t, std::uint64_t> mirror_;
  std::uint64_t ops_ = 0;
  std::uint64_t checked_ = 0;
  std::uint64_t mismatches_ = 0;
};

}  // namespace casbus::soc
