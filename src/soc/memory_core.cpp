#include "soc/memory_core.hpp"

#include <sstream>

namespace casbus::soc {

namespace {
bool hi(const sim::Wire* w) { return w != nullptr && w->get() == Logic4::One; }
}  // namespace

MemoryCore::MemoryCore(sim::Simulation& sim_ctx, std::string name,
                       std::size_t words, unsigned data_bits)
    : CoreModel(std::move(name)), data_bits_(data_bits) {
  CASBUS_REQUIRE(words >= 2, "MemoryCore: need at least 2 words");
  CASBUS_REQUIRE(data_bits >= 1 && data_bits <= 64,
                 "MemoryCore: data width must be in [1, 64]");
  addr_bits_ = 1;
  while ((std::size_t{1} << addr_bits_) < words) ++addr_bits_;
  data_mask_ = data_bits == 64 ? ~0ULL : ((1ULL << data_bits) - 1);
  mem_.assign(words, 0);

  // Functional port wires: we, addr, wdata | rdata.
  term_.func_in.push_back(&sim_ctx.wire(this->name() + ".we", Logic4::Zero));
  for (unsigned a = 0; a < addr_bits_; ++a) {
    std::ostringstream os;
    os << this->name() << ".addr" << a;
    term_.func_in.push_back(&sim_ctx.wire(os.str(), Logic4::Zero));
  }
  for (unsigned d = 0; d < data_bits_; ++d) {
    std::ostringstream os;
    os << this->name() << ".wdata" << d;
    term_.func_in.push_back(&sim_ctx.wire(os.str(), Logic4::Zero));
  }
  for (unsigned d = 0; d < data_bits_; ++d) {
    std::ostringstream os;
    os << this->name() << ".rdata" << d;
    term_.func_out.push_back(&sim_ctx.wire(os.str(), Logic4::Zero));
  }
  term_.core_clk_en = &sim_ctx.wire(this->name() + ".clk_en", Logic4::One);
  term_.bist_start =
      &sim_ctx.wire(this->name() + ".bist_start", Logic4::Zero);
  term_.bist_done = &sim_ctx.wire(this->name() + ".bist_done", Logic4::Zero);
  term_.bist_pass = &sim_ctx.wire(this->name() + ".bist_pass", Logic4::Zero);
}

std::uint64_t MemoryCore::apply_faults(std::size_t addr,
                                       std::uint64_t v) const {
  for (const StuckBit& f : faults_) {
    if (f.addr != addr) continue;
    if (f.stuck_one)
      v |= 1ULL << f.bit;
    else
      v &= ~(1ULL << f.bit);
  }
  return v;
}

void MemoryCore::write(std::size_t addr, std::uint64_t v) {
  mem_[addr] = apply_faults(addr, v & data_mask_);
}

std::uint64_t MemoryCore::read(std::size_t addr) const {
  return apply_faults(addr, mem_[addr]);
}

void MemoryCore::evaluate() {
  for (unsigned d = 0; d < data_bits_; ++d)
    term_.func_out[d]->set(((rdata_reg_ >> d) & 1ULL) != 0);
  term_.bist_done->set(done_);
  term_.bist_pass->set(done_ && pass_);
}

void MemoryCore::mbist_step() {
  // MARCH C- elements: {up w0} {up r0 w1} {up r1 w0} {down r0 w1}
  // {down r1 w0} {down r0}. One op per cycle: elements with two ops take
  // two cycles per address (modelled as op substep inside index_).
  const std::size_t n = mem_.size();
  static constexpr int kOpsPerElement[6] = {1, 2, 2, 2, 2, 1};
  const bool descending = element_ >= 3;
  const std::size_t pos = index_ / kOpsPerElement[element_];
  const std::size_t addr = descending ? (n - 1 - pos) : pos;
  const int op = static_cast<int>(index_ % kOpsPerElement[element_]);
  const std::uint64_t zeros = 0;
  const std::uint64_t ones = data_mask_;

  switch (element_) {
    case 0: write(addr, zeros); break;
    case 1:
      if (op == 0) {
        if (read(addr) != zeros) pass_ = false;
      } else {
        write(addr, ones);
      }
      break;
    case 2:
      if (op == 0) {
        if (read(addr) != ones) pass_ = false;
      } else {
        write(addr, zeros);
      }
      break;
    case 3:
      if (op == 0) {
        if (read(addr) != zeros) pass_ = false;
      } else {
        write(addr, ones);
      }
      break;
    case 4:
      if (op == 0) {
        if (read(addr) != ones) pass_ = false;
      } else {
        write(addr, zeros);
      }
      break;
    default:
      if (read(addr) != zeros) pass_ = false;
      break;
  }

  ++index_;
  if (index_ >= n * static_cast<std::size_t>(kOpsPerElement[element_])) {
    index_ = 0;
    ++element_;
    if (element_ >= 6) {
      running_ = false;
      done_ = true;
    }
  }
}

void MemoryCore::tick() {
  if (term_.core_clk_en->get() != Logic4::One) return;

  const bool start = hi(term_.bist_start);
  if (start && !start_seen_ && !running_) {
    running_ = true;
    done_ = false;
    pass_ = true;
    element_ = 0;
    index_ = 0;
  }
  start_seen_ = start;

  if (running_) {
    mbist_step();
    return;  // the functional port is unavailable during MBIST
  }

  // Functional operation.
  std::size_t addr = 0;
  for (unsigned a = 0; a < addr_bits_; ++a)
    if (hi(term_.func_in[1 + a])) addr |= std::size_t{1} << a;
  if (addr >= mem_.size()) addr = mem_.size() - 1;  // clamp partial decode
  if (hi(term_.func_in[0])) {  // we
    std::uint64_t wdata = 0;
    for (unsigned d = 0; d < data_bits_; ++d)
      if (hi(term_.func_in[1 + addr_bits_ + d])) wdata |= 1ULL << d;
    write(addr, wdata);
  }
  rdata_reg_ = read(addr);
}

void MemoryCore::reset() {
  mem_.assign(mem_.size(), 0);
  running_ = false;
  done_ = false;
  pass_ = false;
  start_seen_ = false;
  element_ = 0;
  index_ = 0;
  rdata_reg_ = 0;
}

void MemoryCore::inject_stuck_bit(std::size_t addr, unsigned bit,
                                  bool stuck_one) {
  CASBUS_REQUIRE(addr < mem_.size(), "inject_stuck_bit: address range");
  CASBUS_REQUIRE(bit < data_bits_, "inject_stuck_bit: bit range");
  faults_.push_back(StuckBit{addr, bit, stuck_one});
}

}  // namespace casbus::soc
