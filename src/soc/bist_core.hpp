/// \file bist_core.hpp
/// A core with embedded logic BIST (paper Fig. 2b: "For BISTed cores, P is
/// generally equal to 1").

#pragma once

#include <cstdint>
#include <optional>

#include "soc/core_model.hpp"
#include "tpg/lfsr.hpp"

namespace casbus::soc {

/// Gate-level core driven by an internal LFSR source and observed by an
/// internal MISR sink. One test-bus wire suffices: it carries the start
/// level toward the core and the (done && pass) verdict back.
///
/// The golden signature is computed at construction by running the engine
/// on the fault-free netlist — exactly what a BIST insertion flow would
/// tape into the comparator ROM.
class BistCore : public CoreModel {
 public:
  /// \p cycles is the BIST session length in clock cycles.
  BistCore(sim::Simulation& sim_ctx, std::string name,
           const tpg::SyntheticCoreSpec& logic_spec, std::uint32_t cycles);

  void evaluate() override;
  void tick() override;
  void reset() override;

  /// Injects a stuck-at fault into the core logic so the next BIST run
  /// fails (used by the maintenance-test experiments).
  void inject_fault(netlist::NetId net, bool stuck_one);
  void clear_faults();

  /// Fault-free signature (diagnostic).
  [[nodiscard]] std::uint32_t golden_signature() const noexcept {
    return golden_;
  }

  /// Session length in cycles — the test programmer's wait budget.
  [[nodiscard]] std::uint32_t cycles() const noexcept { return cycles_; }

  /// The embedded logic core (netlist + scan topology) — inspected by the
  /// floor's Verify stage, which lints every generated netlist it admits.
  [[nodiscard]] const tpg::SyntheticCore& synth() const noexcept {
    return core_;
  }

 private:
  std::uint32_t run_reference();

  tpg::SyntheticCore core_;
  netlist::GateSim sim_;
  std::uint32_t cycles_;
  unsigned lfsr_width_;
  unsigned misr_width_;
  std::uint32_t golden_ = 0;

  // Engine state.
  bool running_ = false;
  bool done_ = false;
  bool pass_ = false;
  bool start_seen_ = false;
  std::uint32_t elapsed_ = 0;
  std::optional<tpg::Lfsr> lfsr_;
  std::optional<tpg::Misr> misr_;
};

}  // namespace casbus::soc
