#include "soc/tester.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <exception>
#include <thread>

#include "core/config_protocol.hpp"
#include "util/rng.hpp"

namespace casbus::soc {

using tam::InstructionSet;
using tam::SwitchScheme;

SocTester::SocTester(Soc& soc, TesterOptions options)
    : soc_(soc), options_(options) {}

tpg::FaultSimulator& SocTester::golden_for(const CoreRef& ref) {
  auto it = golden_.find(ref);
  if (it == golden_.end()) {
    const tpg::SyntheticCore& sc = synth_of(ref);
    auto fsim = std::make_unique<tpg::FaultSimulator>(
        netlist::levelize(sc.netlist), options_.sim_mode);
    for (std::size_t i = 0; i < sc.spec.n_inputs; ++i)
      fsim->pin_input("pi" + std::to_string(i), false);
    fsim->pin_input("scan_en", false);
    for (std::size_t c = 0; c < sc.spec.n_chains; ++c)
      fsim->pin_input("si" + std::to_string(c), false);
    it = golden_.emplace(ref, std::move(fsim)).first;
  }
  return *it->second;
}

const BitVector& SocTester::expected_response(const CoreRef& ref,
                                              const BitVector& pattern) {
  // find-then-emplace so the concurrent precompute path (which pre-creates
  // every per-core entry serially) never mutates the outer map.
  memo_lookups_.fetch_add(1, std::memory_order_relaxed);
  auto mit = golden_cache_.find(ref);
  if (mit == golden_cache_.end())
    mit = golden_cache_.emplace(ref, decltype(mit->second){}).first;
  std::unordered_map<std::string, BitVector>& cache = mit->second;
  const std::string key = pattern.to_string();
  auto it = cache.find(key);
  if (it == cache.end()) {
    it = cache.emplace(key, golden_for(ref).good_response(pattern)).first;
  } else {
    memo_hits_.fetch_add(1, std::memory_order_relaxed);
  }
  return it->second;
}

netlist::SimStats SocTester::sim_stats() const {
  netlist::SimStats total;
  for (const auto& [ref, fsim] : golden_) {
    const netlist::SimStats& s = fsim->stats();
    total.eval_passes += s.eval_passes;
    total.cell_evals += s.cell_evals;
    total.sweep_cell_evals += s.sweep_cell_evals;
  }
  return total;
}

void SocTester::reset() { soc_.reset(); }

void SocTester::step(std::uint64_t n) { soc_.simulation().step(n); }

CoreInstance& SocTester::core_at(const CoreRef& ref) {
  CoreInstance& top = soc_.cores().at(ref.top);
  if (!ref.child.has_value()) return top;
  CASBUS_REQUIRE(top.hier != nullptr,
                 "CoreRef addresses a child of a non-hierarchical core");
  return top.hier->children.at(*ref.child);
}

const tpg::SyntheticCore& SocTester::synth_of(const CoreRef& ref) {
  return core_at(ref).as_scan().synth();
}

std::uint64_t SocTester::configure_bus(
    const std::vector<std::uint64_t>& codes) {
  sim::Simulation& sim = soc_.simulation();
  const std::uint64_t start = sim.cycle();
  tam::CasBusChain& chain = soc_.bus();

  chain.config_wire().set(true);
  const BitVector stream = tam::build_cas_config_stream(chain, codes);
  for (std::size_t b = 0; b < stream.size(); ++b) {
    chain.head()[0].set(stream.get(b));
    sim.step();
  }
  chain.update_wire().set(true);
  sim.step();
  chain.update_wire().set(false);
  chain.config_wire().set(false);
  chain.head()[0].set(false);
  sim.settle();
  return sim.cycle() - start;
}

std::uint64_t SocTester::configure_child_bus(
    std::size_t top_core, unsigned entry_wire,
    const std::vector<std::uint64_t>& codes) {
  CoreInstance& parent = soc_.cores().at(top_core);
  CASBUS_REQUIRE(parent.hier != nullptr,
                 "configure_child_bus: not a hierarchical core");
  sim::Simulation& sim = soc_.simulation();
  const std::uint64_t start = sim.cycle();
  tam::CasBusChain& child = *parent.hier->bus;
  sim::Wire& data_in = soc_.bus().head()[entry_wire];

  child.config_wire().set(true);
  const BitVector stream = tam::build_cas_config_stream(child, codes);
  for (std::size_t b = 0; b < stream.size(); ++b) {
    data_in.set(stream.get(b));
    sim.step();
  }
  child.update_wire().set(true);
  sim.step();
  child.update_wire().set(false);
  child.config_wire().set(false);
  data_in.set(false);
  sim.settle();
  return sim.cycle() - start;
}

std::uint64_t SocTester::load_wrapper_instructions(
    const std::vector<p1500::WrapperInstr>& instrs) {
  const auto& ring = soc_.wrapper_ring();
  CASBUS_REQUIRE(instrs.size() == ring.size(),
                 "load_wrapper_instructions: one instruction per wrapper");
  sim::Simulation& sim = soc_.simulation();
  const std::uint64_t start = sim.cycle();

  std::vector<tam::ConfigEntry> entries;
  entries.reserve(instrs.size());
  for (const p1500::WrapperInstr instr : instrs)
    entries.push_back(tam::ConfigEntry{
        p1500::kWirBits, static_cast<std::uint64_t>(instr)});
  const BitVector stream = tam::build_config_stream(entries);

  soc_.wsc().select_wir->set(true);
  soc_.wsc().shift_wr->set(true);
  for (std::size_t b = 0; b < stream.size(); ++b) {
    soc_.wsi_pin().set(stream.get(b));
    sim.step();
  }
  soc_.wsc().shift_wr->set(false);
  soc_.wsc().update_wr->set(true);
  sim.step();
  soc_.wsc().update_wr->set(false);
  soc_.wsc().select_wir->set(false);
  soc_.wsi_pin().set(false);
  sim.settle();
  return sim.cycle() - start;
}

std::uint64_t SocTester::load_all_wrappers(p1500::WrapperInstr instr) {
  return load_wrapper_instructions(std::vector<p1500::WrapperInstr>(
      soc_.wrapper_ring().size(), instr));
}

ScanSessionResult SocTester::run_scan_session(const ScanSession& session) {
  ScanSessionResult result;
  tam::CasBusChain& bus = soc_.bus();
  const unsigned width = bus.width();

  // --- 1. Derive CAS instruction codes -------------------------------------
  std::vector<std::uint64_t> top_codes(bus.size(),
                                       InstructionSet::kBypassCode);
  std::map<std::size_t, std::vector<std::uint64_t>> child_codes;
  std::map<std::size_t, const HierarchyRoute*> route_of;

  for (const HierarchyRoute& route : session.routes) {
    const CoreInstance& parent = soc_.cores().at(route.top_core);
    CASBUS_REQUIRE(parent.hier != nullptr,
                   "route references a non-hierarchical core");
    CASBUS_REQUIRE(route.top_wire_of_child_wire.size() ==
                       parent.hier->bus->width(),
                   "route must map every child-bus wire");
    route_of[route.top_core] = &route;
    const tam::CasBehavior& cas = bus.cas(parent.cas_index);
    top_codes[parent.cas_index] = cas.isa().encode(
        SwitchScheme(route.top_wire_of_child_wire, width));
    child_codes[route.top_core].assign(parent.hier->bus->size(),
                                       InstructionSet::kBypassCode);
  }

  for (const ScanTarget& target : session.targets) {
    CoreInstance& inst = core_at(target.core);
    const auto& chains = inst.as_scan().synth().chains;
    CASBUS_REQUIRE(target.wire_of_chain.size() == chains.size(),
                   "scan target must assign every chain: " + inst.name);
    if (!target.core.child.has_value()) {
      const tam::CasBehavior& cas = bus.cas(inst.cas_index);
      top_codes[inst.cas_index] =
          cas.isa().encode(SwitchScheme(target.wire_of_chain, width));
    } else {
      const auto it = route_of.find(target.core.top);
      CASBUS_REQUIRE(it != route_of.end(),
                     "child target without a hierarchy route: " + inst.name);
      const HierarchyRoute& route = *it->second;
      // Translate top wires into child-bus wires.
      std::vector<unsigned> child_wires;
      for (const unsigned top_wire : target.wire_of_chain) {
        const auto pos =
            std::find(route.top_wire_of_child_wire.begin(),
                      route.top_wire_of_child_wire.end(), top_wire);
        CASBUS_REQUIRE(pos != route.top_wire_of_child_wire.end(),
                       "target wire is not routed into the child bus");
        child_wires.push_back(static_cast<unsigned>(
            pos - route.top_wire_of_child_wire.begin()));
      }
      CoreInstance& parent = soc_.cores().at(target.core.top);
      const tam::CasBehavior& ccas =
          parent.hier->bus->cas(inst.cas_index);
      child_codes[target.core.top][inst.cas_index] = ccas.isa().encode(
          SwitchScheme(child_wires, parent.hier->bus->width()));
    }
  }

  // Joined BIST engines: each claims one wire for its start/verdict
  // handshake, which must not collide with any scan assignment.
  for (const BistJoin& join : session.bist) {
    CoreInstance& inst = soc_.cores().at(join.core);
    CASBUS_REQUIRE(inst.kind == CoreKind::Bist ||
                       inst.kind == CoreKind::Memory,
                   "BistJoin on a core without embedded BIST: " + inst.name);
    CASBUS_REQUIRE(join.wire < width, "BistJoin wire out of range");
    for (const ScanTarget& target : session.targets)
      for (const unsigned w : target.wire_of_chain)
        CASBUS_REQUIRE(w != join.wire,
                       "BistJoin wire collides with a scan assignment");
    top_codes[inst.cas_index] = bus.cas(inst.cas_index)
                                    .isa()
                                    .encode(SwitchScheme({join.wire}, width));
  }

  // --- 2. Program CASes (top first so child streams can tunnel) ------------
  result.configure_cycles += configure_bus(top_codes);
  for (const auto& [top_core, codes] : child_codes) {
    const HierarchyRoute& route = *route_of[top_core];
    result.configure_cycles += configure_child_bus(
        top_core, route.top_wire_of_child_wire[0], codes);
  }

  // --- 3. Wrapper instructions via the serial ring --------------------------
  std::map<CoreRef, std::size_t> ring_pos;
  {
    std::size_t pos = 0;
    for (std::size_t i = 0; i < soc_.core_count(); ++i) {
      const CoreInstance& inst = soc_.cores()[i];
      if (inst.hier != nullptr) {
        for (std::size_t c = 0; c < inst.hier->children.size(); ++c)
          ring_pos[CoreRef{i, c}] = pos++;
      } else {
        ring_pos[CoreRef{i, std::nullopt}] = pos++;
      }
    }
  }
  std::vector<p1500::WrapperInstr> instrs(soc_.wrapper_ring().size(),
                                          p1500::WrapperInstr::Bypass);
  for (const ScanTarget& target : session.targets)
    instrs.at(ring_pos.at(target.core)) =
        p1500::WrapperInstr::IntestParallel;
  for (const BistJoin& join : session.bist)
    instrs.at(ring_pos.at(CoreRef{join.core, std::nullopt})) =
        p1500::WrapperInstr::Bist;
  result.configure_cycles += load_wrapper_instructions(instrs);

  // --- 4. Build per-wire composite chains (physical bus order) -------------
  std::vector<std::vector<Segment>> wire_segments(width);
  const auto add_segments = [&](const CoreRef& ref) {
    for (std::size_t t = 0; t < session.targets.size(); ++t) {
      const ScanTarget& target = session.targets[t];
      if (!(target.core == ref)) continue;
      const auto& chains = core_at(ref).as_scan().synth().chains;
      for (std::size_t c = 0; c < chains.size(); ++c) {
        const unsigned w = target.wire_of_chain[c];
        CASBUS_REQUIRE(w < width, "chain assigned beyond bus width");
        wire_segments[w].push_back(Segment{t, c, chains[c].size()});
      }
    }
  };
  for (std::size_t i = 0; i < soc_.core_count(); ++i) {
    const CoreInstance& inst = soc_.cores()[i];
    if (inst.hier != nullptr) {
      for (std::size_t c = 0; c < inst.hier->children.size(); ++c)
        add_segments(CoreRef{i, c});
    } else if (inst.kind == CoreKind::Scan ||
               inst.kind == CoreKind::External) {
      add_segments(CoreRef{i, std::nullopt});
    }
  }

  std::size_t max_len = 0;
  std::vector<std::size_t> wire_len(width, 0);
  for (unsigned w = 0; w < width; ++w) {
    for (const Segment& s : wire_segments[w]) wire_len[w] += s.length;
    max_len = std::max(max_len, wire_len[w]);
  }

  // --- 5. Golden models ------------------------------------------------------
  std::size_t max_patterns = 0;
  for (const ScanTarget& target : session.targets) {
    max_patterns = std::max(max_patterns, target.patterns.size());
    // Create the simulator and its response cache up front (serially):
    // the precompute below then only touches per-core state.
    (void)golden_for(target.core);
    golden_cache_[target.core];
    CASBUS_REQUIRE(
        target.patterns.empty() ||
            target.patterns.width() == synth_of(target.core).spec.n_flipflops,
        "scan patterns must have one bit per flip-flop");
  }

  // Precompute every golden response of the session. The good machine is
  // read-only, so responses depend only on (core, pattern) — memoised in
  // golden_cache_ across sessions — and target cores shard cleanly across
  // options_.sim_threads workers (each core's engine and cache are touched
  // by exactly one worker; results are identical for any thread count).
  std::vector<std::vector<const BitVector*>> expected_all(
      session.targets.size());
  {
    const auto precompute_start = std::chrono::steady_clock::now();
    std::map<CoreRef, std::vector<std::size_t>> targets_of_core;
    for (std::size_t t = 0; t < session.targets.size(); ++t)
      targets_of_core[session.targets[t].core].push_back(t);
    std::vector<std::vector<std::size_t>> shards;
    shards.reserve(targets_of_core.size());
    for (auto& [core, ts] : targets_of_core) shards.push_back(ts);

    const auto run_shard = [&](const std::vector<std::size_t>& ts) {
      for (const std::size_t t : ts) {
        const ScanTarget& target = session.targets[t];
        expected_all[t].resize(target.patterns.size());
        for (std::size_t r = 0; r < target.patterns.size(); ++r)
          expected_all[t][r] =
              &expected_response(target.core, target.patterns.at(r));
      }
    };

    std::size_t workers = options_.sim_threads;
    if (workers == 0) {
      const unsigned hw = std::thread::hardware_concurrency();
      workers = hw == 0 ? 1 : hw;
    }
    workers = std::min(workers, shards.size());
    if (workers <= 1) {
      for (const auto& shard : shards) run_shard(shard);
    } else {
      std::atomic<std::size_t> next{0};
      std::vector<std::exception_ptr> errors(workers);
      std::vector<std::thread> pool;
      pool.reserve(workers);
      for (std::size_t w = 0; w < workers; ++w) {
        pool.emplace_back([&, w] {
          try {
            for (std::size_t i = next.fetch_add(1); i < shards.size();
                 i = next.fetch_add(1))
              run_shard(shards[i]);
          } catch (...) {
            errors[w] = std::current_exception();
          }
        });
      }
      for (std::thread& th : pool) th.join();
      for (const std::exception_ptr& e : errors)
        if (e) std::rethrow_exception(e);
    }
    precompute_seconds_ += std::chrono::duration<double>(
                               std::chrono::steady_clock::now() -
                               precompute_start)
                               .count();
  }

  result.targets.resize(session.targets.size());
  for (std::size_t t = 0; t < session.targets.size(); ++t)
    result.targets[t].core = session.targets[t].core;

  // Expected captured state per target for the pattern currently loaded.
  std::vector<std::optional<BitVector>> expected(session.targets.size());

  // --- 6. Interleaved load/capture/unload loop ------------------------------
  sim::Simulation& sim = soc_.simulation();
  const std::uint64_t test_start = sim.cycle();

  // Launch joined BIST engines: hold the start level for the whole
  // session (the scan loop never touches their wires).
  for (const BistJoin& join : session.bist)
    bus.head()[join.wire].set(true);

  // Per-wire stimulus stream for round r: padding then reversed composite.
  const auto build_stream = [&](unsigned w, std::size_t round) {
    BitVector stream(max_len, false);
    std::size_t pos = max_len;  // fill composite reversed at the tail
    // Composite order: segments in bus order, chain order si->so. Position
    // p gets stream bit (max_len - 1 - p).
    std::size_t base = 0;
    for (const Segment& seg : wire_segments[w]) {
      const ScanTarget& target = session.targets[seg.target_index];
      const auto& chains = synth_of(target.core).chains;
      for (std::size_t q = 0; q < seg.length; ++q) {
        const std::size_t p = base + q;  // composite position
        bool bit = false;
        if (round < target.patterns.size())
          bit = target.patterns.at(round).get(chains[seg.chain][q]);
        stream.set(max_len - 1 - p, bit);
      }
      base += seg.length;
    }
    (void)pos;
    return stream;
  };

  for (std::size_t round = 0; round <= max_patterns; ++round) {
    const bool loading = round < max_patterns;
    const bool unloading = round > 0;

    // Shift phase.
    soc_.wsc().shift_wr->set(true);
    std::vector<BitVector> streams(width);
    for (unsigned w = 0; w < width; ++w)
      if (!wire_segments[w].empty())
        streams[w] = loading ? build_stream(w, round) : BitVector(max_len);

    std::vector<BitVector> unloaded(width);
    for (std::size_t s = 0; s < max_len; ++s) {
      for (unsigned w = 0; w < width; ++w) {
        if (wire_segments[w].empty()) continue;
        bus.head()[w].set(streams[w].get(s));
      }
      sim.settle();
      if (unloading) {
        for (unsigned w = 0; w < width; ++w) {
          if (wire_segments[w].empty()) continue;
          if (s < wire_len[w])
            unloaded[w].push_back(bus.tail()[w].get() == Logic4::One);
        }
      }
      sim.step();
    }
    soc_.wsc().shift_wr->set(false);

    // Check unloaded responses of the previous pattern.
    if (unloading) {
      const std::size_t prev = round - 1;
      for (unsigned w = 0; w < width; ++w) {
        std::size_t base = 0;
        for (const Segment& seg : wire_segments[w]) {
          const ScanTarget& target = session.targets[seg.target_index];
          ScanTargetResult& tr = result.targets[seg.target_index];
          const auto& chains = synth_of(target.core).chains;
          if (prev < target.patterns.size() &&
              expected[seg.target_index].has_value()) {
            const tpg::SyntheticCore& sc = synth_of(target.core);
            const BitVector& exp = *expected[seg.target_index];
            // Response layout of the golden model: po outputs, then the
            // so scan-out ports, then flip-flop next-states.
            const std::size_t ff_base =
                sc.spec.n_outputs + sc.spec.n_chains;
            for (std::size_t q = 0; q < seg.length; ++q) {
              const std::size_t p = base + q;
              // Unload bit s showed composite position L-1-s.
              const bool got = unloaded[w].get(wire_len[w] - 1 - p);
              const bool want = exp.get(ff_base + chains[seg.chain][q]);
              ++tr.response_bits;
              if (got != want) {
                ++tr.mismatches;
                if (tr.diagnoses.size() < ScanTargetResult::kMaxDiagnoses)
                  tr.diagnoses.push_back(ScanDiagnosis{
                      prev, seg.chain, q, chains[seg.chain][q]});
              }
            }
          }
          base += seg.length;
        }
      }
    }

    // Capture phase (loads pattern `round` into every target).
    if (loading) {
      soc_.wsc().capture_wr->set(true);
      sim.step();
      soc_.wsc().capture_wr->set(false);
      for (std::size_t t = 0; t < session.targets.size(); ++t) {
        const ScanTarget& target = session.targets[t];
        if (round < target.patterns.size()) {
          expected[t] = *expected_all[t][round];
          ++result.targets[t].patterns_applied;
        } else {
          expected[t].reset();
        }
      }
    }
  }

  // Wait out joined BIST engines that outlive the scan phase, then sample
  // the verdicts on their wires. Non-waiting joins keep running (and keep
  // their start level asserted) into the next session.
  bool any_wait = false;
  std::uint64_t longest = 0;
  for (const BistJoin& join : session.bist) {
    if (!join.wait) continue;
    any_wait = true;
    longest = std::max(longest, join.cycles + 2);
  }
  if (any_wait) {
    const std::uint64_t elapsed = sim.cycle() - test_start;
    if (elapsed < longest) sim.step(longest - elapsed);
    sim.settle();
    for (const BistJoin& join : session.bist) {
      if (!join.wait) continue;
      result.bist_pass.push_back(bus.tail()[join.wire].get() ==
                                 Logic4::One);
      bus.head()[join.wire].set(false);
    }
  }

  result.test_cycles = sim.cycle() - test_start;
  return result;
}

BistRunResult SocTester::run_bist(std::size_t core, unsigned wire,
                                  std::uint64_t cycles) {
  BistRunResult result;
  CoreInstance& inst = soc_.cores().at(core);
  CASBUS_REQUIRE(inst.kind == CoreKind::Bist ||
                     inst.kind == CoreKind::Memory,
                 "run_bist: core has no embedded BIST: " + inst.name);
  tam::CasBusChain& bus = soc_.bus();

  // CAS: route the chosen wire to port 0 of the target, bypass elsewhere.
  std::vector<std::uint64_t> codes(bus.size(),
                                   InstructionSet::kBypassCode);
  codes[inst.cas_index] = bus.cas(inst.cas_index)
                              .isa()
                              .encode(SwitchScheme({wire}, bus.width()));
  result.configure_cycles += configure_bus(codes);

  // Wrapper: Bist on the target, Bypass elsewhere.
  std::vector<p1500::WrapperInstr> instrs(soc_.wrapper_ring().size(),
                                          p1500::WrapperInstr::Bypass);
  std::size_t pos = 0;
  for (std::size_t i = 0; i < soc_.core_count(); ++i) {
    const CoreInstance& c = soc_.cores()[i];
    if (c.hier != nullptr) {
      pos += c.hier->children.size();
      continue;
    }
    if (i == core) instrs.at(pos) = p1500::WrapperInstr::Bist;
    ++pos;
  }
  result.configure_cycles += load_wrapper_instructions(instrs);

  // Hold the start level on the wire for the whole session, then sample
  // the verdict flowing back on the same wire (paper Fig. 2b: P = 1).
  sim::Simulation& sim = soc_.simulation();
  const std::uint64_t start_cycle = sim.cycle();
  bus.head()[wire].set(true);
  sim.step(cycles + 2);  // +2: start edge registration and verdict settle
  sim.settle();
  result.completed = true;
  result.pass = bus.tail()[wire].get() == Logic4::One;
  bus.head()[wire].set(false);
  result.test_cycles = sim.cycle() - start_cycle;
  return result;
}

ExtestResult SocTester::run_extest(std::size_t vectors,
                                   std::uint64_t seed) {
  ExtestResult result;
  Interconnect* fabric = soc_.interconnect();
  CASBUS_REQUIRE(fabric != nullptr,
                 "run_extest: the SoC declares no interconnect");
  const auto& ring = soc_.wrapper_ring();
  sim::Simulation& sim = soc_.simulation();
  const std::uint64_t start_cycle = sim.cycle();

  result.connections = fabric->connections().size();
  result.vectors = vectors;

  // Boundary-register composite layout over the serial ring: per wrapper,
  // input cells then output cells (the wrapper's serial order).
  struct Span {
    std::size_t in_base = 0;
    std::size_t out_base = 0;
  };
  std::vector<Span> spans(ring.size());
  std::size_t total_bits = 0;
  for (std::size_t w = 0; w < ring.size(); ++w) {
    spans[w].in_base = total_bits;
    spans[w].out_base = total_bits + ring[w]->input_cell_count();
    total_bits +=
        ring[w]->input_cell_count() + ring[w]->output_cell_count();
  }
  CASBUS_REQUIRE(total_bits > 0, "run_extest: no boundary cells");

  // Ring position of each top-level core (EXTEST works on the top level;
  // children share the ring but have no top-level interconnect).
  std::vector<std::size_t> ring_of_core(soc_.core_count(), SIZE_MAX);
  {
    std::size_t pos = 0;
    for (std::size_t i = 0; i < soc_.core_count(); ++i) {
      const CoreInstance& inst = soc_.cores()[i];
      if (inst.hier != nullptr) {
        pos += inst.hier->children.size();
      } else {
        ring_of_core[i] = pos++;
      }
    }
  }

  load_all_wrappers(p1500::WrapperInstr::Extest);

  Rng rng(seed);
  std::vector<bool> failed(result.connections, false);

  for (std::size_t v = 0; v < vectors; ++v) {
    // Random stimulus per boundary output cell.
    BitVector composite(total_bits);
    for (std::size_t b = 0; b < total_bits; ++b)
      composite.set(b, rng.coin());

    // Load: stream bit t lands at composite position T-1-t.
    soc_.wsc().shift_wr->set(true);
    for (std::size_t t = 0; t < total_bits; ++t) {
      soc_.wsi_pin().set(composite.get(total_bits - 1 - t));
      sim.step();
    }
    soc_.wsc().shift_wr->set(false);

    // Apply stimulus and capture the interconnect's response.
    soc_.wsc().update_wr->set(true);
    sim.step();
    soc_.wsc().update_wr->set(false);
    sim.settle();
    soc_.wsc().capture_wr->set(true);
    sim.step();
    soc_.wsc().capture_wr->set(false);

    // Unload and compare at the destination input cells.
    BitVector unloaded(total_bits);
    soc_.wsc().shift_wr->set(true);
    for (std::size_t t = 0; t < total_bits; ++t) {
      sim.settle();
      unloaded.set(total_bits - 1 - t,
                   soc_.wso_pin().get() == Logic4::One);
      soc_.wsi_pin().set(false);
      sim.step();
    }
    soc_.wsc().shift_wr->set(false);

    for (std::size_t c = 0; c < fabric->connections().size(); ++c) {
      const Connection& conn = fabric->connections()[c];
      const std::size_t src_ring = ring_of_core.at(conn.from_core);
      const std::size_t dst_ring = ring_of_core.at(conn.to_core);
      CASBUS_REQUIRE(src_ring != SIZE_MAX && dst_ring != SIZE_MAX,
                     "run_extest: hierarchical cores cannot be "
                     "interconnect endpoints");
      const bool driven =
          composite.get(spans[src_ring].out_base + conn.from_pin);
      const bool captured =
          unloaded.get(spans[dst_ring].in_base + conn.to_pin);
      if (driven != captured) failed[c] = true;
    }
  }

  for (std::size_t c = 0; c < failed.size(); ++c)
    if (failed[c]) result.failing.push_back(c);
  result.cycles = sim.cycle() - start_cycle;
  return result;
}

std::uint64_t SocTester::bus_order_key(const CoreRef& ref) const {
  const CoreInstance& top = soc_.cores().at(ref.top);
  std::uint64_t key = static_cast<std::uint64_t>(top.cas_index) << 16;
  if (ref.child.has_value())
    key |= 1ULL + top.hier->children.at(*ref.child).cas_index;
  return key;
}

void SocTester::config_shift(tam::CasBusChain& chain, sim::Wire& data_in,
                             bool bit) {
  chain.config_wire().set(true);
  data_in.set(bit);
  soc_.simulation().step();
}

}  // namespace casbus::soc
