#include "soc/core_model.hpp"

#include <sstream>

namespace casbus::soc {

namespace {
Logic4 as_logic(const sim::Wire* w) {
  // Core models are 2-valued internally at their boundary: Z/X read as X
  // and are clamped by the gate simulator's own semantics.
  return w == nullptr ? Logic4::X : w->get();
}
}  // namespace

NetlistCore::NetlistCore(sim::Simulation& sim_ctx, std::string name,
                         tpg::SyntheticCore core)
    : CoreModel(std::move(name)),
      core_(std::move(core)),
      sim_(core_.netlist) {
  const auto& spec = core_.spec;
  for (std::size_t i = 0; i < spec.n_inputs; ++i) {
    std::ostringstream os;
    os << this->name() << ".fin" << i;
    term_.func_in.push_back(&sim_ctx.wire(os.str(), Logic4::Zero));
  }
  for (std::size_t i = 0; i < spec.n_outputs; ++i) {
    std::ostringstream os;
    os << this->name() << ".fout" << i;
    term_.func_out.push_back(&sim_ctx.wire(os.str(), Logic4::Zero));
  }
  term_.scan_en = &sim_ctx.wire(this->name() + ".scan_en", Logic4::Zero);
  term_.core_clk_en =
      &sim_ctx.wire(this->name() + ".clk_en", Logic4::One);
  for (std::size_t c = 0; c < spec.n_chains; ++c) {
    std::ostringstream osi, oso;
    osi << this->name() << ".si" << c;
    oso << this->name() << ".so" << c;
    term_.scan_in.push_back(&sim_ctx.wire(osi.str(), Logic4::Zero));
    term_.scan_out.push_back(&sim_ctx.wire(oso.str(), Logic4::Zero));
    term_.chain_lengths.push_back(core_.chains[c].size());
  }
  sim_.reset();
}

void NetlistCore::evaluate() {
  const auto& spec = core_.spec;
  for (std::size_t i = 0; i < spec.n_inputs; ++i) {
    const Logic4 v = as_logic(term_.func_in[i]);
    sim_.set_input("pi" + std::to_string(i), is01(v) ? v : Logic4::Zero);
  }
  const Logic4 se = as_logic(term_.scan_en);
  sim_.set_input("scan_en", is01(se) ? se : Logic4::Zero);
  for (std::size_t c = 0; c < spec.n_chains; ++c) {
    const Logic4 v = as_logic(term_.scan_in[c]);
    sim_.set_input("si" + std::to_string(c), is01(v) ? v : Logic4::Zero);
  }
  sim_.eval();
  for (std::size_t i = 0; i < spec.n_outputs; ++i)
    term_.func_out[i]->set(sim_.output("po" + std::to_string(i)));
  for (std::size_t c = 0; c < spec.n_chains; ++c)
    term_.scan_out[c]->set(sim_.output("so" + std::to_string(c)));
}

void NetlistCore::tick() {
  if (term_.core_clk_en->get() != Logic4::One) return;  // gated clock
  sim_.tick();
}

void NetlistCore::reset() { sim_.reset(); }

}  // namespace casbus::soc
