/// \file memory_core.hpp
/// Embedded SRAM with functional port and MARCH C- memory BIST.
///
/// Motivated directly by the paper's maintenance-test claim (§4): "it is
/// possible to test some embedded cores while others are in normal
/// functioning mode. This is very useful when, e.g., an embedded memory
/// test is periodically required."

#pragma once

#include <cstdint>
#include <vector>

#include "soc/core_model.hpp"

namespace casbus::soc {

/// Behavioral single-port SRAM core.
///
/// Functional port (synchronous, one operation per cycle when the core
/// clock is enabled and MBIST idle):
///   func_in  = [we, addr[0..A), wdata[0..D)]
///   func_out = [rdata[0..D)]
/// A write stores wdata at addr; every cycle rdata presents mem[addr]
/// (write-through on write cycles).
///
/// MBIST: a MARCH C- engine — ⇑(w0) ⇑(r0,w1) ⇑(r1,w0) ⇓(r0,w1) ⇓(r1,w0)
/// ⇓(r0) — launched by bist_start, one memory operation per cycle
/// (10 * words cycles total), verdict on bist_pass. The march destroys
/// memory contents, as real MBIST does.
class MemoryCore : public CoreModel {
 public:
  MemoryCore(sim::Simulation& sim_ctx, std::string name, std::size_t words,
             unsigned data_bits);

  void evaluate() override;
  void tick() override;
  void reset() override;

  [[nodiscard]] std::size_t words() const noexcept { return mem_.size(); }
  [[nodiscard]] unsigned data_bits() const noexcept { return data_bits_; }
  [[nodiscard]] unsigned addr_bits() const noexcept { return addr_bits_; }

  /// Total MBIST session length in cycles (6-element MARCH C-).
  [[nodiscard]] std::uint64_t mbist_cycles() const noexcept {
    return 10 * static_cast<std::uint64_t>(mem_.size());
  }

  /// Forces bit \p bit of word \p addr to a stuck value; the next MARCH
  /// pass must catch it.
  void inject_stuck_bit(std::size_t addr, unsigned bit, bool stuck_one);
  void clear_faults() { faults_.clear(); }

  /// Backdoor read for checkers (does not consume a cycle).
  [[nodiscard]] std::uint64_t peek(std::size_t addr) const {
    return mem_.at(addr);
  }

 private:
  struct StuckBit {
    std::size_t addr;
    unsigned bit;
    bool stuck_one;
  };

  [[nodiscard]] std::uint64_t apply_faults(std::size_t addr,
                                           std::uint64_t v) const;
  void write(std::size_t addr, std::uint64_t v);
  [[nodiscard]] std::uint64_t read(std::size_t addr) const;
  void mbist_step();

  unsigned data_bits_;
  unsigned addr_bits_;
  std::uint64_t data_mask_;
  std::vector<std::uint64_t> mem_;
  std::vector<StuckBit> faults_;

  // MBIST engine.
  bool running_ = false;
  bool done_ = false;
  bool pass_ = false;
  bool start_seen_ = false;
  unsigned element_ = 0;    // which march element
  std::size_t index_ = 0;   // position within the element
  std::uint64_t rdata_reg_ = 0;
};

}  // namespace casbus::soc
