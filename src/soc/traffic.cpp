#include "soc/traffic.hpp"

namespace casbus::soc {

MemoryTraffic::MemoryTraffic(Soc& soc, std::size_t core_index,
                             std::uint64_t seed)
    : sim::Module(soc.cores().at(core_index).name + ".traffic"),
      inst_(soc.cores().at(core_index)),
      rng_(seed) {
  const MemoryCore& mem = inst_.as_memory();
  addr_bits_ = mem.addr_bits();
  data_bits_ = mem.data_bits();
  words_ = mem.words();
  soc.simulation().add(this);
}

void MemoryTraffic::evaluate() {
  // sys_in layout matches MemoryCore: [we, addr..., wdata...].
  if (!op_valid_) {
    inst_.sys_in[0]->set(false);
    return;
  }
  inst_.sys_in[0]->set(op_we_);
  for (unsigned a = 0; a < addr_bits_; ++a)
    inst_.sys_in[1 + a]->set(((op_addr_ >> a) & 1u) != 0);
  for (unsigned d = 0; d < data_bits_; ++d)
    inst_.sys_in[1 + addr_bits_ + d]->set(((op_wdata_ >> d) & 1ULL) != 0);
}

void MemoryTraffic::tick() {
  // 1. A read issued at tick t is latched by the memory at t+1 and visible
  //    on sys_out during cycle t+2 — a two-stage pipeline.
  if (pending_stage_ == 1) {
    pending_stage_ = 0;
    const auto it = mirror_.find(pending_addr_);
    if (it != mirror_.end()) {
      std::uint64_t got = 0;
      for (unsigned d = 0; d < data_bits_; ++d)
        if (inst_.sys_out[d]->get() == Logic4::One) got |= 1ULL << d;
      ++checked_;
      if (got != it->second) ++mismatches_;
    }
  } else if (pending_stage_ == 2) {
    pending_stage_ = 1;
  }

  // 2. Issue the next operation. While a read is in flight the port idles
  //    so the response cannot be disturbed by a same-address write.
  op_valid_ = enabled_;
  op_we_ = false;
  if (!enabled_ || pending_stage_ != 0) return;
  ++ops_;
  op_addr_ = static_cast<std::size_t>(rng_.below(words_));
  const bool do_write = mirror_.empty() || rng_.coin(0.5);
  if (do_write) {
    op_we_ = true;
    op_wdata_ = rng_.next() & ((data_bits_ == 64)
                                   ? ~0ULL
                                   : ((1ULL << data_bits_) - 1));
    mirror_[op_addr_] = op_wdata_;
  } else {
    pending_stage_ = 2;
    pending_addr_ = op_addr_;
  }
}

void MemoryTraffic::reset() {
  mirror_.clear();
  op_valid_ = false;
  pending_stage_ = 0;
  ops_ = checked_ = mismatches_ = 0;
}

}  // namespace casbus::soc
