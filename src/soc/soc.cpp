#include "soc/soc.hpp"

#include <sstream>

namespace casbus::soc {

namespace {

std::vector<sim::Wire*> to_ptrs(sim::WireBundle& bundle) {
  std::vector<sim::Wire*> out;
  out.reserve(bundle.size());
  for (std::size_t i = 0; i < bundle.size(); ++i) out.push_back(&bundle[i]);
  return out;
}

}  // namespace

NetlistCore& CoreInstance::as_scan() const {
  CASBUS_REQUIRE(kind == CoreKind::Scan || kind == CoreKind::External,
                 "core is not a scan core: " + name);
  return *static_cast<NetlistCore*>(model.get());
}

BistCore& CoreInstance::as_bist() const {
  CASBUS_REQUIRE(kind == CoreKind::Bist, "core is not a BIST core: " + name);
  return *static_cast<BistCore*>(model.get());
}

MemoryCore& CoreInstance::as_memory() const {
  CASBUS_REQUIRE(kind == CoreKind::Memory,
                 "core is not a memory core: " + name);
  return *static_cast<MemoryCore*>(model.get());
}

void Soc::reset() {
  sim_.reset();
  bus_->head().set_all(Logic4::Zero);
  bus_->config_wire().set(false);
  bus_->update_wire().set(false);
  wsc_.select_wir->set(false);
  wsc_.shift_wr->set(false);
  wsc_.capture_wr->set(false);
  wsc_.update_wr->set(false);
  wsi_pin_->set(false);
  for (CoreInstance& core : cores_) {
    if (core.hier != nullptr) {
      core.hier->bus->config_wire().set(false);
      core.hier->bus->update_wire().set(false);
    }
    for (sim::Wire* w : core.sys_in) w->set(false);
  }
  sim_.settle();
}

SocBuilder::SocBuilder(unsigned bus_width) : width_(bus_width) {
  CASBUS_REQUIRE(width_ >= 1, "SocBuilder: bus width must be >= 1");
}

SocBuilder& SocBuilder::add_scan_core(const std::string& name,
                                      const tpg::SyntheticCoreSpec& spec) {
  CASBUS_REQUIRE(spec.n_chains <= width_,
                 "scan core has more chains than bus wires");
  PendingCore p;
  p.name = name;
  p.kind = CoreKind::Scan;
  p.spec = spec;
  pending_.push_back(std::move(p));
  return *this;
}

SocBuilder& SocBuilder::add_external_core(const std::string& name,
                                          tpg::SyntheticCoreSpec spec) {
  spec.n_chains = 1;  // Fig. 2c: single serial stream to the tester
  PendingCore p;
  p.name = name;
  p.kind = CoreKind::External;
  p.spec = spec;
  pending_.push_back(std::move(p));
  return *this;
}

SocBuilder& SocBuilder::add_bist_core(const std::string& name,
                                      const tpg::SyntheticCoreSpec& logic,
                                      std::uint32_t cycles) {
  PendingCore p;
  p.name = name;
  p.kind = CoreKind::Bist;
  p.spec = logic;
  p.bist_cycles = cycles;
  pending_.push_back(std::move(p));
  return *this;
}

SocBuilder& SocBuilder::add_memory_core(const std::string& name,
                                        std::size_t words,
                                        unsigned data_bits) {
  PendingCore p;
  p.name = name;
  p.kind = CoreKind::Memory;
  p.mem_words = words;
  p.mem_bits = data_bits;
  pending_.push_back(std::move(p));
  return *this;
}

SocBuilder& SocBuilder::add_hierarchical_core(const std::string& name,
                                              unsigned child_bus_width,
                                              std::vector<ChildSpec> children) {
  CASBUS_REQUIRE(child_bus_width >= 1 && child_bus_width <= width_,
                 "child bus width must satisfy 1 <= width <= N");
  CASBUS_REQUIRE(!children.empty(), "hierarchical core needs children");
  for (const ChildSpec& c : children)
    CASBUS_REQUIRE(c.logic.n_chains <= child_bus_width,
                   "child core has more chains than the child bus");
  PendingCore p;
  p.name = name;
  p.kind = CoreKind::Hierarchical;
  p.child_width = child_bus_width;
  p.children = std::move(children);
  pending_.push_back(std::move(p));
  return *this;
}

SocBuilder& SocBuilder::connect(const std::string& from,
                                std::size_t from_pin, const std::string& to,
                                std::size_t to_pin) {
  connections_.push_back(PendingConnection{from, to, from_pin, to_pin});
  return *this;
}

std::unique_ptr<Soc> SocBuilder::build() {
  CASBUS_REQUIRE(!built_, "SocBuilder::build called twice");
  built_ = true;

  // make_unique cannot reach the private constructor; the raw new is
  // immediately owned.
  std::unique_ptr<Soc> soc(new Soc());
  sim::Simulation& sim = soc->sim_;
  soc->bus_ = std::make_unique<tam::CasBusChain>(sim, width_, "bus");

  soc->wsc_.select_wir = &sim.wire("wsc.select_wir", Logic4::Zero);
  soc->wsc_.shift_wr = &sim.wire("wsc.shift_wr", Logic4::Zero);
  soc->wsc_.capture_wr = &sim.wire("wsc.capture_wr", Logic4::Zero);
  soc->wsc_.update_wr = &sim.wire("wsc.update_wr", Logic4::Zero);
  soc->wsi_pin_ = &sim.wire("wsi_pin", Logic4::Zero);

  sim::Wire* ring_prev = soc->wsi_pin_;
  std::size_t ring_links = 0;

  // Builds a wrapper around `model` attached to CAS `cas_idx` of `chain`,
  // threading the wrapper serial ring through it.
  const auto attach = [&](CoreInstance& inst, tam::CasBusChain& chain,
                          std::size_t cas_idx, CoreModel& model) {
    p1500::FunctionalPorts func;
    const CoreTerminals& t = model.terminals();
    for (std::size_t i = 0; i < t.func_in.size(); ++i) {
      std::ostringstream os;
      os << inst.name << ".sysin" << i;
      sim::Wire& w = sim.wire(os.str(), Logic4::Zero);
      func.sys_in.push_back(&w);
      inst.sys_in.push_back(&w);
    }
    func.core_in = t.func_in;
    func.core_out = t.func_out;
    for (std::size_t i = 0; i < t.func_out.size(); ++i) {
      std::ostringstream os;
      os << inst.name << ".sysout" << i;
      sim::Wire& w = sim.wire(os.str(), Logic4::Zero);
      func.sys_out.push_back(&w);
      inst.sys_out.push_back(&w);
    }

    p1500::CoreTestPorts ct;
    ct.scan_en = t.scan_en;
    ct.core_clk_en = t.core_clk_en;
    ct.scan_in = t.scan_in;
    ct.scan_out = t.scan_out;
    ct.chain_lengths = t.chain_lengths;
    ct.bist_start = t.bist_start;
    ct.bist_done = t.bist_done;
    ct.bist_pass = t.bist_pass;

    p1500::TamPorts tam_ports;
    tam_ports.wsi = ring_prev;
    std::ostringstream os;
    os << "ring" << ring_links++;
    tam_ports.wso = &sim.wire(os.str(), Logic4::Zero);
    ring_prev = tam_ports.wso;
    tam_ports.wpi = to_ptrs(chain.cas_o(cas_idx));
    tam_ports.wpo = to_ptrs(chain.cas_i(cas_idx));

    inst.wrapper = std::make_unique<p1500::Wrapper>(
        sim, inst.name + ".wrap", std::move(func), std::move(ct),
        std::move(tam_ports), soc->wsc_);
    sim.add(&model);
    sim.add(inst.wrapper.get());
    soc->ring_.push_back(inst.wrapper.get());
  };

  for (PendingCore& p : pending_) {
    CoreInstance inst;
    inst.name = p.name;
    inst.kind = p.kind;

    switch (p.kind) {
      case CoreKind::Scan:
      case CoreKind::External: {
        auto model = std::make_unique<NetlistCore>(
            sim, p.name, tpg::make_synthetic_core(p.spec));
        inst.cas_index =
            soc->bus_->size();  // about to add this CAS
        soc->bus_->add_cas(p.name,
                           static_cast<unsigned>(p.spec.n_chains));
        attach(inst, *soc->bus_, inst.cas_index, *model);
        inst.model = std::move(model);
        break;
      }
      case CoreKind::Bist: {
        auto model =
            std::make_unique<BistCore>(sim, p.name, p.spec, p.bist_cycles);
        inst.cas_index = soc->bus_->size();
        soc->bus_->add_cas(p.name, 1);
        attach(inst, *soc->bus_, inst.cas_index, *model);
        inst.model = std::move(model);
        break;
      }
      case CoreKind::Memory: {
        auto model = std::make_unique<MemoryCore>(sim, p.name, p.mem_words,
                                                  p.mem_bits);
        inst.cas_index = soc->bus_->size();
        soc->bus_->add_cas(p.name, 1);
        attach(inst, *soc->bus_, inst.cas_index, *model);
        inst.model = std::move(model);
        break;
      }
      case CoreKind::Hierarchical: {
        inst.cas_index = soc->bus_->size();
        soc->bus_->add_cas(p.name, p.child_width);

        auto body = std::make_unique<HierarchicalBody>();
        body->bus = std::make_unique<tam::CasBusChain>(
            sim, soc->bus_->cas_o(inst.cas_index), p.name + ".cbus");

        for (const ChildSpec& cs : p.children) {
          CoreInstance child;
          child.name = p.name + "." + cs.name;
          child.kind = CoreKind::Scan;
          auto model = std::make_unique<NetlistCore>(
              sim, child.name, tpg::make_synthetic_core(cs.logic));
          child.cas_index = body->bus->size();
          body->bus->add_cas(cs.name,
                             static_cast<unsigned>(cs.logic.n_chains));
          attach(child, *body->bus, child.cas_index, *model);
          child.model = std::move(model);
          body->children.push_back(std::move(child));
        }

        // Close the loop: child bus tail -> parent CAS i-ports.
        body->bridge = std::make_unique<WireBridge>(
            p.name + ".bridge", to_ptrs(body->bus->tail()),
            to_ptrs(soc->bus_->cas_i(inst.cas_index)));
        sim.add(body->bridge.get());
        inst.hier = std::move(body);
        break;
      }
    }
    soc->cores_.push_back(std::move(inst));
  }

  soc->wso_pin_ = ring_prev;

  // Resolve and build the functional interconnect.
  if (!connections_.empty()) {
    const auto index_of = [&](const std::string& core_name) {
      for (std::size_t i = 0; i < soc->cores_.size(); ++i)
        if (soc->cores_[i].name == core_name) return i;
      CASBUS_REQUIRE(false, "connect: unknown core " + core_name);
      return std::size_t{0};
    };
    std::vector<std::pair<sim::Wire*, sim::Wire*>> wire_pairs;
    std::vector<Connection> meta;
    for (const PendingConnection& pc : connections_) {
      Connection conn;
      conn.from_core = index_of(pc.from);
      conn.from_pin = pc.from_pin;
      conn.to_core = index_of(pc.to);
      conn.to_pin = pc.to_pin;
      CoreInstance& src = soc->cores_[conn.from_core];
      CoreInstance& dst = soc->cores_[conn.to_core];
      CASBUS_REQUIRE(conn.from_pin < src.sys_out.size(),
                     "connect: source pin out of range on " + pc.from);
      CASBUS_REQUIRE(conn.to_pin < dst.sys_in.size(),
                     "connect: destination pin out of range on " + pc.to);
      wire_pairs.emplace_back(src.sys_out[conn.from_pin],
                              dst.sys_in[conn.to_pin]);
      meta.push_back(conn);
    }
    auto fabric = std::make_unique<Interconnect>(
        "interconnect", std::move(wire_pairs), std::move(meta));
    soc->interconnect_ = fabric.get();
    sim.add(fabric.get());
    soc->glue_.push_back(std::move(fabric));
  }

  soc->reset();
  return soc;
}

}  // namespace casbus::soc
