#include "sched/lower_bound.hpp"

#include <algorithm>
#include <functional>

namespace casbus::sched {

void GroupBound::add(const CoreTestSpec& core) {
  sum_bits += core.total_scan_bits();
  for (const std::size_t c : core.chains)
    longest_chain = std::max(longest_chain, c);
  max_patterns = std::max(max_patterns, core.patterns);
}

std::uint64_t GroupBound::scan_lower_bound(unsigned width) const {
  CASBUS_REQUIRE(width >= 1, "GroupBound: width must be >= 1");
  const std::size_t spread = (sum_bits + width - 1) / width;
  return scan_cycles(std::max(longest_chain, spread), max_patterns);
}

std::uint64_t core_session_lower_bound(const CoreTestSpec& core,
                                       unsigned width) {
  if (!core.is_scan()) return core.bist_cycles;
  GroupBound g;
  g.add(core);
  return g.scan_lower_bound(width);
}

std::uint64_t total_wire_work(const std::vector<CoreTestSpec>& cores) {
  std::uint64_t work = 0;
  for (const CoreTestSpec& c : cores) {
    if (c.is_scan())
      work += static_cast<std::uint64_t>(c.patterns) *
              static_cast<std::uint64_t>(c.total_scan_bits());
    else
      work += c.bist_cycles;
  }
  return work;
}

std::uint64_t schedule_lower_bound(const std::vector<CoreTestSpec>& cores,
                                   unsigned width,
                                   std::uint64_t config_cycles) {
  CASBUS_REQUIRE(width >= 1, "schedule_lower_bound: width must be >= 1");
  // Wire-time conservation. A scan core shifts patterns * total_bits wire
  // cycles no matter how its chains are spread or which session hosts it;
  // a BIST engine holds one wire for its whole run. Rail plans divide the
  // work *and* the wires, so the bound survives them too: the slowest rail
  // is at least the average, and the average is total work over total
  // width.
  std::uint64_t most_demanding = 0;
  for (const CoreTestSpec& c : cores)
    most_demanding =
        std::max(most_demanding, core_session_lower_bound(c, width));
  const std::uint64_t spread = (total_wire_work(cores) + width - 1) / width;
  return std::max(spread, most_demanding) + config_cycles;
}

std::uint64_t partition_session_floor(std::size_t scan_groups,
                                      std::size_t bist_engines,
                                      unsigned width) {
  const auto k_eff = std::max<std::uint64_t>(scan_groups, 1);
  if (bist_engines == 0) return k_eff;
  if (width <= 1) return k_eff + bist_engines;  // no session can host riders
  // With k' final scan groups the session count is k' + overflow(k') where
  // overflow(k') = max(0, engines - k' * (width-1)). Over k' >= scan_groups
  // that sum is non-increasing until overflow hits zero at
  // k* = ceil(engines / (width-1)) and grows afterwards, so the minimum is
  // max(k_eff, k*).
  const std::uint64_t cap = width - 1;
  const std::uint64_t k_star = (bist_engines + cap - 1) / cap;
  return std::max(k_eff, k_star);
}

std::uint64_t partition_overflow_floor(std::size_t scan_groups,
                                       std::size_t bist_engines,
                                       unsigned width) {
  if (bist_engines == 0) return 0;
  if (width <= 1) return bist_engines;
  // Completing with k' >= scan_groups groups adds (k' - scan_groups) scan
  // sessions and max(0, engines - k' * (width-1)) dedicated ones; the sum
  // is minimized at k* = ceil(engines / (width-1)) (same shape as above).
  const std::uint64_t cap = width - 1;
  const std::uint64_t k_star = (bist_engines + cap - 1) / cap;
  const auto k_eff = std::max<std::uint64_t>(scan_groups, 1);
  return k_star > k_eff ? k_star - k_eff : 0;
}

std::uint64_t bist_chunk_bound(const std::vector<CoreTestSpec>& cores,
                               unsigned width) {
  std::vector<std::uint64_t> engines;
  for (const CoreTestSpec& c : cores)
    if (!c.is_scan()) engines.push_back(c.bist_cycles);
  if (engines.empty()) return 0;
  std::sort(engines.begin(), engines.end(), std::greater<>());
  const std::size_t cap = width > 1 ? width - 1 : 1;
  std::uint64_t sum = 0;
  for (std::size_t i = 0; i < engines.size(); i += cap) sum += engines[i];
  return sum;
}

}  // namespace casbus::sched
