#include "sched/lower_bound.hpp"

#include <algorithm>

namespace casbus::sched {

void GroupBound::add(const CoreTestSpec& core) {
  sum_bits += core.total_scan_bits();
  for (const std::size_t c : core.chains)
    longest_chain = std::max(longest_chain, c);
  max_patterns = std::max(max_patterns, core.patterns);
}

std::uint64_t GroupBound::scan_lower_bound(unsigned width) const {
  CASBUS_REQUIRE(width >= 1, "GroupBound: width must be >= 1");
  const std::size_t spread = (sum_bits + width - 1) / width;
  return scan_cycles(std::max(longest_chain, spread), max_patterns);
}

std::uint64_t core_session_lower_bound(const CoreTestSpec& core,
                                       unsigned width) {
  if (!core.is_scan()) return core.bist_cycles;
  GroupBound g;
  g.add(core);
  return g.scan_lower_bound(width);
}

std::uint64_t total_wire_work(const std::vector<CoreTestSpec>& cores) {
  std::uint64_t work = 0;
  for (const CoreTestSpec& c : cores) {
    if (c.is_scan())
      work += static_cast<std::uint64_t>(c.patterns) *
              static_cast<std::uint64_t>(c.total_scan_bits());
    else
      work += c.bist_cycles;
  }
  return work;
}

std::uint64_t schedule_lower_bound(const std::vector<CoreTestSpec>& cores,
                                   unsigned width,
                                   std::uint64_t config_cycles) {
  CASBUS_REQUIRE(width >= 1, "schedule_lower_bound: width must be >= 1");
  // Wire-time conservation. A scan core shifts patterns * total_bits wire
  // cycles no matter how its chains are spread or which session hosts it;
  // a BIST engine holds one wire for its whole run. Rail plans divide the
  // work *and* the wires, so the bound survives them too: the slowest rail
  // is at least the average, and the average is total work over total
  // width.
  std::uint64_t most_demanding = 0;
  for (const CoreTestSpec& c : cores)
    most_demanding =
        std::max(most_demanding, core_session_lower_bound(c, width));
  const std::uint64_t spread = (total_wire_work(cores) + width - 1) / width;
  return std::max(spread, most_demanding) + config_cycles;
}

}  // namespace casbus::sched
