/// \file time_model.hpp
/// Analytic test-time models for CAS-BUS test programs.
///
/// These formulas are validated cycle-for-cycle against the behavioral
/// simulation (see SocTesterTest.ScanSessionCycleCountMatchesFormula): the
/// scheduler can therefore explore large SoCs and wide parameter sweeps
/// without simulating.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/error.hpp"

namespace casbus::sched {

/// What a core needs from the TAM, abstracted for scheduling.
struct CoreTestSpec {
  std::string name;
  /// Scan-chain lengths (empty for pure-BIST cores).
  std::vector<std::size_t> chains;
  /// Scan pattern count.
  std::size_t patterns = 0;
  /// Embedded BIST session length (0 = none). BIST needs one wire for the
  /// start/verdict handshake but no shifting.
  std::uint64_t bist_cycles = 0;

  /// Total scan bits per pattern.
  [[nodiscard]] std::size_t total_scan_bits() const {
    std::size_t n = 0;
    for (const std::size_t c : chains) n += c;
    return n;
  }
  [[nodiscard]] bool is_scan() const { return !chains.empty(); }
};

/// Cycles to apply \p patterns scan patterns when the longest wire load is
/// \p max_wire_load bits: the classical V*(L+1) + L (interleaved
/// load/unload with one capture per pattern).
[[nodiscard]] constexpr std::uint64_t scan_cycles(std::size_t max_wire_load,
                                                  std::size_t patterns) {
  if (max_wire_load == 0 || patterns == 0) return 0;
  return static_cast<std::uint64_t>(patterns) * (max_wire_load + 1) +
         max_wire_load;
}

/// Cycles to serially configure a chain of CAS instruction registers with
/// total width \p total_ir_bits (shift + one update cycle), paper Fig. 4a.
[[nodiscard]] constexpr std::uint64_t configure_cycles(
    std::size_t total_ir_bits) {
  return total_ir_bits + 1;
}

/// Cycles to load every wrapper instruction over the serial ring.
[[nodiscard]] constexpr std::uint64_t wir_cycles(std::size_t n_wrappers) {
  return 3 * n_wrappers + 1;  // kWirBits per wrapper + update
}

/// Instruction-register width of a CAS with geometry (n, p) — delegated to
/// the core library's formula (k = ceil(log2(A(N,P)+2))).
[[nodiscard]] unsigned cas_ir_bits(unsigned n, unsigned p);

/// Total configuration overhead of one session on a bus with the given CAS
/// geometries: CAS chain shift + update + wrapper ring load.
[[nodiscard]] std::uint64_t session_config_cycles(
    const std::vector<std::pair<unsigned, unsigned>>& cas_geometries,
    std::size_t n_wrappers);

}  // namespace casbus::sched
