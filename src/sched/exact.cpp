#include "sched/exact.hpp"

#include <algorithm>
#include <functional>

#include "sched/lower_bound.hpp"

namespace casbus::sched {

std::uint64_t price_scan_partition(
    const SessionScheduler& scheduler,
    const std::vector<std::vector<std::size_t>>& scan_groups,
    const std::vector<std::size_t>& bist_cores,
    std::vector<ScheduledSession>* out_sessions) {
  const unsigned width = scheduler.width();
  const std::uint64_t config = scheduler.reconfig_cost();
  const std::vector<CoreTestSpec>& cores = scheduler.cores();

  // Per-group session state. The only way a co-tenant BIST engine changes
  // the scan term is by occupying wires, so scan terms are memoized per
  // (group, occupied-wire count) — the greedy slotting loop below then
  // prices each geometry once instead of re-balancing per candidate.
  struct Group {
    std::vector<ChainItem> items;
    std::size_t patterns = 0;
    std::vector<std::uint64_t> term;  ///< scan term at k BIST wires; lazy
    std::uint64_t max_bist = 0;
    std::size_t n_bist = 0;
  };
  std::vector<Group> gs(scan_groups.size());
  for (std::size_t g = 0; g < scan_groups.size(); ++g) {
    for (const std::size_t c : scan_groups[g]) {
      for (std::size_t ch = 0; ch < cores[c].chains.size(); ++ch)
        gs[g].items.push_back(ChainItem{c, ch, cores[c].chains[ch]});
      gs[g].patterns = std::max(gs[g].patterns, cores[c].patterns);
    }
    gs[g].term.assign(width, UINT64_MAX);
  }
  const auto scan_term = [&](Group& g, std::size_t k) {
    if (g.term[k] == UINT64_MAX) {
      const auto wires = static_cast<unsigned>(width - k);
      g.term[k] = scan_cycles(
          assign_lpt_grouped_refined(g.items, wires).max_load(), g.patterns);
    }
    return g.term[k];
  };

  // Greedy BIST slotting, same policy (and same tie-breaks) as
  // SessionScheduler::greedy: each engine joins the session whose total
  // grows least, or gets a dedicated session when that is cheaper.
  std::vector<std::vector<std::size_t>> group_bist(scan_groups.size());
  std::vector<std::size_t> extra;
  for (const std::size_t core : bist_cores) {
    const std::uint64_t standalone = cores[core].bist_cycles + config;
    std::size_t best_group = scan_groups.size();
    std::uint64_t best_delta = standalone;
    for (std::size_t g = 0; g < scan_groups.size(); ++g) {
      if (gs[g].n_bist + 1 >= width) continue;  // keep 1 scan wire
      const std::uint64_t t_without =
          std::max(scan_term(gs[g], gs[g].n_bist), gs[g].max_bist) + config;
      const std::uint64_t t_with =
          std::max(scan_term(gs[g], gs[g].n_bist + 1),
                   std::max(gs[g].max_bist, cores[core].bist_cycles)) +
          config;
      if (t_with - t_without < best_delta) {
        best_delta = t_with - t_without;
        best_group = g;
      }
    }
    if (best_group < scan_groups.size()) {
      group_bist[best_group].push_back(core);
      gs[best_group].n_bist += 1;
      gs[best_group].max_bist =
          std::max(gs[best_group].max_bist, cores[core].bist_cycles);
    } else {
      extra.push_back(core);
    }
  }

  std::uint64_t total = 0;
  if (out_sessions != nullptr) out_sessions->clear();
  for (std::size_t g = 0; g < scan_groups.size(); ++g) {
    total += std::max(scan_term(gs[g], gs[g].n_bist), gs[g].max_bist) + config;
    if (out_sessions != nullptr)
      out_sessions->push_back(
          scheduler.price_session(scan_groups[g], group_bist[g]));
  }
  for (const std::size_t core : extra) {
    total += cores[core].bist_cycles + config;
    if (out_sessions != nullptr)
      out_sessions->push_back(scheduler.price_session({}, {core}));
  }
  return total;
}

std::vector<std::vector<std::size_t>> greedy_scan_groups(
    const SessionScheduler& scheduler) {
  std::vector<std::vector<std::size_t>> groups;
  for (const ScheduledSession& s : scheduler.greedy().sessions)
    if (!s.scan_cores.empty()) groups.push_back(s.scan_cores);
  return groups;
}

Schedule optimal_pure_bist_schedule(const SessionScheduler& scheduler) {
  std::vector<std::size_t> bist;
  for (std::size_t i = 0; i < scheduler.cores().size(); ++i) {
    CASBUS_REQUIRE(!scheduler.cores()[i].is_scan(),
                   "optimal_pure_bist_schedule: scan cores present");
    bist.push_back(i);
  }
  // Session cost is max(engine) + config, so sort by length and chunk
  // width at a time: session i's cost then equals its lower bound (the
  // i*width-th longest engine) and the session count is minimal — input-
  // order chunking (what single_session does) can be arbitrarily worse
  // when long and short engines interleave.
  std::stable_sort(bist.begin(), bist.end(), [&](std::size_t a,
                                                 std::size_t b) {
    return scheduler.cores()[a].bist_cycles >
           scheduler.cores()[b].bist_cycles;
  });
  Schedule schedule;
  const unsigned width = scheduler.width();
  for (std::size_t i = 0; i < bist.size(); i += width) {
    const std::vector<std::size_t> chunk(
        bist.begin() + static_cast<std::ptrdiff_t>(i),
        bist.begin() + static_cast<std::ptrdiff_t>(
                           std::min<std::size_t>(i + width, bist.size())));
    schedule.sessions.push_back(scheduler.price_session({}, chunk));
    schedule.total_cycles += schedule.sessions.back().total_cycles();
  }
  return schedule;
}

ExactResult exact_schedule(const SessionScheduler& scheduler,
                           std::size_t max_cores,
                           bool compute_heuristic_gap) {
  std::vector<std::size_t> scan, bist;
  for (std::size_t i = 0; i < scheduler.cores().size(); ++i) {
    if (scheduler.cores()[i].is_scan())
      scan.push_back(i);
    else
      bist.push_back(i);
  }
  CASBUS_REQUIRE(scan.size() <= max_cores,
                 "exact_schedule: instance too large for exhaustive search");

  ExactResult result;
  const std::vector<CoreTestSpec>& cores = scheduler.cores();
  const unsigned width = scheduler.width();
  const std::uint64_t config = scheduler.reconfig_cost();

  if (scan.empty()) {
    result.schedule = optimal_pure_bist_schedule(scheduler);
    if (compute_heuristic_gap && result.schedule.total_cycles > 0)
      result.heuristic_gap =
          static_cast<double>(scheduler.best().total_cycles) /
              static_cast<double>(result.schedule.total_cycles) -
          1.0;
    return result;
  }

  // Place demanding cores first so the lower bound bites early.
  std::stable_sort(scan.begin(), scan.end(), [&](std::size_t a,
                                                 std::size_t b) {
    return core_session_lower_bound(cores[a], width) >
           core_session_lower_bound(cores[b], width);
  });

  // Instance-wide terms of the node bound: wire-time conservation and the
  // BIST chunking pigeonhole (both floors on the summed session maxima).
  const std::uint64_t work_bound =
      std::max((total_wire_work(cores) + width - 1) / width,
               bist_chunk_bound(cores, width));

  // Incumbent: greedy's scan partition, re-priced by the shared evaluator
  // so the seed is exactly comparable with search leaves.
  std::vector<std::vector<std::size_t>> best_groups =
      greedy_scan_groups(scheduler);
  std::uint64_t best_total =
      price_scan_partition(scheduler, best_groups, bist);

  // Restricted-growth enumeration of set partitions with incremental
  // per-group balance bounds. `structural` tracks the sum over open groups
  // of (scan lower bound + configuration) — admissible because adding
  // cores to a group can only raise its session's real cost.
  std::vector<std::vector<std::size_t>> groups;
  std::vector<GroupBound> bounds;
  std::vector<std::uint64_t> bound_of;  // cached scan_lower_bound + config
  std::uint64_t structural = 0;

  const std::function<void(std::size_t)> recurse = [&](std::size_t idx) {
    if (idx == scan.size()) {
      ++result.partitions_tried;
      const std::uint64_t total =
          price_scan_partition(scheduler, groups, bist);
      if (total < best_total) {
        best_total = total;
        best_groups = groups;
      }
      return;
    }
    const CoreTestSpec& core = cores[scan[idx]];
    for (std::size_t g = 0; g <= groups.size(); ++g) {
      const bool fresh = g == groups.size();
      const GroupBound saved = fresh ? GroupBound{} : bounds[g];
      const std::uint64_t saved_bound = fresh ? 0 : bound_of[g];
      if (fresh) {
        groups.push_back({scan[idx]});
        bounds.push_back({});
        bound_of.push_back(0);
      } else {
        groups[g].push_back(scan[idx]);
      }
      bounds[g].add(core);
      bound_of[g] = bounds[g].scan_lower_bound(width) + config;
      structural += bound_of[g] - saved_bound;

      const std::uint64_t node_bound = std::max(
          structural + config * partition_overflow_floor(groups.size(),
                                                         bist.size(), width),
          work_bound + config * partition_session_floor(groups.size(),
                                                        bist.size(), width));
      if (node_bound >= best_total)
        ++result.subtrees_pruned;
      else
        recurse(idx + 1);

      structural -= bound_of[g] - saved_bound;
      if (fresh) {
        groups.pop_back();
        bounds.pop_back();
        bound_of.pop_back();
      } else {
        groups[g].pop_back();
        bounds[g] = saved;
        bound_of[g] = saved_bound;
      }
    }
  };
  recurse(0);

  // Materialize the winning schedule and the in-library heuristic gap.
  std::vector<ScheduledSession> sessions;
  result.schedule.total_cycles =
      price_scan_partition(scheduler, best_groups, bist, &sessions);
  result.schedule.sessions = std::move(sessions);
  if (compute_heuristic_gap && result.schedule.total_cycles > 0)
    result.heuristic_gap =
        static_cast<double>(scheduler.best().total_cycles) /
            static_cast<double>(result.schedule.total_cycles) -
        1.0;
  return result;
}

}  // namespace casbus::sched
