#include "sched/exact.hpp"

#include <functional>

#include <algorithm>

namespace casbus::sched {

namespace {

/// Prices a full partition: scan groups as sessions, then BIST cores
/// slotted greedily (same policy as SessionScheduler::greedy, so the
/// search optimizes over the scan partition — the dominant dimension).
std::uint64_t price_partition(
    const SessionScheduler& sched,
    const std::vector<std::vector<std::size_t>>& groups,
    const std::vector<std::size_t>& bist, unsigned width,
    std::vector<ScheduledSession>* out_sessions) {
  std::vector<std::vector<std::size_t>> group_bist(groups.size());
  std::vector<std::vector<std::size_t>> extra;

  for (const std::size_t core : bist) {
    std::size_t best_group = groups.size();
    std::uint64_t best_delta =
        sched.price_session({}, {core}).total_cycles();
    for (std::size_t g = 0; g < groups.size(); ++g) {
      if (group_bist[g].size() + 1 >= width) continue;
      std::vector<std::size_t> with = group_bist[g];
      with.push_back(core);
      const std::uint64_t t_with =
          sched.price_session(groups[g], with).total_cycles();
      const std::uint64_t t_without =
          sched.price_session(groups[g], group_bist[g]).total_cycles();
      if (t_with - t_without < best_delta) {
        best_delta = t_with - t_without;
        best_group = g;
      }
    }
    if (best_group < groups.size())
      group_bist[best_group].push_back(core);
    else
      extra.push_back({core});
  }

  std::uint64_t total = 0;
  if (out_sessions != nullptr) out_sessions->clear();
  for (std::size_t g = 0; g < groups.size(); ++g) {
    ScheduledSession s = sched.price_session(groups[g], group_bist[g]);
    total += s.total_cycles();
    if (out_sessions != nullptr) out_sessions->push_back(std::move(s));
  }
  for (const auto& chunk : extra) {
    ScheduledSession s = sched.price_session({}, chunk);
    total += s.total_cycles();
    if (out_sessions != nullptr) out_sessions->push_back(std::move(s));
  }
  return total;
}

}  // namespace

ExactResult exact_schedule(const SessionScheduler& scheduler,
                           std::size_t max_cores) {
  std::vector<std::size_t> scan, bist;
  for (std::size_t i = 0; i < scheduler.cores().size(); ++i) {
    if (scheduler.cores()[i].is_scan())
      scan.push_back(i);
    else
      bist.push_back(i);
  }
  CASBUS_REQUIRE(scan.size() <= max_cores,
                 "exact_schedule: instance too large for exhaustive search");

  ExactResult result;
  std::uint64_t best_total = UINT64_MAX;
  std::vector<std::vector<std::size_t>> groups;
  std::vector<std::vector<std::size_t>> best_groups;

  // Restricted-growth enumeration of set partitions.
  const std::function<void(std::size_t)> recurse = [&](std::size_t idx) {
    if (idx == scan.size()) {
      ++result.partitions_tried;
      const std::uint64_t total = price_partition(
          scheduler, groups, bist, scheduler.width(), nullptr);
      if (total < best_total) {
        best_total = total;
        best_groups = groups;
      }
      return;
    }
    for (std::size_t g = 0; g < groups.size(); ++g) {
      groups[g].push_back(scan[idx]);
      recurse(idx + 1);
      groups[g].pop_back();
    }
    groups.push_back({scan[idx]});
    recurse(idx + 1);
    groups.pop_back();
  };
  recurse(0);

  // Materialize the winning schedule.
  if (scan.empty()) {
    // Pure-BIST: single greedy chunking is already optimal up to order.
    result.schedule = SessionScheduler(scheduler.cores(),
                                       scheduler.width())
                          .single_session();
    return result;
  }
  std::vector<ScheduledSession> sessions;
  result.schedule.total_cycles = price_partition(
      scheduler, best_groups, bist, scheduler.width(), &sessions);
  result.schedule.sessions = std::move(sessions);
  return result;
}

}  // namespace casbus::sched
