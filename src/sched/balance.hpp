/// \file balance.hpp
/// Scan-chain balancing across test-bus wires.
///
/// Paper §4: "in case of scanned cores, the test programmer can balance
/// the length of the scan chains within the test programs, in order to
/// reduce the test time." A wire's load is the sum of chain lengths daisy-
/// chained on it; session time is driven by the *maximum* wire load, so
/// balancing is makespan minimization (multiprocessor scheduling).

#pragma once

#include <cstdint>
#include <vector>

#include "util/error.hpp"

namespace casbus::sched {

/// One schedulable item: chain \p chain of core \p core, \p length bits.
struct ChainItem {
  std::size_t core = 0;
  std::size_t chain = 0;
  std::size_t length = 0;
};

/// wire_of_item[i] = wire carrying items[i].
struct Balance {
  std::vector<unsigned> wire_of_item;
  std::vector<std::size_t> wire_load;  ///< total bits per wire

  [[nodiscard]] std::size_t max_load() const {
    std::size_t m = 0;
    for (const std::size_t l : wire_load) m = std::max(m, l);
    return m;
  }
};

/// Naive assignment: items dealt to wires in order, round-robin — the
/// uninformed test program the paper's balancing claim is measured against.
Balance assign_round_robin(const std::vector<ChainItem>& items,
                           unsigned wires);

/// Longest-processing-time greedy: sort by length descending, place each
/// item on the least-loaded wire. Classical 4/3-approximation of optimal
/// makespan.
Balance assign_lpt(const std::vector<ChainItem>& items, unsigned wires);

/// LPT followed by pairwise-swap local search (first-improvement) — the
/// "good collaboration between the test designer and the test programmer"
/// grade of effort.
Balance assign_lpt_refined(const std::vector<ChainItem>& items,
                           unsigned wires);

/// LPT under the CAS injectivity constraint: chains of one core must land
/// on *distinct* wires (an N/P switch routes each selected wire to exactly
/// one port). When a core has more chains than wires the constraint is
/// relaxed for that core (modeling wrapper-level chain concatenation).
Balance assign_lpt_grouped(const std::vector<ChainItem>& items,
                           unsigned wires);

/// Grouped LPT plus constraint-preserving move/swap local search. This is
/// the placement the scheduler uses for physically executable sessions.
Balance assign_lpt_grouped_refined(const std::vector<ChainItem>& items,
                                   unsigned wires);

/// Lower bound on the achievable max load: max(ceil(total/wires), longest
/// single chain).
std::size_t balance_lower_bound(const std::vector<ChainItem>& items,
                                unsigned wires);

}  // namespace casbus::sched
