#include "sched/balance.hpp"

#include <algorithm>
#include <numeric>
#include <unordered_map>

namespace casbus::sched {

namespace {

Balance make_balance(const std::vector<ChainItem>& items, unsigned wires,
                     const std::vector<unsigned>& wire_of_item) {
  Balance b;
  b.wire_of_item = wire_of_item;
  b.wire_load.assign(wires, 0);
  for (std::size_t i = 0; i < items.size(); ++i)
    b.wire_load[wire_of_item[i]] += items[i].length;
  return b;
}

}  // namespace

Balance assign_round_robin(const std::vector<ChainItem>& items,
                           unsigned wires) {
  CASBUS_REQUIRE(wires >= 1, "assign_round_robin: need at least one wire");
  std::vector<unsigned> w(items.size());
  for (std::size_t i = 0; i < items.size(); ++i)
    w[i] = static_cast<unsigned>(i % wires);
  return make_balance(items, wires, w);
}

Balance assign_lpt(const std::vector<ChainItem>& items, unsigned wires) {
  CASBUS_REQUIRE(wires >= 1, "assign_lpt: need at least one wire");
  std::vector<std::size_t> order(items.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return items[a].length > items[b].length;
                   });
  std::vector<unsigned> w(items.size(), 0);
  std::vector<std::size_t> load(wires, 0);
  for (const std::size_t i : order) {
    const auto best = static_cast<unsigned>(
        std::min_element(load.begin(), load.end()) - load.begin());
    w[i] = best;
    load[best] += items[i].length;
  }
  return make_balance(items, wires, w);
}

Balance assign_lpt_refined(const std::vector<ChainItem>& items,
                           unsigned wires) {
  Balance b = assign_lpt(items, wires);
  if (items.empty()) return b;

  // First-improvement pairwise swaps and moves until a fixpoint.
  bool improved = true;
  while (improved) {
    improved = false;
    const std::size_t before = b.max_load();

    // Move: take an item off a maximal wire if another wire can absorb it.
    for (std::size_t i = 0; i < items.size() && !improved; ++i) {
      const unsigned src = b.wire_of_item[i];
      if (b.wire_load[src] != before) continue;
      for (unsigned dst = 0; dst < wires; ++dst) {
        if (dst == src) continue;
        if (b.wire_load[dst] + items[i].length < before) {
          b.wire_load[src] -= items[i].length;
          b.wire_load[dst] += items[i].length;
          b.wire_of_item[i] = dst;
          improved = true;
          break;
        }
      }
    }
    // Swap: exchange two items across a maximal wire.
    for (std::size_t i = 0; i < items.size() && !improved; ++i) {
      const unsigned wi = b.wire_of_item[i];
      if (b.wire_load[wi] != before) continue;
      for (std::size_t j = 0; j < items.size() && !improved; ++j) {
        const unsigned wj = b.wire_of_item[j];
        if (wj == wi || items[j].length >= items[i].length) continue;
        const std::size_t delta = items[i].length - items[j].length;
        if (b.wire_load[wj] + delta < before) {
          b.wire_load[wi] -= delta;
          b.wire_load[wj] += delta;
          std::swap(b.wire_of_item[i], b.wire_of_item[j]);
          improved = true;
        }
      }
    }
  }
  return b;
}

namespace {

/// True when moving items[i] onto `wire` keeps per-core wire uniqueness
/// (unless that core is overflowing the bus anyway).
bool wire_free_for(const std::vector<ChainItem>& items,
                   const std::vector<unsigned>& wire_of_item, unsigned wires,
                   std::size_t i, unsigned wire) {
  std::size_t core_chains = 0;
  for (const ChainItem& it : items)
    if (it.core == items[i].core) ++core_chains;
  if (core_chains > wires) return true;  // relaxed: wrapper concatenation
  for (std::size_t j = 0; j < items.size(); ++j) {
    if (j == i || items[j].core != items[i].core) continue;
    if (wire_of_item[j] == wire) return false;
  }
  return true;
}

}  // namespace

Balance assign_lpt_grouped(const std::vector<ChainItem>& items,
                           unsigned wires) {
  CASBUS_REQUIRE(wires >= 1, "assign_lpt_grouped: need at least one wire");
  std::vector<std::size_t> order(items.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return items[a].length > items[b].length;
                   });

  // Per-core wire occupancy, maintained incrementally: item_slot maps each
  // item to a dense per-core slot, held[slot][w] counts that core's items
  // currently carrying wire value w. Unassigned items sit at the default
  // wire 0 and are counted — the same first-fit semantics the previous
  // O(items^2 * wires) wire_free_for scan produced — so assignments are
  // identical while the pass drops to O(items * wires). That difference is
  // what lets session pricing scale to the 100–1000-core synthetic SoCs of
  // src/explore (thousands of chain items per partition).
  std::unordered_map<std::size_t, std::size_t> slot_of;
  std::vector<std::size_t> chains_of;  // items per core
  std::vector<std::size_t> item_slot(items.size());
  for (std::size_t i = 0; i < items.size(); ++i) {
    const auto [it, fresh] = slot_of.try_emplace(items[i].core,
                                                 slot_of.size());
    if (fresh) chains_of.push_back(0);
    item_slot[i] = it->second;
    ++chains_of[it->second];
  }
  std::vector<std::vector<std::size_t>> held(
      chains_of.size(), std::vector<std::size_t>(wires, 0));
  for (const std::size_t slot : item_slot) ++held[slot][0];

  std::vector<unsigned> w(items.size(), 0);
  std::vector<std::size_t> load(wires, 0);
  for (const std::size_t i : order) {
    const std::size_t slot = item_slot[i];
    // Relaxed when the core overflows the bus (wrapper concatenation).
    const bool relaxed = chains_of[slot] > wires;
    unsigned best = 0;
    std::size_t best_load = SIZE_MAX;
    bool found = false;
    for (unsigned cand = 0; cand < wires; ++cand) {
      if (!relaxed && held[slot][cand] - (w[i] == cand ? 1 : 0) > 0)
        continue;  // a sibling chain already holds this wire
      if (load[cand] < best_load) {
        best_load = load[cand];
        best = cand;
        found = true;
      }
    }
    if (!found) {  // constraint unsatisfiable; fall back to least loaded
      best = static_cast<unsigned>(
          std::min_element(load.begin(), load.end()) - load.begin());
    }
    --held[slot][w[i]];
    w[i] = best;
    ++held[slot][best];
    load[best] += items[i].length;
  }
  return make_balance(items, wires, w);
}

Balance assign_lpt_grouped_refined(const std::vector<ChainItem>& items,
                                   unsigned wires) {
  Balance b = assign_lpt_grouped(items, wires);
  if (items.empty()) return b;

  // The move/swap polish below costs O(items^3) per round in the worst
  // case; past this size the LPT 4/3 guarantee stands alone. Only the
  // synthetic 100–1000-core sessions of src/explore ever cross the limit
  // — every physical session in the tree stays far below it (the largest
  // legacy user balances ~20 chains), so their placements are unchanged.
  constexpr std::size_t kRefineItemLimit = 96;
  if (items.size() > kRefineItemLimit) return b;

  bool improved = true;
  while (improved) {
    improved = false;
    const std::size_t before = b.max_load();
    // Constraint-preserving moves off a maximal wire.
    for (std::size_t i = 0; i < items.size() && !improved; ++i) {
      const unsigned src = b.wire_of_item[i];
      if (b.wire_load[src] != before) continue;
      for (unsigned dst = 0; dst < wires; ++dst) {
        if (dst == src ||
            !wire_free_for(items, b.wire_of_item, wires, i, dst))
          continue;
        if (b.wire_load[dst] + items[i].length < before) {
          b.wire_load[src] -= items[i].length;
          b.wire_load[dst] += items[i].length;
          b.wire_of_item[i] = dst;
          improved = true;
          break;
        }
      }
    }
    // Constraint-preserving swaps.
    for (std::size_t i = 0; i < items.size() && !improved; ++i) {
      const unsigned wi = b.wire_of_item[i];
      if (b.wire_load[wi] != before) continue;
      for (std::size_t j = 0; j < items.size() && !improved; ++j) {
        const unsigned wj = b.wire_of_item[j];
        if (wj == wi || items[j].length >= items[i].length) continue;
        const std::size_t delta = items[i].length - items[j].length;
        if (b.wire_load[wj] + delta >= before) continue;
        // Tentative swap must keep both cores' constraints.
        std::vector<unsigned> trial = b.wire_of_item;
        std::swap(trial[i], trial[j]);
        // Re-check uniqueness for both moved items.
        const auto ok = [&](std::size_t k) {
          for (std::size_t m = 0; m < items.size(); ++m) {
            if (m == k || items[m].core != items[k].core) continue;
            std::size_t core_chains = 0;
            for (const ChainItem& it : items)
              if (it.core == items[k].core) ++core_chains;
            if (core_chains > wires) return true;
            if (trial[m] == trial[k]) return false;
          }
          return true;
        };
        if (!ok(i) || !ok(j)) continue;
        b.wire_load[wi] -= delta;
        b.wire_load[wj] += delta;
        b.wire_of_item = std::move(trial);
        improved = true;
      }
    }
  }
  return b;
}

std::size_t balance_lower_bound(const std::vector<ChainItem>& items,
                                unsigned wires) {
  CASBUS_REQUIRE(wires >= 1, "balance_lower_bound: need >= 1 wire");
  std::size_t total = 0;
  std::size_t longest = 0;
  for (const ChainItem& it : items) {
    total += it.length;
    longest = std::max(longest, it.length);
  }
  return std::max<std::size_t>(longest, (total + wires - 1) / wires);
}

}  // namespace casbus::sched
