/// \file exact.hpp
/// Exact session scheduling for small instances.
///
/// Enumerates partitions of the scan cores into ordered-irrelevant session
/// groups, prices each surviving partition with the same validated time
/// model the heuristics use, and returns the optimum. Since PR 4 the
/// enumeration is pruned with the shared balance lower bound
/// (sched/lower_bound.hpp) and seeded with the greedy incumbent, which
/// pushes the practical limit from ~7 to ~12 scan cores. Used to measure
/// how far the polynomial heuristics (greedy / phased / rails) sit from
/// optimal — an evaluation the paper could not run in 2000 — and as the
/// ground truth the branch-and-bound scheduler (src/explore/) is gated
/// against.

#pragma once

#include "sched/scheduler.hpp"

namespace casbus::sched {

/// Result of the exhaustive search.
struct ExactResult {
  Schedule schedule;                 ///< an optimal partition schedule
  /// Partition leaves fully priced. With lower-bound pruning this is far
  /// below the Bell number, and can be 0 when the greedy incumbent is
  /// already provably optimal.
  std::uint64_t partitions_tried = 0;
  std::uint64_t subtrees_pruned = 0; ///< partial partitions cut by the bound
  /// best()/optimal − 1, computed here (not by the bench). Negative values
  /// are possible: best() sweeps rail emulation, which is not a session
  /// partition and may beat every partition schedule.
  double heuristic_gap = 0.0;
};

/// Prices one complete scan partition: each group becomes a session, then
/// BIST cores are slotted greedily into whichever session's total grows
/// least (one wire each, overflow gets dedicated sessions) — the same
/// policy as SessionScheduler::greedy, so searches over scan partitions
/// stay cost-consistent with the heuristics. This is the shared leaf
/// evaluator of exact_schedule and explore::BranchBoundScheduler. When
/// \p out_sessions is non-null it receives the fully priced sessions.
std::uint64_t price_scan_partition(
    const SessionScheduler& scheduler,
    const std::vector<std::vector<std::size_t>>& scan_groups,
    const std::vector<std::size_t>& bist_cores,
    std::vector<ScheduledSession>* out_sessions = nullptr);

/// The scan-core groups of the greedy heuristic's sessions — the shared
/// incumbent seed of exact_schedule and explore::BranchBoundScheduler
/// (both re-price it with price_scan_partition so seeds and search leaves
/// stay exactly comparable).
std::vector<std::vector<std::size_t>> greedy_scan_groups(
    const SessionScheduler& scheduler);

/// The provably optimal schedule of a pure-BIST instance: engines sorted
/// by session length and chunked width at a time, so the i-th session's
/// cost meets its lower bound (the i*width-th longest engine) with the
/// minimum session count. Exposed because both exact_schedule and
/// explore::BranchBoundScheduler special-case the no-scan-partition
/// dimension this way. Requires at least one core and no scan cores.
Schedule optimal_pure_bist_schedule(const SessionScheduler& scheduler);

/// Searches all partitions of the scan cores (BIST cores are slotted like
/// the greedy scheduler does), pruning partial partitions whose lower
/// bound already meets the incumbent. Throws when the instance has more
/// than \p max_cores scan cores (the search is exponential).
/// \p compute_heuristic_gap controls the best()-vs-optimal comparison —
/// callers that only need the schedule (Strategy::Exact dispatch) skip
/// the full heuristic sweep.
ExactResult exact_schedule(const SessionScheduler& scheduler,
                           std::size_t max_cores = 12,
                           bool compute_heuristic_gap = true);

}  // namespace casbus::sched
