/// \file exact.hpp
/// Exact (exhaustive) session scheduling for small instances.
///
/// Enumerates every partition of the scan cores into ordered-irrelevant
/// session groups (Bell-number search, feasible to ~10 cores), prices each
/// partition with the same validated time model the heuristics use, and
/// returns the optimum. Used to measure how far the polynomial heuristics
/// (greedy / phased / rails) sit from optimal — an evaluation the paper
/// could not run in 2000.

#pragma once

#include "sched/scheduler.hpp"

namespace casbus::sched {

/// Result of the exhaustive search.
struct ExactResult {
  Schedule schedule;                ///< an optimal partition schedule
  std::uint64_t partitions_tried = 0;
  double heuristic_gap = 0.0;       ///< best()/optimal − 1 (filled by bench)
};

/// Searches all partitions of the scan cores (BIST cores are slotted like
/// the greedy scheduler does). Throws when the instance has more than
/// \p max_cores scan cores (the search is exponential).
ExactResult exact_schedule(const SessionScheduler& scheduler,
                           std::size_t max_cores = 10);

}  // namespace casbus::sched
