/// \file lower_bound.hpp
/// Admissible lower bounds on CAS-BUS test schedules.
///
/// These bounds underpin the exact scheduler's pruning and the
/// branch-and-bound search in src/explore/: every function here provably
/// underestimates the cost the pricing model (SessionScheduler) can charge
/// for the same work, so a search that discards nodes whose bound meets the
/// incumbent never discards an optimum. The key inequality is the classical
/// balance/LPT makespan bound: a wire load can never drop below
/// max(longest single chain, ceil(total bits / wires)), and scan_cycles()
/// is monotone in both the load and the pattern count.

#pragma once

#include "sched/scheduler.hpp"

namespace casbus::sched {

/// Incrementally maintained aggregates of a (partial) session group. A
/// branch-and-bound search adds one core at a time in O(1) and reads an
/// admissible bound on whatever session the group eventually becomes.
struct GroupBound {
  std::size_t sum_bits = 0;       ///< total scan bits across member cores
  std::size_t longest_chain = 0;  ///< longest single chain in the group
  std::size_t max_patterns = 0;   ///< pattern budget the session must apply

  void add(const CoreTestSpec& core);

  /// Lower bound on the scan term of any session containing (at least)
  /// these cores on at most \p width wires. Admissible versus
  /// SessionScheduler pricing: the real session balances on
  /// width - #BIST wires (fewer), with the grouped-placement constraint
  /// (tighter), so its max load can only be larger.
  [[nodiscard]] std::uint64_t scan_lower_bound(unsigned width) const;
};

/// Lower bound on any session that tests \p core — alone or with
/// co-tenants — on a bus of \p width wires (configuration cost excluded).
[[nodiscard]] std::uint64_t core_session_lower_bound(const CoreTestSpec& core,
                                                     unsigned width);

/// Total wire-cycles any schedule must spend on \p cores: scan shift work
/// (patterns * bits per core — invariant under chain placement) plus BIST
/// engine occupancy (one wire for the engine's whole run). Divided by the
/// bus width this is the conservation term shared by schedule_lower_bound
/// and the exact / branch-and-bound node bounds.
[[nodiscard]] std::uint64_t total_wire_work(
    const std::vector<CoreTestSpec>& cores);

/// Proven lower bound on the total cycles of *any* schedule of \p cores on
/// \p width wires — session partitions, phased rebalancing, and rail
/// emulation alike. Two arguments combine:
///  - wire-time conservation: T * width wire-cycles must cover every scan
///    bit shifted (sum of patterns * bits per core) plus every BIST
///    engine's occupancy, and
///  - the most demanding single core bounds the program from below.
/// Every schedule pays for at least one configuration (\p config_cycles).
[[nodiscard]] std::uint64_t schedule_lower_bound(
    const std::vector<CoreTestSpec>& cores, unsigned width,
    std::uint64_t config_cycles);

}  // namespace casbus::sched
