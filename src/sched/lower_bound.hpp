/// \file lower_bound.hpp
/// Admissible lower bounds on CAS-BUS test schedules.
///
/// These bounds underpin the exact scheduler's pruning and the
/// branch-and-bound search in src/explore/: every function here provably
/// underestimates the cost the pricing model (SessionScheduler) can charge
/// for the same work, so a search that discards nodes whose bound meets the
/// incumbent never discards an optimum. The key inequality is the classical
/// balance/LPT makespan bound: a wire load can never drop below
/// max(longest single chain, ceil(total bits / wires)), and scan_cycles()
/// is monotone in both the load and the pattern count.

#pragma once

#include "sched/scheduler.hpp"

namespace casbus::sched {

/// Incrementally maintained aggregates of a (partial) session group. A
/// branch-and-bound search adds one core at a time in O(1) and reads an
/// admissible bound on whatever session the group eventually becomes.
struct GroupBound {
  std::size_t sum_bits = 0;       ///< total scan bits across member cores
  std::size_t longest_chain = 0;  ///< longest single chain in the group
  std::size_t max_patterns = 0;   ///< pattern budget the session must apply

  void add(const CoreTestSpec& core);

  /// Lower bound on the scan term of any session containing (at least)
  /// these cores on at most \p width wires. Admissible versus
  /// SessionScheduler pricing: the real session balances on
  /// width - #BIST wires (fewer), with the grouped-placement constraint
  /// (tighter), so its max load can only be larger.
  [[nodiscard]] std::uint64_t scan_lower_bound(unsigned width) const;
};

/// Lower bound on any session that tests \p core — alone or with
/// co-tenants — on a bus of \p width wires (configuration cost excluded).
[[nodiscard]] std::uint64_t core_session_lower_bound(const CoreTestSpec& core,
                                                     unsigned width);

/// Total wire-cycles any schedule must spend on \p cores: scan shift work
/// (patterns * bits per core — invariant under chain placement) plus BIST
/// engine occupancy (one wire for the engine's whole run). Divided by the
/// bus width this is the conservation term shared by schedule_lower_bound
/// and the exact / branch-and-bound node bounds.
[[nodiscard]] std::uint64_t total_wire_work(
    const std::vector<CoreTestSpec>& cores);

/// Proven lower bound on the total cycles of *any* schedule of \p cores on
/// \p width wires — session partitions, phased rebalancing, and rail
/// emulation alike. Two arguments combine:
///  - wire-time conservation: T * width wire-cycles must cover every scan
///    bit shifted (sum of patterns * bits per core) plus every BIST
///    engine's occupancy, and
///  - the most demanding single core bounds the program from below.
/// Every schedule pays for at least one configuration (\p config_cycles).
[[nodiscard]] std::uint64_t schedule_lower_bound(
    const std::vector<CoreTestSpec>& cores, unsigned width,
    std::uint64_t config_cycles);

// --- Partition-model bounds -------------------------------------------
//
// The three functions below are admissible versus the *partition pricing
// model* shared by sched::exact_schedule and explore::BranchBoundScheduler
// (price_scan_partition): a scan session keeps at least one scan wire, so
// it hosts at most width-1 BIST riders, and every engine that does not
// ride gets a dedicated single-engine session. They are deliberately NOT
// folded into schedule_lower_bound's universal claim: rail emulation
// serializes engines on one wire of one rail, which can beat the per-
// session chunking these bounds assume (engines {10,1,1,1} on 2 wires run
// in 10 cycles on a rail but no 1-rider-per-session partition does).

/// Minimum number of sessions any completion of a prefix with
/// \p scan_groups open scan groups can end with, counting the dedicated
/// sessions its \p bist_engines force. Minimized over every possible
/// final group count >= scan_groups, so it is admissible at interior
/// search nodes, and reduces to max(1, scan_groups) when there are no
/// engines (the classical reconfiguration term).
[[nodiscard]] std::uint64_t partition_session_floor(std::size_t scan_groups,
                                                    std::size_t bist_engines,
                                                    unsigned width);

/// Minimum number of sessions any completion must add *beyond* those a
/// prefix's structural term already pays for: new scan groups opened plus
/// dedicated engine-overflow sessions, whichever mix is cheapest. Each
/// such session costs at least one reconfiguration, so
/// structural + config * partition_overflow_floor(...) is admissible.
[[nodiscard]] std::uint64_t partition_overflow_floor(std::size_t scan_groups,
                                                     std::size_t bist_engines,
                                                     unsigned width);

/// Pigeonhole bound on the summed per-session BIST terms: engines sorted
/// by length and chunked at the per-session rider capacity max(1,
/// width-1); the sum of chunk heads. Any assignment of engines to
/// sessions (each hosting at most that many, each session costing at
/// least its longest engine) sums to at least this — so it joins
/// total_wire_work / width as a floor on the summed session maxima.
[[nodiscard]] std::uint64_t bist_chunk_bound(
    const std::vector<CoreTestSpec>& cores, unsigned width);

}  // namespace casbus::sched
