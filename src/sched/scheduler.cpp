#include "sched/scheduler.hpp"

#include <algorithm>
#include <numeric>

// Deliberate upward dependency (cpp-only, no header cycle): Strategy is
// the run-time selection vocabulary of the whole tree, so schedule_with
// must dispatch every strategy — including the branch-and-bound engine
// that lives a layer above in src/explore. The casbus library is a single
// archive; if sched ever needs to stand alone, this dispatch case is the
// one seam to cut.
#include "explore/branch_bound.hpp"
#include "sched/exact.hpp"

namespace casbus::sched {

const char* strategy_name(Strategy s) noexcept {
  switch (s) {
    case Strategy::Single: return "single";
    case Strategy::PerCore: return "per_core";
    case Strategy::Greedy: return "greedy";
    case Strategy::Phased: return "phased";
    case Strategy::Best: return "best";
    case Strategy::Exact: return "exact";
    case Strategy::BranchBound: return "branch_bound";
  }
  return "unknown";
}

Strategy strategy_from_name(std::string_view name) {
  if (name == "single") return Strategy::Single;
  if (name == "per_core") return Strategy::PerCore;
  if (name == "greedy") return Strategy::Greedy;
  if (name == "phased") return Strategy::Phased;
  if (name == "best") return Strategy::Best;
  if (name == "exact") return Strategy::Exact;
  if (name == "branch_bound") return Strategy::BranchBound;
  CASBUS_REQUIRE(false, "unknown scheduling strategy: " + std::string(name));
  return Strategy::Greedy;  // unreachable
}

Schedule SessionScheduler::schedule_with(Strategy s, ScheduleStats* stats,
                                         std::size_t sched_threads) const {
  switch (s) {
    case Strategy::Single: return single_session();
    case Strategy::PerCore: return per_core_sessions();
    case Strategy::Greedy: return greedy();
    case Strategy::Phased: return phased();
    case Strategy::Best: return best();
    case Strategy::Exact:
      // Gap-free dispatch: callers here want the schedule, not the
      // best()-vs-optimal comparison.
      return exact_schedule(*this, 12, /*compute_heuristic_gap=*/false)
          .schedule;
    case Strategy::BranchBound: {
      explore::BranchBoundConfig bb;
      bb.threads = sched_threads;  // deterministic mode stays on: the
                                   // schedule must not depend on threads
      const explore::BranchBoundResult result =
          explore::BranchBoundScheduler(*this, bb).run();
      if (stats != nullptr) {
        stats->nodes_expanded = result.nodes_expanded;
        stats->prunes = result.prunes;
        stats->incumbent_improvements = result.incumbent_improvements;
        stats->leaves_priced = result.leaves_priced;
      }
      return result.schedule;
    }
  }
  CASBUS_REQUIRE(false, "schedule_with: invalid strategy");
  return {};  // unreachable
}

Schedule schedule_with(const std::vector<CoreTestSpec>& cores,
                       unsigned bus_width, Strategy s, ScheduleStats* stats,
                       std::size_t sched_threads) {
  return SessionScheduler(cores, bus_width)
      .schedule_with(s, stats, sched_threads);
}

SessionScheduler::SessionScheduler(std::vector<CoreTestSpec> cores,
                                   unsigned bus_width)
    : cores_(std::move(cores)), width_(bus_width) {
  CASBUS_REQUIRE(width_ >= 1, "SessionScheduler: bus width must be >= 1");
  CASBUS_REQUIRE(!cores_.empty(), "SessionScheduler: no cores");
  for (const CoreTestSpec& c : cores_)
    CASBUS_REQUIRE(c.is_scan() || c.bist_cycles > 0,
                   "core needs scan chains or BIST: " + c.name);
  std::vector<std::pair<unsigned, unsigned>> geometries;
  geometries.reserve(cores_.size());
  for (const CoreTestSpec& c : cores_) {
    const auto p = static_cast<unsigned>(
        c.is_scan() ? std::min<std::size_t>(c.chains.size(), width_) : 1);
    geometries.emplace_back(width_, p);
  }
  reconfig_cost_ = session_config_cycles(geometries, cores_.size());
}

ScheduledSession SessionScheduler::make_session(
    const std::vector<std::size_t>& scan,
    const std::vector<std::size_t>& bist) const {
  ScheduledSession s;
  s.scan_cores = scan;
  s.bist_cores = bist;
  s.config_cycles = reconfig_cost();

  // Each BIST core occupies one wire for its start/verdict handshake.
  CASBUS_REQUIRE(bist.size() <= width_, "more BIST cores than wires");
  const auto scan_wires = static_cast<unsigned>(width_ - bist.size());

  for (const std::size_t b : bist)
    s.bist_cycles = std::max(s.bist_cycles, cores_[b].bist_cycles);

  if (!scan.empty()) {
    CASBUS_REQUIRE(scan_wires >= 1,
                   "no wires left for scan after BIST allocation");
    std::size_t patterns = 0;
    for (const std::size_t c : scan) {
      for (std::size_t ch = 0; ch < cores_[c].chains.size(); ++ch)
        s.items.push_back(ChainItem{c, ch, cores_[c].chains[ch]});
      patterns = std::max(patterns, cores_[c].patterns);
    }
    s.patterns_applied = patterns;
    s.balance = assign_lpt_grouped_refined(s.items, scan_wires);
    s.scan_cycles = sched::scan_cycles(s.balance.max_load(), patterns);
  }
  return s;
}

Schedule SessionScheduler::single_session() const {
  std::vector<std::size_t> scan, bist;
  for (std::size_t i = 0; i < cores_.size(); ++i) {
    if (cores_[i].is_scan())
      scan.push_back(i);
    else
      bist.push_back(i);
  }
  // Each BIST core needs its own wire, so a narrow bus may be physically
  // unable to host everything in one configuration; split off additional
  // BIST sessions only when forced.
  const std::size_t first_capacity =
      scan.empty() ? width_ : (width_ > 1 ? width_ - 1 : 0);
  std::vector<std::size_t> first_bist, overflow;
  for (const std::size_t b : bist) {
    if (first_bist.size() < first_capacity)
      first_bist.push_back(b);
    else
      overflow.push_back(b);
  }

  Schedule sched;
  sched.sessions.push_back(make_session(scan, first_bist));
  sched.total_cycles = sched.sessions[0].total_cycles();
  for (std::size_t i = 0; i < overflow.size(); i += width_) {
    std::vector<std::size_t> chunk(
        overflow.begin() + static_cast<std::ptrdiff_t>(i),
        overflow.begin() + static_cast<std::ptrdiff_t>(
                               std::min(i + width_, overflow.size())));
    sched.sessions.push_back(make_session({}, chunk));
    sched.total_cycles += sched.sessions.back().total_cycles();
  }
  return sched;
}

Schedule SessionScheduler::per_core_sessions() const {
  Schedule sched;
  for (std::size_t i = 0; i < cores_.size(); ++i) {
    if (cores_[i].is_scan())
      sched.sessions.push_back(make_session({i}, {}));
    else
      sched.sessions.push_back(make_session({}, {i}));
    sched.total_cycles += sched.sessions.back().total_cycles();
  }
  return sched;
}

Schedule SessionScheduler::phased() const {
  // Partition cores.
  std::vector<std::size_t> scan, bist;
  for (std::size_t i = 0; i < cores_.size(); ++i) {
    if (cores_[i].is_scan())
      scan.push_back(i);
    else
      bist.push_back(i);
  }

  Schedule sched;

  // Pure-BIST SoCs degenerate to chunked parallel BIST sessions.
  if (scan.empty()) {
    for (std::size_t i = 0; i < bist.size(); i += width_) {
      std::vector<std::size_t> chunk(
          bist.begin() + static_cast<std::ptrdiff_t>(i),
          bist.begin() + static_cast<std::ptrdiff_t>(
                             std::min(i + width_, bist.size())));
      sched.sessions.push_back(make_session({}, chunk));
      sched.total_cycles += sched.sessions.back().total_cycles();
    }
    return sched;
  }

  // BIST cores occupy dedicated wires for the duration of the scan
  // program (overflow beyond the wire budget gets chunked sessions).
  std::size_t resident_bist =
      std::min<std::size_t>(bist.size(), width_ - 1);
  const auto scan_wires = static_cast<unsigned>(width_ - resident_bist);
  std::uint64_t bist_time = 0;
  for (std::size_t i = 0; i < resident_bist; ++i)
    bist_time = std::max(bist_time, cores_[bist[i]].bist_cycles);

  // Phase boundaries: distinct pattern counts, ascending.
  std::stable_sort(scan.begin(), scan.end(), [&](auto a, auto b) {
    return cores_[a].patterns < cores_[b].patterns;
  });

  std::uint64_t scan_time = 0;
  std::size_t done_patterns = 0;
  std::size_t cursor = 0;
  bool first_phase = true;
  while (cursor < scan.size()) {
    // Active set: every core not yet retired.
    const std::size_t v_target = cores_[scan[cursor]].patterns;
    std::vector<std::size_t> active(scan.begin() +
                                        static_cast<std::ptrdiff_t>(cursor),
                                    scan.end());
    ScheduledSession session;
    session.scan_cores = active;
    if (first_phase) {
      for (std::size_t i = 0; i < resident_bist; ++i)
        session.bist_cores.push_back(bist[i]);
      session.bist_cycles = bist_time;
      first_phase = false;
    }
    session.config_cycles = reconfig_cost();

    for (const std::size_t c : active)
      for (std::size_t ch = 0; ch < cores_[c].chains.size(); ++ch)
        session.items.push_back(ChainItem{c, ch, cores_[c].chains[ch]});
    session.balance = assign_lpt_grouped_refined(session.items, scan_wires);
    const std::size_t load = session.balance.max_load();
    const std::size_t dv = v_target - done_patterns;
    session.patterns_applied = dv;
    session.scan_cycles = sched::scan_cycles(load, dv);
    scan_time += session.scan_cycles;
    sched.sessions.push_back(std::move(session));

    done_patterns = v_target;
    while (cursor < scan.size() &&
           cores_[scan[cursor]].patterns == v_target)
      ++cursor;
  }

  sched.bist_spans_sessions = resident_bist > 0;

  // Total: phases are sequential; resident BIST overlaps the whole scan
  // program (it only needs its wires held).
  std::uint64_t total = 0;
  for (const auto& session : sched.sessions)
    total += session.scan_cycles + session.config_cycles;
  total = std::max(total, bist_time +
                              (sched.sessions.empty()
                                   ? reconfig_cost()
                                   : sched.sessions[0].config_cycles));

  // Overflow BIST sessions.
  for (std::size_t i = resident_bist; i < bist.size(); i += width_) {
    std::vector<std::size_t> chunk(
        bist.begin() + static_cast<std::ptrdiff_t>(i),
        bist.begin() + static_cast<std::ptrdiff_t>(
                           std::min(i + width_, bist.size())));
    sched.sessions.push_back(make_session({}, chunk));
    total += sched.sessions.back().total_cycles();
  }
  sched.total_cycles = total;
  return sched;
}

Schedule SessionScheduler::rail_emulation(unsigned rails) const {
  CASBUS_REQUIRE(rails >= 1 && rails <= width_,
                 "rail_emulation: need 1 <= rails <= width");
  // Rail widths as equal as possible.
  std::vector<unsigned> rail_width(rails, width_ / rails);
  for (unsigned r = 0; r < width_ % rails; ++r) ++rail_width[r];

  // LPT over standalone core loads.
  std::vector<std::size_t> order(cores_.size());
  std::iota(order.begin(), order.end(), 0);
  const auto load_of = [&](std::size_t i) {
    const CoreTestSpec& c = cores_[i];
    if (c.is_scan())
      return static_cast<std::uint64_t>(c.patterns) * c.total_scan_bits();
    return c.bist_cycles;
  };
  std::stable_sort(order.begin(), order.end(), [&](auto a, auto b) {
    return load_of(a) > load_of(b);
  });

  std::vector<std::uint64_t> rail_time(rails, 0);
  for (const std::size_t i : order) {
    const auto r = static_cast<unsigned>(
        std::min_element(rail_time.begin(), rail_time.end()) -
        rail_time.begin());
    const CoreTestSpec& c = cores_[i];
    if (c.is_scan()) {
      std::vector<ChainItem> items;
      for (std::size_t ch = 0; ch < c.chains.size(); ++ch)
        items.push_back(ChainItem{i, ch, c.chains[ch]});
      const Balance b = assign_lpt_grouped_refined(items, rail_width[r]);
      rail_time[r] += sched::scan_cycles(b.max_load(), c.patterns);
    }
    rail_time[r] += c.bist_cycles;
  }

  // One configuration; groups run in parallel, so the chip-level time is
  // the slowest group. Represent as a single coarse session.
  Schedule sched;
  ScheduledSession session;
  for (std::size_t i = 0; i < cores_.size(); ++i) {
    if (cores_[i].is_scan())
      session.scan_cores.push_back(i);
    else
      session.bist_cores.push_back(i);
  }
  session.config_cycles = reconfig_cost();
  session.scan_cycles =
      *std::max_element(rail_time.begin(), rail_time.end());
  sched.sessions.push_back(std::move(session));
  sched.total_cycles = sched.sessions[0].total_cycles();
  sched.chip_synchronous = false;
  return sched;
}

Schedule SessionScheduler::best() const {
  Schedule result = single_session();
  for (const Schedule& candidate :
       {per_core_sessions(), greedy(), phased()}) {
    if (candidate.total_cycles < result.total_cycles) result = candidate;
  }
  // Rail-style plans: BIST cores need a wire each within their rail, so
  // only rail counts that keep every rail at least one wire wide apply.
  for (unsigned rails = 1; rails <= width_ && rails <= 8; ++rails) {
    const Schedule candidate = rail_emulation(rails);
    if (candidate.total_cycles < result.total_cycles) result = candidate;
  }
  return result;
}

Schedule SessionScheduler::greedy() const {
  // Order scan cores by pattern count descending so cores with similar
  // pattern budgets group together; BIST cores are slotted into whichever
  // session has a spare wire.
  std::vector<std::size_t> scan_order, bist_order;
  for (std::size_t i = 0; i < cores_.size(); ++i) {
    if (cores_[i].is_scan())
      scan_order.push_back(i);
    else
      bist_order.push_back(i);
  }
  std::stable_sort(scan_order.begin(), scan_order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return cores_[a].patterns > cores_[b].patterns;
                   });

  Schedule sched;
  std::vector<std::vector<std::size_t>> groups;  // scan core groups
  for (const std::size_t core : scan_order) {
    bool placed = false;
    for (auto& group : groups) {
      // Marginal test: joining `group` must beat a dedicated session.
      std::vector<std::size_t> with = group;
      with.push_back(core);
      const std::uint64_t t_with = make_session(with, {}).total_cycles();
      const std::uint64_t t_without =
          make_session(group, {}).total_cycles();
      const std::uint64_t t_alone = make_session({core}, {}).total_cycles();
      if (t_with <= t_without + t_alone) {
        group.push_back(core);
        placed = true;
        break;
      }
    }
    if (!placed) groups.push_back({core});
  }

  // Slot BIST cores greedily into the group whose total grows least (they
  // consume one wire each); overflow gets dedicated sessions.
  std::vector<std::vector<std::size_t>> group_bist(groups.size());
  std::vector<std::vector<std::size_t>> extra_bist_sessions;
  for (const std::size_t core : bist_order) {
    std::size_t best_group = groups.size();
    std::uint64_t best_delta = make_session({}, {core}).total_cycles();
    for (std::size_t g = 0; g < groups.size(); ++g) {
      if (group_bist[g].size() + 1 >= width_) continue;  // keep 1 scan wire
      std::vector<std::size_t> with = group_bist[g];
      with.push_back(core);
      const std::uint64_t t_with =
          make_session(groups[g], with).total_cycles();
      const std::uint64_t t_without =
          make_session(groups[g], group_bist[g]).total_cycles();
      if (t_with - t_without < best_delta) {
        best_delta = t_with - t_without;
        best_group = g;
      }
    }
    if (best_group < groups.size())
      group_bist[best_group].push_back(core);
    else
      extra_bist_sessions.push_back({core});
  }

  for (std::size_t g = 0; g < groups.size(); ++g) {
    sched.sessions.push_back(make_session(groups[g], group_bist[g]));
    sched.total_cycles += sched.sessions.back().total_cycles();
  }
  for (const auto& bist : extra_bist_sessions) {
    sched.sessions.push_back(make_session({}, bist));
    sched.total_cycles += sched.sessions.back().total_cycles();
  }
  if (sched.sessions.empty()) sched.total_cycles = 0;
  return sched;
}

}  // namespace casbus::sched
