/// \file scheduler.hpp
/// Multi-session test scheduling with dynamic reconfiguration.
///
/// Paper §4: "the CAS-BUS architecture can be easily modified, even during
/// test sessions, in order to optimize test performances" and §5:
/// "Different TAM architectures can be addressed, in sequential order,
/// within the same test program ... This represents the main advantage of
/// the proposed reconfigurable CAS-BUS architecture." The scheduler turns
/// that claim into numbers: it compares a single static configuration, a
/// one-core-at-a-time program, and a reconfiguration-aware greedy grouping.

#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "sched/balance.hpp"
#include "sched/time_model.hpp"

namespace casbus::sched {

/// Search-effort counters a strategy can report through schedule_with()'s
/// optional out-param. Only search-based strategies fill them in
/// (Strategy::BranchBound today); analytic heuristics leave the zeros.
/// Pure observability: the counters never influence the schedule.
struct ScheduleStats {
  std::uint64_t nodes_expanded = 0;          ///< B&B nodes popped
  std::uint64_t prunes = 0;                  ///< children cut by the bound
  std::uint64_t incumbent_improvements = 0;  ///< times the best improved
  std::uint64_t leaves_priced = 0;           ///< full partitions priced
};

/// Named scheduling strategies, so callers that select a strategy at run
/// time (CLI flags, test-floor job specs, benchmark sweeps) can drive
/// SessionScheduler generically via SessionScheduler::schedule_with().
///
/// All strategies except Best always produce chip-synchronous (directly
/// executable) schedules; Best additionally sweeps rail emulation, whose
/// winner may require per-group sequencing the broadcast-WSC controller
/// cannot execute (Schedule::chip_synchronous == false).
enum class Strategy {
  Single,      ///< SessionScheduler::single_session()
  PerCore,     ///< SessionScheduler::per_core_sessions()
  Greedy,      ///< SessionScheduler::greedy()
  Phased,      ///< SessionScheduler::phased()
  Best,        ///< SessionScheduler::best()
  Exact,       ///< sched::exact_schedule — optimal, small instances only
  BranchBound, ///< explore::BranchBoundScheduler — anytime best-first B&B
};

/// Stable lowercase name ("single", "per_core", "greedy", "phased",
/// "best", "exact", "branch_bound").
[[nodiscard]] const char* strategy_name(Strategy s) noexcept;

/// Inverse of strategy_name(); throws PreconditionError on unknown names.
[[nodiscard]] Strategy strategy_from_name(std::string_view name);

/// One test session: a set of cores tested concurrently under one bus
/// configuration.
struct ScheduledSession {
  std::vector<std::size_t> scan_cores;  ///< indices into the spec list
  std::vector<std::size_t> bist_cores;
  Balance balance;                      ///< chain placement for scan cores
  std::vector<ChainItem> items;         ///< the balanced items
  std::size_t patterns_applied = 0;     ///< scan patterns in this session
  std::uint64_t scan_cycles = 0;
  std::uint64_t bist_cycles = 0;
  std::uint64_t config_cycles = 0;

  [[nodiscard]] std::uint64_t total_cycles() const {
    return std::max(scan_cycles, bist_cycles) + config_cycles;
  }
};

/// A complete test program.
struct Schedule {
  std::vector<ScheduledSession> sessions;
  std::uint64_t total_cycles = 0;
  /// True when sessions are executable by a broadcast-WSC controller
  /// (everything except rail_emulation, which assumes per-group
  /// asynchronous sequencing).
  bool chip_synchronous = true;
  /// True when BIST engines listed in the first session are meant to run
  /// across subsequent sessions on program-wide reserved wires (the
  /// phased schedule's overlap model).
  bool bist_spans_sessions = false;
};

/// Builds schedules for one SoC (described by CoreTestSpecs) on an N-wire
/// CAS-BUS.
class SessionScheduler {
 public:
  SessionScheduler(std::vector<CoreTestSpec> cores, unsigned bus_width);

  /// Everything in one session under one static configuration — the
  /// "no reconfiguration" straw man (still uses wire sharing).
  [[nodiscard]] Schedule single_session() const;

  /// One core per session, each core alone on the full bus width.
  [[nodiscard]] Schedule per_core_sessions() const;

  /// Reconfiguration-aware greedy grouping: cores sorted by pattern count,
  /// each added to the open session only when testing it concurrently is
  /// cheaper than giving it its own session later.
  [[nodiscard]] Schedule greedy() const;

  /// Progressive-retirement schedule: all scan cores start together; every
  /// time the core with the smallest pattern budget finishes, the bus is
  /// *reconfigured* and the remaining chains are rebalanced over all scan
  /// wires. This is the purest expression of the paper's §4 claim ("the
  /// CAS-BUS architecture can be easily modified, even during test
  /// sessions, in order to optimize test performances") — a fixed TAM
  /// cannot rebalance mid-program. BIST cores run concurrently on
  /// dedicated wires.
  [[nodiscard]] Schedule phased() const;

  /// Rail emulation: the CAS-BUS reproduces a TestRail-style plan — wires
  /// split into \p rails groups, cores LPT-assigned to groups, cores on a
  /// group tested sequentially, groups running independently in parallel.
  /// Unlike a real TestRail, idle cores cost nothing (the CAS bypasses
  /// combinationally, no TestShell bypass bit) and the partition is chosen
  /// per program, not at design time. Assumes per-wrapper capture gating
  /// so groups sequence independently (see DESIGN.md).
  [[nodiscard]] Schedule rail_emulation(unsigned rails) const;

  /// The best of all strategies, including a sweep of rail counts (what a
  /// test programmer would ship).
  [[nodiscard]] Schedule best() const;

  /// Dispatches to the strategy named by \p s — the run-time-selection
  /// entry point used by the test floor and the CLIs. Strategy::Exact
  /// throws (via exact_schedule) beyond ~12 scan cores;
  /// Strategy::BranchBound runs the default-budget branch-and-bound and
  /// always returns a chip-synchronous partition schedule. A non-null
  /// \p stats receives the strategy's search-effort counters.
  /// \p sched_threads drives the branch-and-bound search's worker pool
  /// (1 = serial, 0 = one per hardware thread) and is ignored by every
  /// other strategy; the search runs in deterministic mode, so the
  /// returned Schedule is byte-identical at any thread count — which is
  /// what keeps this entry point memoizable (see the free overload).
  [[nodiscard]] Schedule schedule_with(Strategy s,
                                       ScheduleStats* stats = nullptr,
                                       std::size_t sched_threads = 1) const;

  /// Cycles to reconfigure between sessions on this SoC (every CAS IR plus
  /// the wrapper ring). Computed once at construction — it depends only on
  /// the core list — so per-session pricing stays O(balance).
  [[nodiscard]] std::uint64_t reconfig_cost() const noexcept {
    return reconfig_cost_;
  }

  /// Prices one candidate session with the shared cost model — public so
  /// external search strategies (e.g. sched::exact_schedule) stay
  /// cost-consistent with the built-in heuristics.
  [[nodiscard]] ScheduledSession price_session(
      const std::vector<std::size_t>& scan_cores,
      const std::vector<std::size_t>& bist_cores) const {
    return make_session(scan_cores, bist_cores);
  }

  [[nodiscard]] const std::vector<CoreTestSpec>& cores() const noexcept {
    return cores_;
  }
  [[nodiscard]] unsigned width() const noexcept { return width_; }

 private:
  /// Computes balance + times for a candidate session.
  [[nodiscard]] ScheduledSession make_session(
      const std::vector<std::size_t>& scan,
      const std::vector<std::size_t>& bist) const;

  std::vector<CoreTestSpec> cores_;
  unsigned width_;
  std::uint64_t reconfig_cost_ = 0;
};

/// Pure-function form of SessionScheduler::schedule_with: builds the
/// scheduler and dispatches in one call. Because the result is a
/// deterministic function of exactly (\p cores, \p bus_width, \p s) —
/// \p sched_threads is an engine knob that cannot change it (the
/// branch-and-bound search runs deterministically) — this is the
/// memoizable scheduling entry point: the floor's per-worker program
/// caches (src/floor/) key compiled programs on a digest of those three
/// inputs and reuse the returned Schedule byte-for-byte.
[[nodiscard]] Schedule schedule_with(const std::vector<CoreTestSpec>& cores,
                                     unsigned bus_width, Strategy s,
                                     ScheduleStats* stats = nullptr,
                                     std::size_t sched_threads = 1);

}  // namespace casbus::sched
