#include "sched/time_model.hpp"

#include "core/instruction.hpp"

namespace casbus::sched {

unsigned cas_ir_bits(unsigned n, unsigned p) {
  return tam::InstructionSet(n, p).k();
}

std::uint64_t session_config_cycles(
    const std::vector<std::pair<unsigned, unsigned>>& cas_geometries,
    std::size_t n_wrappers) {
  std::size_t ir_bits = 0;
  for (const auto& [n, p] : cas_geometries) ir_bits += cas_ir_bits(n, p);
  return configure_cycles(ir_bits) + wir_cycles(n_wrappers);
}

}  // namespace casbus::sched
