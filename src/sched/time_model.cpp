#include "sched/time_model.hpp"

#include <cmath>

#include "core/arrangement.hpp"
#include "core/instruction.hpp"

namespace casbus::sched {

unsigned cas_ir_bits(unsigned n, unsigned p) {
  // A(N,P) overflows 64 bits for wide, many-port CASes (e.g. N=32, P=16 —
  // geometries the 100–1000-core synthetic SoCs reach), but k =
  // ceil(log2(A+2)) stays tiny. Below 2^62 the product provably fits and
  // the instruction set gives the Table-1-exact k; above, the ceil of the
  // logarithm (the +2 special codes are negligible at that magnitude).
  CASBUS_REQUIRE(p >= 1 && p <= n, "cas_ir_bits: need 1 <= p <= n");
  const double log2_a = tam::log2_arrangement_count(n, p);
  if (log2_a <= 62.0) return tam::InstructionSet(n, p).k();
  return static_cast<unsigned>(std::ceil(log2_a));
}

std::uint64_t session_config_cycles(
    const std::vector<std::pair<unsigned, unsigned>>& cas_geometries,
    std::size_t n_wrappers) {
  std::size_t ir_bits = 0;
  for (const auto& [n, p] : cas_geometries) ir_bits += cas_ir_bits(n, p);
  return configure_cycles(ir_bits) + wir_cycles(n_wrappers);
}

}  // namespace casbus::sched
