/// \file width_explorer.hpp
/// The §3.2 trade-off: "the larger is the width of the test bus (N), the
/// shorter is the overall test time. ... when the width of the test bus
/// becomes important, the induced CAS-BUS overhead can be significant. A
/// good trade-off between test time, test requirements and CAS-BUS
/// overhead allows to choose an optimal width for the test bus."

#pragma once

#include <cstdint>
#include <vector>

#include "core/cas_generator.hpp"
#include "sched/scheduler.hpp"

namespace casbus::sched {

/// One point of the width sweep.
struct WidthPoint {
  unsigned width = 0;
  std::uint64_t test_cycles = 0;   ///< greedy schedule total
  double cas_area_ge = 0.0;        ///< sum of all CAS areas (GE)
  std::size_t cas_cells = 0;       ///< sum of CAS cell counts
  double pass_transistor_ge = 0.0; ///< same switches, pass-transistor style
};

/// Evaluates the SoC across bus widths [w_min, w_max]: schedule time from
/// the greedy scheduler, area from generated gate-level CASes (given
/// implementation) plus the §3.3 pass-transistor alternative.
std::vector<WidthPoint> explore_widths(
    const std::vector<CoreTestSpec>& cores, unsigned w_min, unsigned w_max,
    tam::CasImplementation impl =
        tam::CasImplementation::OptimizedGateLevel);

}  // namespace casbus::sched
