#include "sched/width_explorer.hpp"

#include <algorithm>
#include <map>

#include "netlist/area.hpp"

namespace casbus::sched {

std::vector<WidthPoint> explore_widths(
    const std::vector<CoreTestSpec>& cores, unsigned w_min, unsigned w_max,
    tam::CasImplementation impl) {
  CASBUS_REQUIRE(w_min >= 1 && w_min <= w_max,
                 "explore_widths: invalid width range");
  const netlist::AreaModel area = netlist::AreaModel::typical();
  std::vector<WidthPoint> points;

  for (unsigned n = w_min; n <= w_max; ++n) {
    WidthPoint pt;
    pt.width = n;

    SessionScheduler scheduler(cores, n);
    pt.test_cycles = scheduler.best().total_cycles;

    // One CAS per core; memoize geometry costs (cores often share P).
    std::map<unsigned, std::pair<double, std::size_t>> geometry_cache;
    for (const CoreTestSpec& core : cores) {
      const auto p = static_cast<unsigned>(
          core.is_scan() ? std::min<std::size_t>(core.chains.size(), n)
                         : 1);
      auto it = geometry_cache.find(p);
      if (it == geometry_cache.end()) {
        const tam::GeneratedCas cas =
            tam::generate_cas(n, p, {impl, true});
        it = geometry_cache
                 .emplace(p, std::make_pair(area.total(cas.netlist),
                                            cas.netlist.cell_count()))
                 .first;
      }
      pt.cas_area_ge += it->second.first;
      pt.cas_cells += it->second.second;
      pt.pass_transistor_ge +=
          tam::pass_transistor_area(n, p).gate_equivalents;
    }
    points.push_back(pt);
  }
  return points;
}

}  // namespace casbus::sched
