/// \file metrics.hpp
/// The floor-wide metrics registry: counters, gauges, and fixed-bucket
/// latency histograms with lock-free per-thread shards.
///
/// ## Why shards
/// The instrumented hot paths (the floor's worker loops, the per-worker
/// program caches, the job pipeline's stage timers) run on N threads at
/// once. A single shared atomic per counter would serialize those threads
/// on cache-line ping-pong; a mutex would be worse. Instead every thread
/// that touches a Registry gets its own *shard* — a private, cache-line-
/// aligned slot array it alone writes (plain load+store on atomics, no
/// RMW, no contention). snapshot() sums the shards under the registration
/// mutex with relaxed loads, which is exact for quiesced threads and a
/// consistent-enough live sample for a running floor.
///
/// ## Cost model (guarded by bench_obs + the CI overhead gate)
/// - add()/observe() hot path: one thread-local cache probe (a linear scan
///   over typically one entry) + one relaxed atomic load/store pair.
/// - disabled telemetry: instrument sites hold a `Registry*` that is null
///   when telemetry is off, so the disabled cost is one pointer test —
///   the "compiles to near-zero" contract the floor relies on.
/// - snapshot(): O(metrics x shards) under a mutex; a cold path by design
///   (periodic stats tailing, end-of-run reports).
///
/// ## Determinism contract
/// The registry only *observes*: it never feeds a value back into any
/// computation, so enabling or disabling it cannot change a deterministic
/// result anywhere in the tree (tests/test_obs.cpp pins the floor's
/// deterministic_summary() on/off equality).
///
/// Metric names are stable identifiers (docs/OBSERVABILITY.md catalogues
/// the floor's); registering the same name twice returns the same id.

#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace casbus::obs {

/// Dense handle of one registered metric; valid for the registry that
/// issued it. Counters and histograms draw from separate id spaces.
using MetricId = std::size_t;

/// Aggregated view of one histogram at snapshot time. Buckets are
/// cumulative-free counts: counts[i] observations fell in
/// (bounds[i-1], bounds[i]]; the last bucket is the +inf overflow.
struct HistogramSnapshot {
  std::string name;
  std::vector<double> bounds;          ///< upper bounds, ascending
  std::vector<std::uint64_t> counts;   ///< bounds.size() + 1 buckets
  std::uint64_t count = 0;             ///< total observations
  double sum = 0.0;                    ///< sum of observed values

  /// Bucket-interpolated quantile (q in [0,1]): the classic Prometheus-
  /// style estimate — exact to bucket resolution, monotone in q. Returns
  /// 0 when empty; values in the overflow bucket report its lower bound.
  [[nodiscard]] double percentile(double q) const;
  [[nodiscard]] double p50() const { return percentile(0.50); }
  [[nodiscard]] double p90() const { return percentile(0.90); }
  [[nodiscard]] double p99() const { return percentile(0.99); }
};

/// One consistent-enough aggregation of a Registry (see file comment).
struct Snapshot {
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::vector<std::pair<std::string, double>> gauges;
  std::vector<HistogramSnapshot> histograms;

  /// Value of the named counter/gauge; 0 when absent (absence and zero
  /// are indistinguishable by design — both mean "nothing happened").
  [[nodiscard]] std::uint64_t counter(std::string_view name) const;
  [[nodiscard]] double gauge(std::string_view name) const;
  /// Null when absent. The pointer aims into this snapshot, so it is
  /// lvalue-only: `registry.snapshot().histogram(...)` would dangle and
  /// does not compile — bind the snapshot to a local first.
  [[nodiscard]] const HistogramSnapshot* histogram(
      std::string_view name) const&;
  const HistogramSnapshot* histogram(std::string_view name) const&& = delete;

  /// One-line JSON object: counters and gauges as numbers, histograms as
  /// {"count","sum","p50","p90","p99"} objects. Stable key order
  /// (registration order) so diffs are line-diffable.
  [[nodiscard]] std::string to_json() const;
};

class Registry {
 public:
  /// Opaque per-thread slot storage; defined in metrics.cpp.
  struct Shard;

  Registry();
  ~Registry();
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// Registers (or finds) a monotonic counter. Cold path; typically called
  /// once at session construction, before worker threads start.
  [[nodiscard]] MetricId counter(std::string name);

  /// Registers (or finds) a histogram with the given ascending upper
  /// bounds (an implicit +inf overflow bucket is appended). Re-registering
  /// a name returns the existing id; the bounds must match.
  [[nodiscard]] MetricId histogram(std::string name,
                                   std::vector<double> bounds);

  /// Registers a gauge: \p sampler is called at every snapshot() (under
  /// the registry mutex) and must be thread-safe. Gauges have no hot-path
  /// cost at all — they pull instead of being pushed.
  void gauge(std::string name, std::function<double()> sampler);

  /// Adds \p delta to a counter on the calling thread's shard. Lock-free
  /// except on this thread's very first touch of this registry.
  void add(MetricId id, std::uint64_t delta = 1) noexcept;

  /// Records one observation into a histogram (same sharding as add()).
  void observe(MetricId id, double value) noexcept;

  /// Aggregates all shards. See the cost model in the file comment.
  [[nodiscard]] Snapshot snapshot() const;

  /// Threads that have touched this registry so far (== shard count).
  [[nodiscard]] std::size_t shard_count() const;

  /// The default latency bucket ladder for stage histograms: 1 µs to 10 s
  /// in a 1-2-5 progression, in microseconds.
  [[nodiscard]] static std::vector<double> latency_buckets_us();

 private:
  struct CounterDesc {
    std::string name;
    std::size_t slot;  ///< index into Shard::slots
  };
  struct HistogramDesc {
    std::string name;
    std::vector<double> bounds;
    std::size_t slot;  ///< first of bounds.size()+2 slots (buckets+count)
    std::size_t sum;   ///< index into Shard::sums
  };
  struct GaugeDesc {
    std::string name;
    std::function<double()> sampler;
  };

  /// The calling thread's cached shard-plus-layout view (a cpp-internal
  /// type, hence the erased pointer); creates the shard on first touch.
  [[nodiscard]] const void* local_view_erased() const;
  [[nodiscard]] Shard* make_shard_locked() const;

  const std::uint64_t serial_;  ///< process-unique, keys the TLS cache

  mutable std::mutex mu_;
  std::vector<CounterDesc> counters_;
  std::vector<HistogramDesc> histograms_;
  std::vector<GaugeDesc> gauges_;
  std::size_t slot_count_ = 0;  ///< uint64 slots a new shard must carry
  std::size_t sum_count_ = 0;   ///< double slots a new shard must carry
  mutable std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace casbus::obs
