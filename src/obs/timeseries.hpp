/// \file timeseries.hpp
/// Time-series sampling over an obs::Registry: a bounded ring of periodic
/// snapshots exposing windowed rates and deltas.
///
/// ## Why
/// The registry's counters are cumulative: "floor.jobs.executed = 1843"
/// says nothing about whether the floor is moving *now*. Every consumer
/// that wants a rate (jobs/s, cache hit-rate over the last second, a p99
/// trend) had to pair two snapshots by hand and divide. The sampler does
/// that pairing once, centrally: it snapshots the registry on a fixed
/// interval into per-series ring buffers (bounded, drop-oldest) and
/// answers windowed questions — delta(), rate_per_sec(), window() — over
/// the retained history. floor::HealthMonitor evaluates its rule
/// catalogue against these windows, and incident bundles embed the
/// last-N window as the "what led up to this" record.
///
/// ## Series derivation
/// Each tick flattens one Registry snapshot into named scalar series:
/// every counter and gauge under its registry name, and per histogram
/// three derived series — `<name>.count`, `<name>.sum`, `<name>.p99`.
/// The series set is discovered as ticks happen; a metric registered
/// after the first tick gets a new series backfilled with zeros (the
/// value a fresh counter would have read anyway).
///
/// ## Determinism & cost contract
/// The sampler only *reads* the registry (snapshot() is const) — it can
/// no more change a deterministic result than a human tailing floorstat
/// can, and tests/test_health.cpp pins the floor's
/// deterministic_summary() with the sampler on vs off. One tick costs one
/// Registry::snapshot() plus O(series) ring stores — tens of µs on the
/// floor catalogue, gated at <= 50 µs by bench_obs + CI
/// (tools/bench_floors.json "obs.max_sampler_tick_us").
///
/// ## Threading
/// sample_now() is safe from any thread (internally serialized); start()
/// spawns one background thread that ticks every interval_ms and then
/// invokes the optional on_tick callback (the floor hangs its health
/// evaluation there, so one thread drives the whole sample -> evaluate ->
/// alarm loop). All read accessors are mutex-consistent with ticks.

#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"

namespace casbus::obs {

struct SamplerConfig {
  /// Background-thread tick period; ignored by manual sample_now() use.
  std::size_t interval_ms = 250;
  /// Samples retained per series (drop-oldest past this).
  std::size_t window = 240;
};

class TimeSeriesSampler {
 public:
  /// \p registry must outlive the sampler.
  explicit TimeSeriesSampler(const Registry& registry,
                             SamplerConfig config = {});
  ~TimeSeriesSampler();  ///< stops the background thread if running
  TimeSeriesSampler(const TimeSeriesSampler&) = delete;
  TimeSeriesSampler& operator=(const TimeSeriesSampler&) = delete;

  /// Spawns the background tick thread (idempotent). After every tick the
  /// optional \p on_tick callback runs on the sampler thread — the hook
  /// the floor's health loop hangs off. The callback must not call
  /// start()/stop() (deadlock) but may call sample_now() and any reader.
  void start(std::function<void()> on_tick = {});

  /// Stops and joins the background thread (idempotent, safe if never
  /// started).
  void stop();

  /// Takes one sample right now (also what the background thread calls).
  /// Safe from any thread, including concurrently with the thread.
  void sample_now();

  /// Total ticks taken since construction (monotonic, not capped).
  [[nodiscard]] std::uint64_t samples() const;

  /// Samples currently retained (<= config.window).
  [[nodiscard]] std::size_t window_size() const;

  [[nodiscard]] const SamplerConfig& config() const noexcept {
    return config_;
  }

  /// Names of every discovered series, in discovery order.
  [[nodiscard]] std::vector<std::string> series_names() const;

  /// Last sampled value of \p name; 0 when the series is unknown or no
  /// tick has happened (absence and zero are indistinguishable, matching
  /// Snapshot::counter()).
  [[nodiscard]] double latest(std::string_view name) const;

  /// last - first over the most recent \p n samples (0 = whole window).
  /// 0 with fewer than two samples.
  [[nodiscard]] double delta(std::string_view name,
                             std::size_t n = 0) const;

  /// delta over the same window divided by its wall-time span, per
  /// second. 0 with fewer than two samples or a degenerate (<= 0) span —
  /// a rate of zero, not a NaN, is what a stalled window reports.
  [[nodiscard]] double rate_per_sec(std::string_view name,
                                    std::size_t n = 0) const;

  /// The most recent \p n (0 = all retained) points of \p name as
  /// (seconds-since-construction, value) pairs, oldest first.
  [[nodiscard]] std::vector<std::pair<double, double>> window(
      std::string_view name, std::size_t n = 0) const;

  /// The retained window as one JSON object:
  /// {"samples":K,"interval_ms":...,"t":[...],"series":{"name":[...]}}.
  /// This is the time-series half of an incident bundle.
  [[nodiscard]] std::string window_json(std::size_t n = 0) const;

 private:
  struct Series {
    std::string name;
    std::vector<double> ring;  ///< config.window slots
  };

  void run();  ///< background thread body

  /// Chronological ring indices of the last \p n retained samples.
  [[nodiscard]] std::vector<std::size_t> last_indices_locked(
      std::size_t n) const;
  [[nodiscard]] const Series* find_locked(std::string_view name) const;

  const Registry& registry_;
  const SamplerConfig config_;
  const std::chrono::steady_clock::time_point epoch_;

  mutable std::mutex mu_;
  std::vector<Series> series_;
  std::vector<double> times_;   ///< seconds since epoch_, ring
  std::size_t head_ = 0;        ///< next ring slot to write
  std::size_t count_ = 0;       ///< retained samples (<= window)
  std::uint64_t ticks_ = 0;     ///< total samples ever taken

  std::mutex thread_mu_;        ///< guards start/stop + stop_ handshake
  std::condition_variable cv_;
  std::thread thread_;
  bool stop_ = false;
  std::function<void()> on_tick_;
};

}  // namespace casbus::obs
