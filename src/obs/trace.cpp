#include "obs/trace.hpp"

#include <fstream>
#include <ostream>

namespace casbus::obs {

/// One buffer cell. `ready` is the publication flag: the recording thread
/// release-stores it after filling `span`, and readers acquire-load it
/// before touching `span` — the only synchronization a fixed-size,
/// claim-then-fill buffer needs.
struct TraceRecorder::Slot {
  TraceSpan span;
  std::atomic<bool> ready{false};
};

TraceRecorder::TraceRecorder(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity),
      slots_(new Slot[capacity == 0 ? 1 : capacity]),
      epoch_(std::chrono::steady_clock::now()) {}

TraceRecorder::~TraceRecorder() = default;

std::uint64_t TraceRecorder::now_us() const {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - epoch_)
          .count());
}

bool TraceRecorder::record(const TraceSpan& span) noexcept {
  const std::size_t idx = next_.fetch_add(1, std::memory_order_relaxed);
  if (idx >= capacity_) {
    // Drop-newest: the buffer keeps the run's beginning (see file
    // comment). The cursor keeps advancing so dropped() is exact.
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  slots_[idx].span = span;
  slots_[idx].ready.store(true, std::memory_order_release);
  return true;
}

std::size_t TraceRecorder::recorded() const noexcept {
  const std::size_t claimed = next_.load(std::memory_order_relaxed);
  return claimed < capacity_ ? claimed : capacity_;
}

namespace {

void write_escaped(std::ostream& os, const char* s) {
  for (; *s != '\0'; ++s) {
    const char c = *s;
    if (c == '"' || c == '\\') {
      os << '\\' << c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      os << ' ';
    } else {
      os << c;
    }
  }
}

}  // namespace

void TraceRecorder::write_chrome_trace(std::ostream& os) const {
  os << "{\"displayTimeUnit\":\"ms\",\"otherData\":{\"recorded\":"
     << recorded() << ",\"dropped\":" << dropped()
     << ",\"capacity\":" << capacity_ << "},\"traceEvents\":[";
  const std::size_t n = recorded();
  bool first = true;
  for (std::size_t i = 0; i < n; ++i) {
    const Slot& slot = slots_[i];
    if (!slot.ready.load(std::memory_order_acquire)) continue;
    const TraceSpan& s = slot.span;
    if (!first) os << ',';
    first = false;
    os << "\n{\"name\":\"";
    write_escaped(os, s.name);
    os << "\",\"cat\":\"";
    write_escaped(os, s.category);
    os << "\",\"ph\":\"X\",\"ts\":" << s.ts_us << ",\"dur\":" << s.dur_us
       << ",\"pid\":1,\"tid\":" << s.tid << ",\"args\":{\"slot\":" << s.slot;
    if (s.scenario != nullptr) {
      os << ",\"scenario\":\"";
      write_escaped(os, s.scenario);
      os << '"';
    }
    if (s.cache_tier != nullptr) {
      os << ",\"cache_tier\":\"";
      write_escaped(os, s.cache_tier);
      os << '"';
    }
    os << "}}";
  }
  os << "\n]}\n";
}

bool TraceRecorder::write_chrome_trace(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return false;
  write_chrome_trace(out);
  return static_cast<bool>(out);
}

}  // namespace casbus::obs
