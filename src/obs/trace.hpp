/// \file trace.hpp
/// Pipeline tracing: a bounded, drop-safe span buffer serialized to the
/// Chrome trace-event JSON format (load the file in chrome://tracing or
/// https://ui.perfetto.dev to see the floor's per-job stage timeline).
///
/// ## Why drop-newest, why never block
/// Tracing rides inside the floor's worker hot loop. A recorder that
/// blocks (or allocates) when full would couple job throughput to trace
/// consumption, which is exactly the tail-latency coupling observability
/// must not introduce. So the buffer is bounded at construction, spans
/// past capacity are *counted and dropped* (drop-newest keeps the start
/// of the run, which is where scheduling anomalies live), and record()
/// is wait-free: one fetch_add to claim a slot, one release store to
/// publish it.
///
/// ## Timestamps
/// All spans share one steady-clock epoch (recorder construction), so a
/// single trace file's spans are mutually ordered even across threads.
/// Times are microseconds, the trace-event format's native unit.
///
/// ## String lifetime
/// TraceSpan carries `const char*` fields on purpose: the recorder never
/// copies them, so they must outlive the recorder — in practice they are
/// string literals (stage_name(), scenario_name(), cache_tier_name()).

#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>

namespace casbus::obs {

/// One completed span: a named interval on a thread. Default category
/// "stage" matches the floor's six pipeline stages; job-level spans use
/// "job".
struct TraceSpan {
  const char* name = "";            ///< static-lifetime (see file comment)
  const char* category = "stage";   ///< static-lifetime
  const char* scenario = nullptr;   ///< optional args.scenario
  const char* cache_tier = nullptr; ///< optional args.cache_tier
  std::uint32_t tid = 0;            ///< worker index (trace row)
  std::uint64_t slot = 0;           ///< job arrival slot (args.slot)
  std::uint64_t ts_us = 0;          ///< start, µs since recorder epoch
  std::uint64_t dur_us = 0;         ///< duration, µs
};

class TraceRecorder {
 public:
  /// \p capacity spans are retained; everything past that is dropped and
  /// counted. Sized once — no allocation ever happens on record().
  explicit TraceRecorder(std::size_t capacity);
  ~TraceRecorder();
  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  /// Microseconds since this recorder's epoch; use for TraceSpan::ts_us.
  [[nodiscard]] std::uint64_t now_us() const;

  /// Wait-free append. Returns false (and counts a drop) when full.
  bool record(const TraceSpan& span) noexcept;

  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  /// Spans retained in the buffer.
  [[nodiscard]] std::size_t recorded() const noexcept;
  /// Spans refused because the buffer was full.
  [[nodiscard]] std::uint64_t dropped() const noexcept {
    return dropped_.load(std::memory_order_relaxed);
  }

  /// Serializes retained spans as Chrome trace-event JSON. Safe to call
  /// while workers still record (published spans only), but the intended
  /// use is after drain(). otherData carries recorded/dropped counts so a
  /// truncated trace is self-describing.
  void write_chrome_trace(std::ostream& os) const;
  /// File-path convenience; false when the file cannot be opened.
  bool write_chrome_trace(const std::string& path) const;

 private:
  struct Slot;

  const std::size_t capacity_;
  std::unique_ptr<Slot[]> slots_;
  std::atomic<std::size_t> next_{0};    ///< claim cursor (may exceed cap)
  std::atomic<std::uint64_t> dropped_{0};
  std::chrono::steady_clock::time_point epoch_;
};

}  // namespace casbus::obs
