#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <memory>
#include <sstream>

namespace casbus::obs {
namespace {

/// Registry serial numbers are process-unique so a thread-local cache
/// entry can never falsely match a new Registry that reuses a dead one's
/// address. Serial 0 is reserved as "empty cache entry".
std::atomic<std::uint64_t> g_next_serial{1};

/// Formats a double the way JSON wants it: finite, shortest-ish, and
/// never "nan"/"inf" (both are invalid JSON — map to 0).
std::string json_number(double v) {
  if (!std::isfinite(v)) return "0";
  std::ostringstream os;
  os.precision(12);
  os << v;
  return os.str();
}

}  // namespace

/// One thread's private slice of every metric. `slots` carries all
/// counter cells and histogram bucket/count cells; `sums` carries the
/// histogram sums (doubles). Only the owning thread writes; snapshot()
/// reads with relaxed loads. Sized at creation — a shard created before
/// a late registration simply has no cells for the new metric, and the
/// hot path bounds-checks against that (registration is expected to
/// happen before worker threads start, so in practice this never trips).
struct alignas(64) Registry::Shard {
  explicit Shard(std::size_t slot_count, std::size_t sum_count)
      : slots(slot_count), sums(sum_count) {}
  std::vector<std::atomic<std::uint64_t>> slots;
  std::vector<std::atomic<double>> sums;
};

Registry::Registry()
    : serial_(g_next_serial.fetch_add(1, std::memory_order_relaxed)) {}

Registry::~Registry() = default;

MetricId Registry::counter(std::string name) {
  std::lock_guard<std::mutex> lock(mu_);
  for (std::size_t i = 0; i < counters_.size(); ++i) {
    if (counters_[i].name == name) return i;
  }
  counters_.push_back(CounterDesc{std::move(name), slot_count_});
  ++slot_count_;
  return counters_.size() - 1;
}

MetricId Registry::histogram(std::string name, std::vector<double> bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  for (std::size_t i = 0; i < histograms_.size(); ++i) {
    if (histograms_[i].name == name) return i;
  }
  HistogramDesc desc;
  desc.name = std::move(name);
  desc.bounds = std::move(bounds);
  std::sort(desc.bounds.begin(), desc.bounds.end());
  desc.slot = slot_count_;
  desc.sum = sum_count_;
  slot_count_ += desc.bounds.size() + 2;  // buckets + overflow + count
  ++sum_count_;
  histograms_.push_back(std::move(desc));
  return histograms_.size() - 1;
}

void Registry::gauge(std::string name, std::function<double()> sampler) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& g : gauges_) {
    if (g.name == name) {
      g.sampler = std::move(sampler);
      return;
    }
  }
  gauges_.push_back(GaugeDesc{std::move(name), std::move(sampler)});
}

Registry::Shard* Registry::make_shard_locked() const {
  shards_.push_back(std::make_unique<Shard>(slot_count_, sum_count_));
  return shards_.back().get();
}

namespace {

/// A thread's cached view of one registry: its private shard plus the
/// slot layout frozen at shard-creation time. A metric registered after
/// that moment has no cells in this shard anyway (shards are sized at
/// creation), so the frozen layout and the shard agree by construction —
/// which is what lets add()/observe() skip the registry mutex entirely.
struct ShardView {
  std::uint64_t serial = 0;
  Registry::Shard* shard = nullptr;
  std::vector<std::size_t> counter_slots;  ///< indexed by counter id
  struct Hist {
    std::size_t slot = 0;  ///< first bucket cell
    std::size_t sum = 0;
    std::vector<double> bounds;
  };
  std::vector<Hist> hists;  ///< indexed by histogram id
};

}  // namespace

const void* Registry::local_view_erased() const {
  // A thread usually touches one registry (the session's), occasionally
  // two (a test exercising several) — a tiny linear-scanned vector beats
  // a map here.
  thread_local std::vector<ShardView> cache;
  for (const auto& e : cache) {
    if (e.serial == serial_) return &e;
  }
  ShardView view;
  view.serial = serial_;
  {
    std::lock_guard<std::mutex> lock(mu_);
    view.shard = make_shard_locked();
    view.counter_slots.reserve(counters_.size());
    for (const auto& c : counters_) view.counter_slots.push_back(c.slot);
    view.hists.reserve(histograms_.size());
    for (const auto& h : histograms_) {
      view.hists.push_back(ShardView::Hist{h.slot, h.sum, h.bounds});
    }
  }
  cache.push_back(std::move(view));
  return &cache.back();
}

void Registry::add(MetricId id, std::uint64_t delta) noexcept {
  const auto& view = *static_cast<const ShardView*>(local_view_erased());
  if (id >= view.counter_slots.size()) return;  // registered after shard
  auto& cell = view.shard->slots[view.counter_slots[id]];
  cell.store(cell.load(std::memory_order_relaxed) + delta,
             std::memory_order_relaxed);
}

void Registry::observe(MetricId id, double value) noexcept {
  const auto& view = *static_cast<const ShardView*>(local_view_erased());
  if (id >= view.hists.size()) return;  // registered after shard
  const auto& h = view.hists[id];
  const std::size_t buckets = h.bounds.size() + 1;
  const std::size_t bucket = static_cast<std::size_t>(
      std::lower_bound(h.bounds.begin(), h.bounds.end(), value) -
      h.bounds.begin());
  auto bump = [](std::atomic<std::uint64_t>& cell) {
    cell.store(cell.load(std::memory_order_relaxed) + 1,
               std::memory_order_relaxed);
  };
  bump(view.shard->slots[h.slot + bucket]);
  bump(view.shard->slots[h.slot + buckets]);  // count cell after buckets
  auto& sum_cell = view.shard->sums[h.sum];
  sum_cell.store(sum_cell.load(std::memory_order_relaxed) + value,
                 std::memory_order_relaxed);
}

Snapshot Registry::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  Snapshot snap;
  snap.counters.reserve(counters_.size());
  for (const auto& c : counters_) {
    std::uint64_t total = 0;
    for (const auto& shard : shards_) {
      if (c.slot < shard->slots.size()) {
        total += shard->slots[c.slot].load(std::memory_order_relaxed);
      }
    }
    snap.counters.emplace_back(c.name, total);
  }
  snap.gauges.reserve(gauges_.size());
  for (const auto& g : gauges_) {
    snap.gauges.emplace_back(g.name, g.sampler ? g.sampler() : 0.0);
  }
  snap.histograms.reserve(histograms_.size());
  for (const auto& h : histograms_) {
    HistogramSnapshot hs;
    hs.name = h.name;
    hs.bounds = h.bounds;
    hs.counts.assign(h.bounds.size() + 1, 0);
    const std::size_t buckets = h.bounds.size() + 1;
    for (const auto& shard : shards_) {
      if (h.slot + buckets + 1 > shard->slots.size()) continue;
      for (std::size_t b = 0; b < buckets; ++b) {
        hs.counts[b] += shard->slots[h.slot + b].load(
            std::memory_order_relaxed);
      }
      hs.count += shard->slots[h.slot + buckets].load(
          std::memory_order_relaxed);
      if (h.sum < shard->sums.size()) {
        hs.sum += shard->sums[h.sum].load(std::memory_order_relaxed);
      }
    }
    snap.histograms.push_back(std::move(hs));
  }
  return snap;
}

std::size_t Registry::shard_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return shards_.size();
}

std::vector<double> Registry::latency_buckets_us() {
  // 1-2-5 ladder from 1 µs to 10 s: wide enough for a sub-µs Build stage
  // and a multi-second 1000-core Schedule alike.
  std::vector<double> bounds;
  for (double decade = 1.0; decade <= 1e7; decade *= 10.0) {
    bounds.push_back(decade);
    bounds.push_back(decade * 2.0);
    bounds.push_back(decade * 5.0);
  }
  return bounds;
}

double HistogramSnapshot::percentile(double q) const {
  if (count == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double rank = q * static_cast<double>(count);
  std::uint64_t seen = 0;
  for (std::size_t b = 0; b < counts.size(); ++b) {
    const std::uint64_t in_bucket = counts[b];
    if (in_bucket == 0) continue;
    if (static_cast<double>(seen + in_bucket) >= rank) {
      if (b >= bounds.size()) {
        // Overflow bucket is unbounded above; report its lower bound.
        return bounds.empty() ? 0.0 : bounds.back();
      }
      const double lo = b == 0 ? 0.0 : bounds[b - 1];
      const double hi = bounds[b];
      const double into =
          (rank - static_cast<double>(seen)) / static_cast<double>(in_bucket);
      return lo + (hi - lo) * std::clamp(into, 0.0, 1.0);
    }
    seen += in_bucket;
  }
  return bounds.empty() ? 0.0 : bounds.back();
}

std::uint64_t Snapshot::counter(std::string_view name) const {
  for (const auto& [n, v] : counters) {
    if (n == name) return v;
  }
  return 0;
}

double Snapshot::gauge(std::string_view name) const {
  for (const auto& [n, v] : gauges) {
    if (n == name) return v;
  }
  return 0.0;
}

const HistogramSnapshot* Snapshot::histogram(std::string_view name) const& {
  for (const auto& h : histograms) {
    if (h.name == name) return &h;
  }
  return nullptr;
}

std::string Snapshot::to_json() const {
  std::ostringstream os;
  os << '{';
  bool first = true;
  auto sep = [&] {
    if (!first) os << ',';
    first = false;
  };
  for (const auto& [n, v] : counters) {
    sep();
    os << '"' << n << "\":" << v;
  }
  for (const auto& [n, v] : gauges) {
    sep();
    os << '"' << n << "\":" << json_number(v);
  }
  for (const auto& h : histograms) {
    sep();
    os << '"' << h.name << "\":{\"count\":" << h.count
       << ",\"sum\":" << json_number(h.sum)
       << ",\"p50\":" << json_number(h.p50())
       << ",\"p90\":" << json_number(h.p90())
       << ",\"p99\":" << json_number(h.p99()) << '}';
  }
  os << '}';
  return os.str();
}

}  // namespace casbus::obs
