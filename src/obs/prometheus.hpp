/// \file prometheus.hpp
/// Prometheus text-exposition writer over an obs::Snapshot.
///
/// The registry's names ("floor.jobs.executed", "floor.stage.simulate.us")
/// are dotted; Prometheus metric names are [a-zA-Z_:][a-zA-Z0-9_:]*. The
/// mapping is mechanical and documented in docs/OBSERVABILITY.md:
///
///   - every non-alphanumeric character becomes '_',
///   - every name gains the "casbus_" prefix,
///   - counters additionally gain the conventional "_total" suffix,
///   - histograms expand to the standard triplet: cumulative
///     `_bucket{le="..."}` lines (the registry's per-bucket counts are
///     non-cumulative; the writer accumulates), `_sum`, and `_count`.
///
/// So `floor.jobs.executed` (counter) exports as
/// `casbus_floor_jobs_executed_total`, and `floor.stage.simulate.us`
/// (histogram) as the `casbus_floor_stage_simulate_us_bucket/_sum/_count`
/// family. The output is a complete exposition body (HELP + TYPE + sample
/// lines, trailing newline) that `promtool check metrics` accepts;
/// tools/check_prom.py lints the same invariants in CI.
///
/// This is a pure formatter over an already-taken Snapshot — it never
/// touches a live registry, so it inherits snapshot()'s consistency model
/// and cannot perturb the floor.

#pragma once

#include <string>
#include <string_view>

#include "obs/metrics.hpp"

namespace casbus::obs {

/// Registry name -> Prometheus name ("floor.jobs.executed" ->
/// "casbus_floor_jobs_executed" with the default prefix). Applies the
/// character mapping and prefix only — kind suffixes (_total, _bucket...)
/// are the serializer's job.
[[nodiscard]] std::string prometheus_name(std::string_view name,
                                          std::string_view prefix = "casbus_");

/// Serializes \p snap as a Prometheus text-exposition body (format
/// version 0.0.4): counters, gauges, and histograms, each preceded by
/// # HELP / # TYPE lines, in snapshot (= registration) order.
[[nodiscard]] std::string to_prometheus(const Snapshot& snap,
                                        std::string_view prefix = "casbus_");

}  // namespace casbus::obs
