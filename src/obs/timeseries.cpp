#include "obs/timeseries.hpp"

#include <cmath>
#include <sstream>

namespace casbus::obs {
namespace {

/// JSON-safe number: finite values only (NaN/inf are invalid JSON).
std::string json_number(double v) {
  if (!std::isfinite(v)) return "0";
  std::ostringstream os;
  os.precision(12);
  os << v;
  return os.str();
}

}  // namespace

TimeSeriesSampler::TimeSeriesSampler(const Registry& registry,
                                     SamplerConfig config)
    : registry_(registry),
      config_(SamplerConfig{config.interval_ms,
                            config.window == 0 ? 1 : config.window}),
      epoch_(std::chrono::steady_clock::now()) {
  times_.assign(config_.window, 0.0);
}

TimeSeriesSampler::~TimeSeriesSampler() { stop(); }

void TimeSeriesSampler::start(std::function<void()> on_tick) {
  const std::lock_guard<std::mutex> lock(thread_mu_);
  if (thread_.joinable()) return;
  stop_ = false;
  on_tick_ = std::move(on_tick);
  thread_ = std::thread([this] { run(); });
}

void TimeSeriesSampler::stop() {
  {
    const std::lock_guard<std::mutex> lock(thread_mu_);
    stop_ = true;
  }
  cv_.notify_all();
  // joinable() is safe to test without the lock here: only stop() ever
  // joins, and concurrent stop() calls are serialized by thread_mu_ above
  // having published stop_ = true before either reaches join().
  std::unique_lock<std::mutex> lock(thread_mu_);
  if (thread_.joinable()) {
    std::thread t = std::move(thread_);
    lock.unlock();  // the thread body never takes thread_mu_; join bare
    t.join();
  }
}

void TimeSeriesSampler::run() {
  std::unique_lock<std::mutex> lock(thread_mu_);
  while (!stop_) {
    cv_.wait_for(lock, std::chrono::milliseconds(
                           config_.interval_ms == 0 ? 1 : config_.interval_ms),
                 [this] { return stop_; });
    if (stop_) break;
    lock.unlock();
    sample_now();
    if (on_tick_) on_tick_();
    lock.lock();
  }
}

void TimeSeriesSampler::sample_now() {
  // Snapshot outside our own critical work is not worth the complexity:
  // snapshot() takes the registry mutex, ours serializes ticks. Tick cost
  // is gated (<= 50 µs) so holding mu_ across both is fine.
  const Snapshot snap = registry_.snapshot();
  const double t = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - epoch_)
                       .count();

  const std::lock_guard<std::mutex> lock(mu_);
  // Flatten the snapshot to (name, value) pairs in a stable order.
  std::size_t series_idx = 0;
  auto record = [&](const std::string& name, double value) {
    // Discovery order is registration order, which is stable, so the
    // positional fast path hits every tick after the first; the fallback
    // scan only runs when a metric was registered mid-stream.
    if (series_idx >= series_.size() || series_[series_idx].name != name) {
      std::size_t found = series_.size();
      for (std::size_t i = 0; i < series_.size(); ++i) {
        if (series_[i].name == name) {
          found = i;
          break;
        }
      }
      if (found == series_.size()) {
        Series s;
        s.name = name;
        s.ring.assign(config_.window, 0.0);  // zero backfill (see header)
        series_.push_back(std::move(s));
      }
      series_idx = found;
    }
    series_[series_idx].ring[head_] = value;
    ++series_idx;
  };

  for (const auto& [name, value] : snap.counters)
    record(name, static_cast<double>(value));
  for (const auto& [name, value] : snap.gauges) record(name, value);
  for (const auto& h : snap.histograms) {
    record(h.name + ".count", static_cast<double>(h.count));
    record(h.name + ".sum", h.sum);
    record(h.name + ".p99", h.p99());
  }

  times_[head_] = t;
  head_ = (head_ + 1) % config_.window;
  if (count_ < config_.window) ++count_;
  ++ticks_;
}

std::uint64_t TimeSeriesSampler::samples() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return ticks_;
}

std::size_t TimeSeriesSampler::window_size() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return count_;
}

std::vector<std::string> TimeSeriesSampler::series_names() const {
  const std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(series_.size());
  for (const Series& s : series_) names.push_back(s.name);
  return names;
}

std::vector<std::size_t> TimeSeriesSampler::last_indices_locked(
    std::size_t n) const {
  const std::size_t take = (n == 0 || n > count_) ? count_ : n;
  std::vector<std::size_t> idx;
  idx.reserve(take);
  // head_ is the next write slot; the newest sample is head_ - 1.
  for (std::size_t k = take; k > 0; --k) {
    idx.push_back((head_ + config_.window - k) % config_.window);
  }
  return idx;
}

const TimeSeriesSampler::Series* TimeSeriesSampler::find_locked(
    std::string_view name) const {
  for (const Series& s : series_) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

double TimeSeriesSampler::latest(std::string_view name) const {
  const std::lock_guard<std::mutex> lock(mu_);
  const Series* s = find_locked(name);
  if (s == nullptr || count_ == 0) return 0.0;
  return s->ring[(head_ + config_.window - 1) % config_.window];
}

double TimeSeriesSampler::delta(std::string_view name, std::size_t n) const {
  const std::lock_guard<std::mutex> lock(mu_);
  const Series* s = find_locked(name);
  if (s == nullptr || count_ < 2) return 0.0;
  const auto idx = last_indices_locked(n);
  if (idx.size() < 2) return 0.0;
  return s->ring[idx.back()] - s->ring[idx.front()];
}

double TimeSeriesSampler::rate_per_sec(std::string_view name,
                                       std::size_t n) const {
  const std::lock_guard<std::mutex> lock(mu_);
  const Series* s = find_locked(name);
  if (s == nullptr || count_ < 2) return 0.0;
  const auto idx = last_indices_locked(n);
  if (idx.size() < 2) return 0.0;
  const double dt = times_[idx.back()] - times_[idx.front()];
  if (dt <= 1e-9) return 0.0;
  return (s->ring[idx.back()] - s->ring[idx.front()]) / dt;
}

std::vector<std::pair<double, double>> TimeSeriesSampler::window(
    std::string_view name, std::size_t n) const {
  const std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<double, double>> out;
  const Series* s = find_locked(name);
  if (s == nullptr) return out;
  const auto idx = last_indices_locked(n);
  out.reserve(idx.size());
  for (const std::size_t i : idx) out.emplace_back(times_[i], s->ring[i]);
  return out;
}

std::string TimeSeriesSampler::window_json(std::size_t n) const {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto idx = last_indices_locked(n);
  std::ostringstream os;
  os << "{\"samples\":" << idx.size()
     << ",\"interval_ms\":" << config_.interval_ms << ",\"t\":[";
  for (std::size_t k = 0; k < idx.size(); ++k) {
    if (k != 0) os << ',';
    os << json_number(times_[idx[k]]);
  }
  os << "],\"series\":{";
  for (std::size_t si = 0; si < series_.size(); ++si) {
    if (si != 0) os << ',';
    os << '"' << series_[si].name << "\":[";
    for (std::size_t k = 0; k < idx.size(); ++k) {
      if (k != 0) os << ',';
      os << json_number(series_[si].ring[idx[k]]);
    }
    os << ']';
  }
  os << "}}";
  return os.str();
}

}  // namespace casbus::obs
