#include "obs/prometheus.hpp"

#include <cmath>
#include <sstream>

namespace casbus::obs {
namespace {

/// Prometheus sample values are floats; NaN/inf have spellings but we
/// never produce them from a snapshot (sums of finite observations), so
/// map any non-finite defensively to 0.
std::string prom_number(double v) {
  if (!std::isfinite(v)) return "0";
  std::ostringstream os;
  os.precision(12);
  os << v;
  return os.str();
}

/// HELP text must not contain raw newlines; our help strings are
/// generated from the metric name, so just state provenance.
void write_header(std::ostringstream& os, const std::string& prom,
                  std::string_view source, std::string_view type) {
  os << "# HELP " << prom << " casbus metric " << source << '\n';
  os << "# TYPE " << prom << ' ' << type << '\n';
}

}  // namespace

std::string prometheus_name(std::string_view name, std::string_view prefix) {
  std::string out;
  out.reserve(prefix.size() + name.size());
  out.append(prefix);
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out.push_back(ok ? c : '_');
  }
  if (out.empty() || (out[0] >= '0' && out[0] <= '9')) out.insert(0, 1, '_');
  return out;
}

std::string to_prometheus(const Snapshot& snap, std::string_view prefix) {
  std::ostringstream os;

  for (const auto& [name, value] : snap.counters) {
    const std::string prom = prometheus_name(name, prefix) + "_total";
    write_header(os, prom, name, "counter");
    os << prom << ' ' << value << '\n';
  }

  for (const auto& [name, value] : snap.gauges) {
    const std::string prom = prometheus_name(name, prefix);
    write_header(os, prom, name, "gauge");
    os << prom << ' ' << prom_number(value) << '\n';
  }

  for (const HistogramSnapshot& h : snap.histograms) {
    const std::string prom = prometheus_name(h.name, prefix);
    write_header(os, prom, h.name, "histogram");
    // Registry buckets are per-bucket counts; Prometheus buckets are
    // cumulative <= le, ending in the mandatory +Inf == _count.
    std::uint64_t cum = 0;
    for (std::size_t i = 0; i < h.bounds.size(); ++i) {
      cum += i < h.counts.size() ? h.counts[i] : 0;
      os << prom << "_bucket{le=\"" << prom_number(h.bounds[i]) << "\"} "
         << cum << '\n';
    }
    os << prom << "_bucket{le=\"+Inf\"} " << h.count << '\n';
    os << prom << "_sum " << prom_number(h.sum) << '\n';
    os << prom << "_count " << h.count << '\n';
  }

  return os.str();
}

}  // namespace casbus::obs
