#include "tpg/patterns.hpp"

namespace casbus::tpg {

void PatternSet::add(BitVector p) {
  if (pats_.empty() && width_ == 0) width_ = p.size();
  CASBUS_REQUIRE(p.size() == width_, "PatternSet::add width mismatch");
  pats_.push_back(std::move(p));
}

PatternSet PatternSet::random(std::size_t width, std::size_t count,
                              Rng& rng) {
  PatternSet ps(width);
  for (std::size_t i = 0; i < count; ++i) {
    BitVector p(width);
    for (std::size_t b = 0; b < width; ++b) p.set(b, rng.coin());
    ps.add(std::move(p));
  }
  return ps;
}

PatternSet PatternSet::walking(std::size_t width) {
  PatternSet ps(width);
  for (std::size_t i = 0; i < width; ++i) {
    BitVector p(width, false);
    p.set(i, true);
    ps.add(std::move(p));
  }
  for (std::size_t i = 0; i < width; ++i) {
    BitVector p(width, true);
    p.set(i, false);
    ps.add(std::move(p));
  }
  return ps;
}

PatternSet PatternSet::counting(std::size_t width, std::size_t count) {
  CASBUS_REQUIRE(width <= 64, "counting patterns limited to 64 bits");
  PatternSet ps(width);
  for (std::size_t v = 0; v < count; ++v)
    ps.add(BitVector::from_uint(v, width));
  return ps;
}

PatternSet PatternSet::exhaustive(std::size_t width) {
  CASBUS_REQUIRE(width <= 20, "exhaustive patterns limited to 20 inputs");
  return counting(width, std::size_t{1} << width);
}

}  // namespace casbus::tpg
