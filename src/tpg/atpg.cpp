#include "tpg/atpg.hpp"

#include "util/rng.hpp"

namespace casbus::tpg {

AtpgResult generate_patterns(const netlist::Netlist& nl,
                             const AtpgOptions& options) {
  FaultSimulator fsim(nl);
  for (const auto& [name, value] : options.pinned_inputs)
    fsim.pin_input(name, value);

  const std::vector<Fault> faults = enumerate_faults(nl);
  std::vector<bool> detected(faults.size(), false);

  AtpgResult result;
  result.total_faults = faults.size();
  result.patterns = PatternSet(fsim.pattern_width());

  Rng rng(options.seed);
  const std::size_t width = fsim.pattern_width();

  for (std::size_t cand = 0; cand < options.max_candidates; ++cand) {
    if (result.patterns.size() >= options.max_patterns) break;
    if (result.coverage() >= options.target_coverage) break;

    BitVector pattern(width);
    for (std::size_t b = 0; b < width; ++b) pattern.set(b, rng.coin());
    ++result.candidates_tried;

    // Bit-parallel grading: 64 not-yet-detected faults per machine word.
    const std::size_t newly = fsim.grade(pattern, faults, detected);
    if (newly > 0) {
      result.patterns.add(std::move(pattern));
      result.detected += newly;
    }
  }
  return result;
}

}  // namespace casbus::tpg
