#include "tpg/fault.hpp"

#include <algorithm>
#include <utility>

namespace casbus::tpg {

using netlist::CellId;
using netlist::Netlist;

std::vector<Fault> enumerate_faults(const Netlist& nl) {
  return netlist::enumerate_stuck_at_faults(nl);
}

FaultSimulator::FaultSimulator(Netlist nl)
    : FaultSimulator(netlist::levelize(std::move(nl))) {}

FaultSimulator::FaultSimulator(
    std::shared_ptr<const netlist::LevelizedNetlist> lev,
    netlist::EvalMode mode)
    : sim_(lev), packed_(std::move(lev), mode) {
  for (std::size_t i = 0; i < sim_.design().inputs().size(); ++i)
    free_inputs_.push_back(i);
}

void FaultSimulator::pin_input(const std::string& name, bool value) {
  for (std::size_t i = 0; i < nl().inputs().size(); ++i) {
    if (nl().inputs()[i].name != name) continue;
    pinned_.emplace_back(i, value);
    free_inputs_.erase(
        std::remove(free_inputs_.begin(), free_inputs_.end(), i),
        free_inputs_.end());
    return;
  }
  CASBUS_REQUIRE(false, "pin_input: unknown input " + name);
}

std::size_t FaultSimulator::pattern_width() const noexcept {
  return free_inputs_.size() + dffs().size();
}

std::size_t FaultSimulator::response_width() const noexcept {
  return nl().outputs().size() + dffs().size();
}

void FaultSimulator::load_pattern(netlist::FaultSim& engine,
                                  const BitVector& pattern) const {
  CASBUS_REQUIRE(pattern.size() == pattern_width(),
                 "FaultSimulator: pattern width mismatch");
  for (const auto& [idx, val] : pinned_)
    engine.set_input_index(idx, to_logic(val));
  for (std::size_t i = 0; i < free_inputs_.size(); ++i)
    engine.set_input_index(free_inputs_[i], to_logic(pattern.get(i)));
  for (std::size_t i = 0; i < dffs().size(); ++i)
    engine.set_dff_state(i, to_logic(pattern.get(free_inputs_.size() + i)));
}

void FaultSimulator::apply_pattern(const BitVector& pattern) {
  load_pattern(packed_, pattern);
}

std::vector<int> FaultSimulator::simulate(const BitVector& pattern,
                                          const Fault* fault) {
  CASBUS_REQUIRE(pattern.size() == pattern_width(),
                 "FaultSimulator: pattern width mismatch");
  sim_.clear_forces();
  if (fault != nullptr)
    sim_.set_force(fault->net, to_logic(fault->stuck_one));

  for (const auto& [idx, val] : pinned_)
    sim_.set_input_index(idx, to_logic(val));
  for (std::size_t i = 0; i < free_inputs_.size(); ++i)
    sim_.set_input_index(free_inputs_[i], to_logic(pattern.get(i)));
  for (std::size_t i = 0; i < dffs().size(); ++i)
    sim_.set_dff_state(i, to_logic(pattern.get(free_inputs_.size() + i)));

  sim_.eval();

  std::vector<int> response;
  response.reserve(response_width());
  const auto push = [&](Logic4 v) {
    response.push_back(v == Logic4::Zero ? 0 : v == Logic4::One ? 1 : -1);
  };
  for (std::size_t i = 0; i < nl().outputs().size(); ++i)
    push(sim_.output_index(i));
  // Flip-flop next-states: the D pin values after settling.
  for (const CellId id : dffs()) push(sim_.net_value(nl().cell(id).in[0]));
  return response;
}

BitVector FaultSimulator::good_response(const BitVector& pattern) {
  // Packed path: the engine's observation order (primary outputs, then
  // DFF D pins) matches simulate()'s response layout bit for bit, and the
  // event-driven mode makes runs of similar patterns cheap. The scalar
  // path survives in run_serial() as the equivalence reference.
  apply_pattern(pattern);
  const std::vector<int>& r = packed_.good_response();
  BitVector out(r.size());
  for (std::size_t i = 0; i < r.size(); ++i) out.set(i, r[i] == 1);
  return out;
}

bool FaultSimulator::detects(const BitVector& pattern, const Fault& fault) {
  apply_pattern(pattern);
  return packed_.detect_batch(&fault, 1) != 0;
}

std::size_t FaultSimulator::grade(const BitVector& pattern,
                                  const std::vector<Fault>& faults,
                                  std::vector<bool>& detected) {
  apply_pattern(pattern);
  return packed_.detect_all(faults, detected);
}

FaultSimReport FaultSimulator::run(const PatternSet& patterns,
                                   const std::vector<Fault>& faults) {
  FaultSimReport report;
  report.total_faults = faults.size();
  report.detected_mask.assign(faults.size(), false);
  report.per_pattern.assign(patterns.size(), 0);

  for (std::size_t p = 0; p < patterns.size(); ++p) {
    const std::size_t newly =
        grade(patterns.at(p), faults, report.detected_mask);
    report.per_pattern[p] = newly;
    report.detected += newly;
  }
  return report;
}

FaultSimReport FaultSimulator::run(const PatternSet& patterns,
                                   const std::vector<Fault>& faults,
                                   std::size_t threads) {
  netlist::FaultCampaignOptions opts;
  opts.threads = threads;
  opts.mode = packed_.mode();
  const auto loader = [this, &patterns](netlist::FaultSim& engine,
                                        std::size_t p) {
    load_pattern(engine, patterns.at(p));
  };
  const netlist::FaultCampaignReport campaign = netlist::run_fault_campaign(
      sim_.levelized(), faults, patterns.size(), loader, opts);

  FaultSimReport report;
  report.total_faults = faults.size();
  report.detected = campaign.detected_count;
  report.detected_mask.assign(faults.size(), false);
  report.per_pattern.assign(patterns.size(), 0);
  for (std::size_t f = 0; f < faults.size(); ++f) {
    if (campaign.detected[f] == 0) continue;
    report.detected_mask[f] = true;
    ++report.per_pattern[static_cast<std::size_t>(
        campaign.first_detect_pattern[f])];
  }
  return report;
}

FaultSimReport FaultSimulator::run_serial(const PatternSet& patterns,
                                          const std::vector<Fault>& faults) {
  FaultSimReport report;
  report.total_faults = faults.size();
  report.detected_mask.assign(faults.size(), false);
  report.per_pattern.assign(patterns.size(), 0);

  for (std::size_t p = 0; p < patterns.size(); ++p) {
    const BitVector& pat = patterns.at(p);
    const std::vector<int> good = simulate(pat, nullptr);
    for (std::size_t f = 0; f < faults.size(); ++f) {
      if (report.detected_mask[f]) continue;  // fault dropping
      const std::vector<int> bad = simulate(pat, &faults[f]);
      for (std::size_t i = 0; i < good.size(); ++i) {
        if (good[i] >= 0 && bad[i] >= 0 && good[i] != bad[i]) {
          report.detected_mask[f] = true;
          ++report.detected;
          ++report.per_pattern[p];
          break;
        }
      }
    }
  }
  return report;
}

}  // namespace casbus::tpg
