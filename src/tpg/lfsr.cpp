#include "tpg/lfsr.hpp"

#include <bit>

namespace casbus::tpg {

std::uint32_t primitive_taps(unsigned width) {
  // Primitive polynomials x^n + x^a + (x^b + x^c) + 1 from the classical
  // maximal-length table (Xilinx XAPP052). In this implementation the
  // recurrence is y[t+n] = XOR_{i in taps} y[t+i], so the tap mask holds
  // the exponents of the polynomial *below* n — including bit 0 for the
  // mandatory constant term.
  static constexpr struct {
    unsigned width;
    std::uint8_t a, b, c;  // secondary exponents; 0 = unused (besides x^0)
  } kTable[] = {
      {2, 1, 0, 0},   {3, 2, 0, 0},   {4, 3, 0, 0},   {5, 3, 0, 0},
      {6, 5, 0, 0},   {7, 6, 0, 0},   {8, 6, 5, 4},   {9, 5, 0, 0},
      {10, 7, 0, 0},  {11, 9, 0, 0},  {12, 6, 4, 1},  {13, 4, 3, 1},
      {14, 5, 3, 1},  {15, 14, 0, 0}, {16, 15, 13, 4}, {17, 14, 0, 0},
      {18, 11, 0, 0}, {19, 6, 2, 1},  {20, 17, 0, 0}, {21, 19, 0, 0},
      {22, 21, 0, 0}, {23, 18, 0, 0}, {24, 23, 22, 17}, {25, 22, 0, 0},
      {26, 6, 2, 1},  {27, 5, 2, 1},  {28, 25, 0, 0}, {29, 27, 0, 0},
      {30, 6, 4, 1},  {31, 28, 0, 0}, {32, 22, 2, 1},
  };
  for (const auto& row : kTable) {
    if (row.width != width) continue;
    std::uint32_t mask = 1u;  // constant term x^0
    mask |= 1u << row.a;
    if (row.b != 0) mask |= 1u << row.b;
    if (row.c != 0) mask |= 1u << row.c;
    return mask;
  }
  CASBUS_REQUIRE(false, "primitive_taps: width must be in [2, 32]");
  return 0;
}

Lfsr::Lfsr(unsigned width, std::uint32_t taps, std::uint32_t seed)
    : width_(width), taps_(taps) {
  CASBUS_REQUIRE(width >= 2 && width <= 32, "Lfsr width must be in [2, 32]");
  mask_ = width == 32 ? ~0u : ((1u << width) - 1);
  taps_ &= mask_;
  CASBUS_REQUIRE(taps_ != 0, "Lfsr taps must be non-zero");
  state_ = seed & mask_;
  CASBUS_REQUIRE(state_ != 0, "Lfsr seed must be non-zero");
}

Lfsr Lfsr::standard(unsigned width, std::uint32_t seed) {
  return Lfsr(width, primitive_taps(width), seed);
}

bool Lfsr::step() {
  const bool out = (state_ & 1u) != 0;
  const auto fb =
      static_cast<std::uint32_t>(std::popcount(state_ & taps_) & 1);
  state_ = (state_ >> 1) | (fb << (width_ - 1));
  return out;
}

std::uint32_t Lfsr::step_word() {
  step();
  return state_;
}

Misr::Misr(unsigned width, std::uint32_t taps) : width_(width), taps_(taps) {
  CASBUS_REQUIRE(width >= 1 && width <= 32, "Misr width must be in [1, 32]");
  mask_ = width == 32 ? ~0u : ((1u << width) - 1);
  if (taps_ == 0) taps_ = width >= 2 ? primitive_taps(width) : 1u;
  taps_ &= mask_;
}

void Misr::feed_word(std::uint32_t word) {
  // Polynomial-division (Galois) form: the bit shifted out of the top
  // folds back through the feedback polynomial. Any single response-bit
  // error then evolves as x^k mod p(x), which is never zero for a
  // non-trivial p — so single-bit errors cannot alias.
  const std::uint32_t msb = (state_ >> (width_ - 1)) & 1u;
  state_ = (((state_ << 1) ^ (msb != 0 ? taps_ : 0u)) ^ word) & mask_;
}

}  // namespace casbus::tpg
