/// \file lfsr.hpp
/// Linear-feedback shift registers: the pseudo-random pattern sources used
/// by BIST engines and by the paper's external test configuration
/// (Fig. 2c: "the source is a simple LFSR and the sink a simple MISR").

#pragma once

#include <cstdint>
#include <vector>

#include "util/bitvector.hpp"
#include "util/error.hpp"

namespace casbus::tpg {

/// Returns a primitive feedback polynomial (tap mask) for an LFSR of
/// \p width bits, 2 <= width <= 32. Bit i set means stage i feeds back.
/// The polynomials are the classical maximal-length ones, so the LFSR
/// cycles through 2^width − 1 states.
std::uint32_t primitive_taps(unsigned width);

/// Fibonacci-style LFSR with configurable taps.
class Lfsr {
 public:
  /// Seeds must be non-zero (the all-zero state is a fixed point).
  Lfsr(unsigned width, std::uint32_t taps, std::uint32_t seed = 1);

  /// Constructs with the standard primitive polynomial for \p width.
  static Lfsr standard(unsigned width, std::uint32_t seed = 1);

  /// Advances one step and returns the output bit (stage 0 before the step).
  bool step();

  /// Advances one step and returns the full state word.
  std::uint32_t step_word();

  /// Current state.
  [[nodiscard]] std::uint32_t state() const noexcept { return state_; }

  /// Register width in bits.
  [[nodiscard]] unsigned width() const noexcept { return width_; }

  /// Period of a maximal-length LFSR of this width (2^width − 1).
  [[nodiscard]] std::uint64_t max_period() const noexcept {
    return (1ULL << width_) - 1;
  }

 private:
  unsigned width_;
  std::uint32_t taps_;
  std::uint32_t mask_;
  std::uint32_t state_;
};

/// Multiple-input signature register (MISR): compacts one response word per
/// cycle into a signature, as the paper's external sink (Fig. 2c) and BIST
/// sinks do.
class Misr {
 public:
  /// \p width response bits compacted per cycle.
  explicit Misr(unsigned width, std::uint32_t taps = 0);

  /// Compacts one response word (low \p width() bits of \p word).
  void feed_word(std::uint32_t word);

  /// Compacts a single-bit response (width-1 convenience).
  void feed(bool bit) { feed_word(bit ? 1u : 0u); }

  /// Current signature.
  [[nodiscard]] std::uint32_t signature() const noexcept { return state_; }

  /// Resets the signature to zero.
  void reset() noexcept { state_ = 0; }

  [[nodiscard]] unsigned width() const noexcept { return width_; }

 private:
  unsigned width_;
  std::uint32_t taps_;
  std::uint32_t mask_;
  std::uint32_t state_ = 0;
};

}  // namespace casbus::tpg
