/// \file atpg.hpp
/// Random-search test pattern generation with fault dropping.
///
/// Not a full PODEM/FAN implementation — the reproduction needs compact,
/// realistic scan pattern sets with known coverage, which random ATPG with
/// greedy pattern selection provides for circuits of the sizes used here.

#pragma once

#include <cstddef>
#include <cstdint>

#include "netlist/netlist.hpp"
#include "tpg/fault.hpp"
#include "tpg/patterns.hpp"

namespace casbus::tpg {

/// Knobs for generate_patterns().
struct AtpgOptions {
  std::size_t max_patterns = 256;      ///< stop after keeping this many
  std::size_t max_candidates = 4096;   ///< random candidates to try
  double target_coverage = 0.95;       ///< stop once reached
  std::uint64_t seed = 1;              ///< pattern RNG seed
  std::vector<std::pair<std::string, bool>> pinned_inputs;  ///< held inputs
};

/// Outcome of pattern generation.
struct AtpgResult {
  PatternSet patterns;        ///< kept patterns (each detects >= 1 new fault)
  std::size_t total_faults = 0;
  std::size_t detected = 0;
  std::size_t candidates_tried = 0;

  [[nodiscard]] double coverage() const {
    return total_faults == 0
               ? 1.0
               : static_cast<double>(detected) /
                     static_cast<double>(total_faults);
  }
};

/// Generates a compact pattern set for the stuck-at universe of \p nl.
/// Random candidates that detect at least one currently undetected fault are
/// kept; others are discarded (fault dropping keeps the loop fast).
AtpgResult generate_patterns(const netlist::Netlist& nl,
                             const AtpgOptions& options = {});

}  // namespace casbus::tpg
