/// \file patterns.hpp
/// Deterministic and pseudo-random test pattern sets.

#pragma once

#include <cstddef>
#include <vector>

#include "util/bitvector.hpp"
#include "util/rng.hpp"

namespace casbus::tpg {

/// An ordered set of equal-width stimulus vectors.
class PatternSet {
 public:
  PatternSet() = default;
  explicit PatternSet(std::size_t width) : width_(width) {}

  /// Bits per pattern.
  [[nodiscard]] std::size_t width() const noexcept { return width_; }

  /// Number of patterns.
  [[nodiscard]] std::size_t size() const noexcept { return pats_.size(); }
  [[nodiscard]] bool empty() const noexcept { return pats_.empty(); }

  [[nodiscard]] const BitVector& at(std::size_t i) const {
    return pats_.at(i);
  }

  /// Appends a pattern; must match width().
  void add(BitVector p);

  /// \name Generators
  /// @{

  /// \p count uniformly random patterns from \p rng.
  static PatternSet random(std::size_t width, std::size_t count, Rng& rng);

  /// Walking-one followed by walking-zero patterns (2 * width patterns).
  static PatternSet walking(std::size_t width);

  /// Binary counting patterns [0, count).
  static PatternSet counting(std::size_t width, std::size_t count);

  /// Exhaustive patterns (2^width, width <= 20 guard).
  static PatternSet exhaustive(std::size_t width);
  /// @}

  [[nodiscard]] auto begin() const { return pats_.begin(); }
  [[nodiscard]] auto end() const { return pats_.end(); }

 private:
  std::size_t width_ = 0;
  std::vector<BitVector> pats_;
};

}  // namespace casbus::tpg
