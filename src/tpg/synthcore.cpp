#include "tpg/synthcore.hpp"

#include <algorithm>
#include <sstream>

#include "netlist/builder.hpp"
#include "util/rng.hpp"

namespace casbus::tpg {

using netlist::NetId;
using netlist::NetlistBuilder;

std::size_t SyntheticCore::max_chain_length() const {
  std::size_t m = 0;
  for (const auto& c : chains) m = std::max(m, c.size());
  return m;
}

SyntheticCore make_synthetic_core(const SyntheticCoreSpec& spec) {
  CASBUS_REQUIRE(spec.n_chains >= 1 && spec.n_chains <= spec.n_flipflops,
                 "synthetic core: n_chains must be in [1, n_flipflops]");
  CASBUS_REQUIRE(spec.n_inputs >= 1, "synthetic core needs >= 1 input");
  Rng rng(spec.seed);

  std::ostringstream name;
  name << "score_i" << spec.n_inputs << "_o" << spec.n_outputs << "_f"
       << spec.n_flipflops << "_g" << spec.n_gates << "_s" << spec.seed;
  NetlistBuilder b(name.str());

  // Functional and scan inputs.
  std::vector<NetId> pis;
  for (std::size_t i = 0; i < spec.n_inputs; ++i) {
    std::ostringstream os;
    os << "pi" << i;
    pis.push_back(b.input(os.str()));
  }
  const NetId scan_en = b.input("scan_en");
  std::vector<NetId> sis;
  for (std::size_t c = 0; c < spec.n_chains; ++c) {
    std::ostringstream os;
    os << "si" << c;
    sis.push_back(b.input(os.str()));
  }

  // Pre-allocate flip-flop outputs so the combinational cloud can read
  // state before the flip-flops are instantiated (sequential feedback).
  std::vector<NetId> ff_q;
  for (std::size_t f = 0; f < spec.n_flipflops; ++f) {
    std::ostringstream os;
    os << "ff_q" << f;
    ff_q.push_back(b.net(os.str()));
  }

  // Random combinational cloud over inputs + state + earlier gate outputs.
  // `consumed` tracks which pool entries feed something downstream so the
  // generator can guarantee full structural observability below.
  std::vector<NetId> pool = pis;
  pool.insert(pool.end(), ff_q.begin(), ff_q.end());
  std::vector<bool> consumed(pool.size(), false);
  const auto pick = [&]() -> NetId {
    const std::size_t idx = rng.below(pool.size());
    consumed[idx] = true;
    return pool[idx];
  };
  const std::size_t cloud_base = pool.size();
  for (std::size_t g = 0; g < spec.n_gates; ++g) {
    NetId y = netlist::kNoNet;
    switch (rng.below(7)) {
      case 0: y = b.and2(pick(), pick()); break;
      case 1: y = b.or2(pick(), pick()); break;
      case 2: y = b.nand2(pick(), pick()); break;
      case 3: y = b.nor2(pick(), pick()); break;
      case 4: y = b.xor2(pick(), pick()); break;
      case 5: y = b.not_(pick()); break;
      default: y = b.mux2(pick(), pick(), pick()); break;
    }
    pool.push_back(y);
    consumed.push_back(false);
  }

  // Scan stitching: flip-flops are dealt round-robin into chains, giving
  // balanced lengths |len_i - len_j| <= 1; each D input is a scan mux
  // between functional next-state and the previous chain stage.
  SyntheticCore core;
  core.spec = spec;
  core.chains.assign(spec.n_chains, {});
  for (std::size_t f = 0; f < spec.n_flipflops; ++f)
    core.chains[f % spec.n_chains].push_back(f);

  // Build flip-flops in index order so GateSim's DFF order equals ours.
  std::vector<NetId> scan_d(spec.n_flipflops);
  for (std::size_t c = 0; c < spec.n_chains; ++c) {
    NetId prev = sis[c];
    for (const std::size_t f : core.chains[c]) {
      scan_d[f] = prev;
      prev = ff_q[f];
    }
  }
  for (std::size_t f = 0; f < spec.n_flipflops; ++f) {
    const NetId func_d = pick();
    const NetId d = b.mux2(scan_en, func_d, scan_d[f]);
    b.dff_into(d, ff_q[f]);
  }

  // Functional outputs: every cloud node left unconsumed is XOR-folded
  // into the primary outputs, round-robin, so no gate is structurally
  // unobservable (real cores do not ship dead logic, and fault-coverage
  // experiments need a testable circuit).
  std::vector<NetId> po_nodes;
  for (std::size_t o = 0; o < spec.n_outputs; ++o) po_nodes.push_back(pick());
  std::size_t fold_at = 0;
  if (!po_nodes.empty()) {
    for (std::size_t idx = cloud_base; idx < pool.size(); ++idx) {
      if (consumed[idx]) continue;
      po_nodes[fold_at] = b.xor2(po_nodes[fold_at], pool[idx]);
      fold_at = (fold_at + 1) % po_nodes.size();
    }
  }
  for (std::size_t o = 0; o < spec.n_outputs; ++o) {
    std::ostringstream os;
    os << "po" << o;
    b.output(os.str(), po_nodes[o]);
  }
  for (std::size_t c = 0; c < spec.n_chains; ++c) {
    std::ostringstream os;
    os << "so" << c;
    CASBUS_ASSERT(!core.chains[c].empty(),
                  "round-robin stitching left an empty chain");
    b.output(os.str(), ff_q[core.chains[c].back()]);
  }

  core.netlist = b.take();
  return core;
}

}  // namespace casbus::tpg
