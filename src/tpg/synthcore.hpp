/// \file synthcore.hpp
/// Seeded synthetic IP core generation.
///
/// The paper's SoCs embed commercial IP cores we do not have; the TAM only
/// ever observes a core through its wrapper test terminals, so a seeded
/// random netlist with scan-stitched flip-flops exercises exactly the same
/// interface (DESIGN.md §6 records this substitution). Generated cores have:
///   - functional primary inputs/outputs,
///   - a random combinational cloud,
///   - flip-flops stitched into `n_chains` balanced scan chains behind a
///     scan_en / si[c] / so[c] interface (mux-D full scan).

#pragma once

#include <cstdint>
#include <vector>

#include "netlist/netlist.hpp"

namespace casbus::tpg {

/// Parameters of a generated core.
struct SyntheticCoreSpec {
  std::size_t n_inputs = 8;    ///< functional primary inputs
  std::size_t n_outputs = 8;   ///< functional primary outputs
  std::size_t n_flipflops = 16;///< scannable state bits
  std::size_t n_gates = 64;    ///< combinational cells in the cloud
  std::size_t n_chains = 1;    ///< scan chains (<= n_flipflops)
  std::uint64_t seed = 1;      ///< generator seed
};

/// A generated core: netlist plus its scan topology.
struct SyntheticCore {
  netlist::Netlist netlist;
  SyntheticCoreSpec spec;
  /// chains[c] lists flip-flop indices (GateSim DFF order) from scan-in to
  /// scan-out of chain c.
  std::vector<std::vector<std::size_t>> chains;

  /// Length of the longest scan chain.
  [[nodiscard]] std::size_t max_chain_length() const;
};

/// Input naming used by generated cores (stable public contract):
/// functional inputs "pi<i>", scan enable "scan_en", scan inputs "si<c>";
/// outputs "po<i>" and "so<c>".
SyntheticCore make_synthetic_core(const SyntheticCoreSpec& spec);

}  // namespace casbus::tpg
