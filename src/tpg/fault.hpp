/// \file fault.hpp
/// Single stuck-at fault model over gate-level netlists.
///
/// The paper motivates the TAM by "the high fault coverage required before
/// signing off a design to manufacturing" (§1); the examples and benches use
/// this module to measure real stuck-at coverage of patterns delivered over
/// the CAS-BUS.
///
/// Fault grading runs on the bit-parallel netlist::FaultSim engine: each
/// levelized pass simulates 64 faulty machines at once, so a campaign costs
/// ~(faults/64 + 1) evals per pattern instead of 2*faults. The pre-packed
/// serial path is kept as run_serial() — it is the reference the
/// equivalence tests and the BM_FaultSim/BM_FaultSim64 benchmark pair
/// compare against.

#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "netlist/faultsim.hpp"
#include "netlist/gatesim.hpp"
#include "netlist/netlist.hpp"
#include "tpg/patterns.hpp"
#include "util/bitvector.hpp"

namespace casbus::tpg {

/// One single stuck-at fault: `net` permanently at `stuck_one`. The tpg
/// layer shares the netlist-layer fault type so campaigns flow into
/// netlist::FaultSim without conversion.
using Fault = netlist::StuckAtFault;

/// Enumerates the stuck-at-0/1 fault universe of \p nl: two faults per net,
/// excluding nets driven by constant cells (untestable by construction).
std::vector<Fault> enumerate_faults(const netlist::Netlist& nl);

/// Result of fault-simulating a pattern set.
struct FaultSimReport {
  std::size_t total_faults = 0;
  std::size_t detected = 0;
  std::vector<bool> detected_mask;          ///< per fault, same order as list
  std::vector<std::size_t> per_pattern;     ///< new detections per pattern

  [[nodiscard]] double coverage() const {
    return total_faults == 0
               ? 1.0
               : static_cast<double>(detected) /
                     static_cast<double>(total_faults);
  }
};

/// Single-stuck-at fault simulator assuming full scan: every DFF is
/// directly controllable/observable, so one "pattern" assigns all primary
/// inputs plus all flip-flop states, and the "response" is all primary
/// outputs plus all flip-flop next-states.
///
/// Inputs that must stay fixed during test (e.g. a scan-enable that routes
/// functional data, held at 0 while faults are graded) are pinned via
/// pin_input().
class FaultSimulator {
 public:
  /// Takes its own copy of the design (move in to avoid the copy); the
  /// design is levelized once and shared by the scalar and packed engines.
  explicit FaultSimulator(netlist::Netlist nl);

  /// Shares an existing levelization (a campaign over one design needs a
  /// single levelize no matter how many simulators it spins up).
  explicit FaultSimulator(
      std::shared_ptr<const netlist::LevelizedNetlist> lev,
      netlist::EvalMode mode = netlist::EvalMode::FullSweep);

  /// Evaluation strategy of the packed engine (netlist::EvalMode) — the
  /// graded results are identical; EventDriven skips quiescent cones.
  void set_mode(netlist::EvalMode mode) { packed_.set_mode(mode); }
  [[nodiscard]] netlist::EvalMode mode() const noexcept {
    return packed_.mode();
  }

  /// Gate-evaluation counters of the packed engine (activity factor).
  [[nodiscard]] const netlist::SimStats& stats() const noexcept {
    return packed_.stats();
  }

  /// Holds input \p name at \p value for every simulation; that input is
  /// removed from the pattern image.
  void pin_input(const std::string& name, bool value);

  /// Bits a pattern must supply: free primary inputs + flip-flops.
  [[nodiscard]] std::size_t pattern_width() const noexcept;

  /// Bits in a response: primary outputs + flip-flop next-states.
  [[nodiscard]] std::size_t response_width() const noexcept;

  /// Fault-free response to \p pattern.
  [[nodiscard]] BitVector good_response(const BitVector& pattern);

  /// True when \p pattern definitely detects \p fault (good and faulty
  /// responses are both driven and differ in at least one bit).
  [[nodiscard]] bool detects(const BitVector& pattern, const Fault& fault);

  /// Grades every not-yet-detected fault against one pattern, 64 faults
  /// per packed pass; newly detected faults are flagged in \p detected.
  /// Returns the number of new detections. This is the ATPG inner loop.
  std::size_t grade(const BitVector& pattern,
                    const std::vector<Fault>& faults,
                    std::vector<bool>& detected);

  /// Simulates \p patterns against \p faults with fault dropping
  /// (bit-parallel: 64 faults per machine word).
  FaultSimReport run(const PatternSet& patterns,
                     const std::vector<Fault>& faults);

  /// Threaded campaign: shards \p faults across \p threads workers via
  /// netlist::run_fault_campaign (0 = one per hardware thread). The report
  /// — detected_mask, per_pattern, totals — is byte-identical to run()
  /// for every thread count, because fault detection is independent per
  /// fault. Each worker inherits this simulator's EvalMode.
  FaultSimReport run(const PatternSet& patterns,
                     const std::vector<Fault>& faults, std::size_t threads);

  /// Reference implementation: one faulty machine at a time through the
  /// scalar GateSim. Same report as run(); ~100x slower. Kept for the
  /// equivalence tests and as the benchmark baseline.
  FaultSimReport run_serial(const PatternSet& patterns,
                            const std::vector<Fault>& faults);

 private:
  /// Loads \p pattern into any packed engine over the shared levelization
  /// (pinned + free inputs, DFFs). Read-only on this simulator, so the
  /// threaded run() may call it concurrently on per-worker engines.
  void load_pattern(netlist::FaultSim& engine,
                    const BitVector& pattern) const;

  /// Loads \p pattern into the embedded packed engine.
  void apply_pattern(const BitVector& pattern);

  /// Applies pattern, evals, returns response values (may contain X as -1).
  std::vector<int> simulate(const BitVector& pattern,
                            const Fault* fault);

  /// The simulated design (owned by the embedded simulator).
  [[nodiscard]] const netlist::Netlist& nl() const { return sim_.design(); }

  /// Sequential cells, in the shared levelization's canonical order.
  [[nodiscard]] const std::vector<netlist::CellId>& dffs() const {
    return sim_.levelized()->dff_cells();
  }

  netlist::GateSim sim_;        // scalar reference engine
  netlist::FaultSim packed_;    // 64-wide campaign engine (shared netlist)
  std::vector<std::size_t> free_inputs_;  // indices into nl.inputs()
  std::vector<std::pair<std::size_t, bool>> pinned_;
};

}  // namespace casbus::tpg
