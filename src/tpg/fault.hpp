/// \file fault.hpp
/// Single stuck-at fault model over gate-level netlists.
///
/// The paper motivates the TAM by "the high fault coverage required before
/// signing off a design to manufacturing" (§1); the examples and benches use
/// this module to measure real stuck-at coverage of patterns delivered over
/// the CAS-BUS.

#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "netlist/gatesim.hpp"
#include "netlist/netlist.hpp"
#include "tpg/patterns.hpp"
#include "util/bitvector.hpp"

namespace casbus::tpg {

/// One single stuck-at fault: \p net permanently at \p stuck_one.
struct Fault {
  netlist::NetId net = netlist::kNoNet;
  bool stuck_one = false;

  friend bool operator==(const Fault&, const Fault&) = default;
};

/// Enumerates the stuck-at-0/1 fault universe of \p nl: two faults per net,
/// excluding nets driven by constant cells (untestable by construction).
std::vector<Fault> enumerate_faults(const netlist::Netlist& nl);

/// Result of fault-simulating a pattern set.
struct FaultSimReport {
  std::size_t total_faults = 0;
  std::size_t detected = 0;
  std::vector<bool> detected_mask;          ///< per fault, same order as list
  std::vector<std::size_t> per_pattern;     ///< new detections per pattern

  [[nodiscard]] double coverage() const {
    return total_faults == 0
               ? 1.0
               : static_cast<double>(detected) /
                     static_cast<double>(total_faults);
  }
};

/// Serial single-stuck-at fault simulator assuming full scan: every DFF is
/// directly controllable/observable, so one "pattern" assigns all primary
/// inputs plus all flip-flop states, and the "response" is all primary
/// outputs plus all flip-flop next-states.
///
/// Inputs that must stay fixed during test (e.g. a scan-enable that routes
/// functional data, held at 0 while faults are graded) are pinned via
/// pin_input().
class FaultSimulator {
 public:
  /// Takes its own copy of the design (move in to avoid the copy).
  explicit FaultSimulator(netlist::Netlist nl);

  /// Holds input \p name at \p value for every simulation; that input is
  /// removed from the pattern image.
  void pin_input(const std::string& name, bool value);

  /// Bits a pattern must supply: free primary inputs + flip-flops.
  [[nodiscard]] std::size_t pattern_width() const noexcept;

  /// Bits in a response: primary outputs + flip-flop next-states.
  [[nodiscard]] std::size_t response_width() const noexcept;

  /// Fault-free response to \p pattern.
  [[nodiscard]] BitVector good_response(const BitVector& pattern);

  /// True when \p pattern definitely detects \p fault (good and faulty
  /// responses are both driven and differ in at least one bit).
  [[nodiscard]] bool detects(const BitVector& pattern, const Fault& fault);

  /// Simulates \p patterns against \p faults with fault dropping.
  FaultSimReport run(const PatternSet& patterns,
                     const std::vector<Fault>& faults);

 private:
  /// Applies pattern, evals, returns response values (may contain X as -1).
  std::vector<int> simulate(const BitVector& pattern, const Fault* fault);

  /// The simulated design (owned by the embedded simulator).
  [[nodiscard]] const netlist::Netlist& nl() const { return sim_.design(); }

  netlist::GateSim sim_;
  std::vector<std::size_t> free_inputs_;  // indices into nl.inputs()
  std::vector<std::pair<std::size_t, bool>> pinned_;
  std::vector<netlist::CellId> dffs_;
};

}  // namespace casbus::tpg
