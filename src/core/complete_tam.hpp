/// \file complete_tam.hpp
/// The paper's §5 deliverable in hardware: "Associated with a SoC central
/// test controller ... and with the P1500 wrappers, the proposed CAS-BUS
/// can offer a complete test architecture for the SoC."
///
/// generate_complete_tam() composes, into one flat synthesizable netlist:
///   - every CAS plus the stitched N-wire bus (generate_casbus_netlist),
///   - one generated P1500 wrapper per CAS, its parallel ports wired to
///     the CAS's o/i pins,
///   - the wrapper serial ring (wsi_pin -> W0 -> ... -> wso_pin) and the
///     shared WSC control inputs.
///
/// Top-level ports:
///   bus_in<w>/bus_out<w>, config, update            (CAS plane)
///   wsi_pin/wso_pin, select_wir, shift_wr,
///   capture_wr, update_wr                           (wrapper plane)
///   per core c (prefix c<c>_): sys_in*/sys_out*, core_in*/core_out*,
///   scan_si*/scan_so*, scan_en, core_clk_en, bist_* (core hookup)

#pragma once

#include <vector>

#include "core/casbus_netlist.hpp"
#include "p1500/wrapper_generator.hpp"

namespace casbus::tam {

/// Geometry of the complete architecture: one wrapper per CAS; each CAS's
/// P is derived from its wrapper (max(chains, bist ? 1 : 0), min 1).
struct CompleteTamSpec {
  unsigned width = 4;
  std::vector<p1500::WrapperSpec> wrappers;
  CasImplementation impl = CasImplementation::OptimizedGateLevel;
  bool run_optimizer = true;
};

struct GeneratedCompleteTam {
  netlist::Netlist netlist;
  unsigned width = 0;
  std::vector<InstructionSet> isas;  ///< per CAS
  std::size_t total_ir_bits = 0;     ///< CAS configuration-stream length
  std::size_t wrapper_ring_bits = 0; ///< WIR bits on the serial ring
};

/// Derived CAS port count for a wrapper geometry.
unsigned ports_for_wrapper(const p1500::WrapperSpec& spec);

/// Generates the composed architecture.
GeneratedCompleteTam generate_complete_tam(const CompleteTamSpec& spec);

}  // namespace casbus::tam
