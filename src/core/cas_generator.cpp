#include "core/cas_generator.hpp"

#include <sstream>
#include <vector>

#include "netlist/arith.hpp"
#include "netlist/builder.hpp"
#include "netlist/opt.hpp"

namespace casbus::tam {

using netlist::NetId;
using netlist::NetlistBuilder;

namespace {

/// Ports and instruction-register plumbing shared by both implementations
/// (the non-switch part of Fig. 3).
struct CasFrame {
  std::vector<NetId> e;  ///< bus inputs
  std::vector<NetId> i;  ///< core-side inputs
  NetId config = netlist::kNoNet;
  NetId update = netlist::kNoNet;
  std::vector<NetId> ir_q;  ///< update-stage code bits (c0..ck-1 of Fig. 3)
  NetId chain_active = netlist::kNoNet;
  NetId not_chain = netlist::kNoNet;
  NetId sr_tail = netlist::kNoNet;
};

CasFrame build_frame(NetlistBuilder& b, const InstructionSet& isa) {
  CasFrame f;
  const unsigned n = isa.n();
  const unsigned p = isa.p();
  const unsigned k = isa.k();

  for (unsigned w = 0; w < n; ++w) {
    std::ostringstream os;
    os << 'e' << w;
    f.e.push_back(b.input(os.str()));
  }
  for (unsigned j = 0; j < p; ++j) {
    std::ostringstream os;
    os << 'i' << j;
    f.i.push_back(b.input(os.str()));
  }
  f.config = b.input("config");
  f.update = b.input("update");

  // Update stage first: its outputs exist before the shift stage needs its
  // enable, and the CONFIGURATION-instruction feedback reads them.
  std::vector<NetId> ir_q;
  for (unsigned j = 0; j < k; ++j) {
    std::ostringstream os;
    os << "ir" << j;
    ir_q.push_back(b.net(os.str()));
  }
  const NetId is_config_instr =
      b.eq_const(ir_q, InstructionSet::kConfigCode);
  f.chain_active = b.or2(f.config, is_config_instr);
  f.not_chain = b.not_(f.chain_active);

  // Shift stage: k enabled flip-flops fed from e0 (paper: "the instruction
  // registers of all the CASes are connected to each other through the
  // first serial test bus wire"). Shifting pauses during the update pulse,
  // matching CasBehavior::tick.
  const NetId shift_en = b.and2(f.chain_active, b.not_(f.update));
  std::vector<NetId> sr_q;
  NetId prev = f.e[0];
  for (unsigned j = 0; j < k; ++j) {
    std::ostringstream os;
    os << "sr" << j;
    const NetId q = b.dffe(prev, shift_en, os.str());
    sr_q.push_back(q);
    prev = q;
  }
  f.sr_tail = sr_q[k - 1];

  // Update stage flip-flops onto the pre-allocated ir nets.
  for (unsigned j = 0; j < k; ++j) b.dffe_into(sr_q[j], f.update, ir_q[j]);
  f.ir_q = std::move(ir_q);
  return f;
}

/// Emits the output side common to both variants from per-(port, wire)
/// select signals: sel[j][w] = 1 iff the active TEST scheme routes
/// e_w -> o_j (and, by the heuristic, i_j -> s_w).
void build_switch_outputs(NetlistBuilder& b, const InstructionSet& isa,
                          const CasFrame& f,
                          const std::vector<std::vector<NetId>>& sel,
                          NetId test_any) {
  const unsigned n = isa.n();
  const unsigned p = isa.p();

  // Core-side outputs: tri-stated AND-OR selection over bus inputs.
  const NetId o_enable = b.and2(test_any, f.not_chain);
  for (unsigned j = 0; j < p; ++j) {
    const NetId data = b.mux_onehot(sel[j], f.e);
    std::ostringstream os;
    os << 'o' << j;
    b.output(os.str(), b.tribuf(o_enable, data));
  }

  // Bus-side outputs: claimed wires carry the heuristic return path,
  // unclaimed wires bypass, and wire 0 additionally carries the
  // instruction-register tail whenever the chain is active.
  for (unsigned w = 0; w < n; ++w) {
    std::vector<NetId> claims;
    claims.reserve(p);
    for (unsigned j = 0; j < p; ++j) claims.push_back(sel[j][w]);
    const NetId claimed = b.or_n(claims);

    std::vector<NetId> returns;
    returns.reserve(p);
    for (unsigned j = 0; j < p; ++j) returns.push_back(f.i[j]);
    const NetId ret = b.mux_onehot(claims, returns);

    NetId out = b.mux2(claimed, f.e[w], ret);
    if (w == 0) out = b.mux2(f.chain_active, out, f.sr_tail);
    else out = b.mux2(f.chain_active, out, f.e[w]);
    std::ostringstream os;
    os << 's' << w;
    b.output(os.str(), out);
  }
}

/// Generic implementation: full one-hot decode of the m-code space.
void build_generic_switch(NetlistBuilder& b, const InstructionSet& isa,
                          const CasFrame& f) {
  const unsigned n = isa.n();
  const unsigned p = isa.p();
  const std::uint64_t m = isa.m();
  CASBUS_REQUIRE(m <= (1ULL << 20),
                 "generic CAS decode limited to 2^20 instructions; use "
                 "OptimizedGateLevel for wider configurations");

  const std::vector<NetId> dec =
      b.decoder(f.ir_q, static_cast<std::size_t>(m));

  // sel[j][w]: OR of the one-hot lines of every arrangement assigning
  // wire w to port j.
  std::vector<std::vector<std::vector<NetId>>> terms(
      p, std::vector<std::vector<NetId>>(n));
  const std::uint64_t arrangements = m - 2;
  for (std::uint64_t t = 0; t < arrangements; ++t) {
    const std::vector<unsigned> wires = arrangement_unrank(t, n, p);
    for (unsigned j = 0; j < p; ++j)
      terms[j][wires[j]].push_back(
          dec[static_cast<std::size_t>(t + InstructionSet::kFirstTestCode)]);
  }
  std::vector<std::vector<NetId>> sel(p, std::vector<NetId>(n));
  for (unsigned j = 0; j < p; ++j)
    for (unsigned w = 0; w < n; ++w) sel[j][w] = b.or_n(terms[j][w]);

  std::vector<NetId> test_lines(dec.begin() + 2, dec.end());
  const NetId test_any = b.or_n(test_lines);
  build_switch_outputs(b, isa, f, sel, test_any);
}

/// Optimized implementation: arithmetic mixed-radix decode of the dense
/// code, plus a combinational relabeling network.
void build_optimized_switch(NetlistBuilder& b, const InstructionSet& isa,
                            const CasFrame& f) {
  const unsigned n = isa.n();
  const unsigned p = isa.p();
  const std::uint64_t m = isa.m();

  // TEST window: kFirstTestCode <= code < m.
  const NetId ge2 = netlist::ge_const(b, f.ir_q,
                                      InstructionSet::kFirstTestCode);
  const NetId lt_m = b.not_(netlist::ge_const(b, f.ir_q, m));
  const NetId is_test = b.and2(ge2, lt_m);

  // r_0 = code - 2, truncated progressively as digits are peeled off.
  std::vector<NetId> r =
      netlist::sub_const(b, f.ir_q, InstructionSet::kFirstTestCode);

  // used[w] tracks wires consumed by earlier digits (combinationally).
  std::vector<NetId> used(n, b.const0());
  std::vector<std::vector<NetId>> sel(p, std::vector<NetId>(n));

  for (unsigned j = 0; j < p; ++j) {
    const unsigned radix = n - j;  // digit d_j is in [0, radix)
    const std::uint64_t stride = arrangement_count(n - j - 1, p - j - 1);

    // One-hot digit decode via magnitude comparators on r.
    std::vector<NetId> ge(radix + 1);
    ge[0] = b.const1();
    for (unsigned q = 1; q < radix; ++q)
      ge[q] = netlist::ge_const(b, r, stride * q);
    ge[radix] = b.const0();  // r < radix*stride for every valid code
    std::vector<NetId> digit(radix);
    for (unsigned q = 0; q < radix; ++q)
      digit[q] = b.and2(ge[q], b.not_(ge[q + 1]));

    // Relabel: digit q selects the q-th *unused* wire. rank_w = popcount of
    // unused wires below w; sel[j][w] = !used[w] & (digit[rank_w]).
    for (unsigned w = 0; w < n; ++w) {
      std::vector<NetId> below;
      below.reserve(w);
      for (unsigned v = 0; v < w; ++v) below.push_back(b.not_(used[v]));
      const std::vector<NetId> rank = netlist::popcount_bus(b, below);
      std::vector<NetId> hits;
      const unsigned q_max = std::min(w, radix - 1);
      hits.reserve(q_max + 1);
      for (unsigned q = 0; q <= q_max; ++q)
        hits.push_back(b.and2(digit[q], b.eq_const(rank, q)));
      const NetId hit = b.or_n(hits);
      sel[j][w] = b.and_n({b.not_(used[w]), hit, is_test});
    }

    // Fold this digit's claim into used[] for the next digit.
    for (unsigned w = 0; w < n; ++w) used[w] = b.or2(used[w], sel[j][w]);

    // Peel the digit: r <- r - digit*stride, truncated to the bits that can
    // still be non-zero (r' < stride).
    if (j + 1 < p) {
      std::vector<std::vector<NetId>> reduced(radix);
      for (unsigned q = 0; q < radix; ++q)
        reduced[q] = netlist::sub_const(b, r, stride * q);
      r = netlist::mux_onehot_bus(b, digit, reduced);
      unsigned bits_needed = 1;
      while ((1ULL << bits_needed) < stride) ++bits_needed;
      if (bits_needed < r.size()) r.resize(bits_needed);
    }
  }

  build_switch_outputs(b, isa, f, sel, is_test);
}

}  // namespace

GeneratedCas generate_cas(unsigned n, unsigned p,
                          const CasGenOptions& options) {
  InstructionSet isa(n, p);

  std::ostringstream name;
  name << "cas_n" << n << "_p" << p
       << (options.impl == CasImplementation::Generic ? "" : "_opt");
  NetlistBuilder b(name.str());

  const CasFrame frame = build_frame(b, isa);
  if (options.impl == CasImplementation::Generic)
    build_generic_switch(b, isa, frame);
  else
    build_optimized_switch(b, isa, frame);

  netlist::Netlist nl = b.take();
  if (options.run_optimizer) nl = netlist::optimize(nl);

  return GeneratedCas{std::move(nl), isa, options.impl};
}

PassTransistorArea pass_transistor_area(unsigned n, unsigned p) {
  InstructionSet isa(n, p);  // validates 1 <= p <= n
  PassTransistorArea a;
  // Full crosspoint matrix ("without restricting heuristics"): N x P
  // transmission gates (2T each) per direction, with a control latch (6T)
  // and local inverter (2T) per crosspoint pair.
  const double crosspoints = static_cast<double>(n) * p;
  const double matrix = crosspoints * (2.0 * 2.0 + 6.0 + 2.0);
  // Per-wire bypass transmission gate + control.
  const double bypass = n * (2.0 + 2.0);
  // Instruction register (shift + update stages) stays unchanged: 2k DFFs
  // at 22T plus the chain/update gating (~12T).
  const double ir = 2.0 * isa.k() * 22.0 + 12.0;
  a.transistors = matrix + bypass + ir;
  a.gate_equivalents = a.transistors / 4.0;
  return a;
}

}  // namespace casbus::tam
