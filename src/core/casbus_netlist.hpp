/// \file casbus_netlist.hpp
/// Whole-TAM hardware generation: every CAS of a bus plus the inter-CAS
/// wire segments, flattened into one synthesizable netlist.
///
/// This is the hand-off artifact for a system integrator: the paper's
/// generator emitted one CAS at a time; composing the full CAS-BUS (with
/// the wire-0 instruction chain already stitched) gives the complete
/// plug-and-play TAM macro ready for the SoC top level.

#pragma once

#include <vector>

#include "core/cas_generator.hpp"
#include "netlist/netlist.hpp"

namespace casbus::tam {

/// Geometry of one full bus.
struct CasBusNetlistSpec {
  unsigned width = 4;                    ///< N
  std::vector<unsigned> ports_per_cas;   ///< P per CAS, in bus order
  CasImplementation impl = CasImplementation::OptimizedGateLevel;
  bool run_optimizer = false;            ///< optimize each CAS before composing
};

/// The composed TAM.
///
/// Top-level ports:
///   inputs : bus_in0..bus_in{N-1}, config, update,
///            cas<c>_i<j> (core-side returns, one per port of each CAS)
///   outputs: bus_out0..bus_out{N-1},
///            cas<c>_o<j> (core-side stimuli)
struct GeneratedCasBus {
  netlist::Netlist netlist;
  unsigned width = 0;
  std::vector<InstructionSet> isas;   ///< per CAS, bus order
  std::size_t total_ir_bits = 0;      ///< configuration-stream length
};

/// Generates and flattens the full bus. CASes with equal P share one
/// generated child netlist (instantiated repeatedly).
GeneratedCasBus generate_casbus_netlist(const CasBusNetlistSpec& spec);

}  // namespace casbus::tam
