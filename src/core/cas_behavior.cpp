#include "core/cas_behavior.hpp"

#include "util/error.hpp"

namespace casbus::tam {

namespace {
bool hi(const sim::Wire* w) { return w != nullptr && w->get() == Logic4::One; }
}  // namespace

CasBehavior::CasBehavior(std::string name, CasPorts ports)
    : sim::Module(std::move(name)),
      ports_(std::move(ports)),
      isa_(static_cast<unsigned>(ports_.e.size()),
           static_cast<unsigned>(ports_.o.size())),
      shift_reg_(isa_.k()) {
  CASBUS_REQUIRE(ports_.e.size() == ports_.s.size(),
                 "CAS: e/s bundles must both have N wires");
  CASBUS_REQUIRE(ports_.o.size() == ports_.i.size(),
                 "CAS: o/i bundles must both have P wires");
  CASBUS_REQUIRE(ports_.config != nullptr && ports_.update != nullptr,
                 "CAS: config and update wires are mandatory");
}

bool CasBehavior::chain_active() const {
  return hi(ports_.config) || InstructionSet::is_config(instr_);
}

void CasBehavior::evaluate() {
  const unsigned n = isa_.n();
  const unsigned p = isa_.p();

  if (chain_active()) {
    // CONFIGURATION (Fig. 4a): instruction register in the wire-0 path;
    // "the tri-stated switcher outputs and inputs are switched to high
    // impedance".
    ports_.s[0].set(to_logic(shift_reg_.get(shift_reg_.size() - 1)));
    for (unsigned w = 1; w < n; ++w) ports_.s[w].set(ports_.e[w].get());
    for (unsigned j = 0; j < p; ++j) ports_.o[j].set(Logic4::Z);
    return;
  }

  if (isa_.is_test(instr_)) {
    // TEST (Fig. 4c): route selected wires to the core, bypass the rest.
    const SwitchScheme scheme = isa_.decode(instr_);
    for (unsigned w = 0; w < n; ++w) {
      const auto port = scheme.port_of_wire(w);
      if (port.has_value())
        ports_.s[w].set(ports_.i[*port].get());  // heuristic return path
      else
        ports_.s[w].set(ports_.e[w].get());
    }
    for (unsigned j = 0; j < p; ++j)
      ports_.o[j].set(ports_.e[scheme.wire_of_port(j)].get());
    return;
  }

  // BYPASS (Fig. 4b) — also the safe fallback for invalid codes.
  for (unsigned w = 0; w < n; ++w) ports_.s[w].set(ports_.e[w].get());
  for (unsigned j = 0; j < p; ++j) ports_.o[j].set(Logic4::Z);
}

void CasBehavior::tick() {
  const bool updating = hi(ports_.update);
  if (updating) {
    // Update stage loads the shifted code; invalid codes degrade to BYPASS
    // in evaluate(), mirroring a safely-decoded hardware implementation.
    instr_ = shift_reg_.to_uint();
    return;
  }
  if (chain_active()) {
    shift_reg_.shift_in(ports_.e[0].get() == Logic4::One);
  }
}

void CasBehavior::reset() {
  shift_reg_ = BitVector(isa_.k());
  instr_ = InstructionSet::kBypassCode;
}

void CasBehavior::force_instruction(std::uint64_t code) {
  CASBUS_REQUIRE(isa_.is_valid(code),
                 "force_instruction: code outside instruction space");
  instr_ = code;
}

}  // namespace casbus::tam
