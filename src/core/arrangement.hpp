/// \file arrangement.hpp
/// Counting and lexicographic ranking of wire-to-port arrangements.
///
/// A CAS in TEST mode connects P core ports to P *distinct* bus wires out
/// of N; the paper's routing heuristic makes the return path implicit, so a
/// switch scheme is exactly an ordered arrangement of P wires out of N.
/// The number of TEST instructions is therefore A(N,P) = N!/(N-P)! and the
/// total instruction count is m = A(N,P) + 2 (BYPASS and CONFIGURATION);
/// this reproduces column m of the paper's Table 1 for every row.

#pragma once

#include <cstdint>
#include <vector>

#include "util/error.hpp"

namespace casbus::tam {

/// Number of ordered arrangements of \p p items out of \p n:
/// A(n,p) = n * (n-1) * ... * (n-p+1); A(n,0) = 1.
/// Throws PreconditionError when p > n or the value overflows 64 bits.
std::uint64_t arrangement_count(unsigned n, unsigned p);

/// log2 of A(n,p), computed without overflow — the safe path for wide-bus
/// geometries whose instruction spaces exceed 64 bits (scheduling and
/// area models only need the magnitude there). Throws when p > n.
double log2_arrangement_count(unsigned n, unsigned p);

/// Lexicographic rank of the arrangement \p wires (w_0, ..., w_{P-1}),
/// all distinct values < \p n, among all A(n, wires.size()) arrangements.
std::uint64_t arrangement_rank(const std::vector<unsigned>& wires,
                               unsigned n);

/// Inverse of arrangement_rank: the \p rank-th arrangement of \p p wires
/// out of \p n in lexicographic order.
std::vector<unsigned> arrangement_unrank(std::uint64_t rank, unsigned n,
                                         unsigned p);

}  // namespace casbus::tam
