#include "core/complete_tam.hpp"

#include <map>
#include <sstream>

#include "netlist/builder.hpp"
#include "p1500/wrapper.hpp"
#include "netlist/compose.hpp"
#include "netlist/opt.hpp"

namespace casbus::tam {

using netlist::NetId;
using netlist::NetlistBuilder;
using netlist::PortMap;

unsigned ports_for_wrapper(const p1500::WrapperSpec& spec) {
  const std::size_t p =
      std::max<std::size_t>(spec.n_chains, spec.has_bist ? 1 : 0);
  return static_cast<unsigned>(std::max<std::size_t>(p, 1));
}

GeneratedCompleteTam generate_complete_tam(const CompleteTamSpec& spec) {
  CASBUS_REQUIRE(spec.width >= 1, "complete tam: width must be >= 1");
  CASBUS_REQUIRE(!spec.wrappers.empty(),
                 "complete tam: need at least one wrapped core");

  std::ostringstream name;
  name << "tam_n" << spec.width << "_c" << spec.wrappers.size();
  NetlistBuilder b(name.str());

  GeneratedCompleteTam out;
  out.width = spec.width;

  // Shared CAS child netlists per P, and wrapper netlists per geometry.
  std::map<unsigned, netlist::Netlist> cas_children;
  std::vector<netlist::Netlist> wrapper_children;
  for (const p1500::WrapperSpec& w : spec.wrappers) {
    const unsigned p = ports_for_wrapper(w);
    CASBUS_REQUIRE(p <= spec.width,
                   "complete tam: wrapper needs more ports than bus wires");
    if (cas_children.find(p) == cas_children.end()) {
      GeneratedCas cas =
          generate_cas(spec.width, p, {spec.impl, spec.run_optimizer});
      cas_children.emplace(p, std::move(cas.netlist));
    }
    out.isas.emplace_back(spec.width, p);
    out.total_ir_bits += out.isas.back().k();
    out.wrapper_ring_bits += p1500::kWirBits;

    p1500::WrapperSpec named = w;
    named.name = "w";  // instance prefix provides uniqueness
    netlist::Netlist wn = p1500::generate_wrapper(named);
    if (spec.run_optimizer) wn = netlist::optimize(wn);
    wrapper_children.push_back(std::move(wn));
  }

  // Top-level control inputs.
  const NetId config = b.input("config");
  const NetId update = b.input("update");
  const NetId sel = b.input("select_wir");
  const NetId shift = b.input("shift_wr");
  const NetId capture = b.input("capture_wr");
  const NetId upd_wr = b.input("update_wr");
  NetId ring = b.input("wsi_pin");

  std::vector<NetId> segment;
  segment.reserve(spec.width);
  for (unsigned w = 0; w < spec.width; ++w)
    segment.push_back(b.input("bus_in" + std::to_string(w)));

  for (std::size_t c = 0; c < spec.wrappers.size(); ++c) {
    const p1500::WrapperSpec& wspec = spec.wrappers[c];
    const unsigned p = ports_for_wrapper(wspec);
    const std::string prefix = "c" + std::to_string(c) + "_";

    // Pre-allocate the wrapper->CAS return nets (wpo drives CAS i pins).
    std::vector<NetId> wpo_nets;
    wpo_nets.reserve(p);
    for (unsigned j = 0; j < p; ++j)
      wpo_nets.push_back(b.net(prefix + "wpo" + std::to_string(j)));

    // --- CAS ---------------------------------------------------------------
    PortMap cas_pins;
    cas_pins.emplace("config", config);
    cas_pins.emplace("update", update);
    for (unsigned w = 0; w < spec.width; ++w)
      cas_pins.emplace("e" + std::to_string(w), segment[w]);
    for (unsigned j = 0; j < p; ++j)
      cas_pins.emplace("i" + std::to_string(j), wpo_nets[j]);
    const auto cas_out = netlist::instantiate(
        b, cas_children.at(p), "cas" + std::to_string(c), cas_pins);
    for (unsigned w = 0; w < spec.width; ++w)
      segment[w] = cas_out.at("s" + std::to_string(w));

    // --- Wrapper -------------------------------------------------------------
    PortMap wpins;
    wpins.emplace("wsi", ring);
    wpins.emplace("select_wir", sel);
    wpins.emplace("shift_wr", shift);
    wpins.emplace("capture_wr", capture);
    wpins.emplace("update_wr", upd_wr);
    for (unsigned j = 0; j < p; ++j) {
      wpins.emplace("wpi" + std::to_string(j),
                    cas_out.at("o" + std::to_string(j)));
      wpins.emplace("wpo" + std::to_string(j), wpo_nets[j]);
    }
    for (std::size_t i = 0; i < wspec.n_func_in; ++i)
      wpins.emplace("sys_in" + std::to_string(i),
                    b.input(prefix + "sys_in" + std::to_string(i)));
    for (std::size_t i = 0; i < wspec.n_func_out; ++i)
      wpins.emplace("core_out" + std::to_string(i),
                    b.input(prefix + "core_out" + std::to_string(i)));
    for (std::size_t ch = 0; ch < wspec.n_chains; ++ch)
      wpins.emplace("scan_so" + std::to_string(ch),
                    b.input(prefix + "scan_so" + std::to_string(ch)));
    if (wspec.has_bist) {
      wpins.emplace("bist_done", b.input(prefix + "bist_done"));
      wpins.emplace("bist_pass", b.input(prefix + "bist_pass"));
    }

    const auto wrap_out = netlist::instantiate(
        b, wrapper_children[c], "wrap" + std::to_string(c), wpins);
    ring = wrap_out.at("wso");

    // Core-side and system-side outputs to the top level.
    for (std::size_t i = 0; i < wspec.n_func_in; ++i)
      b.output(prefix + "core_in" + std::to_string(i),
               wrap_out.at("core_in" + std::to_string(i)));
    for (std::size_t i = 0; i < wspec.n_func_out; ++i)
      b.output(prefix + "sys_out" + std::to_string(i),
               wrap_out.at("sys_out" + std::to_string(i)));
    for (std::size_t ch = 0; ch < wspec.n_chains; ++ch)
      b.output(prefix + "scan_si" + std::to_string(ch),
               wrap_out.at("scan_si" + std::to_string(ch)));
    b.output(prefix + "scan_en", wrap_out.at("scan_en"));
    b.output(prefix + "core_clk_en", wrap_out.at("core_clk_en"));
    if (wspec.has_bist)
      b.output(prefix + "bist_start", wrap_out.at("bist_start"));
  }

  for (unsigned w = 0; w < spec.width; ++w)
    b.output("bus_out" + std::to_string(w), segment[w]);
  b.output("wso_pin", ring);

  out.netlist = b.take();
  return out;
}

}  // namespace casbus::tam
