/// \file test_bus.hpp
/// Physical assembly of the CAS-BUS: an N-wire serial test bus threading
/// through a chain of CASes (paper Fig. 1).

#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/cas_behavior.hpp"
#include "sim/simulation.hpp"

namespace casbus::tam {

/// Builds and owns a chain of behavioral CASes on one test bus.
///
/// Topology: `head()` wires enter the first CAS; each CAS's s-side feeds the
/// next CAS's e-side through a dedicated wire segment; `tail()` exposes the
/// last segment (the SoC's test output pins). The shared `config` wire puts
/// every CAS of this chain into CONFIGURATION mode; `update` loads the
/// shifted instructions (paper §3: "the instruction registers of all the
/// CASes are connected to each other through the first serial test bus
/// wire during the initialization phase").
class CasBusChain {
 public:
  /// Creates the bus of \p width wires inside \p sim_ctx. The simulation
  /// must outlive the chain. \p name prefixes every wire name.
  CasBusChain(sim::Simulation& sim_ctx, unsigned width,
              std::string name = "bus");

  /// Creates a bus whose head wires already exist — used for the internal
  /// bus of a hierarchical core (paper Fig. 2d), where the parent CAS's
  /// o-ports drive the child bus head. The child chain gets its own
  /// config/update wires (its hierarchy domain's control signals).
  CasBusChain(sim::Simulation& sim_ctx, sim::WireBundle head,
              std::string name);

  CasBusChain(const CasBusChain&) = delete;
  CasBusChain& operator=(const CasBusChain&) = delete;

  /// Appends a CAS with \p ports switched wires; registers it with the
  /// simulation. Returns the CAS (owned by the chain).
  CasBehavior& add_cas(const std::string& cas_name, unsigned ports);

  /// Bus width N.
  [[nodiscard]] unsigned width() const noexcept { return width_; }

  /// Number of CASes in the chain.
  [[nodiscard]] std::size_t size() const noexcept { return cases_.size(); }

  /// Bus input wires (SoC test-in pins; drive these).
  [[nodiscard]] sim::WireBundle& head() noexcept { return head_; }

  /// Bus output wires after the last CAS (SoC test-out pins; observe these).
  [[nodiscard]] sim::WireBundle& tail() noexcept {
    return segments_.empty() ? head_ : segments_.back();
  }

  /// Shared CONFIGURATION wire of this chain (one hierarchy domain).
  [[nodiscard]] sim::Wire& config_wire() noexcept { return *config_; }

  /// Shared instruction-update wire.
  [[nodiscard]] sim::Wire& update_wire() noexcept { return *update_; }

  /// CAS number \p idx in bus order.
  [[nodiscard]] CasBehavior& cas(std::size_t idx) {
    return *cases_.at(idx);
  }
  [[nodiscard]] const CasBehavior& cas(std::size_t idx) const {
    return *cases_.at(idx);
  }

  /// Core-side bundles of CAS \p idx, for wrapper hookup: `o` wires are
  /// CAS->wrapper (connect to WPI), `i` wires are wrapper->CAS (WPO).
  [[nodiscard]] sim::WireBundle& cas_o(std::size_t idx) {
    return o_bundles_.at(idx);
  }
  [[nodiscard]] sim::WireBundle& cas_i(std::size_t idx) {
    return i_bundles_.at(idx);
  }

  /// Total instruction bits in the chain: sum of k over all CASes — the
  /// length of a pure-CAS configuration stream.
  [[nodiscard]] std::size_t total_ir_bits() const;

 private:
  sim::Simulation& sim_;
  std::string name_;
  unsigned width_;
  sim::WireBundle head_;
  std::vector<sim::WireBundle> segments_;  // after each CAS
  std::vector<sim::WireBundle> o_bundles_;
  std::vector<sim::WireBundle> i_bundles_;
  std::vector<std::unique_ptr<CasBehavior>> cases_;
  sim::Wire* config_;
  sim::Wire* update_;
};

}  // namespace casbus::tam
