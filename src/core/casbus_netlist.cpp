#include "core/casbus_netlist.hpp"

#include <map>
#include <sstream>

#include "netlist/builder.hpp"
#include "netlist/compose.hpp"
#include "netlist/opt.hpp"

namespace casbus::tam {

using netlist::NetId;
using netlist::NetlistBuilder;

GeneratedCasBus generate_casbus_netlist(const CasBusNetlistSpec& spec) {
  CASBUS_REQUIRE(spec.width >= 1, "casbus netlist: width must be >= 1");
  CASBUS_REQUIRE(!spec.ports_per_cas.empty(),
                 "casbus netlist: need at least one CAS");

  std::ostringstream name;
  name << "casbus_n" << spec.width << "_c" << spec.ports_per_cas.size();
  NetlistBuilder b(name.str());

  GeneratedCasBus out;
  out.width = spec.width;

  // Shared child netlists per P.
  std::map<unsigned, netlist::Netlist> children;
  for (const unsigned p : spec.ports_per_cas) {
    if (children.find(p) == children.end()) {
      GeneratedCas cas =
          generate_cas(spec.width, p, {spec.impl, spec.run_optimizer});
      children.emplace(p, std::move(cas.netlist));
    }
    out.isas.emplace_back(spec.width, p);
    out.total_ir_bits += out.isas.back().k();
  }

  // Top-level control and bus-entry ports.
  const NetId config = b.input("config");
  const NetId update = b.input("update");
  std::vector<NetId> segment;
  for (unsigned w = 0; w < spec.width; ++w) {
    std::ostringstream os;
    os << "bus_in" << w;
    segment.push_back(b.input(os.str()));
  }

  // Instantiate each CAS, threading the bus segments through.
  for (std::size_t c = 0; c < spec.ports_per_cas.size(); ++c) {
    const unsigned p = spec.ports_per_cas[c];
    std::ostringstream inst;
    inst << "cas" << c;

    netlist::PortMap pins;
    pins.emplace("config", config);
    pins.emplace("update", update);
    for (unsigned w = 0; w < spec.width; ++w) {
      std::ostringstream os;
      os << 'e' << w;
      pins.emplace(os.str(), segment[w]);
    }
    for (unsigned j = 0; j < p; ++j) {
      std::ostringstream top, port;
      top << "cas" << c << "_i" << j;
      port << 'i' << j;
      pins.emplace(port.str(), b.input(top.str()));
    }

    const auto outputs =
        netlist::instantiate(b, children.at(p), inst.str(), pins);

    // Next segment = this CAS's s outputs; o ports go to the top level.
    for (unsigned w = 0; w < spec.width; ++w) {
      std::ostringstream os;
      os << 's' << w;
      segment[w] = outputs.at(os.str());
    }
    for (unsigned j = 0; j < p; ++j) {
      std::ostringstream top, port;
      top << "cas" << c << "_o" << j;
      port << 'o' << j;
      b.output(top.str(), outputs.at(port.str()));
    }
  }

  for (unsigned w = 0; w < spec.width; ++w) {
    std::ostringstream os;
    os << "bus_out" << w;
    b.output(os.str(), segment[w]);
  }

  out.netlist = b.take();
  return out;
}

}  // namespace casbus::tam
