#include "core/test_bus.hpp"

#include <sstream>

#include "util/error.hpp"

namespace casbus::tam {

CasBusChain::CasBusChain(sim::Simulation& sim_ctx, unsigned width,
                         std::string name)
    : sim_(sim_ctx), name_(std::move(name)), width_(width) {
  CASBUS_REQUIRE(width_ >= 1, "CasBusChain: bus width must be >= 1");
  head_ = sim_.bundle(name_ + ".in", width_, Logic4::Zero);
  config_ = &sim_.wire(name_ + ".config", Logic4::Zero);
  update_ = &sim_.wire(name_ + ".update", Logic4::Zero);
}

CasBusChain::CasBusChain(sim::Simulation& sim_ctx, sim::WireBundle head,
                         std::string name)
    : sim_(sim_ctx),
      name_(std::move(name)),
      width_(static_cast<unsigned>(head.size())),
      head_(std::move(head)) {
  CASBUS_REQUIRE(width_ >= 1, "CasBusChain: bus width must be >= 1");
  config_ = &sim_.wire(name_ + ".config", Logic4::Zero);
  update_ = &sim_.wire(name_ + ".update", Logic4::Zero);
}

CasBehavior& CasBusChain::add_cas(const std::string& cas_name,
                                  unsigned ports) {
  CASBUS_REQUIRE(ports >= 1 && ports <= width_,
                 "CasBusChain::add_cas: ports must satisfy 1 <= P <= N");

  sim::WireBundle& e = segments_.empty() ? head_ : segments_.back();
  sim::WireBundle s =
      sim_.bundle(name_ + "." + cas_name + ".s", width_, Logic4::Zero);
  sim::WireBundle o =
      sim_.bundle(name_ + "." + cas_name + ".o", ports, Logic4::Z);
  sim::WireBundle i =
      sim_.bundle(name_ + "." + cas_name + ".i", ports, Logic4::Zero);

  CasPorts ports_struct;
  ports_struct.e = e;  // bundles hold non-owning wire pointers; copy is fine
  ports_struct.s = s;
  ports_struct.o = o;
  ports_struct.i = i;
  ports_struct.config = config_;
  ports_struct.update = update_;

  auto cas = std::make_unique<CasBehavior>(name_ + "." + cas_name,
                                           std::move(ports_struct));
  CasBehavior& ref = *cas;
  sim_.add(&ref);
  cases_.push_back(std::move(cas));
  segments_.push_back(std::move(s));
  o_bundles_.push_back(std::move(o));
  i_bundles_.push_back(std::move(i));
  return ref;
}

std::size_t CasBusChain::total_ir_bits() const {
  std::size_t bits = 0;
  for (const auto& cas : cases_) bits += cas->isa().k();
  return bits;
}

}  // namespace casbus::tam
