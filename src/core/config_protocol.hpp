/// \file config_protocol.hpp
/// Serial configuration streams for daisy-chained instruction registers.
///
/// During CONFIGURATION every CAS inserts its k-bit instruction register
/// into the wire-0 path, forming one long shift register across the chain
/// (optionally interleaved with the P1500 WIRs — the paper's "tri-state
/// mechanism, which allows to configure at the same time the CAS and the
/// wrapper, by serially connecting the CAS and wrapper instruction
/// registers"). This header computes the bit streams the SoC test
/// controller must shift.

#pragma once

#include <cstdint>
#include <vector>

#include "core/test_bus.hpp"
#include "util/bitvector.hpp"

namespace casbus::tam {

/// One register in the composite configuration chain, in physical chain
/// order (index 0 = the register nearest the bus input pin).
struct ConfigEntry {
  std::size_t reg_bits = 0;   ///< register length (k for a CAS, 3 for a WIR)
  std::uint64_t code = 0;     ///< value the register must hold after update
};

/// Builds the serial stream (bit 0 shifted first) that leaves each chained
/// register holding its target code after exactly `stream.size()` shift
/// cycles followed by one update pulse.
///
/// Bit order: the first bits shifted travel to the far end of the chain, so
/// the stream is the concatenation, in *reverse* chain order, of each code's
/// bits MSB-first.
BitVector build_config_stream(const std::vector<ConfigEntry>& chain);

/// Convenience: pure-CAS stream for a CasBusChain, `codes[i]` targeting
/// CAS i in bus order. Codes must be valid for each CAS's instruction set.
BitVector build_cas_config_stream(const CasBusChain& chain,
                                  const std::vector<std::uint64_t>& codes);

/// Number of shift cycles build_config_stream's result requires.
std::size_t config_stream_length(const std::vector<ConfigEntry>& chain);

}  // namespace casbus::tam
