#include "core/arrangement.hpp"

#include <algorithm>
#include <cmath>

namespace casbus::tam {

std::uint64_t arrangement_count(unsigned n, unsigned p) {
  CASBUS_REQUIRE(p <= n, "arrangement_count requires p <= n");
  std::uint64_t result = 1;
  for (unsigned i = 0; i < p; ++i) {
    const std::uint64_t factor = n - i;
    CASBUS_REQUIRE(result <= UINT64_MAX / factor,
                   "arrangement_count overflows 64 bits");
    result *= factor;
  }
  return result;
}

double log2_arrangement_count(unsigned n, unsigned p) {
  CASBUS_REQUIRE(p <= n, "arrangement_count requires p <= n");
  double log2_a = 0.0;
  for (unsigned i = 0; i < p; ++i)
    log2_a += std::log2(static_cast<double>(n - i));
  return log2_a;
}

std::uint64_t arrangement_rank(const std::vector<unsigned>& wires,
                               unsigned n) {
  const auto p = static_cast<unsigned>(wires.size());
  CASBUS_REQUIRE(p <= n, "arrangement_rank: more wires than bus width");
  std::vector<bool> used(n, false);
  std::uint64_t rank = 0;
  for (unsigned j = 0; j < p; ++j) {
    const unsigned w = wires[j];
    CASBUS_REQUIRE(w < n, "arrangement_rank: wire index out of range");
    CASBUS_REQUIRE(!used[w], "arrangement_rank: duplicate wire");
    // Digit: how many unused wires precede w.
    unsigned digit = 0;
    for (unsigned v = 0; v < w; ++v)
      if (!used[v]) ++digit;
    rank += digit * arrangement_count(n - j - 1, p - j - 1);
    used[w] = true;
  }
  return rank;
}

std::vector<unsigned> arrangement_unrank(std::uint64_t rank, unsigned n,
                                         unsigned p) {
  CASBUS_REQUIRE(p <= n, "arrangement_unrank requires p <= n");
  CASBUS_REQUIRE(rank < arrangement_count(n, p),
                 "arrangement_unrank: rank out of range");
  std::vector<unsigned> available;
  available.reserve(n);
  for (unsigned v = 0; v < n; ++v) available.push_back(v);

  std::vector<unsigned> wires;
  wires.reserve(p);
  for (unsigned j = 0; j < p; ++j) {
    const std::uint64_t stride = arrangement_count(n - j - 1, p - j - 1);
    const auto digit = static_cast<std::size_t>(rank / stride);
    rank %= stride;
    wires.push_back(available[digit]);
    available.erase(available.begin() +
                    static_cast<std::ptrdiff_t>(digit));
  }
  return wires;
}

}  // namespace casbus::tam
