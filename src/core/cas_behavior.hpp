/// \file cas_behavior.hpp
/// Cycle-level behavioral model of the Core Access Switch (paper §3).

#pragma once

#include <cstdint>
#include <string>

#include "core/instruction.hpp"
#include "sim/module.hpp"
#include "sim/simulation.hpp"
#include "util/bitvector.hpp"

namespace casbus::tam {

/// Wires a CAS connects to. All wires are owned by the Simulation.
struct CasPorts {
  sim::WireBundle e;     ///< test-bus inputs, N wires
  sim::WireBundle s;     ///< test-bus outputs, N wires
  sim::WireBundle o;     ///< core-side outputs (to wrapper WPI), P wires
  sim::WireBundle i;     ///< core-side inputs (from wrapper WPO), P wires
  sim::Wire* config = nullptr;  ///< global CONFIGURATION mode (Fig. 4a)
  sim::Wire* update = nullptr;  ///< instruction-register update pulse
};

/// Behavioral Core Access Switch.
///
/// Functional modes (paper §3.1 / Fig. 4):
///  - CONFIGURATION: asserted `config` wire (or an updated CONFIGURATION
///    instruction) inserts the k-bit instruction register into the wire-0
///    serial path: e0 shifts in every clock, s0 presents the register tail,
///    core-side pins float at Z, wires 1..N-1 bypass.
///  - BYPASS (code 0): every e_i goes straight to s_i; core pins at Z.
///  - TEST (codes >= 2): the decoded SwitchScheme drives o_j = e_{w_j} and,
///    per the routing heuristic, s_{w_j} = i_j; unselected wires bypass.
class CasBehavior : public sim::Module {
 public:
  /// Creates a CAS of geometry (N = ports.e.size(), P = ports.o.size()).
  CasBehavior(std::string name, CasPorts ports);

  void evaluate() override;
  void tick() override;
  void reset() override;

  /// The instruction space of this CAS geometry.
  [[nodiscard]] const InstructionSet& isa() const noexcept { return isa_; }

  /// Instruction currently in force (the update stage).
  [[nodiscard]] std::uint64_t instruction() const noexcept { return instr_; }

  /// Shift-stage content (diagnostic; becomes the instruction on update).
  [[nodiscard]] std::uint64_t shift_stage() const noexcept {
    return shift_reg_.to_uint();
  }

  /// True when this CAS currently keeps its instruction register in the
  /// wire-0 chain (global config or CONFIGURATION instruction).
  [[nodiscard]] bool chain_active() const;

  /// Test/debug backdoor: loads \p code directly into the update stage.
  void force_instruction(std::uint64_t code);

  [[nodiscard]] unsigned n() const noexcept { return isa_.n(); }
  [[nodiscard]] unsigned p() const noexcept { return isa_.p(); }

 private:
  CasPorts ports_;
  InstructionSet isa_;
  BitVector shift_reg_;
  std::uint64_t instr_ = InstructionSet::kBypassCode;
};

}  // namespace casbus::tam
