#include "core/instruction.hpp"

namespace casbus::tam {

namespace {

unsigned ceil_log2(std::uint64_t m) {
  unsigned k = 0;
  std::uint64_t capacity = 1;
  while (capacity < m) {
    capacity <<= 1;
    ++k;
  }
  return k;
}

}  // namespace

InstructionSet::InstructionSet(unsigned bus_width, unsigned ports)
    : n_(bus_width), p_(ports) {
  CASBUS_REQUIRE(n_ >= 1, "InstructionSet: bus width N must be >= 1");
  CASBUS_REQUIRE(p_ >= 1 && p_ <= n_,
                 "InstructionSet: ports P must satisfy 1 <= P <= N");
  m_ = arrangement_count(n_, p_) + 2;
  k_ = ceil_log2(m_);
}

std::uint64_t InstructionSet::encode(const SwitchScheme& scheme) const {
  CASBUS_REQUIRE(scheme.bus_width() == n_ && scheme.port_count() == p_,
                 "InstructionSet::encode: scheme geometry mismatch");
  return kFirstTestCode + arrangement_rank(scheme.assignment(), n_);
}

SwitchScheme InstructionSet::decode(std::uint64_t code) const {
  CASBUS_REQUIRE(is_test(code),
                 "InstructionSet::decode: not a TEST instruction");
  return SwitchScheme(arrangement_unrank(code - kFirstTestCode, n_, p_), n_);
}

}  // namespace casbus::tam
