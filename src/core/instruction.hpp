/// \file instruction.hpp
/// The CAS instruction space for a given (N, P) configuration.
///
/// Encoding (paper §3.1–§3.2):
///   code 0            BYPASS        "all instruction register bits are 0"
///   code 1            CONFIGURATION the CAS keeps its instruction register
///                                   inserted in the wire-0 chain, so it can
///                                   be reprogrammed while others bypass
///   codes 2 .. m-1    TEST          lexicographic arrangements of P wires
///
/// Totals: m = A(N,P) + 2 control words, instruction register width
/// k = ceil(log2 m) — the paper's formula, matching Table 1 exactly.

#pragma once

#include <cstdint>

#include "core/arrangement.hpp"
#include "core/switch_scheme.hpp"

namespace casbus::tam {

/// Value-semantics descriptor of one (N, P) instruction space.
class InstructionSet {
 public:
  /// \p bus_width = N >= 1, \p ports = P with 1 <= P <= N (paper §2).
  InstructionSet(unsigned bus_width, unsigned ports);

  static constexpr std::uint64_t kBypassCode = 0;
  static constexpr std::uint64_t kConfigCode = 1;
  static constexpr std::uint64_t kFirstTestCode = 2;

  [[nodiscard]] unsigned n() const noexcept { return n_; }
  [[nodiscard]] unsigned p() const noexcept { return p_; }

  /// Total number of control instructions m = A(N,P) + 2 (Table 1, col m).
  [[nodiscard]] std::uint64_t m() const noexcept { return m_; }

  /// Instruction register width k = ceil(log2 m) (Table 1, col k).
  [[nodiscard]] unsigned k() const noexcept { return k_; }

  /// True when \p code is one of the m defined instructions.
  [[nodiscard]] bool is_valid(std::uint64_t code) const noexcept {
    return code < m_;
  }
  [[nodiscard]] static bool is_bypass(std::uint64_t code) noexcept {
    return code == kBypassCode;
  }
  [[nodiscard]] static bool is_config(std::uint64_t code) noexcept {
    return code == kConfigCode;
  }
  [[nodiscard]] bool is_test(std::uint64_t code) const noexcept {
    return code >= kFirstTestCode && code < m_;
  }

  /// TEST code for a switch scheme (scheme geometry must match N and P).
  [[nodiscard]] std::uint64_t encode(const SwitchScheme& scheme) const;

  /// Switch scheme of a TEST \p code; throws unless is_test(code).
  [[nodiscard]] SwitchScheme decode(std::uint64_t code) const;

  friend bool operator==(const InstructionSet& a, const InstructionSet& b) {
    return a.n_ == b.n_ && a.p_ == b.p_;
  }

 private:
  unsigned n_;
  unsigned p_;
  std::uint64_t m_;
  unsigned k_;
};

}  // namespace casbus::tam
