#include "core/switch_scheme.hpp"

namespace casbus::tam {

SwitchScheme::SwitchScheme(std::vector<unsigned> wire_of_port,
                           unsigned bus_width)
    : wire_of_port_(std::move(wire_of_port)), n_(bus_width) {
  CASBUS_REQUIRE(!wire_of_port_.empty(),
                 "SwitchScheme requires at least one port");
  CASBUS_REQUIRE(wire_of_port_.size() <= n_,
                 "SwitchScheme: more ports than bus wires");
  std::vector<bool> used(n_, false);
  for (const unsigned w : wire_of_port_) {
    CASBUS_REQUIRE(w < n_, "SwitchScheme: wire index out of range");
    CASBUS_REQUIRE(!used[w], "SwitchScheme: wire assigned to two ports");
    used[w] = true;
  }
}

SwitchScheme SwitchScheme::identity(unsigned ports, unsigned bus_width) {
  std::vector<unsigned> v(ports);
  for (unsigned j = 0; j < ports; ++j) v[j] = j;
  return SwitchScheme(std::move(v), bus_width);
}

std::optional<unsigned> SwitchScheme::port_of_wire(unsigned w) const {
  for (unsigned j = 0; j < wire_of_port_.size(); ++j)
    if (wire_of_port_[j] == w) return j;
  return std::nullopt;
}

}  // namespace casbus::tam
