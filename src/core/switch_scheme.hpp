/// \file switch_scheme.hpp
/// The switch scheme of a CAS in TEST mode.

#pragma once

#include <optional>
#include <vector>

#include "util/error.hpp"

namespace casbus::tam {

/// An injective assignment of P core ports to P distinct bus wires.
///
/// `wire_of_port(j)` is the bus wire feeding core port j (e_w -> o_j). The
/// paper's routing heuristic — "when an input e_i is switched to an output
/// o_j, the corresponding i_j CAS input is switched to the s_i output" —
/// means the return path (i_j -> s_w) is *derived*, never stored, so a
/// scheme cannot express an illegal asymmetric route by construction.
class SwitchScheme {
 public:
  /// Builds a scheme on a bus of width \p bus_width from \p wire_of_port
  /// (index = port, value = wire). Values must be distinct and < bus_width.
  SwitchScheme(std::vector<unsigned> wire_of_port, unsigned bus_width);

  /// The identity scheme: port j <- wire j.
  static SwitchScheme identity(unsigned ports, unsigned bus_width);

  [[nodiscard]] unsigned bus_width() const noexcept { return n_; }
  [[nodiscard]] unsigned port_count() const noexcept {
    return static_cast<unsigned>(wire_of_port_.size());
  }

  /// Bus wire connected to core port \p j.
  [[nodiscard]] unsigned wire_of_port(unsigned j) const {
    CASBUS_REQUIRE(j < wire_of_port_.size(),
                   "SwitchScheme: port index out of range");
    return wire_of_port_[j];
  }

  /// Core port fed by bus wire \p w, if any (the derived return route).
  [[nodiscard]] std::optional<unsigned> port_of_wire(unsigned w) const;

  /// True when wire \p w passes through untouched (bypass inside TEST mode:
  /// "the N-P remaining wires bypass the CAS").
  [[nodiscard]] bool wire_bypasses(unsigned w) const {
    return !port_of_wire(w).has_value();
  }

  [[nodiscard]] const std::vector<unsigned>& assignment() const noexcept {
    return wire_of_port_;
  }

  friend bool operator==(const SwitchScheme& a, const SwitchScheme& b) {
    return a.n_ == b.n_ && a.wire_of_port_ == b.wire_of_port_;
  }

 private:
  std::vector<unsigned> wire_of_port_;
  unsigned n_;
};

}  // namespace casbus::tam
