/// \file cas_generator.hpp
/// Gate-level CAS generation — the reproduction of the paper's CAS
/// architecture generator (§3.2–3.3).
///
/// The paper's generator "takes as parameters the N and P values, and
/// provides a VHDL description of the CAS". Ours produces a structural
/// netlist (from which emit_vhdl / emit_verilog render HDL) in two
/// implementation styles, mirroring §3.3:
///
///  - Generic: the straightforward architecture of Fig. 3 — k-bit shift +
///    update instruction register, full one-hot decode of all m codes, and
///    AND-OR switch routing. Cheap for small m, superlinear for large m
///    (the paper: "when the width of the test bus becomes important, the
///    induced CAS-BUS overhead can be significant").
///
///  - OptimizedGateLevel: the paper's "highly optimized gate level
///    description" (under study in §3.3). Instead of enumerating codes, the
///    dense code is decoded arithmetically: code-2 is split into mixed-radix
///    digits by constant comparators/subtractors, and a combinational
///    relabeling network (popcount ranks over unused wires) converts digits
///    into per-port wire selects. Cost grows ~N^2·P·k instead of ~m·k.
///
/// A third §3.3 implementation, the pass-transistor switch matrix, cannot
/// be expressed as a standard-cell netlist; pass_transistor_area() provides
/// its area model instead.
///
/// Port naming contract (stable, used by GateSim-driven tests):
/// inputs  "e0".."e{N-1}", "i0".."i{P-1}", "config", "update";
/// outputs "s0".."s{N-1}", "o0".."o{P-1}".

#pragma once

#include <string>

#include "core/instruction.hpp"
#include "netlist/area.hpp"
#include "netlist/netlist.hpp"

namespace casbus::tam {

/// Implementation style of a generated CAS (paper §3.3).
enum class CasImplementation {
  Generic,            ///< Fig. 3 architecture, full code decode
  OptimizedGateLevel, ///< arithmetic mixed-radix decode
};

/// Knobs for generate_cas().
struct CasGenOptions {
  CasImplementation impl = CasImplementation::Generic;
  bool run_optimizer = false;  ///< post-process with netlist::optimize()
};

/// A generated CAS and its bookkeeping.
struct GeneratedCas {
  netlist::Netlist netlist;
  InstructionSet isa;
  CasImplementation impl = CasImplementation::Generic;

  /// Cell count (the closest analogue of the paper's "# of gates" column).
  [[nodiscard]] std::size_t cell_count() const {
    return netlist.cell_count();
  }
};

/// Generates the gate-level CAS for a bus of width \p n and \p p switched
/// wires. Behavior is bit-exact with CasBehavior (verified by the
/// equivalence test-suite): same instruction encoding, same modes, same
/// routing heuristic.
GeneratedCas generate_cas(unsigned n, unsigned p,
                          const CasGenOptions& options = {});

/// Area of the pass-transistor CAS implementation (paper §3.3, second
/// "under study" variant) in transistors: a full N x P crosspoint matrix of
/// transmission gates in both directions, per-crosspoint control latches,
/// bypass gates, and the same shift/update instruction register. "Without
/// restricting heuristics" (full crossbar), exactly as the paper notes.
struct PassTransistorArea {
  double transistors = 0.0;
  double gate_equivalents = 0.0;  ///< transistors / 4 (1 GE = 4T NAND2)
};
PassTransistorArea pass_transistor_area(unsigned n, unsigned p);

}  // namespace casbus::tam
