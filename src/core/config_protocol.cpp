#include "core/config_protocol.hpp"

#include "util/error.hpp"

namespace casbus::tam {

BitVector build_config_stream(const std::vector<ConfigEntry>& chain) {
  BitVector stream;
  for (auto it = chain.rbegin(); it != chain.rend(); ++it) {
    CASBUS_REQUIRE(it->reg_bits >= 1 && it->reg_bits <= 64,
                   "config entry register width must be in [1, 64]");
    CASBUS_REQUIRE(
        it->reg_bits == 64 || it->code < (1ULL << it->reg_bits),
        "config entry code does not fit its register");
    for (std::size_t j = it->reg_bits; j-- > 0;)
      stream.push_back(((it->code >> j) & 1ULL) != 0);
  }
  return stream;
}

BitVector build_cas_config_stream(const CasBusChain& chain,
                                  const std::vector<std::uint64_t>& codes) {
  CASBUS_REQUIRE(codes.size() == chain.size(),
                 "build_cas_config_stream: one code per CAS required");
  std::vector<ConfigEntry> entries;
  entries.reserve(codes.size());
  for (std::size_t c = 0; c < codes.size(); ++c) {
    CASBUS_REQUIRE(chain.cas(c).isa().is_valid(codes[c]),
                   "build_cas_config_stream: invalid instruction code");
    entries.push_back(ConfigEntry{chain.cas(c).isa().k(), codes[c]});
  }
  return build_config_stream(entries);
}

std::size_t config_stream_length(const std::vector<ConfigEntry>& chain) {
  std::size_t bits = 0;
  for (const ConfigEntry& e : chain) bits += e.reg_bits;
  return bits;
}

}  // namespace casbus::tam
