#include "p1500/wrapper.hpp"

#include "util/error.hpp"

namespace casbus::p1500 {

namespace {

/// Control/data wires are read 2-valued at the behavioral level: Z/X count
/// as low. (The gate-level CAS model in src/core keeps full 4-state
/// semantics; the wrapper is deliberately a cycle-true behavioral model.)
bool hi(const sim::Wire* w) { return w != nullptr && w->get() == Logic4::One; }

WrapperInstr decode_instr(std::uint64_t code) {
  if (code > static_cast<std::uint64_t>(WrapperInstr::Bist))
    return WrapperInstr::Bypass;  // unknown opcodes fall back to bypass
  return static_cast<WrapperInstr>(code);
}

}  // namespace

Wrapper::Wrapper(sim::Simulation& sim_ctx, std::string name,
                 FunctionalPorts func, CoreTestPorts core, TamPorts tam,
                 WscWires wsc)
    : sim::Module(std::move(name)),
      func_(std::move(func)),
      core_(std::move(core)),
      tam_(std::move(tam)),
      wsc_(std::move(wsc)) {
  (void)sim_ctx;  // wires are owned by the simulation; kept for symmetry
  CASBUS_REQUIRE(func_.sys_in.size() == func_.core_in.size(),
                 "wrapper: sys_in/core_in size mismatch");
  CASBUS_REQUIRE(func_.sys_out.size() == func_.core_out.size(),
                 "wrapper: sys_out/core_out size mismatch");
  CASBUS_REQUIRE(core_.scan_in.size() == core_.scan_out.size(),
                 "wrapper: scan_in/scan_out size mismatch");
  CASBUS_REQUIRE(tam_.wsi != nullptr && tam_.wso != nullptr,
                 "wrapper: serial port is mandatory");
  CASBUS_REQUIRE(wsc_.select_wir != nullptr && wsc_.shift_wr != nullptr &&
                     wsc_.capture_wr != nullptr && wsc_.update_wr != nullptr,
                 "wrapper: WSC wires are mandatory");
  in_cells_.resize(func_.sys_in.size());
  out_cells_.resize(func_.sys_out.size());
}

bool Wrapper::selecting_wir() const { return hi(wsc_.select_wir); }

Logic4 Wrapper::serial_path_tail() const {
  // End of the serial data path for boundary-register instructions.
  const bool with_chains = instr_ == WrapperInstr::IntestSerial;
  if (!out_cells_.empty())
    return to_logic(out_cells_.back().shift_stage);
  if (with_chains && !core_.scan_out.empty())
    return core_.scan_out.back()->get();
  if (!in_cells_.empty()) return to_logic(in_cells_.back().shift_stage);
  return tam_.wsi->get();
}

void Wrapper::evaluate() {
  // While the WIR is selected, the data registers (and with them the
  // core's scan chains) are decoupled from the serial controls.
  const bool wir_path = selecting_wir();
  const bool shifting = hi(wsc_.shift_wr) && !wir_path;
  const bool capturing = hi(wsc_.capture_wr) && !wir_path;
  const bool intest = instr_ == WrapperInstr::IntestSerial ||
                      instr_ == WrapperInstr::IntestParallel;
  const bool functional =
      instr_ == WrapperInstr::Bypass || instr_ == WrapperInstr::Preload;

  // Core-side controls.
  if (core_.scan_en != nullptr) core_.scan_en->set(intest && shifting);
  if (core_.core_clk_en != nullptr) {
    bool clk_en = false;
    if (functional || instr_ == WrapperInstr::Bist) clk_en = true;
    if (intest && (shifting || capturing)) clk_en = true;
    core_.core_clk_en->set(clk_en);
  }
  if (core_.bist_start != nullptr) {
    const bool start = instr_ == WrapperInstr::Bist && !tam_.wpi.empty() &&
                       hi(tam_.wpi[0]);
    core_.bist_start->set(start);
  }

  // Functional terminals through the boundary cells.
  for (std::size_t i = 0; i < func_.core_in.size(); ++i) {
    if (functional)
      func_.core_in[i]->set(func_.sys_in[i]->get());
    else
      func_.core_in[i]->set(to_logic(in_cells_[i].update_stage));
  }
  for (std::size_t i = 0; i < func_.sys_out.size(); ++i) {
    if (functional)
      func_.sys_out[i]->set(func_.core_out[i]->get());
    else
      func_.sys_out[i]->set(to_logic(out_cells_[i].update_stage));
  }

  // Scan-chain sources.
  for (std::size_t c = 0; c < core_.scan_in.size(); ++c) {
    Logic4 v = Logic4::Zero;
    if (instr_ == WrapperInstr::IntestParallel) {
      v = c < tam_.wpi.size() ? tam_.wpi[c]->get() : Logic4::Zero;
    } else if (instr_ == WrapperInstr::IntestSerial) {
      if (c == 0)
        v = in_cells_.empty() ? tam_.wsi->get()
                              : to_logic(in_cells_.back().shift_stage);
      else
        v = core_.scan_out[c - 1]->get();
    }
    core_.scan_in[c]->set(v);
  }

  // Parallel outputs mirror the core's observation points.
  for (std::size_t c = 0; c < tam_.wpo.size(); ++c) {
    if (instr_ == WrapperInstr::Bist && core_.bist_done != nullptr) {
      // BIST cores: WPO0 reports done ? pass : 0 (paper Fig. 2b, P = 1).
      const bool done = hi(core_.bist_done);
      const bool pass = hi(core_.bist_pass);
      tam_.wpo[c]->set(done && pass);
    } else if (c < core_.scan_out.size()) {
      tam_.wpo[c]->set(core_.scan_out[c]->get());
    } else {
      tam_.wpo[c]->set(false);
    }
  }

  // Serial output.
  Logic4 wso = Logic4::Zero;
  if (selecting_wir()) {
    wso = to_logic(wir_shift_.get(wir_shift_.size() - 1));
  } else {
    switch (instr_) {
      case WrapperInstr::Bypass:
      case WrapperInstr::IntestParallel:
      case WrapperInstr::Bist:
        wso = to_logic(wby_);
        break;
      case WrapperInstr::Preload:
      case WrapperInstr::Extest:
      case WrapperInstr::IntestSerial:
        wso = serial_path_tail();
        break;
    }
  }
  tam_.wso->set(wso);
}

void Wrapper::tick() {
  const bool shifting = hi(wsc_.shift_wr);
  const bool capturing = hi(wsc_.capture_wr);
  const bool updating = hi(wsc_.update_wr);
  const bool wsi = hi(tam_.wsi);

  if (selecting_wir()) {
    // Hardware ordering: the update stage captures the shift stage's
    // pre-clock value (both stages share the clock edge).
    if (updating) instr_ = decode_instr(wir_shift_.to_uint());
    if (shifting) wir_shift_.shift_in(wsi);
    return;
  }

  switch (instr_) {
    case WrapperInstr::Bypass:
    case WrapperInstr::IntestParallel:
    case WrapperInstr::Bist:
      if (shifting) wby_ = wsi;
      break;
    case WrapperInstr::Preload:
    case WrapperInstr::Extest:
    case WrapperInstr::IntestSerial: {
      // Update first: the update latches capture the shift stages'
      // pre-clock values, as the flip-flop hardware does.
      if (updating) {
        for (auto& cell : in_cells_) cell.update_stage = cell.shift_stage;
        for (auto& cell : out_cells_) cell.update_stage = cell.shift_stage;
      }
      if (capturing) {
        if (instr_ == WrapperInstr::Extest) {
          for (std::size_t i = 0; i < in_cells_.size(); ++i)
            in_cells_[i].shift_stage = hi(func_.sys_in[i]);
        } else if (instr_ == WrapperInstr::IntestSerial) {
          for (std::size_t i = 0; i < out_cells_.size(); ++i)
            out_cells_[i].shift_stage = hi(func_.core_out[i]);
        }
      } else if (shifting) {
        // Shift one position along the serial path, using pre-tick values.
        const bool in_tail =
            in_cells_.empty() ? wsi : in_cells_.back().shift_stage;
        bool out_head = in_tail;
        if (instr_ == WrapperInstr::IntestSerial &&
            !core_.scan_out.empty()) {
          // Chains sit between input and output cells; the core shifts them
          // itself under scan_en, so our out-cell head is the last chain's
          // current scan-out.
          out_head = hi(core_.scan_out.back());
        }
        for (std::size_t i = out_cells_.size(); i-- > 1;)
          out_cells_[i].shift_stage = out_cells_[i - 1].shift_stage;
        if (!out_cells_.empty()) out_cells_[0].shift_stage = out_head;
        for (std::size_t i = in_cells_.size(); i-- > 1;)
          in_cells_[i].shift_stage = in_cells_[i - 1].shift_stage;
        if (!in_cells_.empty()) in_cells_[0].shift_stage = wsi;
      }
      break;
    }
  }
}

void Wrapper::reset() {
  wir_shift_ = BitVector(kWirBits);
  instr_ = WrapperInstr::Bypass;
  wby_ = false;
  for (auto& cell : in_cells_) cell = BoundaryCell{};
  for (auto& cell : out_cells_) cell = BoundaryCell{};
}

std::size_t Wrapper::serial_length(WrapperInstr instr) const {
  switch (instr) {
    case WrapperInstr::Bypass:
    case WrapperInstr::IntestParallel:
    case WrapperInstr::Bist:
      return 1;  // WBY
    case WrapperInstr::Preload:
    case WrapperInstr::Extest:
      return in_cells_.size() + out_cells_.size();
    case WrapperInstr::IntestSerial: {
      std::size_t chain_bits = 0;
      for (const std::size_t len : core_.chain_lengths) chain_bits += len;
      return in_cells_.size() + chain_bits + out_cells_.size();
    }
  }
  return 0;
}

}  // namespace casbus::p1500
