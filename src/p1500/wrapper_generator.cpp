#include "p1500/wrapper_generator.hpp"

#include <sstream>

#include "netlist/builder.hpp"
#include "p1500/wrapper.hpp"

namespace casbus::p1500 {

using netlist::NetId;
using netlist::NetlistBuilder;

netlist::Netlist generate_wrapper(const WrapperSpec& spec) {
  NetlistBuilder b(spec.name);
  const std::size_t ni = spec.n_func_in;
  const std::size_t no = spec.n_func_out;
  const std::size_t nc = spec.n_chains;
  // BIST-only wrappers still expose one parallel port pair (Fig. 2b).
  const std::size_t np = std::max<std::size_t>(nc, spec.has_bist ? 1 : 0);

  // ---- ports ---------------------------------------------------------------
  const NetId wsi = b.input("wsi");
  const NetId sel = b.input("select_wir");
  const NetId shift = b.input("shift_wr");
  const NetId capture = b.input("capture_wr");
  const NetId update = b.input("update_wr");

  std::vector<NetId> wpi, sys_in, core_out, scan_so;
  for (std::size_t j = 0; j < np; ++j)
    wpi.push_back(b.input("wpi" + std::to_string(j)));
  for (std::size_t i = 0; i < ni; ++i)
    sys_in.push_back(b.input("sys_in" + std::to_string(i)));
  for (std::size_t i = 0; i < no; ++i)
    core_out.push_back(b.input("core_out" + std::to_string(i)));
  for (std::size_t c = 0; c < nc; ++c)
    scan_so.push_back(b.input("scan_so" + std::to_string(c)));
  NetId bist_done = netlist::kNoNet;
  NetId bist_pass = netlist::kNoNet;
  if (spec.has_bist) {
    bist_done = b.input("bist_done");
    bist_pass = b.input("bist_pass");
  }

  const NetId not_sel = b.not_(sel);
  const NetId shf = b.and2(shift, not_sel);   // data-register shift
  const NetId cap = b.and2(capture, not_sel); // data-register capture
  const NetId upd = b.and2(update, not_sel);  // data-register update

  // ---- WIR: 3-bit shift stage + update stage -------------------------------
  const NetId wir_en = b.and2(sel, shift);
  std::vector<NetId> wir_q;
  NetId prev = wsi;
  for (unsigned k = 0; k < kWirBits; ++k) {
    prev = b.dffe(prev, wir_en, "wir_s" + std::to_string(k));
    wir_q.push_back(prev);
  }
  const NetId wir_upd = b.and2(sel, update);
  std::vector<NetId> instr;
  for (unsigned k = 0; k < kWirBits; ++k)
    instr.push_back(
        b.dffe(wir_q[k], wir_upd, "wir_u" + std::to_string(k)));

  // Instruction decode; unknown opcodes (6, 7) degrade to BYPASS.
  const NetId is_preload = b.eq_const(instr, 1);
  const NetId is_extest = b.eq_const(instr, 2);
  const NetId is_intest_s = b.eq_const(instr, 3);
  const NetId is_intest_p = b.eq_const(instr, 4);
  const NetId is_bist = b.eq_const(instr, 5);
  const NetId is_bypass = b.not_(b.or_n(
      {is_preload, is_extest, is_intest_s, is_intest_p, is_bist}));
  const NetId bnd_instr =
      b.or_n({is_preload, is_extest, is_intest_s});  // boundary serial path
  const NetId wby_instr = b.or_n({is_bypass, is_intest_p, is_bist});
  const NetId functional = b.or2(is_bypass, is_preload);
  const NetId is_intest = b.or2(is_intest_s, is_intest_p);

  // ---- WBY -----------------------------------------------------------------
  const NetId wby_q = b.dffe(wsi, b.and2(shf, wby_instr), "wby");

  // ---- boundary register ----------------------------------------------------
  const NetId bnd_shift = b.and2(b.and2(bnd_instr, shf), b.not_(cap));
  const NetId cap_in = b.and2(is_extest, cap);     // in-cells capture
  const NetId cap_out = b.and2(is_intest_s, cap);  // out-cells capture

  std::vector<NetId> s_in, u_in;
  prev = wsi;
  for (std::size_t i = 0; i < ni; ++i) {
    const NetId d = b.mux2(cap_in, prev, sys_in[i]);
    const NetId q = b.dffe(d, b.or2(cap_in, bnd_shift),
                           "bin_s" + std::to_string(i));
    s_in.push_back(q);
    u_in.push_back(b.dffe(q, b.and2(upd, bnd_instr),
                          "bin_u" + std::to_string(i)));
    prev = q;
  }
  const NetId in_tail = prev;  // wsi when ni == 0

  // Head of the out-cell path: last chain's scan-out in serial intest,
  // otherwise the in-cell tail.
  NetId out_head = in_tail;
  if (nc > 0)
    out_head = b.mux2(is_intest_s, in_tail, scan_so.back());

  std::vector<NetId> s_out, u_out;
  prev = out_head;
  for (std::size_t i = 0; i < no; ++i) {
    const NetId d = b.mux2(cap_out, prev, core_out[i]);
    const NetId q = b.dffe(d, b.or2(cap_out, bnd_shift),
                           "bout_s" + std::to_string(i));
    s_out.push_back(q);
    u_out.push_back(b.dffe(q, b.and2(upd, bnd_instr),
                           "bout_u" + std::to_string(i)));
    prev = q;
  }

  // ---- core-side controls ----------------------------------------------------
  b.output("scan_en", b.and2(is_intest, shf));
  b.output("core_clk_en",
           b.or_n({functional, is_bist,
                   b.and2(is_intest, b.or2(shf, cap))}));
  if (spec.has_bist) {
    const NetId start =
        np > 0 ? b.and2(is_bist, wpi[0]) : b.and2(is_bist, b.const0());
    b.output("bist_start", start);
  }

  // ---- functional terminals ---------------------------------------------------
  for (std::size_t i = 0; i < ni; ++i)
    b.output("core_in" + std::to_string(i),
             b.mux2(functional, u_in[i], sys_in[i]));
  for (std::size_t i = 0; i < no; ++i)
    b.output("sys_out" + std::to_string(i),
             b.mux2(functional, u_out[i], core_out[i]));

  // ---- scan-chain sources ------------------------------------------------------
  for (std::size_t c = 0; c < nc; ++c) {
    const NetId serial_src = c == 0 ? in_tail : scan_so[c - 1];
    const NetId par = c < wpi.size() ? wpi[c] : b.const0();
    const NetId v = b.mux2(is_intest_p, b.and2(is_intest_s, serial_src),
                           par);
    // and2 with is_intest_s zeroes the source outside serial intest,
    // matching the behavioral model's "else 0".
    b.output("scan_si" + std::to_string(c), v);
  }

  // ---- parallel outputs ---------------------------------------------------------
  for (std::size_t j = 0; j < np; ++j) {
    NetId base = j < nc ? scan_so[j] : b.const0();
    if (spec.has_bist) {
      const NetId verdict = b.and2(bist_done, bist_pass);
      base = b.mux2(is_bist, base, verdict);
    }
    b.output("wpo" + std::to_string(j), base);
  }

  // ---- serial output ----------------------------------------------------------
  NetId tail = in_tail;
  if (nc > 0) {
    const NetId with_chains = b.and2(is_intest_s, b.const1());
    tail = b.mux2(with_chains, in_tail, scan_so.back());
  }
  if (no > 0) tail = s_out.back();
  const NetId data_wso = b.mux2(bnd_instr, wby_q, tail);
  b.output("wso", b.mux2(sel, data_wso,
                         wir_q.back()));

  return b.take();
}

}  // namespace casbus::p1500
