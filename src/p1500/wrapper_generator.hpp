/// \file wrapper_generator.hpp
/// Gate-level generation of the P1500-style wrapper.
///
/// Together with the CAS generator this completes the paper's §5 claim:
/// "Associated with a SoC central test controller ... and with the P1500
/// wrappers, the proposed CAS-BUS can offer a complete test architecture
/// for the SoC" — the library can emit every hardware piece of that
/// architecture as synthesizable netlists.
///
/// Port contract of the generated wrapper (all single-bit):
///   TAM side   : wsi (in), wso (out), wpi<j> (in), wpo<j> (out)
///   control    : select_wir, shift_wr, capture_wr, update_wr (in)
///   system side: sys_in<i> (in), sys_out<i> (out)
///   core side  : core_in<i> (out), core_out<i> (in),
///                scan_en (out), core_clk_en (out),
///                scan_si<c> (out), scan_so<c> (in),
///                bist_start (out), bist_done (in), bist_pass (in)
///                                  [BIST pins only when has_bist]
///
/// Semantics are bit-exact with the behavioral p1500::Wrapper (verified by
/// the equivalence suite in tests/test_wrapper_generator.cpp).

#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "netlist/netlist.hpp"

namespace casbus::p1500 {

/// Geometry of a wrapper to generate.
struct WrapperSpec {
  std::string name = "wrapper";
  std::size_t n_func_in = 0;    ///< functional inputs (boundary in-cells)
  std::size_t n_func_out = 0;   ///< functional outputs (boundary out-cells)
  std::size_t n_chains = 0;     ///< parallel-port pairs (wpi/wpo)
  bool has_bist = false;        ///< BIST start/done/pass pins
};

/// Generates the wrapper netlist for \p spec.
netlist::Netlist generate_wrapper(const WrapperSpec& spec);

}  // namespace casbus::p1500
