/// \file wrapper.hpp
/// P1500-style core test wrapper (1998/1999 working-group proposal era, as
/// referenced by the paper: [1] IEEE P1500, [2] Marinissen et al. ITC'99).
///
/// The wrapper is the interface between the embedded core and the TAM
/// (paper §1). It provides, per core:
///   - a Wrapper Instruction Register (WIR) with shift/update staging,
///   - a 1-bit Wrapper BYpass register (WBY),
///   - a Wrapper Boundary Register (WBR): one cell per functional terminal
///     with shift + update stages,
///   - a serial port WSI/WSO and a parallel port WPI[]/WPO[] through which
///     the CAS connects bus wires to the core's scan chains (paper Fig. 3
///     shows the CAS sitting on the wrapper's test terminals),
///   - core-side test controls: scan enable, gated core clock, BIST
///     start/done/pass.
///
/// All registers advance on Simulation::step ticks under the Wrapper Serial
/// Control (WSC) wires driven by the SoC test controller.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/module.hpp"
#include "sim/simulation.hpp"
#include "util/bitvector.hpp"

namespace casbus::p1500 {

/// Wrapper instruction opcodes (WIR content after update).
///
/// The proposal-era instruction set the paper relies on: functional
/// transparency, serial bypass, boundary preload, external interconnect
/// test, internal test through serial or parallel ports, and BIST control.
enum class WrapperInstr : std::uint8_t {
  Bypass = 0,          ///< WSI->WBY->WSO; core functional (normal mode)
  Preload = 1,         ///< shift WBR without disturbing function
  Extest = 2,          ///< drive sys outputs / capture sys inputs (WBR)
  IntestSerial = 3,    ///< scan chains concatenated into the serial path
  IntestParallel = 4,  ///< scan chains on WPI/WPO (CAS-facing, Fig. 2a)
  Bist = 5,            ///< run embedded BIST; start/result on WPI0/WPO0
};

/// Number of WIR bits needed for the instruction set.
inline constexpr unsigned kWirBits = 3;

/// Wrapper Serial Control wires, shared across wrappers of one SoC and
/// driven by the central test controller (paper: "All test control signals
/// ... are connected to a central SoC test controller").
struct WscWires {
  sim::Wire* select_wir = nullptr;  ///< 1: serial path is the WIR
  sim::Wire* shift_wr = nullptr;    ///< shift selected register this cycle
  sim::Wire* capture_wr = nullptr;  ///< capture into selected register
  sim::Wire* update_wr = nullptr;   ///< transfer shift stage -> update stage
};

/// Functional terminals: system side and core side of the boundary cells.
struct FunctionalPorts {
  std::vector<sim::Wire*> sys_in;    ///< from SoC interconnect
  std::vector<sim::Wire*> core_in;   ///< wrapper drives toward core
  std::vector<sim::Wire*> core_out;  ///< from core
  std::vector<sim::Wire*> sys_out;   ///< wrapper drives toward SoC
};

/// Core-side test terminals.
struct CoreTestPorts {
  sim::Wire* scan_en = nullptr;           ///< mux-D scan enable
  sim::Wire* core_clk_en = nullptr;       ///< gated core clock enable
  std::vector<sim::Wire*> scan_in;        ///< one per internal chain
  std::vector<sim::Wire*> scan_out;       ///< one per internal chain
  std::vector<std::size_t> chain_lengths; ///< documented lengths, scan order
  sim::Wire* bist_start = nullptr;        ///< pulse to launch BIST
  sim::Wire* bist_done = nullptr;         ///< BIST finished
  sim::Wire* bist_pass = nullptr;         ///< BIST verdict (valid when done)
};

/// TAM-side test terminals.
struct TamPorts {
  sim::Wire* wsi = nullptr;          ///< wrapper serial in
  sim::Wire* wso = nullptr;          ///< wrapper serial out
  std::vector<sim::Wire*> wpi;       ///< parallel in, one per chain (>=1)
  std::vector<sim::Wire*> wpo;       ///< parallel out
};

/// The behavioral wrapper model.
class Wrapper : public sim::Module {
 public:
  /// All wire structures must reference wires owned by \p sim_ctx and must
  /// stay valid for the wrapper's lifetime. scan_in/scan_out sizes define
  /// the chain count; wpi/wpo must have the same size (or size 1 for
  /// BIST-only cores with no chains).
  Wrapper(sim::Simulation& sim_ctx, std::string name, FunctionalPorts func,
          CoreTestPorts core, TamPorts tam, WscWires wsc);

  void evaluate() override;
  void tick() override;
  void reset() override;

  /// Instruction currently in force (after the last update).
  [[nodiscard]] WrapperInstr instruction() const noexcept { return instr_; }

  /// Raw WIR shift-stage content (diagnostic).
  [[nodiscard]] const BitVector& wir_shift_stage() const noexcept {
    return wir_shift_;
  }

  /// Total serial-path length in bits for the given instruction: what a
  /// test program must shift to fully load/unload the selected register.
  [[nodiscard]] std::size_t serial_length(WrapperInstr instr) const;

  /// Number of internal scan chains.
  [[nodiscard]] std::size_t chain_count() const noexcept {
    return core_.scan_in.size();
  }

  /// Boundary-register geometry (cells on functional inputs / outputs).
  [[nodiscard]] std::size_t input_cell_count() const noexcept {
    return in_cells_.size();
  }
  [[nodiscard]] std::size_t output_cell_count() const noexcept {
    return out_cells_.size();
  }

 private:
  struct BoundaryCell {
    bool shift_stage = false;
    bool update_stage = false;
  };

  [[nodiscard]] bool selecting_wir() const;
  [[nodiscard]] Logic4 serial_path_tail() const;

  FunctionalPorts func_;
  CoreTestPorts core_;
  TamPorts tam_;
  WscWires wsc_;

  BitVector wir_shift_{kWirBits};
  WrapperInstr instr_ = WrapperInstr::Bypass;
  bool wby_ = false;
  std::vector<BoundaryCell> in_cells_;
  std::vector<BoundaryCell> out_cells_;
};

}  // namespace casbus::p1500
