/// \file bitvector.hpp
/// A dynamically sized bit vector tuned for the serial-shift patterns that
/// dominate test-access-mechanism traffic (scan chains, instruction
/// registers, signature registers).

#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "util/error.hpp"

// The library requires C++20 (std::popcount, <bit>, defaulted operator==
// in tpg/fault.hpp and soc/tester.hpp). Under C++17 six files fail with a
// cascade of unrelated-looking errors; fail here with one clear message
// instead. MSVC keeps __cplusplus at 199711L unless /Zc:__cplusplus is
// set, so check _MSVC_LANG there.
#if defined(_MSVC_LANG)
#define CASBUS_CPLUSPLUS _MSVC_LANG
#else
#define CASBUS_CPLUSPLUS __cplusplus
#endif
static_assert(CASBUS_CPLUSPLUS >= 202002L,
              "casbus requires C++20 — compile with -std=c++20 "
              "(CMake: target_compile_features(... cxx_std_20))");
#undef CASBUS_CPLUSPLUS

namespace casbus {

/// Dynamically sized vector of bits with LSB-first indexing.
///
/// Index 0 is the bit that enters a serial shift register first; this matches
/// the convention used throughout the CAS-BUS configuration protocol, where
/// instruction words are shifted LSB-first onto test-bus wire 0.
class BitVector {
 public:
  /// Constructs an empty bit vector.
  BitVector() = default;

  /// Constructs \p size bits, all initialized to \p value.
  explicit BitVector(std::size_t size, bool value = false)
      : size_(size), words_((size + 63) / 64, value ? ~0ULL : 0ULL) {
    trim();
  }

  /// Builds a bit vector from a '0'/'1' string; s[0] becomes bit 0.
  /// Characters other than '0' and '1' (e.g. separators '_') are skipped.
  static BitVector from_string(std::string_view s);

  /// Builds a bit vector holding the \p bits low-order bits of \p value,
  /// LSB first.
  static BitVector from_uint(std::uint64_t value, std::size_t bits);

  /// Number of bits held.
  [[nodiscard]] std::size_t size() const noexcept { return size_; }

  /// True when the vector holds no bits.
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }

  /// Reads bit \p i (0-based, LSB first).
  [[nodiscard]] bool get(std::size_t i) const {
    CASBUS_REQUIRE(i < size_, "BitVector::get index out of range");
    return (words_[i / 64] >> (i % 64)) & 1ULL;
  }

  /// Writes bit \p i.
  void set(std::size_t i, bool v) {
    CASBUS_REQUIRE(i < size_, "BitVector::set index out of range");
    const std::uint64_t mask = 1ULL << (i % 64);
    if (v)
      words_[i / 64] |= mask;
    else
      words_[i / 64] &= ~mask;
  }

  /// Appends one bit at the high end.
  void push_back(bool v) {
    if (size_ % 64 == 0) words_.push_back(0);
    ++size_;
    set(size_ - 1, v);
  }

  /// Removes all bits.
  void clear() noexcept {
    size_ = 0;
    words_.clear();
  }

  /// Sets every bit to \p v.
  void fill(bool v) {
    for (auto& w : words_) w = v ? ~0ULL : 0ULL;
    trim();
  }

  /// Serial shift: inserts \p in at bit 0, moves every bit one position up,
  /// and returns the bit shifted out of the high end.
  ///
  /// This is the "shift towards MSB" direction used by scan chains whose
  /// scan-in feeds stage 0.
  bool shift_in(bool in);

  /// Interprets the low-order min(size, 64) bits as an unsigned integer.
  [[nodiscard]] std::uint64_t to_uint() const;

  /// Renders as a '0'/'1' string, bit 0 first.
  [[nodiscard]] std::string to_string() const;

  /// Number of set bits.
  [[nodiscard]] std::size_t popcount() const noexcept;

  /// Lexicographic equality over (size, bits).
  friend bool operator==(const BitVector& a, const BitVector& b) {
    return a.size_ == b.size_ && a.words_ == b.words_;
  }
  friend bool operator!=(const BitVector& a, const BitVector& b) {
    return !(a == b);
  }

  /// Bitwise XOR of equally sized vectors.
  BitVector& operator^=(const BitVector& rhs);

 private:
  /// Clears the unused high bits of the top word so equality is well defined.
  void trim() noexcept {
    if (size_ % 64 != 0 && !words_.empty())
      words_.back() &= (1ULL << (size_ % 64)) - 1;
    if (size_ == 0) words_.clear();
  }

  std::size_t size_ = 0;
  std::vector<std::uint64_t> words_;
};

std::ostream& operator<<(std::ostream& os, const BitVector& bv);

}  // namespace casbus
