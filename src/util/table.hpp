/// \file table.hpp
/// Console table rendering used by the benchmark harnesses to print
/// paper-style result tables (e.g. the Table 1 reproduction).

#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace casbus {

/// Column alignment inside a rendered table.
enum class Align { Left, Right };

/// A simple monospace table: header row, separator, data rows.
///
/// Cells are strings; numeric callers format with format_double / to_string.
/// Rendering pads every column to its widest cell.
class Table {
 public:
  /// Creates a table with the given column headers.
  explicit Table(std::vector<std::string> headers,
                 std::vector<Align> aligns = {});

  /// Appends a data row; must have exactly one cell per column.
  void add_row(std::vector<std::string> cells);

  /// Appends a horizontal separator row.
  void add_separator();

  /// Number of data rows added so far (separators excluded).
  [[nodiscard]] std::size_t rows() const noexcept { return n_data_rows_; }

  /// Renders the table to \p os with a trailing newline.
  void print(std::ostream& os) const;

  /// Renders to a string.
  [[nodiscard]] std::string to_string() const;

 private:
  std::vector<std::string> headers_;
  std::vector<Align> aligns_;
  std::vector<std::vector<std::string>> rows_;  // empty vector = separator
  std::size_t n_data_rows_ = 0;
};

}  // namespace casbus
