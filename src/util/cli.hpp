/// \file cli.hpp
/// Minimal shared flag parsing for the example CLIs.
///
/// Every example used to hand-roll the same argv walk ("--flag value",
/// index bookkeeping, usage-on-error); FlagParser is that walk extracted
/// once. It understands both "--flag value" and "--flag=value", leaves
/// typed conversion errors to the caller's existing catch-and-usage
/// structure (std::stoul and friends throw std::exception), and owns the
/// usage message so unknown flags and missing values exit consistently.
///
/// Usage:
///   cli::FlagParser cli(argc, argv, "[--jobs M] [--seed S]");
///   while (cli.next()) {
///     if (cli.is("--jobs")) jobs = std::stoul(cli.value());
///     else if (cli.is("--seed")) seed = std::stoull(cli.value());
///     else cli.fail();          // unknown flag -> usage + exit(2)
///   }

#pragma once

#include <cstdlib>
#include <iostream>
#include <string>
#include <string_view>

namespace casbus::cli {

class FlagParser {
 public:
  /// \p options_help is the usage line's option summary (printed after the
  /// program name by fail()).
  FlagParser(int argc, char** argv, std::string options_help)
      : argc_(argc), argv_(argv), help_(std::move(options_help)) {}

  /// Advances to the next argument; false when argv is exhausted. The
  /// current flag name (the part before '=' if present) is flag().
  [[nodiscard]] bool next() {
    if (i_ + 1 >= argc_) return false;
    ++i_;
    const std::string arg = argv_[i_];
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      flag_ = arg.substr(0, eq);
      inline_value_ = arg.substr(eq + 1);
      has_inline_value_ = true;
    } else {
      flag_ = arg;
      has_inline_value_ = false;
    }
    return true;
  }

  [[nodiscard]] const std::string& flag() const noexcept { return flag_; }
  [[nodiscard]] bool is(std::string_view name) const noexcept {
    return flag_ == name;
  }

  /// The current flag's value: the "=..." part when the flag was written
  /// "--flag=value", otherwise the next argv token (consumed). A boolean
  /// flag written with an unexpected "=value", or a trailing flag with no
  /// token left, exits via fail().
  [[nodiscard]] std::string value() {
    if (has_inline_value_) return inline_value_;
    if (i_ + 1 >= argc_) fail();
    return argv_[++i_];
  }

  /// True for flags that take no value; exits via fail() if the user
  /// passed one anyway ("--summary=x").
  [[nodiscard]] bool boolean() {
    if (has_inline_value_) fail();
    return true;
  }

  /// Prints the usage line and exits 2 — the CLIs' uniform response to an
  /// unknown flag, a missing value, or malformed input.
  [[noreturn]] void fail() const {
    std::cerr << "usage: " << argv_[0] << ' ' << help_ << '\n';
    std::exit(2);
  }

 private:
  int argc_;
  char** argv_;
  std::string help_;
  int i_ = 0;
  std::string flag_;
  std::string inline_value_;
  bool has_inline_value_ = false;
};

}  // namespace casbus::cli
