/// \file logic.hpp
/// Four-state logic values (0, 1, Z, X) and their operators.
///
/// The CAS-BUS architecture relies on tri-stated switch outputs (paper §3:
/// "the tri-stated switcher outputs and inputs are switched to high
/// impedance" during configuration), so every wire in both the behavioral
/// kernel and the gate-level simulator carries a four-state value:
///   - Zero / One : driven logic levels
///   - Z          : high impedance (no driver)
///   - X          : unknown / conflict
/// Operator semantics follow IEEE 1164 std_logic for the subset we need.

#pragma once

#include <cstdint>
#include <iosfwd>

#include "util/error.hpp"

namespace casbus {

/// A four-state logic value.
enum class Logic4 : std::uint8_t { Zero = 0, One = 1, Z = 2, X = 3 };

/// Converts a bool to a driven logic level.
constexpr Logic4 to_logic(bool b) noexcept {
  return b ? Logic4::One : Logic4::Zero;
}

/// True when \p v is a driven 0 or 1.
constexpr bool is01(Logic4 v) noexcept {
  return v == Logic4::Zero || v == Logic4::One;
}

/// Extracts the boolean value of a driven level; throws on Z/X.
inline bool to_bool(Logic4 v) {
  CASBUS_REQUIRE(is01(v), "Logic4 value is not a driven 0/1");
  return v == Logic4::One;
}

/// Logical AND with X-propagation (0 dominates).
constexpr Logic4 logic_and(Logic4 a, Logic4 b) noexcept {
  if (a == Logic4::Zero || b == Logic4::Zero) return Logic4::Zero;
  if (a == Logic4::One && b == Logic4::One) return Logic4::One;
  return Logic4::X;
}

/// Logical OR with X-propagation (1 dominates).
constexpr Logic4 logic_or(Logic4 a, Logic4 b) noexcept {
  if (a == Logic4::One || b == Logic4::One) return Logic4::One;
  if (a == Logic4::Zero && b == Logic4::Zero) return Logic4::Zero;
  return Logic4::X;
}

/// Logical NOT with X-propagation.
constexpr Logic4 logic_not(Logic4 a) noexcept {
  if (a == Logic4::Zero) return Logic4::One;
  if (a == Logic4::One) return Logic4::Zero;
  return Logic4::X;
}

/// Logical XOR with X-propagation.
constexpr Logic4 logic_xor(Logic4 a, Logic4 b) noexcept {
  if (!is01(a) || !is01(b)) return Logic4::X;
  return to_logic(a != b);
}

/// Two-input multiplexer: returns \p a when sel = 0, \p b when sel = 1,
/// X when the select is not driven (unless both data inputs agree).
constexpr Logic4 logic_mux(Logic4 sel, Logic4 a, Logic4 b) noexcept {
  if (sel == Logic4::Zero) return a;
  if (sel == Logic4::One) return b;
  return (a == b && is01(a)) ? a : Logic4::X;
}

/// Tri-state buffer: passes \p d when \p en = 1, Z when en = 0, X otherwise.
constexpr Logic4 logic_tribuf(Logic4 en, Logic4 d) noexcept {
  if (en == Logic4::Zero) return Logic4::Z;
  if (en == Logic4::One) return is01(d) ? d : Logic4::X;
  return Logic4::X;
}

/// Wired-net resolution of two drivers (IEEE 1164 std_logic resolution
/// restricted to {0,1,Z,X}): Z yields to any driver; conflicting drivers
/// produce X.
constexpr Logic4 resolve(Logic4 a, Logic4 b) noexcept {
  if (a == Logic4::Z) return b;
  if (b == Logic4::Z) return a;
  if (a == b) return a;
  return Logic4::X;
}

/// Character rendering: '0', '1', 'z', 'x'.
constexpr char to_char(Logic4 v) noexcept {
  switch (v) {
    case Logic4::Zero: return '0';
    case Logic4::One: return '1';
    case Logic4::Z: return 'z';
    default: return 'x';
  }
}

/// Parses '0', '1', 'z'/'Z', 'x'/'X'.
inline Logic4 logic_from_char(char c) {
  switch (c) {
    case '0': return Logic4::Zero;
    case '1': return Logic4::One;
    case 'z': case 'Z': return Logic4::Z;
    case 'x': case 'X': return Logic4::X;
    default: CASBUS_REQUIRE(false, "invalid Logic4 character"); return Logic4::X;
  }
}

std::ostream& operator<<(std::ostream& os, Logic4 v);

}  // namespace casbus
