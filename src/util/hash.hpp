/// \file hash.hpp
/// Stable non-cryptographic hashing (FNV-1a, 64-bit).
///
/// std::hash gives no cross-platform / cross-run guarantees, which makes it
/// unusable for anything that feeds a determinism contract — cache keys,
/// affinity routing, artifact digests. StableHash is the library's answer:
/// a fixed byte-order FNV-1a fold whose value depends only on the mixed-in
/// data, never on the platform, the process, or the standard library.
/// JobSpec::cache_key() (src/floor/job.cpp) and the JobQueue's worker
/// affinity sharding are built on it.

#pragma once

#include <cstdint>
#include <string_view>

namespace casbus {

/// Incremental 64-bit FNV-1a hasher with a fixed (little-endian) byte
/// order for integer mixes. Plain value type; freely copyable.
class StableHash {
 public:
  /// Mixes one 64-bit value, least-significant byte first.
  constexpr StableHash& mix(std::uint64_t v) noexcept {
    for (int byte = 0; byte < 8; ++byte) {
      h_ ^= (v >> (8 * byte)) & 0xFFu;
      h_ *= kPrime;
    }
    return *this;
  }

  /// Mixes a byte string (length is mixed first so "ab","c" != "a","bc").
  constexpr StableHash& mix(std::string_view s) noexcept {
    mix(static_cast<std::uint64_t>(s.size()));
    for (const char c : s) {
      h_ ^= static_cast<unsigned char>(c);
      h_ *= kPrime;
    }
    return *this;
  }

  [[nodiscard]] constexpr std::uint64_t value() const noexcept { return h_; }

 private:
  static constexpr std::uint64_t kOffset = 0xCBF29CE484222325ULL;
  static constexpr std::uint64_t kPrime = 0x00000100000001B3ULL;

  std::uint64_t h_ = kOffset;
};

}  // namespace casbus
