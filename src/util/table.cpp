#include "util/table.hpp"

#include <ostream>
#include <sstream>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace casbus {

Table::Table(std::vector<std::string> headers, std::vector<Align> aligns)
    : headers_(std::move(headers)), aligns_(std::move(aligns)) {
  CASBUS_REQUIRE(!headers_.empty(), "Table requires at least one column");
  if (aligns_.empty()) aligns_.assign(headers_.size(), Align::Right);
  CASBUS_REQUIRE(aligns_.size() == headers_.size(),
                 "Table alignment count must match column count");
}

void Table::add_row(std::vector<std::string> cells) {
  CASBUS_REQUIRE(cells.size() == headers_.size(),
                 "Table row has wrong number of cells");
  rows_.push_back(std::move(cells));
  ++n_data_rows_;
}

void Table::add_separator() { rows_.emplace_back(); }

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c)
    widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c)
      if (row[c].size() > widths[c]) widths[c] = row[c].size();
  }

  const auto emit_row = [&](const std::vector<std::string>& row) {
    os << '|';
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << ' ';
      os << (aligns_[c] == Align::Right ? pad_left(row[c], widths[c])
                                        : pad_right(row[c], widths[c]));
      os << " |";
    }
    os << '\n';
  };
  const auto emit_sep = [&] {
    os << '+';
    for (std::size_t c = 0; c < widths.size(); ++c)
      os << std::string(widths[c] + 2, '-') << '+';
    os << '\n';
  };

  emit_sep();
  emit_row(headers_);
  emit_sep();
  for (const auto& row : rows_) {
    if (row.empty())
      emit_sep();
    else
      emit_row(row);
  }
  emit_sep();
}

std::string Table::to_string() const {
  std::ostringstream os;
  print(os);
  return os.str();
}

}  // namespace casbus
