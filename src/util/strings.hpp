/// \file strings.hpp
/// Small string helpers shared by emitters, table printers and reports.

#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace casbus {

/// Joins \p parts with \p sep between consecutive elements.
std::string join(const std::vector<std::string>& parts, std::string_view sep);

/// Splits \p s on \p sep; empty fields are preserved ("a,,b" -> {"a","","b"}),
/// and splitting the empty string yields one empty field.
std::vector<std::string> split(std::string_view s, char sep);

/// Returns \p value formatted with \p decimals digits after the point.
std::string format_double(double value, int decimals = 2);

/// Left-pads \p s with spaces to at least \p width characters.
std::string pad_left(std::string_view s, std::size_t width);

/// Right-pads \p s with spaces to at least \p width characters.
std::string pad_right(std::string_view s, std::size_t width);

/// True when \p s is a valid VHDL / Verilog style identifier
/// ([A-Za-z][A-Za-z0-9_]*).
bool is_identifier(std::string_view s);

/// Lower-cases ASCII letters.
std::string to_lower(std::string_view s);

}  // namespace casbus
