/// \file logic_word.hpp
/// Bit-parallel (64-lane) four-state logic words.
///
/// A Logic64 packs 64 independent Logic4 values into two 64-bit planes,
/// so one machine-word operation advances 64 patterns (or 64 faulty
/// machines) at once. The encoding is the classic "can-be" pair:
///   - p0 bit set: the lane may be 0
///   - p1 bit set: the lane may be 1
/// which yields Zero = (1,0), One = (0,1), X = (1,1), Z = (0,0).
///
/// Every operator below is lane-wise equivalent to the scalar operator in
/// util/logic.hpp (test_packed_sim.cpp checks all input combinations
/// exhaustively); in particular wired-net resolution degenerates to a
/// plain OR of the planes, which is why this encoding was chosen.

#pragma once

#include <cstdint>

#include "util/logic.hpp"

namespace casbus {

/// 64 four-state logic values in two "can-be" bit planes.
struct Logic64 {
  std::uint64_t p0 = 0;  ///< lane may be 0
  std::uint64_t p1 = 0;  ///< lane may be 1

  friend bool operator==(const Logic64&, const Logic64&) = default;
};

/// All 64 lanes set to the same scalar value.
constexpr Logic64 word_broadcast(Logic4 v) noexcept {
  switch (v) {
    case Logic4::Zero: return {~0ULL, 0ULL};
    case Logic4::One: return {0ULL, ~0ULL};
    case Logic4::Z: return {0ULL, 0ULL};
    default: return {~0ULL, ~0ULL};
  }
}

inline constexpr Logic64 kWordAllZero = {~0ULL, 0ULL};
inline constexpr Logic64 kWordAllOne = {0ULL, ~0ULL};
inline constexpr Logic64 kWordAllZ = {0ULL, 0ULL};
inline constexpr Logic64 kWordAllX = {~0ULL, ~0ULL};

/// Mask of lanes that are definitely Zero.
constexpr std::uint64_t word_is0(Logic64 a) noexcept { return a.p0 & ~a.p1; }

/// Mask of lanes that are definitely One.
constexpr std::uint64_t word_is1(Logic64 a) noexcept { return a.p1 & ~a.p0; }

/// Mask of lanes holding a driven 0 or 1.
constexpr std::uint64_t word_is01(Logic64 a) noexcept { return a.p0 ^ a.p1; }

/// Builds a word from disjoint "definitely 0" / "definitely 1" masks;
/// lanes in neither mask become X.
constexpr Logic64 word_from_masks(std::uint64_t zero,
                                  std::uint64_t one) noexcept {
  return {~one, ~zero};
}

/// Reads one lane back to a scalar.
constexpr Logic4 word_lane(Logic64 a, unsigned lane) noexcept {
  const bool b0 = (a.p0 >> lane) & 1ULL;
  const bool b1 = (a.p1 >> lane) & 1ULL;
  if (b0 && b1) return Logic4::X;
  if (b0) return Logic4::Zero;
  if (b1) return Logic4::One;
  return Logic4::Z;
}

/// Overwrites one lane with a scalar value.
constexpr Logic64 word_set_lane(Logic64 a, unsigned lane, Logic4 v) noexcept {
  const std::uint64_t m = 1ULL << lane;
  const Logic64 b = word_broadcast(v);
  return {(a.p0 & ~m) | (b.p0 & m), (a.p1 & ~m) | (b.p1 & m)};
}

/// Lane-blend: lanes in \p mask come from \p b, the rest from \p a.
constexpr Logic64 word_blend(Logic64 a, Logic64 b,
                             std::uint64_t mask) noexcept {
  return {(a.p0 & ~mask) | (b.p0 & mask), (a.p1 & ~mask) | (b.p1 & mask)};
}

/// Lane-wise logic_and: 0 dominates, X propagates (Z behaves as X).
constexpr Logic64 word_and(Logic64 a, Logic64 b) noexcept {
  const std::uint64_t zero = word_is0(a) | word_is0(b);
  const std::uint64_t one = word_is1(a) & word_is1(b);
  return word_from_masks(zero, one);
}

/// Lane-wise logic_or: 1 dominates, X propagates.
constexpr Logic64 word_or(Logic64 a, Logic64 b) noexcept {
  const std::uint64_t one = word_is1(a) | word_is1(b);
  const std::uint64_t zero = word_is0(a) & word_is0(b);
  return word_from_masks(zero, one);
}

/// Lane-wise logic_not (Z in becomes X out, as in the scalar operator).
constexpr Logic64 word_not(Logic64 a) noexcept {
  return word_from_masks(word_is1(a), word_is0(a));
}

/// Lane-wise logic_xor.
constexpr Logic64 word_xor(Logic64 a, Logic64 b) noexcept {
  const std::uint64_t a0 = word_is0(a), a1 = word_is1(a);
  const std::uint64_t b0 = word_is0(b), b1 = word_is1(b);
  return word_from_masks((a0 & b0) | (a1 & b1), (a0 & b1) | (a1 & b0));
}

/// Lane-wise logic_not(logic_xor(a, b)).
constexpr Logic64 word_xnor(Logic64 a, Logic64 b) noexcept {
  const std::uint64_t a0 = word_is0(a), a1 = word_is1(a);
  const std::uint64_t b0 = word_is0(b), b1 = word_is1(b);
  return word_from_masks((a0 & b1) | (a1 & b0), (a0 & b0) | (a1 & b1));
}

/// Lane-wise Buf cell semantics: driven values pass, X/Z become X.
constexpr Logic64 word_buf(Logic64 a) noexcept {
  return word_from_masks(word_is0(a), word_is1(a));
}

/// Lane-wise logic_mux(sel, a, b): a when sel = 0 (verbatim, Z included),
/// b when sel = 1, else a/b agreement on a driven value or X.
constexpr Logic64 word_mux(Logic64 sel, Logic64 a, Logic64 b) noexcept {
  const std::uint64_t s0 = word_is0(sel);
  const std::uint64_t s1 = word_is1(sel);
  const std::uint64_t sx = ~(s0 | s1);
  const std::uint64_t agree1 = word_is1(a) & word_is1(b);
  const std::uint64_t agree0 = word_is0(a) & word_is0(b);
  return {(s0 & a.p0) | (s1 & b.p0) | (sx & ~agree1),
          (s0 & a.p1) | (s1 & b.p1) | (sx & ~agree0)};
}

/// Lane-wise logic_tribuf(en, d): Z when en = 0, driven d when en = 1,
/// X otherwise.
constexpr Logic64 word_tribuf(Logic64 en, Logic64 d) noexcept {
  const std::uint64_t e1 = word_is1(en);
  const std::uint64_t ex = ~(word_is0(en) | e1);
  return {(e1 & ~word_is1(d)) | ex, (e1 & ~word_is0(d)) | ex};
}

/// Lane-wise wired-net resolution — in the "can-be" encoding this is the
/// union of possible values, i.e. a plain OR of the planes.
constexpr Logic64 word_resolve(Logic64 a, Logic64 b) noexcept {
  return {a.p0 | b.p0, a.p1 | b.p1};
}

/// Lane-wise DFF capture rule: driven D is latched, X/Z latch X.
constexpr Logic64 word_dff_capture(Logic64 d) noexcept {
  return word_from_masks(word_is0(d), word_is1(d));
}

/// Mask of lanes where \p a and \p b are both driven and differ — the
/// detection criterion of stuck-at fault simulation (good vs faulty).
constexpr std::uint64_t word_diff01(Logic64 a, Logic64 b) noexcept {
  return (word_is0(a) & word_is1(b)) | (word_is1(a) & word_is0(b));
}

}  // namespace casbus
