#include "util/strings.hpp"

#include <cctype>
#include <cstdio>

namespace casbus {

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i != 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::vector<std::string> split(std::string_view s, char sep) {
  std::vector<std::string> parts;
  std::size_t start = 0;
  while (true) {
    const std::size_t end = s.find(sep, start);
    if (end == std::string_view::npos) {
      parts.emplace_back(s.substr(start));
      return parts;
    }
    parts.emplace_back(s.substr(start, end - start));
    start = end + 1;
  }
}

std::string format_double(double value, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", decimals, value);
  return buf;
}

std::string pad_left(std::string_view s, std::size_t width) {
  std::string out(s);
  if (out.size() < width) out.insert(0, width - out.size(), ' ');
  return out;
}

std::string pad_right(std::string_view s, std::size_t width) {
  std::string out(s);
  if (out.size() < width) out.append(width - out.size(), ' ');
  return out;
}

bool is_identifier(std::string_view s) {
  if (s.empty()) return false;
  if (!std::isalpha(static_cast<unsigned char>(s[0]))) return false;
  for (char c : s.substr(1)) {
    if (!std::isalnum(static_cast<unsigned char>(c)) && c != '_') return false;
  }
  return true;
}

std::string to_lower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

}  // namespace casbus
