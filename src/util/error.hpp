/// \file error.hpp
/// Error handling primitives shared by every casbus module.
///
/// The library reports contract violations and invalid user input with
/// exceptions derived from casbus::Error (C++ Core Guidelines E.2: throw an
/// exception to signal that a function can't perform its assigned task).
/// Internal invariants use CASBUS_ASSERT, which is compiled in all build
/// types: a test-access-mechanism library is exactly the kind of code whose
/// silent corruption is worse than a crash.

#pragma once

#include <sstream>
#include <stdexcept>
#include <string>
#include <string_view>

namespace casbus {

/// Base class of all exceptions thrown by the casbus library.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Thrown when a caller violates a documented precondition.
class PreconditionError : public Error {
 public:
  explicit PreconditionError(const std::string& what) : Error(what) {}
};

/// Thrown when an internal invariant fails (library bug, not user error).
class InvariantError : public Error {
 public:
  explicit InvariantError(const std::string& what) : Error(what) {}
};

/// Thrown when a simulation model reaches an illegal electrical or protocol
/// state (e.g. two tri-state drivers fighting on a test-bus wire).
class SimulationError : public Error {
 public:
  explicit SimulationError(const std::string& what) : Error(what) {}
};

namespace detail {

[[noreturn]] inline void throw_precondition(std::string_view expr,
                                            std::string_view file, int line,
                                            std::string_view msg) {
  std::ostringstream os;
  os << "precondition failed: " << expr << " at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw PreconditionError(os.str());
}

[[noreturn]] inline void throw_invariant(std::string_view expr,
                                         std::string_view file, int line,
                                         std::string_view msg) {
  std::ostringstream os;
  os << "invariant failed: " << expr << " at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw InvariantError(os.str());
}

}  // namespace detail

/// Checks a documented precondition on public API input.
#define CASBUS_REQUIRE(expr, msg)                                          \
  do {                                                                     \
    if (!(expr))                                                           \
      ::casbus::detail::throw_precondition(#expr, __FILE__, __LINE__, msg); \
  } while (false)

/// Checks an internal invariant; failure indicates a library bug.
#define CASBUS_ASSERT(expr, msg)                                         \
  do {                                                                   \
    if (!(expr))                                                         \
      ::casbus::detail::throw_invariant(#expr, __FILE__, __LINE__, msg); \
  } while (false)

}  // namespace casbus
