/// \file rng.hpp
/// Deterministic, seedable pseudo-random number generation.
///
/// Every stochastic element in the library (synthetic core generation,
/// random pattern sources, property tests) draws from this generator so that
/// all experiments are reproducible from a single seed. The implementation is
/// xoshiro256** 1.0 (Blackman & Vigna), which is small, fast and has no
/// external dependencies.
///
/// ## Thread-safety
/// Rng is a plain value type: there is no global or hidden shared state
/// anywhere in this header, so distinct instances may be used from distinct
/// threads freely. A single instance, however, is NOT synchronized — sharing
/// one across threads without external locking is a data race. Concurrent
/// code (the src/floor/ test-floor service) therefore gives every unit of
/// work its own generator, seeded via derive_stream(root_seed, id), instead
/// of sharing one: that keeps results reproducible regardless of how work is
/// interleaved across worker threads.

#pragma once

#include <cstdint>

#include "util/error.hpp"

namespace casbus {

/// xoshiro256** pseudo-random generator with splitmix64 seeding.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the generator; equal seeds yield equal streams.
  explicit Rng(std::uint64_t seed = 0xCA5B05'2000ULL) { reseed(seed); }

  /// Re-seeds in place.
  void reseed(std::uint64_t seed) {
    // splitmix64 expansion of the scalar seed into 256 bits of state.
    std::uint64_t x = seed;
    for (auto& s : state_) {
      x += 0x9E3779B97F4A7C15ULL;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
      s = z ^ (z >> 31);
    }
  }

  /// Next raw 64-bit value.
  std::uint64_t next() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// UniformRandomBitGenerator interface.
  std::uint64_t operator()() noexcept { return next(); }
  static constexpr std::uint64_t min() noexcept { return 0; }
  static constexpr std::uint64_t max() noexcept { return ~0ULL; }

  /// Uniform integer in [0, bound). \p bound must be positive.
  std::uint64_t below(std::uint64_t bound) {
    CASBUS_REQUIRE(bound > 0, "Rng::below requires a positive bound");
    // Lemire's nearly-divisionless rejection method.
    std::uint64_t x = next();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < bound) {
      const std::uint64_t threshold = (0 - bound) % bound;
      while (lo < threshold) {
        x = next();
        m = static_cast<__uint128_t>(x) * bound;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t range(std::int64_t lo, std::int64_t hi) {
    CASBUS_REQUIRE(lo <= hi, "Rng::range requires lo <= hi");
    return lo + static_cast<std::int64_t>(
                    below(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  /// Fair coin, or biased coin with probability \p p_true of returning true.
  bool coin(double p_true = 0.5) {
    return static_cast<double>(next() >> 11) * 0x1.0p-53 < p_true;
  }

  /// Derives the seed of an independent, reproducible sub-stream from a
  /// root seed and a stream id (splitmix64 finalizer over a golden-ratio
  /// stride). Equal (root, id) pairs always yield equal streams; different
  /// ids decorrelate even for adjacent roots. This is the seeding rule
  /// behind the test-floor determinism guarantee: job j of a floor run with
  /// seed S draws from Rng(derive_stream(S, j)) no matter which worker
  /// thread executes it.
  static constexpr std::uint64_t derive_stream(
      std::uint64_t root_seed, std::uint64_t stream_id) noexcept {
    std::uint64_t z = root_seed + 0x9E3779B97F4A7C15ULL * (stream_id + 1);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4] = {};
};

}  // namespace casbus
