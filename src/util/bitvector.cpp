#include "util/bitvector.hpp"

#include <bit>
#include <ostream>

namespace casbus {

BitVector BitVector::from_string(std::string_view s) {
  BitVector bv;
  for (char c : s) {
    if (c == '0')
      bv.push_back(false);
    else if (c == '1')
      bv.push_back(true);
    else if (c == '_' || c == ' ')
      continue;
    else
      CASBUS_REQUIRE(false, "BitVector::from_string: invalid character");
  }
  return bv;
}

BitVector BitVector::from_uint(std::uint64_t value, std::size_t bits) {
  CASBUS_REQUIRE(bits <= 64, "BitVector::from_uint supports at most 64 bits");
  BitVector bv(bits);
  for (std::size_t i = 0; i < bits; ++i) bv.set(i, (value >> i) & 1ULL);
  return bv;
}

bool BitVector::shift_in(bool in) {
  if (size_ == 0) return in;
  const bool out = get(size_ - 1);
  bool carry = in;
  for (auto& w : words_) {
    const bool next_carry = (w >> 63) & 1ULL;
    w = (w << 1) | (carry ? 1ULL : 0ULL);
    carry = next_carry;
  }
  trim();
  return out;
}

std::uint64_t BitVector::to_uint() const {
  if (words_.empty()) return 0;
  if (size_ >= 64) return words_[0];
  return words_[0] & ((1ULL << size_) - 1);
}

std::string BitVector::to_string() const {
  std::string s;
  s.reserve(size_);
  for (std::size_t i = 0; i < size_; ++i) s.push_back(get(i) ? '1' : '0');
  return s;
}

std::size_t BitVector::popcount() const noexcept {
  std::size_t n = 0;
  for (auto w : words_) n += static_cast<std::size_t>(std::popcount(w));
  return n;
}

BitVector& BitVector::operator^=(const BitVector& rhs) {
  CASBUS_REQUIRE(size_ == rhs.size_, "BitVector::operator^= size mismatch");
  for (std::size_t i = 0; i < words_.size(); ++i) words_[i] ^= rhs.words_[i];
  return *this;
}

std::ostream& operator<<(std::ostream& os, const BitVector& bv) {
  return os << bv.to_string();
}

}  // namespace casbus
