#include "util/logic.hpp"

#include <ostream>

namespace casbus {

std::ostream& operator<<(std::ostream& os, Logic4 v) {
  return os << to_char(v);
}

}  // namespace casbus
