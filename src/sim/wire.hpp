/// \file wire.hpp
/// Combinational wires for the cycle-level simulation kernel.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/logic.hpp"

namespace casbus::sim {

class Simulation;

/// A single-bit combinational net.
///
/// Wires are created and owned by a Simulation; models hold non-owning
/// pointers/references. Writing a different value during combinational
/// settlement marks the simulation "unsettled", which triggers another
/// evaluation pass (delta cycle) — this is what lets combinational paths
/// thread through an arbitrary number of chained CASes within one clock
/// cycle, exactly like the physical test bus.
class Wire {
 public:
  /// Current value of the net.
  [[nodiscard]] Logic4 get() const noexcept { return value_; }

  /// Drives the net; records a delta event when the value changes.
  void set(Logic4 v) noexcept;

  /// Convenience for driven levels.
  void set(bool b) noexcept { set(to_logic(b)); }

  /// Wire name as registered with the simulation (for traces/diagnostics).
  [[nodiscard]] const std::string& name() const noexcept { return name_; }

 private:
  friend class Simulation;
  Wire(Simulation* sim, std::string name, Logic4 init)
      : sim_(sim), name_(std::move(name)), value_(init) {}

  Simulation* sim_;
  std::string name_;
  Logic4 value_;
};

/// An ordered group of wires treated as a little-endian vector
/// (index 0 = bit 0). Used for the N-wire test bus and multi-bit ports.
class WireBundle {
 public:
  WireBundle() = default;
  explicit WireBundle(std::vector<Wire*> wires) : wires_(std::move(wires)) {}

  [[nodiscard]] std::size_t size() const noexcept { return wires_.size(); }
  [[nodiscard]] Wire& operator[](std::size_t i) { return *wires_.at(i); }
  [[nodiscard]] const Wire& operator[](std::size_t i) const {
    return *wires_.at(i);
  }

  /// Appends a wire at the high end.
  void push_back(Wire* w) { wires_.push_back(w); }

  /// Reads all bits; throws if any bit is not a driven 0/1.
  [[nodiscard]] std::uint64_t to_uint() const;

  /// Drives the low \p size() bits of \p v onto the bundle.
  void set_uint(std::uint64_t v);

  /// Drives every wire to the same value.
  void set_all(Logic4 v);

  /// Renders current values, bit 0 first.
  [[nodiscard]] std::string to_string() const;

 private:
  std::vector<Wire*> wires_;
};

}  // namespace casbus::sim
