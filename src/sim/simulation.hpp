/// \file simulation.hpp
/// The cycle-level simulation kernel: wire factory, settle loop, clock.
///
/// This is the *behavioural* engine — named wires, module callbacks, a
/// settle-until-fixpoint delta loop — used by the TAM models in src/core/
/// and src/soc/. The gate-level engines live one layer down in
/// src/netlist/: GateSim (scalar), PackedGateSim (64 patterns per pass,
/// with an exact event-driven mode), and FaultSim (64 faulty machines per
/// pass, threadable via run_fault_campaign). docs/ARCHITECTURE.md maps
/// the layers; docs/PERFORMANCE.md records the measured cost model across
/// all four engines.

#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "sim/module.hpp"
#include "sim/wire.hpp"

namespace casbus::sim {

class VcdWriter;

/// Owns the wires of a design, registers its modules, and advances time.
///
/// Usage:
/// ```
/// Simulation sim;
/// Wire& a = sim.wire("a");
/// MyModel m(sim);          // model creates / connects wires
/// sim.add(&m);             // non-owning registration
/// sim.reset();
/// sim.step(100);           // 100 clock cycles
/// ```
class Simulation {
 public:
  Simulation() = default;

  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  /// Creates a wire owned by this simulation. Names need not be unique but
  /// unique names make traces far more useful.
  Wire& wire(std::string name, Logic4 init = Logic4::X);

  /// Creates \p n wires named `<base>[i]` and returns them as a bundle.
  WireBundle bundle(const std::string& base, std::size_t n,
                    Logic4 init = Logic4::X);

  /// Registers a module; the caller retains ownership.
  void add(Module* m);

  /// Resets every module and restarts the cycle counter.
  void reset();

  /// Runs evaluation passes until no wire changes (combinational fixpoint).
  /// Throws SimulationError if the netlist does not settle within
  /// `max_delta_cycles()` passes (combinational loop).
  void settle();

  /// Advances \p n full clock cycles (settle + tick each).
  void step(std::uint64_t n = 1);

  /// Cycles elapsed since the last reset().
  [[nodiscard]] std::uint64_t cycle() const noexcept { return cycle_; }

  /// Total wires created.
  [[nodiscard]] std::size_t wire_count() const noexcept {
    return wires_.size();
  }

  /// Attaches a VCD trace writer (may be null to detach). The writer must
  /// outlive the simulation or be detached before destruction.
  void attach_vcd(VcdWriter* vcd) noexcept { vcd_ = vcd; }

  /// Limit on settle passes before declaring a combinational loop.
  [[nodiscard]] std::size_t max_delta_cycles() const noexcept {
    return max_delta_;
  }
  void set_max_delta_cycles(std::size_t n) noexcept { max_delta_ = n; }

  /// Delta events recorded in the most recent settle() (diagnostic).
  [[nodiscard]] std::size_t last_settle_passes() const noexcept {
    return last_passes_;
  }

 private:
  friend class Wire;
  void note_change() noexcept { ++changes_; }

  std::deque<Wire> wires_;  // deque: stable addresses as wires are added
  std::vector<Module*> modules_;
  std::uint64_t cycle_ = 0;
  std::uint64_t changes_ = 0;
  std::size_t max_delta_ = 1000;
  std::size_t last_passes_ = 0;
  VcdWriter* vcd_ = nullptr;
};

}  // namespace casbus::sim
