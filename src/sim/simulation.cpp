#include "sim/simulation.hpp"

#include <sstream>

#include "sim/vcd.hpp"
#include "util/error.hpp"

namespace casbus::sim {

void Wire::set(Logic4 v) noexcept {
  if (v != value_) {
    value_ = v;
    sim_->note_change();
  }
}

std::uint64_t WireBundle::to_uint() const {
  CASBUS_REQUIRE(wires_.size() <= 64, "WireBundle::to_uint needs <= 64 bits");
  std::uint64_t v = 0;
  for (std::size_t i = 0; i < wires_.size(); ++i)
    if (to_bool(wires_[i]->get())) v |= 1ULL << i;
  return v;
}

void WireBundle::set_uint(std::uint64_t v) {
  CASBUS_REQUIRE(wires_.size() <= 64, "WireBundle::set_uint needs <= 64 bits");
  for (std::size_t i = 0; i < wires_.size(); ++i)
    wires_[i]->set(to_logic((v >> i) & 1ULL));
}

void WireBundle::set_all(Logic4 v) {
  for (Wire* w : wires_) w->set(v);
}

std::string WireBundle::to_string() const {
  std::string s;
  s.reserve(wires_.size());
  for (const Wire* w : wires_) s.push_back(to_char(w->get()));
  return s;
}

Wire& Simulation::wire(std::string name, Logic4 init) {
  wires_.emplace_back(Wire(this, std::move(name), init));
  return wires_.back();
}

WireBundle Simulation::bundle(const std::string& base, std::size_t n,
                              Logic4 init) {
  WireBundle b;
  for (std::size_t i = 0; i < n; ++i) {
    std::ostringstream os;
    os << base << '[' << i << ']';
    b.push_back(&wire(os.str(), init));
  }
  return b;
}

void Simulation::add(Module* m) {
  CASBUS_REQUIRE(m != nullptr, "Simulation::add: null module");
  modules_.push_back(m);
}

void Simulation::reset() {
  cycle_ = 0;
  for (Module* m : modules_) m->reset();
}

void Simulation::settle() {
  last_passes_ = 0;
  for (std::size_t pass = 0; pass < max_delta_; ++pass) {
    changes_ = 0;
    for (Module* m : modules_) m->evaluate();
    ++last_passes_;
    if (changes_ == 0) return;
  }
  std::ostringstream os;
  os << "combinational loop: simulation did not settle within " << max_delta_
     << " delta cycles at cycle " << cycle_;
  throw SimulationError(os.str());
}

void Simulation::step(std::uint64_t n) {
  for (std::uint64_t i = 0; i < n; ++i) {
    settle();
    if (vcd_ != nullptr) vcd_->sample(cycle_);
    for (Module* m : modules_) m->tick();
    ++cycle_;
  }
}

}  // namespace casbus::sim
