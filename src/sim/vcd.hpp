/// \file vcd.hpp
/// Value-change-dump (IEEE 1364 §18) trace writer for debugging and for
/// inspecting CAS-BUS configuration/test sessions in a waveform viewer.

#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "sim/wire.hpp"

namespace casbus::sim {

/// Streams wire transitions to a VCD file.
///
/// Wires are registered before the first sample; the header is emitted
/// lazily on the first `sample()` call. One VCD time unit equals one clock
/// cycle of the simulation.
class VcdWriter {
 public:
  /// Writes to \p os, which must outlive the writer.
  explicit VcdWriter(std::ostream& os) : os_(os) {}

  /// Registers \p wire under its own name (or \p alias when non-empty).
  void watch(const Wire& wire, std::string alias = {});

  /// Registers every wire of \p bundle as `<base>[i]`.
  void watch(const WireBundle& bundle, const std::string& base);

  /// Records the current value of every watched wire at time \p cycle.
  /// Called by Simulation::step via attach_vcd; may also be called manually.
  void sample(std::uint64_t cycle);

  /// Number of watched wires.
  [[nodiscard]] std::size_t watched() const noexcept { return wires_.size(); }

 private:
  void emit_header();
  static std::string id_code(std::size_t index);

  struct Entry {
    const Wire* wire;
    std::string name;
    Logic4 last = Logic4::X;
    bool dumped = false;
  };

  std::ostream& os_;
  std::vector<Entry> wires_;
  bool header_done_ = false;
};

}  // namespace casbus::sim
