#include "sim/vcd.hpp"

#include <sstream>

#include "util/error.hpp"

namespace casbus::sim {

void VcdWriter::watch(const Wire& wire, std::string alias) {
  CASBUS_REQUIRE(!header_done_, "VcdWriter::watch after first sample");
  Entry e;
  e.wire = &wire;
  e.name = alias.empty() ? wire.name() : std::move(alias);
  wires_.push_back(std::move(e));
}

void VcdWriter::watch(const WireBundle& bundle, const std::string& base) {
  for (std::size_t i = 0; i < bundle.size(); ++i) {
    std::ostringstream os;
    os << base << '[' << i << ']';
    watch(bundle[i], os.str());
  }
}

std::string VcdWriter::id_code(std::size_t index) {
  // Printable-ASCII base-94 identifier per the VCD grammar.
  std::string id;
  do {
    id.push_back(static_cast<char>('!' + index % 94));
    index /= 94;
  } while (index != 0);
  return id;
}

void VcdWriter::emit_header() {
  os_ << "$date casbus simulation $end\n"
      << "$version casbus-1.0 $end\n"
      << "$timescale 1ns $end\n"
      << "$scope module casbus $end\n";
  for (std::size_t i = 0; i < wires_.size(); ++i) {
    std::string name = wires_[i].name;
    // VCD identifiers cannot contain spaces; replace them defensively.
    for (char& c : name)
      if (c == ' ') c = '_';
    os_ << "$var wire 1 " << id_code(i) << ' ' << name << " $end\n";
  }
  os_ << "$upscope $end\n$enddefinitions $end\n";
  header_done_ = true;
}

void VcdWriter::sample(std::uint64_t cycle) {
  if (!header_done_) emit_header();
  bool time_emitted = false;
  for (std::size_t i = 0; i < wires_.size(); ++i) {
    Entry& e = wires_[i];
    const Logic4 v = e.wire->get();
    if (e.dumped && v == e.last) continue;
    if (!time_emitted) {
      os_ << '#' << cycle << '\n';
      time_emitted = true;
    }
    os_ << to_char(v) << id_code(i) << '\n';
    e.last = v;
    e.dumped = true;
  }
}

}  // namespace casbus::sim
