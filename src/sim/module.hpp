/// \file module.hpp
/// Base class for behavioral hardware models in the cycle-level kernel.

#pragma once

#include <string>

namespace casbus::sim {

/// A behavioral hardware block with combinational and sequential behavior.
///
/// The kernel runs each clock cycle in two phases:
///   1. settle — `evaluate()` is called on every module repeatedly until no
///      wire changes value (combinational fixpoint / delta cycles);
///   2. tick — `tick()` is called once on every module; this is the rising
///      clock edge at which internal registers capture their inputs.
///
/// `evaluate()` must be idempotent given unchanged inputs and must only
/// derive combinational outputs from wires and internal registered state —
/// never update registers (C++ Core Guidelines I.1: make dependencies
/// explicit; the phase split is the contract).
class Module {
 public:
  explicit Module(std::string name) : name_(std::move(name)) {}
  virtual ~Module() = default;

  Module(const Module&) = delete;
  Module& operator=(const Module&) = delete;

  /// Derives combinational outputs from current wire values and state.
  virtual void evaluate() = 0;

  /// Rising clock edge: captures register next-state.
  virtual void tick() {}

  /// Asynchronous reset to power-up state.
  virtual void reset() {}

  /// Instance name (used in traces and error messages).
  [[nodiscard]] const std::string& name() const noexcept { return name_; }

 private:
  std::string name_;
};

}  // namespace casbus::sim
