// Tests for netlist composition and the flattened whole-TAM netlist.

#include <gtest/gtest.h>

#include "core/casbus_netlist.hpp"
#include "core/config_protocol.hpp"
#include "netlist/builder.hpp"
#include "netlist/compose.hpp"
#include "netlist/emit.hpp"
#include "netlist/gatesim.hpp"
#include "util/rng.hpp"

namespace casbus {
namespace {

using netlist::NetId;
using netlist::NetlistBuilder;

netlist::Netlist make_half_adder() {
  NetlistBuilder b("half_adder");
  const NetId a = b.input("a");
  const NetId c = b.input("b");
  b.output("sum", b.xor2(a, c));
  b.output("carry", b.and2(a, c));
  return b.take();
}

TEST(Compose, InstantiateSingleChild) {
  const netlist::Netlist ha = make_half_adder();
  NetlistBuilder b("top");
  const NetId x = b.input("x");
  const NetId y = b.input("y");
  const auto outs = netlist::instantiate(b, ha, "u0",
                                         {{"a", x}, {"b", y}});
  b.output("s", outs.at("sum"));
  b.output("c", outs.at("carry"));
  netlist::GateSim sim(b.take());

  for (unsigned v = 0; v < 4; ++v) {
    sim.set_input("x", (v & 1u) != 0);
    sim.set_input("y", (v & 2u) != 0);
    sim.eval();
    EXPECT_EQ(sim.output("s"), to_logic(((v & 1u) != 0) ^ ((v & 2u) != 0)));
    EXPECT_EQ(sim.output("c"), to_logic(v == 3));
  }
}

TEST(Compose, TwoInstancesBuildFullAdder) {
  const netlist::Netlist ha = make_half_adder();
  NetlistBuilder b("full_adder");
  const NetId x = b.input("x");
  const NetId y = b.input("y");
  const NetId cin = b.input("cin");
  const auto u0 = netlist::instantiate(b, ha, "u0", {{"a", x}, {"b", y}});
  const auto u1 = netlist::instantiate(
      b, ha, "u1", {{"a", u0.at("sum")}, {"b", cin}});
  b.output("s", u1.at("sum"));
  b.output("cout", b.or2(u0.at("carry"), u1.at("carry")));
  netlist::GateSim sim(b.take());

  for (unsigned v = 0; v < 8; ++v) {
    sim.set_input("x", (v & 1u) != 0);
    sim.set_input("y", (v & 2u) != 0);
    sim.set_input("cin", (v & 4u) != 0);
    sim.eval();
    const unsigned total = (v & 1u) + ((v >> 1) & 1u) + ((v >> 2) & 1u);
    EXPECT_EQ(sim.output("s"), to_logic((total & 1u) != 0)) << v;
    EXPECT_EQ(sim.output("cout"), to_logic(total >= 2)) << v;
  }
}

TEST(Compose, FeedThroughOutputStillDrivesMappedNet) {
  // A child whose output aliases an input net directly (feed-through, as
  // the optimizer produces): mapping that output to a parent net must
  // still drive it (regression for the composed-TAM wpo bug).
  NetlistBuilder cb("feedthrough");
  const NetId a = cb.input("a");
  cb.output("y", a);  // y aliases the input net
  const netlist::Netlist child = cb.take();

  NetlistBuilder b("top");
  const NetId x = b.input("x");
  const NetId sink = b.net("sink");
  (void)netlist::instantiate(b, child, "u0", {{"a", x}, {"y", sink}});
  b.output("out", sink);
  netlist::GateSim sim(b.take());
  sim.set_input("x", true);
  sim.eval();
  EXPECT_EQ(sim.output("out"), Logic4::One);
  sim.set_input("x", false);
  sim.eval();
  EXPECT_EQ(sim.output("out"), Logic4::Zero);
}

TEST(Compose, TwoOutputsSharingOneChildNet) {
  NetlistBuilder cb("dup");
  const NetId a = cb.input("a");
  const NetId n = cb.not_(a);
  cb.output("y1", n);
  cb.output("y2", n);
  const netlist::Netlist child = cb.take();

  NetlistBuilder b("top");
  const NetId x = b.input("x");
  const NetId s1 = b.net("s1");
  const NetId s2 = b.net("s2");
  (void)netlist::instantiate(b, child, "u0",
                             {{"a", x}, {"y1", s1}, {"y2", s2}});
  b.output("o1", s1);
  b.output("o2", s2);
  netlist::GateSim sim(b.take());
  sim.set_input("x", false);
  sim.eval();
  EXPECT_EQ(sim.output("o1"), Logic4::One);
  EXPECT_EQ(sim.output("o2"), Logic4::One);
}

TEST(Compose, UnconnectedInputThrows) {
  const netlist::Netlist ha = make_half_adder();
  NetlistBuilder b("top");
  const NetId x = b.input("x");
  EXPECT_THROW((void)netlist::instantiate(b, ha, "u0", {{"a", x}}),
               PreconditionError);
}

TEST(Compose, SequentialChildKeepsState) {
  // A 2-stage shift register instantiated twice = 4-stage register.
  netlist::Netlist child = [] {
    NetlistBuilder b("sr2");
    const NetId d = b.input("d");
    const auto qs = b.shift_chain(d, 2, "st");
    b.output("q", qs.back());
    return b.take();
  }();

  NetlistBuilder b("sr4");
  const NetId d = b.input("d");
  const auto u0 = netlist::instantiate(b, child, "u0", {{"d", d}});
  const auto u1 =
      netlist::instantiate(b, child, "u1", {{"d", u0.at("q")}});
  b.output("q", u1.at("q"));
  netlist::GateSim sim(b.take());
  sim.reset();

  sim.set_input("d", true);
  sim.eval();
  for (int i = 0; i < 3; ++i) {
    sim.tick();
    EXPECT_EQ(sim.output("q"), Logic4::Zero) << "tick " << i;
    sim.set_input("d", false);
    sim.eval();
  }
  sim.tick();
  EXPECT_EQ(sim.output("q"), Logic4::One);
}

TEST(CasBusNetlist, GeometryAndPorts) {
  tam::CasBusNetlistSpec spec;
  spec.width = 3;
  spec.ports_per_cas = {1, 2, 1};
  const tam::GeneratedCasBus bus = tam::generate_casbus_netlist(spec);

  EXPECT_EQ(bus.width, 3u);
  EXPECT_EQ(bus.isas.size(), 3u);
  EXPECT_EQ(bus.total_ir_bits,
            bus.isas[0].k() + bus.isas[1].k() + bus.isas[2].k());

  // Ports: bus_in/out x3, config, update, per-CAS i/o.
  std::size_t n_i = 0, n_o = 0;
  for (const auto& p : bus.netlist.inputs())
    if (p.name.rfind("cas", 0) == 0 &&
        p.name.find("_i") != std::string::npos)
      ++n_i;
  for (const auto& p : bus.netlist.outputs())
    if (p.name.rfind("cas", 0) == 0 &&
        p.name.find("_o") != std::string::npos)
      ++n_o;
  EXPECT_EQ(n_i, 4u);  // 1 + 2 + 1
  EXPECT_EQ(n_o, 4u);
  EXPECT_EQ(bus.netlist.dff_count(),
            2u * (bus.isas[0].k() + bus.isas[1].k() + bus.isas[2].k()));
}

TEST(CasBusNetlist, FlatTamExecutesChainedConfigurationAndRouting) {
  // Program two CASes through the flattened wire-0 chain and verify the
  // resulting routing — the same scenario as the two-GateSim chain test,
  // but on one composed netlist.
  tam::CasBusNetlistSpec spec;
  spec.width = 3;
  spec.ports_per_cas = {1, 1};
  const tam::GeneratedCasBus bus = tam::generate_casbus_netlist(spec);
  netlist::GateSim sim(bus.netlist);
  sim.reset();

  const auto drive_defaults = [&] {
    for (unsigned w = 0; w < 3; ++w)
      sim.set_input("bus_in" + std::to_string(w), false);
    sim.set_input("cas0_i0", false);
    sim.set_input("cas1_i0", false);
    sim.set_input("config", false);
    sim.set_input("update", false);
  };
  drive_defaults();

  // codes: cas0 routes wire 1, cas1 routes wire 2.
  const BitVector stream = tam::build_config_stream(
      {tam::ConfigEntry{bus.isas[0].k(), 3},
       tam::ConfigEntry{bus.isas[1].k(), 4}});
  sim.set_input("config", true);
  for (std::size_t i = 0; i < stream.size(); ++i) {
    sim.set_input("bus_in0", stream.get(i));
    sim.eval();
    sim.tick();
  }
  sim.set_input("update", true);
  sim.eval();
  sim.tick();
  drive_defaults();

  // Wire 1 high -> cas0_o0 sees it; cas1_o0 does not.
  sim.set_input("bus_in1", true);
  sim.eval();
  EXPECT_EQ(sim.output("cas0_o0"), Logic4::One);
  EXPECT_EQ(sim.output("cas1_o0"), Logic4::Zero);

  // Wire 2 high -> cas1_o0 sees it.
  sim.set_input("bus_in1", false);
  sim.set_input("bus_in2", true);
  sim.eval();
  EXPECT_EQ(sim.output("cas0_o0"), Logic4::Zero);
  EXPECT_EQ(sim.output("cas1_o0"), Logic4::One);

  // Heuristic return path: cas0's i0 drives bus_out1 (claimed wire).
  sim.set_input("cas0_i0", true);
  sim.eval();
  EXPECT_EQ(sim.output("bus_out1"), Logic4::One);
  sim.set_input("cas0_i0", false);
  sim.eval();
  EXPECT_EQ(sim.output("bus_out1"), Logic4::Zero);
}

TEST(CasBusNetlist, EmitsSingleVhdlEntity) {
  tam::CasBusNetlistSpec spec;
  spec.width = 4;
  spec.ports_per_cas = {2, 1};
  spec.run_optimizer = true;
  const tam::GeneratedCasBus bus = tam::generate_casbus_netlist(spec);
  const std::string vhdl = netlist::emit_vhdl(bus.netlist);
  EXPECT_NE(vhdl.find("entity casbus_n4_c2 is"), std::string::npos);
  EXPECT_NE(vhdl.find("bus_in0"), std::string::npos);
  EXPECT_NE(vhdl.find("cas0_o0"), std::string::npos);
  EXPECT_NE(vhdl.find("cas1_i0"), std::string::npos);
}

TEST(CasBusNetlist, ValidatesSpec) {
  tam::CasBusNetlistSpec bad;
  bad.width = 0;
  bad.ports_per_cas = {1};
  EXPECT_THROW((void)tam::generate_casbus_netlist(bad), PreconditionError);
  bad.width = 2;
  bad.ports_per_cas = {};
  EXPECT_THROW((void)tam::generate_casbus_netlist(bad), PreconditionError);
  bad.ports_per_cas = {3};  // P > N
  EXPECT_THROW((void)tam::generate_casbus_netlist(bad), PreconditionError);
}

}  // namespace
}  // namespace casbus
