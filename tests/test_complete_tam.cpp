// The complete generated test architecture (CAS-BUS + P1500 wrappers, one
// flat netlist) must execute a full scan session end-to-end on gate-level
// hardware alone: WIR loads over the serial ring, CAS configuration over
// bus wire 0, pattern streaming through emulated core chains.

#include <gtest/gtest.h>

#include "core/complete_tam.hpp"
#include "core/config_protocol.hpp"
#include "netlist/emit.hpp"
#include "netlist/gatesim.hpp"

namespace casbus::tam {
namespace {

p1500::WrapperSpec scan_wrapper(std::size_t chains) {
  p1500::WrapperSpec w;
  w.n_func_in = 2;
  w.n_func_out = 2;
  w.n_chains = chains;
  return w;
}

TEST(CompleteTam, GeometryAndEmission) {
  CompleteTamSpec spec;
  spec.width = 4;
  spec.wrappers = {scan_wrapper(2), scan_wrapper(1)};
  spec.wrappers[1].has_bist = true;
  const GeneratedCompleteTam tam = generate_complete_tam(spec);

  EXPECT_EQ(tam.width, 4u);
  EXPECT_EQ(tam.isas.size(), 2u);
  EXPECT_EQ(tam.total_ir_bits, tam.isas[0].k() + tam.isas[1].k());
  EXPECT_EQ(tam.wrapper_ring_bits, 6u);

  const std::string vhdl = netlist::emit_vhdl(tam.netlist);
  EXPECT_NE(vhdl.find("entity tam_n4_c2 is"), std::string::npos);
  EXPECT_NE(vhdl.find("c0_scan_si0"), std::string::npos);
  EXPECT_NE(vhdl.find("c1_bist_start"), std::string::npos);
  EXPECT_NE(vhdl.find("wso_pin"), std::string::npos);
}

TEST(CompleteTam, ValidatesSpec) {
  CompleteTamSpec bad;
  bad.width = 0;
  bad.wrappers = {scan_wrapper(1)};
  EXPECT_THROW((void)generate_complete_tam(bad), PreconditionError);
  bad.width = 2;
  bad.wrappers.clear();
  EXPECT_THROW((void)generate_complete_tam(bad), PreconditionError);
  bad.wrappers = {scan_wrapper(3)};  // P > N
  EXPECT_THROW((void)generate_complete_tam(bad), PreconditionError);
}

/// Full gate-level session on a 3-wire TAM with one 1-chain core whose
/// "scan chain" is emulated as a single flip-flop by the testbench
/// (scan_so(t+1) = scan_si(t) while scan_en is asserted).
TEST(CompleteTam, GateLevelScanSessionEndToEnd) {
  CompleteTamSpec spec;
  spec.width = 3;
  spec.wrappers = {scan_wrapper(1)};
  const GeneratedCompleteTam tam = generate_complete_tam(spec);
  netlist::GateSim sim(tam.netlist);
  sim.reset();

  bool chain_ff = false;  // the emulated 1-bit core chain

  const auto defaults = [&] {
    for (unsigned w = 0; w < 3; ++w)
      sim.set_input("bus_in" + std::to_string(w), false);
    sim.set_input("config", false);
    sim.set_input("update", false);
    sim.set_input("select_wir", false);
    sim.set_input("shift_wr", false);
    sim.set_input("capture_wr", false);
    sim.set_input("update_wr", false);
    sim.set_input("wsi_pin", false);
    sim.set_input("c0_sys_in0", false);
    sim.set_input("c0_sys_in1", false);
    sim.set_input("c0_core_out0", false);
    sim.set_input("c0_core_out1", false);
  };
  // One clock cycle: present chain output, evaluate, let the testbench
  // chain flip-flop capture scan_si when scan_en is high, clock the TAM.
  const auto cycle = [&] {
    sim.set_input("c0_scan_so0", chain_ff);
    sim.eval();
    if (sim.output("c0_scan_en") == Logic4::One &&
        sim.output("c0_core_clk_en") == Logic4::One)
      chain_ff = sim.output("c0_scan_si0") == Logic4::One;
    sim.tick();
  };

  defaults();

  // 1. Load IntestParallel (code 4) into the wrapper over the ring.
  sim.set_input("select_wir", true);
  sim.set_input("shift_wr", true);
  const unsigned wir_code = 4;
  for (unsigned b = 3; b-- > 0;) {
    sim.set_input("wsi_pin", ((wir_code >> b) & 1u) != 0);
    cycle();
  }
  sim.set_input("shift_wr", false);
  sim.set_input("update_wr", true);
  cycle();
  defaults();

  // 2. Configure the CAS: route wire 1 to port 0 (code 2 + rank of {1}).
  const std::uint64_t cas_code =
      tam.isas[0].encode(SwitchScheme({1}, 3));
  const BitVector stream = build_config_stream(
      {ConfigEntry{tam.isas[0].k(), cas_code}});
  sim.set_input("config", true);
  for (std::size_t i = 0; i < stream.size(); ++i) {
    sim.set_input("bus_in0", stream.get(i));
    cycle();
  }
  sim.set_input("bus_in0", false);
  sim.set_input("update", true);
  cycle();
  defaults();

  // 3. Shift a 1 into the emulated chain over bus wire 1.
  sim.set_input("shift_wr", true);
  sim.set_input("bus_in1", true);
  cycle();
  EXPECT_TRUE(chain_ff) << "stimulus must reach the chain via the CAS";

  // 4. The chain's output travels back on wire 1 to the bus output.
  sim.set_input("bus_in1", false);
  sim.set_input("c0_scan_so0", chain_ff);
  sim.eval();
  EXPECT_EQ(sim.output("bus_out1"), Logic4::One)
      << "response must return on the claimed wire (heuristic path)";

  // 5. Unclaimed wires bypass combinationally.
  sim.set_input("bus_in2", true);
  sim.eval();
  EXPECT_EQ(sim.output("bus_out2"), Logic4::One);
  sim.set_input("bus_in2", false);

  // 6. Capture: scan_en drops, core clock stays on.
  sim.set_input("shift_wr", false);
  sim.set_input("capture_wr", true);
  sim.eval();
  EXPECT_EQ(sim.output("c0_scan_en"), Logic4::Zero);
  EXPECT_EQ(sim.output("c0_core_clk_en"), Logic4::One);
}

TEST(CompleteTam, BistVerdictPathThroughHardware) {
  CompleteTamSpec spec;
  spec.width = 2;
  p1500::WrapperSpec bw;
  bw.has_bist = true;
  spec.wrappers = {bw};
  const GeneratedCompleteTam tam = generate_complete_tam(spec);
  netlist::GateSim sim(tam.netlist);
  sim.reset();

  for (const auto& port : tam.netlist.inputs())
    sim.set_input(port.name, false);

  // WIR <- Bist (5).
  sim.set_input("select_wir", true);
  sim.set_input("shift_wr", true);
  for (unsigned b = 3; b-- > 0;) {
    sim.set_input("wsi_pin", ((5u >> b) & 1u) != 0);
    sim.eval();
    sim.tick();
  }
  sim.set_input("shift_wr", false);
  sim.set_input("update_wr", true);
  sim.eval();
  sim.tick();
  sim.set_input("select_wir", false);
  sim.set_input("update_wr", false);

  // CAS <- route wire 0 to port 0.
  const std::uint64_t code = tam.isas[0].encode(SwitchScheme({0}, 2));
  const BitVector stream =
      build_config_stream({ConfigEntry{tam.isas[0].k(), code}});
  sim.set_input("config", true);
  for (std::size_t i = 0; i < stream.size(); ++i) {
    sim.set_input("bus_in0", stream.get(i));
    sim.eval();
    sim.tick();
  }
  sim.set_input("update", true);
  sim.eval();
  sim.tick();
  sim.set_input("config", false);
  sim.set_input("update", false);

  // Start level on wire 0 reaches bist_start; verdict returns on wire 0.
  sim.set_input("bus_in0", true);
  sim.eval();
  EXPECT_EQ(sim.output("c0_bist_start"), Logic4::One);
  EXPECT_EQ(sim.output("bus_out0"), Logic4::Zero);  // not done
  sim.set_input("c0_bist_done", true);
  sim.set_input("c0_bist_pass", true);
  sim.eval();
  EXPECT_EQ(sim.output("bus_out0"), Logic4::One);
  sim.set_input("c0_bist_pass", false);
  sim.eval();
  EXPECT_EQ(sim.output("bus_out0"), Logic4::Zero);
}

}  // namespace
}  // namespace casbus::tam
