// HDL emitter tests: structural completeness, identifier hygiene, and
// determinism of the generated VHDL/Verilog.

#include <gtest/gtest.h>

#include <set>
#include <sstream>

#include "core/cas_generator.hpp"
#include "netlist/builder.hpp"
#include "netlist/emit.hpp"
#include "tpg/synthcore.hpp"

namespace casbus::netlist {
namespace {

std::size_t count_occurrences(const std::string& text,
                              const std::string& needle) {
  std::size_t n = 0, pos = 0;
  while ((pos = text.find(needle, pos)) != std::string::npos) {
    ++n;
    pos += needle.size();
  }
  return n;
}

Netlist sample_design() {
  NetlistBuilder b("sample");
  const NetId a = b.input("a");
  const NetId c = b.input("b_in");
  const NetId x = b.xor2(a, c);
  const NetId q = b.dff(x, "state[0]");
  const NetId en = b.input("en");
  b.tribuf(en, q);  // dangling tri output is fine pre-output
  b.output("y", b.mux2(en, x, q));
  b.output("q_out", q);
  return b.take();
}

TEST(EmitVhdl, DeclaresEveryInternalSignal) {
  const Netlist nl = sample_design();
  const std::string vhdl = emit_vhdl(nl);
  // Every non-input net must be declared exactly once as a signal.
  std::set<NetId> inputs;
  for (const auto& p : nl.inputs()) inputs.insert(p.net);
  std::size_t expected = 0;
  for (NetId n = 0; n < nl.net_count(); ++n)
    if (inputs.count(n) == 0) ++expected;
  EXPECT_EQ(count_occurrences(vhdl, "  signal "), expected);
}

TEST(EmitVhdl, SanitizesBracketedNames) {
  const Netlist nl = sample_design();
  const std::string vhdl = emit_vhdl(nl);
  EXPECT_EQ(vhdl.find("state[0]"), std::string::npos)
      << "brackets must not survive into VHDL identifiers";
  EXPECT_NE(vhdl.find("state_0"), std::string::npos);
}

TEST(EmitVhdl, SequentialProcessOnlyWhenNeeded) {
  const Netlist nl = sample_design();
  EXPECT_NE(emit_vhdl(nl).find("rising_edge(clk)"), std::string::npos);

  NetlistBuilder comb("comb_only");
  const NetId a = comb.input("a");
  comb.output("y", comb.not_(a));
  const std::string v = emit_vhdl(comb.take());
  EXPECT_EQ(v.find("clk"), std::string::npos);
  EXPECT_EQ(v.find("process"), std::string::npos);
}

TEST(EmitVhdl, Deterministic) {
  const Netlist nl = sample_design();
  EXPECT_EQ(emit_vhdl(nl), emit_vhdl(nl));
  EXPECT_EQ(emit_verilog(nl), emit_verilog(nl));
}

TEST(EmitVerilog, OneAssignPerCombinationalCell) {
  const Netlist nl = sample_design();
  const std::string v = emit_verilog(nl);
  std::size_t comb_cells = 0;
  for (const Cell& c : nl.cells())
    if (!is_sequential(c.kind)) ++comb_cells;
  // assigns: one per comb cell + one per output port.
  EXPECT_EQ(count_occurrences(v, "  assign "),
            comb_cells + nl.outputs().size());
}

TEST(EmitVerilog, SequentialNetsAreRegs) {
  const Netlist nl = sample_design();
  const std::string v = emit_verilog(nl);
  EXPECT_NE(v.find("reg  state_0"), std::string::npos);
  EXPECT_NE(v.find("always @(posedge clk)"), std::string::npos);
}

TEST(SanitizeIdentifier, Rules) {
  EXPECT_EQ(sanitize_identifier("ir[3]"), "ir_3");
  EXPECT_EQ(sanitize_identifier("bus.cas0.s"), "bus_cas0_s");
  EXPECT_EQ(sanitize_identifier("0weird"), "n0weird");
  EXPECT_EQ(sanitize_identifier(""), "n");
  EXPECT_EQ(sanitize_identifier("ok_name"), "ok_name");
}

TEST(Emit, UniqueNamesUnderCollision) {
  // Two nets whose sanitized names collide must get distinct identifiers.
  NetlistBuilder b("coll");
  const NetId a = b.input("sig[0]");
  const NetId n1 = b.net("sig_0");  // sanitizes to the same string
  b.copy_cell(CellKind::Not, a, kNoNet, kNoNet, n1);
  b.output("y", n1);
  const std::string v = emit_verilog(b.take());
  // Both names must appear and be distinguishable.
  EXPECT_NE(v.find("sig_0"), std::string::npos);
  EXPECT_NE(v.find("sig_0_1"), std::string::npos);
}

TEST(Emit, GeneratedCoreEmitsCleanly) {
  tpg::SyntheticCoreSpec spec;
  spec.seed = 3;
  const tpg::SyntheticCore core = tpg::make_synthetic_core(spec);
  const std::string vhdl = emit_vhdl(core.netlist);
  const std::string verilog = emit_verilog(core.netlist);
  EXPECT_NE(vhdl.find("entity "), std::string::npos);
  EXPECT_NE(verilog.find("module "), std::string::npos);
  // Scan interface survives by name.
  EXPECT_NE(vhdl.find("scan_en"), std::string::npos);
  EXPECT_NE(verilog.find("si0"), std::string::npos);
}

TEST(Emit, CasVerilogHasAllPorts) {
  const tam::GeneratedCas cas = tam::generate_cas(4, 2);
  const std::string v = emit_verilog(cas.netlist);
  for (const std::string port :
       {"e0", "e1", "e2", "e3", "i0", "i1", "config", "update", "s0", "s1",
        "s2", "s3", "o0", "o1"})
    EXPECT_NE(v.find(port), std::string::npos) << port;
}

}  // namespace
}  // namespace casbus::netlist
