// Tests for the baseline TAM models and the architecture comparison the
// paper's §4 argues qualitatively.

#include <gtest/gtest.h>

#include "baseline/baselines.hpp"
#include "util/rng.hpp"

namespace casbus::baseline {
namespace {

using sched::CoreTestSpec;

std::vector<CoreTestSpec> demo_cores() {
  return {
      CoreTestSpec{"cpu", {120, 110, 95, 80}, 220, 0},
      CoreTestSpec{"dsp", {60, 60}, 180, 0},
      CoreTestSpec{"io", {30}, 40, 0},
      CoreTestSpec{"mpeg", {90, 85, 70}, 150, 0},
      CoreTestSpec{"bist1", {}, 0, 4000},
  };
}

TEST(Baselines, DirectMuxIsStrictlySequential) {
  const auto cores = demo_cores();
  const TamEvaluation direct = evaluate_direct_mux(cores, 8);
  // Sequential: total equals the sum of per-core solo times.
  std::uint64_t sum = 0;
  for (const CoreTestSpec& c : cores) {
    if (c.is_scan()) {
      std::vector<sched::ChainItem> items;
      for (std::size_t i = 0; i < c.chains.size(); ++i)
        items.push_back({0, i, c.chains[i]});
      const auto b = sched::assign_lpt_refined(
          items, static_cast<unsigned>(
                     std::min<std::size_t>(c.chains.size(), 8)));
      sum += sched::scan_cycles(b.max_load(), c.patterns);
    }
    sum += c.bist_cycles;
  }
  EXPECT_EQ(direct.test_cycles, sum);
  EXPECT_EQ(direct.sessions, cores.size());
}

TEST(Baselines, TestRailParallelismHelps) {
  const auto cores = demo_cores();
  const TamEvaluation one_rail = evaluate_testrail(cores, 8, 1);
  const TamEvaluation four_rails = evaluate_testrail(cores, 8, 4);
  // More rails = more parallelism across cores (narrower each, but these
  // cores' chain counts are small enough to profit).
  EXPECT_LE(four_rails.test_cycles, one_rail.test_cycles);
  EXPECT_EQ(one_rail.sessions, 1u);
}

TEST(Baselines, TestRailValidation) {
  EXPECT_THROW((void)evaluate_testrail(demo_cores(), 4, 5),
               PreconditionError);
  EXPECT_THROW((void)evaluate_testrail(demo_cores(), 4, 0),
               PreconditionError);
}

TEST(Baselines, CasBusBeatsDirectMuxOnMulticoreSocs) {
  // Reconfigurable wire sharing tests cores concurrently; direct access
  // cannot. This is the §4 architectural claim.
  const auto cores = demo_cores();
  for (const unsigned width : {4u, 8u, 12u}) {
    const TamEvaluation cas = evaluate_casbus(cores, width);
    const TamEvaluation direct = evaluate_direct_mux(cores, width);
    EXPECT_LT(cas.test_cycles, direct.test_cycles) << "width " << width;
  }
}

TEST(Baselines, CasBusBeatsOrMatchesTestRailAcrossWidths) {
  const auto cores = demo_cores();
  for (const unsigned width : {4u, 8u}) {
    const TamEvaluation cas = evaluate_casbus(cores, width);
    const TamEvaluation rail =
        evaluate_testrail(cores, width, std::min(width, 4u));
    // CAS-BUS can always reproduce a TestRail schedule, so with the greedy
    // scheduler it should not lose by more than the reconfiguration
    // overhead it spends.
    const std::uint64_t slack = 512;  // config cycles across sessions
    EXPECT_LE(cas.test_cycles, rail.test_cycles + slack)
        << "width " << width;
  }
}

TEST(Baselines, CasBusAreaSitsAboveTestRail) {
  // Flexibility costs silicon: the reconfigurable switch is bigger than a
  // fixed shell, and both are far below direct-mux pin trees on wide pin
  // counts. (Absolute values are model-based; the ordering is the claim.)
  const auto cores = demo_cores();
  const TamEvaluation cas = evaluate_casbus(cores, 8);
  const TamEvaluation rail = evaluate_testrail(cores, 8, 4);
  EXPECT_GT(cas.area_ge, rail.area_ge);
  EXPECT_GT(cas.area_ge, 0.0);
}

TEST(Baselines, RandomSocsPreserveTheOrdering) {
  // Property sweep: across random SoCs, CAS-BUS <= direct-mux in time.
  Rng rng(31);
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<CoreTestSpec> cores;
    const std::size_t n = 3 + rng.below(6);
    for (std::size_t i = 0; i < n; ++i) {
      CoreTestSpec c;
      c.name = "c" + std::to_string(i);
      if (rng.coin(0.8)) {
        const std::size_t chains = 1 + rng.below(4);
        for (std::size_t k = 0; k < chains; ++k)
          c.chains.push_back(20 + rng.below(150));
        c.patterns = 20 + rng.below(300);
      } else {
        c.bist_cycles = 500 + rng.below(5000);
      }
      cores.push_back(std::move(c));
    }
    const unsigned width = static_cast<unsigned>(2 + rng.below(9));
    const TamEvaluation cas = evaluate_casbus(cores, width);
    const TamEvaluation direct = evaluate_direct_mux(cores, width);
    EXPECT_LE(cas.test_cycles, direct.test_cycles)
        << "trial " << trial << " width " << width;
  }
}

}  // namespace
}  // namespace casbus::baseline
