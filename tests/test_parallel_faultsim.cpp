/// \file test_parallel_faultsim.cpp
/// Determinism suite for the threaded fault-campaign engine:
///   - netlist::run_fault_campaign detection maps byte-identical at
///     1/2/8 threads (detected bytes, first-detect pattern indices),
///   - tpg::FaultSimulator::run(patterns, faults, threads) equal to the
///     single-threaded run() for every thread count,
///   - event-driven workers graded identically to full-sweep workers,
///   - floor deterministic_summary() unchanged with sim_threads > 1 and
///     with event simulation on or off.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "floor/job_factory.hpp"
#include "floor/test_floor.hpp"
#include "netlist/faultsim.hpp"
#include "tpg/fault.hpp"
#include "tpg/patterns.hpp"
#include "tpg/synthcore.hpp"
#include "util/rng.hpp"

namespace {

using namespace casbus;

tpg::SyntheticCore campaign_core(std::uint64_t seed) {
  tpg::SyntheticCoreSpec spec;
  spec.n_inputs = 8;
  spec.n_outputs = 8;
  spec.n_flipflops = 20;
  spec.n_gates = 140;
  spec.n_chains = 2;
  spec.seed = seed;
  return tpg::make_synthetic_core(spec);
}

TEST(FaultCampaign, DetectionMapsByteIdenticalAcrossThreadCounts) {
  const tpg::SyntheticCore core = campaign_core(12001);
  const auto lev = netlist::levelize(core.netlist);
  const auto faults = netlist::enumerate_stuck_at_faults(core.netlist);

  // Random full-scan patterns as flat input/FF assignments.
  Rng rng(5);
  const std::size_t n_patterns = 10;
  std::vector<std::vector<Logic4>> inputs(n_patterns);
  std::vector<std::vector<Logic4>> states(n_patterns);
  for (std::size_t p = 0; p < n_patterns; ++p) {
    for (std::size_t i = 0; i < core.netlist.inputs().size(); ++i)
      inputs[p].push_back(to_logic(rng.coin()));
    for (std::size_t i = 0; i < core.spec.n_flipflops; ++i)
      states[p].push_back(to_logic(rng.coin()));
  }
  const auto loader = [&](netlist::FaultSim& fs, std::size_t p) {
    for (std::size_t i = 0; i < inputs[p].size(); ++i)
      fs.set_input_index(i, inputs[p][i]);
    for (std::size_t i = 0; i < states[p].size(); ++i)
      fs.set_dff_state(i, states[p][i]);
  };

  netlist::FaultCampaignOptions opts;
  opts.threads = 1;
  const netlist::FaultCampaignReport reference = netlist::run_fault_campaign(
      lev, faults, n_patterns, loader, opts);
  EXPECT_GT(reference.detected_count, 0u);
  EXPECT_LT(reference.detected_count, faults.size() + 1);

  for (const std::size_t threads : {2u, 8u}) {
    opts.threads = threads;
    const netlist::FaultCampaignReport r = netlist::run_fault_campaign(
        lev, faults, n_patterns, loader, opts);
    EXPECT_EQ(r.detected, reference.detected) << threads << " threads";
    EXPECT_EQ(r.first_detect_pattern, reference.first_detect_pattern)
        << threads << " threads";
    EXPECT_EQ(r.detected_count, reference.detected_count);
  }
}

TEST(FaultCampaign, EventDrivenWorkersGradeIdentically) {
  const tpg::SyntheticCore core = campaign_core(12002);
  const auto lev = netlist::levelize(core.netlist);
  const auto faults = netlist::enumerate_stuck_at_faults(core.netlist);

  Rng rng(11);
  const std::size_t n_patterns = 8;
  std::vector<std::vector<Logic4>> stimulus(n_patterns);
  for (std::size_t p = 0; p < n_patterns; ++p)
    for (std::size_t i = 0;
         i < core.netlist.inputs().size() + core.spec.n_flipflops; ++i)
      stimulus[p].push_back(to_logic(rng.coin()));
  const auto loader = [&](netlist::FaultSim& fs, std::size_t p) {
    const std::size_t n_in = core.netlist.inputs().size();
    for (std::size_t i = 0; i < n_in; ++i)
      fs.set_input_index(i, stimulus[p][i]);
    for (std::size_t i = 0; i < core.spec.n_flipflops; ++i)
      fs.set_dff_state(i, stimulus[p][n_in + i]);
  };

  netlist::FaultCampaignOptions sweep;
  sweep.threads = 2;
  sweep.mode = netlist::EvalMode::FullSweep;
  netlist::FaultCampaignOptions event;
  event.threads = 2;
  event.mode = netlist::EvalMode::EventDriven;

  const auto a =
      netlist::run_fault_campaign(lev, faults, n_patterns, loader, sweep);
  const auto b =
      netlist::run_fault_campaign(lev, faults, n_patterns, loader, event);
  EXPECT_EQ(a.detected, b.detected);
  EXPECT_EQ(a.first_detect_pattern, b.first_detect_pattern);
  EXPECT_GT(a.detected_count, 0u);
  // The event-driven workers must have skipped work to be worth having.
  EXPECT_LT(b.stats.cell_evals, b.stats.sweep_cell_evals);
}

TEST(FaultSimulator, ThreadedRunMatchesSingleThreadedRun) {
  const tpg::SyntheticCore core = campaign_core(12003);

  tpg::FaultSimulator fsim(core.netlist);
  fsim.pin_input("scan_en", false);
  const auto faults = tpg::enumerate_faults(core.netlist);
  Rng rng(17);
  const auto patterns =
      tpg::PatternSet::random(fsim.pattern_width(), 12, rng);

  const tpg::FaultSimReport reference = fsim.run(patterns, faults);
  EXPECT_GT(reference.detected, 0u);
  for (const std::size_t threads : {1u, 2u, 8u}) {
    const tpg::FaultSimReport r = fsim.run(patterns, faults, threads);
    EXPECT_EQ(r.total_faults, reference.total_faults);
    EXPECT_EQ(r.detected, reference.detected) << threads << " threads";
    EXPECT_EQ(r.detected_mask, reference.detected_mask)
        << threads << " threads";
    EXPECT_EQ(r.per_pattern, reference.per_pattern) << threads << " threads";
  }
}

TEST(FaultSimulator, EventModeRunMatchesSweepRun) {
  const tpg::SyntheticCore core = campaign_core(12004);
  const auto lev = netlist::levelize(core.netlist);
  const auto faults = netlist::enumerate_stuck_at_faults(core.netlist);

  tpg::FaultSimulator sweep(lev, netlist::EvalMode::FullSweep);
  tpg::FaultSimulator event(lev, netlist::EvalMode::EventDriven);
  Rng rng(23);
  const auto patterns =
      tpg::PatternSet::random(sweep.pattern_width(), 10, rng);

  const auto a = sweep.run(patterns, faults);
  const auto b = event.run(patterns, faults);
  EXPECT_EQ(a.detected, b.detected);
  EXPECT_EQ(a.detected_mask, b.detected_mask);
  EXPECT_EQ(a.per_pattern, b.per_pattern);

  // good_response runs through the packed engine in both modes.
  for (std::size_t p = 0; p < patterns.size(); ++p)
    EXPECT_EQ(sweep.good_response(patterns.at(p)),
              event.good_response(patterns.at(p)))
        << "pattern " << p;
}

// --- floor-level determinism with the new engine knobs ----------------------

TEST(Floor, DeterministicSummaryUnchangedBySimThreadsAndEventMode) {
  const floor::JobFactory factory(20260807);
  const auto jobs = factory.make_jobs(8);

  std::string reference;
  for (const bool event_sim : {true, false}) {
    for (const std::size_t sim_threads : {1u, 4u}) {
      floor::FloorConfig config;
      config.workers = 2;
      config.event_sim = event_sim;
      config.sim_threads = sim_threads;
      const floor::FloorReport report = floor::TestFloor(config).run(jobs);
      if (reference.empty())
        reference = report.deterministic_summary();
      EXPECT_EQ(report.deterministic_summary(), reference)
          << "event_sim=" << event_sim << " sim_threads=" << sim_threads;
    }
  }
}

}  // namespace
