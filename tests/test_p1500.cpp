// P1500 wrapper tests: instruction loading, bypass, preload/extest,
// serial and parallel intest, BIST control and core clock gating.

#include <gtest/gtest.h>

#include "p1500/wrapper.hpp"
#include "sim/simulation.hpp"

namespace casbus::p1500 {
namespace {

/// Minimal deterministic core: 3-bit state pipeline with one scan chain.
/// Functional next-state: s0 <= fin0, s1 <= s0 ^ fin1, s2 <= s1.
/// Outputs: fout0 = s2, fout1 = s0 & s1. Scan order: si -> s0 -> s1 -> s2.
class ToyCore : public sim::Module {
 public:
  ToyCore(sim::Simulation& sim, const std::string& name)
      : sim::Module(name),
        fin0(&sim.wire(name + ".fin0", Logic4::Zero)),
        fin1(&sim.wire(name + ".fin1", Logic4::Zero)),
        fout0(&sim.wire(name + ".fout0", Logic4::Zero)),
        fout1(&sim.wire(name + ".fout1", Logic4::Zero)),
        scan_en(&sim.wire(name + ".scan_en", Logic4::Zero)),
        clk_en(&sim.wire(name + ".clk_en", Logic4::One)),
        si(&sim.wire(name + ".si", Logic4::Zero)),
        so(&sim.wire(name + ".so", Logic4::Zero)) {
    sim.add(this);
  }

  void evaluate() override {
    fout0->set(s_[2]);
    fout1->set(s_[0] && s_[1]);
    so->set(s_[2]);
  }

  void tick() override {
    if (clk_en->get() != Logic4::One) return;  // gated clock
    bool n0, n1, n2;
    if (scan_en->get() == Logic4::One) {
      n0 = si->get() == Logic4::One;
      n1 = s_[0];
      n2 = s_[1];
    } else {
      n0 = fin0->get() == Logic4::One;
      n1 = s_[0] != (fin1->get() == Logic4::One);
      n2 = s_[1];
    }
    s_[0] = n0;
    s_[1] = n1;
    s_[2] = n2;
  }

  void reset() override { s_[0] = s_[1] = s_[2] = false; }

  [[nodiscard]] bool state(int i) const { return s_[i]; }
  void set_state(bool a, bool b, bool c) {
    s_[0] = a;
    s_[1] = b;
    s_[2] = c;
  }

  sim::Wire *fin0, *fin1, *fout0, *fout1;
  sim::Wire *scan_en, *clk_en, *si, *so;

 private:
  bool s_[3] = {false, false, false};
};

/// Full wrapped-core fixture with controller-side wires.
class WrapperFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    core = std::make_unique<ToyCore>(sim, "core");

    // System-side functional wires.
    sys_in0 = &sim.wire("sys_in0", Logic4::Zero);
    sys_in1 = &sim.wire("sys_in1", Logic4::Zero);
    sys_out0 = &sim.wire("sys_out0", Logic4::Zero);
    sys_out1 = &sim.wire("sys_out1", Logic4::Zero);

    wsi = &sim.wire("wsi", Logic4::Zero);
    wso = &sim.wire("wso", Logic4::Zero);
    wpi0 = &sim.wire("wpi0", Logic4::Zero);
    wpo0 = &sim.wire("wpo0", Logic4::Zero);

    sel = &sim.wire("sel_wir", Logic4::Zero);
    shift = &sim.wire("shift", Logic4::Zero);
    capture = &sim.wire("capture", Logic4::Zero);
    update = &sim.wire("update", Logic4::Zero);

    FunctionalPorts func;
    func.sys_in = {sys_in0, sys_in1};
    func.core_in = {core->fin0, core->fin1};
    func.core_out = {core->fout0, core->fout1};
    func.sys_out = {sys_out0, sys_out1};

    CoreTestPorts ct;
    ct.scan_en = core->scan_en;
    ct.core_clk_en = core->clk_en;
    ct.scan_in = {core->si};
    ct.scan_out = {core->so};
    ct.chain_lengths = {3};

    TamPorts tam;
    tam.wsi = wsi;
    tam.wso = wso;
    tam.wpi = {wpi0};
    tam.wpo = {wpo0};

    WscWires wsc{sel, shift, capture, update};
    wrapper = std::make_unique<Wrapper>(sim, "wrap", func, ct, tam, wsc);
    sim.add(wrapper.get());
    sim.reset();
    sim.settle();
  }

  /// Loads a wrapper instruction through the WIR.
  void load_instr(WrapperInstr instr) {
    sel->set(true);
    shift->set(true);
    const auto code = static_cast<unsigned>(instr);
    for (unsigned b = kWirBits; b-- > 0;) {
      wsi->set(((code >> b) & 1u) != 0);
      sim.step();
    }
    shift->set(false);
    update->set(true);
    sim.step();
    update->set(false);
    sel->set(false);
    sim.settle();
  }

  /// Shifts `bits` serially (LSB of the vector first), returning what came
  /// out of WSO at each of those cycles.
  std::vector<bool> shift_serial(const std::vector<bool>& bits) {
    std::vector<bool> out;
    shift->set(true);
    for (const bool b : bits) {
      wsi->set(b);
      sim.settle();
      out.push_back(wso->get() == Logic4::One);
      sim.step();
    }
    shift->set(false);
    sim.settle();
    return out;
  }

  sim::Simulation sim;
  std::unique_ptr<ToyCore> core;
  std::unique_ptr<Wrapper> wrapper;
  sim::Wire *sys_in0, *sys_in1, *sys_out0, *sys_out1;
  sim::Wire *wsi, *wso, *wpi0, *wpo0;
  sim::Wire *sel, *shift, *capture, *update;
};

TEST_F(WrapperFixture, ResetsToBypassAndIsTransparent) {
  EXPECT_EQ(wrapper->instruction(), WrapperInstr::Bypass);
  sys_in0->set(true);
  sys_in1->set(true);
  sim.step(3);  // s0<=1, s1<=s0^1, s2<=s1 ...
  sim.settle();
  // After 3 functional cycles: s0=1, s1 = 1^1 = 0... trace:
  // t1: s=(1,0^1=1? no: s1 <= s0(0)^fin1(1)=1, s2<=0) -> (1,1,0)
  // t2: s0<=1, s1<=1^1=0, s2<=1 -> (1,0,1)
  // t3: (1, 1^1=0 ... s1<=s0(1)^1=0, s2<=0) -> (1,0,0)
  EXPECT_EQ(core->state(0), true);
  // Transparency: sys_out mirrors core outputs.
  EXPECT_EQ(sys_out0->get(), to_logic(core->state(2)));
  EXPECT_EQ(sys_out1->get(),
            to_logic(core->state(0) && core->state(1)));
}

TEST_F(WrapperFixture, WirLoadsEveryInstruction) {
  for (const WrapperInstr instr :
       {WrapperInstr::Preload, WrapperInstr::Extest,
        WrapperInstr::IntestSerial, WrapperInstr::IntestParallel,
        WrapperInstr::Bist, WrapperInstr::Bypass}) {
    load_instr(instr);
    EXPECT_EQ(wrapper->instruction(), instr);
  }
}

TEST_F(WrapperFixture, BypassRegisterDelaysByOneCycle) {
  // WSI -> WBY -> WSO: a pulse appears exactly one shift later.
  const auto out = shift_serial({true, false, false, true, false});
  const std::vector<bool> expect = {false, true, false, false, true};
  EXPECT_EQ(out, expect);
}

TEST_F(WrapperFixture, SerialLengthsMatchStructure) {
  EXPECT_EQ(wrapper->serial_length(WrapperInstr::Bypass), 1u);
  EXPECT_EQ(wrapper->serial_length(WrapperInstr::Preload), 4u);   // 2 in + 2 out
  EXPECT_EQ(wrapper->serial_length(WrapperInstr::IntestSerial), 7u);
  EXPECT_EQ(wrapper->chain_count(), 1u);
}

TEST_F(WrapperFixture, PreloadAndIntestDriveCoreInputsFromCells) {
  load_instr(WrapperInstr::Preload);
  // Shift 1,1,0,0: boundary order in0,in1,out0,out1 -> after 4 shifts the
  // first bits land in the far cells. Stream s.t. in-cells end with (1,1):
  // shift order: out1_val, out0_val, in1_val, in0_val? The path is
  // wsi->in0->in1->out0->out1, so after 4 shifts: in0 = last bit shifted.
  shift_serial({true, true, false, false});  // in0=0? trace below
  // Path: each shift moves wsi into in0, in0 into in1, etc. After shifting
  // [1,1,0,0]: in0=0 (last), in1=0? No: in1 holds the bit shifted at t2.
  // t0: in0=1. t1: in0=1,in1=1. t2: in0=0,in1=1,out0=1.
  // t3: in0=0,in1=0,out0=1,out1=1.
  update->set(true);
  sim.step();
  update->set(false);
  load_instr(WrapperInstr::IntestSerial);
  sim.settle();
  // core_in now driven from update latches: in0=0, in1=0; sys_out from
  // out cells: out0=1, out1=1.
  EXPECT_EQ(core->fin0->get(), Logic4::Zero);
  EXPECT_EQ(core->fin1->get(), Logic4::Zero);
  EXPECT_EQ(sys_out0->get(), Logic4::One);
  EXPECT_EQ(sys_out1->get(), Logic4::One);
}

TEST_F(WrapperFixture, IntestSerialLoadsChainCapturesAndUnloads) {
  load_instr(WrapperInstr::IntestSerial);

  // Serial path: wsi -> in0 -> in1 -> chain(s0,s1,s2) -> out0 -> out1 -> wso.
  // Load 7 bits: want core state (s0,s1,s2) = (1,0,1) and in-cells = (1,0)
  // so that the capture computes s0<=in0=1... wait: core inputs come from
  // *update* latches; update them after shifting.
  // Shift stream (first bit ends farthest = out1): plan final layout
  // in0=1,in1=0, s0=1,s1=0,s2=1, out0=x,out1=x. The chain shifts s0->s1->s2,
  // entering at s0 from in1's shift stage; so bits for s2 go in first.
  shift_serial({false, false, true, false, true, false, true});
  // Trace landing: 7 shifts; positions (in0,in1,s0,s1,s2,out0,out1) get the
  // stream reversed: in0 = bit6=1, in1 = bit5=0, s0 = bit4=1, s1 = bit3=0,
  // s2 = bit2=1, out0 = bit1=0, out1 = bit0=0.
  EXPECT_EQ(core->state(0), true);
  EXPECT_EQ(core->state(1), false);
  EXPECT_EQ(core->state(2), true);

  // Apply the in-cell values to the core's functional inputs.
  update->set(true);
  sim.step();
  update->set(false);
  sim.settle();
  EXPECT_EQ(core->fin0->get(), Logic4::One);
  EXPECT_EQ(core->fin1->get(), Logic4::Zero);

  // Capture one functional cycle: s0<=fin0=1, s1<=s0^fin1=1^0=1, s2<=s1=0.
  // Output cells capture core_out pre-capture: fout0=s2=1, fout1=s0&&s1=0.
  capture->set(true);
  sim.step();
  capture->set(false);
  sim.settle();
  EXPECT_EQ(core->state(0), true);
  EXPECT_EQ(core->state(1), true);
  EXPECT_EQ(core->state(2), false);

  // Unload: 7 more shifts; wso sequence reads out1 first.
  const auto out = shift_serial(
      {false, false, false, false, false, false, false});
  // Expected unload order (wso = tail = out1): out1(fout1=0), out0(fout0=1),
  // s2(0), s1(1), s0(1), in1(0), in0(1) — the in-cells still hold the
  // stimulus bits (1,0) loaded before capture.
  const std::vector<bool> expect = {false, true, false, true,
                                    true,  false, true};
  EXPECT_EQ(out, expect);
}

TEST_F(WrapperFixture, IntestParallelUsesWpiWpo) {
  load_instr(WrapperInstr::IntestParallel);
  // Shift 3 bits into the chain through WPI0: scan_en must assert only
  // while shift_wr is high.
  shift->set(true);
  sim.settle();
  EXPECT_EQ(core->scan_en->get(), Logic4::One);
  for (const bool b : {true, true, false}) {
    wpi0->set(b);
    sim.step();
  }
  shift->set(false);
  sim.settle();
  EXPECT_EQ(core->scan_en->get(), Logic4::Zero);
  // Chain contents: s0=0 (last), s1=1, s2=1; WPO0 mirrors so = s2.
  EXPECT_EQ(core->state(2), true);
  EXPECT_EQ(wpo0->get(), Logic4::One);
}

TEST_F(WrapperFixture, ExtestCapturesSystemInputs) {
  load_instr(WrapperInstr::Extest);
  sys_in0->set(true);
  sys_in1->set(false);
  capture->set(true);
  sim.step();
  capture->set(false);
  sim.settle();
  // Unload 4 bits: path in0,in1,out0,out1; wso = out1 first. Captured
  // values sit in the in-cells; out cells kept their previous (0) state.
  const auto out = shift_serial({false, false, false, false});
  const std::vector<bool> expect = {false, false, false, true};
  EXPECT_EQ(out, expect);
}

TEST_F(WrapperFixture, CoreClockGatesOffWhenIdleInIntest) {
  load_instr(WrapperInstr::IntestSerial);
  core->set_state(true, true, false);
  // Neither shift nor capture: the core must hold its state.
  sim.step(5);
  EXPECT_EQ(core->state(0), true);
  EXPECT_EQ(core->state(1), true);
  EXPECT_EQ(core->state(2), false);
  // Extest also freezes the core clock.
  load_instr(WrapperInstr::Extest);
  sim.step(3);
  EXPECT_EQ(core->state(0), true);
}

TEST_F(WrapperFixture, BistInstructionRoutesStartAndResult) {
  // Attach BIST wires to a fresh wrapper? The fixture core has none, so
  // emulate: wire bist signals into a second wrapper around the same core.
  sim::Wire& bstart = sim.wire("bist_start", Logic4::Zero);
  sim::Wire& bdone = sim.wire("bist_done", Logic4::Zero);
  sim::Wire& bpass = sim.wire("bist_pass", Logic4::Zero);
  sim::Wire& wsi2 = sim.wire("wsi2", Logic4::Zero);
  sim::Wire& wso2 = sim.wire("wso2", Logic4::Zero);
  sim::Wire& wpi2 = sim.wire("wpi2", Logic4::Zero);
  sim::Wire& wpo2 = sim.wire("wpo2", Logic4::Zero);

  FunctionalPorts func;  // no functional terminals
  CoreTestPorts ct;
  ct.bist_start = &bstart;
  ct.bist_done = &bdone;
  ct.bist_pass = &bpass;
  TamPorts tam;
  tam.wsi = &wsi2;
  tam.wso = &wso2;
  tam.wpi = {&wpi2};
  tam.wpo = {&wpo2};
  WscWires wsc{sel, shift, capture, update};
  Wrapper bist_wrap(sim, "bwrap", func, ct, tam, wsc);
  sim.add(&bist_wrap);
  bist_wrap.reset();

  // Load Bist instruction into this wrapper (it shares WSC with the
  // fixture wrapper; both shift, which is fine for this check).
  sel->set(true);
  shift->set(true);
  const auto code = static_cast<unsigned>(WrapperInstr::Bist);
  for (unsigned b = kWirBits; b-- > 0;) {
    wsi2.set(((code >> b) & 1u) != 0);
    wsi->set(false);
    sim.step();
  }
  shift->set(false);
  update->set(true);
  sim.step();
  update->set(false);
  sel->set(false);
  sim.settle();
  ASSERT_EQ(bist_wrap.instruction(), WrapperInstr::Bist);

  // WPI0 drives bist_start; result (done && pass) appears on WPO0.
  wpi2.set(true);
  sim.settle();
  EXPECT_EQ(bstart.get(), Logic4::One);
  EXPECT_EQ(wpo2.get(), Logic4::Zero);  // not done yet
  bdone.set(true);
  bpass.set(true);
  sim.settle();
  EXPECT_EQ(wpo2.get(), Logic4::One);
  bpass.set(false);
  sim.settle();
  EXPECT_EQ(wpo2.get(), Logic4::Zero);  // done but failing
}

TEST_F(WrapperFixture, UnknownWirCodeFallsBackToBypass) {
  sel->set(true);
  shift->set(true);
  for (const bool b : {true, true, true}) {  // code 7: undefined
    wsi->set(b);
    sim.step();
  }
  shift->set(false);
  update->set(true);
  sim.step();
  update->set(false);
  sel->set(false);
  sim.settle();
  EXPECT_EQ(wrapper->instruction(), WrapperInstr::Bypass);
}

}  // namespace
}  // namespace casbus::p1500
