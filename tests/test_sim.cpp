// Unit tests for the cycle-level simulation kernel.

#include <gtest/gtest.h>

#include <sstream>

#include "sim/module.hpp"
#include "sim/simulation.hpp"
#include "sim/vcd.hpp"
#include "util/error.hpp"

namespace casbus::sim {
namespace {

/// y = !a, combinational.
class Inverter : public Module {
 public:
  Inverter(Wire& a, Wire& y) : Module("inv"), a_(a), y_(y) {}
  void evaluate() override { y_.set(logic_not(a_.get())); }

 private:
  Wire& a_;
  Wire& y_;
};

/// q <= d each cycle.
class Dff : public Module {
 public:
  Dff(Wire& d, Wire& q) : Module("dff"), d_(d), q_(q) {}
  void evaluate() override { q_.set(state_); }
  void tick() override { state_ = d_.get(); }
  void reset() override { state_ = Logic4::Zero; }

 private:
  Wire& d_;
  Wire& q_;
  Logic4 state_ = Logic4::Zero;
};

TEST(Simulation, WiresHoldValues) {
  Simulation sim;
  Wire& w = sim.wire("w");
  EXPECT_EQ(w.get(), Logic4::X);
  w.set(true);
  EXPECT_EQ(w.get(), Logic4::One);
  EXPECT_EQ(w.name(), "w");
}

TEST(Simulation, BundleUintRoundTrip) {
  Simulation sim;
  WireBundle b = sim.bundle("b", 8);
  b.set_uint(0xA5);
  EXPECT_EQ(b.to_uint(), 0xA5u);
  EXPECT_EQ(b.to_string(), "10100101");
  b.set_all(Logic4::Z);
  EXPECT_EQ(b.to_string(), "zzzzzzzz");
}

TEST(Simulation, SettlePropagatesThroughChain) {
  // A chain of 5 inverters settles within one settle() call, requiring
  // several delta passes.
  Simulation sim;
  std::vector<Wire*> wires;
  for (int i = 0; i <= 5; ++i) wires.push_back(&sim.wire("w"));
  std::vector<std::unique_ptr<Inverter>> invs;
  for (int i = 0; i < 5; ++i) {
    invs.push_back(std::make_unique<Inverter>(*wires[i], *wires[i + 1]));
    sim.add(invs.back().get());
  }
  wires[0]->set(true);
  sim.settle();
  EXPECT_EQ(wires[5]->get(), Logic4::Zero);  // odd number of inversions
  wires[0]->set(false);
  sim.settle();
  EXPECT_EQ(wires[5]->get(), Logic4::One);
}

TEST(Simulation, CombinationalLoopDetected) {
  // Three inverters in a ring: an odd cycle has no stable assignment, so
  // the settle loop must hit its delta limit and report a loop.
  Simulation sim;
  Wire& a = sim.wire("a");
  Wire& b = sim.wire("b");
  Wire& c = sim.wire("c");
  Inverter i1(a, b), i2(b, c), i3(c, a);
  sim.add(&i1);
  sim.add(&i2);
  sim.add(&i3);
  a.set(true);
  EXPECT_THROW(sim.settle(), SimulationError);
}

TEST(Simulation, EvenInverterRingIsAStableLatch) {
  // Two cross-coupled inverters settle (it is a latch, not a loop error).
  Simulation sim;
  Wire& a = sim.wire("a");
  Wire& b = sim.wire("b");
  Inverter i1(a, b), i2(b, a);
  sim.add(&i1);
  sim.add(&i2);
  a.set(true);
  sim.settle();
  EXPECT_EQ(b.get(), Logic4::Zero);
  EXPECT_EQ(a.get(), Logic4::One);
}

TEST(Simulation, StepAdvancesRegisters) {
  Simulation sim;
  Wire& d = sim.wire("d");
  Wire& q = sim.wire("q");
  Dff ff(d, q);
  sim.add(&ff);
  sim.reset();
  d.set(true);
  EXPECT_EQ(sim.cycle(), 0u);
  sim.step();  // capture 1
  EXPECT_EQ(sim.cycle(), 1u);
  sim.settle();
  EXPECT_EQ(q.get(), Logic4::One);
}

TEST(Simulation, TwoStageShiftRegister) {
  Simulation sim;
  Wire& d = sim.wire("d");
  Wire& m = sim.wire("m");
  Wire& q = sim.wire("q");
  Dff ff1(d, m), ff2(m, q);
  sim.add(&ff1);
  sim.add(&ff2);
  sim.reset();
  d.set(true);
  sim.step(2);
  sim.settle();
  EXPECT_EQ(q.get(), Logic4::One);  // took exactly two cycles
}

TEST(Simulation, ResetRestartsCycleCountAndModules) {
  Simulation sim;
  Wire& d = sim.wire("d");
  Wire& q = sim.wire("q");
  Dff ff(d, q);
  sim.add(&ff);
  sim.reset();
  d.set(true);
  sim.step(3);
  sim.reset();
  EXPECT_EQ(sim.cycle(), 0u);
  sim.settle();
  EXPECT_EQ(q.get(), Logic4::Zero);
}

TEST(Simulation, AddNullModuleThrows) {
  Simulation sim;
  EXPECT_THROW(sim.add(nullptr), PreconditionError);
}

TEST(Vcd, EmitsHeaderAndTransitions) {
  Simulation sim;
  Wire& d = sim.wire("data_in");
  Wire& q = sim.wire("q");
  Dff ff(d, q);
  sim.add(&ff);

  std::ostringstream os;
  VcdWriter vcd(os);
  vcd.watch(d);
  vcd.watch(q, "q_alias");
  sim.attach_vcd(&vcd);
  sim.reset();
  d.set(true);
  sim.step(2);

  const std::string out = os.str();
  EXPECT_NE(out.find("$var wire 1 ! data_in $end"), std::string::npos);
  EXPECT_NE(out.find("q_alias"), std::string::npos);
  EXPECT_NE(out.find("$enddefinitions"), std::string::npos);
  EXPECT_NE(out.find("#0"), std::string::npos);
  EXPECT_NE(out.find("#1"), std::string::npos);
  EXPECT_EQ(vcd.watched(), 2u);
}

TEST(Vcd, OnlyChangesAreDumped) {
  Simulation sim;
  Wire& w = sim.wire("w");
  std::ostringstream os;
  VcdWriter vcd(os);
  vcd.watch(w);
  w.set(true);
  vcd.sample(0);
  vcd.sample(1);  // unchanged: no #1 section
  const std::string out = os.str();
  EXPECT_NE(out.find("#0"), std::string::npos);
  EXPECT_EQ(out.find("#1"), std::string::npos);
}

}  // namespace
}  // namespace casbus::sim
