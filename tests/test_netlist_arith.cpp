// Exhaustive tests for the arithmetic macro-cells used by the optimized
// CAS decoder.

#include <gtest/gtest.h>

#include "netlist/arith.hpp"
#include "netlist/builder.hpp"
#include "netlist/gatesim.hpp"

namespace casbus::netlist {
namespace {

/// Builds a GateSim computing sub_const / ge_const for one constant, then
/// sweeps every input value exhaustively.
struct ArithCase {
  unsigned width;
  std::uint64_t constant;
};

class SubGeExhaustive : public ::testing::TestWithParam<ArithCase> {};

TEST_P(SubGeExhaustive, MatchesReferenceArithmetic) {
  const auto [width, c] = GetParam();
  NetlistBuilder b("arith");
  std::vector<NetId> a;
  for (unsigned i = 0; i < width; ++i)
    a.push_back(b.input("a" + std::to_string(i)));
  const auto diff = sub_const(b, a, c);
  for (unsigned i = 0; i < width; ++i)
    b.output("d" + std::to_string(i), diff[i]);
  b.output("ge", ge_const(b, a, c));
  GateSim sim(b.take());

  const std::uint64_t mask = (width >= 64) ? ~0ULL : ((1ULL << width) - 1);
  for (std::uint64_t v = 0; v <= mask; ++v) {
    for (unsigned i = 0; i < width; ++i)
      sim.set_input("a" + std::to_string(i), ((v >> i) & 1ULL) != 0);
    sim.eval();
    std::uint64_t got = 0;
    for (unsigned i = 0; i < width; ++i)
      if (sim.output("d" + std::to_string(i)) == Logic4::One)
        got |= 1ULL << i;
    EXPECT_EQ(got, (v - c) & mask) << "v=" << v << " c=" << c;
    EXPECT_EQ(sim.output("ge"), to_logic(v >= c)) << "v=" << v << " c=" << c;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Widths, SubGeExhaustive,
    ::testing::Values(ArithCase{3, 0}, ArithCase{3, 1}, ArithCase{3, 5},
                      ArithCase{4, 2}, ArithCase{4, 9}, ArithCase{5, 2},
                      ArithCase{5, 17}, ArithCase{6, 31}, ArithCase{7, 64},
                      ArithCase{8, 127}),
    [](const auto& info) {
      return "w" + std::to_string(info.param.width) + "_c" +
             std::to_string(info.param.constant);
    });

TEST(GeConst, ConstantBeyondRangeIsFalse) {
  NetlistBuilder b("ge");
  std::vector<NetId> a = {b.input("a0"), b.input("a1")};
  b.output("ge", ge_const(b, a, 9));  // 9 > max(3)
  GateSim sim(b.take());
  for (unsigned v = 0; v < 4; ++v) {
    sim.set_input("a0", (v & 1u) != 0);
    sim.set_input("a1", (v & 2u) != 0);
    sim.eval();
    EXPECT_EQ(sim.output("ge"), Logic4::Zero);
  }
}

TEST(GeConst, ZeroConstantIsAlwaysTrue) {
  NetlistBuilder b("ge0");
  std::vector<NetId> a = {b.input("a0")};
  b.output("ge", ge_const(b, a, 0));
  GateSim sim(b.take());
  sim.set_input("a0", false);
  sim.eval();
  EXPECT_EQ(sim.output("ge"), Logic4::One);
}

class PopcountExhaustive : public ::testing::TestWithParam<unsigned> {};

TEST_P(PopcountExhaustive, CountsEveryInputCombination) {
  const unsigned n = GetParam();
  NetlistBuilder b("pc");
  std::vector<NetId> xs;
  for (unsigned i = 0; i < n; ++i)
    xs.push_back(b.input("x" + std::to_string(i)));
  const auto cnt = popcount_bus(b, xs);
  for (std::size_t i = 0; i < cnt.size(); ++i)
    b.output("c" + std::to_string(i), cnt[i]);
  GateSim sim(b.take());

  for (std::uint64_t v = 0; v < (1ULL << n); ++v) {
    unsigned expect = 0;
    for (unsigned i = 0; i < n; ++i) {
      const bool bit = ((v >> i) & 1ULL) != 0;
      sim.set_input("x" + std::to_string(i), bit);
      if (bit) ++expect;
    }
    sim.eval();
    unsigned got = 0;
    for (std::size_t i = 0; i < cnt.size(); ++i)
      if (sim.output("c" + std::to_string(i)) == Logic4::One)
        got |= 1u << i;
    EXPECT_EQ(got, expect) << "v=" << v << " n=" << n;
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, PopcountExhaustive,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

TEST(MuxOnehotBus, SelectsFullBuses) {
  NetlistBuilder b("mob");
  std::vector<std::vector<NetId>> data(3);
  for (unsigned d = 0; d < 3; ++d)
    for (unsigned i = 0; i < 2; ++i)
      data[d].push_back(b.input("d" + std::to_string(d) + "_" +
                                std::to_string(i)));
  std::vector<NetId> sel;
  for (unsigned s = 0; s < 3; ++s)
    sel.push_back(b.input("s" + std::to_string(s)));
  const auto out = mux_onehot_bus(b, sel, data);
  for (unsigned i = 0; i < 2; ++i)
    b.output("y" + std::to_string(i), out[i]);
  GateSim sim(b.take());

  // Load distinct values 01, 10, 11 into the three buses.
  const unsigned vals[3] = {1, 2, 3};
  for (unsigned d = 0; d < 3; ++d)
    for (unsigned i = 0; i < 2; ++i)
      sim.set_input("d" + std::to_string(d) + "_" + std::to_string(i),
                    ((vals[d] >> i) & 1u) != 0);
  for (unsigned pick = 0; pick < 3; ++pick) {
    for (unsigned s = 0; s < 3; ++s)
      sim.set_input("s" + std::to_string(s), s == pick);
    sim.eval();
    unsigned got = 0;
    for (unsigned i = 0; i < 2; ++i)
      if (sim.output("y" + std::to_string(i)) == Logic4::One) got |= 1u << i;
    EXPECT_EQ(got, vals[pick]);
  }
  // All-zero select yields zero.
  for (unsigned s = 0; s < 3; ++s)
    sim.set_input("s" + std::to_string(s), false);
  sim.eval();
  EXPECT_EQ(sim.output("y0"), Logic4::Zero);
  EXPECT_EQ(sim.output("y1"), Logic4::Zero);
}

TEST(AddConstWithCarry, CarryOutSpecializationsCover) {
  // width-4 adder against every (value, constant) pair.
  for (std::uint64_t c = 0; c < 16; ++c) {
    NetlistBuilder b("acc");
    std::vector<NetId> a;
    for (unsigned i = 0; i < 4; ++i)
      a.push_back(b.input("a" + std::to_string(i)));
    const SumCarry sc = add_const_with_carry(b, a, c, true);
    for (unsigned i = 0; i < 4; ++i)
      b.output("s" + std::to_string(i), sc.sum[i]);
    b.output("co", sc.carry_out);
    GateSim sim(b.take());
    for (std::uint64_t v = 0; v < 16; ++v) {
      for (unsigned i = 0; i < 4; ++i)
        sim.set_input("a" + std::to_string(i), ((v >> i) & 1ULL) != 0);
      sim.eval();
      const std::uint64_t full = v + c + 1;
      std::uint64_t got = 0;
      for (unsigned i = 0; i < 4; ++i)
        if (sim.output("s" + std::to_string(i)) == Logic4::One)
          got |= 1ULL << i;
      EXPECT_EQ(got, full & 0xF) << "v=" << v << " c=" << c;
      EXPECT_EQ(sim.output("co"), to_logic((full >> 4) != 0))
          << "v=" << v << " c=" << c;
    }
  }
}

}  // namespace
}  // namespace casbus::netlist
