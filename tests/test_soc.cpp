// SoC integration tests: full test sessions running end-to-end through the
// CAS-BUS, driven only through chip-level test pins.

#include <gtest/gtest.h>

#include "soc/soc.hpp"
#include "soc/tester.hpp"
#include "soc/traffic.hpp"
#include "tpg/patterns.hpp"
#include "util/rng.hpp"

namespace casbus::soc {
namespace {

tpg::SyntheticCoreSpec small_core(std::uint64_t seed, std::size_t chains,
                                  std::size_t ffs = 12) {
  tpg::SyntheticCoreSpec spec;
  spec.n_inputs = 4;
  spec.n_outputs = 4;
  spec.n_flipflops = ffs;
  spec.n_gates = 40;
  spec.n_chains = chains;
  spec.seed = seed;
  return spec;
}

/// Random flip-flop patterns for a scan core.
tpg::PatternSet ff_patterns(const tpg::SyntheticCoreSpec& spec,
                            std::size_t count, std::uint64_t seed) {
  Rng rng(seed);
  return tpg::PatternSet::random(spec.n_flipflops, count, rng);
}

/// Looks up the net of a named signal inside a core's netlist.
netlist::NetId net_by_name(const netlist::Netlist& nl,
                           const std::string& name) {
  for (const auto& [net, nm] : nl.net_names())
    if (nm == name) return net;
  ADD_FAILURE() << "net not found: " << name;
  return netlist::kNoNet;
}

TEST(SocBuilderTest, AssemblesFigureOneStyleSoc) {
  SocBuilder b(8);
  b.add_scan_core("core1", small_core(1, 2));
  b.add_scan_core("core2", small_core(2, 4));
  b.add_bist_core("core3", small_core(3, 1), 64);
  b.add_external_core("core4", small_core(4, 3));  // forced to 1 chain
  b.add_memory_core("core5", 16, 8);
  b.add_hierarchical_core(
      "core6", 2, {{"subA", small_core(6, 1)}, {"subB", small_core(7, 2)}});
  auto soc = b.build();

  EXPECT_EQ(soc->core_count(), 6u);
  EXPECT_EQ(soc->bus().size(), 6u);  // one CAS per top-level core
  EXPECT_EQ(soc->bus().width(), 8u);
  // Wrapper ring: 5 top-level wrappers + 2 children.
  EXPECT_EQ(soc->wrapper_ring().size(), 7u);
  // External cores collapse to one chain (Fig. 2c).
  EXPECT_EQ(soc->cores()[3].as_scan().synth().spec.n_chains, 1u);
  // CAS geometries follow the paper's P rules.
  EXPECT_EQ(soc->bus().cas(0).p(), 2u);   // scan: P = chains
  EXPECT_EQ(soc->bus().cas(2).p(), 1u);   // BIST: P = 1
  EXPECT_EQ(soc->bus().cas(4).p(), 1u);   // memory: P = 1
  EXPECT_EQ(soc->bus().cas(5).p(), 2u);   // hierarchical: P = child width
  EXPECT_EQ(soc->cores()[5].hier->bus->size(), 2u);
}

TEST(SocTesterTest, WrapperRingLoadsDistinctInstructions) {
  SocBuilder b(4);
  b.add_scan_core("a", small_core(1, 1));
  b.add_scan_core("bb", small_core(2, 1));
  b.add_bist_core("c", small_core(3, 1), 32);
  auto soc = b.build();
  SocTester tester(*soc);

  tester.load_wrapper_instructions({p1500::WrapperInstr::IntestParallel,
                                    p1500::WrapperInstr::Preload,
                                    p1500::WrapperInstr::Bist});
  EXPECT_EQ(soc->wrapper_ring()[0]->instruction(),
            p1500::WrapperInstr::IntestParallel);
  EXPECT_EQ(soc->wrapper_ring()[1]->instruction(),
            p1500::WrapperInstr::Preload);
  EXPECT_EQ(soc->wrapper_ring()[2]->instruction(),
            p1500::WrapperInstr::Bist);
}

TEST(SocTesterTest, SingleCoreScanSessionPasses) {
  const auto spec = small_core(11, 2);
  SocBuilder b(4);
  b.add_scan_core("dut", spec);
  auto soc = b.build();
  SocTester tester(*soc);

  ScanSession session;
  session.targets.push_back(
      ScanTarget{CoreRef{0, std::nullopt}, {0, 2}, ff_patterns(spec, 5, 9)});
  const ScanSessionResult r = tester.run_scan_session(session);

  ASSERT_EQ(r.targets.size(), 1u);
  EXPECT_EQ(r.targets[0].patterns_applied, 5u);
  EXPECT_GT(r.targets[0].response_bits, 0u);
  EXPECT_EQ(r.targets[0].mismatches, 0u);
  EXPECT_TRUE(r.all_pass());
  EXPECT_GT(r.configure_cycles, 0u);
}

TEST(SocTesterTest, ScanSessionCycleCountMatchesFormula) {
  // Test time = V*(maxlen+1) + maxlen: the standard scan formula the
  // scheduler module predicts analytically.
  const auto spec = small_core(21, 2, 12);  // chains of 6 and 6
  SocBuilder b(4);
  b.add_scan_core("dut", spec);
  auto soc = b.build();
  SocTester tester(*soc);

  ScanSession session;
  const std::size_t v = 4;
  session.targets.push_back(
      ScanTarget{CoreRef{0, std::nullopt}, {1, 3}, ff_patterns(spec, v, 2)});
  const ScanSessionResult r = tester.run_scan_session(session);
  const std::size_t maxlen = 6;
  EXPECT_EQ(r.test_cycles, v * (maxlen + 1) + maxlen);
  EXPECT_TRUE(r.all_pass());
}

TEST(SocTesterTest, ParallelCoresOnDisjointWires) {
  const auto sa = small_core(31, 2, 10);
  const auto sb = small_core(32, 2, 14);
  SocBuilder b(4);
  b.add_scan_core("a", sa);
  b.add_scan_core("bb", sb);
  auto soc = b.build();
  SocTester tester(*soc);

  ScanSession session;
  session.targets.push_back(
      ScanTarget{CoreRef{0, std::nullopt}, {0, 1}, ff_patterns(sa, 4, 5)});
  session.targets.push_back(
      ScanTarget{CoreRef{1, std::nullopt}, {2, 3}, ff_patterns(sb, 6, 6)});
  const ScanSessionResult r = tester.run_scan_session(session);

  EXPECT_TRUE(r.all_pass());
  EXPECT_EQ(r.targets[0].patterns_applied, 4u);
  EXPECT_EQ(r.targets[1].patterns_applied, 6u);
  // Both cores tested concurrently: time driven by the larger (7-bit
  // chains, 6 patterns): 6*(7+1)+7 = 55.
  EXPECT_EQ(r.test_cycles, 6u * 8u + 7u);
}

TEST(SocTesterTest, TwoCoresShareOneWireAsDaisyChain) {
  // Both cores' single chains ride wire 2: they concatenate in bus order
  // (paper §4: the test programmer balances scan chains across wires).
  const auto sa = small_core(41, 1, 8);
  const auto sb = small_core(42, 1, 6);
  SocBuilder b(4);
  b.add_scan_core("a", sa);
  b.add_scan_core("bb", sb);
  auto soc = b.build();
  SocTester tester(*soc);

  ScanSession session;
  session.targets.push_back(
      ScanTarget{CoreRef{0, std::nullopt}, {2}, ff_patterns(sa, 3, 7)});
  session.targets.push_back(
      ScanTarget{CoreRef{1, std::nullopt}, {2}, ff_patterns(sb, 3, 8)});
  const ScanSessionResult r = tester.run_scan_session(session);

  EXPECT_TRUE(r.all_pass());
  // Composite chain = 8 + 6 = 14 bits.
  EXPECT_EQ(r.test_cycles, 3u * (14u + 1u) + 14u);
}

TEST(SocTesterTest, ScanSessionDetectsInjectedStuckAt) {
  const auto spec = small_core(51, 2);
  SocBuilder b(4);
  b.add_scan_core("dut", spec);
  auto soc = b.build();
  SocTester tester(*soc);

  // Stuck-at-1 on flip-flop 0's output: scan responses must diverge from
  // the golden model.
  NetlistCore& core = soc->cores()[0].as_scan();
  const netlist::NetId ffq = net_by_name(core.synth().netlist, "ff_q0");
  core.gatesim().set_force(ffq, Logic4::One);

  ScanSession session;
  session.targets.push_back(ScanTarget{
      CoreRef{0, std::nullopt}, {0, 1}, ff_patterns(spec, 6, 3)});
  const ScanSessionResult r = tester.run_scan_session(session);
  EXPECT_GT(r.targets[0].mismatches, 0u);
  EXPECT_FALSE(r.all_pass());
}

TEST(SocTesterTest, DiagnosisLocatesTheFaultyFlipFlop) {
  // A stuck-at on one flip-flop: every located mismatch must point at a
  // plausible victim, and the stuck FF itself must appear among them
  // (the stuck cell corrupts its own captured value on most patterns).
  const auto spec = small_core(55, 2);
  SocBuilder b(4);
  b.add_scan_core("dut", spec);
  auto soc = b.build();
  SocTester tester(*soc);

  NetlistCore& core = soc->cores()[0].as_scan();
  const netlist::NetId ffq = net_by_name(core.synth().netlist, "ff_q3");
  core.gatesim().set_force(ffq, Logic4::One);

  ScanSession session;
  session.targets.push_back(ScanTarget{
      CoreRef{0, std::nullopt}, {1, 3}, ff_patterns(spec, 8, 4)});
  const ScanSessionResult r = tester.run_scan_session(session);
  ASSERT_GT(r.targets[0].mismatches, 0u);
  ASSERT_FALSE(r.targets[0].diagnoses.empty());

  bool saw_victim = false;
  for (const ScanDiagnosis& d : r.targets[0].diagnoses) {
    // Consistency: the (chain, position) pair maps back to the flip-flop.
    EXPECT_EQ(core.synth().chains[d.chain][d.position], d.flipflop);
    if (d.flipflop == 3) saw_victim = true;
  }
  EXPECT_TRUE(saw_victim) << "diagnosis should implicate ff3";
}

TEST(SocTesterTest, BistCorePassesAndFailsThroughTheBus) {
  SocBuilder b(4);
  b.add_scan_core("filler", small_core(61, 1));
  b.add_bist_core("dut", small_core(62, 1), 48);
  auto soc = b.build();
  SocTester tester(*soc);

  BistCore& bist = soc->cores()[1].as_bist();
  const BistRunResult ok = tester.run_bist(1, 3, 48);
  EXPECT_TRUE(ok.completed);
  EXPECT_TRUE(ok.pass);

  // Any stuck net inside the BISTed logic flips the signature. The spec is
  // deterministic, so regenerating it yields identical net numbering.
  const netlist::NetId ffq = net_by_name(
      tpg::make_synthetic_core(small_core(62, 1)).netlist, "ff_q1");
  bist.inject_fault(ffq, true);
  const BistRunResult bad = tester.run_bist(1, 2, 48);
  EXPECT_TRUE(bad.completed);
  EXPECT_FALSE(bad.pass);
}

TEST(SocTesterTest, MemoryMbistDetectsStuckBit) {
  SocBuilder b(3);
  b.add_memory_core("ram", 16, 8);
  auto soc = b.build();
  SocTester tester(*soc);
  MemoryCore& ram = soc->cores()[0].as_memory();

  const BistRunResult ok = tester.run_bist(0, 1, ram.mbist_cycles());
  EXPECT_TRUE(ok.pass) << "fault-free MARCH C- must pass";

  ram.inject_stuck_bit(5, 3, true);
  const BistRunResult bad = tester.run_bist(0, 1, ram.mbist_cycles());
  EXPECT_FALSE(bad.pass) << "MARCH C- must catch a stuck bit";
}

TEST(SocTesterTest, HierarchicalChildScanThroughParent) {
  const auto child_spec = small_core(71, 1, 8);
  SocBuilder b(6);
  b.add_scan_core("top", small_core(72, 1));
  b.add_hierarchical_core("sub", 2,
                          {{"inner0", child_spec},
                           {"inner1", small_core(73, 1, 6)}});
  auto soc = b.build();
  SocTester tester(*soc);

  ScanSession session;
  // Child bus wires 0,1 carried by top wires 4,5.
  session.routes.push_back(HierarchyRoute{1, {4, 5}});
  // inner0's chain on top wire 4 (child wire 0).
  session.targets.push_back(
      ScanTarget{CoreRef{1, 0}, {4}, ff_patterns(child_spec, 4, 11)});
  const ScanSessionResult r = tester.run_scan_session(session);

  ASSERT_EQ(r.targets.size(), 1u);
  EXPECT_EQ(r.targets[0].patterns_applied, 4u);
  EXPECT_TRUE(r.all_pass()) << "mismatches: " << r.targets[0].mismatches;
}

TEST(SocTesterTest, HierarchicalBothChildrenInParallel) {
  const auto c0 = small_core(81, 1, 8);
  const auto c1 = small_core(82, 1, 6);
  SocBuilder b(6);
  b.add_scan_core("top", small_core(83, 2));
  b.add_hierarchical_core("sub", 2, {{"i0", c0}, {"i1", c1}});
  auto soc = b.build();
  SocTester tester(*soc);

  ScanSession session;
  session.routes.push_back(HierarchyRoute{1, {0, 3}});
  session.targets.push_back(
      ScanTarget{CoreRef{1, 0}, {0}, ff_patterns(c0, 3, 1)});
  session.targets.push_back(
      ScanTarget{CoreRef{1, 1}, {3}, ff_patterns(c1, 3, 2)});
  // The top core tests concurrently on the remaining wires.
  session.targets.push_back(ScanTarget{
      CoreRef{0, std::nullopt}, {1, 2}, ff_patterns(small_core(83, 2), 3, 3)});
  const ScanSessionResult r = tester.run_scan_session(session);
  EXPECT_TRUE(r.all_pass());
  EXPECT_EQ(r.targets[0].patterns_applied, 3u);
  EXPECT_EQ(r.targets[1].patterns_applied, 3u);
  EXPECT_EQ(r.targets[2].patterns_applied, 3u);
}

TEST(SocTesterTest, MaintenanceTestMemoryUnderTestTrafficUndisturbed) {
  // Paper §4: test an embedded memory while other cores keep working.
  SocBuilder b(4);
  b.add_memory_core("ram_test", 16, 8);
  b.add_memory_core("ram_live", 16, 8);
  auto soc = b.build();
  MemoryTraffic traffic(*soc, 1, 77);
  SocTester tester(*soc);

  traffic.set_enabled(true);
  tester.step(50);  // warm-up functional traffic
  EXPECT_GT(traffic.reads_checked(), 0u);
  EXPECT_EQ(traffic.mismatches(), 0u);

  // Maintenance session on ram_test; ram_live keeps serving traffic the
  // whole time (its wrapper stays in Bypass = functional).
  const std::uint64_t checked_before = traffic.reads_checked();
  const BistRunResult r = tester.run_bist(
      0, 2, soc->cores()[0].as_memory().mbist_cycles());
  EXPECT_TRUE(r.pass);
  EXPECT_GT(traffic.reads_checked(), checked_before)
      << "traffic must keep flowing during the maintenance test";
  EXPECT_EQ(traffic.mismatches(), 0u)
      << "maintenance test must not disturb functional traffic";
}

TEST(SocTesterTest, SessionValidatesChainAssignment) {
  const auto spec = small_core(91, 2);
  SocBuilder b(4);
  b.add_scan_core("dut", spec);
  auto soc = b.build();
  SocTester tester(*soc);

  ScanSession bad;
  bad.targets.push_back(ScanTarget{
      CoreRef{0, std::nullopt}, {0}, ff_patterns(spec, 1, 1)});  // 1 of 2
  EXPECT_THROW((void)tester.run_scan_session(bad), PreconditionError);

  ScanSession dup;
  dup.targets.push_back(ScanTarget{
      CoreRef{0, std::nullopt}, {1, 1}, ff_patterns(spec, 1, 1)});
  EXPECT_THROW((void)tester.run_scan_session(dup), PreconditionError);
}

TEST(SocTesterTest, ChildTargetWithoutRouteThrows) {
  SocBuilder b(4);
  b.add_hierarchical_core("sub", 1, {{"i0", small_core(95, 1)}});
  auto soc = b.build();
  SocTester tester(*soc);
  ScanSession s;
  s.targets.push_back(
      ScanTarget{CoreRef{0, 0}, {0}, ff_patterns(small_core(95, 1), 1, 1)});
  EXPECT_THROW((void)tester.run_scan_session(s), PreconditionError);
}

TEST(SocTesterTest, ReconfigurationAcrossSessions) {
  // Same SoC, two sessions with different wire assignments — the §4
  // dynamic-reconfiguration claim, cycle-accurate.
  const auto sa = small_core(101, 2, 12);
  const auto sb = small_core(102, 1, 16);
  SocBuilder b(3);
  b.add_scan_core("a", sa);
  b.add_scan_core("bb", sb);
  auto soc = b.build();
  SocTester tester(*soc);

  // Session 1: core a alone, wide (2 wires).
  ScanSession s1;
  s1.targets.push_back(
      ScanTarget{CoreRef{0, std::nullopt}, {0, 1}, ff_patterns(sa, 3, 4)});
  const auto r1 = tester.run_scan_session(s1);
  EXPECT_TRUE(r1.all_pass());

  // Session 2 (after reconfiguration): core b on wire 0.
  ScanSession s2;
  s2.targets.push_back(
      ScanTarget{CoreRef{1, std::nullopt}, {0}, ff_patterns(sb, 3, 5)});
  const auto r2 = tester.run_scan_session(s2);
  EXPECT_TRUE(r2.all_pass());
}

}  // namespace
}  // namespace casbus::soc
