// The observability layer: the sharded metrics registry (cross-thread
// aggregation, histogram percentiles, gauges), the bounded trace recorder
// (drop accounting, Chrome-trace JSON shape), the floor's metric binding,
// and the layer's load-bearing guarantee — telemetry on vs off cannot
// change a deterministic floor result.

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstddef>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "floor/job_factory.hpp"
#include "floor/session.hpp"
#include "floor/telemetry.hpp"
#include "obs/metrics.hpp"
#include "obs/prometheus.hpp"
#include "obs/trace.hpp"

namespace casbus::obs {
namespace {

// --- Registry: counters across threads --------------------------------------

TEST(Registry, CountersAggregateAcrossThreads) {
  Registry registry;
  const MetricId jobs = registry.counter("test.jobs");
  const MetricId bytes = registry.counter("test.bytes");

  constexpr std::size_t kThreads = 4;
  constexpr std::uint64_t kPerThread = 10000;
  std::vector<std::thread> pool;
  for (std::size_t t = 0; t < kThreads; ++t) {
    pool.emplace_back([&] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        registry.add(jobs);
        registry.add(bytes, 3);
      }
    });
  }
  for (std::thread& t : pool) t.join();

  const Snapshot snap = registry.snapshot();
  EXPECT_EQ(snap.counter("test.jobs"), kThreads * kPerThread);
  EXPECT_EQ(snap.counter("test.bytes"), kThreads * kPerThread * 3);
  // One shard per touching thread (this thread has not touched it).
  EXPECT_EQ(registry.shard_count(), kThreads);
}

TEST(Registry, RegisteringTheSameNameReturnsTheSameId) {
  Registry registry;
  const MetricId a = registry.counter("dup");
  const MetricId b = registry.counter("dup");
  EXPECT_EQ(a, b);
  registry.add(a);
  registry.add(b);
  EXPECT_EQ(registry.snapshot().counter("dup"), 2u);
}

TEST(Registry, AbsentCounterReadsZero) {
  Registry registry;
  (void)registry.counter("present");
  EXPECT_EQ(registry.snapshot().counter("absent"), 0u);
}

TEST(Registry, GaugesAreSampledAtSnapshot) {
  Registry registry;
  std::atomic<int> level{7};
  registry.gauge("test.level",
                 [&] { return static_cast<double>(level.load()); });
  EXPECT_DOUBLE_EQ(registry.snapshot().gauge("test.level"), 7.0);
  level = 42;
  EXPECT_DOUBLE_EQ(registry.snapshot().gauge("test.level"), 42.0);
}

// --- Registry: histograms ---------------------------------------------------

TEST(Registry, HistogramPercentilesInterpolateWithinBuckets) {
  Registry registry;
  const MetricId h = registry.histogram("lat", {10.0, 20.0, 50.0});
  // 100 observations spread uniformly through (0, 10]: every quantile
  // lands in the first bucket and interpolates linearly across it.
  for (int i = 1; i <= 100; ++i) registry.observe(h, i * 0.1);
  const Snapshot snap = registry.snapshot();
  const HistogramSnapshot* hist = snap.histogram("lat");
  ASSERT_NE(hist, nullptr);
  EXPECT_EQ(hist->count, 100u);
  EXPECT_NEAR(hist->sum, 505.0, 1e-9);
  EXPECT_NEAR(hist->p50(), 5.0, 0.2);
  EXPECT_NEAR(hist->p90(), 9.0, 0.2);
  EXPECT_NEAR(hist->p99(), 9.9, 0.2);
}

TEST(Registry, HistogramSpreadAcrossBucketsAndThreads) {
  Registry registry;
  const MetricId h = registry.histogram("lat", {1.0, 10.0, 100.0});
  std::thread low([&] {
    for (int i = 0; i < 90; ++i) registry.observe(h, 0.5);
  });
  std::thread high([&] {
    for (int i = 0; i < 10; ++i) registry.observe(h, 50.0);
  });
  low.join();
  high.join();
  const Snapshot snap = registry.snapshot();
  const HistogramSnapshot* hist = snap.histogram("lat");
  ASSERT_NE(hist, nullptr);
  EXPECT_EQ(hist->count, 100u);
  ASSERT_EQ(hist->counts.size(), 4u);  // 3 bounds + overflow
  EXPECT_EQ(hist->counts[0], 90u);     // (0, 1]
  EXPECT_EQ(hist->counts[2], 10u);     // (10, 100]
  // p50 sits in the low bucket, p99 in the high one.
  EXPECT_LE(hist->p50(), 1.0);
  EXPECT_GT(hist->p99(), 10.0);
}

TEST(Registry, HistogramOverflowReportsLastBound) {
  Registry registry;
  const MetricId h = registry.histogram("lat", {1.0, 2.0});
  registry.observe(h, 1000.0);  // lands in the +inf overflow bucket
  const Snapshot snap = registry.snapshot();
  const HistogramSnapshot* hist = snap.histogram("lat");
  ASSERT_NE(hist, nullptr);
  EXPECT_EQ(hist->count, 1u);
  EXPECT_DOUBLE_EQ(hist->p99(), 2.0);  // clamped to the last finite bound
}

// --- Registry: histogram percentile edge cases ------------------------------
// The health engine divides and compares these values, so the contract is
// "never NaN, never negative, always clamped" at every degenerate input.

TEST(Registry, EmptyHistogramPercentilesAreZeroNotNaN) {
  HistogramSnapshot empty;
  empty.bounds = {1.0, 10.0};
  empty.counts = {0, 0, 0};
  for (const double q : {0.0, 0.5, 0.99, 1.0}) {
    const double p = empty.percentile(q);
    EXPECT_TRUE(std::isfinite(p)) << "q=" << q;
    EXPECT_DOUBLE_EQ(p, 0.0) << "q=" << q;
  }
}

TEST(Registry, AllOverflowSamplesClampToLastBound) {
  Registry registry;
  const MetricId h = registry.histogram("lat", {1.0, 5.0, 25.0});
  for (int i = 0; i < 64; ++i) registry.observe(h, 1e9);
  const Snapshot snap = registry.snapshot();
  const HistogramSnapshot* hist = snap.histogram("lat");
  ASSERT_NE(hist, nullptr);
  // Every quantile of an all-overflow population reports the overflow
  // bucket's (finite) lower bound — monotone, finite, never 1e9.
  for (const double q : {0.0, 0.01, 0.5, 0.99, 1.0}) {
    EXPECT_DOUBLE_EQ(hist->percentile(q), 25.0) << "q=" << q;
  }
}

TEST(Registry, SingleSamplePercentilesStayFiniteAndClamped) {
  Registry registry;
  const MetricId h = registry.histogram("lat", {10.0, 100.0});
  registry.observe(h, 3.0);  // one sample in the first bucket
  const Snapshot snap = registry.snapshot();
  const HistogramSnapshot* hist = snap.histogram("lat");
  ASSERT_NE(hist, nullptr);
  EXPECT_EQ(hist->count, 1u);
  for (const double q : {0.0, 0.5, 0.99, 1.0}) {
    const double p = hist->percentile(q);
    EXPECT_TRUE(std::isfinite(p)) << "q=" << q;
    EXPECT_GE(p, 0.0) << "q=" << q;
    EXPECT_LE(p, 10.0) << "q=" << q;  // never past the bucket it sits in
  }
  // Out-of-range quantiles clamp instead of extrapolating.
  EXPECT_GE(hist->percentile(-1.0), 0.0);
  EXPECT_LE(hist->percentile(2.0), 10.0);
}

TEST(Registry, BoundlessHistogramPercentileIsZero) {
  // Every observation of a bounds-free histogram lands in the overflow
  // bucket, which has no finite lower bound to report.
  HistogramSnapshot hist;
  hist.counts = {5};
  hist.count = 5;
  hist.sum = 50.0;
  EXPECT_DOUBLE_EQ(hist.percentile(0.99), 0.0);
  EXPECT_TRUE(std::isfinite(hist.percentile(0.5)));
}

// --- Prometheus exposition --------------------------------------------------

TEST(Prometheus, NameMappingSanitizesAndPrefixes) {
  EXPECT_EQ(prometheus_name("floor.jobs.executed"),
            "casbus_floor_jobs_executed");
  EXPECT_EQ(prometheus_name("floor.stage.simulate.us"),
            "casbus_floor_stage_simulate_us");
  EXPECT_EQ(prometheus_name("weird-name!", "p_"), "p_weird_name_");
}

TEST(Prometheus, CountersGaugesAndHistogramsSerialize) {
  Registry registry;
  // Register everything before the first write: this thread's shard is
  // sized at its first add/observe, so metrics registered later would
  // have no cells here (the documented late-registration semantic).
  const MetricId c = registry.counter("floor.jobs.executed");
  registry.gauge("floor.queue.depth", [] { return 3.5; });
  const MetricId h = registry.histogram("floor.stage.build.us", {1.0, 10.0});
  registry.add(c, 42);
  registry.observe(h, 0.5);
  registry.observe(h, 5.0);
  registry.observe(h, 100.0);  // overflow

  const std::string text = to_prometheus(registry.snapshot());
  EXPECT_NE(text.find("# TYPE casbus_floor_jobs_executed_total counter\n"),
            std::string::npos);
  EXPECT_NE(text.find("casbus_floor_jobs_executed_total 42\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE casbus_floor_queue_depth gauge\n"),
            std::string::npos);
  EXPECT_NE(text.find("casbus_floor_queue_depth 3.5\n"), std::string::npos);
  // Histogram buckets are cumulative and end in +Inf == _count.
  EXPECT_NE(text.find("casbus_floor_stage_build_us_bucket{le=\"1\"} 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("casbus_floor_stage_build_us_bucket{le=\"10\"} 2\n"),
            std::string::npos);
  EXPECT_NE(
      text.find("casbus_floor_stage_build_us_bucket{le=\"+Inf\"} 3\n"),
      std::string::npos);
  EXPECT_NE(text.find("casbus_floor_stage_build_us_count 3\n"),
            std::string::npos);
  // Every HELP line precedes its TYPE line, and the body ends in a
  // newline (the exposition format requires it).
  EXPECT_LT(text.find("# HELP casbus_floor_jobs_executed_total"),
            text.find("# TYPE casbus_floor_jobs_executed_total"));
  ASSERT_FALSE(text.empty());
  EXPECT_EQ(text.back(), '\n');
}

TEST(Prometheus, EmptySnapshotSerializesToEmptyBody) {
  Registry registry;
  EXPECT_TRUE(to_prometheus(registry.snapshot()).empty());
}

TEST(Registry, LatencyLadderIsAscending) {
  const std::vector<double> ladder = Registry::latency_buckets_us();
  ASSERT_GE(ladder.size(), 2u);
  for (std::size_t i = 1; i < ladder.size(); ++i)
    EXPECT_LT(ladder[i - 1], ladder[i]);
}

TEST(Registry, SnapshotJsonIsOneLineWithStableKeys) {
  Registry registry;
  // Register everything before the first write: the thread's shard is
  // sized and its layout frozen on first touch, so a metric registered
  // after that would (by design) drop this thread's writes.
  const MetricId c = registry.counter("a.count");
  const MetricId h = registry.histogram("b.lat", {1.0, 10.0});
  registry.add(c, 5);
  registry.observe(h, 3.0);
  const std::string json = registry.snapshot().to_json();
  EXPECT_EQ(json.find('\n'), std::string::npos);
  EXPECT_NE(json.find("\"a.count\":5"), std::string::npos);
  EXPECT_NE(json.find("\"b.lat\""), std::string::npos);
  EXPECT_NE(json.find("\"count\":1"), std::string::npos);
}

// --- TraceRecorder ----------------------------------------------------------

TEST(TraceRecorder, RecordsUpToCapacityThenCountsDrops) {
  TraceRecorder recorder(8);
  constexpr std::size_t kThreads = 4;
  constexpr std::size_t kPerThread = 10;
  std::vector<std::thread> pool;
  for (std::size_t t = 0; t < kThreads; ++t) {
    pool.emplace_back([&recorder, t] {
      for (std::size_t i = 0; i < kPerThread; ++i) {
        TraceSpan span;
        span.name = "work";
        span.tid = static_cast<std::uint32_t>(t);
        (void)recorder.record(span);
      }
    });
  }
  for (std::thread& t : pool) t.join();
  EXPECT_EQ(recorder.recorded(), 8u);
  EXPECT_EQ(recorder.dropped(), kThreads * kPerThread - 8);
  // Drop-safe, never lossy about the accounting: every record() call is
  // either stored or counted.
  EXPECT_EQ(recorder.recorded() + recorder.dropped(),
            kThreads * kPerThread);
}

TEST(TraceRecorder, ChromeTraceJsonShape) {
  TraceRecorder recorder(4);
  TraceSpan span;
  span.name = "Simulate";
  span.category = "stage";
  span.scenario = "scan";
  span.cache_tier = "none";
  span.tid = 2;
  span.slot = 7;
  span.ts_us = 10;
  span.dur_us = 30;
  ASSERT_TRUE(recorder.record(span));

  std::ostringstream os;
  recorder.write_chrome_trace(os);
  const std::string json = os.str();
  // The Chrome trace-event envelope Perfetto loads.
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"Simulate\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ts\":10"), std::string::npos);
  EXPECT_NE(json.find("\"dur\":30"), std::string::npos);
  EXPECT_NE(json.find("\"tid\":2"), std::string::npos);
  EXPECT_NE(json.find("\"slot\":7"), std::string::npos);
  EXPECT_NE(json.find("\"scenario\":\"scan\""), std::string::npos);
  // Balanced braces/brackets — cheap well-formedness proxy (CI runs a
  // real JSON parse over floor_service --trace output).
  std::size_t braces = 0, brackets = 0;
  for (char c : json) {
    braces += c == '{';
    braces -= c == '}';
    brackets += c == '[';
    brackets -= c == ']';
  }
  EXPECT_EQ(braces, 0u);
  EXPECT_EQ(brackets, 0u);
}

TEST(TraceRecorder, EscapesQuotesInNames) {
  TraceRecorder recorder(1);
  TraceSpan span;
  span.name = "we\"ird";
  ASSERT_TRUE(recorder.record(span));
  std::ostringstream os;
  recorder.write_chrome_trace(os);
  EXPECT_NE(os.str().find("we\\\"ird"), std::string::npos);
}

}  // namespace
}  // namespace casbus::obs

namespace casbus::floor {
namespace {

std::vector<JobSpec> small_batch(std::uint64_t seed, std::size_t count) {
  const JobFactory factory(seed);
  std::vector<JobSpec> jobs;
  for (std::size_t i = 0; i < count; ++i) jobs.push_back(factory.make_job(i));
  return jobs;
}

FloorReport run_session(FloorConfig config,
                        const std::vector<JobSpec>& jobs) {
  FloorSession session(config);
  for (const JobSpec& spec : jobs) EXPECT_TRUE(session.submit(spec));
  return session.drain();
}

// --- The determinism contract (the layer's acceptance bar) ------------------

TEST(FloorTelemetry, DeterministicSummaryIdenticalWithTelemetryOnOrOff) {
  const auto jobs = small_batch(77, 8);
  FloorConfig off;
  off.workers = 1;
  const std::string reference = run_session(off, jobs).deterministic_summary();

  for (std::size_t workers : {std::size_t{1}, std::size_t{4}}) {
    FloorConfig on;
    on.workers = workers;
    on.metrics = true;
    on.trace_capacity = 256;
    EXPECT_EQ(run_session(on, jobs).deterministic_summary(), reference)
        << "telemetry changed a deterministic result at workers="
        << workers;
  }
}

// --- FloorStats -------------------------------------------------------------

TEST(FloorTelemetry, StatsSnapshotCountsTheRun) {
  const auto jobs = small_batch(78, 6);
  FloorConfig config;
  config.workers = 2;
  config.metrics = true;
  config.trace_capacity = 1024;
  FloorSession session(config);
  for (const JobSpec& spec : jobs) ASSERT_TRUE(session.submit(spec));
  const FloorReport report = session.drain();
  const FloorStats stats = session.stats_snapshot();

  EXPECT_TRUE(stats.metrics_enabled);
  EXPECT_EQ(stats.workers, 2u);
  EXPECT_EQ(stats.submitted, jobs.size());
  EXPECT_EQ(stats.completed, jobs.size());
  EXPECT_EQ(stats.in_flight, 0u);
  EXPECT_EQ(stats.errored, 0u);
  // Queue flow balances after drain.
  EXPECT_EQ(stats.queue.pushed, jobs.size());
  EXPECT_EQ(stats.queue.popped, jobs.size());
  EXPECT_EQ(stats.queue.depth, 0u);
  EXPECT_LE(stats.queue.high_water, jobs.size());
  // Cache counters agree with the report's tier accounting.
  EXPECT_EQ(stats.cache_lookups, jobs.size());
  EXPECT_EQ(stats.cache_program_hits, report.program_tier_hits);
  EXPECT_EQ(stats.cache_verdict_hits, report.verdict_tier_hits);
  // Every job that executed recorded one Build-stage observation (Build
  // is never skipped by any cache tier except verdict reuse).
  const auto& build = stats.stages[static_cast<std::size_t>(Stage::Build)];
  EXPECT_EQ(build.count, jobs.size() - report.verdict_tier_hits);
  EXPECT_GE(build.total_seconds, 0.0);
  // Workers accumulated busy time; a trace was recorded without drops.
  EXPECT_EQ(stats.worker_busy_seconds.size(), 2u);
  EXPECT_GT(stats.worker_busy_seconds[0] + stats.worker_busy_seconds[1],
            0.0);
  EXPECT_GT(stats.trace_recorded, 0u);
  EXPECT_EQ(stats.trace_dropped, 0u);
  // Simulation happened and the engines reported effort.
  EXPECT_GT(stats.sim_memo_lookups, 0u);
  EXPECT_GT(stats.sim_eval_passes + stats.sim_sweep_cell_evals, 0u);

  // The wire format round-trips the headline numbers.
  const std::string json = stats.to_json();
  EXPECT_EQ(json.find('\n'), std::string::npos);
  EXPECT_NE(json.find("\"metrics_enabled\":true"), std::string::npos);
  EXPECT_NE(json.find("\"submitted\":6"), std::string::npos);
}

TEST(FloorTelemetry, StatsSnapshotWithTelemetryOffStaysLive) {
  const auto jobs = small_batch(79, 4);
  FloorConfig config;
  config.workers = 1;  // telemetry off: metrics=false, trace_capacity=0
  FloorSession session(config);
  for (const JobSpec& spec : jobs) ASSERT_TRUE(session.submit(spec));
  (void)session.drain();
  const FloorStats stats = session.stats_snapshot();
  EXPECT_FALSE(stats.metrics_enabled);
  // Flow and queue numbers do not depend on the registry.
  EXPECT_EQ(stats.submitted, jobs.size());
  EXPECT_EQ(stats.completed, jobs.size());
  EXPECT_EQ(stats.queue.popped, jobs.size());
  // Registry-backed counters read zero, by contract.
  EXPECT_EQ(stats.cache_lookups, 0u);
  EXPECT_EQ(stats.sim_memo_lookups, 0u);
  EXPECT_EQ(stats.trace_recorded, 0u);
}

TEST(FloorTelemetry, VerdictReuseLandsInTheVerdictTierCounter) {
  // One recipe repeated: every job after the first is a verdict serve.
  const JobFactory factory(80);
  std::vector<JobSpec> jobs;
  for (std::size_t i = 0; i < 5; ++i) {
    JobSpec spec = factory.make_job(0);
    spec.id = i;
    jobs.push_back(spec);
  }
  FloorConfig config;
  config.workers = 1;
  config.metrics = true;
  FloorSession session(config);
  for (const JobSpec& spec : jobs) ASSERT_TRUE(session.submit(spec));
  const FloorReport report = session.drain();
  const FloorStats stats = session.stats_snapshot();
  EXPECT_EQ(report.verdict_tier_hits, 4u);
  EXPECT_EQ(stats.cache_verdict_hits, 4u);
  EXPECT_EQ(stats.cache_lookups, 5u);
  EXPECT_NEAR(stats.cache_hit_rate(), 0.8, 1e-9);
}

TEST(FloorTelemetry, WriteTraceProducesAFile) {
  const auto jobs = small_batch(81, 3);
  FloorConfig config;
  config.workers = 1;
  config.trace_capacity = 256;
  FloorSession session(config);
  for (const JobSpec& spec : jobs) ASSERT_TRUE(session.submit(spec));
  (void)session.drain();
  const std::string path =
      testing::TempDir() + "/casbus_test_trace.json";
  ASSERT_TRUE(session.write_trace(path));
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream buffer;
  buffer << in.rdbuf();
  EXPECT_NE(buffer.str().find("\"traceEvents\""), std::string::npos);
  // One job-level span per executed job plus its stage spans.
  ASSERT_NE(session.trace(), nullptr);
  EXPECT_GE(session.trace()->recorded(), jobs.size());
}

}  // namespace
}  // namespace casbus::floor
