// Tests for the test-pattern infrastructure: LFSR/MISR, pattern sets,
// synthetic cores, fault simulation and ATPG.

#include <gtest/gtest.h>

#include <set>

#include "netlist/builder.hpp"
#include "netlist/gatesim.hpp"
#include "tpg/atpg.hpp"
#include "tpg/fault.hpp"
#include "tpg/lfsr.hpp"
#include "tpg/patterns.hpp"
#include "tpg/synthcore.hpp"
#include "util/rng.hpp"

namespace casbus::tpg {
namespace {

class LfsrPeriod : public ::testing::TestWithParam<unsigned> {};

TEST_P(LfsrPeriod, PrimitivePolynomialReachesMaximalLength) {
  const unsigned width = GetParam();
  Lfsr lfsr = Lfsr::standard(width, 1);
  const std::uint32_t start = lfsr.state();
  std::uint64_t period = 0;
  do {
    lfsr.step();
    ++period;
    ASSERT_NE(lfsr.state(), 0u) << "LFSR fell into the all-zero state";
    ASSERT_LE(period, lfsr.max_period());
  } while (lfsr.state() != start);
  EXPECT_EQ(period, lfsr.max_period()) << "width " << width;
}

INSTANTIATE_TEST_SUITE_P(Widths, LfsrPeriod,
                         ::testing::Values(2, 3, 4, 5, 6, 7, 8, 9, 10, 11,
                                           12, 13, 14, 15, 16));

TEST(LfsrTest, RejectsZeroSeedAndBadWidth) {
  EXPECT_THROW(Lfsr(4, 0b1100, 0), PreconditionError);
  EXPECT_THROW(Lfsr(1, 1, 1), PreconditionError);
  EXPECT_THROW(Lfsr(33, 1, 1), PreconditionError);
  EXPECT_THROW(Lfsr(4, 0, 1), PreconditionError);
}

TEST(LfsrTest, OutputBitIsStageZero) {
  Lfsr lfsr(3, 0b110, 0b001);
  EXPECT_TRUE(lfsr.step());  // state bit0 was 1
}

TEST(MisrTest, OrderSensitivity) {
  // The MISR must distinguish response streams that a plain XOR-parity
  // compactor cannot (order matters).
  Misr m1(8), m2(8);
  m1.feed_word(0x0F);
  m1.feed_word(0xF0);
  m2.feed_word(0xF0);
  m2.feed_word(0x0F);
  EXPECT_NE(m1.signature(), m2.signature());
}

TEST(MisrTest, DeterministicAndResettable) {
  Misr m(16);
  for (std::uint32_t i = 0; i < 100; ++i) m.feed_word(i * 2654435761u);
  const std::uint32_t sig = m.signature();
  m.reset();
  EXPECT_EQ(m.signature(), 0u);
  for (std::uint32_t i = 0; i < 100; ++i) m.feed_word(i * 2654435761u);
  EXPECT_EQ(m.signature(), sig);
}

TEST(MisrTest, SingleBitErrorAlwaysDetected) {
  // Property: flipping any single response bit changes the signature
  // (linear compactor: error signature = error polynomial shifted, != 0).
  Rng rng(3);
  std::vector<std::uint32_t> words(40);
  for (auto& w : words) w = static_cast<std::uint32_t>(rng.below(256));
  Misr ref(8);
  for (const auto w : words) ref.feed_word(w);
  for (std::size_t i = 0; i < words.size(); ++i) {
    for (unsigned bit = 0; bit < 8; ++bit) {
      Misr dut(8);
      for (std::size_t j = 0; j < words.size(); ++j)
        dut.feed_word(j == i ? (words[j] ^ (1u << bit)) : words[j]);
      EXPECT_NE(dut.signature(), ref.signature())
          << "word " << i << " bit " << bit;
    }
  }
}

TEST(PatternSetTest, GeneratorsProduceDocumentedShapes) {
  Rng rng(1);
  const PatternSet r = PatternSet::random(10, 20, rng);
  EXPECT_EQ(r.size(), 20u);
  EXPECT_EQ(r.width(), 10u);

  const PatternSet w = PatternSet::walking(4);
  EXPECT_EQ(w.size(), 8u);
  EXPECT_EQ(w.at(0).to_string(), "1000");
  EXPECT_EQ(w.at(3).to_string(), "0001");
  EXPECT_EQ(w.at(4).to_string(), "0111");

  const PatternSet c = PatternSet::counting(3, 8);
  EXPECT_EQ(c.at(5).to_uint(), 5u);

  const PatternSet e = PatternSet::exhaustive(4);
  EXPECT_EQ(e.size(), 16u);
  EXPECT_THROW(PatternSet::exhaustive(21), PreconditionError);
}

TEST(PatternSetTest, AddEnforcesWidth) {
  PatternSet ps(4);
  ps.add(BitVector(4));
  EXPECT_THROW(ps.add(BitVector(5)), PreconditionError);
}

TEST(SyntheticCoreTest, GeneratesRequestedGeometry) {
  SyntheticCoreSpec spec;
  spec.n_inputs = 5;
  spec.n_outputs = 4;
  spec.n_flipflops = 12;
  spec.n_gates = 40;
  spec.n_chains = 3;
  spec.seed = 99;
  const SyntheticCore core = make_synthetic_core(spec);
  EXPECT_EQ(core.netlist.inputs().size(), 5u + 1u + 3u);  // pi + scan_en + si
  EXPECT_EQ(core.netlist.outputs().size(), 4u + 3u);      // po + so
  EXPECT_EQ(core.netlist.dff_count(), 12u);
  EXPECT_EQ(core.chains.size(), 3u);
  EXPECT_EQ(core.max_chain_length(), 4u);
  std::size_t total = 0;
  for (const auto& c : core.chains) total += c.size();
  EXPECT_EQ(total, 12u);
}

TEST(SyntheticCoreTest, DeterministicPerSeed) {
  SyntheticCoreSpec spec;
  spec.seed = 5;
  const SyntheticCore a = make_synthetic_core(spec);
  const SyntheticCore b = make_synthetic_core(spec);
  EXPECT_EQ(a.netlist.cell_count(), b.netlist.cell_count());
  spec.seed = 6;
  const SyntheticCore c = make_synthetic_core(spec);
  // Different seed gives a structurally different cloud (counts can match,
  // but the cells' wiring shouldn't be identical).
  bool differs = a.netlist.cell_count() != c.netlist.cell_count();
  if (!differs) {
    for (std::size_t i = 0; i < a.netlist.cell_count(); ++i) {
      if (a.netlist.cells()[i].kind != c.netlist.cells()[i].kind ||
          a.netlist.cells()[i].in != c.netlist.cells()[i].in) {
        differs = true;
        break;
      }
    }
  }
  EXPECT_TRUE(differs);
}

TEST(SyntheticCoreTest, ScanChainShiftsThrough) {
  // Shift a marker through chain 0 with scan_en=1 and watch it at so0
  // after exactly len(chain0) ticks.
  SyntheticCoreSpec spec;
  spec.n_flipflops = 8;
  spec.n_chains = 2;
  spec.seed = 4;
  const SyntheticCore core = make_synthetic_core(spec);
  netlist::GateSim sim(core.netlist);
  sim.reset();
  for (const auto& port : core.netlist.inputs())
    sim.set_input(port.name, false);
  sim.set_input("scan_en", true);

  const std::size_t len = core.chains[0].size();
  sim.set_input("si0", true);
  sim.eval();
  for (std::size_t t = 0; t < len; ++t) {
    EXPECT_EQ(sim.output("so0"), Logic4::Zero) << "tick " << t;
    sim.tick();
    sim.set_input("si0", false);
    sim.eval();
  }
  EXPECT_EQ(sim.output("so0"), Logic4::One);
}

TEST(SyntheticCoreTest, RejectsBadChainCount) {
  SyntheticCoreSpec spec;
  spec.n_flipflops = 4;
  spec.n_chains = 5;
  EXPECT_THROW((void)make_synthetic_core(spec), PreconditionError);
}

TEST(FaultTest, EnumerationSkipsConstants) {
  netlist::NetlistBuilder b("f");
  const auto a = b.input("a");
  const auto k1 = b.const1();
  b.output("y", b.and2(a, k1));
  const netlist::Netlist nl = b.take();
  const auto faults = enumerate_faults(nl);
  // Nets: a, const1, and-out -> const net excluded -> 2 nets x 2 faults.
  EXPECT_EQ(faults.size(), 4u);
}

TEST(FaultSimTest, DetectsManuallyInjectedFault) {
  // y = a AND b: stuck-at-0 on the output is detected by (1,1) and only
  // by (1,1); stuck-at-1 by any pattern with a 0 input.
  netlist::NetlistBuilder b("af");
  const auto a = b.input("a");
  const auto c = b.input("b");
  const auto y = b.and2(a, c);
  b.output("y", y);
  const netlist::Netlist nl = b.take();
  FaultSimulator fsim(nl);
  EXPECT_EQ(fsim.pattern_width(), 2u);
  EXPECT_EQ(fsim.response_width(), 1u);

  const Fault sa0{y, false};
  const Fault sa1{y, true};
  EXPECT_TRUE(fsim.detects(BitVector::from_string("11"), sa0));
  EXPECT_FALSE(fsim.detects(BitVector::from_string("01"), sa0));
  EXPECT_TRUE(fsim.detects(BitVector::from_string("01"), sa1));
  EXPECT_FALSE(fsim.detects(BitVector::from_string("11"), sa1));
}

TEST(FaultSimTest, ExhaustivePatternsDetectAllFaultsOnSmallCircuit) {
  // Fully-testable combinational circuit: exhaustive patterns must reach
  // 100% stuck-at coverage.
  netlist::NetlistBuilder b("full");
  const auto a = b.input("a");
  const auto c = b.input("b");
  const auto d = b.input("c");
  b.output("y", b.xor2(b.and2(a, c), d));
  const netlist::Netlist nl = b.take();
  FaultSimulator fsim(nl);
  const auto faults = enumerate_faults(nl);
  const auto report = fsim.run(PatternSet::exhaustive(3), faults);
  EXPECT_EQ(report.detected, report.total_faults);
  EXPECT_DOUBLE_EQ(report.coverage(), 1.0);
}

TEST(FaultSimTest, RedundantLogicYieldsUndetectableFault) {
  // y = a OR (a AND b): the AND gate is redundant; its stuck-at-0 is
  // undetectable. Coverage must be < 100% even exhaustively.
  netlist::NetlistBuilder b("red");
  const auto a = b.input("a");
  const auto c = b.input("b");
  b.output("y", b.or2(a, b.and2(a, c)));
  const netlist::Netlist nl = b.take();
  FaultSimulator fsim(nl);
  const auto faults = enumerate_faults(nl);
  const auto report = fsim.run(PatternSet::exhaustive(2), faults);
  EXPECT_LT(report.detected, report.total_faults);
}

TEST(FaultSimTest, PinnedInputsAreExcludedFromPatterns) {
  SyntheticCoreSpec spec;
  spec.n_inputs = 4;
  spec.n_flipflops = 4;
  spec.n_chains = 1;
  spec.seed = 7;
  const SyntheticCore core = make_synthetic_core(spec);
  FaultSimulator fsim(core.netlist);
  const std::size_t before = fsim.pattern_width();
  fsim.pin_input("scan_en", false);
  fsim.pin_input("si0", false);
  EXPECT_EQ(fsim.pattern_width(), before - 2);
  EXPECT_THROW(fsim.pin_input("nonexistent", false), PreconditionError);
}

TEST(FaultSimTest, GoodResponseMatchesDirectSimulation) {
  SyntheticCoreSpec spec;
  spec.seed = 11;
  spec.n_flipflops = 6;
  spec.n_gates = 30;
  const SyntheticCore core = make_synthetic_core(spec);
  FaultSimulator fsim(core.netlist);
  fsim.pin_input("scan_en", false);
  fsim.pin_input("si0", false);

  Rng rng(2);
  BitVector pattern(fsim.pattern_width());
  for (std::size_t i = 0; i < pattern.size(); ++i)
    pattern.set(i, rng.coin());
  const BitVector r1 = fsim.good_response(pattern);
  const BitVector r2 = fsim.good_response(pattern);
  EXPECT_EQ(r1, r2);
  EXPECT_EQ(r1.size(), fsim.response_width());
}

TEST(AtpgTest, ReachesTargetCoverageOnSyntheticCore) {
  SyntheticCoreSpec spec;
  spec.n_inputs = 6;
  spec.n_outputs = 6;
  spec.n_flipflops = 8;
  spec.n_gates = 50;
  spec.seed = 21;
  const SyntheticCore core = make_synthetic_core(spec);

  AtpgOptions opts;
  opts.target_coverage = 0.90;
  opts.max_candidates = 2000;
  opts.pinned_inputs = {{"scan_en", false}, {"si0", false}};
  const AtpgResult res = generate_patterns(core.netlist, opts);
  EXPECT_GE(res.coverage(), 0.90);
  EXPECT_GT(res.patterns.size(), 0u);
  EXPECT_LE(res.patterns.size(), opts.max_patterns);
}

TEST(AtpgTest, EveryKeptPatternEarnedItsPlace) {
  SyntheticCoreSpec spec;
  spec.seed = 22;
  spec.n_gates = 30;
  const SyntheticCore core = make_synthetic_core(spec);
  AtpgOptions opts;
  opts.max_candidates = 500;
  opts.pinned_inputs = {{"scan_en", false}, {"si0", false}};
  const AtpgResult res = generate_patterns(core.netlist, opts);

  // Replay: with fault dropping in the same order, each pattern detects at
  // least one new fault.
  FaultSimulator fsim(core.netlist);
  for (const auto& [name, v] : opts.pinned_inputs) fsim.pin_input(name, v);
  const auto faults = enumerate_faults(core.netlist);
  const auto report = fsim.run(res.patterns, faults);
  for (std::size_t p = 0; p < res.patterns.size(); ++p)
    EXPECT_GT(report.per_pattern[p], 0u) << "pattern " << p;
  EXPECT_EQ(report.detected, res.detected);
}

}  // namespace
}  // namespace casbus::tpg
