// Randomized end-to-end property tests: arbitrary (seeded) SoCs under
// arbitrary valid test programs must pass fault-free and must detect an
// injected scan-observable fault. This is the widest net in the suite.

#include <gtest/gtest.h>

#include "soc/schedule_runner.hpp"
#include "soc/soc.hpp"
#include "soc/tester.hpp"
#include "tpg/patterns.hpp"
#include "util/rng.hpp"

namespace casbus::soc {
namespace {

struct FuzzWorld {
  std::unique_ptr<Soc> soc;
  std::vector<std::size_t> scan_cores;  // indices of scan-capable cores
  unsigned width;
};

FuzzWorld random_soc(Rng& rng) {
  FuzzWorld world;
  world.width = static_cast<unsigned>(2 + rng.below(5));  // 2..6 wires
  SocBuilder b(world.width);
  const std::size_t n_cores = 2 + rng.below(3);
  for (std::size_t i = 0; i < n_cores; ++i) {
    tpg::SyntheticCoreSpec spec;
    spec.n_inputs = 2 + rng.below(5);
    spec.n_outputs = 2 + rng.below(5);
    spec.n_chains = 1 + rng.below(std::min<std::uint64_t>(2, world.width));
    spec.n_flipflops = spec.n_chains * (3 + rng.below(6));
    spec.n_gates = 20 + rng.below(60);
    spec.seed = rng.next();
    const std::string name = "core" + std::to_string(i);
    if (rng.coin(0.75)) {
      b.add_scan_core(name, spec);
      world.scan_cores.push_back(i);
    } else {
      b.add_bist_core(name, spec, 32 + rng.below(128));
    }
  }
  world.soc = b.build();
  return world;
}

/// Builds a random valid session over a subset of the scan cores:
/// each chain gets a distinct wire per core (CAS injectivity), wire
/// sharing across cores allowed.
ScanSession random_session(FuzzWorld& world, Rng& rng) {
  ScanSession session;
  for (const std::size_t c : world.scan_cores) {
    if (rng.coin(0.3)) continue;  // leave some cores out
    const auto& sc = world.soc->cores()[c].as_scan().synth();
    // Random distinct wires for this core's chains.
    std::vector<unsigned> wires;
    for (unsigned w = 0; w < world.width; ++w) wires.push_back(w);
    for (std::size_t k = wires.size(); k > 1; --k)
      std::swap(wires[k - 1], wires[rng.below(k)]);
    std::vector<unsigned> assign(wires.begin(),
                                 wires.begin() +
                                     static_cast<std::ptrdiff_t>(
                                         sc.chains.size()));
    session.targets.push_back(ScanTarget{
        CoreRef{c, std::nullopt}, std::move(assign),
        tpg::PatternSet::random(sc.spec.n_flipflops, 2 + rng.below(6),
                                rng)});
  }
  return session;
}

class Fuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(Fuzz, FaultFreeSocPassesRandomPrograms) {
  Rng rng(GetParam());
  FuzzWorld world = random_soc(rng);
  SocTester tester(*world.soc);

  for (int s = 0; s < 3; ++s) {
    const ScanSession session = random_session(world, rng);
    if (session.targets.empty()) continue;
    const ScanSessionResult r = tester.run_scan_session(session);
    EXPECT_TRUE(r.all_pass())
        << "seed " << GetParam() << " session " << s;
  }
}

TEST_P(Fuzz, InjectedFlipFlopFaultIsDetected) {
  Rng rng(GetParam() * 7919 + 1);
  FuzzWorld world = random_soc(rng);
  if (world.scan_cores.empty()) return;
  SocTester tester(*world.soc);

  // Stuck-at on a flip-flop output: with enough random patterns through
  // every chain, detection is near-certain (ff_q feeds the scan path).
  const std::size_t victim =
      world.scan_cores[rng.below(world.scan_cores.size())];
  NetlistCore& core = world.soc->cores()[victim].as_scan();
  const auto& nl = core.synth().netlist;
  netlist::NetId ffq = netlist::kNoNet;
  for (const auto& [net, name] : nl.net_names()) {
    if (name == "ff_q0") {
      ffq = net;
      break;
    }
  }
  ASSERT_NE(ffq, netlist::kNoNet);
  core.gatesim().set_force(ffq, Logic4::One);

  ScanSession session;
  const auto& sc = core.synth();
  std::vector<unsigned> assign;
  for (unsigned ch = 0; ch < sc.chains.size(); ++ch) assign.push_back(ch);
  session.targets.push_back(ScanTarget{
      CoreRef{victim, std::nullopt}, std::move(assign),
      tpg::PatternSet::random(sc.spec.n_flipflops, 12, rng)});
  const ScanSessionResult r = tester.run_scan_session(session);
  EXPECT_GT(r.targets[0].mismatches, 0u) << "seed " << GetParam();
}

TEST_P(Fuzz, BestScheduleExecutesOnRandomSocs) {
  Rng rng(GetParam() * 31 + 5);
  FuzzWorld world = random_soc(rng);
  SocTester tester(*world.soc);
  const auto specs = specs_of(*world.soc, 1);
  sched::SessionScheduler scheduler(specs, world.width);
  // best() may choose rail emulation (not executable); use the best
  // chip-synchronous strategy instead.
  sched::Schedule schedule = scheduler.greedy();
  for (const sched::Schedule& cand :
       {scheduler.single_session(), scheduler.phased(),
        scheduler.per_core_sessions()}) {
    if (cand.total_cycles < schedule.total_cycles) schedule = cand;
  }
  const ScheduleRunReport report =
      run_schedule(*world.soc, tester, specs, schedule, GetParam());
  EXPECT_TRUE(report.all_pass) << "seed " << GetParam();
  EXPECT_LT(report.deviation(), 0.10) << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, Fuzz,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10,
                                           11, 12));

}  // namespace
}  // namespace casbus::soc
